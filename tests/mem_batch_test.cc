/**
 * @file
 * Property test for batched fault resolution: touchRange() over any
 * extent must be observationally identical to the per-page touch()
 * loop it replaced — same virtual clock, same counters, same observer
 * event sequence, same RNG evolution, same memory accounting.
 *
 * Two twin worlds (own SimContext with the same seed, own FrameStore,
 * mirrored layouts) are driven through the same access script; world A
 * touches page by page, world B uses touchRange. Every observable must
 * match bit-for-bit.
 */

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "mem/backing_file.h"
#include "mem/base_mapping.h"
#include "mem/frame_store.h"
#include "sim/context.h"

namespace catalyzer::mem {
namespace {

using sim::SimContext;

/** Records every fault callback as a flat, comparable sequence. */
class RecordingObserver : public FaultObserver
{
  public:
    using Event = std::tuple<PageIndex, bool, FaultResult>;

    void
    onFault(PageIndex page, bool write, FaultResult result) override
    {
        events.push_back({page, write, result});
    }

    std::vector<Event> events;
};

/**
 * Extent-aware observer: overrides onFaultRange and re-expands it, so
 * the test also proves batched notifications carry the same extents.
 */
class RangeObserver : public FaultObserver
{
  public:
    void
    onFault(PageIndex page, bool write, FaultResult result) override
    {
        onFaultRange(page, 1, write, result);
    }

    void
    onFaultRange(PageIndex start, std::size_t npages, bool write,
                 FaultResult result) override
    {
        for (std::size_t k = 0; k < npages; ++k)
            pages.push_back({start + k, write, result});
    }

    std::vector<std::tuple<PageIndex, bool, FaultResult>> pages;
};

/** One self-contained simulated world with a mirrored memory layout. */
struct World
{
    SimContext ctx{1234};
    FrameStore store;
    BackingFile file{store, "/img", 256};
    BackingFile image{store, "/func.img", 64};
    std::shared_ptr<BaseMapping> base =
        std::make_shared<BaseMapping>(store, image, 0, 64, "base");
    AddressSpace space{ctx, store, "w"};
    PageIndex anon_va = 0;
    PageIndex filep_va = 0;
    PageIndex files_va = 0;
    PageIndex base_va = 0;

    World()
    {
        anon_va = space.mapAnon(128, true, "heap");
        filep_va = space.mapFile(file, 0, 96, MapKind::FilePrivate, true,
                                 "code");
        files_va = space.mapFile(file, 96, 64, MapKind::FileShared, true,
                                 "shm");
        base_va = space.attachBase(base);
    }
};

/** One scripted range access: offsets are VMA-relative. */
struct Access
{
    enum class Window { Anon, FilePrivate, FileShared, Base } window;
    PageIndex offset;
    std::size_t npages;
    bool write;
    bool cold;
};

PageIndex
windowStart(const World &w, Access::Window window)
{
    switch (window) {
      case Access::Window::Anon: return w.anon_va;
      case Access::Window::FilePrivate: return w.filep_va;
      case Access::Window::FileShared: return w.files_va;
      case Access::Window::Base: return w.base_va;
    }
    return 0;
}

/** Deterministic script mixing fills, re-reads, COW, cold and base. */
std::vector<Access>
script()
{
    using W = Access::Window;
    std::vector<Access> s = {
        {W::Anon, 0, 32, false, false},        // demand-zero fill
        {W::Anon, 16, 32, true, false},        // half present, half fill
        {W::Anon, 0, 48, false, false},        // all present: no faults
        {W::FilePrivate, 0, 24, false, true},  // cold file fill (RNG)
        {W::FilePrivate, 8, 24, true, false},  // COW over private file
        {W::FileShared, 0, 16, true, false},   // shared file, write-through
        {W::FileShared, 8, 16, false, true},   // mixed present/cold fill
        {W::Base, 0, 32, false, false},        // base fill + hits
        {W::Base, 8, 12, true, false},         // base COW into private
        {W::Base, 0, 32, false, false},        // base hits + private hits
        {W::Anon, 100, 1, true, false},        // single-page extents
        {W::Anon, 101, 1, true, false},
        {W::FilePrivate, 90, 6, false, true},  // tail of the VMA, cold
    };
    // Striding writes: the invoke()-style scattered single-page COW
    // pattern, then one large range crossing all the holes.
    for (PageIndex p = 48; p < 96; p += 5)
        s.push_back({W::Anon, p, 1, true, false});
    s.push_back({W::Anon, 40, 80, true, false});
    return s;
}

/** Assert every observable of the two worlds matches. */
void
expectWorldsEqual(World &a, World &b, const char *at)
{
    EXPECT_EQ(a.ctx.now().toNs(), b.ctx.now().toNs()) << at;
    EXPECT_EQ(a.ctx.stats().all(), b.ctx.stats().all()) << at;
    EXPECT_EQ(a.space.privatePages(), b.space.privatePages()) << at;
    EXPECT_EQ(a.space.rssPages(), b.space.rssPages()) << at;
    EXPECT_DOUBLE_EQ(a.space.pssBytes(), b.space.pssBytes()) << at;
    EXPECT_EQ(a.store.liveFrames(), b.store.liveFrames()) << at;
    EXPECT_EQ(a.base->residentPages(), b.base->residentPages()) << at;
    // Same RNG evolution: the next draw must match in both worlds.
    EXPECT_EQ(a.ctx.rng().next64(), b.ctx.rng().next64()) << at;
}

TEST(MemBatchProperty, TouchRangeMatchesPerPageLoop)
{
    World a; // per-page loop
    World b; // batched touchRange
    RecordingObserver obs_a;
    RecordingObserver obs_b;
    a.space.setFaultObserver(&obs_a);
    b.space.setFaultObserver(&obs_b);

    for (const Access &acc : script()) {
        const PageIndex start_a = windowStart(a, acc.window) + acc.offset;
        const PageIndex start_b = windowStart(b, acc.window) + acc.offset;
        std::size_t faults_a = 0;
        for (std::size_t k = 0; k < acc.npages; ++k) {
            if (a.space.touch(start_a + k, acc.write, acc.cold) !=
                FaultResult::None)
                ++faults_a;
        }
        const std::size_t faults_b =
            b.space.touchRange(start_b, acc.npages, acc.write, acc.cold);
        EXPECT_EQ(faults_a, faults_b);
        expectWorldsEqual(a, b, "mid-script");
    }

    // The observer saw the same page/write/result sequence (pages are
    // compared VMA-relative since the two worlds share a layout).
    ASSERT_EQ(obs_a.events.size(), obs_b.events.size());
    for (std::size_t i = 0; i < obs_a.events.size(); ++i)
        EXPECT_EQ(obs_a.events[i], obs_b.events[i]) << "event " << i;
    a.space.setFaultObserver(nullptr);
    b.space.setFaultObserver(nullptr);
}

TEST(MemBatchProperty, RangeObserverSeesSameExpansion)
{
    World a;
    World b;
    RecordingObserver obs_a; // default per-page fan-out
    RangeObserver obs_b;     // extent-aware override
    a.space.setFaultObserver(&obs_a);
    b.space.setFaultObserver(&obs_b);

    for (const Access &acc : script()) {
        for (std::size_t k = 0; k < acc.npages; ++k)
            a.space.touch(windowStart(a, acc.window) + acc.offset + k,
                          acc.write, acc.cold);
        b.space.touchRange(windowStart(b, acc.window) + acc.offset,
                           acc.npages, acc.write, acc.cold);
    }

    ASSERT_EQ(obs_a.events.size(), obs_b.pages.size());
    for (std::size_t i = 0; i < obs_a.events.size(); ++i)
        EXPECT_EQ(obs_a.events[i], obs_b.pages[i]) << "event " << i;
    a.space.setFaultObserver(nullptr);
    b.space.setFaultObserver(nullptr);
}

TEST(MemBatchProperty, ForkCowLockstep)
{
    World a;
    World b;

    // Populate, fork, then resolve COW from both sides of each world.
    for (std::size_t k = 0; k < 64; ++k)
        a.space.touch(a.anon_va + k, true);
    b.space.touchRange(b.anon_va, 64, true);
    expectWorldsEqual(a, b, "pre-fork");

    auto child_a = a.space.forkCow("child");
    auto child_b = b.space.forkCow("child");
    expectWorldsEqual(a, b, "post-fork");

    std::size_t faults_a = 0;
    for (std::size_t k = 0; k < 32; ++k) {
        if (child_a->touch(a.anon_va + k, true) != FaultResult::None)
            ++faults_a;
    }
    EXPECT_EQ(faults_a, child_b->touchRange(b.anon_va, 32, true));
    // Parent resolves the other half: sole-owner reuse after child
    // copies, plain COW where the child has not written.
    std::size_t parent_faults_a = 0;
    for (std::size_t k = 0; k < 64; ++k) {
        if (a.space.touch(a.anon_va + k, true) != FaultResult::None)
            ++parent_faults_a;
    }
    EXPECT_EQ(parent_faults_a, b.space.touchRange(b.anon_va, 64, true));
    expectWorldsEqual(a, b, "post-cow");
}

} // namespace
} // namespace catalyzer::mem
