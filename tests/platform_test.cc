/**
 * @file
 * Tests for the serverless platform: gateway, strategies, pools.
 */

#include <gtest/gtest.h>

#include "platform/platform.h"

namespace catalyzer::platform {
namespace {

using sandbox::BootKind;
using sandbox::Machine;

TEST(PlatformTest, InvokeBootsAndExecutes)
{
    Machine machine(42);
    ServerlessPlatform platform(machine,
                                PlatformConfig{BootStrategy::GVisor});
    platform.deploy(apps::appByName("c-hello"));
    const InvocationRecord rec = platform.invoke("c-hello");
    EXPECT_FALSE(rec.reusedInstance);
    EXPECT_GT(rec.bootLatency.toMs(), 50.0);
    EXPECT_GT(rec.execLatency.toNs(), 0);
    EXPECT_DOUBLE_EQ(rec.gatewayLatency.toMs(),
                     machine.ctx().costs().rpcDelivery.toMs());
    EXPECT_EQ(rec.endToEnd().toNs(),
              (rec.gatewayLatency + rec.bootLatency +
               rec.execLatency).toNs());
    EXPECT_EQ(platform.totalInstances(), 1u);
}

TEST(PlatformTest, ReuseIdleInstancesSkipsBoot)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::GVisor;
    config.reuseIdleInstances = true;
    ServerlessPlatform platform(machine, config);
    platform.deploy(apps::appByName("c-hello"));

    const InvocationRecord first = platform.invoke("c-hello");
    const InvocationRecord second = platform.invoke("c-hello");
    EXPECT_FALSE(first.reusedInstance);
    EXPECT_TRUE(second.reusedInstance);
    EXPECT_EQ(second.bootLatency.toNs(), 0);
    EXPECT_EQ(platform.totalInstances(), 1u);
}

TEST(PlatformTest, CatalyzerForkStrategy)
{
    Machine machine(42);
    ServerlessPlatform platform(
        machine, PlatformConfig{BootStrategy::CatalyzerFork});
    platform.prepare(apps::appByName("ds-text")); // builds the template

    const InvocationRecord rec = platform.invoke("ds-text");
    EXPECT_EQ(rec.bootKind, BootKind::ForkBoot);
    EXPECT_LT(rec.bootLatency.toMs(), 2.0);
}

TEST(PlatformTest, AutoStrategyEscalates)
{
    Machine machine(42);
    ServerlessPlatform platform(
        machine, PlatformConfig{BootStrategy::CatalyzerAuto});
    platform.deploy(apps::appByName("python-hello"));

    // No template, no base: first boot is a cold restore.
    const InvocationRecord first = platform.invoke("python-hello");
    EXPECT_EQ(first.bootKind, BootKind::ColdRestore);

    // A base now exists: warm restore.
    const InvocationRecord second = platform.invoke("python-hello");
    EXPECT_EQ(second.bootKind, BootKind::WarmRestore);

    // With a template prepared: fork boot.
    platform.prepare(apps::appByName("python-hello"));
    const InvocationRecord third = platform.invoke("python-hello");
    EXPECT_EQ(third.bootKind, BootKind::ForkBoot);
    EXPECT_LT(third.bootLatency.toMs(), second.bootLatency.toMs());
}

TEST(PlatformTest, InstanceBookkeepingAndTeardown)
{
    Machine machine(42);
    ServerlessPlatform platform(
        machine, PlatformConfig{BootStrategy::CatalyzerWarm});
    platform.prepare(apps::appByName("ds-media"));
    for (int i = 0; i < 5; ++i)
        platform.invoke("ds-media");
    EXPECT_EQ(platform.runningCount("ds-media"), 5u);
    EXPECT_EQ(platform.instancesOf("ds-media").size(), 5u);

    const std::size_t frames_before = machine.frames().liveFrames();
    platform.teardown("ds-media");
    EXPECT_EQ(platform.runningCount("ds-media"), 0u);
    EXPECT_LT(machine.frames().liveFrames(), frames_before);
}

TEST(PlatformTest, RetainDisabledDropsInstances)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerWarm;
    config.retainInstances = false;
    ServerlessPlatform platform(machine, config);
    platform.prepare(apps::appByName("ds-text"));
    platform.invoke("ds-text");
    EXPECT_EQ(platform.totalInstances(), 0u);
}

TEST(PlatformTest, StrategyNames)
{
    EXPECT_STREQ(bootStrategyName(BootStrategy::CatalyzerFork),
                 "Catalyzer-sfork");
    EXPECT_STREQ(bootStrategyName(BootStrategy::GVisorRestore),
                 "gVisor-restore");
}

TEST(PlatformTest, EndToEndSpeedupOnDeathStar)
{
    // Fig. 13a's shape: 35-67x lower boot for sfork vs gVisor.
    Machine m_gv(42);
    ServerlessPlatform gv(m_gv, PlatformConfig{BootStrategy::GVisor});
    gv.deploy(apps::appByName("ds-compose"));
    const InvocationRecord gv_rec = gv.invoke("ds-compose");

    Machine m_cat(42);
    ServerlessPlatform cat(m_cat,
                           PlatformConfig{BootStrategy::CatalyzerFork});
    cat.prepare(apps::appByName("ds-compose"));
    const InvocationRecord cat_rec = cat.invoke("ds-compose");

    const double boot_speedup =
        gv_rec.bootLatency.toMs() / cat_rec.bootLatency.toMs();
    EXPECT_GT(boot_speedup, 30.0);
    // The first request pays the on-demand costs (COW faults, lazy
    // reconnects) but stays within a few ms of the fresh instance.
    EXPECT_LT(cat_rec.execLatency.toMs(),
              gv_rec.execLatency.toMs() * 4.5);
    // End to end, Catalyzer still wins by a wide margin.
    EXPECT_GT(gv_rec.endToEnd().toMs() / cat_rec.endToEnd().toMs(),
              10.0);
}

} // namespace
} // namespace catalyzer::platform
