/**
 * @file
 * Unit tests for the memory substrate: frames, page cache, address
 * spaces, COW and the Base/Private EPT overlay.
 */

#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "mem/backing_file.h"
#include "mem/base_mapping.h"
#include "mem/frame_store.h"
#include "sim/context.h"

namespace catalyzer::mem {
namespace {

using sim::SimContext;

TEST(FrameStoreTest, AllocateRefUnref)
{
    FrameStore store;
    const FrameId f = store.allocate(FrameSource::Anonymous);
    EXPECT_NE(f, kInvalidFrame);
    EXPECT_EQ(store.refCount(f), 1u);
    store.ref(f);
    EXPECT_EQ(store.refCount(f), 2u);
    store.unref(f);
    store.unref(f);
    EXPECT_EQ(store.refCount(f), 0u);
    EXPECT_EQ(store.liveFrames(), 0u);
}

TEST(FrameStoreTest, IdsNeverReused)
{
    FrameStore store;
    const FrameId a = store.allocate(FrameSource::Anonymous);
    store.unref(a);
    const FrameId b = store.allocate(FrameSource::Anonymous);
    EXPECT_NE(a, b);
}

TEST(FrameStoreTest, DanglingOperationsPanic)
{
    FrameStore store;
    EXPECT_DEATH(store.ref(999), "not live");
    EXPECT_DEATH(store.unref(999), "not live");
}

TEST(BackingFileTest, PageCacheFillAndHit)
{
    SimContext ctx;
    FrameStore store;
    BackingFile file(store, "/img", 16);
    EXPECT_FALSE(file.resident(3));
    const FrameId f1 = file.frameFor(ctx, 3, false);
    EXPECT_TRUE(file.resident(3));
    const FrameId f2 = file.frameFor(ctx, 3, false);
    EXPECT_EQ(f1, f2);
    EXPECT_EQ(ctx.stats().value("mem.page_cache_hits"), 1);
    EXPECT_EQ(file.residentPages(), 1u);
}

TEST(BackingFileTest, EvictReleasesFrames)
{
    SimContext ctx;
    FrameStore store;
    BackingFile file(store, "/img", 8);
    file.frameFor(ctx, 0, false);
    file.frameFor(ctx, 1, false);
    EXPECT_EQ(store.liveFrames(), 2u);
    file.evict();
    EXPECT_EQ(store.liveFrames(), 0u);
}

TEST(BackingFileTest, BeyondEofPanics)
{
    SimContext ctx;
    FrameStore store;
    BackingFile file(store, "/img", 4);
    EXPECT_DEATH(file.frameFor(ctx, 4, false), "beyond EOF");
}

class AddressSpaceTest : public ::testing::Test
{
  protected:
    SimContext ctx;
    FrameStore store;
};

TEST_F(AddressSpaceTest, AnonDemandZero)
{
    AddressSpace space(ctx, store, "t");
    const PageIndex va = space.mapAnon(8, true, "heap");
    EXPECT_EQ(space.touch(va, false), FaultResult::MinorAnon);
    EXPECT_EQ(space.touch(va, false), FaultResult::None);
    EXPECT_EQ(space.privatePages(), 1u);
    EXPECT_EQ(ctx.stats().value("mem.minor_faults_anon"), 1);
}

TEST_F(AddressSpaceTest, UnmappedTouchPanics)
{
    AddressSpace space(ctx, store, "t");
    EXPECT_DEATH(space.touch(0x9999, false), "unmapped");
}

TEST_F(AddressSpaceTest, FilePrivateReadThenWriteCow)
{
    BackingFile file(store, "/bin", 8);
    AddressSpace space(ctx, store, "t");
    const PageIndex va =
        space.mapFile(file, 0, 8, MapKind::FilePrivate, true, "bin");
    EXPECT_EQ(space.touch(va, false), FaultResult::MinorFile);
    // Page-cache frame + mapping ref.
    EXPECT_EQ(space.touch(va, true), FaultResult::Cow);
    EXPECT_EQ(space.touch(va, true), FaultResult::None);
    EXPECT_EQ(ctx.stats().value("mem.cow_faults"), 1);
}

TEST_F(AddressSpaceTest, FilePrivateDirectWriteCowsImmediately)
{
    BackingFile file(store, "/bin", 4);
    AddressSpace space(ctx, store, "t");
    const PageIndex va =
        space.mapFile(file, 0, 4, MapKind::FilePrivate, true, "bin");
    EXPECT_EQ(space.touch(va + 1, true), FaultResult::Cow);
}

TEST_F(AddressSpaceTest, TouchRangeCountsFaults)
{
    AddressSpace space(ctx, store, "t");
    const PageIndex va = space.mapAnon(10, true, "heap");
    EXPECT_EQ(space.touchRange(va, 10, true), 10u);
    EXPECT_EQ(space.touchRange(va, 10, true), 0u);
}

TEST_F(AddressSpaceTest, UnmapReleasesFrames)
{
    AddressSpace space(ctx, store, "t");
    const PageIndex va = space.mapAnon(4, true, "heap");
    space.touchRange(va, 4, true);
    EXPECT_EQ(store.liveFrames(), 4u);
    space.unmap(va);
    EXPECT_EQ(store.liveFrames(), 0u);
    EXPECT_DEATH(space.touch(va, false), "unmapped");
}

TEST_F(AddressSpaceTest, ForkCowSharesThenCopies)
{
    AddressSpace parent(ctx, store, "parent");
    const PageIndex va = parent.mapAnon(4, true, "heap");
    parent.touchRange(va, 4, true);
    EXPECT_EQ(store.liveFrames(), 4u);

    auto child = parent.forkCow("child");
    // No copies yet: every frame shared.
    EXPECT_EQ(store.liveFrames(), 4u);
    EXPECT_EQ(child->privatePages(), 4u);

    // Child write copies one page.
    EXPECT_EQ(child->touch(va, true), FaultResult::Cow);
    EXPECT_EQ(store.liveFrames(), 5u);

    // Parent writing the same page: now sole owner, no copy needed.
    EXPECT_EQ(parent.touch(va, true), FaultResult::CowReuse);
    EXPECT_EQ(store.liveFrames(), 5u);
}

TEST_F(AddressSpaceTest, ForkHonorsCowFlagOnSharedMappings)
{
    BackingFile file(store, "/shm", 4);
    AddressSpace parent(ctx, store, "parent");
    const PageIndex va =
        parent.mapFile(file, 0, 4, MapKind::FileShared, true, "shm");
    parent.touchRange(va, 4, true);

    // plain fork (ignore flag): stays truly shared, no copy on write.
    auto fork_child = parent.forkCow("fork-child", false);
    EXPECT_EQ(fork_child->touch(va, true), FaultResult::None);

    // sfork (honor flag, default cowOnFork=true): the shared region is
    // downgraded to COW for isolation; a child write copies.
    auto sfork_child = parent.forkCow("sfork-child", true);
    EXPECT_EQ(sfork_child->touch(va, true), FaultResult::Cow);
}

TEST_F(AddressSpaceTest, RssAndPssAccounting)
{
    AddressSpace a(ctx, store, "a");
    const PageIndex va = a.mapAnon(10, true, "heap");
    a.touchRange(va, 10, true);
    EXPECT_EQ(a.rssPages(), 10u);
    EXPECT_DOUBLE_EQ(a.pssBytes(), 10.0 * kPageSize);

    auto b = a.forkCow("b");
    // All pages shared two ways: PSS halves, RSS unchanged.
    EXPECT_EQ(a.rssPages(), 10u);
    EXPECT_EQ(b->rssPages(), 10u);
    EXPECT_DOUBLE_EQ(a.pssBytes(), 5.0 * kPageSize);
    EXPECT_DOUBLE_EQ(b->pssBytes(), 5.0 * kPageSize);
}

TEST_F(AddressSpaceTest, BaseMappingReadThroughAndCow)
{
    BackingFile image(store, "/func.img", 64);
    auto base = std::make_shared<BaseMapping>(store, image, 0, 64, "base");

    AddressSpace s1(ctx, store, "s1");
    const PageIndex va1 = s1.attachBase(base);
    // First read populates the base; second sandbox hits it for free.
    EXPECT_EQ(s1.touch(va1, false), FaultResult::BaseFill);
    EXPECT_EQ(s1.touch(va1, false), FaultResult::BaseHit);

    AddressSpace s2(ctx, store, "s2");
    const PageIndex va2 = s2.attachBase(base);
    EXPECT_EQ(s2.touch(va2, false), FaultResult::BaseHit);

    // Writes COW into the private EPT and never dirty the base.
    EXPECT_EQ(s2.touch(va2, true), FaultResult::BaseCow);
    EXPECT_EQ(s2.privatePages(), 1u);
    EXPECT_EQ(base->residentPages(), 1u);
    EXPECT_EQ(s1.touch(va1, false), FaultResult::BaseHit);
}

TEST_F(AddressSpaceTest, BasePssSplitsAcrossAttachments)
{
    BackingFile image(store, "/func.img", 16);
    auto base = std::make_shared<BaseMapping>(store, image, 0, 16, "base");

    AddressSpace s1(ctx, store, "s1");
    const PageIndex va1 = s1.attachBase(base);
    s1.touchRange(va1, 16, false);
    EXPECT_EQ(s1.rssPages(), 16u);
    EXPECT_DOUBLE_EQ(s1.pssBytes(), 16.0 * kPageSize);

    AddressSpace s2(ctx, store, "s2");
    s2.attachBase(base);
    EXPECT_DOUBLE_EQ(s1.pssBytes(), 8.0 * kPageSize);
    EXPECT_DOUBLE_EQ(s2.pssBytes(), 8.0 * kPageSize);
}

TEST_F(AddressSpaceTest, ForkCowPropagatesBaseAttachment)
{
    BackingFile image(store, "/func.img", 8);
    auto base = std::make_shared<BaseMapping>(store, image, 0, 8, "base");
    AddressSpace parent(ctx, store, "parent");
    const PageIndex va = parent.attachBase(base);
    parent.touch(va, false);

    auto child = parent.forkCow("child");
    EXPECT_EQ(base->attachCount(), 2u);
    EXPECT_EQ(child->touch(va, false), FaultResult::BaseHit);
    child.reset();
    EXPECT_EQ(base->attachCount(), 1u);
}

TEST_F(AddressSpaceTest, DoubleBaseAttachPanics)
{
    BackingFile image(store, "/func.img", 8);
    auto base = std::make_shared<BaseMapping>(store, image, 0, 8, "base");
    AddressSpace space(ctx, store, "s");
    space.attachBase(base);
    EXPECT_DEATH(space.attachBase(base), "already attached");
}

TEST(BaseMappingTest, PopulateAllAndDetachUnderflow)
{
    SimContext ctx;
    FrameStore store;
    BackingFile image(store, "/img", 8);
    BaseMapping base(store, image, 0, 8, "b");
    base.populateAll(ctx, false);
    EXPECT_EQ(base.residentPages(), 8u);
    EXPECT_DEATH(base.detach(), "no attachments");
}

TEST(MemTypesTest, PageConversions)
{
    EXPECT_EQ(pagesForBytes(0), 0u);
    EXPECT_EQ(pagesForBytes(1), 1u);
    EXPECT_EQ(pagesForBytes(kPageSize), 1u);
    EXPECT_EQ(pagesForBytes(kPageSize + 1), 2u);
    EXPECT_EQ(pagesForMiB(1), 256u);
    EXPECT_EQ(bytesForPages(2), 2 * kPageSize);
    EXPECT_EQ(pagesForKiB(4), 1u);
    EXPECT_EQ(pagesForKiB(5), 2u);
}

} // namespace
} // namespace catalyzer::mem
