/**
 * @file
 * Tests for the content-addressed chunk layer: content-defined chunking
 * (determinism, cut bounds, cross-image sharing) and the tiered
 * RAM/SSD cache (LRU-2 demotion, eviction, flat-compat silence).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "net/fabric.h"
#include "remote/template_registry.h"
#include "sandbox/pipelines.h"
#include "snapshot/chunk_store.h"
#include "snapshot/image_store.h"

namespace catalyzer::snapshot {
namespace {

using sandbox::FunctionRegistry;
using sandbox::Machine;

std::shared_ptr<FuncImage>
buildImage(FunctionRegistry &registry, const char *app)
{
    return sandbox::ensureSeparatedImage(
        registry.artifactsFor(apps::appByName(app)));
}

std::size_t
chunkBytes(const std::vector<ImageChunk> &chunks)
{
    std::size_t bytes = 0;
    for (const ImageChunk &chunk : chunks)
        bytes += mem::bytesForPages(chunk.pages);
    return bytes;
}

/** Bytes of @p a's chunks whose ids also appear in @p b. */
std::size_t
sharedBytes(const std::vector<ImageChunk> &a,
            const std::vector<ImageChunk> &b)
{
    std::set<ChunkId> in_b;
    for (const ImageChunk &chunk : b)
        in_b.insert(chunk.id);
    std::size_t bytes = 0;
    for (const ImageChunk &chunk : a)
        if (in_b.contains(chunk.id))
            bytes += mem::bytesForPages(chunk.pages);
    return bytes;
}

TEST(ChunkStoreTest, ChunkingIsDeterministicAndCoversTheImage)
{
    Machine machine(3);
    FunctionRegistry registry(machine);
    auto image = buildImage(registry, "python-django");
    const sim::CostModel &costs = machine.ctx().costs();

    const auto first = chunkImage(*image, costs, 0.55);
    const auto second = chunkImage(*image, costs, 0.55);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].id, second[i].id);
        EXPECT_EQ(first[i].pages, second[i].pages);
    }

    // Chunks tile the image exactly.
    std::size_t pages = 0;
    for (const ImageChunk &chunk : first)
        pages += chunk.pages;
    EXPECT_EQ(pages, image->totalPages());
}

TEST(ChunkStoreTest, CutLengthsRespectTheConfiguredBounds)
{
    Machine machine(3);
    FunctionRegistry registry(machine);
    auto image = buildImage(registry, "java-specjbb");
    const sim::CostModel &costs = machine.ctx().costs();

    const auto chunks = chunkImage(*image, costs, 0.55);
    ASSERT_GT(chunks.size(), 1u);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_LE(chunks[i].pages, costs.chunkMaxPages);
        // Only the tail chunk may come up short of the minimum.
        if (i + 1 < chunks.size())
            EXPECT_GE(chunks[i].pages, costs.chunkMinPages);
    }
}

TEST(ChunkStoreTest, SameLanguageImagesShareRuntimeChunks)
{
    // Two Python functions share the interpreter runtime and the
    // shared-library slice of their heaps; the chunker must produce
    // identical ids for that content even though the images differ in
    // size and layout.
    Machine machine(3);
    FunctionRegistry registry(machine);
    auto hello = buildImage(registry, "python-hello");
    auto django = buildImage(registry, "python-django");
    const sim::CostModel &costs = machine.ctx().costs();

    const auto hello_chunks = chunkImage(*hello, costs, 0.55);
    const auto django_chunks = chunkImage(*django, costs, 0.55);
    const std::size_t shared =
        sharedBytes(hello_chunks, django_chunks);
    // Most of the smaller image is the shared interpreter.
    EXPECT_GT(shared, chunkBytes(hello_chunks) * 2 / 5);
}

TEST(ChunkStoreTest, CrossLanguageImagesShareAlmostNothing)
{
    Machine machine(3);
    FunctionRegistry registry(machine);
    auto c = buildImage(registry, "c-hello");
    auto python = buildImage(registry, "python-hello");
    const sim::CostModel &costs = machine.ctx().costs();

    const auto c_chunks = chunkImage(*c, costs, 0.55);
    const auto py_chunks = chunkImage(*python, costs, 0.55);
    const std::size_t shared = sharedBytes(c_chunks, py_chunks);
    EXPECT_LT(shared, chunkBytes(c_chunks) / 20);
}

TEST(ChunkStoreTest, RamEvictionDemotesToSsdBeforeDropping)
{
    TieredChunkCache cache;
    const std::size_t kChunk = 1u << 20;
    cache.configure(/*ram=*/2 * kChunk, /*ssd=*/4 * kChunk);

    // Fill RAM, then overflow it: the LRU-2 victim moves to SSD.
    EXPECT_TRUE(cache.insert(1, kChunk).dropped.empty());
    EXPECT_TRUE(cache.insert(2, kChunk).dropped.empty());
    EXPECT_EQ(cache.ramBytes(), 2 * kChunk);
    const auto spill = cache.insert(3, kChunk);
    EXPECT_EQ(spill.demotions, 1u);
    EXPECT_TRUE(spill.dropped.empty());
    EXPECT_EQ(cache.tierOf(1), ChunkTier::Ssd); // oldest went down
    EXPECT_EQ(cache.tierOf(2), ChunkTier::Ram);
    EXPECT_EQ(cache.tierOf(3), ChunkTier::Ram);

    // An SSD hit promotes back to RAM, demoting another victim.
    const auto promote = cache.insert(1, kChunk);
    EXPECT_EQ(promote.demotions, 1u);
    EXPECT_EQ(cache.tierOf(1), ChunkTier::Ram);
    EXPECT_EQ(cache.tierOf(2), ChunkTier::Ssd);

    // demoteAll empties the RAM tier without losing anything.
    const auto demoted = cache.demoteAll();
    EXPECT_EQ(demoted.demotions, 2u);
    EXPECT_TRUE(demoted.dropped.empty());
    EXPECT_EQ(cache.ramBytes(), 0u);
    EXPECT_EQ(cache.ssdBytes(), 3 * kChunk);
}

TEST(ChunkStoreTest, SsdOverflowDropsColdChunks)
{
    TieredChunkCache cache;
    const std::size_t kChunk = 1u << 20;
    cache.configure(/*ram=*/kChunk, /*ssd=*/2 * kChunk);

    cache.insert(1, kChunk);
    cache.insert(2, kChunk); // 1 demoted to SSD
    cache.insert(3, kChunk); // 2 demoted to SSD
    cache.insert(4, kChunk); // 3 demoted; SSD over budget drops 1
    EXPECT_EQ(cache.tierOf(1), ChunkTier::None);
    EXPECT_EQ(cache.tierOf(2), ChunkTier::Ssd);
    EXPECT_EQ(cache.tierOf(3), ChunkTier::Ssd);
    EXPECT_EQ(cache.tierOf(4), ChunkTier::Ram);
    EXPECT_LE(cache.ssdBytes(), 2 * kChunk);
}

TEST(ChunkStoreTest, EvictedChunksLeaveTheClusterDirectory)
{
    // When the SSD tier drops a chunk the store must unadvertise it,
    // or peers would stream from a holder that no longer has the
    // bytes.
    Machine machine(17);
    FunctionRegistry registry(machine);
    net::Fabric fabric;
    remote::TemplateRegistry directory(&fabric);
    ImageStore store(machine.ctx());
    ChunkStoreConfig config;
    config.enabled = true;
    // Budgets far below one image: publishing churns every chunk
    // through RAM and overboard off the SSD tier.
    config.ramBudgetBytes = 1u << 20;
    config.ssdBudgetBytes = 2u << 20;
    store.configureChunks(config);
    store.attachFabric(&fabric, 0, &directory, &directory);
    store.publish(buildImage(registry, "python-django"));

    EXPECT_GT(machine.ctx().stats().value("image.chunks.evictions"),
              0);
    // Whatever survived in a tier is advertised; everything dropped is
    // not. The directory and the cache must agree chunk by chunk.
    const auto &chunks = store.chunkCache();
    std::size_t advertised = 0;
    for (const ImageChunk &chunk :
         chunkImage(*store.fetch("python-django",
                                 ImageFormat::SeparatedWellFormed),
                    machine.ctx().costs(), config.sharedLibFraction)) {
        const bool cached =
            chunks.tierOf(chunk.id) != ChunkTier::None;
        EXPECT_EQ(directory.chunkHolderCount(chunk.id) > 0, cached);
        advertised += cached ? 1 : 0;
    }
    EXPECT_GT(advertised, 0u);
}

TEST(ChunkStoreTest, DisabledChunkingTouchesNoChunkCounters)
{
    // Flat-compat discipline: with chunking off (the default) a full
    // publish/evict/fetch cycle must not materialize a single
    // image.chunks.* counter in the registry.
    Machine machine(19);
    FunctionRegistry registry(machine);
    ImageStore store(machine.ctx());
    store.publish(buildImage(registry, "python-hello"));
    store.evictLocal("python-hello", ImageFormat::SeparatedWellFormed);
    store.fetch("python-hello", ImageFormat::SeparatedWellFormed);

    for (const auto &[name, value] : machine.ctx().stats().all())
        EXPECT_EQ(name.rfind("image.chunks.", 0), std::string::npos)
            << name;
}

} // namespace
} // namespace catalyzer::snapshot
