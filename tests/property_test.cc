/**
 * @file
 * Property-based tests: parameterized sweeps asserting the system's
 * core invariants across the whole application catalog, random memory
 * workloads and random fd-table histories.
 */

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "sandbox/pipelines.h"

namespace catalyzer {
namespace {

using sandbox::BootResult;
using sandbox::FunctionRegistry;
using sandbox::Machine;
using sandbox::SandboxSystem;

//
// Property 1: for every application in the catalog, the boot-path
// latency ordering of the paper holds, and every restore path
// reproduces the checkpointed guest state exactly.
//
class BootPathProperty : public ::testing::TestWithParam<const char *>
{};

TEST_P(BootPathProperty, OrderingAndFidelity)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    auto &fn = registry.artifactsFor(apps::appByName(GetParam()));

    BootResult gvr = sandbox::bootSandbox(SandboxSystem::GVisorRestore,
                                          fn);
    BootResult cold = runtime.bootCold(fn);
    BootResult warm = runtime.bootWarm(fn);
    BootResult fork = runtime.bootFork(fn);

    const double gvr_ms = gvr.report.total().toMs();
    const double cold_ms = cold.report.total().toMs();
    const double warm_ms = warm.report.total().toMs();
    const double fork_ms = fork.report.total().toMs();

    // Fork boot is the fastest path, and every Catalyzer path beats the
    // stock restore by a wide margin.
    EXPECT_LT(fork_ms, warm_ms) << GetParam();
    EXPECT_LT(fork_ms, cold_ms) << GetParam();
    EXPECT_LT(cold_ms, gvr_ms / 3.0) << GetParam();
    EXPECT_LT(warm_ms, gvr_ms / 3.0) << GetParam();
    EXPECT_LT(fork_ms, 2.5) << GetParam(); // milliseconds, always

    // Fidelity: every path restored the exact checkpointed kernel state.
    const auto &truth = fn.separatedImage->state().kernelGraph;
    EXPECT_TRUE(cold.instance->guest().state() == truth) << GetParam();
    EXPECT_TRUE(warm.instance->guest().state() == truth) << GetParam();
    EXPECT_TRUE(fork.instance->guest().state() == truth) << GetParam();

    // All instances can serve requests.
    EXPECT_GT(cold.instance->invoke().toNs(), 0);
    EXPECT_GT(warm.instance->invoke().toNs(), 0);
    EXPECT_GT(fork.instance->invoke().toNs(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, BootPathProperty,
    ::testing::Values("c-hello", "c-nginx", "java-hello", "java-specjbb",
                      "python-hello", "python-django", "ruby-hello",
                      "ruby-sinatra", "nodejs-hello", "nodejs-web",
                      "ds-text", "ds-uniqueid", "ds-media", "ds-compose",
                      "ds-timeline", "pillow-enhance", "pillow-filters",
                      "pillow-rolling", "pillow-splitmerge",
                      "pillow-transpose", "ec-purchase",
                      "ec-advertisement", "ec-report", "ec-discount"));

//
// Property 2: PSS conservation. For any family of address spaces
// COW-forked from one parent and any write pattern, the PSS summed over
// all spaces equals the total bytes of live anonymous frames.
//
class PssConservation
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{};

TEST_P(PssConservation, SumOfPssEqualsLiveMemory)
{
    const auto [seed, nforks] = GetParam();
    sim::SimContext ctx(seed);
    mem::FrameStore store;
    constexpr std::size_t kPages = 256;

    auto parent =
        std::make_unique<mem::AddressSpace>(ctx, store, "parent");
    const auto va = parent->mapAnon(kPages, true, "heap");
    parent->touchRange(va, kPages, true);

    std::vector<std::unique_ptr<mem::AddressSpace>> family;
    family.push_back(std::move(parent));
    sim::Rng rng(seed);
    for (int f = 0; f < nforks; ++f) {
        auto &src = family[rng.uniformInt(family.size())];
        family.push_back(src->forkCow("child" + std::to_string(f)));
        // Random writes privatize random pages in a random member.
        auto &victim = family[rng.uniformInt(family.size())];
        for (int w = 0; w < 40; ++w)
            victim->touch(va + rng.uniformInt(kPages), true);
    }

    double pss_sum = 0.0;
    for (const auto &space : family)
        pss_sum += space->pssBytes();
    const double live_bytes =
        static_cast<double>(store.liveFrames() * mem::kPageSize);
    EXPECT_NEAR(pss_sum, live_bytes, 1.0);

    // And dropping the whole family frees everything.
    family.clear();
    EXPECT_EQ(store.liveFrames(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndForks, PssConservation,
    ::testing::Combine(::testing::Values(1u, 7u, 23u, 99u),
                       ::testing::Values(1, 3, 8)));

//
// Property 3: the fd table always allocates the lowest free descriptor,
// regardless of history (checked against a straightforward model).
//
class FdTableProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FdTableProperty, LowestFreeAgainstModel)
{
    sim::Rng rng(GetParam());
    vfs::FdTable fds;
    std::set<int> model;
    for (int step = 0; step < 600; ++step) {
        if (!model.empty() && rng.chance(0.4)) {
            // Close a random open fd.
            auto it = model.begin();
            std::advance(it, static_cast<long>(
                                 rng.uniformInt(model.size())));
            fds.close(*it);
            model.erase(it);
        } else {
            const int fd = fds.allocate(vfs::FdEntry{});
            // Model: lowest non-member integer.
            int expect = 0;
            while (model.contains(expect))
                ++expect;
            EXPECT_EQ(fd, expect);
            model.insert(fd);
        }
        EXPECT_EQ(fds.inUse(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdTableProperty,
                         ::testing::Values(3u, 17u, 71u, 113u));

//
// Property 4: separated-image round trips stay lossless even for
// adversarial graph shapes (no pointers at all, everything pointing at
// one hub, very large payloads).
//
TEST(SeparatedImageEdgeCases, NoPointerGraph)
{
    objgraph::ObjectGraph graph;
    for (int i = 0; i < 500; ++i)
        graph.addObject(objgraph::ObjectKind::Misc, 64, {});
    const auto image = objgraph::SeparatedImage::build(graph);
    EXPECT_EQ(image.relocCount(), 0u);
    EXPECT_EQ(image.pointerPages(), 0u);
    EXPECT_TRUE(image.reconstruct() == graph);
}

TEST(SeparatedImageEdgeCases, HubGraph)
{
    objgraph::ObjectGraph graph;
    const auto hub = graph.addObject(objgraph::ObjectKind::Task, 64, {});
    for (int i = 0; i < 500; ++i) {
        graph.addObject(objgraph::ObjectKind::Misc, 32,
                        {hub, hub, hub, hub});
    }
    const auto image = objgraph::SeparatedImage::build(graph);
    EXPECT_EQ(image.relocCount(), 2000u);
    EXPECT_TRUE(image.reconstruct() == graph);
}

TEST(SeparatedImageEdgeCases, LargePayloads)
{
    objgraph::ObjectGraph graph;
    std::uint64_t prev = 0;
    for (int i = 0; i < 50; ++i) {
        std::vector<std::uint64_t> refs;
        if (prev)
            refs.push_back(prev);
        prev = graph.addObject(objgraph::ObjectKind::MemoryRegion,
                               64 * 1024, std::move(refs));
    }
    const auto image = objgraph::SeparatedImage::build(graph);
    EXPECT_GT(image.arenaPages(), 50u * 16u - 16u);
    EXPECT_TRUE(image.reconstruct() == graph);
}

TEST(SeparatedImageEdgeCases, MixedNullAndRealSlots)
{
    objgraph::ObjectGraph graph;
    const auto a = graph.addObject(objgraph::ObjectKind::Task, 16, {});
    graph.addObject(objgraph::ObjectKind::Misc, 16, {0, a, 0, a, 0});
    const auto image = objgraph::SeparatedImage::build(graph);
    EXPECT_EQ(image.relocCount(), 2u);
    EXPECT_TRUE(image.reconstruct() == graph);
}

} // namespace
} // namespace catalyzer
