/**
 * @file
 * Integration tests for the Catalyzer runtime: Zygotes, on-demand
 * restore (cold/warm), sfork fork boot, language templates and the
 * ablation knobs.
 */

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "sandbox/pipelines.h"

namespace catalyzer::core {
namespace {

using sandbox::BootKind;
using sandbox::BootResult;
using sandbox::FunctionArtifacts;
using sandbox::FunctionRegistry;
using sandbox::Machine;
using sandbox::SandboxSystem;

class CatalyzerTest : public ::testing::Test
{
  protected:
    CatalyzerTest() : machine(42), registry(machine), runtime(machine) {}

    FunctionArtifacts &
    fn(const char *name)
    {
        return registry.artifactsFor(apps::appByName(name));
    }

    Machine machine;
    FunctionRegistry registry;
    CatalyzerRuntime runtime;
};

TEST(ZygotePoolTest, PrewarmAndAcquire)
{
    Machine machine(1);
    ZygotePool pool(machine);
    pool.prewarm(2);
    EXPECT_EQ(pool.cached(), 2u);
    Zygote z = pool.acquire();
    EXPECT_NE(z.proc, nullptr);
    EXPECT_TRUE(z.guest->initialized());
    EXPECT_TRUE(z.guest->threads().started());
    EXPECT_EQ(pool.cached(), 1u);
    EXPECT_EQ(pool.misses(), 0u);

    pool.acquire();
    pool.acquire(); // miss -> built on the path
    EXPECT_EQ(pool.misses(), 1u);
    EXPECT_EQ(pool.built(), 3u);
}

TEST(ZygotePoolTest, KvmConfigIsTuned)
{
    const hostos::KvmConfig config = ZygotePool::kvmConfig();
    EXPECT_FALSE(config.pmlEnabled);
    EXPECT_TRUE(config.kvcallocCacheEnabled);
}

TEST_F(CatalyzerTest, ColdBootRestoresFaithfully)
{
    FunctionArtifacts &f = fn("python-hello");
    BootResult r = runtime.bootCold(f);
    ASSERT_NE(r.instance, nullptr);
    EXPECT_EQ(r.instance->bootKind(), BootKind::ColdRestore);
    // The guest object graph equals the checkpointed one.
    EXPECT_TRUE(r.instance->guest().state() ==
                f.separatedImage->state().kernelGraph);
    EXPECT_EQ(r.instance->guest().io().count(),
              f.separatedImage->ioTable().size());
    // Heap is served through the shared Base-EPT, not private copies:
    // the only private pages are the Sentry's own memory and the COWed
    // pointer pages of the metadata arena.
    EXPECT_TRUE(r.instance->heapOnBase());
    const auto sentry_pages = static_cast<std::size_t>(
        machine.ctx().costs().sentrySelfPages);
    EXPECT_LT(r.instance->space().privatePages() - sentry_pages,
              r.instance->heapPages() / 4);
}

TEST_F(CatalyzerTest, ColdBootIsFarFasterThanGVisorRestore)
{
    FunctionArtifacts &f = fn("java-specjbb");
    BootResult baseline =
        sandbox::bootSandbox(SandboxSystem::GVisorRestore, f);
    BootResult cold = runtime.bootCold(f);
    // Fig. 11: Catalyzer-restore vs gVisor-restore is ~10x.
    EXPECT_GT(baseline.report.total().toMs() /
                  cold.report.total().toMs(),
              5.0);
    EXPECT_LT(cold.report.total().toMs(), 60.0);
}

TEST_F(CatalyzerTest, WarmBootSharesBaseAndBeatsGVisorByOrders)
{
    FunctionArtifacts &f = fn("java-hello");
    BootResult warm = runtime.bootWarm(f);
    EXPECT_EQ(warm.instance->bootKind(), BootKind::WarmRestore);
    // Paper: ~14 ms warm boots for Java.
    EXPECT_LT(warm.report.total().toMs(), 25.0);
    EXPECT_EQ(warm.instance->space().base().get(), f.sharedBase.get());

    BootResult warm2 = runtime.bootWarm(f);
    EXPECT_EQ(warm2.instance->space().base().get(), f.sharedBase.get());
}

TEST_F(CatalyzerTest, WarmUsesIoCacheForStartupConnections)
{
    FunctionArtifacts &f = fn("c-nginx");
    runtime.bootWarm(f); // primes base + cache
    EXPECT_FALSE(f.ioCache.empty());
    BootResult warm = runtime.bootWarm(f);
    // The deterministic startup set is connected on the critical path...
    std::size_t established = 0, startup = 0;
    for (const auto &conn : warm.instance->guest().io().all()) {
        startup += conn.usedAtStartup;
        established += conn.established;
    }
    EXPECT_EQ(established, startup);
    // ...and the rest stays lazy.
    EXPECT_LT(established, warm.instance->guest().io().count());
}

TEST_F(CatalyzerTest, ForkBootIsSubMillisecondForC)
{
    BootResult r = runtime.bootFork(fn("c-hello"));
    EXPECT_EQ(r.instance->bootKind(), BootKind::ForkBoot);
    // The headline result: <1 ms fork boot for C-hello.
    EXPECT_LT(r.report.total().toMs(), 1.0);
    EXPECT_GT(r.instance->guest().threads().totalThreads(), 1);
    EXPECT_FALSE(r.instance->guest().threads().transient());
}

TEST_F(CatalyzerTest, ForkBootUnderTwoMsForJava)
{
    BootResult r = runtime.bootFork(fn("java-specjbb"));
    // Paper: 1.5-2 ms for Java functions.
    EXPECT_LT(r.report.total().toMs(), 2.0);
    EXPECT_EQ(r.instance->guest().state().objectCount(), 37838u);
}

TEST_F(CatalyzerTest, TemplateIsReusableForManyForks)
{
    FunctionArtifacts &f = fn("ds-text");
    runtime.prepareTemplate(f);
    const auto *tmpl = runtime.templateFor("ds-text");
    ASSERT_NE(tmpl, nullptr);

    std::vector<std::unique_ptr<sandbox::SandboxInstance>> children;
    for (int i = 0; i < 16; ++i) {
        BootResult r = runtime.bootFork(f);
        EXPECT_LT(r.report.total().toMs(), 2.0);
        children.push_back(std::move(r.instance));
    }
    // The template never left the transient state.
    EXPECT_TRUE(runtime.templateFor("ds-text")
                    ->guest().threads().transient());
}

TEST_F(CatalyzerTest, ForkChildrenShareMemoryUntilWrites)
{
    FunctionArtifacts &f = fn("ds-compose");
    BootResult a = runtime.bootFork(f);
    BootResult b = runtime.bootFork(f);
    // PSS is well below RSS: children share the template's pages.
    EXPECT_LT(a.instance->pssBytes(),
              0.7 * static_cast<double>(a.instance->rssBytes()));

    // Writes during execution privatize pages: PSS grows.
    const double pss_before = b.instance->pssBytes();
    b.instance->invoke();
    EXPECT_GT(b.instance->pssBytes(), pss_before);
}

TEST_F(CatalyzerTest, SforkChildSocketsReconnectLazily)
{
    FunctionArtifacts &f = fn("python-django");
    BootResult r = runtime.bootFork(f);
    std::size_t down_sockets = 0;
    for (const auto &conn : r.instance->guest().io().all()) {
        if (conn.kind == vfs::ConnKind::Socket && !conn.established)
            ++down_sockets;
    }
    EXPECT_GT(down_sockets, 0u);
    // First request re-establishes what it needs, on demand.
    r.instance->invoke();
    EXPECT_GT(machine.ctx().stats().value("exec.lazy_reconnects") +
                  machine.ctx().stats().value("exec.startup_reconnects"),
              0);
}

TEST_F(CatalyzerTest, BootLatencyOrderingColdWarmFork)
{
    FunctionArtifacts &f = fn("nodejs-web");
    BootResult cold = runtime.bootCold(f);
    BootResult warm = runtime.bootWarm(f);
    BootResult fork = runtime.bootFork(f);
    EXPECT_GT(cold.report.total().toMs(), warm.report.total().toMs());
    EXPECT_GT(warm.report.total().toMs(), fork.report.total().toMs());
}

TEST_F(CatalyzerTest, LanguageTemplateColdBoot)
{
    FunctionArtifacts &f = fn("java-hello");
    BootResult r = runtime.bootFromLanguageTemplate(f);
    // Table 2: ~29 ms via the JVM template, ~20x faster than gVisor.
    EXPECT_LT(r.report.total().toMs(), 60.0);
    BootResult gvisor = sandbox::bootSandbox(SandboxSystem::GVisor, f);
    EXPECT_GT(gvisor.report.total().toMs() / r.report.total().toMs(),
              8.0);
    // Inherited template connections plus the function's own never
    // exceed the profile's census (no double-opening).
    EXPECT_EQ(r.instance->guest().io().count(),
              std::max(apps::appByName("java-hello").ioConnections,
                       r.instance->guest().io().count()));
    EXPECT_GE(r.instance->guest().io().count(),
              apps::appByName("java-hello").ioConnections);
}

TEST_F(CatalyzerTest, AblationOverlayMemory)
{
    CatalyzerOptions no_overlay;
    no_overlay.overlayMemory = false;
    Machine m2(42);
    FunctionRegistry reg2(m2);
    CatalyzerRuntime rt2(m2, no_overlay);

    BootResult with = runtime.bootCold(fn("java-specjbb"));
    BootResult without =
        rt2.bootCold(reg2.artifactsFor(apps::appByName("java-specjbb")));
    // Fig. 12: overlay memory saves hundreds of ms on a 200 MB image.
    EXPECT_GT(without.report.total().toMs() -
                  with.report.total().toMs(),
              100.0);
}

TEST_F(CatalyzerTest, AblationSeparatedState)
{
    CatalyzerOptions no_sep;
    no_sep.separatedState = false;
    Machine m2(42);
    FunctionRegistry reg2(m2);
    CatalyzerRuntime rt2(m2, no_sep);

    BootResult with = runtime.bootCold(fn("python-django"));
    BootResult without =
        rt2.bootCold(reg2.artifactsFor(apps::appByName("python-django")));

    auto kernel_ms = [](const BootResult &r) {
        for (const auto &[name, t] : r.report.stages()) {
            if (name == "recover-kernel")
                return t.toMs();
        }
        return 0.0;
    };
    // Fig. 12: separated loading cuts kernel recovery ~6-7x.
    EXPECT_GT(kernel_ms(without) / kernel_ms(with), 4.0);
}

TEST_F(CatalyzerTest, AblationLazyIoReconnection)
{
    CatalyzerOptions eager;
    eager.lazyIoReconnection = false;
    Machine m2(42);
    FunctionRegistry reg2(m2);
    CatalyzerRuntime rt2(m2, eager);

    BootResult lazy = runtime.bootCold(fn("java-specjbb"));
    BootResult eager_boot =
        rt2.bootCold(reg2.artifactsFor(apps::appByName("java-specjbb")));

    auto io_ms = [](const BootResult &r) {
        for (const auto &[name, t] : r.report.stages()) {
            if (name == "reconnect-io")
                return t.toMs();
        }
        return 0.0;
    };
    // Fig. 12: lazy reconnection removes >50 ms from the critical path
    // (about 18x), leaving only the per-fd deferral bookkeeping.
    EXPECT_GT(io_ms(eager_boot) - io_ms(lazy), 30.0);
    EXPECT_GT(io_ms(eager_boot) / io_ms(lazy), 10.0);
    EXPECT_LT(io_ms(lazy), 5.0);
}

TEST_F(CatalyzerTest, FineGrainedEntryPointCutsExecLatency)
{
    FunctionArtifacts &f = fn("pillow-enhance");
    BootResult base = runtime.bootFork(f);
    const auto exec_default = base.instance->invoke();

    BootResult tuned = runtime.bootFork(f);
    tuned.instance->setPrepFraction(0.66);
    tuned.instance->pretouchWorkingSet();
    const auto exec_tuned = tuned.instance->invoke();
    // Fig. 16a: ~3x lower execution latency.
    EXPECT_GT(exec_default.toMs() / exec_tuned.toMs(), 2.0);
}

TEST_F(CatalyzerTest, DroppingTemplateFreesIt)
{
    FunctionArtifacts &f = fn("ruby-hello");
    runtime.prepareTemplate(f);
    EXPECT_NE(runtime.templateFor("ruby-hello"), nullptr);
    runtime.dropTemplate("ruby-hello");
    EXPECT_EQ(runtime.templateFor("ruby-hello"), nullptr);
}

} // namespace
} // namespace catalyzer::core
