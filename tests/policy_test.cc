/**
 * @file
 * Tests for the priority-based boot-policy manager (Sec. 6.9).
 */

#include <gtest/gtest.h>

#include "platform/policy.h"

namespace catalyzer::platform {
namespace {

using sandbox::BootKind;
using sandbox::Machine;

class PolicyTest : public ::testing::Test
{
  protected:
    PolicyTest()
        : machine(42),
          platform(machine,
                   PlatformConfig{BootStrategy::CatalyzerAuto}),
          manager(platform, PolicyConfig{})
    {
        for (const char *name : {"ds-text", "ds-media", "python-hello"})
            platform.deploy(apps::appByName(name));
    }

    Machine machine;
    ServerlessPlatform platform;
    BootPolicyManager manager;
};

TEST_F(PolicyTest, DefaultPriorityIsNormal)
{
    EXPECT_EQ(manager.priority("ds-text"), FunctionPriority::Normal);
    manager.setPriority("ds-text", FunctionPriority::High);
    EXPECT_EQ(manager.priority("ds-text"), FunctionPriority::High);
}

TEST_F(PolicyTest, HighPriorityGetsTemplateEvenWhenQuiet)
{
    manager.setPriority("ds-text", FunctionPriority::High);
    manager.rebalance();
    EXPECT_NE(platform.catalyzer().templateFor("ds-text"), nullptr);
    // Subsequent invocations fork-boot.
    const auto rec = manager.invoke("ds-text");
    EXPECT_EQ(rec.bootKind, BootKind::ForkBoot);
}

TEST_F(PolicyTest, HotNormalFunctionEarnsTemplate)
{
    for (int i = 0; i < 8; ++i)
        manager.invoke("ds-media"); // cold, then warm boots
    EXPECT_EQ(platform.catalyzer().templateFor("ds-media"), nullptr);
    manager.rebalance();
    EXPECT_NE(platform.catalyzer().templateFor("ds-media"), nullptr);
}

TEST_F(PolicyTest, LowPriorityNeverGetsTemplate)
{
    manager.setPriority("python-hello", FunctionPriority::Low);
    for (int i = 0; i < 50; ++i)
        manager.observe("python-hello");
    manager.rebalance();
    EXPECT_EQ(platform.catalyzer().templateFor("python-hello"), nullptr);
}

TEST_F(PolicyTest, ColdFunctionsLoseTheirTemplate)
{
    for (int i = 0; i < 8; ++i)
        manager.observe("ds-text");
    manager.rebalance();
    ASSERT_NE(platform.catalyzer().templateFor("ds-text"), nullptr);

    // No traffic for several windows: the counter decays below the
    // hot threshold and the template is reclaimed.
    manager.rebalance();
    manager.rebalance();
    EXPECT_EQ(platform.catalyzer().templateFor("ds-text"), nullptr);
}

TEST_F(PolicyTest, BudgetCapsTemplatePool)
{
    PolicyConfig tight;
    tight.templateMemoryBudgetBytes = 12u << 20; // fits ~one template
    BootPolicyManager small(platform, tight);
    for (int i = 0; i < 10; ++i) {
        small.observe("ds-text");
        small.observe("ds-media");
    }
    small.rebalance();
    EXPECT_LE(small.templatedFunctions().size(), 1u);
    EXPECT_LE(small.templateMemoryBytes(),
              tight.templateMemoryBudgetBytes);
}

TEST_F(PolicyTest, TemplateMemoryAccounting)
{
    manager.setPriority("ds-text", FunctionPriority::High);
    manager.rebalance();
    EXPECT_GT(manager.templateMemoryBytes(), 0u);
    EXPECT_EQ(manager.templatedFunctions().size(), 1u);
}

TEST_F(PolicyTest, RebalanceEmitsWindowedPolicySeries)
{
    for (int i = 0; i < 10; ++i)
        manager.observe("ds-text");
    manager.rebalance();

    auto &stats = machine.ctx().stats();
    const sim::WindowedHistogram *hot =
        stats.findWindowed("win.policy.hot_set");
    const sim::WindowedHistogram *builds =
        stats.findWindowed("win.policy.template_builds");
    const sim::WindowedHistogram *drops =
        stats.findWindowed("win.policy.template_drops");
    ASSERT_NE(hot, nullptr);
    ASSERT_NE(builds, nullptr);
    ASSERT_NE(drops, nullptr);
    EXPECT_EQ(hot->totalCount(), 1u);

    // A second rebalance appends another observation per series.
    manager.rebalance();
    EXPECT_EQ(hot->totalCount(), 2u);
}

TEST(PolicyNamesTest, PriorityNames)
{
    EXPECT_STREQ(functionPriorityName(FunctionPriority::High), "high");
    EXPECT_STREQ(functionPriorityName(FunctionPriority::Low), "low");
}

} // namespace
} // namespace catalyzer::platform
