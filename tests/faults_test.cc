/**
 * @file
 * Tests for the fault-injection subsystem (src/faults/) and the
 * graceful-degradation fallback chain it drives: retry policy math,
 * injector determinism and pay-for-use behaviour, per-site recovery
 * (zygote builds, remote fetches, I/O reconnects), and the platform's
 * sfork -> warm -> cold -> fresh tier degradation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "catalyzer/runtime.h"
#include "faults/fault_injector.h"
#include "platform/platform.h"
#include "sandbox/pipelines.h"
#include "snapshot/io_reconnect.h"

namespace catalyzer::faults {
namespace {

using namespace sim::time_literals;
using platform::BootStrategy;
using platform::InvocationRecord;
using platform::PlatformConfig;
using platform::ServerlessPlatform;
using sandbox::BootResult;
using sandbox::FunctionArtifacts;
using sandbox::FunctionRegistry;
using sandbox::Machine;

//
// RetryPolicy: exponential backoff with jitter.
//

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBounds)
{
    RetryPolicy policy;
    sim::Rng rng(7);
    for (int attempt = 1; attempt <= 3; ++attempt) {
        const double expected =
            policy.initialBackoff.toMs() *
            std::pow(policy.backoffMultiplier, attempt - 1);
        const double got = policy.backoff(attempt, rng).toMs();
        EXPECT_GE(got, expected * (1.0 - policy.jitterFraction));
        EXPECT_LE(got, expected * (1.0 + policy.jitterFraction));
    }
    // Far past the ceiling, the backoff is capped (jitter can still
    // push it up to (1+j) * cap).
    const double capped = policy.backoff(20, rng).toMs();
    EXPECT_LE(capped,
              policy.maxBackoff.toMs() * (1.0 + policy.jitterFraction));
    EXPECT_GE(capped,
              policy.maxBackoff.toMs() * (1.0 - policy.jitterFraction));
}

TEST(RetryPolicyTest, DeterministicForEqualSeeds)
{
    RetryPolicy policy;
    sim::Rng a(42), b(42);
    for (int attempt = 1; attempt <= 5; ++attempt)
        EXPECT_EQ(policy.backoff(attempt, a).toNs(),
                  policy.backoff(attempt, b).toNs());
}

TEST(RetryPolicyTest, NoJitterIsExact)
{
    RetryPolicy policy;
    policy.jitterFraction = 0.0;
    sim::Rng rng(1);
    EXPECT_EQ(policy.backoff(1, rng).toNs(),
              policy.initialBackoff.toNs());
    EXPECT_EQ(policy.backoff(2, rng).toNs(),
              policy.initialBackoff.toNs() * 2);
}

//
// FaultInjector: decisions, scripting, schedules, pay-for-use.
//

TEST(FaultInjectorTest, DisabledInjectorIsFreeAndSilent)
{
    Machine machine(1);
    auto &ctx = machine.ctx();
    FaultInjector injector; // all-zero config
    EXPECT_FALSE(injector.enabled());

    const sim::SimTime before = ctx.now();
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(
            injector.shouldFail(FaultSite::ImageFetch, ctx.stats()));
        injector.checkWithRetry(ctx, FaultSite::Sfork);
    }
    // Zero perturbation: no virtual time, no injections, no counters.
    EXPECT_EQ(ctx.now(), before);
    EXPECT_EQ(injector.injected(FaultSite::ImageFetch), 0u);
    EXPECT_EQ(ctx.stats().value("faults.injected.image_fetch"), 0);
    EXPECT_EQ(ctx.stats().value("faults.injected.sfork"), 0);
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFails)
{
    Machine machine(1);
    FaultConfig config;
    config.rate(FaultSite::IoReconnect) = 1.0;
    FaultInjector injector(config, &machine.ctx().clock());
    EXPECT_TRUE(injector.enabled());
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(injector.shouldFail(FaultSite::IoReconnect,
                                        machine.ctx().stats()));
    // Other sites are untouched.
    EXPECT_FALSE(injector.shouldFail(FaultSite::Sfork,
                                     machine.ctx().stats()));
    EXPECT_EQ(injector.injected(FaultSite::IoReconnect), 5u);
    EXPECT_EQ(machine.ctx().stats().value(
                  "faults.injected.io_reconnect"), 5);
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence)
{
    FaultConfig config;
    config.rate(FaultSite::ImageFetch) = 0.5;
    config.seed = 99;
    Machine m1(1), m2(1);
    FaultInjector a(config, &m1.ctx().clock());
    FaultInjector b(config, &m2.ctx().clock());
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.shouldFail(FaultSite::ImageFetch, m1.ctx().stats()),
                  b.shouldFail(FaultSite::ImageFetch, m2.ctx().stats()));
}

TEST(FaultInjectorTest, FailNextScriptsExactCount)
{
    Machine machine(1);
    FaultInjector injector(FaultConfig{}, &machine.ctx().clock());
    injector.failNext(FaultSite::ZygoteBuild, 2);
    EXPECT_TRUE(injector.enabled());
    EXPECT_TRUE(injector.shouldFail(FaultSite::ZygoteBuild,
                                    machine.ctx().stats()));
    EXPECT_TRUE(injector.shouldFail(FaultSite::ZygoteBuild,
                                    machine.ctx().stats()));
    EXPECT_FALSE(injector.shouldFail(FaultSite::ZygoteBuild,
                                     machine.ctx().stats()));
    EXPECT_EQ(injector.injected(FaultSite::ZygoteBuild), 2u);
}

TEST(FaultInjectorTest, ScheduleWindowKeyedOffVirtualClock)
{
    Machine machine(1);
    auto &ctx = machine.ctx();
    FaultConfig config;
    config.schedule.push_back({FaultSite::ImageFetch, 1_ms, 2_ms,
                               /*budget=*/2});
    FaultInjector injector(config, &ctx.clock());

    // Before the window: healthy.
    EXPECT_FALSE(injector.shouldFail(FaultSite::ImageFetch, ctx.stats()));
    ctx.charge(1500_us); // inside [1ms, 2ms)
    EXPECT_TRUE(injector.shouldFail(FaultSite::ImageFetch, ctx.stats()));
    EXPECT_TRUE(injector.shouldFail(FaultSite::ImageFetch, ctx.stats()));
    // Budget spent: healthy again even inside the window.
    EXPECT_FALSE(injector.shouldFail(FaultSite::ImageFetch, ctx.stats()));
    ctx.charge(1_ms); // past the window
    EXPECT_FALSE(injector.shouldFail(FaultSite::ImageFetch, ctx.stats()));
}

TEST(FaultInjectorTest, CheckWithRetryChargesAndThrowsOnExhaustion)
{
    Machine machine(1);
    auto &ctx = machine.ctx();
    FaultInjector injector(FaultConfig{}, &ctx.clock());
    const RetryPolicy &retry = injector.retry();

    // One transient failure: survives, costs one timeout + one backoff.
    injector.failNext(FaultSite::Sfork, 1);
    sim::SimTime before = ctx.now();
    injector.checkWithRetry(ctx, FaultSite::Sfork);
    EXPECT_GE(ctx.now() - before, retry.attemptTimeout);
    EXPECT_EQ(ctx.stats().value("faults.retries.sfork"), 1);

    // Persistent failure: every attempt fails, then FaultError.
    injector.failNext(FaultSite::Sfork,
                      static_cast<std::uint64_t>(retry.maxAttempts));
    before = ctx.now();
    EXPECT_THROW(injector.checkWithRetry(ctx, FaultSite::Sfork),
                 FaultError);
    EXPECT_GE(ctx.now() - before,
              retry.attemptTimeout * retry.maxAttempts);
}

TEST(FaultInjectorTest, FaultErrorCarriesSite)
{
    const FaultError err(FaultSite::TemplateDeath, "boom");
    EXPECT_EQ(err.site(), FaultSite::TemplateDeath);
    EXPECT_STREQ(err.what(), "boom");
    EXPECT_STREQ(faultSiteName(FaultSite::TemplateDeath),
                 "template_death");
}

//
// Zygote builds under injected faults.
//

TEST(ZygoteFaultTest, AcquireSurvivesTransientBuildFailure)
{
    Machine machine(7);
    FaultInjector injector(FaultConfig{}, &machine.ctx().clock());
    core::ZygotePool pool(machine);
    pool.setFaultInjector(&injector);

    injector.failNext(FaultSite::ZygoteBuild, 1);
    core::Zygote z = pool.acquire(); // miss -> build retries once
    EXPECT_NE(z.proc, nullptr);
    EXPECT_EQ(machine.ctx().stats().value("faults.retries.zygote_build"),
              1);
    EXPECT_EQ(pool.misses(), 1u);
}

TEST(ZygoteFaultTest, PrewarmStopsOnPersistentFailure)
{
    Machine machine(7);
    FaultInjector injector(FaultConfig{}, &machine.ctx().clock());
    core::ZygotePool pool(machine);
    pool.setFaultInjector(&injector);

    injector.failNext(
        FaultSite::ZygoteBuild,
        static_cast<std::uint64_t>(injector.retry().maxAttempts));
    pool.prewarm(2);
    // The first build exhausted its retries; the round was abandoned
    // rather than crashing the offline builder.
    EXPECT_EQ(pool.cached(), 0u);
    EXPECT_EQ(machine.ctx().stats().value(
                  "catalyzer.zygote_build_aborts"), 1);
    // The fault cleared: replenish tops the pool back up to target.
    pool.replenish();
    EXPECT_EQ(pool.cached(), 2u);
}

//
// Remote image fetches under injected faults.
//

TEST(ImageFetchFaultTest, TransientFetchFailureRetriesThenBoots)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.remoteImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    runtime.faults().failNext(FaultSite::ImageFetch, 1);
    BootResult boot = runtime.bootCold(fn);
    ASSERT_NE(boot.instance, nullptr);
    EXPECT_EQ(machine.ctx().stats().value(
                  "catalyzer.image_fetch_retries"), 1);
    EXPECT_EQ(machine.ctx().stats().value(
                  "faults.injected.image_fetch"), 1);
}

TEST(ImageFetchFaultTest, ExhaustedFetchThrowsThenRecovers)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.remoteImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    runtime.faults().failNext(
        FaultSite::ImageFetch,
        static_cast<std::uint64_t>(runtime.faults().retry().maxAttempts));
    EXPECT_THROW(runtime.bootCold(fn), FaultError);
    // The outage cleared: the next cold boot fetches and completes.
    BootResult boot = runtime.bootCold(fn);
    ASSERT_NE(boot.instance, nullptr);
    EXPECT_TRUE(boot.instance->guest().state().checkIntegrity());
}

//
// I/O reconnects under injected faults.
//

TEST(ReconnectFaultTest, RetryLoopAndPermanentFailure)
{
    Machine machine(3);
    auto &ctx = machine.ctx();
    FaultInjector injector(FaultConfig{}, &ctx.clock());

    vfs::IoConnection conn;
    conn.kind = vfs::ConnKind::Socket;
    conn.path = "tcp://backend:1";
    conn.established = false;

    // Transient: one failure, then the reconnect lands.
    injector.failNext(FaultSite::IoReconnect, 1);
    EXPECT_TRUE(snapshot::reconnectWithRetry(ctx, conn, nullptr,
                                             &injector));
    EXPECT_TRUE(conn.established);
    EXPECT_EQ(ctx.stats().value("snapshot.io_reconnect_retries"), 1);

    // Persistent: every attempt fails; the connection stays down.
    conn.established = false;
    injector.failNext(
        FaultSite::IoReconnect,
        static_cast<std::uint64_t>(injector.retry().maxAttempts));
    EXPECT_FALSE(snapshot::reconnectWithRetry(ctx, conn, nullptr,
                                              &injector));
    EXPECT_FALSE(conn.established);
    EXPECT_EQ(ctx.stats().value("snapshot.io_reconnect_failures"), 1);
}

TEST(ReconnectFaultTest, WarmBootInvalidatesIoCacheEntry)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    auto &stats = machine.ctx().stats();
    auto &fn = registry.artifactsFor(apps::appByName("python-django"));

    // Cold boot records the startup I/O set into the cache.
    runtime.bootCold(fn);
    ASSERT_FALSE(fn.ioCache.empty());
    const std::size_t cached_before = fn.ioCache.size();

    // The first cache-guided reconnect of the warm boot fails for good:
    // the entry is invalidated and the boot still completes, degrading
    // that connection to a lazy request-time reconnect.
    runtime.faults().failNext(
        FaultSite::IoReconnect,
        static_cast<std::uint64_t>(runtime.faults().retry().maxAttempts));
    BootResult warm = runtime.bootWarm(fn);
    ASSERT_NE(warm.instance, nullptr);
    EXPECT_EQ(fn.ioCache.size(), cached_before - 1);
    EXPECT_EQ(stats.value("catalyzer.io_cache_invalidated"), 1);
    EXPECT_EQ(stats.value("boot.fallback.io_eager_lazy"), 1);
    // The first request lazily re-establishes whatever is still down.
    EXPECT_GT(warm.instance->invoke(), sim::SimTime::zero());
}

//
// The platform fallback chain: each tier degrades to the next, and the
// request is served either way.
//

TEST(FallbackChainTest, TemplateDeathDegradesSforkToWarm)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerAuto;
    ServerlessPlatform plat(machine, config);
    auto &stats = machine.ctx().stats();
    const apps::AppProfile &app = apps::appByName("python-hello");
    plat.prepare(app); // builds the template

    // Fault-free baseline: the template serves a fork boot.
    const InvocationRecord healthy = plat.invoke(app.name);
    EXPECT_EQ(healthy.tierServed, "sfork");
    EXPECT_EQ(healthy.tierFallbacks, 0);

    plat.catalyzer().faults().failNext(FaultSite::TemplateDeath, 1);
    const InvocationRecord degraded = plat.invoke(app.name);
    EXPECT_EQ(degraded.tierServed, "warm");
    EXPECT_EQ(degraded.tierFallbacks, 1);
    EXPECT_EQ(stats.value("boot.fallback.sfork_warm"), 1);
    // The dead template is gone; a later fork boot would rebuild it.
    EXPECT_EQ(plat.catalyzer().templateFor(app.name), nullptr);

    // Identical request results: same function, a served instance with
    // intact guest state, and a real execution.
    EXPECT_EQ(degraded.function, healthy.function);
    EXPECT_GT(degraded.execLatency, sim::SimTime::zero());
    auto instances = plat.instancesOf(app.name);
    ASSERT_EQ(instances.size(), 2u);
    EXPECT_TRUE(instances.back()->guest().state().checkIntegrity());
}

TEST(FallbackChainTest, SforkFailureRetriesThenDegradesToWarm)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerFork;
    ServerlessPlatform plat(machine, config);
    const apps::AppProfile &app = apps::appByName("c-hello");
    plat.prepare(app);
    auto &faults = plat.catalyzer().faults();

    // Transient: the sfork retries and still serves the fork tier.
    faults.failNext(FaultSite::Sfork, 1);
    const InvocationRecord retried = plat.invoke(app.name);
    EXPECT_EQ(retried.tierServed, "sfork");
    EXPECT_EQ(machine.ctx().stats().value("faults.retries.sfork"), 1);

    // Persistent: the fork tier fails and warm serves the request.
    faults.failNext(
        FaultSite::Sfork,
        static_cast<std::uint64_t>(faults.retry().maxAttempts));
    const InvocationRecord degraded = plat.invoke(app.name);
    EXPECT_EQ(degraded.tierServed, "warm");
    EXPECT_EQ(machine.ctx().stats().value("boot.fallback.sfork_warm"),
              1);
}

TEST(FallbackChainTest, ZygoteFailureDegradesWarmToCold)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerWarm;
    core::CatalyzerOptions options;
    options.zygotePrewarm = 0; // every warm boot builds on the path
    ServerlessPlatform plat(machine, config, options);
    const apps::AppProfile &app = apps::appByName("c-hello");
    plat.deploy(app);
    auto &faults = plat.catalyzer().faults();

    faults.failNext(
        FaultSite::ZygoteBuild,
        static_cast<std::uint64_t>(faults.retry().maxAttempts));
    const InvocationRecord degraded = plat.invoke(app.name);
    EXPECT_EQ(degraded.tierServed, "cold");
    EXPECT_EQ(degraded.tierFallbacks, 1);
    EXPECT_EQ(machine.ctx().stats().value("boot.fallback.warm_cold"),
              1);

    // Fault cleared: the warm tier serves again.
    const InvocationRecord healthy = plat.invoke(app.name);
    EXPECT_EQ(healthy.tierServed, "warm");
    EXPECT_EQ(healthy.function, degraded.function);
}

TEST(FallbackChainTest, FetchOutageDegradesColdToFresh)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerCold;
    core::CatalyzerOptions options;
    options.remoteImages = true;
    ServerlessPlatform plat(machine, config, options);
    const apps::AppProfile &app = apps::appByName("c-hello");
    plat.deploy(app);
    auto &faults = plat.catalyzer().faults();

    faults.failNext(
        FaultSite::ImageFetch,
        static_cast<std::uint64_t>(faults.retry().maxAttempts));
    const InvocationRecord degraded = plat.invoke(app.name);
    EXPECT_EQ(degraded.tierServed, "fresh");
    EXPECT_EQ(degraded.bootKind, sandbox::BootKind::ColdFresh);
    EXPECT_EQ(machine.ctx().stats().value("boot.fallback.cold_fresh"),
              1);
    EXPECT_GT(degraded.execLatency, sim::SimTime::zero());

    // Outage over: cold restore serves again.
    const InvocationRecord healthy = plat.invoke(app.name);
    EXPECT_EQ(healthy.tierServed, "cold");
    // The tier histogram saw both boots.
    const auto *tiers =
        machine.ctx().stats().findHistogram("boot.tier_served");
    ASSERT_NE(tiers, nullptr);
    EXPECT_EQ(tiers->count(), 2u);
}

TEST(FallbackChainTest, ProbabilisticSoupServesEveryRequest)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerAuto;
    core::CatalyzerOptions options;
    options.remoteImages = true;
    options.verifyImages = true;
    options.faults.setAllRates(0.05);
    ServerlessPlatform plat(machine, config, options);
    const apps::AppProfile &app = apps::appByName("python-hello");
    plat.prepare(app);

    constexpr int kRequests = 60;
    int fallbacks = 0;
    for (int i = 0; i < kRequests; ++i) {
        const InvocationRecord record = plat.invoke(app.name);
        EXPECT_FALSE(record.tierServed.empty());
        EXPECT_GT(record.execLatency, sim::SimTime::zero());
        fallbacks += record.tierFallbacks;
    }
    // At 5% per site something must have been injected and survived.
    std::int64_t injected = 0;
    for (std::size_t i = 0; i < kFaultSiteCount; ++i)
        injected += static_cast<std::int64_t>(
            plat.catalyzer().faults().injected(
                static_cast<FaultSite>(i)));
    EXPECT_GT(injected, 0);
    EXPECT_GE(fallbacks, 0);
    EXPECT_EQ(plat.totalInstances(), static_cast<std::size_t>(kRequests));
}

} // namespace
} // namespace catalyzer::faults
