/**
 * @file
 * Tests for the parallel discrete-event core: per-machine event
 * queues, conservative-lookahead horizons and the executor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/executor.h"

namespace catalyzer::sim {
namespace {

using namespace time_literals;

TEST(EventQueueTest, RunsInTimeOrderWithFifoTieBreak)
{
    EventQueue q;
    std::vector<int> order;
    // Posted deliberately out of time order; the two 5 ms events must
    // keep their posting order (FIFO tie-break).
    q.post(5_ms, [&] { order.push_back(1); });
    q.post(2_ms, [&] { order.push_back(0); });
    q.post(5_ms, [&] { order.push_back(2); });
    q.post(9_ms, [&] { order.push_back(3); });

    EXPECT_EQ(q.nextAt(), 2_ms);
    EXPECT_EQ(q.runAll(nullptr), 4u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, HorizonIsExclusiveAndAdvancesTheClock)
{
    EventQueue q;
    VirtualClock clock;
    std::vector<int> order;
    q.post(1_ms, [&] { order.push_back(0); });
    q.post(3_ms, [&] { order.push_back(1); });
    q.post(5_ms, [&] { order.push_back(2); });

    // Events strictly below the horizon run; the 3 ms event at the
    // horizon waits for the next round.
    EXPECT_EQ(q.runUntil(3_ms, &clock), 1u);
    EXPECT_EQ(order, (std::vector<int>{0}));
    // The clock idled forward to the event's release time.
    EXPECT_EQ(clock.now(), 1_ms);
    EXPECT_EQ(q.nextAt(), 3_ms);

    EXPECT_EQ(q.runAll(&clock), 2u);
    EXPECT_EQ(clock.now(), 5_ms);
}

TEST(EventQueueTest, LaggingClockIsNotMovedBackwards)
{
    EventQueue q;
    VirtualClock clock;
    clock.advance(10_ms); // machine still busy past the release time
    q.post(4_ms, [] {});
    EXPECT_EQ(q.runAll(&clock), 1u);
    // Virtual clocks are monotonic: a late machine serves back to
    // back, it does not rewind.
    EXPECT_EQ(clock.now(), 10_ms);
}

TEST(EventQueueTest, HandlersMayPostFollowUpEvents)
{
    EventQueue q;
    std::vector<int> order;
    q.post(1_ms, [&] {
        order.push_back(0);
        q.post(2_ms, [&] { order.push_back(1); });
    });
    EXPECT_EQ(q.runAll(nullptr), 2u);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(ConservativeSchedulerTest, HorizonIsMinNextPlusLookahead)
{
    std::vector<EventQueue> queues(3);
    queues[0].post(8_ms, [] {});
    queues[1].post(3_ms, [] {});
    // queues[2] stays empty.
    ConservativeScheduler sched(queues, 2_ms);

    // min(nextAt) = 3 ms, lookahead 2 ms -> horizon 5 ms.
    EXPECT_EQ(sched.nextHorizon(100_ms), 5_ms);
    // The barrier clamps the horizon.
    EXPECT_EQ(sched.nextHorizon(4_ms), 4_ms);
    EXPECT_FALSE(sched.done());
}

TEST(ConservativeSchedulerTest, UnboundedLookaheadClampsToBarrier)
{
    std::vector<EventQueue> queues(2);
    queues[0].post(1_ms, [] {});
    ConservativeScheduler sched(
        queues, ConservativeScheduler::unboundedLookahead());
    // No overflow: the horizon lands exactly on the barrier, so the
    // whole epoch drains in one round.
    EXPECT_EQ(sched.nextHorizon(500_ms), 500_ms);
}

TEST(ConservativeSchedulerTest, RunRoundsDrainsAllQueuesUpToBarrier)
{
    std::vector<EventQueue> queues(2);
    std::vector<int> ran;
    for (int i = 0; i < 4; ++i) {
        queues[0].post(SimTime::milliseconds(2.0 * i + 1),
                       [&ran, i] { ran.push_back(i); });
        queues[1].post(SimTime::milliseconds(2.0 * i + 1),
                       [&ran, i] { ran.push_back(10 + i); });
    }
    ConservativeScheduler sched(queues, 1_ms);
    std::size_t rounds = 0;
    sched.runRounds(4_ms, [&](SimTime horizon) {
        ++rounds;
        std::size_t n = 0;
        for (auto &q : queues)
            n += q.runUntil(horizon, nullptr);
        return n;
    });
    // Events below the 4 ms barrier ran (1 ms and 3 ms from each
    // queue); the 5/7 ms tail belongs to the next epoch.
    EXPECT_EQ(ran.size(), 4u);
    EXPECT_FALSE(sched.done());
    EXPECT_EQ(queues[0].nextAt(), 5_ms);
    // Short 1 ms lookahead: draining 2 timestamps takes >= 2 rounds.
    EXPECT_GE(rounds, 2u);
}

TEST(ConservativeSchedulerDeathTest, StuckRoundBelowBarrierPanics)
{
    std::vector<EventQueue> queues(1);
    queues[0].post(1_ms, [] {});
    ConservativeScheduler sched(queues, 1_ms);
    // A round callback that refuses to run events cannot make
    // progress below the barrier: spinning forever is a bug.
    EXPECT_DEATH(sched.runRounds(100_ms, [](SimTime) { return 0u; }),
                 "no progress");
}

TEST(ParallelExecutorTest, SerialModeRunsInIndexOrder)
{
    ParallelExecutor exec(1);
    EXPECT_TRUE(exec.serial());
    std::vector<std::size_t> order;
    exec.forEach(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelExecutorTest, ParallelModeRunsEveryIndexExactlyOnce)
{
    ParallelExecutor exec(8);
    EXPECT_FALSE(exec.serial());
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    exec.forEach(kN, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelExecutorTest, WritesAreVisibleAfterTheImplicitBarrier)
{
    ParallelExecutor exec(4);
    std::vector<std::size_t> out(256, 0);
    exec.forEach(out.size(), [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelExecutorTest, ThreadsFromEnvParsesAndClamps)
{
    ::unsetenv("CATALYZER_SIM_THREADS");
    EXPECT_EQ(ParallelExecutor::threadsFromEnv(1), 1);
    EXPECT_EQ(ParallelExecutor::threadsFromEnv(4), 4);
    ::setenv("CATALYZER_SIM_THREADS", "8", 1);
    EXPECT_EQ(ParallelExecutor::threadsFromEnv(1), 8);
    ::setenv("CATALYZER_SIM_THREADS", "0", 1);
    EXPECT_EQ(ParallelExecutor::threadsFromEnv(1), 1);
    ::setenv("CATALYZER_SIM_THREADS", "100000", 1);
    EXPECT_EQ(ParallelExecutor::threadsFromEnv(1), 256);
    ::setenv("CATALYZER_SIM_THREADS", "not-a-number", 1);
    EXPECT_EQ(ParallelExecutor::threadsFromEnv(3), 3);
    ::unsetenv("CATALYZER_SIM_THREADS");
}

} // namespace
} // namespace catalyzer::sim
