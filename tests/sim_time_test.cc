/**
 * @file
 * Unit tests for SimTime, VirtualClock and Stopwatch.
 */

#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/time.h"

namespace catalyzer::sim {
namespace {

using namespace time_literals;

TEST(SimTimeTest, ConstructionAndConversion)
{
    EXPECT_EQ(SimTime::nanoseconds(1500).toNs(), 1500);
    EXPECT_DOUBLE_EQ(SimTime::microseconds(2.5).toUs(), 2.5);
    EXPECT_DOUBLE_EQ(SimTime::milliseconds(3.25).toMs(), 3.25);
    EXPECT_DOUBLE_EQ(SimTime::seconds(0.5).toSec(), 0.5);
    EXPECT_EQ(SimTime::zero().toNs(), 0);
}

TEST(SimTimeTest, Literals)
{
    EXPECT_EQ((5_us).toNs(), 5000);
    EXPECT_EQ((1.5_ms).toNs(), 1500000);
    EXPECT_EQ((2_s).toNs(), 2000000000LL);
    EXPECT_EQ((100_ns).toNs(), 100);
}

TEST(SimTimeTest, Arithmetic)
{
    const SimTime a = 2_ms;
    const SimTime b = 500_us;
    EXPECT_DOUBLE_EQ((a + b).toMs(), 2.5);
    EXPECT_DOUBLE_EQ((a - b).toMs(), 1.5);
    EXPECT_DOUBLE_EQ((b * 4).toMs(), 2.0);
    EXPECT_DOUBLE_EQ((a / 4).toUs(), 500.0);
    EXPECT_DOUBLE_EQ((a * 0.5).toMs(), 1.0);
    EXPECT_DOUBLE_EQ((3 * b).toMs(), 1.5);
}

TEST(SimTimeTest, CompoundAssignment)
{
    SimTime t = 1_ms;
    t += 1_ms;
    EXPECT_DOUBLE_EQ(t.toMs(), 2.0);
    t -= 500_us;
    EXPECT_DOUBLE_EQ(t.toMs(), 1.5);
}

TEST(SimTimeTest, Comparison)
{
    EXPECT_LT(1_us, 1_ms);
    EXPECT_GT(1_s, 999_ms);
    EXPECT_EQ(1000_us, 1_ms);
    EXPECT_LE(SimTime::zero(), 0_ns);
}

TEST(SimTimeTest, ToStringPicksUnits)
{
    EXPECT_EQ((1.369_ms).toString(), "1.369 ms");
    EXPECT_EQ((970_us).toString(), "970.000 us");
    EXPECT_EQ((50_ns).toString(), "50 ns");
    EXPECT_EQ((2_s).toString(), "2.000 s");
}

TEST(VirtualClockTest, AdvanceAccumulates)
{
    VirtualClock clock;
    EXPECT_EQ(clock.now(), SimTime::zero());
    clock.advance(3_ms);
    clock.advance(250_us);
    EXPECT_DOUBLE_EQ(clock.now().toMs(), 3.25);
}

TEST(VirtualClockTest, NegativeAdvancePanics)
{
    VirtualClock clock;
    EXPECT_DEATH(clock.advance(SimTime::zero() - 1_ns), "negative span");
}

TEST(VirtualClockTest, AdvanceParallelDividesAcrossWorkers)
{
    VirtualClock clock;
    // 100 items at 1 us each on 8 workers -> ceil(100/8) = 13 us.
    clock.advanceParallel(1_us, 100, 8);
    EXPECT_DOUBLE_EQ(clock.now().toUs(), 13.0);
}

TEST(VirtualClockTest, AdvanceParallelEdgeCases)
{
    VirtualClock clock;
    clock.advanceParallel(1_us, 0, 8); // no items, no time
    EXPECT_EQ(clock.now(), SimTime::zero());
    clock.advanceParallel(1_us, 5, 0); // worker floor of 1
    EXPECT_DOUBLE_EQ(clock.now().toUs(), 5.0);
}

TEST(StopwatchTest, MeasuresSpans)
{
    VirtualClock clock;
    Stopwatch watch(clock);
    clock.advance(2_ms);
    EXPECT_DOUBLE_EQ(watch.elapsed().toMs(), 2.0);
    watch.restart();
    clock.advance(1_ms);
    EXPECT_DOUBLE_EQ(watch.elapsed().toMs(), 1.0);
}

TEST(VirtualClockTest, ResetReturnsToZero)
{
    VirtualClock clock;
    clock.advance(5_ms);
    clock.reset();
    EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(StopwatchDeathTest, ElapsedPanicsWhenClockMovesBehindStart)
{
    // reset() between construction and read used to silently
    // underflow elapsed() into a ~292-year span.
    VirtualClock clock;
    clock.advance(5_ms);
    Stopwatch watch(clock);
    clock.reset();
    EXPECT_DEATH((void)watch.elapsed(), "clock moved behind start");
}

TEST(StopwatchTest, SurvivesResetWhenRearmedAfterwards)
{
    VirtualClock clock;
    clock.advance(5_ms);
    Stopwatch watch(clock);
    clock.reset();
    watch.restart(); // new timeline, new start: fine again
    clock.advance(3_ms);
    EXPECT_DOUBLE_EQ(watch.elapsed().toMs(), 3.0);
}

TEST(SimTimeDeathTest, IntegralMultiplyOverflowPanics)
{
    // A fleet-scale page-batch count against a large per-item cost
    // used to wrap the virtual clock silently.
    const SimTime big = SimTime::seconds(4.0e9); // ~4e18 ns
    EXPECT_DEATH((void)(big * std::int64_t{3}), "overflows");
    EXPECT_DEATH((void)(big * -3), "overflows");
}

TEST(SimTimeDeathTest, DoubleMultiplyOverflowPanics)
{
    const SimTime big = SimTime::seconds(4.0e9);
    EXPECT_DEATH((void)(big * 3.0), "overflows");
    EXPECT_DEATH((void)(3.0 * big), "overflows");
}

TEST(SimTimeTest, MultiplyStaysExactForIntegralCounts)
{
    // 2^53 + 1 is not representable as a double: the integral overload
    // must carry counts past the double mantissa exactly.
    const std::int64_t count = (std::int64_t{1} << 53) + 1;
    EXPECT_EQ((1_ns * count).toNs(), count);
    EXPECT_EQ((1_ns * -count).toNs(), -count);
    // In-range multiplies keep working on both paths.
    EXPECT_EQ((2_ms * 4).toNs(), 8'000'000);
    EXPECT_EQ((2_ms * 4.0).toNs(), 8'000'000);
}

TEST(VirtualClockDeathTest, AdvanceParallelOverflowPanics)
{
    // per_item * ceil(count/workers) flows through the checked
    // multiply: overflow panics instead of wrapping now_.
    VirtualClock clock;
    EXPECT_DEATH(clock.advanceParallel(SimTime::seconds(4.0e9),
                                       1'000'000, 1),
                 "overflows");
}

} // namespace
} // namespace catalyzer::sim
