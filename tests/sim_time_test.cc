/**
 * @file
 * Unit tests for SimTime, VirtualClock and Stopwatch.
 */

#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/time.h"

namespace catalyzer::sim {
namespace {

using namespace time_literals;

TEST(SimTimeTest, ConstructionAndConversion)
{
    EXPECT_EQ(SimTime::nanoseconds(1500).toNs(), 1500);
    EXPECT_DOUBLE_EQ(SimTime::microseconds(2.5).toUs(), 2.5);
    EXPECT_DOUBLE_EQ(SimTime::milliseconds(3.25).toMs(), 3.25);
    EXPECT_DOUBLE_EQ(SimTime::seconds(0.5).toSec(), 0.5);
    EXPECT_EQ(SimTime::zero().toNs(), 0);
}

TEST(SimTimeTest, Literals)
{
    EXPECT_EQ((5_us).toNs(), 5000);
    EXPECT_EQ((1.5_ms).toNs(), 1500000);
    EXPECT_EQ((2_s).toNs(), 2000000000LL);
    EXPECT_EQ((100_ns).toNs(), 100);
}

TEST(SimTimeTest, Arithmetic)
{
    const SimTime a = 2_ms;
    const SimTime b = 500_us;
    EXPECT_DOUBLE_EQ((a + b).toMs(), 2.5);
    EXPECT_DOUBLE_EQ((a - b).toMs(), 1.5);
    EXPECT_DOUBLE_EQ((b * 4).toMs(), 2.0);
    EXPECT_DOUBLE_EQ((a / 4).toUs(), 500.0);
    EXPECT_DOUBLE_EQ((a * 0.5).toMs(), 1.0);
    EXPECT_DOUBLE_EQ((3 * b).toMs(), 1.5);
}

TEST(SimTimeTest, CompoundAssignment)
{
    SimTime t = 1_ms;
    t += 1_ms;
    EXPECT_DOUBLE_EQ(t.toMs(), 2.0);
    t -= 500_us;
    EXPECT_DOUBLE_EQ(t.toMs(), 1.5);
}

TEST(SimTimeTest, Comparison)
{
    EXPECT_LT(1_us, 1_ms);
    EXPECT_GT(1_s, 999_ms);
    EXPECT_EQ(1000_us, 1_ms);
    EXPECT_LE(SimTime::zero(), 0_ns);
}

TEST(SimTimeTest, ToStringPicksUnits)
{
    EXPECT_EQ((1.369_ms).toString(), "1.369 ms");
    EXPECT_EQ((970_us).toString(), "970.000 us");
    EXPECT_EQ((50_ns).toString(), "50 ns");
    EXPECT_EQ((2_s).toString(), "2.000 s");
}

TEST(VirtualClockTest, AdvanceAccumulates)
{
    VirtualClock clock;
    EXPECT_EQ(clock.now(), SimTime::zero());
    clock.advance(3_ms);
    clock.advance(250_us);
    EXPECT_DOUBLE_EQ(clock.now().toMs(), 3.25);
}

TEST(VirtualClockTest, NegativeAdvancePanics)
{
    VirtualClock clock;
    EXPECT_DEATH(clock.advance(SimTime::zero() - 1_ns), "negative span");
}

TEST(VirtualClockTest, AdvanceParallelDividesAcrossWorkers)
{
    VirtualClock clock;
    // 100 items at 1 us each on 8 workers -> ceil(100/8) = 13 us.
    clock.advanceParallel(1_us, 100, 8);
    EXPECT_DOUBLE_EQ(clock.now().toUs(), 13.0);
}

TEST(VirtualClockTest, AdvanceParallelEdgeCases)
{
    VirtualClock clock;
    clock.advanceParallel(1_us, 0, 8); // no items, no time
    EXPECT_EQ(clock.now(), SimTime::zero());
    clock.advanceParallel(1_us, 5, 0); // worker floor of 1
    EXPECT_DOUBLE_EQ(clock.now().toUs(), 5.0);
}

TEST(StopwatchTest, MeasuresSpans)
{
    VirtualClock clock;
    Stopwatch watch(clock);
    clock.advance(2_ms);
    EXPECT_DOUBLE_EQ(watch.elapsed().toMs(), 2.0);
    watch.restart();
    clock.advance(1_ms);
    EXPECT_DOUBLE_EQ(watch.elapsed().toMs(), 1.0);
}

TEST(VirtualClockTest, ResetReturnsToZero)
{
    VirtualClock clock;
    clock.advance(5_ms);
    clock.reset();
    EXPECT_EQ(clock.now(), SimTime::zero());
}

} // namespace
} // namespace catalyzer::sim
