/**
 * @file
 * Integration tests for the boot pipelines of the compared systems.
 */

#include <gtest/gtest.h>

#include "sandbox/pipelines.h"

namespace catalyzer::sandbox {
namespace {

class PipelineTest : public ::testing::Test
{
  protected:
    PipelineTest() : machine(42), registry(machine) {}

    FunctionArtifacts &
    fn(const char *name)
    {
        return registry.artifactsFor(apps::appByName(name));
    }

    Machine machine;
    FunctionRegistry registry;
};

TEST_F(PipelineTest, GVisorBootReachesFuncEntry)
{
    BootResult r = bootSandbox(SandboxSystem::GVisor, fn("c-hello"));
    ASSERT_NE(r.instance, nullptr);
    EXPECT_TRUE(r.instance->guest().atFuncEntryPoint());
    EXPECT_GT(r.instance->guest().state().objectCount(), 0u);
    EXPECT_EQ(r.instance->guest().io().count(),
              apps::appByName("c-hello").ioConnections);
    EXPECT_GT(r.instance->heapPages(), 0u);
    EXPECT_GT(r.report.sandboxInit().toMs(), 0.0);
    EXPECT_GT(r.report.appInit().toMs(), 0.0);
    EXPECT_EQ(r.instance->bootLatency().toNs(), r.report.total().toNs());
}

TEST_F(PipelineTest, GVisorMatchesPaperCHelloLatency)
{
    BootResult r = bootSandbox(SandboxSystem::GVisor, fn("c-hello"));
    // Paper Sec. 2.2: 142 ms startup for C under gVisor.
    EXPECT_NEAR(r.report.total().toMs(), 142.0, 25.0);
}

TEST_F(PipelineTest, SandboxInitIsStableAcrossWorkloads)
{
    BootResult hello = bootSandbox(SandboxSystem::GVisor, fn("c-hello"));
    BootResult jbb =
        bootSandbox(SandboxSystem::GVisor, fn("java-specjbb"));
    // Sandbox init is workload-independent (paper Sec. 2.2, finding 3).
    EXPECT_NEAR(hello.report.sandboxInit().toMs(),
                jbb.report.sandboxInit().toMs(), 3.0);
    // Application init dominates for the heavy Java app (Insight I).
    EXPECT_GT(jbb.report.appInit().toMs(),
              10.0 * jbb.report.sandboxInit().toMs());
}

TEST_F(PipelineTest, NativeIsFastestAndUnsandboxed)
{
    BootResult native = bootSandbox(SandboxSystem::Native,
                                    fn("java-hello"));
    BootResult gvisor = bootSandbox(SandboxSystem::GVisor,
                                    fn("java-hello"));
    // Table 2: native Java ~89 ms, gVisor ~659 ms.
    EXPECT_LT(native.report.total().toMs(), 160.0);
    EXPECT_GT(gvisor.report.total().toMs(),
              3.0 * native.report.total().toMs());
}

TEST_F(PipelineTest, AllSystemsExceedHundredMsOnHello)
{
    // Sec. 2.2: every stock sandbox needs >100 ms even for C-hello.
    for (SandboxSystem system :
         {SandboxSystem::Docker, SandboxSystem::HyperContainer,
          SandboxSystem::FireCracker, SandboxSystem::GVisor}) {
        Machine m(7);
        FunctionRegistry reg(m);
        BootResult r = bootSandbox(
            system, reg.artifactsFor(apps::appByName("c-hello")));
        EXPECT_GT(r.report.total().toMs(), 100.0)
            << sandboxSystemName(system);
    }
}

TEST_F(PipelineTest, HyperContainerIsSlowest)
{
    BootResult hyper =
        bootSandbox(SandboxSystem::HyperContainer, fn("python-hello"));
    for (SandboxSystem system : {SandboxSystem::Docker,
                                 SandboxSystem::FireCracker,
                                 SandboxSystem::GVisor}) {
        BootResult r = bootSandbox(system, fn("python-hello"));
        EXPECT_LT(r.report.total().toMs(), hyper.report.total().toMs())
            << sandboxSystemName(system);
    }
}

TEST_F(PipelineTest, RestoreSkipsAppInitButStillSlow)
{
    BootResult fresh = bootSandbox(SandboxSystem::GVisor,
                                   fn("java-specjbb"));
    BootResult restore = bootSandbox(SandboxSystem::GVisorRestore,
                                     fn("java-specjbb"));
    // Fig. 6: 2x-5x faster than a fresh boot...
    const double speedup = fresh.report.total().toMs() /
                           restore.report.total().toMs();
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 8.0);
    // ...but still far from fast (≈400 ms for SPECjbb).
    EXPECT_GT(restore.report.total().toMs(), 300.0);
    // The restored guest is a faithful copy of the checkpointed one.
    EXPECT_EQ(restore.instance->guest().state().objectCount(), 37838u);
}

TEST_F(PipelineTest, RestoreBreakdownMatchesFig2)
{
    BootResult r = bootSandbox(SandboxSystem::GVisorRestore,
                               fn("java-specjbb"));
    double app_mem = 0, kernel = 0, io = 0;
    for (const auto &[name, t] : r.report.stages()) {
        if (name == "restore-app-memory")
            app_mem = t.toMs();
        else if (name == "restore-kernel")
            kernel = t.toMs();
        else if (name == "restore-reconnect-io")
            io = t.toMs();
    }
    EXPECT_NEAR(app_mem, 128.8, 30.0); // paper: 128.805 ms
    EXPECT_NEAR(kernel, 79.2, 20.0);   // paper: 79.180 ms
    EXPECT_NEAR(io, 56.7, 25.0);       // paper: 56.723 ms
}

TEST_F(PipelineTest, SecondBootIsPageCacheWarm)
{
    FunctionArtifacts &f = fn("python-hello");
    bootSandbox(SandboxSystem::GVisor, f);
    const auto cold_reads =
        machine.ctx().stats().value("mem.page_cache_storage_reads");
    bootSandbox(SandboxSystem::GVisor, f);
    // No further storage reads: the binary is in the page cache.
    EXPECT_EQ(machine.ctx().stats().value("mem.page_cache_storage_reads"),
              cold_reads);
}

TEST_F(PipelineTest, InvokeTouchesWorkingSetAndIo)
{
    BootResult r = bootSandbox(SandboxSystem::GVisor, fn("c-nginx"));
    const auto exec = r.instance->invoke();
    EXPECT_GT(exec.toMs(),
              apps::appByName("c-nginx").execComputeCost.toMs() * 0.99);
    EXPECT_EQ(r.instance->invocations(), 1u);
    // A freshly-booted instance has live connections: no lazy work.
    EXPECT_EQ(machine.ctx().stats().value("exec.lazy_reconnects"), 0);
}

TEST_F(PipelineTest, CaptureStateMatchesProfile)
{
    BootResult r = bootSandbox(SandboxSystem::GVisor, fn("ruby-hello"));
    const snapshot::GuestState state = r.instance->captureState();
    const auto &app = apps::appByName("ruby-hello");
    EXPECT_EQ(state.memoryPages, app.heapPages());
    EXPECT_EQ(state.ioConns.size(), app.ioConnections);
    EXPECT_EQ(state.app, &app);
}

TEST_F(PipelineTest, ImagesAreBuiltOnceAndCached)
{
    FunctionArtifacts &f = fn("nodejs-hello");
    auto a = ensureProtoImage(f);
    auto b = ensureProtoImage(f);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(machine.ctx().stats().value("snapshot.images_built"), 1);
}

TEST_F(PipelineTest, InstanceDestructionReleasesMemory)
{
    const std::size_t before = machine.frames().liveFrames();
    {
        BootResult r = bootSandbox(SandboxSystem::GVisor, fn("c-hello"));
        EXPECT_GT(machine.frames().liveFrames(), before);
    }
    // Only the page cache (binary) survives the instance.
    const std::size_t after = machine.frames().liveFrames();
    EXPECT_LE(after, before + apps::appByName("c-hello").binaryPages);
}

TEST(BootReportTest, StageAccounting)
{
    BootReport report;
    report.addSandboxStage("a", sim::SimTime::milliseconds(2));
    report.addAppStage("b", sim::SimTime::milliseconds(3));
    EXPECT_DOUBLE_EQ(report.sandboxInit().toMs(), 2.0);
    EXPECT_DOUBLE_EQ(report.appInit().toMs(), 3.0);
    EXPECT_DOUBLE_EQ(report.total().toMs(), 5.0);
    EXPECT_EQ(report.stages().size(), 2u);
}

} // namespace
} // namespace catalyzer::sandbox
