/**
 * @file
 * Unit tests for func-images, checkpointing and the baseline eager
 * restore engine.
 */

#include <gtest/gtest.h>

#include "guest/guest_kernel.h"
#include "mem/address_space.h"
#include "snapshot/func_image.h"
#include "snapshot/io_reconnect.h"
#include "snapshot/restore_baseline.h"

namespace catalyzer::snapshot {
namespace {

using sim::SimContext;

GuestState
makeState(SimContext &ctx, const apps::AppProfile &app)
{
    GuestState state;
    state.app = &app;
    state.kernelGraph = objgraph::ObjectGraph::synthesize(
        ctx.rng(), app.graphSpec());
    for (std::size_t i = 0; i < app.ioConnections; ++i) {
        vfs::IoConnection conn;
        conn.id = i + 1;
        conn.kind = i % 4 == 1 ? vfs::ConnKind::Socket
                               : vfs::ConnKind::File;
        conn.path = "/app/data/conn" + std::to_string(i);
        conn.established = true;
        conn.usedAtStartup = i < app.ioConnections / 4;
        conn.usedByRequests = i % 2 == 0;
        state.ioConns.push_back(std::move(conn));
    }
    state.memoryPages = app.heapPages();
    return state;
}

class SnapshotTest : public ::testing::Test
{
  protected:
    SimContext ctx;
    mem::FrameStore frames;
    const apps::AppProfile &app = apps::appByName("python-hello");
};

TEST_F(SnapshotTest, CompressedImageIsSmallerOnDisk)
{
    CheckpointEngine engine(ctx);
    GuestState state = makeState(ctx, app);
    auto proto = engine.capture(frames, "fn",
                                ImageFormat::CompressedProto, state);
    auto separated = engine.capture(
        frames, "fn", ImageFormat::SeparatedWellFormed, state);
    // The well-formed image trades storage for mmap-ability (Sec. 4.3).
    EXPECT_GT(separated->totalPages(), proto->totalPages());
    EXPECT_EQ(separated->memorySectionPages(), state.memoryPages);
    EXPECT_LT(proto->memorySectionPages(), state.memoryPages);
}

TEST_F(SnapshotTest, FormatAccessorsAreGuarded)
{
    CheckpointEngine engine(ctx);
    GuestState state = makeState(ctx, app);
    auto proto = engine.capture(frames, "fn",
                                ImageFormat::CompressedProto, state);
    EXPECT_DEATH(proto->separated(), "no separated payload");
    auto sep = engine.capture(frames, "fn",
                              ImageFormat::SeparatedWellFormed, state);
    EXPECT_DEATH(sep->proto(), "no proto payload");
}

TEST_F(SnapshotTest, CheckpointChargesOfflineWork)
{
    CheckpointEngine engine(ctx);
    GuestState state = makeState(ctx, app);
    engine.capture(frames, "fn", ImageFormat::CompressedProto, state);
    EXPECT_EQ(ctx.stats().value("snapshot.serialized_objects"),
              static_cast<std::int64_t>(state.kernelGraph.objectCount()));
    EXPECT_GT(ctx.stats().value("snapshot.compressed_pages"), 0);
}

TEST_F(SnapshotTest, EagerRestoreRebuildsEverything)
{
    CheckpointEngine engine(ctx);
    GuestState state = makeState(ctx, app);
    auto image = engine.capture(frames, "fn",
                                ImageFormat::CompressedProto, state);

    guest::GuestKernel guest(ctx, "restored");
    mem::AddressSpace space(ctx, frames, "restored");
    EagerRestoreEngine restorer(ctx);
    const RestoreBreakdown breakdown =
        restorer.restore(*image, guest, space, nullptr);

    // The guest state is a faithful copy.
    EXPECT_TRUE(guest.state() == state.kernelGraph);
    // All connections re-established eagerly.
    EXPECT_EQ(guest.io().count(), state.ioConns.size());
    EXPECT_EQ(guest.io().establishedCount(), state.ioConns.size());
    // All memory loaded eagerly.
    EXPECT_EQ(space.privatePages(), state.memoryPages);
    // Every phase took time.
    EXPECT_GT(breakdown.appMemory.toNs(), 0);
    EXPECT_GT(breakdown.kernelMeta.toNs(), 0);
    EXPECT_GT(breakdown.ioReconnect.toNs(), 0);
    EXPECT_EQ(breakdown.total().toNs(),
              (breakdown.appMemory + breakdown.kernelMeta +
               breakdown.ioReconnect).toNs());
    // Threads are back.
    EXPECT_GT(guest.threads().totalThreads(), 0);
}

TEST_F(SnapshotTest, EagerRestoreRejectsSeparatedImages)
{
    CheckpointEngine engine(ctx);
    GuestState state = makeState(ctx, app);
    auto image = engine.capture(frames, "fn",
                                ImageFormat::SeparatedWellFormed, state);
    guest::GuestKernel guest(ctx, "g");
    mem::AddressSpace space(ctx, frames, "s");
    EagerRestoreEngine restorer(ctx);
    EXPECT_DEATH(restorer.restore(*image, guest, space, nullptr),
                 "CompressedProto");
}

TEST(IoReconnectTest, CostsByKindAndIdempotence)
{
    SimContext ctx;
    vfs::IoConnection file{1, vfs::ConnKind::File, "/x", false, true,
                           true};
    vfs::IoConnection sock{2, vfs::ConnKind::Socket, "tcp://b:1", false,
                           true, true};
    const auto t_file = reconnectConnection(ctx, file, nullptr);
    const auto t_sock = reconnectConnection(ctx, sock, nullptr);
    EXPECT_TRUE(file.established);
    EXPECT_TRUE(sock.established);
    // Sockets pay the reconnect handshake and cost more than files.
    EXPECT_GT(t_sock.toUs(), t_file.toUs());
    // Re-reconnecting is free.
    EXPECT_EQ(reconnectConnection(ctx, file, nullptr).toNs(), 0);
    EXPECT_EQ(ctx.stats().value("snapshot.io_reconnects"), 2);
}

TEST(ImageFormatTest, Names)
{
    EXPECT_STREQ(imageFormatName(ImageFormat::CompressedProto),
                 "compressed-proto");
    EXPECT_STREQ(imageFormatName(ImageFormat::SeparatedWellFormed),
                 "separated-well-formed");
}

} // namespace
} // namespace catalyzer::snapshot
