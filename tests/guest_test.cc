/**
 * @file
 * Unit tests for the guest kernel: Table 1 syscall policy, the Go
 * runtime transient single-thread mechanism, and the Sentry model.
 */

#include <gtest/gtest.h>

#include "guest/go_runtime.h"
#include "guest/guest_kernel.h"
#include "guest/syscall_policy.h"
#include "sim/context.h"

namespace catalyzer::guest {
namespace {

using sim::SimContext;

TEST(SyscallPolicyTest, TableCoversPaperCategories)
{
    std::size_t proc = 0, vfs = 0, file = 0, net = 0, mem = 0, misc = 0;
    for (const auto &rule : syscallTable()) {
        switch (rule.category) {
          case SyscallCategory::Proc: ++proc; break;
          case SyscallCategory::Vfs: ++vfs; break;
          case SyscallCategory::File: ++file; break;
          case SyscallCategory::Network: ++net; break;
          case SyscallCategory::Mem: ++mem; break;
          case SyscallCategory::Misc: ++misc; break;
        }
    }
    // Table 1 row sizes.
    EXPECT_EQ(proc, 12u);
    EXPECT_EQ(vfs, 18u);
    EXPECT_EQ(file, 7u);
    EXPECT_EQ(net, 6u);
    EXPECT_EQ(mem, 2u);
    EXPECT_EQ(misc, 13u);
}

TEST(SyscallPolicyTest, HandlersMatchCategories)
{
    // Every File syscall is handled by the stateless overlayFS; every
    // Network syscall by reconnect; mmap/munmap by sfork itself.
    for (const auto &rule : syscallTable()) {
        if (rule.category == SyscallCategory::File) {
            EXPECT_EQ(rule.cls, SyscallClass::Handled) << rule.name;
            EXPECT_EQ(rule.handler, SforkHandler::StatelessOverlayFs);
        }
        if (rule.category == SyscallCategory::Network) {
            EXPECT_EQ(rule.handler, SforkHandler::Reconnect) << rule.name;
        }
        if (rule.category == SyscallCategory::Mem) {
            EXPECT_EQ(rule.handler, SforkHandler::SforkMemory)
                << rule.name;
        }
        if (rule.cls == SyscallClass::Allowed) {
            EXPECT_EQ(rule.handler, SforkHandler::None) << rule.name;
        }
        if (rule.cls == SyscallClass::Handled) {
            EXPECT_NE(rule.handler, SforkHandler::None) << rule.name;
        }
    }
}

TEST(SyscallPolicyTest, ClassifyKnownAndUnknown)
{
    EXPECT_EQ(classifySyscall("clone"), SyscallClass::Handled);
    EXPECT_EQ(classifySyscall("futex"), SyscallClass::Allowed);
    EXPECT_EQ(classifySyscall("openat"), SyscallClass::Handled);
    // Not in Table 1 -> removed from the sandbox.
    EXPECT_EQ(classifySyscall("ptrace"), SyscallClass::Denied);
    EXPECT_EQ(classifySyscall("io_uring_setup"), SyscallClass::Denied);
    EXPECT_EQ(findSyscallRule("ptrace"), nullptr);
    ASSERT_NE(findSyscallRule("mmap"), nullptr);
    EXPECT_EQ(findSyscallRule("mmap")->handler, SforkHandler::SforkMemory);
}

TEST(SyscallPolicyTest, ClassListsArePartition)
{
    const auto allowed = syscallsWithClass(SyscallClass::Allowed);
    const auto handled = syscallsWithClass(SyscallClass::Handled);
    EXPECT_EQ(allowed.size() + handled.size(), syscallTable().size());
}

class GoRuntimeTest : public ::testing::Test
{
  protected:
    SimContext ctx;
};

TEST_F(GoRuntimeTest, StartAndCensus)
{
    GoRuntimeModel rt(ctx);
    EXPECT_EQ(rt.totalThreads(), 0);
    rt.start(3, 2);
    EXPECT_EQ(rt.totalThreads(), 5);
    rt.addBlockingThread();
    EXPECT_EQ(rt.totalThreads(), 6);
    rt.removeBlockingThread();
    EXPECT_EQ(rt.totalThreads(), 5);
    EXPECT_DEATH(rt.removeBlockingThread(), "no blocking thread");
}

TEST_F(GoRuntimeTest, TransientSingleThreadLifecycle)
{
    GoRuntimeModel rt(ctx);
    rt.start(3, 2);
    rt.addBlockingThread();
    rt.addBlockingThread();
    EXPECT_EQ(rt.totalThreads(), 7);

    rt.enterTransientSingleThread();
    EXPECT_TRUE(rt.transient());
    EXPECT_EQ(rt.totalThreads(), 1); // only m0
    EXPECT_EQ(rt.savedCensus().total(), 7);

    rt.expandFromTransient();
    EXPECT_FALSE(rt.transient());
    EXPECT_EQ(rt.totalThreads(), 7);
}

TEST_F(GoRuntimeTest, TransientChargesBlockingTimeout)
{
    GoRuntimeModel with_blocking(ctx);
    with_blocking.start(3, 2);
    with_blocking.addBlockingThread();
    SimContext ctx2;
    GoRuntimeModel without(ctx2);
    without.start(3, 2);

    const auto t0 = ctx.now();
    with_blocking.enterTransientSingleThread();
    const auto blocked_cost = ctx.now() - t0;
    const auto t1 = ctx2.now();
    without.enterTransientSingleThread();
    const auto clean_cost = ctx2.now() - t1;
    // Draining a parked blocking thread waits for its time-out.
    EXPECT_GT(blocked_cost.toMs(),
              clean_cost.toMs() +
                  ctx.costs().blockingThreadTimeout.toMs() * 0.99);
}

TEST_F(GoRuntimeTest, StateMachineViolationsPanic)
{
    GoRuntimeModel rt(ctx);
    EXPECT_DEATH(rt.enterTransientSingleThread(), "before start");
    rt.start(3, 2);
    EXPECT_DEATH(rt.expandFromTransient(), "without transient");
    rt.enterTransientSingleThread();
    EXPECT_DEATH(rt.enterTransientSingleThread(), "already transient");
    EXPECT_DEATH(rt.addBlockingThread(), "while transient");
    EXPECT_DEATH(rt.start(1, 1), "already started");
}

TEST_F(GoRuntimeTest, AdoptTransientState)
{
    GoRuntimeModel tmpl(ctx);
    tmpl.start(3, 2);
    tmpl.addBlockingThread();
    tmpl.enterTransientSingleThread();

    GoRuntimeModel child(ctx);
    child.adoptTransientState(tmpl);
    EXPECT_TRUE(child.transient());
    child.expandFromTransient();
    EXPECT_EQ(child.totalThreads(), 6);
    // Template still transient and reusable.
    EXPECT_TRUE(tmpl.transient());

    GoRuntimeModel not_transient(ctx);
    not_transient.start(1, 1);
    GoRuntimeModel other(ctx);
    EXPECT_DEATH(other.adoptTransientState(not_transient),
                 "not transient");
}

TEST(GuestKernelTest, FreshInitAndMounts)
{
    SimContext ctx;
    GuestKernel guest(ctx, "g");
    EXPECT_FALSE(guest.initialized());
    guest.initializeFresh();
    EXPECT_TRUE(guest.initialized());
    EXPECT_DEATH(guest.initializeFresh(), "double init");
    guest.mountRootfs(9);
    EXPECT_EQ(guest.mounts(), 9);
    EXPECT_EQ(ctx.stats().value("guest.mounts"), 9);
}

TEST(GuestKernelTest, SyscallDispatchFollowsPolicy)
{
    SimContext ctx;
    GuestKernel guest(ctx, "g");
    EXPECT_TRUE(guest.syscall("read"));
    EXPECT_TRUE(guest.syscall("futex"));
    EXPECT_FALSE(guest.syscall("ptrace"));
    EXPECT_EQ(ctx.stats().value("guest.denied_syscalls"), 1);
    EXPECT_EQ(ctx.stats().value("guest.handled_syscalls"), 1);
    EXPECT_EQ(ctx.stats().value("guest.allowed_syscalls"), 1);
}

TEST(GuestKernelTest, FuncEntryPointTrap)
{
    SimContext ctx;
    GuestKernel guest(ctx, "g");
    EXPECT_FALSE(guest.atFuncEntryPoint());
    guest.reachFuncEntryPoint();
    EXPECT_TRUE(guest.atFuncEntryPoint());
    EXPECT_EQ(ctx.stats().value("guest.func_entry_traps"), 1);
    guest.leaveFuncEntryPoint();
    EXPECT_FALSE(guest.atFuncEntryPoint());
}

} // namespace
} // namespace catalyzer::guest
