/**
 * @file
 * Randomized operation fuzzing: long random sequences of platform
 * operations (invoke, teardown, expire, rebalance, strategy-specific
 * preparation) must never panic, and the platform's bookkeeping
 * invariants must hold after every step.
 */

#include <gtest/gtest.h>

#include "platform/policy.h"
#include "platform/workload.h"

namespace catalyzer::platform {
namespace {

using sandbox::Machine;
using namespace sim::time_literals;

class PlatformFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 BootStrategy>>
{};

TEST_P(PlatformFuzz, RandomOperationSequenceHoldsInvariants)
{
    const auto [seed, strategy] = GetParam();
    Machine machine(seed);
    PlatformConfig config;
    config.strategy = strategy;
    config.reuseIdleInstances = (seed % 2) == 0;
    ServerlessPlatform plat(machine, config);
    BootPolicyManager policy(plat, PolicyConfig{256u << 20, 3, 0.5});

    const std::vector<std::string> functions = {
        "ds-text", "ds-media", "python-hello", "c-hello",
    };
    for (const auto &fn : functions)
        plat.deploy(apps::appByName(fn));

    sim::Rng rng(seed * 7919);
    std::size_t invocations = 0;
    for (int step = 0; step < 120; ++step) {
        const auto &fn = functions[rng.uniformInt(functions.size())];
        const double dice = rng.uniform();
        if (dice < 0.62) {
            const InvocationRecord rec = policy.invoke(fn);
            ++invocations;
            EXPECT_GE(rec.endToEnd().toNs(), rec.execLatency.toNs());
            EXPECT_GT(rec.execLatency.toNs(), 0);
        } else if (dice < 0.72) {
            plat.teardown(fn);
        } else if (dice < 0.82) {
            plat.expireIdle(sim::SimTime::milliseconds(
                rng.uniform(1.0, 2000.0)));
        } else if (dice < 0.92) {
            policy.rebalance();
        } else {
            plat.prepare(apps::appByName(fn));
        }

        // Invariants after every operation.
        std::size_t per_fn = 0;
        for (const auto &fn2 : functions)
            per_fn += plat.runningCount(fn2);
        EXPECT_EQ(per_fn, plat.totalInstances());
        EXPECT_LE(plat.idleCount(), plat.totalInstances());
    }
    EXPECT_EQ(machine.ctx().stats().value("platform.invocations"),
              static_cast<std::int64_t>(invocations));

    // Cleanup releases every instance's memory; only page cache,
    // images, bases, templates and zygotes remain.
    const std::size_t frames_with_instances =
        machine.frames().liveFrames();
    for (const auto &fn : functions)
        plat.teardown(fn);
    EXPECT_LE(machine.frames().liveFrames(), frames_with_instances);
    EXPECT_EQ(plat.totalInstances(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, PlatformFuzz,
    ::testing::Combine(
        ::testing::Values(1u, 17u, 4242u),
        ::testing::Values(BootStrategy::GVisor,
                          BootStrategy::GVisorRestore,
                          BootStrategy::CatalyzerCold,
                          BootStrategy::CatalyzerWarm,
                          BootStrategy::CatalyzerFork,
                          BootStrategy::CatalyzerAuto)));

/** The workload driver also survives heavy churn with TTL expiry. */
TEST(WorkloadFuzzTest, DenseMixWithTinyTtl)
{
    Machine machine(99);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerAuto;
    config.reuseIdleInstances = true;
    ServerlessPlatform plat(machine, config);

    std::vector<std::string> functions;
    for (const apps::AppProfile *app :
         apps::appsInSuite(apps::Suite::DeathStar)) {
        plat.deploy(*app);
        functions.push_back(app->name);
    }
    WorkloadSpec spec = WorkloadSpec::zipf(functions, 120.0, 1.2);
    spec.durationSec = 3.0;
    spec.keepAliveTtl = 40_ms;
    spec.seed = 5;
    const WorkloadReport report = WorkloadDriver(plat).run(spec);
    EXPECT_GT(report.requests, 100u);
    EXPECT_GT(report.expired, 0u);
    EXPECT_EQ(report.requests, report.boots + report.reuses);
}

} // namespace
} // namespace catalyzer::platform
