/**
 * @file
 * Unit + property tests for the object graph and its two checkpoint
 * formats. The round-trip properties are the correctness core of
 * separated state recovery.
 */

#include <gtest/gtest.h>

#include "objgraph/object_graph.h"
#include "objgraph/proto_codec.h"
#include "objgraph/separated_image.h"
#include "sim/rng.h"

namespace catalyzer::objgraph {
namespace {

TEST(ObjectGraphTest, AddAndLookup)
{
    ObjectGraph graph;
    const auto a = graph.addObject(ObjectKind::Task, 64, {});
    const auto b = graph.addObject(ObjectKind::Timer, 32, {a});
    EXPECT_EQ(graph.objectCount(), 2u);
    EXPECT_EQ(graph.object(b).refs.front(), a);
    EXPECT_EQ(graph.pointerCount(), 1u);
    EXPECT_EQ(graph.payloadBytes(), 96u);
    EXPECT_TRUE(graph.checkIntegrity());
}

TEST(ObjectGraphTest, ForwardRefPanics)
{
    ObjectGraph graph;
    EXPECT_DEATH(graph.addObject(ObjectKind::Task, 64, {1}), "ref");
}

TEST(ObjectGraphTest, BadIdPanics)
{
    ObjectGraph graph;
    EXPECT_DEATH(graph.object(1), "bad id");
    EXPECT_DEATH(graph.object(0), "bad id");
}

TEST(ObjectGraphTest, NullRefsAllowed)
{
    ObjectGraph graph;
    graph.addObject(ObjectKind::Misc, 16, {0, 0});
    EXPECT_EQ(graph.pointerCount(), 0u);
    EXPECT_TRUE(graph.checkIntegrity());
}

TEST(GraphSpecTest, ScaledToApproximatesTarget)
{
    for (std::size_t target : {500u, 5000u, 37838u}) {
        const GraphSpec spec = GraphSpec::scaledTo(target);
        const double ratio = static_cast<double>(spec.totalObjects()) /
                             static_cast<double>(target);
        EXPECT_NEAR(ratio, 1.0, 0.05) << "target " << target;
    }
}

TEST(GraphSpecTest, SynthesizeMatchesSpecCounts)
{
    sim::Rng rng(42);
    const GraphSpec spec = GraphSpec::scaledTo(5000);
    const ObjectGraph graph = ObjectGraph::synthesize(rng, spec);
    EXPECT_EQ(graph.objectCount(), spec.totalObjects());
    EXPECT_TRUE(graph.checkIntegrity());
    // Pointer-bearing fraction is respected within tolerance.
    std::size_t bearing = 0;
    for (const auto &obj : graph.objects())
        bearing += obj.refs.empty() ? 0 : 1;
    const double frac = static_cast<double>(bearing) /
                        static_cast<double>(graph.objectCount());
    EXPECT_NEAR(frac, spec.pointerBearingFraction, 0.03);
}

TEST(ProtoImageTest, RoundTripIsIdentity)
{
    sim::Rng rng(7);
    const ObjectGraph graph =
        ObjectGraph::synthesize(rng, GraphSpec::scaledTo(2000));
    const ProtoImage image = ProtoImage::build(graph);
    EXPECT_EQ(image.objectCount(), graph.objectCount());
    EXPECT_LT(image.compressedBytes(), image.uncompressedBytes());
    EXPECT_TRUE(image.reconstruct() == graph);
}

TEST(SeparatedImageTest, RoundTripIsIdentity)
{
    sim::Rng rng(7);
    const ObjectGraph graph =
        ObjectGraph::synthesize(rng, GraphSpec::scaledTo(2000));
    const SeparatedImage image = SeparatedImage::build(graph);
    EXPECT_EQ(image.objectCount(), graph.objectCount());
    EXPECT_TRUE(image.reconstruct() == graph);
}

TEST(SeparatedImageTest, RelocCountMatchesPointerCount)
{
    sim::Rng rng(11);
    const ObjectGraph graph =
        ObjectGraph::synthesize(rng, GraphSpec::scaledTo(3000));
    const SeparatedImage image = SeparatedImage::build(graph);
    EXPECT_EQ(image.relocCount(), graph.pointerCount());
    EXPECT_EQ(image.relocTableBytes(),
              image.relocCount() * SeparatedImage::kRelocEntryBytes);
}

TEST(SeparatedImageTest, ClusteringKeepsPointerPagesCompact)
{
    sim::Rng rng(13);
    const ObjectGraph graph =
        ObjectGraph::synthesize(rng, GraphSpec::scaledTo(20000));
    const SeparatedImage image = SeparatedImage::build(graph);
    // Pointer-bearing objects are clustered at the front: the dirtied
    // pages must be far fewer than the whole arena.
    EXPECT_LT(image.pointerPages(), image.arenaPages() / 3);
    EXPECT_GT(image.pointerPages(), 0u);
    EXPECT_EQ(image.pointerPageList().size(), image.pointerPages());
    // Clustered => the dirty page list is a dense prefix of the arena.
    const auto pages = image.pointerPageList();
    EXPECT_LE(pages.back(), pages.size() + 1);
}

TEST(SeparatedImageTest, ArenaAccountsForEveryObject)
{
    sim::Rng rng(17);
    const ObjectGraph graph =
        ObjectGraph::synthesize(rng, GraphSpec::scaledTo(1000));
    const SeparatedImage image = SeparatedImage::build(graph);
    std::size_t min_bytes = 0;
    for (const auto &obj : graph.objects()) {
        min_bytes += SeparatedImage::kObjectHeaderBytes +
                     obj.payloadBytes +
                     obj.refs.size() * SeparatedImage::kPointerSlotBytes;
    }
    EXPECT_GE(image.arenaBytes(), min_bytes);
    // Alignment overhead is bounded (8 bytes per object).
    EXPECT_LE(image.arenaBytes(), min_bytes + 8 * graph.objectCount());
}

/** Property: both formats are lossless across sizes and seeds. */
class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::size_t>>
{};

TEST_P(CodecRoundTrip, BothFormatsLossless)
{
    const auto [seed, objects] = GetParam();
    sim::Rng rng(seed);
    const ObjectGraph graph =
        ObjectGraph::synthesize(rng, GraphSpec::scaledTo(objects));
    EXPECT_TRUE(ProtoImage::build(graph).reconstruct() == graph);
    EXPECT_TRUE(SeparatedImage::build(graph).reconstruct() == graph);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, CodecRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u),
                       ::testing::Values(50u, 500u, 5000u)));

TEST(SeparatedImageTest, ArenaIsRealBytes)
{
    sim::Rng rng(3);
    const ObjectGraph graph =
        ObjectGraph::synthesize(rng, GraphSpec::scaledTo(300));
    const SeparatedImage image = SeparatedImage::build(graph);
    // The arena is materialized, byte for byte.
    EXPECT_EQ(image.arena().size(), image.arenaBytes());
    // Pointer slots in the stored arena are zeroed (partially
    // deserialized): the bytes at every relocation site must be zero.
    for (const Reloc &reloc : image.relocs()) {
        for (std::size_t i = 0; i < SeparatedImage::kPointerSlotBytes;
             ++i) {
            EXPECT_EQ(image.arena()[reloc.slotOffset + i], 0u);
        }
    }
}

TEST(SeparatedImageTest, ByteCorruptionIsDetected)
{
    sim::Rng rng(5);
    const ObjectGraph graph =
        ObjectGraph::synthesize(rng, GraphSpec::scaledTo(200));
    SeparatedImage image = SeparatedImage::build(graph);
    // Flip a payload byte (headers start each object; payload follows).
    image.corruptByteForTesting(SeparatedImage::kObjectHeaderBytes + 1);
    EXPECT_DEATH(image.reconstruct(), "corruption");
}

TEST(ObjectKindTest, NamesAreStable)
{
    EXPECT_STREQ(objectKindName(ObjectKind::Task), "task");
    EXPECT_STREQ(objectKindName(ObjectKind::SessionList), "session_list");
}

} // namespace
} // namespace catalyzer::objgraph
