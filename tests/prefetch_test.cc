/**
 * @file
 * Tests for the working-set record-and-prefetch subsystem
 * (src/prefetch/): manifest merging and serialization, the fault
 * recorder, batched prefetch cost accounting, the runtime's
 * record/prefetch/fallback wiring, and the platform-level reclaim path
 * that prefetch makes affordable.
 */

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "mem/base_mapping.h"
#include "platform/policy.h"
#include "prefetch/fault_recorder.h"
#include "prefetch/prefetcher.h"
#include "prefetch/working_set_manifest.h"
#include "sandbox/pipelines.h"
#include "snapshot/image_store.h"

namespace catalyzer::prefetch {
namespace {

using sandbox::BootResult;
using sandbox::FunctionArtifacts;
using sandbox::FunctionRegistry;
using sandbox::Machine;

//
// WorkingSetManifest: merging, freezing, serialization.
//

TEST(WorkingSetManifestTest, MergeStabilityAcrossNoisyTraces)
{
    // Four traces share a stable core; each carries one-off noise pages.
    WorkingSetManifest manifest("fn", 1, /*max_traces=*/4,
                                /*min_fraction=*/0.5);
    manifest.addTrace({10, 11, 12, 90});
    manifest.addTrace({10, 12, 11, 91});
    manifest.addTrace({11, 10, 12, 92});
    manifest.addTrace({12, 10, 11, 93});
    ASSERT_TRUE(manifest.frozen());

    // Threshold = ceil(0.5 * 4) = 2: the core survives, noise does not.
    const std::vector<mem::PageIndex> stable = manifest.stableSet();
    EXPECT_EQ(stable, (std::vector<mem::PageIndex>{10, 11, 12}));
    EXPECT_EQ(manifest.pageUniverse(), 7u);

    // Frozen: further traces are ignored.
    manifest.addTrace({50, 51, 52});
    EXPECT_EQ(manifest.traceCount(), 4u);
    EXPECT_EQ(manifest.stableSet().size(), 3u);
}

TEST(WorkingSetManifestTest, StableSetKeepsFirstSeenOrder)
{
    WorkingSetManifest manifest("fn", 1, 2, 1.0);
    manifest.addTrace({7, 3, 5});
    manifest.addTrace({5, 3, 7});
    // All pages are in both traces; order follows the first trace's
    // first-access order so batched reads replay the recording.
    EXPECT_EQ(manifest.stableSet(),
              (std::vector<mem::PageIndex>{7, 3, 5}));
}

TEST(WorkingSetManifestTest, SingleTraceIsUsable)
{
    WorkingSetManifest manifest("fn", 3, 3, 0.5);
    EXPECT_FALSE(manifest.usable());
    manifest.addTrace({1, 2});
    EXPECT_TRUE(manifest.usable());
    EXPECT_FALSE(manifest.frozen());
    // threshold = max(1, ceil(0.5 * 1)) = 1: everything qualifies.
    EXPECT_EQ(manifest.stableSet().size(), 2u);
}

TEST(WorkingSetManifestTest, SerializeRoundTrip)
{
    WorkingSetManifest manifest("django", 7, 3, 0.6);
    manifest.addTrace({4, 8, 15, 16});
    manifest.addTrace({8, 4, 23, 42});

    const std::string blob = manifest.serialize();
    auto copy = WorkingSetManifest::deserialize(blob);
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->functionName(), "django");
    EXPECT_EQ(copy->imageGeneration(), 7u);
    EXPECT_EQ(copy->maxTraces(), 3u);
    EXPECT_DOUBLE_EQ(copy->minFraction(), 0.6);
    EXPECT_EQ(copy->traceCount(), 2u);
    EXPECT_EQ(copy->stableSet(), manifest.stableSet());
    EXPECT_TRUE(copy->matches(7));
    EXPECT_FALSE(copy->matches(8));
}

TEST(WorkingSetManifestTest, DeserializeRejectsMalformed)
{
    EXPECT_EQ(WorkingSetManifest::deserialize(""), nullptr);
    EXPECT_EQ(WorkingSetManifest::deserialize("not-a-manifest"), nullptr);

    WorkingSetManifest manifest("fn", 1, 2, 0.5);
    manifest.addTrace({1, 2, 3});
    std::string blob = manifest.serialize();

    // Unsupported version.
    std::string bad_version = blob;
    const auto vpos = bad_version.find("v1");
    ASSERT_NE(vpos, std::string::npos);
    bad_version.replace(vpos, 2, "v9");
    EXPECT_EQ(WorkingSetManifest::deserialize(bad_version), nullptr);

    // Truncated body.
    const std::string truncated = blob.substr(0, blob.size() / 2);
    EXPECT_EQ(WorkingSetManifest::deserialize(truncated), nullptr);
}

//
// FaultRecorder: window filtering, ordering, audit grading.
//

TEST(FaultRecorderTest, RecordsWindowRelativeFirstAccessOrder)
{
    FaultRecorder recorder(/*window_start=*/100, /*window_pages=*/50);
    recorder.onFault(105, false, mem::FaultResult::BaseFill);
    recorder.onFault(103, true, mem::FaultResult::Cow);
    recorder.onFault(105, false, mem::FaultResult::BaseHit); // duplicate
    recorder.onFault(99, false, mem::FaultResult::MinorAnon);  // below
    recorder.onFault(150, false, mem::FaultResult::MinorAnon); // above
    recorder.onFault(100, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(recorder.accessedInOrder(),
              (std::vector<mem::PageIndex>{5, 3, 0}));
}

TEST(FaultRecorderTest, AuditGradesPrefetchedSet)
{
    sim::StatRegistry stats;
    FaultRecorder recorder(0, 100);
    recorder.enableAudit({5, 3, 42}); // 42 is never accessed: wasted
    recorder.onFault(5, false, mem::FaultResult::BaseHit);
    recorder.onFault(3, false, mem::FaultResult::BaseHit);
    recorder.onFault(7, false, mem::FaultResult::BaseFill); // missed
    recorder.finish(stats);
    EXPECT_FALSE(recorder.active());
    EXPECT_EQ(stats.value("prefetch.demand_faults_avoided"), 2);
    EXPECT_EQ(stats.value("prefetch.wasted_pages"), 1);
    const auto *series = stats.findHistogram("prefetch.manifest_hit_rate");
    ASSERT_NE(series, nullptr);
    EXPECT_NEAR(series->mean(), 2.0 / 3.0, 1e-9);

    // finish() is idempotent; later faults are ignored.
    recorder.onFault(9, false, mem::FaultResult::BaseFill);
    recorder.finish(stats);
    EXPECT_EQ(stats.value("prefetch.demand_faults_avoided"), 2);
}

TEST(FaultRecorderTest, RecordingMergesTraceIntoManifest)
{
    sim::StatRegistry stats;
    auto manifest = std::make_shared<WorkingSetManifest>("fn", 1, 3, 0.5);
    FaultRecorder recorder(1000, 64);
    recorder.enableRecording(manifest);
    recorder.onFault(1004, false, mem::FaultResult::BaseFill);
    recorder.onFault(1001, true, mem::FaultResult::Cow);
    recorder.finish(stats);
    EXPECT_EQ(manifest->traceCount(), 1u);
    EXPECT_EQ(manifest->stableSet(),
              (std::vector<mem::PageIndex>{4, 1}));
    EXPECT_TRUE(manifest->dirty());
    EXPECT_EQ(stats.value("prefetch.traces_recorded"), 1);
}

//
// Prefetcher: batched cost accounting against the virtual clock.
//

class PrefetcherTest : public ::testing::Test
{
  protected:
    PrefetcherTest() : machine(7), registry(machine) {}

    Machine machine;
    FunctionRegistry registry;
};

TEST_F(PrefetcherTest, BatchCostAccounting)
{
    auto &ctx = machine.ctx();
    const auto &costs = ctx.costs();
    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));
    auto image = sandbox::ensureSeparatedImage(fn);
    image->file().evict(); // all prefetch fills must hit storage

    mem::BaseMapping base(machine.frames(), image->file(), 0,
                          image->totalPages(), "test-base");
    const std::size_t n = std::min<std::size_t>(100, base.npages());
    std::vector<mem::PageIndex> pages;
    for (std::size_t i = 0; i < n; ++i)
        pages.push_back(i);

    const sim::SimTime before = ctx.now();
    const PrefetchReport report =
        prefetchIntoBase(ctx, base, pages, /*batch_pages=*/64);
    const sim::SimTime elapsed = ctx.now() - before;

    EXPECT_EQ(report.requestedPages, n);
    EXPECT_EQ(report.prefetchedPages, n);
    EXPECT_EQ(report.storageReads, n);
    EXPECT_EQ(report.alreadyResident, 0u);
    EXPECT_EQ(report.batches, (n + 63) / 64);

    // Expected: one setup per batch, the sequential transfer spread
    // across the restore workers, and one PTE pass per 512 installs.
    const auto workers =
        static_cast<std::size_t>(costs.restoreWorkers);
    sim::SimTime expected = sim::SimTime::zero();
    for (std::size_t begin = 0; begin < n; begin += 64) {
        const std::size_t batch = std::min<std::size_t>(64, n - begin);
        expected = expected + costs.prefetchBatchSetup +
                   costs.prefetchSsdPerPage *
                       static_cast<std::int64_t>(
                           (batch + workers - 1) / workers);
    }
    expected = expected + costs.ptePopulatePerBatch *
                              static_cast<std::int64_t>(
                                  (n + mem::kPtesPerTable - 1) /
                                  mem::kPtesPerTable);
    EXPECT_EQ(elapsed, expected);

    EXPECT_EQ(ctx.stats().value("prefetch.pages_prefetched"),
              static_cast<std::int64_t>(n));
    EXPECT_EQ(ctx.stats().value("prefetch.storage_reads"),
              static_cast<std::int64_t>(n));
}

TEST_F(PrefetcherTest, ResidentPagesSkipReadahead)
{
    auto &ctx = machine.ctx();
    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));
    auto image = sandbox::ensureSeparatedImage(fn);
    mem::BaseMapping base(machine.frames(), image->file(), 0,
                          image->totalPages(), "test-base");
    std::vector<mem::PageIndex> pages = {0, 1, 2, 3};
    prefetchIntoBase(ctx, base, pages, 64);

    // Second pass: everything resident, no batches, no virtual time.
    const sim::SimTime before = ctx.now();
    const PrefetchReport again = prefetchIntoBase(ctx, base, pages, 64);
    EXPECT_EQ(ctx.now(), before);
    EXPECT_EQ(again.prefetchedPages, 0u);
    EXPECT_EQ(again.alreadyResident, 4u);
    EXPECT_EQ(again.batches, 0u);
}

TEST_F(PrefetcherTest, ClampsPagesBeyondImageExtent)
{
    auto &ctx = machine.ctx();
    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));
    auto image = sandbox::ensureSeparatedImage(fn);
    mem::BaseMapping base(machine.frames(), image->file(), 0,
                          image->totalPages(), "test-base");
    const std::vector<mem::PageIndex> stale = {base.npages(),
                                               base.npages() + 17};
    const sim::SimTime before = ctx.now();
    const PrefetchReport report = prefetchIntoBase(ctx, base, stale, 64);
    EXPECT_EQ(report.requestedPages, 0u);
    EXPECT_EQ(report.batches, 0u);
    EXPECT_EQ(ctx.now(), before);
}

//
// ImageStore: manifests travel with the func-image.
//

TEST(ImageStoreManifestTest, PublishFetchDrop)
{
    sim::SimContext ctx(3);
    snapshot::ImageStore store(ctx);

    WorkingSetManifest manifest("django", 2, 3, 0.5);
    manifest.addTrace({1, 2, 3});
    EXPECT_FALSE(store.hasManifest("django"));
    store.publishManifest(manifest);
    EXPECT_TRUE(store.hasManifest("django"));
    EXPECT_EQ(store.manifestCount(), 1u);

    const sim::SimTime before = ctx.now();
    auto fetched = store.fetchManifest("django");
    ASSERT_NE(fetched, nullptr);
    EXPECT_EQ(ctx.now() - before, ctx.costs().workingSetManifestIo);
    EXPECT_EQ(fetched->stableSet(), manifest.stableSet());
    EXPECT_EQ(fetched->imageGeneration(), 2u);

    store.dropManifest("django");
    EXPECT_FALSE(store.hasManifest("django"));
    EXPECT_EQ(store.fetchManifest("django"), nullptr);
}

//
// Runtime wiring: record, prefetch, fallback, staleness.
//

std::int64_t
demandFaults(sim::StatRegistry &stats)
{
    return stats.value("mem.base_fills") +
           stats.value("mem.page_cache_storage_reads");
}

void
evictRestoreState(FunctionArtifacts &fn)
{
    // What ServerlessPlatform::reclaimFunctionMemory does: drop the
    // Base-EPT and the image's page cache so the next boot is fully
    // cold again.
    fn.sharedBase.reset();
    fn.separatedImage->file().evict();
    fn.firstRestoreDone = false;
}

TEST(RuntimePrefetchTest, FallbackWhenManifestMissing)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.recordWorkingSet = false; // nothing ever recorded
    options.prefetchWorkingSet = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &stats = machine.ctx().stats();

    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));
    BootResult boot = runtime.bootCold(fn);
    ASSERT_NE(boot.instance, nullptr);
    boot.instance->invoke();

    EXPECT_EQ(stats.value("prefetch.manifest_misses"), 1);
    EXPECT_EQ(stats.value("prefetch.manifest_hits"), 0);
    EXPECT_EQ(stats.value("prefetch.pages_prefetched"), 0);
    EXPECT_EQ(stats.value("prefetch.traces_recorded"), 0);
}

TEST(RuntimePrefetchTest, SecondColdBootAvoidsDemandFaults)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.prefetchWorkingSet = true; // recording is on by default
    core::CatalyzerRuntime runtime(machine, options);
    auto &stats = machine.ctx().stats();

    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));

    // First cold boot: no manifest yet, demand paging + recording.
    std::int64_t mark = demandFaults(stats);
    BootResult first = runtime.bootCold(fn);
    first.instance->invoke();
    const std::int64_t first_faults = demandFaults(stats) - mark;
    first.instance.reset();
    EXPECT_EQ(stats.value("prefetch.traces_recorded"), 1);
    EXPECT_GT(first_faults, 0);

    // Second cold boot from scratch: the manifest drives a prefetch.
    evictRestoreState(fn);
    mark = demandFaults(stats);
    BootResult second = runtime.bootCold(fn);
    second.instance->invoke();
    const std::int64_t second_faults = demandFaults(stats) - mark;
    second.instance.reset();

    EXPECT_EQ(stats.value("prefetch.manifest_hits"), 1);
    EXPECT_GT(stats.value("prefetch.pages_prefetched"), 0);
    EXPECT_GT(stats.value("prefetch.demand_faults_avoided"), 0);

    // The headline regression: the prefetched boot demand-faults less
    // before its first response than the recorded one did.
    EXPECT_LT(second_faults, first_faults);

    // The restore trace is deterministic, so the manifest should cover
    // most of the window (hit rate well above half).
    const auto *rate = stats.findHistogram("prefetch.manifest_hit_rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_EQ(rate->count(), 1u);
    EXPECT_GT(rate->mean(), 0.5);
}

TEST(RuntimePrefetchTest, StaleManifestFallsBackAndReRecords)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.prefetchWorkingSet = true;
    options.workingSetTraces = 2;
    core::CatalyzerRuntime runtime(machine, options);
    auto &stats = machine.ctx().stats();

    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));
    BootResult boot = runtime.bootCold(fn);
    boot.instance->invoke();
    boot.instance.reset();
    ASSERT_TRUE(fn.workingSet);
    const std::uint64_t old_gen = fn.workingSet->imageGeneration();

    // User-guided warming rebuilds the func-image: a new generation.
    runtime.warmFuncImage(fn, /*training_requests=*/1,
                          /*prep_fraction=*/0.25);
    ASSERT_NE(fn.separatedImage->generation(), old_gen);

    // The next cold boot detects the stale manifest, falls back to
    // demand paging and starts recording against the new image.
    const std::int64_t misses_before =
        stats.value("prefetch.manifest_misses");
    BootResult after = runtime.bootCold(fn);
    after.instance->invoke();
    after.instance.reset();

    EXPECT_GE(stats.value("prefetch.manifest_stale"), 1);
    EXPECT_GT(stats.value("prefetch.manifest_misses"), misses_before);
    ASSERT_TRUE(fn.workingSet);
    EXPECT_EQ(fn.workingSet->imageGeneration(),
              fn.separatedImage->generation());
    EXPECT_TRUE(fn.workingSet->usable()); // re-recorded already
}

TEST(RuntimePrefetchTest, CorruptionRebuildDropsManifestAndReRecords)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.prefetchWorkingSet = true;
    options.verifyImages = true;
    options.workingSetTraces = 2;
    core::CatalyzerRuntime runtime(machine, options);
    auto &stats = machine.ctx().stats();

    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));
    BootResult boot = runtime.bootCold(fn);
    boot.instance->invoke();
    boot.instance.reset();
    ASSERT_TRUE(fn.workingSet);
    const std::uint64_t old_gen = fn.workingSet->imageGeneration();

    // The image rots on storage; the verify-then-rebuild path replaces
    // it with a fresh checkpoint under a new generation, so the
    // recorded working set no longer describes the image layout.
    fn.separatedImage->markCorrupted();
    const std::int64_t stale_before =
        stats.value("prefetch.manifest_stale");
    BootResult after = runtime.bootCold(fn);
    ASSERT_NE(after.instance, nullptr);
    EXPECT_EQ(stats.value("catalyzer.image_rebuilds"), 1);
    ASSERT_NE(fn.separatedImage->generation(), old_gen);

    // The stale manifest was dropped (store included) and re-recording
    // began against the rebuilt image.
    EXPECT_GT(stats.value("prefetch.manifest_stale"), stale_before);
    ASSERT_TRUE(fn.workingSet);
    EXPECT_EQ(fn.workingSet->imageGeneration(),
              fn.separatedImage->generation());
    after.instance->invoke(); // closes the recording window
    after.instance.reset();
    EXPECT_TRUE(fn.workingSet->usable());

    // The next fully-cold boot completes and prefetches the re-recorded
    // set.
    evictRestoreState(fn);
    const std::int64_t hits_before =
        stats.value("prefetch.manifest_hits");
    BootResult next = runtime.bootCold(fn);
    ASSERT_NE(next.instance, nullptr);
    next.instance->invoke();
    EXPECT_GT(stats.value("prefetch.manifest_hits"), hits_before);
}

TEST(RuntimePrefetchTest, ManifestPublishedToImageStore)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.prefetchWorkingSet = true;
    core::CatalyzerRuntime runtime(machine, options);

    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));
    BootResult boot = runtime.bootCold(fn);
    boot.instance->invoke();
    boot.instance.reset();
    // Publication happens lazily on the next boot's ensureWorkingSet.
    EXPECT_FALSE(runtime.images().hasManifest("python-hello"));
    evictRestoreState(fn);
    runtime.bootCold(fn);
    EXPECT_TRUE(runtime.images().hasManifest("python-hello"));
    EXPECT_EQ(machine.ctx().stats().value("snapshot.manifests_published"),
              1);
}

//
// Platform: reclaiming restore memory, affordable under prefetch.
//

TEST(PlatformReclaimTest, RefusedWhileInstancesLive)
{
    sandbox::Machine machine(42);
    platform::ServerlessPlatform plat(
        machine,
        platform::PlatformConfig{platform::BootStrategy::CatalyzerCold});
    plat.deploy(apps::appByName("python-hello"));
    plat.invoke("python-hello"); // retained as a running instance
    EXPECT_EQ(plat.reclaimFunctionMemory("python-hello"), 0u);
    EXPECT_EQ(plat.reclaimFunctionMemory("no-such-function"), 0u);

    plat.teardown("python-hello");
    const std::size_t released =
        plat.reclaimFunctionMemory("python-hello");
    EXPECT_GT(released, 0u);
    auto &fn = plat.registry().artifactsFor(
        apps::appByName("python-hello"));
    EXPECT_EQ(fn.sharedBase, nullptr);
    EXPECT_EQ(fn.separatedImage->file().residentPages(), 0u);
    EXPECT_FALSE(fn.firstRestoreDone);
    EXPECT_EQ(machine.ctx().stats().value("platform.base_reclaims"), 1);

    // The function still serves requests afterwards.
    const auto record = plat.invoke("python-hello");
    EXPECT_GT(record.endToEnd().toMs(), 0.0);
}

TEST(PlatformReclaimTest, PolicyReclaimsColdBases)
{
    sandbox::Machine machine(42);
    core::CatalyzerOptions options;
    options.prefetchWorkingSet = true;
    platform::PlatformConfig config{
        platform::BootStrategy::CatalyzerCold};
    config.retainInstances = false; // instances die after the request
    platform::ServerlessPlatform plat(machine, config, options);
    platform::PolicyConfig policy;
    policy.reclaimColdBases = true;
    platform::BootPolicyManager mgr(plat, policy);

    plat.deploy(apps::appByName("python-hello"));
    mgr.invoke("python-hello");
    ASSERT_NE(plat.registry()
                  .artifactsFor(apps::appByName("python-hello"))
                  .sharedBase,
              nullptr);

    // Traffic decays to the cold floor; the base is then reclaimed.
    for (int i = 0; i < 10; ++i)
        mgr.rebalance();
    EXPECT_GE(machine.ctx().stats().value("platform.base_reclaims"), 1);
    EXPECT_EQ(plat.registry()
                  .artifactsFor(apps::appByName("python-hello"))
                  .sharedBase,
              nullptr);

    // The next request cold-boots with a prefetched working set.
    mgr.invoke("python-hello");
    EXPECT_GT(machine.ctx().stats().value("prefetch.pages_prefetched"),
              0);
}

} // namespace
} // namespace catalyzer::prefetch
