/**
 * @file
 * Tests for the fleet observability layer: merged cross-machine Chrome
 * traces (remote-sfork lender + borrower sharing one distributed trace
 * id, including the peer-death reroute path), the black-box flight
 * recorder (incident capture, counter deltas, span-ring tail, bounded
 * memory, postmortem dumps) and windowed SLO evaluation with burn-rate
 * accounting.
 */

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_injector.h"
#include "net/remote_pager.h"
#include "obs/fleet_trace.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "platform/cluster.h"

namespace catalyzer::obs {
namespace {

using platform::BootStrategy;
using platform::Cluster;
using platform::PlacementPolicy;
using platform::PlatformConfig;
using sim::SimTime;
using namespace sim::time_literals;

net::FabricConfig
remoteForkFabric()
{
    net::FabricConfig config;
    config.modelTransfers = true;
    config.remoteFork = true;
    return config;
}

const trace::Span *
findSpan(const std::vector<trace::Span> &spans, const std::string &name)
{
    for (const trace::Span &s : spans) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

TEST(FleetTraceTest, MergeOrdersByMachineAndSkipsNulls)
{
    trace::Tracer a, b;
    a.setMachine(2);
    b.setMachine(0);
    sim::VirtualClock clock;
    a.begin("on-two", clock.now());
    clock.advance(1_ms);
    b.begin("late-on-zero", clock.now());
    b.begin("later-on-zero", clock.now());

    const auto merged = mergeFleetSpans({&a, nullptr, &b});
    ASSERT_EQ(merged.size(), 3u);
    // Machine order first (0 before 2), then creation order within.
    EXPECT_EQ(merged[0].name, "late-on-zero");
    EXPECT_EQ(merged[1].name, "later-on-zero");
    EXPECT_EQ(merged[2].name, "on-two");

    std::ostringstream os;
    exportFleetChromeTrace({&a, &b}, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("machine 0"), std::string::npos);
    EXPECT_NE(json.find("machine 2"), std::string::npos);
}

TEST(FlightRecorderTest, CapturesDeltasAndSpanTail)
{
    trace::Tracer tracer;
    sim::VirtualClock clock;
    sim::StatRegistry stats;
    FlightRecorder rec(3, tracer, clock, stats);

    stats.incr("boots", 5);
    tracer.begin("older", clock.now());
    clock.advance(2_ms);
    tracer.begin("newer", clock.now());

    const auto seq1 = rec.record("fault-injected", "remote_peer_death",
                                 "handshake", /*trace_id=*/77);
    EXPECT_EQ(seq1, 1u);
    ASSERT_EQ(rec.incidents().size(), 1u);
    const Incident &first = rec.incidents().front();
    EXPECT_EQ(first.kind, "fault-injected");
    EXPECT_EQ(first.site, "remote_peer_death");
    EXPECT_EQ(first.traceId, 77u);
    EXPECT_EQ(first.at, 2_ms);
    ASSERT_EQ(first.counterDeltas.size(), 1u);
    EXPECT_EQ(first.counterDeltas[0].first, "boots");
    EXPECT_EQ(first.counterDeltas[0].second, 5);
    ASSERT_EQ(first.recentSpans.size(), 2u);
    EXPECT_EQ(first.recentSpans[1].name, "newer");

    // The next incident sees only the changes since the last one.
    stats.incr("boots", 2);
    stats.incr("fallbacks", 1);
    rec.record("tier-fallback", "remote_peer_death", "sfork -> warm", 0);
    const Incident &second = rec.incidents().back();
    ASSERT_EQ(second.counterDeltas.size(), 2u);
    EXPECT_EQ(second.counterDeltas[0].first, "boots");
    EXPECT_EQ(second.counterDeltas[0].second, 2);
    EXPECT_EQ(second.counterDeltas[1].first, "fallbacks");
    EXPECT_EQ(second.counterDeltas[1].second, 1);
}

TEST(FlightRecorderTest, RingBoundsMemoryAndJsonDumps)
{
    trace::Tracer tracer;
    sim::VirtualClock clock;
    sim::StatRegistry stats;
    FlightRecorder rec(1, tracer, clock, stats);

    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / "flightrec-test")
            .string();
    std::filesystem::remove_all(dir);
    rec.setDumpDirectory(dir);

    const std::size_t total = FlightRecorder::kMaxIncidents + 2;
    for (std::size_t i = 0; i < total; ++i)
        rec.record("fault-injected", "net_link", "", 0);
    EXPECT_EQ(rec.incidents().size(), FlightRecorder::kMaxIncidents);
    EXPECT_EQ(rec.incidentCount(), total);
    EXPECT_EQ(rec.droppedCount(), 2u);
    // The in-memory ring evicted seq 1 and 2 but their dumps remain.
    EXPECT_EQ(rec.incidents().front().seq, 3u);
    EXPECT_EQ(rec.dumpsWritten(), total);
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / "flightrec-m1-1.json"));

    std::ifstream in(std::filesystem::path(dir) / "flightrec-m1-66.json");
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("\"kind\": \"fault-injected\""),
              std::string::npos);
    EXPECT_NE(content.str().find("\"site\": \"net_link\""),
              std::string::npos);

    std::ostringstream os;
    rec.writeJson(os);
    EXPECT_NE(os.str().find("\"machine\": 1"), std::string::npos);
    EXPECT_NE(os.str().find("\"incidents\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(SloTest, EvaluatesBurnRatePerWindow)
{
    sim::WindowedHistogram series(SimTime::milliseconds(100.0));
    // Window 0: one of four events over threshold.
    for (double v : {1.0, 2.0, 3.0, 10.0})
        series.record(SimTime::milliseconds(10.0), v);
    // Window 1: all good.
    series.record(SimTime::milliseconds(150.0), 1.0);
    series.record(SimTime::milliseconds(160.0), 1.0);

    SloTarget target;
    target.metric = "win.boot_ms";
    target.thresholdMs = 5.0;
    target.objective = 0.9;
    const SloReport report = evaluateSlo(series, target);

    EXPECT_EQ(report.totalEvents, 6u);
    EXPECT_EQ(report.badEvents, 1u);
    EXPECT_NEAR(report.attainment(), 5.0 / 6.0, 1e-9);
    EXPECT_FALSE(report.objectiveMet()); // 0.833 < 0.9
    ASSERT_EQ(report.windows.size(), 2u);
    const SloWindow &w0 = report.windows[0];
    EXPECT_EQ(w0.index, 0);
    EXPECT_EQ(w0.count, 4u);
    EXPECT_EQ(w0.badEvents, 1u);
    EXPECT_DOUBLE_EQ(w0.badFraction, 0.25);
    // budget = 1 - 0.9 = 0.1, so burn rate 2.5.
    EXPECT_NEAR(w0.burnRate, 2.5, 1e-9);
    EXPECT_FALSE(w0.met);
    const SloWindow &w1 = report.windows[1];
    EXPECT_EQ(w1.badEvents, 0u);
    EXPECT_TRUE(w1.met);
    EXPECT_EQ(report.windowsMet, 1u);
    EXPECT_NEAR(report.worstBurnRate, 2.5, 1e-9);

    std::ostringstream os;
    writeSloJson(os, {report});
    const std::string json = os.str();
    EXPECT_NE(json.find("\"metric\": \"win.boot_ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"worst_burn_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"objective_met\": false"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(SloTest, EmptySeriesTriviallyMeets)
{
    sim::WindowedHistogram series(SimTime::milliseconds(100.0));
    const SloReport report = evaluateSlo(series, SloTarget{});
    EXPECT_EQ(report.totalEvents, 0u);
    EXPECT_DOUBLE_EQ(report.attainment(), 1.0);
    EXPECT_TRUE(report.objectiveMet());
    EXPECT_TRUE(report.windows.empty());
}

TEST(FleetStitchTest, RemoteSforkSharesOneTraceId)
{
    Cluster cluster(2, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto}, {},
                    sim::CostModel{}, 42, remoteForkFabric());
    const apps::AppProfile &app = apps::appByName("python-django");
    cluster.deploy(app);
    cluster.platform(0).prepare(app);

    // An untraced invoke self-traces into machine 1's always-on ring.
    auto record = cluster.platform(1).invoke("python-django");
    ASSERT_EQ(record.tierServed, "remote-sfork");

    const auto borrower = cluster.machine(1).tracer().snapshot();
    const trace::Span *boot =
        findSpan(borrower, "boot/Catalyzer-remote-sfork");
    ASSERT_NE(boot, nullptr);
    EXPECT_NE(boot->traceId, 0u);
    EXPECT_EQ(boot->machine, 1u);
    // Every borrower span of the request carries the same trace id.
    const trace::Span *invoke_span =
        findSpan(borrower, "invoke/python-django");
    ASSERT_NE(invoke_span, nullptr);
    EXPECT_EQ(invoke_span->traceId, boot->traceId);
    const trace::Span *pull = findSpan(borrower, "remote-pull-batch");
    ASSERT_NE(pull, nullptr);
    EXPECT_EQ(pull->traceId, boot->traceId);

    // The lender's half of the handshake landed in machine 0's ring
    // under the *same* distributed trace id, tagged with its machine.
    const auto lender = cluster.machine(0).tracer().snapshot();
    const trace::Span *lend = findSpan(lender, "lend-template");
    ASSERT_NE(lend, nullptr);
    EXPECT_EQ(lend->traceId, boot->traceId);
    EXPECT_EQ(lend->machine, 0u);
    EXPECT_EQ(lend->parent, 0u); // span ids don't cross machines
    const trace::Span *serve = findSpan(lender, "serve-pull-batch");
    ASSERT_NE(serve, nullptr);
    EXPECT_EQ(serve->traceId, boot->traceId);

    // The fleet export renders both halves in one document, in two
    // distinct machine lanes.
    std::ostringstream os;
    cluster.exportFleetTrace(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"lend-template\""), std::string::npos);
    EXPECT_NE(json.find("\"boot/Catalyzer-remote-sfork\""),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(FleetStitchTest, PeerDeathReroutePullsKeepTheTraceId)
{
    net::FabricConfig config;
    config.modelTransfers = true;
    net::Fabric fabric(config);
    sim::SimContext ctx;
    faults::FaultConfig fc;
    faults::FaultInjector injector(fc, &ctx.clock());

    trace::Tracer borrower, lender;
    borrower.setMachine(0);
    lender.setMachine(1);
    sim::VirtualClock lender_clock;
    trace::TraceContext borrow(borrower, ctx.clock());
    trace::ScopedSpan boot(borrow, "boot/Catalyzer-remote-sfork");
    const trace::TraceContext lend =
        boot.context().withTracer(lender, lender_clock);

    net::RemotePager pager(ctx, fabric, 0, 1, 0, 1000, &injector, 4,
                           boot.context(), lend);
    pager.onFault(0, false, mem::FaultResult::BaseFill);
    // Batch served by the living lender: a marker span on its side.
    ASSERT_EQ(lender.spanCount(), 1u);
    EXPECT_EQ(lender.snapshot()[0].name, "serve-pull-batch");
    EXPECT_EQ(lender.snapshot()[0].traceId, boot.context().traceId());

    // The lender dies; the pager reroutes to origin. Later pulls still
    // carry the boot's trace id, but the dead lender records nothing.
    injector.failNext(faults::FaultSite::RemotePeerDeath);
    pager.onFaultRange(4, 8, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(pager.source(), net::kOriginStorage);
    EXPECT_EQ(lender.spanCount(), 1u);
    boot.finish();

    const auto spans = borrower.snapshot();
    std::size_t origin_batches = 0;
    for (const trace::Span &s : spans) {
        if (s.name != "remote-pull-batch")
            continue;
        EXPECT_EQ(s.traceId, boot.context().traceId());
        for (const auto &[k, v] : s.attributes) {
            if (k == "source" && v == "origin")
                ++origin_batches;
        }
    }
    EXPECT_GE(origin_batches, 1u);
}

TEST(FleetStitchTest, HandshakeFaultIncidentReferencesTheTrace)
{
    Cluster cluster(2, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto}, {},
                    sim::CostModel{}, 42, remoteForkFabric());
    const apps::AppProfile &app = apps::appByName("python-hello");
    cluster.deploy(app);
    cluster.platform(0).prepare(app);

    cluster.platform(1).catalyzer().faults().failNext(
        faults::FaultSite::RemotePeerDeath);
    auto record = cluster.platform(1).invoke("python-hello");
    EXPECT_GE(record.tierFallbacks, 1);

    const FlightRecorder &rec = cluster.platform(1).flightRecorder();
    ASSERT_GE(rec.incidentCount(), 2u); // injection + fallback
    std::set<std::string> kinds;
    for (const Incident &incident : rec.incidents())
        kinds.insert(incident.kind);
    EXPECT_TRUE(kinds.count("fault-injected"));
    EXPECT_TRUE(kinds.count("tier-fallback"));

    // Every incident points at the request's distributed trace — the
    // same id the machine ring recorded for the invoke span.
    const auto spans = cluster.machine(1).tracer().snapshot();
    const trace::Span *invoke_span =
        findSpan(spans, "invoke/python-hello");
    ASSERT_NE(invoke_span, nullptr);
    ASSERT_NE(invoke_span->traceId, 0u);
    for (const Incident &incident : rec.incidents()) {
        EXPECT_EQ(incident.traceId, invoke_span->traceId)
            << incident.kind;
        EXPECT_EQ(incident.site, "remote_peer_death") << incident.kind;
        EXPECT_FALSE(incident.recentSpans.empty()) << incident.kind;
    }
}

TEST(ClusterObsTest, TimeSeriesSnapshotMergesMachines)
{
    Cluster cluster(2, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto});
    const apps::AppProfile &app = apps::appByName("c-hello");
    cluster.deploy(app);
    cluster.platform(0).invoke("c-hello");
    cluster.platform(1).invoke("c-hello");

    std::ostringstream os;
    cluster.writeTimeSeriesJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"series\""), std::string::npos);
    EXPECT_NE(json.find("\"win.e2e_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"win.boot_ms.fn.c-hello\""),
              std::string::npos);
    EXPECT_NE(json.find("\"win.tier_served\""), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);

    // The merged fleet series saw both machines' events.
    sim::StatRegistry fleet;
    cluster.mergeStats(fleet);
    const sim::WindowedHistogram *e2e = fleet.findWindowed("win.e2e_ms");
    ASSERT_NE(e2e, nullptr);
    EXPECT_EQ(e2e->totalCount(), 2u);
}

TEST(ClusterObsTest, LegacyMetricsJsonHasNoWindowedSeries)
{
    // The windowed engine must not leak into the legacy snapshot: the
    // metrics JSON keeps its pre-observability shape byte for byte.
    Cluster cluster(1, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto});
    const apps::AppProfile &app = apps::appByName("c-hello");
    cluster.deploy(app);
    cluster.invoke("c-hello");
    std::ostringstream os;
    cluster.statsSnapshot(os);
    EXPECT_EQ(os.str().find("win."), std::string::npos);
}

} // namespace
} // namespace catalyzer::obs
