/**
 * @file
 * Unit tests for the VFS substrate: inode tree, fd table, FS server,
 * overlay rootfs and the I/O connection registry.
 */

#include <gtest/gtest.h>

#include "sim/context.h"
#include "vfs/dup_model.h"
#include "vfs/fd_table.h"
#include "vfs/fs_server.h"
#include "vfs/inode_tree.h"
#include "vfs/io_connection.h"
#include "vfs/overlay_rootfs.h"

namespace catalyzer::vfs {
namespace {

using sim::SimContext;

TEST(InodeTreeTest, FilesAndImplicitParents)
{
    InodeTree tree;
    tree.addFile("/a/b/c.txt", 100);
    EXPECT_TRUE(tree.exists("/a/b/c.txt"));
    const Inode *dir = tree.lookup("/a/b");
    ASSERT_NE(dir, nullptr);
    EXPECT_TRUE(dir->isDir);
    EXPECT_EQ(tree.fileCount(), 1u);
    EXPECT_EQ(tree.totalBytes(), 100u);
}

TEST(InodeTreeTest, RemoveAndMissing)
{
    InodeTree tree;
    tree.addFile("/x", 1);
    tree.removeFile("/x");
    EXPECT_FALSE(tree.exists("/x"));
    EXPECT_DEATH(tree.removeFile("/x"), "no file");
}

TEST(InodeTreeTest, BadPathsPanic)
{
    InodeTree tree;
    EXPECT_DEATH(tree.addFile("relative", 1), "bad path");
    EXPECT_DEATH(tree.addFile("/trailing/", 1), "bad path");
}

TEST(InodeTreeTest, FilesUnderPrefix)
{
    InodeTree tree;
    tree.addFile("/app/a", 1);
    tree.addFile("/app/b", 1);
    tree.addFile("/etc/c", 1);
    EXPECT_EQ(tree.filesUnder("/app/").size(), 2u);
}

TEST(InodeTreeTest, UnionOverlayWins)
{
    InodeTree base;
    base.addFile("/f", 10);
    InodeTree overlay;
    overlay.addFile("/f", 20);
    overlay.addFile("/g", 5);
    base.unionWith(overlay);
    EXPECT_EQ(base.lookup("/f")->sizeBytes, 20u);
    EXPECT_TRUE(base.exists("/g"));
}

TEST(FdTableTest, LowestFreeAllocation)
{
    FdTable fds;
    EXPECT_EQ(fds.allocate(FdEntry{}), 0);
    EXPECT_EQ(fds.allocate(FdEntry{}), 1);
    fds.close(0);
    EXPECT_EQ(fds.allocate(FdEntry{}), 0);
    EXPECT_EQ(fds.inUse(), 2u);
}

TEST(FdTableTest, AllocateAtLeast)
{
    FdTable fds;
    EXPECT_EQ(fds.allocateAtLeast(10, FdEntry{}), 10);
    EXPECT_EQ(fds.allocateAtLeast(10, FdEntry{}), 11);
}

TEST(FdTableTest, ExpansionDoublesCapacity)
{
    FdTable fds;
    bool expanded = false;
    for (std::size_t i = 0; i < FdTable::kInitialCapacity; ++i) {
        fds.allocate(FdEntry{}, &expanded);
        EXPECT_FALSE(expanded);
    }
    EXPECT_TRUE(fds.nextAllocationExpands());
    fds.allocate(FdEntry{}, &expanded);
    EXPECT_TRUE(expanded);
    EXPECT_EQ(fds.capacity(), 2 * FdTable::kInitialCapacity);
}

TEST(FdTableTest, DoubleClosePanics)
{
    FdTable fds;
    const int fd = fds.allocate(FdEntry{});
    fds.close(fd);
    EXPECT_DEATH(fds.close(fd), "not open");
}

TEST(FdTableTest, CloneInheritsDescriptors)
{
    FdTable fds;
    fds.allocate(FdEntry{FdKind::File, "/x", true, true, 0});
    FdTable child = fds.clone();
    ASSERT_NE(child.get(0), nullptr);
    EXPECT_EQ(child.get(0)->path, "/x");
    EXPECT_EQ(child.liveEntries().size(), 1u);
}

TEST(DupModelTest, LazyBeatsExpansion)
{
    SimContext ctx;
    const auto lazy = chargeDup(ctx, true, true);
    const auto expand = chargeDup(ctx, true, false);
    EXPECT_LT(lazy.toUs(), expand.toUs());
    EXPECT_EQ(ctx.stats().value("vfs.lazy_dups"), 1);
}

TEST(FsServerTest, OpenExistingAndMissing)
{
    SimContext ctx;
    InodeTree tree;
    tree.addFile("/app/x", 64);
    FsServer server(ctx, std::move(tree), "gofer");
    FdEntry entry;
    EXPECT_TRUE(server.openReadOnly("/app/x", &entry));
    EXPECT_TRUE(entry.readOnly);
    EXPECT_FALSE(server.openReadOnly("/app/missing", &entry));
    EXPECT_GT(ctx.stats().value("vfs.gofer_rpcs"), 0);
}

TEST(FsServerTest, LogGrantCreatesFile)
{
    SimContext ctx;
    FsServer server(ctx, InodeTree{}, "gofer");
    const FdEntry entry = server.grantLogFile("/var/log/app.log");
    EXPECT_FALSE(entry.readOnly);
    EXPECT_TRUE(server.rootfs().exists("/var/log/app.log"));
}

class OverlayTest : public ::testing::Test
{
  protected:
    OverlayTest() : server(makeServer()), overlay(ctx, server) {}

    FsServer
    makeServer()
    {
        InodeTree tree;
        tree.addFile("/app/ro.txt", 8192);
        return FsServer(ctx, std::move(tree), "gofer");
    }

    SimContext ctx;
    FsServer server;
    OverlayRootfs overlay;
};

TEST_F(OverlayTest, ReadFallsThroughToLower)
{
    FdEntry entry;
    EXPECT_TRUE(overlay.openRead("/app/ro.txt", &entry));
    EXPECT_FALSE(overlay.openRead("/nope", &entry));
}

TEST_F(OverlayTest, WriteCopiesUp)
{
    overlay.openWrite("/app/ro.txt");
    EXPECT_EQ(ctx.stats().value("vfs.overlay_copyups"), 1);
    EXPECT_EQ(overlay.sizeOf("/app/ro.txt"), 8192u);
    EXPECT_EQ(overlay.upperFileCount(), 1u);
    // The lower layer is untouched.
    EXPECT_EQ(server.rootfs().lookup("/app/ro.txt")->sizeBytes, 8192u);
}

TEST_F(OverlayTest, WriteExtendsUpperOnly)
{
    overlay.write("/tmp/new.log", 100);
    EXPECT_EQ(overlay.sizeOf("/tmp/new.log"), 100u);
    overlay.write("/tmp/new.log", 50);
    EXPECT_EQ(overlay.sizeOf("/tmp/new.log"), 150u);
    EXPECT_FALSE(server.rootfs().exists("/tmp/new.log"));
}

TEST_F(OverlayTest, UnlinkWhiteout)
{
    EXPECT_TRUE(overlay.unlink("/app/ro.txt"));
    EXPECT_FALSE(overlay.exists("/app/ro.txt"));
    EXPECT_FALSE(overlay.unlink("/app/ro.txt"));
    // Lower layer still has it.
    EXPECT_TRUE(server.rootfs().exists("/app/ro.txt"));
}

TEST_F(OverlayTest, CloneIsIndependent)
{
    overlay.write("/tmp/a", 10);
    auto child = overlay.clone();
    child->write("/tmp/a", 5);
    EXPECT_EQ(overlay.sizeOf("/tmp/a"), 10u);
    EXPECT_EQ(child->sizeOf("/tmp/a"), 15u);
    EXPECT_EQ(ctx.stats().value("vfs.overlay_clones"), 1);
}

TEST_F(OverlayTest, UpperBytesSkipsWhiteouts)
{
    overlay.write("/tmp/a", 100);
    overlay.write("/tmp/b", 50);
    overlay.unlink("/tmp/b");
    EXPECT_EQ(overlay.upperBytes(), 100u);
}

TEST(IoConnectionTest, AddFindDrop)
{
    IoConnectionTable table;
    const auto id = table.add(ConnKind::File, "/x", true, false);
    ASSERT_NE(table.find(id), nullptr);
    EXPECT_TRUE(table.find(id)->established);
    EXPECT_EQ(table.establishedCount(), 1u);
    table.dropAll();
    EXPECT_EQ(table.establishedCount(), 0u);
    EXPECT_EQ(table.find(999), nullptr);
}

} // namespace
} // namespace catalyzer::vfs
