/**
 * @file
 * Tests for the func-image compilation pipeline (Sec. 5).
 */

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "sandbox/compiler.h"
#include "sandbox/pipelines.h"

namespace catalyzer::sandbox {
namespace {

class CompilerTest : public ::testing::Test
{
  protected:
    CompilerTest() : machine(42), registry(machine), compiler(machine) {}

    FunctionArtifacts &
    fn(const char *name)
    {
        return registry.artifactsFor(apps::appByName(name));
    }

    Machine machine;
    FunctionRegistry registry;
    FuncImageCompiler compiler;
};

TEST_F(CompilerTest, CompilesBothFormats)
{
    auto proto = compiler.compile(fn("c-hello"),
                                  snapshot::ImageFormat::CompressedProto);
    auto separated = compiler.compile(
        fn("c-hello"), snapshot::ImageFormat::SeparatedWellFormed);
    ASSERT_NE(proto, nullptr);
    ASSERT_NE(separated, nullptr);
    EXPECT_EQ(proto->format(), snapshot::ImageFormat::CompressedProto);
    EXPECT_EQ(separated->format(),
              snapshot::ImageFormat::SeparatedWellFormed);
    // The artifacts were populated for the boot paths.
    EXPECT_EQ(fn("c-hello").protoImage.get(), proto.get());
    EXPECT_EQ(fn("c-hello").separatedImage.get(), separated.get());
    EXPECT_EQ(machine.ctx().stats().value("snapshot.images_compiled"),
              2);
}

TEST_F(CompilerTest, ImageCapturesEntryPointState)
{
    auto image = compiler.compile(
        fn("python-hello"), snapshot::ImageFormat::SeparatedWellFormed);
    const auto &app = apps::appByName("python-hello");
    EXPECT_EQ(image->state().kernelGraph.objectCount() > 0, true);
    EXPECT_EQ(image->state().ioConns.size(), app.ioConnections);
    EXPECT_EQ(image->state().memoryPages, app.heapPages());
    EXPECT_DOUBLE_EQ(image->state().warmedPrepFraction, 0.0);
}

TEST_F(CompilerTest, MovedEntryPointIsRecorded)
{
    FuncEntryConfig entry;
    entry.prepFraction = 0.5;
    entry.trainingRequests = 2;
    auto image = compiler.compile(
        fn("pillow-rolling"), snapshot::ImageFormat::SeparatedWellFormed,
        entry);
    EXPECT_DOUBLE_EQ(image->state().warmedPrepFraction, 0.5);

    // Instances restored from it inherit the moved entry point.
    core::CatalyzerRuntime runtime(machine);
    auto boot = runtime.bootCold(fn("pillow-rolling"));
    EXPECT_DOUBLE_EQ(boot.instance->prepFraction(), 0.5);
}

TEST_F(CompilerTest, BadPrepFractionIsFatal)
{
    FuncEntryConfig entry;
    entry.prepFraction = 1.5;
    EXPECT_EXIT(compiler.compile(fn("c-hello"),
                                 snapshot::ImageFormat::CompressedProto,
                                 entry),
                ::testing::ExitedWithCode(1), "prepFraction");
}

TEST_F(CompilerTest, RecompilingReplacesTheImage)
{
    auto first = compiler.compile(
        fn("ds-text"), snapshot::ImageFormat::SeparatedWellFormed);
    auto second = compiler.compile(
        fn("ds-text"), snapshot::ImageFormat::SeparatedWellFormed);
    EXPECT_NE(first.get(), second.get());
    EXPECT_EQ(fn("ds-text").separatedImage.get(), second.get());
}

} // namespace
} // namespace catalyzer::sandbox
