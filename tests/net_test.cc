/**
 * @file
 * Tests for the datacenter fabric: flat-compat equivalence, topology,
 * contention and the remote pager's batch accounting.
 */

#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "net/fabric.h"
#include "net/remote_pager.h"
#include "sim/context.h"

namespace catalyzer::net {
namespace {

TEST(FabricTest, FlatCompatMatchesLegacyFormula)
{
    // With modelTransfers off (the default), a transfer charges exactly
    // the old flat networkFetchPerMiB * max(MiB, 1) — no RTT, no
    // counters, no contention — so the pre-fabric remoteImages path is
    // bit-identical.
    sim::SimContext ctx;
    Fabric fabric;
    const std::size_t bytes = 80u << 20; // 80 MiB
    const sim::SimTime before = ctx.now();
    Transfer t = fabric.transfer(ctx, kOriginStorage, 1, bytes, "image");
    const sim::SimTime charged = ctx.now() - before;
    EXPECT_EQ(charged, ctx.costs().networkFetchPerMiB * 80);
    EXPECT_EQ(t.total, charged);
    EXPECT_EQ(t.rtt, sim::SimTime{});
    EXPECT_EQ(ctx.stats().value("net.transfers"), 0);
    EXPECT_EQ(ctx.stats().value("net.bytes"), 0);
}

TEST(FabricTest, FlatCompatRoundsSubMiBUpToOne)
{
    sim::SimContext ctx;
    Fabric fabric;
    const sim::SimTime before = ctx.now();
    fabric.transfer(ctx, kOriginStorage, 0, 4096, "tiny");
    EXPECT_EQ(ctx.now() - before, ctx.costs().networkFetchPerMiB);
}

TEST(FabricTest, RackTopology)
{
    FabricConfig config;
    config.machinesPerRack = 4;
    Fabric fabric(config);
    EXPECT_TRUE(fabric.sameRack(0, 3));
    EXPECT_FALSE(fabric.sameRack(3, 4));
    EXPECT_TRUE(fabric.sameRack(4, 7));
    // Origin storage is always a cross-rack hop.
    EXPECT_FALSE(fabric.sameRack(0, kOriginStorage));

    sim::SimContext ctx;
    EXPECT_EQ(fabric.rtt(0, 3, ctx.costs()),
              ctx.costs().netRttIntraRack);
    EXPECT_EQ(fabric.rtt(0, 4, ctx.costs()),
              ctx.costs().netRttCrossRack);
    EXPECT_EQ(fabric.rtt(0, kOriginStorage, ctx.costs()),
              ctx.costs().netRttCrossRack);
}

TEST(FabricTest, ModeledTransferChargesRttPlusStreaming)
{
    FabricConfig config;
    config.modelTransfers = true;
    config.machinesPerRack = 8;
    Fabric fabric(config);
    sim::SimContext ctx;
    const std::size_t bytes = 20u << 20;
    const sim::SimTime before = ctx.now();
    Transfer t = fabric.transfer(ctx, 1, 2, bytes, "ws");
    EXPECT_EQ(t.rtt, ctx.costs().netRttIntraRack);
    EXPECT_EQ(t.streaming, fabric.streamCost(1, bytes, ctx.costs()));
    EXPECT_EQ(ctx.now() - before, t.rtt + t.streaming);
    EXPECT_EQ(ctx.stats().value("net.transfers"), 1);
    EXPECT_EQ(ctx.stats().value("net.bytes"),
              static_cast<std::int64_t>(bytes));
    EXPECT_EQ(ctx.stats().value("net.cross_rack_transfers"), 0);

    fabric.transfer(ctx, 1, 9, bytes, "ws"); // rack 0 -> rack 1
    EXPECT_EQ(ctx.stats().value("net.cross_rack_transfers"), 1);
}

TEST(FabricTest, OriginStreamsSlowerThanPeers)
{
    Fabric fabric;
    sim::SimContext ctx;
    const std::size_t bytes = 10u << 20;
    EXPECT_GT(fabric.streamCost(kOriginStorage, bytes, ctx.costs()),
              fabric.streamCost(1, bytes, ctx.costs()));
}

TEST(FabricTest, StreamLeaseDrivesContention)
{
    FabricConfig config;
    config.modelTransfers = true;
    config.contentionPenalty = 0.5;
    Fabric fabric(config);
    EXPECT_EQ(fabric.openStreams(3), 0u);
    EXPECT_DOUBLE_EQ(fabric.contentionFactor(3, 5), 1.0);
    {
        StreamLease a(fabric, 3);
        StreamLease b(fabric, 3);
        EXPECT_EQ(fabric.openStreams(3), 2u);
        EXPECT_DOUBLE_EQ(fabric.contentionFactor(3, 5), 2.0);
        // A holder discounts its own lease.
        EXPECT_DOUBLE_EQ(fabric.contentionFactor(3, 5, 1), 1.5);
        // Contention scales the streaming part of a transfer.
        sim::SimContext ctx;
        const std::size_t bytes = 8u << 20;
        Transfer t = fabric.transfer(ctx, 3, 5, bytes, "pull");
        EXPECT_DOUBLE_EQ(t.contention, 2.0);
        EXPECT_EQ(t.streaming,
                  fabric.streamCost(3, bytes, ctx.costs()) * 2.0);
    }
    // Leases release on destruction.
    EXPECT_EQ(fabric.openStreams(3), 0u);
    EXPECT_DOUBLE_EQ(fabric.contentionFactor(3, 5), 1.0);
}

TEST(RemotePagerTest, BatchedPullAccounting)
{
    FabricConfig config;
    config.modelTransfers = true;
    Fabric fabric(config);
    sim::SimContext ctx;
    RemotePager pager(ctx, fabric, /*self=*/0, /*peer=*/1,
                      /*window_start=*/100, /*window_pages=*/1000,
                      /*injector=*/nullptr, /*batch_pages=*/8);
    // The pager holds a long-lived stream on its lender.
    EXPECT_EQ(fabric.openStreams(1), 1u);

    // Base fills inside the window pull; COW faults and out-of-window
    // fills don't.
    pager.onFault(100, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(pager.pagesPulled(), 1u);
    EXPECT_EQ(pager.batchesIssued(), 1u);
    pager.onFault(101, true, mem::FaultResult::BaseCow);
    pager.onFault(5, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(pager.pagesPulled(), 1u);

    // 7 more pages ride the open batch; the 9th opens a second one.
    pager.onFaultRange(102, 7, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(pager.pagesPulled(), 8u);
    EXPECT_EQ(pager.batchesIssued(), 1u);
    pager.onFault(110, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(pager.batchesIssued(), 2u);

    EXPECT_EQ(ctx.stats().value("remote.page_pulls"), 9);
    EXPECT_EQ(ctx.stats().value("remote.pull_batches"), 2);
    EXPECT_GT(ctx.now(), sim::SimTime{});
}

TEST(RemotePagerTest, PeerDeathReroutesToOrigin)
{
    FabricConfig config;
    config.modelTransfers = true;
    Fabric fabric(config);
    sim::SimContext ctx;
    faults::FaultConfig fc;
    faults::FaultInjector injector(fc, &ctx.clock());
    RemotePager pager(ctx, fabric, 0, 1, 0, 1000, &injector, 4);
    EXPECT_EQ(pager.source(), 1u);

    // The lender dies before the next batch: the pager degrades to
    // origin storage instead of throwing (we are inside invoke()).
    injector.failNext(faults::FaultSite::RemotePeerDeath);
    pager.onFault(0, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(pager.source(), kOriginStorage);
    EXPECT_EQ(ctx.stats().value("remote.peer_lost"), 1);
    EXPECT_EQ(pager.pagesPulled(), 1u);

    // Once on origin, a second death has nothing left to kill.
    injector.failNext(faults::FaultSite::RemotePeerDeath);
    pager.onFaultRange(4, 4, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(ctx.stats().value("remote.peer_lost"), 1);
    EXPECT_EQ(pager.pagesPulled(), 5u);
}

TEST(RemotePagerTest, LinkFaultRetriesSameSource)
{
    FabricConfig config;
    config.modelTransfers = true;
    Fabric fabric(config);
    sim::SimContext ctx;
    faults::FaultConfig fc;
    faults::FaultInjector injector(fc, &ctx.clock());
    RemotePager pager(ctx, fabric, 0, 1, 0, 1000, &injector, 4);

    injector.failNext(faults::FaultSite::NetLink);
    const sim::SimTime before = ctx.now();
    pager.onFault(0, false, mem::FaultResult::BaseFill);
    EXPECT_EQ(pager.source(), 1u); // still the lender
    EXPECT_EQ(ctx.stats().value("net.link_retries"), 1);
    // The retry burned at least the attempt timeout on top of the pull.
    EXPECT_GT(ctx.now() - before, injector.retry().attemptTimeout);
}

} // namespace
} // namespace catalyzer::net
