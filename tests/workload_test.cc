/**
 * @file
 * Tests for the workload driver and keep-alive expiry.
 */

#include <gtest/gtest.h>

#include "platform/workload.h"

namespace catalyzer::platform {
namespace {

using sandbox::Machine;
using namespace sim::time_literals;

TEST(WorkloadSpecTest, ZipfSharesSumToTotal)
{
    const auto spec = WorkloadSpec::zipf({"a", "b", "c", "d"}, 100.0);
    double total = 0.0;
    for (const auto &entry : spec.mix)
        total += entry.requestsPerSecond;
    EXPECT_NEAR(total, 100.0, 1e-9);
    // Rank 1 gets the biggest share.
    EXPECT_GT(spec.mix[0].requestsPerSecond,
              spec.mix[1].requestsPerSecond);
    EXPECT_GT(spec.mix[2].requestsPerSecond,
              spec.mix[3].requestsPerSecond);
}

TEST(WorkloadDriverTest, RunsExpectedRequestCount)
{
    Machine machine(42);
    ServerlessPlatform plat(
        machine, PlatformConfig{BootStrategy::CatalyzerFork});
    plat.prepare(apps::appByName("ds-text"));

    WorkloadSpec spec;
    spec.mix = {WorkloadEntry{"ds-text", 50.0}};
    spec.durationSec = 4.0;
    WorkloadDriver driver(plat);
    const WorkloadReport report = driver.run(spec);

    // Poisson(50/s * 4s) = ~200 requests.
    EXPECT_NEAR(static_cast<double>(report.requests), 200.0, 60.0);
    EXPECT_EQ(report.endToEnd.count(), report.requests);
    EXPECT_EQ(report.boots + report.reuses, report.requests);
}

TEST(WorkloadDriverTest, ClockAdvancesAtLeastDuration)
{
    Machine machine(42);
    ServerlessPlatform plat(
        machine, PlatformConfig{BootStrategy::CatalyzerFork});
    plat.prepare(apps::appByName("ds-text"));

    const auto start = machine.ctx().now();
    WorkloadSpec spec;
    spec.mix = {WorkloadEntry{"ds-text", 5.0}};
    spec.durationSec = 2.0;
    WorkloadDriver(plat).run(spec);
    // The machine idled between sparse arrivals: wall time >= ~duration.
    EXPECT_GT((machine.ctx().now() - start).toSec(), 1.5);
}

TEST(WorkloadDriverTest, KeepAliveReusesInstances)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerWarm;
    config.reuseIdleInstances = true;
    ServerlessPlatform plat(machine, config);
    plat.prepare(apps::appByName("ds-text"));

    WorkloadSpec spec;
    spec.mix = {WorkloadEntry{"ds-text", 100.0}};
    spec.durationSec = 2.0;
    const WorkloadReport report = WorkloadDriver(plat).run(spec);
    // Dense traffic on one function: almost everything is a reuse.
    EXPECT_GT(report.reuses, report.boots);
}

TEST(WorkloadDriverTest, TtlExpiresIdleInstances)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerWarm;
    config.reuseIdleInstances = true;
    ServerlessPlatform plat(machine, config);
    plat.prepare(apps::appByName("ds-text"));

    WorkloadSpec spec;
    spec.mix = {WorkloadEntry{"ds-text", 2.0}}; // sparse: ~500 ms apart
    spec.durationSec = 5.0;
    spec.keepAliveTtl = 100_ms; // far below the inter-arrival gap
    const WorkloadReport report = WorkloadDriver(plat).run(spec);
    EXPECT_GT(report.expired, 0u);
    // Expired instances forced fresh boots.
    EXPECT_GT(report.boots, 1u);
}

TEST(PlatformTtlTest, ExpireIdleHonorsAge)
{
    Machine machine(42);
    PlatformConfig config;
    config.strategy = BootStrategy::CatalyzerWarm;
    config.reuseIdleInstances = true;
    ServerlessPlatform plat(machine, config);
    plat.prepare(apps::appByName("ds-text"));
    plat.invoke("ds-text");
    EXPECT_EQ(plat.idleCount(), 1u);

    // Young instance survives.
    EXPECT_EQ(plat.expireIdle(10_s), 0u);
    machine.ctx().clock().advance(20_s);
    EXPECT_EQ(plat.expireIdle(10_s), 1u);
    EXPECT_EQ(plat.idleCount(), 0u);
}

TEST(WorkloadDriverTest, EmptyMixIsFatal)
{
    Machine machine(42);
    ServerlessPlatform plat(machine);
    WorkloadDriver driver(plat);
    EXPECT_EXIT(driver.run(WorkloadSpec{}),
                ::testing::ExitedWithCode(1), "empty mix");
}

} // namespace
} // namespace catalyzer::platform
