/**
 * @file
 * Tests for the multi-machine cluster and placement policies.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "platform/cluster.h"

namespace catalyzer::platform {
namespace {

TEST(ClusterTest, RoundRobinSpreadsInstances)
{
    Cluster cluster(4, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerWarm});
    cluster.deploy(apps::appByName("ds-text"));
    for (int i = 0; i < 8; ++i)
        cluster.invoke("ds-text");
    const auto placement = cluster.placementOf("ds-text");
    for (std::size_t count : placement)
        EXPECT_EQ(count, 2u);
}

TEST(ClusterTest, AffinityKeepsFunctionsHome)
{
    Cluster cluster(4, PlacementPolicy::FunctionAffinity,
                    PlatformConfig{BootStrategy::CatalyzerWarm});
    cluster.deploy(apps::appByName("ds-text"));
    std::size_t home = cluster.invoke("ds-text").machineIndex;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(cluster.invoke("ds-text").machineIndex, home);
    const auto placement = cluster.placementOf("ds-text");
    EXPECT_EQ(placement[home], 6u);
}

TEST(ClusterTest, LeastLoadedBalances)
{
    Cluster cluster(3, PlacementPolicy::LeastLoaded,
                    PlatformConfig{BootStrategy::CatalyzerWarm});
    cluster.deploy(apps::appByName("ds-text"));
    cluster.deploy(apps::appByName("ds-media"));
    for (int i = 0; i < 9; ++i)
        cluster.invoke(i % 2 ? "ds-text" : "ds-media");
    EXPECT_EQ(cluster.totalInstances(), 9u);
    // No machine is more than slightly ahead.
    std::size_t max_load = 0, min_load = 100;
    for (std::size_t i = 0; i < cluster.machineCount(); ++i) {
        const std::size_t load = cluster.platform(i).totalInstances();
        max_load = std::max(max_load, load);
        min_load = std::min(min_load, load);
    }
    EXPECT_LE(max_load - min_load, 1u);
}

TEST(ClusterTest, AffinityPreservesWarmLocality)
{
    // Under affinity every request of a function lands on its home
    // machine, so after the first cold boot everything is warm. Under
    // round robin each machine pays its own cold boot.
    auto run = [](PlacementPolicy policy) {
        Cluster cluster(4, policy,
                        PlatformConfig{BootStrategy::CatalyzerAuto});
        cluster.deploy(apps::appByName("python-hello"));
        double total_boot = 0.0;
        for (int i = 0; i < 8; ++i)
            total_boot +=
                cluster.invoke("python-hello").record.bootLatency.toMs();
        return total_boot;
    };
    EXPECT_LT(run(PlacementPolicy::FunctionAffinity),
              run(PlacementPolicy::RoundRobin));
}

TEST(ClusterTest, RemoteImagesFetchedPerMachine)
{
    core::CatalyzerOptions options;
    options.remoteImages = true;
    Cluster cluster(3, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerCold}, options);
    cluster.deploy(apps::appByName("c-hello"));
    for (int i = 0; i < 6; ++i)
        cluster.invoke("c-hello");
    // Each machine fetched the image exactly once.
    for (std::size_t i = 0; i < cluster.machineCount(); ++i) {
        EXPECT_EQ(cluster.machine(i).ctx().stats().value(
                      "snapshot.image_remote_fetches"), 1)
            << "machine " << i;
    }
}

TEST(ClusterTest, LeastLoadedBreaksTiesDeterministically)
{
    // Every machine starts equally empty: the tie must go to the first
    // machine, every time, so runs are bit-reproducible.
    for (int run = 0; run < 3; ++run) {
        Cluster cluster(4, PlacementPolicy::LeastLoaded,
                        PlatformConfig{BootStrategy::CatalyzerWarm});
        cluster.deploy(apps::appByName("c-hello"));
        EXPECT_EQ(cluster.invoke("c-hello").machineIndex, 0u);
        // One instance on 0: the next tie among {1, 2, 3} picks 1.
        EXPECT_EQ(cluster.invoke("c-hello").machineIndex, 1u);
    }
}

TEST(ClusterTest, AffinityHashIsStableAcrossClusters)
{
    // The affinity hash must map a function to the same home machine in
    // every identically-sized fleet (it is a pure function of the name).
    const char *functions[] = {"c-hello", "python-hello", "ds-text",
                               "java-specjbb"};
    Cluster a(4, PlacementPolicy::FunctionAffinity,
              PlatformConfig{BootStrategy::CatalyzerWarm});
    Cluster b(4, PlacementPolicy::FunctionAffinity,
              PlatformConfig{BootStrategy::CatalyzerWarm});
    for (const char *fn : functions) {
        a.deploy(apps::appByName(fn));
        b.deploy(apps::appByName(fn));
        EXPECT_EQ(a.invoke(fn).machineIndex, b.invoke(fn).machineIndex)
            << fn;
    }
}

TEST(ClusterTest, RoundRobinDistributionIsExact)
{
    Cluster cluster(3, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerWarm});
    cluster.deploy(apps::appByName("ds-text"));
    for (int i = 0; i < 7; ++i)
        cluster.invoke("ds-text");
    // 7 requests over 3 machines in order: 3, 2, 2.
    const auto placement = cluster.placementOf("ds-text");
    EXPECT_EQ(placement[0], 3u);
    EXPECT_EQ(placement[1], 2u);
    EXPECT_EQ(placement[2], 2u);
}

TEST(ClusterTest, NetworkAwarePrefersTemplateHolder)
{
    net::FabricConfig fabric;
    fabric.modelTransfers = true;
    fabric.remoteFork = true;
    Cluster cluster(4, PlacementPolicy::NetworkAware,
                    PlatformConfig{BootStrategy::CatalyzerAuto}, {},
                    sim::CostModel{}, 42, fabric);
    const apps::AppProfile &app = apps::appByName("python-hello");
    cluster.deploy(app);
    // Only machine 2 holds the template: requests should go there (a
    // local sfork) even though machines 0 and 1 are equally idle.
    cluster.platform(2).prepare(app);
    for (int i = 0; i < 3; ++i) {
        const auto out = cluster.invoke("python-hello");
        EXPECT_EQ(out.machineIndex, 2u);
        EXPECT_EQ(out.record.tierServed, "sfork");
    }
}

TEST(ClusterTest, FleetStatsSnapshotAggregates)
{
    Cluster cluster(3, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerWarm});
    cluster.deploy(apps::appByName("c-hello"));
    for (int i = 0; i < 6; ++i)
        cluster.invoke("c-hello");
    std::ostringstream os;
    cluster.statsSnapshot(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"machines\": 3"), std::string::npos);
    // 6 invocations fleet-wide although each machine only saw 2.
    EXPECT_NE(json.find("\"platform.invocations\": 6"),
              std::string::npos);
    EXPECT_EQ(
        cluster.machine(0).ctx().stats().value("platform.invocations"),
        2);
}

TEST(ClusterTest, RouteProjectedMatchesRouteOnLiveLoads)
{
    // routeProjected against the live load vector must pick the same
    // machine route() would, for every policy — the parallel driver
    // leans on this to pre-route epochs without changing placement.
    for (PlacementPolicy policy :
         {PlacementPolicy::RoundRobin, PlacementPolicy::LeastLoaded,
          PlacementPolicy::FunctionAffinity,
          PlacementPolicy::NetworkAware}) {
        Cluster a(3, policy,
                  PlatformConfig{BootStrategy::CatalyzerWarm});
        Cluster b(3, policy,
                  PlatformConfig{BootStrategy::CatalyzerWarm});
        a.deploy(apps::appByName("ds-text"));
        b.deploy(apps::appByName("ds-text"));
        for (int i = 0; i < 7; ++i) {
            const std::size_t live = a.route("ds-text");
            const std::size_t projected =
                b.routeProjected("ds-text", b.instanceLoads());
            EXPECT_EQ(live, projected) << "policy "
                                       << placementPolicyName(policy)
                                       << " step " << i;
            a.invokeOn(live, "ds-text");
            b.invokeOn(projected, "ds-text");
        }
    }
}

TEST(ClusterTest, ShareNothingReflectsFabricCoupling)
{
    Cluster flat(2, PlacementPolicy::RoundRobin,
                 PlatformConfig{BootStrategy::CatalyzerWarm});
    EXPECT_TRUE(flat.shareNothing());

    net::FabricConfig remote_fork;
    remote_fork.modelTransfers = true;
    remote_fork.remoteFork = true;
    Cluster lending(2, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerWarm}, {},
                    sim::CostModel{}, 42, remote_fork);
    EXPECT_FALSE(lending.shareNothing());

    net::FabricConfig p2p;
    p2p.modelTransfers = true;
    p2p.p2pImages = true;
    Cluster streaming(2, PlacementPolicy::RoundRobin,
                      PlatformConfig{BootStrategy::CatalyzerWarm}, {},
                      sim::CostModel{}, 42, p2p);
    EXPECT_FALSE(streaming.shareNothing());
}

TEST(ClusterTest, AlignWindowOriginsLinesUpMachineSeries)
{
    Cluster cluster(2, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto});
    cluster.deploy(apps::appByName("ds-text"));
    // Machine 0's clock runs ahead (priming asymmetry).
    cluster.invokeOn(0, "ds-text");
    cluster.invokeOn(0, "ds-text");
    ASSERT_NE(cluster.machine(0).ctx().clock().now(),
              cluster.machine(1).ctx().clock().now());

    cluster.alignWindowOrigins();
    cluster.invokeOn(0, "ds-text");
    cluster.invokeOn(1, "ds-text");
    // Both machines' win.e2e_ms series restarted at their aligned
    // origin: merged, the samples share run-relative window 0.
    sim::StatRegistry fleet;
    cluster.mergeStats(fleet);
    const sim::WindowedHistogram *w = fleet.findWindowed("win.e2e_ms");
    ASSERT_NE(w, nullptr);
    EXPECT_TRUE(w->originAligned());
    EXPECT_EQ(w->totalCount(), 2u);
    ASSERT_FALSE(w->windows().empty());
    EXPECT_EQ(w->windows().front().index, 0);
}

TEST(ClusterTest, EmptyClusterIsFatal)
{
    EXPECT_EXIT((Cluster{0, PlacementPolicy::RoundRobin}),
                ::testing::ExitedWithCode(1), "at least one machine");
}

TEST(ClusterTest, PolicyNames)
{
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::LeastLoaded),
                 "least-loaded");
}

} // namespace
} // namespace catalyzer::platform
