/**
 * @file
 * Tests for the multi-machine cluster and placement policies.
 */

#include <gtest/gtest.h>

#include "platform/cluster.h"

namespace catalyzer::platform {
namespace {

TEST(ClusterTest, RoundRobinSpreadsInstances)
{
    Cluster cluster(4, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerWarm});
    cluster.deploy(apps::appByName("ds-text"));
    for (int i = 0; i < 8; ++i)
        cluster.invoke("ds-text");
    const auto placement = cluster.placementOf("ds-text");
    for (std::size_t count : placement)
        EXPECT_EQ(count, 2u);
}

TEST(ClusterTest, AffinityKeepsFunctionsHome)
{
    Cluster cluster(4, PlacementPolicy::FunctionAffinity,
                    PlatformConfig{BootStrategy::CatalyzerWarm});
    cluster.deploy(apps::appByName("ds-text"));
    std::size_t home = cluster.invoke("ds-text").machineIndex;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(cluster.invoke("ds-text").machineIndex, home);
    const auto placement = cluster.placementOf("ds-text");
    EXPECT_EQ(placement[home], 6u);
}

TEST(ClusterTest, LeastLoadedBalances)
{
    Cluster cluster(3, PlacementPolicy::LeastLoaded,
                    PlatformConfig{BootStrategy::CatalyzerWarm});
    cluster.deploy(apps::appByName("ds-text"));
    cluster.deploy(apps::appByName("ds-media"));
    for (int i = 0; i < 9; ++i)
        cluster.invoke(i % 2 ? "ds-text" : "ds-media");
    EXPECT_EQ(cluster.totalInstances(), 9u);
    // No machine is more than slightly ahead.
    std::size_t max_load = 0, min_load = 100;
    for (std::size_t i = 0; i < cluster.machineCount(); ++i) {
        const std::size_t load = cluster.platform(i).totalInstances();
        max_load = std::max(max_load, load);
        min_load = std::min(min_load, load);
    }
    EXPECT_LE(max_load - min_load, 1u);
}

TEST(ClusterTest, AffinityPreservesWarmLocality)
{
    // Under affinity every request of a function lands on its home
    // machine, so after the first cold boot everything is warm. Under
    // round robin each machine pays its own cold boot.
    auto run = [](PlacementPolicy policy) {
        Cluster cluster(4, policy,
                        PlatformConfig{BootStrategy::CatalyzerAuto});
        cluster.deploy(apps::appByName("python-hello"));
        double total_boot = 0.0;
        for (int i = 0; i < 8; ++i)
            total_boot +=
                cluster.invoke("python-hello").record.bootLatency.toMs();
        return total_boot;
    };
    EXPECT_LT(run(PlacementPolicy::FunctionAffinity),
              run(PlacementPolicy::RoundRobin));
}

TEST(ClusterTest, RemoteImagesFetchedPerMachine)
{
    core::CatalyzerOptions options;
    options.remoteImages = true;
    Cluster cluster(3, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerCold}, options);
    cluster.deploy(apps::appByName("c-hello"));
    for (int i = 0; i < 6; ++i)
        cluster.invoke("c-hello");
    // Each machine fetched the image exactly once.
    for (std::size_t i = 0; i < cluster.machineCount(); ++i) {
        EXPECT_EQ(cluster.machine(i).ctx().stats().value(
                      "snapshot.image_remote_fetches"), 1)
            << "machine " << i;
    }
}

TEST(ClusterTest, EmptyClusterIsFatal)
{
    EXPECT_EXIT((Cluster{0, PlacementPolicy::RoundRobin}),
                ::testing::ExitedWithCode(1), "at least one machine");
}

TEST(ClusterTest, PolicyNames)
{
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::LeastLoaded),
                 "least-loaded");
}

} // namespace
} // namespace catalyzer::platform
