/**
 * @file
 * Tests for shared COW state regions (src/state/): the
 * create/seal/attach/publish lifecycle, replica streaming and
 * residency accounting, staleness detection, fault bookkeeping and
 * eviction policy.
 */

#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "mem/types.h"
#include "sandbox/machine.h"
#include "state/state_region.h"

namespace catalyzer::state {
namespace {

/** Two registered machines around a standalone (fabric-less) store. */
struct TwoNodeStore
{
    sandbox::Machine m0{42};
    sandbox::Machine m1{43};
    StateRegionStore store;

    TwoNodeStore()
    {
        store.addNode(0, m0.frames(), m0.ctx());
        store.addNode(1, m1.frames(), m1.ctx());
    }
};

TEST(StateRegionTest, LifecycleGuards)
{
    TwoNodeStore fixture;
    StateRegionStore &store = fixture.store;
    store.create("model", 16, 0);

    // Not attachable until sealed, and no double create/seal.
    EXPECT_DEATH(store.attach("model", 0), "unsealed");
    EXPECT_DEATH(store.create("model", 16, 0), "already exists");
    store.seal("model");
    EXPECT_DEATH(store.seal("model"), "already sealed");
    EXPECT_DEATH(store.attach("nope", 0), "unknown region");

    RegionAttachment handle = store.attach("model", 0);
    EXPECT_TRUE(handle.valid());
    EXPECT_EQ(handle.version(), 1u);
    EXPECT_EQ(handle.npages(), 16u);
    store.detach(handle);
    EXPECT_FALSE(handle.valid());
}

TEST(StateRegionTest, EnsureIsIdempotent)
{
    TwoNodeStore fixture;
    fixture.store.ensure("session", 8, 0);
    fixture.store.ensure("session", 8, 1); // no-op, still home 0
    EXPECT_EQ(fixture.store.regionCount(), 1u);
    EXPECT_EQ(fixture.store.version("session"), 1u);
    EXPECT_EQ(fixture.store.holders("session"),
              std::vector<net::NodeId>{0});
}

TEST(StateRegionTest, AttachStreamsReplicaFromNearestHolder)
{
    TwoNodeStore fixture;
    StateRegionStore &store = fixture.store;
    store.ensure("dataset", 32, 0);

    // Home attach: no transfer, resident on 0 only.
    RegionAttachment local = store.attach("dataset", 0);
    EXPECT_EQ(fixture.m0.ctx().stats().value("state.transfers"), 0);
    EXPECT_EQ(store.residentBytesOn(1), 0u);

    // Remote attach streams the whole region to node 1 and pays
    // virtual time for it on the consumer.
    const sim::SimTime before = fixture.m1.ctx().now();
    RegionAttachment remote = store.attach("dataset", 1);
    EXPECT_GT(fixture.m1.ctx().now(), before);
    EXPECT_EQ(fixture.m1.ctx().stats().value("state.transfers"), 1);
    EXPECT_EQ(
        fixture.m1.ctx().stats().value("state.transfer_bytes"),
        static_cast<std::int64_t>(mem::bytesForPages(32)));
    EXPECT_EQ(store.residentBytesOn(1), mem::bytesForPages(32));
    EXPECT_EQ(store.holders("dataset"),
              (std::vector<net::NodeId>{0, 1}));

    // A second attach on the same node reuses the resident replica.
    RegionAttachment again = store.attach("dataset", 1);
    EXPECT_EQ(fixture.m1.ctx().stats().value("state.transfers"), 1);
    store.detach(local);
    store.detach(remote);
    store.detach(again);
}

TEST(StateRegionTest, PublishBumpsVersionAndStalesOtherReplicas)
{
    TwoNodeStore fixture;
    StateRegionStore &store = fixture.store;
    store.ensure("cart", 8, 0);

    RegionAttachment reader = store.attach("cart", 0);
    RegionAttachment writer = store.attach("cart", 1);
    EXPECT_FALSE(reader.stale());

    EXPECT_EQ(store.publish("cart", 1, 3), 2u);
    EXPECT_EQ(store.version("cart"), 2u);

    // Every pre-publish attachment keeps a consistent snapshot but is
    // detectably stale — including the writer's own handle, which was
    // attached under version 1; the directory only lists the
    // publisher's machine as holding the current version.
    EXPECT_TRUE(reader.stale());
    EXPECT_TRUE(writer.stale());
    EXPECT_EQ(store.holders("cart"), std::vector<net::NodeId>{1});
    EXPECT_EQ(store.residentBytesOn(0), 0u);
    EXPECT_EQ(fixture.m1.ctx().stats().value("state.publishes"), 1);
    EXPECT_EQ(fixture.m1.ctx().stats().value("state.published_pages"),
              3);

    // Re-attaching on node 0 streams the new version over.
    store.detach(reader);
    RegionAttachment fresh = store.attach("cart", 0);
    EXPECT_EQ(fresh.version(), 2u);
    EXPECT_FALSE(fresh.stale());
    EXPECT_EQ(fixture.m0.ctx().stats().value("state.transfers"), 1);
    store.detach(fresh);
    store.detach(writer);
}

TEST(StateRegionTest, PublishWithoutCurrentReplicaDies)
{
    TwoNodeStore fixture;
    fixture.store.ensure("cart", 8, 0);
    EXPECT_DEATH(fixture.store.publish("cart", 1, 1),
                 "writers attach first");
}

TEST(StateRegionTest, CowFaultAccountingUnderBatchedTouch)
{
    TwoNodeStore fixture;
    StateRegionStore &store = fixture.store;
    store.ensure("scratch", 64, 0);

    RegionAttachment handle = store.attach("scratch", 0);
    RegionFaultStats faults(fixture.m0.ctx().stats());
    mem::AddressSpace space(fixture.m0.ctx(), fixture.m0.frames(),
                            "state-test");
    space.setFaultObserver(&faults);
    const mem::PageIndex va = space.attachBase(handle.base());

    // A batched read pass fills from the shared layer; a batched write
    // pass COWs every page. One observer extent may cover many pages —
    // the per-page counts must still be exact.
    space.touchRange(va, 64, /*write=*/false);
    EXPECT_EQ(faults.readFaults(), 64u);
    EXPECT_EQ(faults.cowFaults(), 0u);
    space.touchRange(va, 24, /*write=*/true);
    EXPECT_EQ(faults.cowFaults(), 24u);
    EXPECT_EQ(fixture.m0.ctx().stats().value("state.read_faults"), 64);
    EXPECT_EQ(fixture.m0.ctx().stats().value("state.cow_faults"), 24);
    EXPECT_EQ(space.privatePages(), 24u);
    store.detach(handle);
}

TEST(StateRegionTest, EvictRespectsPinsAttachmentsAndLastCopy)
{
    TwoNodeStore fixture;
    StateRegionStore &store = fixture.store;
    store.ensure("model", 16, 0);

    // The only current copy can never be evicted.
    EXPECT_FALSE(store.evict("model", 0));

    RegionAttachment handle = store.attach("model", 1);
    EXPECT_FALSE(store.evict("model", 1)); // attached
    store.detach(handle);

    store.pin("model", 1);
    EXPECT_FALSE(store.evict("model", 1)); // pinned
    store.unpin("model", 1);

    EXPECT_TRUE(store.evict("model", 1));
    EXPECT_EQ(store.residentBytesOn(1), 0u);
    EXPECT_EQ(fixture.m1.ctx().stats().value("state.evictions"), 1);
    EXPECT_EQ(store.holders("model"), std::vector<net::NodeId>{0});
    EXPECT_FALSE(store.evict("model", 1)); // nothing left to evict
}

TEST(StateRegionTest, ResidencyGaugeTracksReplicaMoves)
{
    TwoNodeStore fixture;
    StateRegionStore &store = fixture.store;
    store.ensure("a", 8, 0);
    store.ensure("b", 8, 0);
    EXPECT_EQ(fixture.m0.ctx().stats().value("state.regions_resident"),
              2);

    RegionAttachment handle = store.attach("a", 1);
    EXPECT_EQ(fixture.m1.ctx().stats().value("state.regions_resident"),
              1);
    EXPECT_EQ(store.residentBytesOn(0), 2 * mem::bytesForPages(8));

    // Publishing from node 1 drops node 0's now-stale replica of "a".
    store.publish("a", 1, 1);
    EXPECT_EQ(fixture.m0.ctx().stats().value("state.regions_resident"),
              1);
    EXPECT_EQ(store.residentBytesOn(0), mem::bytesForPages(8));
    store.detach(handle);
}

} // namespace
} // namespace catalyzer::state
