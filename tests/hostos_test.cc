/**
 * @file
 * Unit tests for the host kernel: KVM model, processes, fork and sfork.
 */

#include <gtest/gtest.h>

#include "hostos/host_kernel.h"
#include "hostos/kvm.h"
#include "sandbox/machine.h"

namespace catalyzer::hostos {
namespace {

using sim::SimContext;

TEST(KvmTest, KvcallocCacheCutsCreateVmCost)
{
    SimContext a, b;
    KvmVm stock(a, KvmConfig{true, false});
    KvmVm tuned(b, KvmConfig{true, true});
    stock.createVm();
    tuned.createVm();
    // Fig. 16b: ~1.6 ms of kvcalloc drops to tens of microseconds.
    const double saved = a.now().toMs() - b.now().toMs();
    EXPECT_GT(saved, 1.0);
}

TEST(KvmTest, PmlMakesRegionRegistrationGrow)
{
    SimContext a, b;
    KvmVm pml_on(a, KvmConfig{true, false});
    KvmVm pml_off(b, KvmConfig{false, false});
    pml_on.createVm();
    pml_off.createVm();
    pml_on.createVcpu();
    pml_off.createVcpu();

    sim::SimTime last_on, last_off;
    for (int i = 0; i < 11; ++i) {
        last_on = pml_on.setUserMemoryRegion();
        last_off = pml_off.setUserMemoryRegion();
    }
    // Fig. 16c: the 11th ioctl is ~10x more expensive with PML.
    EXPECT_GT(last_on.toUs() / last_off.toUs(), 5.0);
    // Cost grows with the number of registered regions under PML.
    SimContext c;
    KvmVm fresh(c, KvmConfig{true, false});
    fresh.createVm();
    fresh.createVcpu();
    EXPECT_LT(fresh.setUserMemoryRegion().toUs(), last_on.toUs());
}

TEST(KvmTest, OrderingViolationsPanic)
{
    SimContext ctx;
    KvmVm vm(ctx, KvmConfig{});
    EXPECT_DEATH(vm.createVcpu(), "before createVm");
    EXPECT_DEATH(vm.setUserMemoryRegion(), "before createVm");
    vm.createVm();
    EXPECT_DEATH(vm.createVm(), "already created");
}

class HostKernelTest : public ::testing::Test
{
  protected:
    HostKernelTest() : kernel(ctx) {}
    SimContext ctx;
    HostKernel kernel;
};

TEST_F(HostKernelTest, SpawnAndExit)
{
    HostProcess &proc = kernel.spawnProcess("p");
    EXPECT_TRUE(proc.alive());
    EXPECT_EQ(kernel.processCount(), 1u);
    const auto va = proc.space().mapAnon(4, true, "x");
    proc.space().touchRange(va, 4, true);
    EXPECT_EQ(kernel.machineRssPages(), 4u);
    kernel.exitProcess(proc.pid());
    EXPECT_EQ(kernel.processCount(), 0u);
    EXPECT_EQ(kernel.machineRssPages(), 0u);
}

TEST_F(HostKernelTest, ForkSharesNamespacesAndLayout)
{
    HostProcess &parent = kernel.spawnProcess("p");
    HostProcess &child = kernel.fork(parent, "c");
    EXPECT_EQ(child.pidNamespace(), parent.pidNamespace());
    EXPECT_EQ(child.userNamespace(), parent.userNamespace());
    EXPECT_EQ(child.aslrSalt(), parent.aslrSalt());
    EXPECT_NE(child.pid(), parent.pid());
}

TEST_F(HostKernelTest, MultiThreadedForkPanics)
{
    HostProcess &parent = kernel.spawnProcess("p");
    parent.setThreadCount(4);
    EXPECT_DEATH(kernel.fork(parent, "c"), "clones only the caller");
    EXPECT_DEATH(kernel.sfork(parent, SforkOptions{}),
                 "transient single-thread");
}

TEST_F(HostKernelTest, SforkGivesFreshNamespaces)
{
    HostProcess &parent = kernel.spawnProcess("p");
    HostProcess &child = kernel.sfork(parent, SforkOptions{});
    EXPECT_NE(child.pidNamespace(), parent.pidNamespace());
    EXPECT_NE(child.userNamespace(), parent.userNamespace());
    EXPECT_EQ(ctx.stats().value("host.namespace_setups"), 1);
}

TEST_F(HostKernelTest, SforkCanKeepNamespaces)
{
    HostProcess &parent = kernel.spawnProcess("p");
    SforkOptions opts;
    opts.newPidNamespace = false;
    opts.newUserNamespace = false;
    HostProcess &child = kernel.sfork(parent, opts);
    EXPECT_EQ(child.pidNamespace(), parent.pidNamespace());
}

TEST_F(HostKernelTest, SforkAslrRerandomization)
{
    HostProcess &parent = kernel.spawnProcess("p");
    SforkOptions keep;
    HostProcess &same = kernel.sfork(parent, keep);
    EXPECT_EQ(same.aslrSalt(), parent.aslrSalt());

    SforkOptions rerand;
    rerand.rerandomizeAslr = true;
    HostProcess &fresh = kernel.sfork(parent, rerand);
    EXPECT_NE(fresh.aslrSalt(), parent.aslrSalt());
    EXPECT_EQ(ctx.stats().value("host.aslr_rerandomize"), 1);
}

TEST_F(HostKernelTest, SforkMemoryIsCow)
{
    HostProcess &parent = kernel.spawnProcess("p");
    const auto va = parent.space().mapAnon(8, true, "heap");
    parent.space().touchRange(va, 8, true);
    const std::size_t before = kernel.machineRssPages();

    HostProcess &child = kernel.sfork(parent, SforkOptions{});
    EXPECT_EQ(kernel.machineRssPages(), before); // no copies yet
    child.space().touch(va, true);
    EXPECT_EQ(kernel.machineRssPages(), before + 1);
}

TEST_F(HostKernelTest, SforkInheritsFdTable)
{
    HostProcess &parent = kernel.spawnProcess("p");
    parent.fds().allocate(vfs::FdEntry{vfs::FdKind::File, "/ro", true,
                                       true, 0});
    HostProcess &child = kernel.sfork(parent, SforkOptions{});
    ASSERT_NE(child.fds().get(0), nullptr);
    EXPECT_EQ(child.fds().get(0)->path, "/ro");
}

TEST_F(HostKernelTest, DupChargesAndAllocates)
{
    HostProcess &proc = kernel.spawnProcess("p");
    const int fd = proc.fds().allocate(
        vfs::FdEntry{vfs::FdKind::File, "/x", true, true, 0});
    const auto before = ctx.now();
    const int nfd = kernel.dup(proc, fd);
    EXPECT_NE(nfd, fd);
    EXPECT_GT(ctx.now(), before);
    EXPECT_DEATH(kernel.dup(proc, 77), "not open");
}

TEST_F(HostKernelTest, DupTailLatencyOnExpansion)
{
    HostProcess &proc = kernel.spawnProcess("p");
    const int fd = proc.fds().allocate(
        vfs::FdEntry{vfs::FdKind::File, "/x", true, true, 0});
    // Fill to capacity so the next dup expands.
    while (!proc.fds().nextAllocationExpands())
        proc.fds().allocate(vfs::FdEntry{});
    const auto before = ctx.now();
    kernel.dup(proc, fd);
    const double us = (ctx.now() - before).toUs();
    // Expansion costs at least the typical reallocation latency.
    EXPECT_GE(us, ctx.costs().dupExpandTypical.toUs() * 0.99);
    EXPECT_EQ(ctx.stats().value("vfs.fdtable_expansions"), 1);
}

TEST_F(HostKernelTest, ExitUnknownPidPanics)
{
    EXPECT_DEATH(kernel.exitProcess(424242), "no pid");
}

} // namespace
} // namespace catalyzer::hostos
