/**
 * @file
 * Tests for DAG workflows (src/workflow/): spec validation and
 * topological ordering, locality-aware vs blind stage placement,
 * critical-path latency math, cross-machine trace stitching, the gated
 * state block in fleet snapshots, autoscaler residency accounting and
 * deterministic fleet replay with a workflow side stream.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "load/driver.h"
#include "load/population.h"
#include "load/traffic.h"
#include "mem/types.h"
#include "platform/cluster.h"
#include "workflow/scenarios.h"
#include "workflow/workflow.h"

namespace catalyzer::workflow {
namespace {

using namespace sim::time_literals;

/** A cluster with every scenario function deployed and prepared. */
std::unique_ptr<platform::Cluster>
makeChainCluster(std::size_t machines, platform::PlacementPolicy policy)
{
    net::FabricConfig fabric;
    fabric.modelTransfers = true;
    platform::PlatformConfig pconf;
    pconf.strategy = platform::BootStrategy::CatalyzerAuto;
    pconf.reuseIdleInstances = true;
    auto cluster = std::make_unique<platform::Cluster>(
        machines, policy, pconf, core::CatalyzerOptions{},
        sim::CostModel{}, 42, fabric);
    for (const std::string &fn : scenarioFunctions()) {
        const apps::AppProfile &app = apps::appByName(fn);
        cluster->deploy(app);
        cluster->prepareEverywhere(app);
    }
    return cluster;
}

//
// Spec validation and ordering.
//

TEST(WorkflowSpecTest, ValidationDeaths)
{
    WorkflowSpec empty;
    empty.name = "empty";
    EXPECT_DEATH(empty.validate(), "no stages");

    WorkflowSpec spec;
    spec.name = "bad";
    spec.regions = {{"r", 8}};
    spec.stages = {{"a", "wf-ingest", {}, {}, {"r"}, 0, 0},
                   {"b", "wf-aggregate", {"a"}, {"r"}, {}, 0, 0}};
    spec.validate(); // well-formed baseline

    WorkflowSpec self = spec;
    self.stages[0].after = {"a"};
    EXPECT_DEATH(self.validate(), "depends on itself");

    WorkflowSpec unknown = spec;
    unknown.stages[1].after = {"ghost"};
    EXPECT_DEATH(unknown.validate(), "unknown");

    WorkflowSpec cycle = spec;
    cycle.stages[0].after = {"b"};
    EXPECT_DEATH(cycle.validate(), "cycle");

    WorkflowSpec dup = spec;
    dup.stages[1].name = "a";
    EXPECT_DEATH(dup.validate(), "duplicate");

    WorkflowSpec undeclared = spec;
    undeclared.stages[1].reads = {"missing"};
    EXPECT_DEATH(undeclared.validate(), "undeclared region");
}

TEST(WorkflowSpecTest, TopoOrderIsStableAndDependencyRespecting)
{
    const WorkflowSpec spec = pipelineAnalytics(3, 32);
    const std::vector<std::size_t> order = spec.topoOrder();
    ASSERT_EQ(order.size(), spec.stages.size());
    // Every stage appears after all of its dependencies.
    std::vector<std::size_t> pos(order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    for (std::size_t i = 0; i < spec.stages.size(); ++i) {
        for (const std::string &dep : spec.stages[i].after) {
            std::size_t d = 0;
            while (spec.stages[d].name != dep)
                ++d;
            EXPECT_LT(pos[d], pos[i]);
        }
    }
    // Stable: ready stages run in spec order, so the ingest leads and
    // the transforms follow in declaration order.
    EXPECT_EQ(order.front(), 0u);
    EXPECT_EQ(spec.topoOrder(), order);
}

//
// Engine placement and latency accounting.
//

TEST(WorkflowEngineTest, LocalityAwareCoSchedulesEveryHop)
{
    auto cluster_ptr = makeChainCluster(
        2, platform::PlacementPolicy::NetworkAware);
    platform::Cluster &cluster = *cluster_ptr;
    WorkflowEngine engine(cluster);
    const WorkflowResult result = engine.run(shoppingCartSession(3, 16));
    EXPECT_GT(result.hopsLocal, 0u);
    EXPECT_EQ(result.hopsRemote, 0u);
    EXPECT_GT(result.cowFaults, 0u);
    EXPECT_GT(result.readFaults, 0u);
}

TEST(WorkflowEngineTest, BlindPlacementPaysRemoteHopsAndTransfers)
{
    auto cluster_ptr = makeChainCluster(
        2, platform::PlacementPolicy::RoundRobin);
    platform::Cluster &cluster = *cluster_ptr;
    WorkflowEngine engine(cluster, WorkflowOptions{false});
    const WorkflowResult result = engine.run(shoppingCartSession(3, 16));
    EXPECT_GT(result.hopsRemote, 0u);
    EXPECT_GT(result.transferBytes, 0u);
    // A remote hop is strictly more virtual time than a local one:
    // dispatch + fabric RTT (+ the region streamed on first attach).
    for (const StageOutcome &stage : result.stages) {
        if (stage.depsRemote > 0)
            EXPECT_GT(stage.hopLatency, sim::SimTime());
    }
}

TEST(WorkflowEngineTest, CriticalPathIsMaxStageFinish)
{
    auto cluster_ptr = makeChainCluster(
        4, platform::PlacementPolicy::RoundRobin);
    platform::Cluster &cluster = *cluster_ptr;
    WorkflowEngine engine(cluster, WorkflowOptions{false});
    const WorkflowResult result = engine.run(pipelineAnalytics(4, 32));

    sim::SimTime max_finish, serial;
    for (const StageOutcome &stage : result.stages) {
        EXPECT_GE(stage.finishAt, stage.readyAt);
        max_finish = std::max(max_finish, stage.finishAt);
        serial += stage.finishAt - stage.readyAt;
    }
    EXPECT_EQ(result.e2e, max_finish);
    // Fan-out transforms scattered over four machines overlap in
    // virtual time, so the critical path beats the serial sum.
    EXPECT_LT(result.e2e, serial);
}

TEST(WorkflowEngineTest, TraceIdStitchesStagesAcrossMachines)
{
    auto cluster_ptr = makeChainCluster(
        2, platform::PlacementPolicy::RoundRobin);
    platform::Cluster &cluster = *cluster_ptr;
    WorkflowEngine engine(cluster, WorkflowOptions{false});
    const trace::TraceContext pinned(cluster.machine(0).tracer(),
                                     cluster.machine(0).ctx().clock(), 0,
                                     777);
    const WorkflowResult result =
        engine.run(shoppingCartSession(2, 16), pinned);
    EXPECT_EQ(result.traceId, 777u);

    std::set<std::uint32_t> lanes;
    for (std::size_t m = 0; m < cluster.machineCount(); ++m) {
        for (const trace::Span &s :
             cluster.machine(m).tracer().snapshot()) {
            if (s.traceId == 777u)
                lanes.insert(s.machine);
        }
    }
    EXPECT_GT(lanes.size(), 1u);
}

//
// Fleet snapshot gating and autoscaler accounting.
//

TEST(WorkflowEngineTest, StatsSnapshotStateBlockIsPayForUse)
{
    auto cluster_ptr = makeChainCluster(
        2, platform::PlacementPolicy::NetworkAware);
    platform::Cluster &cluster = *cluster_ptr;
    std::ostringstream before;
    cluster.statsSnapshot(before);
    EXPECT_EQ(before.str().find("\"state\""), std::string::npos);

    WorkflowEngine engine(cluster);
    engine.run(shoppingCartSession(2, 16));
    std::ostringstream after;
    cluster.statsSnapshot(after);
    EXPECT_NE(after.str().find("\"state\""), std::string::npos);
    EXPECT_NE(after.str().find("\"resident_bytes_total\""),
              std::string::npos);

    std::size_t resident = 0;
    for (std::size_t m = 0; m < cluster.machineCount(); ++m)
        resident += cluster.stateResidentBytes(m);
    EXPECT_GT(resident, 0u);
}

TEST(WorkflowEngineTest, AutoscalerBudgetSeesRegionResidency)
{
    auto cluster_ptr = makeChainCluster(
        2, platform::PlacementPolicy::NetworkAware);
    platform::Cluster &cluster = *cluster_ptr;
    load::PopulationSpec pspec;
    pspec.functions = 4;
    pspec.tenants = 2;
    pspec.totalRps = 10.0;
    const load::Population pop(pspec);
    load::FleetAutoscaler scaler(cluster, pop, {});

    const std::size_t before = scaler.residentBytes(0);
    cluster.stateRegions().ensure("model", 256, 0);
    EXPECT_EQ(scaler.residentBytes(0),
              before + mem::bytesForPages(256));
    EXPECT_EQ(scaler.fleetResidentBytes(),
              scaler.residentBytes(0) + scaler.residentBytes(1));
}

//
// Fleet replay with a workflow side stream.
//

TEST(WorkflowFleetTest, WorkflowTapeEntriesAreDeterministic)
{
    load::TrafficSpec traffic;
    traffic.durationSec = 2.0;
    traffic.workflowRps = 5.0;
    traffic.workflowKinds = 2;
    load::PopulationSpec pspec;
    pspec.functions = 6;
    pspec.tenants = 2;
    pspec.totalRps = 20.0;
    const load::Population pop(pspec);

    const auto a = load::generateFleetStream(pop, traffic);
    const auto b = load::generateFleetStream(pop, traffic);
    ASSERT_EQ(a.size(), b.size());
    std::size_t workflows = 0;
    std::set<std::int32_t> kinds;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].atSec, b[i].atSec);
        EXPECT_EQ(a[i].workflow, b[i].workflow);
        if (a[i].workflow >= 0) {
            ++workflows;
            kinds.insert(a[i].workflow);
        }
        if (i > 0)
            EXPECT_GE(a[i].atSec, a[i - 1].atSec);
    }
    EXPECT_GT(workflows, 0u);
    EXPECT_EQ(kinds.size(), 2u); // round-robin across workflowKinds
}

TEST(WorkflowFleetTest, FleetReplayWithWorkflowsIsThreadInvariant)
{
    auto run = [](int threads) {
        load::PopulationSpec pspec;
        pspec.functions = 6;
        pspec.tenants = 2;
        pspec.totalRps = 20.0;
        const load::Population pop(pspec);
        load::TrafficSpec traffic;
        traffic.durationSec = 1.5;
        traffic.workflowRps = 4.0;
        traffic.workflowKinds = 2;

        load::FleetRunConfig config;
        config.policy.keepAliveTtl = 300_ms;
        config.simThreads = threads;
        config.workflows = {pipelineAnalytics(2, 32),
                            shoppingCartSession(2, 16)};

        auto cluster_ptr = makeChainCluster(
            2, platform::PlacementPolicy::NetworkAware);
        platform::Cluster &cluster = *cluster_ptr;
        const load::FleetReport report =
            load::FleetDriver(cluster, pop).run(traffic, config);
        EXPECT_GT(report.workflowRuns, 0u);
        EXPECT_GT(report.chainHopsLocal + report.chainHopsRemote, 0u);
        EXPECT_EQ(report.chainE2e.count(), report.workflowRuns);

        std::ostringstream rep, trace;
        report.writeJson(rep);
        cluster.exportFleetTrace(trace);
        return rep.str() + trace.str();
    };
    const std::string one = run(1);
    EXPECT_EQ(one, run(8));
    EXPECT_NE(one.find("\"workflows\""), std::string::npos);
}

TEST(WorkflowFleetTest, ReportOmitsWorkflowBlockWithoutWorkflows)
{
    load::PopulationSpec pspec;
    pspec.functions = 4;
    pspec.tenants = 2;
    pspec.totalRps = 15.0;
    const load::Population pop(pspec);
    load::TrafficSpec traffic;
    traffic.durationSec = 1.0;

    load::FleetRunConfig config;
    config.policy.keepAliveTtl = 300_ms;
    auto cluster_ptr = makeChainCluster(
        2, platform::PlacementPolicy::NetworkAware);
    platform::Cluster &cluster = *cluster_ptr;
    const load::FleetReport report =
        load::FleetDriver(cluster, pop).run(traffic, config);
    EXPECT_EQ(report.workflowRuns, 0u);
    std::ostringstream rep;
    report.writeJson(rep);
    EXPECT_EQ(rep.str().find("\"workflows\""), std::string::npos);
}

} // namespace
} // namespace catalyzer::workflow
