/**
 * @file
 * Tests for func-image storage: remote fetch, local caching, integrity
 * verification and the corrupted-image fallback path.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "catalyzer/runtime.h"
#include "net/fabric.h"
#include "remote/template_registry.h"
#include "sandbox/pipelines.h"
#include "snapshot/image_store.h"

namespace catalyzer::snapshot {
namespace {

using sandbox::FunctionArtifacts;
using sandbox::FunctionRegistry;
using sandbox::Machine;

std::shared_ptr<FuncImage>
buildImage(FunctionRegistry &registry, const char *app)
{
    return sandbox::ensureSeparatedImage(
        registry.artifactsFor(apps::appByName(app)));
}

TEST(ImageStoreTest, FetchUnknownReturnsNull)
{
    Machine machine(1);
    ImageStore store(machine.ctx());
    EXPECT_EQ(store.fetch("nope", ImageFormat::SeparatedWellFormed),
              nullptr);
}

TEST(ImageStoreTest, PublishThenLocalFetchIsFree)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    ImageStore store(machine.ctx());
    store.publish(buildImage(registry, "c-hello"));

    const auto before = machine.ctx().now();
    auto image = store.fetch("c-hello", ImageFormat::SeparatedWellFormed);
    ASSERT_NE(image, nullptr);
    EXPECT_EQ(machine.ctx().now(), before); // local hit: no charge
    EXPECT_EQ(machine.ctx().stats().value("snapshot.image_local_hits"),
              1);
}

TEST(ImageStoreTest, RemoteFetchPaysNetworkOnce)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    ImageStore store(machine.ctx());
    auto image = buildImage(registry, "python-hello");
    store.publish(image);
    store.evictLocal("python-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_FALSE(store.cachedLocally("python-hello",
                                     ImageFormat::SeparatedWellFormed));

    const auto before = machine.ctx().now();
    auto fetched =
        store.fetch("python-hello", ImageFormat::SeparatedWellFormed);
    ASSERT_EQ(fetched.get(), image.get());
    const double fetch_ms = (machine.ctx().now() - before).toMs();
    // ~20 MB image over the network: tens of ms.
    EXPECT_GT(fetch_ms, 5.0);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);

    // Second fetch is local.
    const auto mid = machine.ctx().now();
    store.fetch("python-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_EQ(machine.ctx().now(), mid);
}

TEST(ImageStoreTest, FlatCompatFabricFetchIsBitIdentical)
{
    // Satellite regression for the fabric refactor: routing fetch()
    // through a flat-compat net::Fabric must leave the default fetch
    // latency and counters exactly as the legacy flat charge, whether
    // the store owns the fabric (standalone machine) or a Cluster
    // attached one.
    auto run = [](bool attach) {
        Machine machine(7);
        FunctionRegistry registry(machine);
        ImageStore store(machine.ctx());
        net::Fabric fabric; // default: modelTransfers off
        if (attach)
            store.attachFabric(&fabric, 0);
        store.publish(buildImage(registry, "python-django"));
        store.evictLocal("python-django",
                         ImageFormat::SeparatedWellFormed);
        const auto before = machine.ctx().now();
        store.fetch("python-django", ImageFormat::SeparatedWellFormed);
        return machine.ctx().now() - before;
    };
    const sim::SimTime attached = run(true);
    const sim::SimTime unattached = run(false);
    EXPECT_EQ(attached, unattached);

    // And both equal the legacy formula: flat per-MiB charge plus the
    // manifest parse.
    Machine machine(7);
    FunctionRegistry registry(machine);
    auto image = buildImage(registry, "python-django");
    const auto mib = static_cast<std::int64_t>(
        mem::bytesForPages(image->totalPages()) >> 20);
    const sim::SimTime legacy =
        machine.ctx().costs().networkFetchPerMiB *
            std::max<std::int64_t>(mib, 1) +
        machine.ctx().costs().imageManifestParse;
    EXPECT_EQ(attached, legacy);
}

TEST(ImageStoreTest, P2PFetchStreamsFromNearestReplica)
{
    // Two machines on a modeled fabric: machine 1 fetches from origin
    // (registering itself as a replica), machine 0 then fetches from
    // machine 1 instead of origin — faster, because peers stream at
    // full NIC bandwidth while origin is the shared blob store.
    net::FabricConfig config;
    config.modelTransfers = true;
    config.p2pImages = true;
    net::Fabric fabric(config);
    remote::TemplateRegistry registry(&fabric);

    Machine m0(7), m1(8);
    FunctionRegistry f0(m0), f1(m1);
    ImageStore s0(m0.ctx()), s1(m1.ctx());
    s0.attachFabric(&fabric, 0, &registry);
    s1.attachFabric(&fabric, 1, &registry);

    // Images are built per machine (BackingFiles are machine-local)
    // and published under the same key.
    s0.publish(buildImage(f0, "python-django"));
    s0.evictLocal("python-django", ImageFormat::SeparatedWellFormed);
    s1.publish(buildImage(f1, "python-django"));
    s1.evictLocal("python-django", ImageFormat::SeparatedWellFormed);

    const auto t1 = m1.ctx().now();
    s1.fetch("python-django", ImageFormat::SeparatedWellFormed);
    const sim::SimTime origin_fetch = m1.ctx().now() - t1;
    EXPECT_EQ(m1.ctx().stats().value("snapshot.p2p_fetches"), 0);

    const auto t0 = m0.ctx().now();
    s0.fetch("python-django", ImageFormat::SeparatedWellFormed);
    const sim::SimTime p2p_fetch = m0.ctx().now() - t0;
    EXPECT_EQ(m0.ctx().stats().value("snapshot.p2p_fetches"), 1);
    EXPECT_LT(p2p_fetch, origin_fetch);
    EXPECT_GT(m0.ctx().stats().value("net.transfers"), 0);
}

TEST(ImageStoreTest, VerifyDetectsCorruption)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    auto image = buildImage(registry, "c-hello");
    EXPECT_TRUE(verifyImage(machine.ctx(), *image));
    image->markCorrupted();
    EXPECT_FALSE(verifyImage(machine.ctx(), *image));
    EXPECT_GT(machine.ctx().stats().value(
                  "snapshot.pages_checksummed"), 0);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.corrupt_images_detected"), 1);
}

TEST(ImageStoreTest, RuntimeRemoteImagesChargeFirstColdBoot)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.remoteImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("python-hello"));

    runtime.bootCold(fn);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);
    runtime.bootCold(fn);
    // Still one: the image is now local.
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);
}

TEST(ImageStoreTest, RuntimeRebuildsCorruptImage)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.verifyImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    // Healthy boot first; then rot the image on storage.
    auto first = runtime.bootCold(fn);
    EXPECT_EQ(machine.ctx().stats().value("catalyzer.image_rebuilds"), 0);
    fn.separatedImage->markCorrupted();

    auto second = runtime.bootCold(fn);
    ASSERT_NE(second.instance, nullptr);
    EXPECT_EQ(machine.ctx().stats().value("catalyzer.image_rebuilds"), 1);
    EXPECT_FALSE(fn.separatedImage->corrupted());
    // The restored guest still has valid state.
    EXPECT_TRUE(second.instance->guest().state().checkIntegrity());
    // Local build: no remote round-trip to pay after the rebuild.
    EXPECT_EQ(machine.ctx().stats().value(
                  "catalyzer.image_refetch_after_rebuild"), 0);
}

TEST(ImageStoreTest, RebuildUnderRemoteImagesPaysRefetch)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.remoteImages = true;
    options.verifyImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &stats = machine.ctx().stats();
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    runtime.bootCold(fn);
    EXPECT_EQ(stats.value("snapshot.image_remote_fetches"), 1);
    fn.separatedImage->markCorrupted();

    // The rebuild path must be symmetric with the initial publish: the
    // clean image goes to remote storage, the local copy is evicted,
    // and this boot pays the re-fetch.
    auto second = runtime.bootCold(fn);
    ASSERT_NE(second.instance, nullptr);
    EXPECT_EQ(stats.value("catalyzer.image_rebuilds"), 1);
    EXPECT_EQ(stats.value("catalyzer.image_refetch_after_rebuild"), 1);
    EXPECT_EQ(stats.value("snapshot.image_remote_fetches"), 2);
    EXPECT_FALSE(fn.separatedImage->corrupted());
    EXPECT_TRUE(second.instance->guest().state().checkIntegrity());
}

} // namespace
} // namespace catalyzer::snapshot
