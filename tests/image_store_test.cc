/**
 * @file
 * Tests for func-image storage: remote fetch, local caching, integrity
 * verification and the corrupted-image fallback path.
 */

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "sandbox/pipelines.h"
#include "snapshot/image_store.h"

namespace catalyzer::snapshot {
namespace {

using sandbox::FunctionArtifacts;
using sandbox::FunctionRegistry;
using sandbox::Machine;

std::shared_ptr<FuncImage>
buildImage(FunctionRegistry &registry, const char *app)
{
    return sandbox::ensureSeparatedImage(
        registry.artifactsFor(apps::appByName(app)));
}

TEST(ImageStoreTest, FetchUnknownReturnsNull)
{
    Machine machine(1);
    ImageStore store(machine.ctx());
    EXPECT_EQ(store.fetch("nope", ImageFormat::SeparatedWellFormed),
              nullptr);
}

TEST(ImageStoreTest, PublishThenLocalFetchIsFree)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    ImageStore store(machine.ctx());
    store.publish(buildImage(registry, "c-hello"));

    const auto before = machine.ctx().now();
    auto image = store.fetch("c-hello", ImageFormat::SeparatedWellFormed);
    ASSERT_NE(image, nullptr);
    EXPECT_EQ(machine.ctx().now(), before); // local hit: no charge
    EXPECT_EQ(machine.ctx().stats().value("snapshot.image_local_hits"),
              1);
}

TEST(ImageStoreTest, RemoteFetchPaysNetworkOnce)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    ImageStore store(machine.ctx());
    auto image = buildImage(registry, "python-hello");
    store.publish(image);
    store.evictLocal("python-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_FALSE(store.cachedLocally("python-hello",
                                     ImageFormat::SeparatedWellFormed));

    const auto before = machine.ctx().now();
    auto fetched =
        store.fetch("python-hello", ImageFormat::SeparatedWellFormed);
    ASSERT_EQ(fetched.get(), image.get());
    const double fetch_ms = (machine.ctx().now() - before).toMs();
    // ~20 MB image over the network: tens of ms.
    EXPECT_GT(fetch_ms, 5.0);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);

    // Second fetch is local.
    const auto mid = machine.ctx().now();
    store.fetch("python-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_EQ(machine.ctx().now(), mid);
}

TEST(ImageStoreTest, VerifyDetectsCorruption)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    auto image = buildImage(registry, "c-hello");
    EXPECT_TRUE(verifyImage(machine.ctx(), *image));
    image->markCorrupted();
    EXPECT_FALSE(verifyImage(machine.ctx(), *image));
    EXPECT_GT(machine.ctx().stats().value(
                  "snapshot.pages_checksummed"), 0);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.corrupt_images_detected"), 1);
}

TEST(ImageStoreTest, RuntimeRemoteImagesChargeFirstColdBoot)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.remoteImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("python-hello"));

    runtime.bootCold(fn);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);
    runtime.bootCold(fn);
    // Still one: the image is now local.
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);
}

TEST(ImageStoreTest, RuntimeRebuildsCorruptImage)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.verifyImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    // Healthy boot first; then rot the image on storage.
    auto first = runtime.bootCold(fn);
    EXPECT_EQ(machine.ctx().stats().value("catalyzer.image_rebuilds"), 0);
    fn.separatedImage->markCorrupted();

    auto second = runtime.bootCold(fn);
    ASSERT_NE(second.instance, nullptr);
    EXPECT_EQ(machine.ctx().stats().value("catalyzer.image_rebuilds"), 1);
    EXPECT_FALSE(fn.separatedImage->corrupted());
    // The restored guest still has valid state.
    EXPECT_TRUE(second.instance->guest().state().checkIntegrity());
    // Local build: no remote round-trip to pay after the rebuild.
    EXPECT_EQ(machine.ctx().stats().value(
                  "catalyzer.image_refetch_after_rebuild"), 0);
}

TEST(ImageStoreTest, RebuildUnderRemoteImagesPaysRefetch)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.remoteImages = true;
    options.verifyImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &stats = machine.ctx().stats();
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    runtime.bootCold(fn);
    EXPECT_EQ(stats.value("snapshot.image_remote_fetches"), 1);
    fn.separatedImage->markCorrupted();

    // The rebuild path must be symmetric with the initial publish: the
    // clean image goes to remote storage, the local copy is evicted,
    // and this boot pays the re-fetch.
    auto second = runtime.bootCold(fn);
    ASSERT_NE(second.instance, nullptr);
    EXPECT_EQ(stats.value("catalyzer.image_rebuilds"), 1);
    EXPECT_EQ(stats.value("catalyzer.image_refetch_after_rebuild"), 1);
    EXPECT_EQ(stats.value("snapshot.image_remote_fetches"), 2);
    EXPECT_FALSE(fn.separatedImage->corrupted());
    EXPECT_TRUE(second.instance->guest().state().checkIntegrity());
}

} // namespace
} // namespace catalyzer::snapshot
