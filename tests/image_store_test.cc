/**
 * @file
 * Tests for func-image storage: remote fetch, local caching, integrity
 * verification and the corrupted-image fallback path.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "catalyzer/runtime.h"
#include "net/fabric.h"
#include "remote/template_registry.h"
#include "sandbox/pipelines.h"
#include "snapshot/image_store.h"

namespace catalyzer::snapshot {
namespace {

using sandbox::FunctionArtifacts;
using sandbox::FunctionRegistry;
using sandbox::Machine;

std::shared_ptr<FuncImage>
buildImage(FunctionRegistry &registry, const char *app)
{
    return sandbox::ensureSeparatedImage(
        registry.artifactsFor(apps::appByName(app)));
}

TEST(ImageStoreTest, FetchUnknownReturnsNull)
{
    Machine machine(1);
    ImageStore store(machine.ctx());
    EXPECT_EQ(store.fetch("nope", ImageFormat::SeparatedWellFormed),
              nullptr);
}

TEST(ImageStoreTest, PublishThenLocalFetchIsFree)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    ImageStore store(machine.ctx());
    store.publish(buildImage(registry, "c-hello"));

    const auto before = machine.ctx().now();
    auto image = store.fetch("c-hello", ImageFormat::SeparatedWellFormed);
    ASSERT_NE(image, nullptr);
    EXPECT_EQ(machine.ctx().now(), before); // local hit: no charge
    EXPECT_EQ(machine.ctx().stats().value("snapshot.image_local_hits"),
              1);
}

TEST(ImageStoreTest, RemoteFetchPaysNetworkOnce)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    ImageStore store(machine.ctx());
    auto image = buildImage(registry, "python-hello");
    store.publish(image);
    store.evictLocal("python-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_FALSE(store.cachedLocally("python-hello",
                                     ImageFormat::SeparatedWellFormed));

    const auto before = machine.ctx().now();
    auto fetched =
        store.fetch("python-hello", ImageFormat::SeparatedWellFormed);
    ASSERT_EQ(fetched.get(), image.get());
    const double fetch_ms = (machine.ctx().now() - before).toMs();
    // ~20 MB image over the network: tens of ms.
    EXPECT_GT(fetch_ms, 5.0);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);

    // Second fetch is local.
    const auto mid = machine.ctx().now();
    store.fetch("python-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_EQ(machine.ctx().now(), mid);
}

TEST(ImageStoreTest, FlatCompatFabricFetchIsBitIdentical)
{
    // Satellite regression for the fabric refactor: routing fetch()
    // through a flat-compat net::Fabric must leave the default fetch
    // latency and counters exactly as the legacy flat charge, whether
    // the store owns the fabric (standalone machine) or a Cluster
    // attached one.
    auto run = [](bool attach) {
        Machine machine(7);
        FunctionRegistry registry(machine);
        ImageStore store(machine.ctx());
        net::Fabric fabric; // default: modelTransfers off
        if (attach)
            store.attachFabric(&fabric, 0);
        store.publish(buildImage(registry, "python-django"));
        store.evictLocal("python-django",
                         ImageFormat::SeparatedWellFormed);
        const auto before = machine.ctx().now();
        store.fetch("python-django", ImageFormat::SeparatedWellFormed);
        return machine.ctx().now() - before;
    };
    const sim::SimTime attached = run(true);
    const sim::SimTime unattached = run(false);
    EXPECT_EQ(attached, unattached);

    // And both equal the legacy formula: flat per-MiB charge plus the
    // manifest parse.
    Machine machine(7);
    FunctionRegistry registry(machine);
    auto image = buildImage(registry, "python-django");
    const auto mib = static_cast<std::int64_t>(
        mem::bytesForPages(image->totalPages()) >> 20);
    const sim::SimTime legacy =
        machine.ctx().costs().networkFetchPerMiB *
            std::max<std::int64_t>(mib, 1) +
        machine.ctx().costs().imageManifestParse;
    EXPECT_EQ(attached, legacy);
}

TEST(ImageStoreTest, P2PFetchStreamsFromNearestReplica)
{
    // Two machines on a modeled fabric: machine 1 fetches from origin
    // (registering itself as a replica), machine 0 then fetches from
    // machine 1 instead of origin — faster, because peers stream at
    // full NIC bandwidth while origin is the shared blob store.
    net::FabricConfig config;
    config.modelTransfers = true;
    config.p2pImages = true;
    net::Fabric fabric(config);
    remote::TemplateRegistry registry(&fabric);

    Machine m0(7), m1(8);
    FunctionRegistry f0(m0), f1(m1);
    ImageStore s0(m0.ctx()), s1(m1.ctx());
    s0.attachFabric(&fabric, 0, &registry);
    s1.attachFabric(&fabric, 1, &registry);

    // Images are built per machine (BackingFiles are machine-local)
    // and published under the same key.
    s0.publish(buildImage(f0, "python-django"));
    s0.evictLocal("python-django", ImageFormat::SeparatedWellFormed);
    s1.publish(buildImage(f1, "python-django"));
    s1.evictLocal("python-django", ImageFormat::SeparatedWellFormed);

    const auto t1 = m1.ctx().now();
    s1.fetch("python-django", ImageFormat::SeparatedWellFormed);
    const sim::SimTime origin_fetch = m1.ctx().now() - t1;
    EXPECT_EQ(m1.ctx().stats().value("snapshot.p2p_fetches"), 0);

    const auto t0 = m0.ctx().now();
    s0.fetch("python-django", ImageFormat::SeparatedWellFormed);
    const sim::SimTime p2p_fetch = m0.ctx().now() - t0;
    EXPECT_EQ(m0.ctx().stats().value("snapshot.p2p_fetches"), 1);
    EXPECT_LT(p2p_fetch, origin_fetch);
    EXPECT_GT(m0.ctx().stats().value("net.transfers"), 0);
}

TEST(ImageStoreTest, VerifyDetectsCorruption)
{
    Machine machine(1);
    FunctionRegistry registry(machine);
    auto image = buildImage(registry, "c-hello");
    EXPECT_TRUE(verifyImage(machine.ctx(), *image));
    image->markCorrupted();
    EXPECT_FALSE(verifyImage(machine.ctx(), *image));
    EXPECT_GT(machine.ctx().stats().value(
                  "snapshot.pages_checksummed"), 0);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.corrupt_images_detected"), 1);
}

TEST(ImageStoreTest, RuntimeRemoteImagesChargeFirstColdBoot)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.remoteImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("python-hello"));

    runtime.bootCold(fn);
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);
    runtime.bootCold(fn);
    // Still one: the image is now local.
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.image_remote_fetches"), 1);
}

TEST(ImageStoreTest, RuntimeRebuildsCorruptImage)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.verifyImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    // Healthy boot first; then rot the image on storage.
    auto first = runtime.bootCold(fn);
    EXPECT_EQ(machine.ctx().stats().value("catalyzer.image_rebuilds"), 0);
    fn.separatedImage->markCorrupted();

    auto second = runtime.bootCold(fn);
    ASSERT_NE(second.instance, nullptr);
    EXPECT_EQ(machine.ctx().stats().value("catalyzer.image_rebuilds"), 1);
    EXPECT_FALSE(fn.separatedImage->corrupted());
    // The restored guest still has valid state.
    EXPECT_TRUE(second.instance->guest().state().checkIntegrity());
    // Local build: no remote round-trip to pay after the rebuild.
    EXPECT_EQ(machine.ctx().stats().value(
                  "catalyzer.image_refetch_after_rebuild"), 0);
}

TEST(ImageStoreTest, RebuildUnderRemoteImagesPaysRefetch)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.remoteImages = true;
    options.verifyImages = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &stats = machine.ctx().stats();
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    runtime.bootCold(fn);
    EXPECT_EQ(stats.value("snapshot.image_remote_fetches"), 1);
    fn.separatedImage->markCorrupted();

    // The rebuild path must be symmetric with the initial publish: the
    // clean image goes to remote storage, the local copy is evicted,
    // and this boot pays the re-fetch.
    auto second = runtime.bootCold(fn);
    ASSERT_NE(second.instance, nullptr);
    EXPECT_EQ(stats.value("catalyzer.image_rebuilds"), 1);
    EXPECT_EQ(stats.value("catalyzer.image_refetch_after_rebuild"), 1);
    EXPECT_EQ(stats.value("snapshot.image_remote_fetches"), 2);
    EXPECT_FALSE(fn.separatedImage->corrupted());
    EXPECT_TRUE(second.instance->guest().state().checkIntegrity());
}

TEST(ImageStoreTest, ChunkedEvictThenRefetchRepaysAssemblyNotNetwork)
{
    // Evicting the assembled image drops the local copy, not the chunk
    // tiers: the refetch is a real fetch again (charged, counted) but
    // every chunk comes out of RAM, so no new bytes cross the network.
    Machine machine(11);
    FunctionRegistry registry(machine);
    ImageStore store(machine.ctx());
    store.publish(buildImage(registry, "python-django"));
    store.evictLocal("python-django", ImageFormat::SeparatedWellFormed);
    ChunkStoreConfig config;
    config.enabled = true;
    // Hold the whole ~81 MiB image in the RAM tier so the refetch hits
    // memory, not the SSD spillover.
    config.ramBudgetBytes = 256u << 20;
    store.configureChunks(config);
    auto &stats = machine.ctx().stats();

    store.fetch("python-django", ImageFormat::SeparatedWellFormed);
    const auto transferred =
        stats.value("image.chunks.bytes_transferred");
    EXPECT_GT(transferred, 0);

    store.evictLocal("python-django", ImageFormat::SeparatedWellFormed);
    EXPECT_EQ(stats.value("image.evictions"), 2);
    const auto before = machine.ctx().now();
    store.fetch("python-django", ImageFormat::SeparatedWellFormed);
    EXPECT_GT(machine.ctx().now(), before); // re-paid, not a free hit
    EXPECT_EQ(stats.value("image.fetch.remote"), 2);
    EXPECT_EQ(stats.value("image.chunks.bytes_transferred"),
              transferred); // ...but nothing new crossed the network
    EXPECT_GT(stats.value("image.chunks.ram_hits"), 0);
}

TEST(ImageStoreTest, RepublishInvalidatesStaleCopiesOnOtherMachines)
{
    // Machine 0 rebuilds and republishes a function; machine 1's cached
    // copy of the old build must turn stale and refetch instead of
    // serving the outdated image.
    net::Fabric fabric;
    remote::TemplateRegistry directory(&fabric);
    Machine m0(7), m1(8);
    FunctionRegistry f0(m0), f1(m1);
    ImageStore s0(m0.ctx()), s1(m1.ctx());
    s0.attachFabric(&fabric, 0, &directory);
    s1.attachFabric(&fabric, 1, &directory);

    s0.publish(buildImage(f0, "c-hello"));
    s1.publish(buildImage(f1, "c-hello"));
    s1.evictLocal("c-hello", ImageFormat::SeparatedWellFormed);
    s1.fetch("c-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_EQ(m1.ctx().stats().value("snapshot.image_remote_fetches"),
              1);

    // Same-generation publishes from different machines (each machine
    // announcing its own build) must NOT invalidate anything.
    s1.fetch("c-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_EQ(m1.ctx().stats().value("image.fetch.stale_drops"), 0);

    // Rebuild on machine 0: a new generation under the same key.
    auto &artifacts = f0.artifactsFor(apps::appByName("c-hello"));
    const auto old_generation = artifacts.separatedImage->generation();
    artifacts.separatedImage.reset();
    auto rebuilt = buildImage(f0, "c-hello");
    ASSERT_NE(rebuilt->generation(), old_generation);
    s0.publish(rebuilt);

    // Machine 1's cached copy is now stale: the next fetch drops it
    // and pays the transfer again.
    s1.fetch("c-hello", ImageFormat::SeparatedWellFormed);
    EXPECT_EQ(m1.ctx().stats().value("image.fetch.stale_drops"), 1);
    EXPECT_EQ(m1.ctx().stats().value("snapshot.image_remote_fetches"),
              2);
}

TEST(ImageStoreTest, CorruptManifestDropsBeforeRepublish)
{
    // A corrupted working-set manifest must be dropped on the failed
    // read (so the next trace records fresh) and a republish must fully
    // restore fetchability — the drop/republish order cannot leave a
    // stale blob behind.
    Machine machine(13);
    ImageStore store(machine.ctx());
    faults::FaultConfig config;
    config.rate(faults::FaultSite::ManifestCorruption) = 1.0;
    faults::FaultInjector injector(config, &machine.ctx().clock());
    store.setFaultInjector(&injector);

    prefetch::WorkingSetManifest manifest("c-hello", 1, 4, 0.5);
    store.publishManifest(manifest);
    EXPECT_TRUE(store.hasManifest("c-hello"));
    EXPECT_EQ(store.fetchManifest("c-hello"), nullptr);
    // Dropped on the corrupted read, before any republish.
    EXPECT_FALSE(store.hasManifest("c-hello"));
    EXPECT_EQ(machine.ctx().stats().value(
                  "snapshot.manifests_corrupted"), 1);

    // Republish under a new image generation; with the fault cleared
    // the fresh blob must parse.
    store.setFaultInjector(nullptr);
    prefetch::WorkingSetManifest fresh("c-hello", 2, 4, 0.5);
    store.publishManifest(fresh);
    auto fetched = store.fetchManifest("c-hello");
    ASSERT_NE(fetched, nullptr);
    EXPECT_EQ(fetched->imageGeneration(), 2u);
}

} // namespace
} // namespace catalyzer::snapshot
