/**
 * @file
 * Tests for the fleet traffic engine (src/load/): arrival generators,
 * population synthesis, the fleet replay driver and the autoscaler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "load/arrival.h"
#include "load/driver.h"
#include "load/traffic.h"
#include "platform/workload.h"

namespace catalyzer::load {
namespace {

using namespace sim::time_literals;

//
// Arrival generators.
//

TEST(ArrivalTest, PoissonMatchesManualExponentialAccumulation)
{
    // The shared generator must keep WorkloadDriver's exact schedule:
    // t += exponential(1/rate) on one Rng, times in order.
    sim::Rng rng(99);
    std::vector<double> times;
    appendPoissonTimes(rng, 25.0, 10.0, times);

    sim::Rng manual(99);
    std::vector<double> expect;
    for (double t = manual.exponential(1.0 / 25.0); t < 10.0;
         t += manual.exponential(1.0 / 25.0))
        expect.push_back(t);
    ASSERT_EQ(times.size(), expect.size());
    for (std::size_t i = 0; i < times.size(); ++i)
        EXPECT_DOUBLE_EQ(times[i], expect[i]);
}

TEST(ArrivalTest, PoissonArrivalsDeterministicAndTagged)
{
    sim::Rng a(7), b(7);
    std::vector<Arrival> first, second;
    appendPoissonArrivals(a, 40.0, 5.0, "fn", first);
    appendPoissonArrivals(b, 40.0, 5.0, "fn", second);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_GT(first.size(), 0u);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_DOUBLE_EQ(first[i].atSec, second[i].atSec);
        EXPECT_EQ(first[i].function, "fn");
    }
}

TEST(ArrivalTest, MmppHitsConfiguredMeanRate)
{
    // 1 s bursts, 9 s gaps, 10% of the volume served between bursts.
    const auto params = MmppParams::withMeanRate(10.0, 1.0, 9.0);
    EXPECT_NEAR(params.meanRate(), 10.0, 1e-9);
    // Bursty by construction: the on-rate well above the mean.
    EXPECT_GT(params.onRate, 2.0 * params.meanRate());

    sim::Rng rng(11);
    std::vector<double> times;
    appendMmppTimes(rng, params, 2000.0, times);
    const double empirical = static_cast<double>(times.size()) / 2000.0;
    EXPECT_NEAR(empirical, 10.0, 1.5);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GE(times[i], times[i - 1]);
}

TEST(ArrivalTest, MmppZeroDwellsProduceNothing)
{
    // Degenerate dwell times must not hang the generator.
    MmppParams params;
    params.onRate = 50.0;
    params.offRate = 0.0;
    params.meanOnSec = 0.0;
    params.meanOffSec = 0.0;
    sim::Rng rng(1);
    std::vector<double> times;
    appendMmppTimes(rng, params, 10.0, times);
    EXPECT_TRUE(times.empty());
}

TEST(ArrivalTest, DiurnalIntegratesToBaseRateOverFullPeriods)
{
    DiurnalCurve curve;
    curve.baseRate = 20.0;
    curve.amplitude = 0.8;
    curve.periodSec = 10.0;
    curve.phase = 0.0;

    sim::Rng rng(5);
    std::vector<double> times;
    appendDiurnalTimes(rng, curve, 100.0, times); // 10 full periods
    const double empirical = static_cast<double>(times.size()) / 100.0;
    EXPECT_NEAR(empirical, 20.0, 3.0);

    // The curve must actually modulate: the half-periods around the
    // peak carry visibly more arrivals than the troughs.
    std::size_t peak = 0, trough = 0;
    for (double t : times) {
        const double phase = t - 10.0 * std::floor(t / 10.0);
        (phase < 5.0 ? peak : trough)++;
    }
    EXPECT_GT(static_cast<double>(peak),
              1.5 * static_cast<double>(trough));
}

//
// Workload zipf shuffle (satellite of the shared-generator refactor).
//

TEST(WorkloadZipfTest, ShuffleSeedPermutesRanksDeterministically)
{
    const std::vector<std::string> fns = {"a", "b", "c", "d", "e", "f"};
    const auto plain = platform::WorkloadSpec::zipf(fns, 60.0);
    const auto shuffled = platform::WorkloadSpec::zipf(fns, 60.0, 1.0, 9);
    const auto shuffled2 = platform::WorkloadSpec::zipf(fns, 60.0, 1.0, 9);

    double plain_total = 0.0, shuffled_total = 0.0;
    for (std::size_t i = 0; i < fns.size(); ++i) {
        plain_total += plain.mix[i].requestsPerSecond;
        shuffled_total += shuffled.mix[i].requestsPerSecond;
        EXPECT_DOUBLE_EQ(shuffled.mix[i].requestsPerSecond,
                         shuffled2.mix[i].requestsPerSecond);
    }
    EXPECT_NEAR(plain_total, 60.0, 1e-9);
    EXPECT_NEAR(shuffled_total, 60.0, 1e-9);

    // Same share multiset, different assignment for this seed.
    bool any_moved = false;
    for (std::size_t i = 0; i < fns.size(); ++i)
        any_moved |= plain.mix[i].requestsPerSecond !=
                     shuffled.mix[i].requestsPerSecond;
    EXPECT_TRUE(any_moved);
}

//
// Population + merged stream.
//

TEST(PopulationTest, ZipfSharesSumToTotalAndNamesAreTenantScoped)
{
    PopulationSpec spec;
    spec.functions = 50;
    spec.tenants = 5;
    spec.totalRps = 500.0;
    const Population pop(spec);

    double total = 0.0;
    for (const FleetFunction &fn : pop.functions()) {
        total += fn.baseRps;
        EXPECT_EQ(fn.name.rfind(Population::tenantName(fn.tenant) + "/",
                                0),
                  0u);
        EXPECT_LT(fn.rank, spec.functions);
    }
    EXPECT_NEAR(total, 500.0, 1e-6);
}

TEST(TrafficTest, FleetStreamDeterministicSortedAndInRange)
{
    PopulationSpec pspec;
    pspec.functions = 40;
    pspec.tenants = 4;
    pspec.totalRps = 200.0;
    const Population pop(pspec);

    TrafficSpec traffic;
    traffic.scenario = Scenario::Steady;
    traffic.durationSec = 5.0;
    traffic.seed = 21;

    const auto first = generateFleetStream(pop, traffic);
    const auto second = generateFleetStream(pop, traffic);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_GT(first.size(), 500u);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_DOUBLE_EQ(first[i].atSec, second[i].atSec);
        EXPECT_EQ(first[i].fn, second[i].fn);
        EXPECT_LT(first[i].fn, pop.size());
        EXPECT_GE(first[i].atSec, 0.0);
        EXPECT_LT(first[i].atSec, traffic.durationSec);
        if (i > 0) {
            EXPECT_GE(first[i].atSec, first[i - 1].atSec);
        }
    }
}

TEST(TrafficTest, FlashCrowdLightsUpTheColdestRanks)
{
    PopulationSpec pspec;
    pspec.functions = 40;
    pspec.tenants = 4;
    pspec.totalRps = 100.0;
    const Population pop(pspec);

    TrafficSpec traffic;
    traffic.scenario = Scenario::FlashCrowd;
    traffic.durationSec = 10.0;
    traffic.flashAtSec = 5.0;
    traffic.flashRampSec = 1.0;
    traffic.flashHoldSec = 2.0;
    traffic.flashFunctions = 8;
    traffic.flashRpsPerFunction = 20.0;

    const auto stream = generateFleetStream(pop, traffic);
    std::size_t flash_hits = 0;
    for (const FleetArrival &arrival : stream) {
        const FleetFunction &fn = pop.fn(arrival.fn);
        const bool coldest = fn.rank + traffic.flashFunctions >=
                             pspec.functions;
        if (coldest && arrival.atSec >= traffic.flashAtSec)
            ++flash_hits;
    }
    // 8 functions x 20 rps over the ~3s flash envelope.
    EXPECT_GT(flash_hits, 200u);
}

//
// Fleet driver + autoscaler on a real (small) cluster.
//

platform::Cluster
makeCluster(std::size_t machines)
{
    platform::PlatformConfig pconf;
    pconf.strategy = platform::BootStrategy::CatalyzerAuto;
    pconf.reuseIdleInstances = true;
    return platform::Cluster(machines,
                             platform::PlacementPolicy::RoundRobin,
                             pconf);
}

Population
makePopulation(std::size_t functions, double rps)
{
    PopulationSpec spec;
    spec.functions = functions;
    spec.tenants = 3;
    spec.totalRps = rps;
    return Population(spec);
}

TEST(FleetDriverTest, ReplayIsDeterministicAcrossFreshClusters)
{
    const Population pop = makePopulation(10, 40.0);
    TrafficSpec traffic;
    traffic.durationSec = 3.0;
    FleetRunConfig config;
    config.policy.keepAliveTtl = 500_ms;
    config.policy.reactiveRebalance = false;

    platform::Cluster a = makeCluster(2);
    platform::Cluster b = makeCluster(2);
    const FleetReport ra = FleetDriver(a, pop).run(traffic, config);
    const FleetReport rb = FleetDriver(b, pop).run(traffic, config);

    EXPECT_GT(ra.requests, 0u);
    EXPECT_EQ(ra.requests, rb.requests);
    EXPECT_EQ(ra.boots, rb.boots);
    EXPECT_EQ(ra.reuses, rb.reuses);
    EXPECT_EQ(ra.expired, rb.expired);
    EXPECT_EQ(ra.tierCounts, rb.tierCounts);
    EXPECT_DOUBLE_EQ(ra.endToEnd.percentile(99),
                     rb.endToEnd.percentile(99));
    EXPECT_DOUBLE_EQ(ra.machineSeconds, rb.machineSeconds);
}

TEST(FleetDriverTest, AccountingInvariantsAndKeepAliveExpiry)
{
    const Population pop = makePopulation(12, 30.0);
    TrafficSpec traffic;
    traffic.durationSec = 4.0;
    FleetRunConfig config;
    config.policy.keepAliveTtl = 200_ms; // thin tail traffic expires
    config.policy.reactiveRebalance = false;

    platform::Cluster cluster = makeCluster(2);
    const FleetReport report =
        FleetDriver(cluster, pop).run(traffic, config);

    EXPECT_EQ(report.boots + report.reuses, report.requests);
    EXPECT_EQ(report.endToEnd.count(), report.requests);
    EXPECT_EQ(report.e2eMsWindows.totalCount(), report.requests);
    EXPECT_GT(report.expired, 0u);
    std::size_t tier_total = 0, tenant_total = 0;
    for (const auto &[tier, count] : report.tierCounts)
        tier_total += count;
    for (const auto &[tenant, count] : report.tenantRequests)
        tenant_total += count;
    EXPECT_EQ(tier_total, report.requests);
    EXPECT_EQ(tenant_total, report.requests);
    // Both machines ran through the whole nominal window.
    EXPECT_GE(report.machineSeconds, 2.0 * traffic.durationSec - 1e-6);
    EXPECT_GT(report.avgResidentMiB, 0.0);
    EXPECT_GE(report.peakResidentMiB, report.avgResidentMiB);
}

TEST(FleetDriverTest, PureKeepAliveNeverForksButAutoscalerDoes)
{
    const Population pop = makePopulation(8, 60.0);
    TrafficSpec traffic;
    traffic.durationSec = 3.0;

    FleetRunConfig keepalive;
    keepalive.policy.keepAliveTtl = 200_ms;
    keepalive.policy.reactiveRebalance = false;
    keepalive.policy.predictivePrewarm = false;
    platform::Cluster ka = makeCluster(2);
    const FleetReport ka_report =
        FleetDriver(ka, pop).run(traffic, keepalive);
    EXPECT_EQ(ka_report.tierCounts.count("sfork"), 0u);
    EXPECT_EQ(ka_report.tierCounts.count("remote-sfork"), 0u);
    EXPECT_EQ(ka_report.policy.rebalanceActions, 0u);
    EXPECT_EQ(ka_report.policy.prewarmBuilds, 0u);

    // Short TTL: mid-rank functions miss keep-alive between hits, so
    // their boots exercise the templates the autoscaler builds.
    FleetRunConfig prewarm;
    prewarm.policy.keepAliveTtl = 200_ms;
    prewarm.policy.reactiveRebalance = true;
    prewarm.policy.predictivePrewarm = true;
    prewarm.policy.prewarmRateRps = 2.0;
    platform::Cluster pw = makeCluster(2);
    const FleetReport pw_report =
        FleetDriver(pw, pop).run(traffic, prewarm);
    EXPECT_GT(pw_report.policy.prewarmBuilds, 0u);
    EXPECT_GT(pw_report.tierCounts.count("sfork") +
                  pw_report.tierCounts.count("remote-sfork"),
              0u);
}

TEST(FleetAutoscalerTest, PrewarmTriggersOnEwmaAndCountsFalsePositives)
{
    const Population pop = makePopulation(6, 10.0);
    platform::Cluster cluster = makeCluster(2);

    FleetPolicyConfig config;
    config.predictivePrewarm = true;
    config.prewarmRateRps = 4.0;
    config.ewmaAlpha = 1.0; // react on the first tick
    config.reactiveRebalance = false;
    config.keepAliveTtl = sim::SimTime::zero();
    FleetAutoscaler scaler(cluster, pop, config);

    // 10 arrivals of function 0 on machine 0 inside one 500 ms tick:
    // EWMA jumps to 20 req/s, well past the 4 req/s trigger.
    for (int i = 0; i < 10; ++i)
        scaler.observeArrival(0, 0);
    scaler.tick(500_ms);

    EXPECT_EQ(scaler.counters().prewarmTriggers, 1u);
    EXPECT_EQ(scaler.counters().prewarmBuilds, 1u);
    EXPECT_NEAR(scaler.ewmaRps(0), 20.0, 1e-9);
    EXPECT_NE(cluster.platform(0).catalyzer().templateFor(
                  pop.fn(0).name),
              nullptr);
    // The build was published to the cluster's template directory, so
    // placement can route to the holder before the first serve.
    EXPECT_FALSE(cluster.registry().templateHolders(pop.fn(0).name)
                     .empty());

    // The burst never materializes and no sfork is ever served: the
    // end-of-run sweep books the build as a false positive.
    scaler.finalize();
    EXPECT_EQ(scaler.counters().prewarmFalsePositives, 1u);
}

TEST(FleetAutoscalerTest, ServedSforkIsNotAFalsePositive)
{
    const Population pop = makePopulation(6, 10.0);
    platform::Cluster cluster = makeCluster(2);

    FleetPolicyConfig config;
    config.predictivePrewarm = true;
    config.prewarmRateRps = 4.0;
    config.ewmaAlpha = 1.0;
    config.reactiveRebalance = false;
    config.keepAliveTtl = sim::SimTime::zero();
    FleetAutoscaler scaler(cluster, pop, config);

    for (int i = 0; i < 10; ++i)
        scaler.observeArrival(0, 0);
    scaler.tick(500_ms);
    ASSERT_EQ(scaler.counters().prewarmBuilds, 1u);

    // The predicted burst arrives and forks from the template.
    const platform::ClusterInvocation done =
        cluster.invokeOn(0, pop.fn(0).name);
    EXPECT_EQ(done.record.tierServed, "sfork");
    scaler.afterInvoke(0, 0, done.record);
    EXPECT_EQ(scaler.counters().prewarmServedSforks, 1u);

    scaler.finalize();
    EXPECT_EQ(scaler.counters().prewarmFalsePositives, 0u);
}

//
// Parallel replay determinism: the worker-thread count must never
// change a report or a trace, byte for byte.
//

struct FleetRun
{
    std::string reportJson;
    std::string fleetTrace;
};

FleetRun
runShareNothingFleet(int threads)
{
    const Population pop = makePopulation(14, 60.0);
    TrafficSpec traffic;
    traffic.scenario = Scenario::FlashCrowd;
    traffic.durationSec = 4.0;
    traffic.flashAtSec = 2.0;
    traffic.flashRampSec = 0.5;
    traffic.flashHoldSec = 1.0;
    traffic.flashFunctions = 4;
    traffic.flashRpsPerFunction = 15.0;
    FleetRunConfig config;
    config.policy.keepAliveTtl = 300_ms;
    config.policy.reactiveRebalance = true;
    config.policy.predictivePrewarm = true;
    config.policy.prewarmRateRps = 2.0;
    config.simThreads = threads;

    platform::Cluster cluster = makeCluster(4);
    EXPECT_TRUE(cluster.shareNothing());
    const FleetReport report =
        FleetDriver(cluster, pop).run(traffic, config);
    EXPECT_GT(report.requests, 0u);

    FleetRun out;
    std::ostringstream rep, trace;
    report.writeJson(rep);
    cluster.exportFleetTrace(trace);
    out.reportJson = rep.str();
    out.fleetTrace = trace.str();
    return out;
}

TEST(FleetDriverTest, ThreadCountDoesNotChangeReportOrTrace)
{
    const FleetRun one = runShareNothingFleet(1);
    const FleetRun two = runShareNothingFleet(2);
    const FleetRun eight = runShareNothingFleet(8);
    // Byte-identical across 1, 2 and 8 workers: routing and report
    // folds run in stream order off the workers, per-machine serving
    // is share-nothing, and trace ids are pinned to tape positions.
    EXPECT_EQ(one.reportJson, two.reportJson);
    EXPECT_EQ(one.reportJson, eight.reportJson);
    EXPECT_EQ(one.fleetTrace, two.fleetTrace);
    EXPECT_EQ(one.fleetTrace, eight.fleetTrace);
}

TEST(FleetDriverTest, CoupledFleetIsDeterministicForAnyThreadCount)
{
    // remote-sfork couples machines mid-boot, so the driver must
    // refuse to fan out and replay sequentially whatever simThreads
    // says — same tape, same bytes.
    auto run = [](int threads) {
        const Population pop = makePopulation(10, 50.0);
        TrafficSpec traffic;
        traffic.durationSec = 3.0;
        FleetRunConfig config;
        config.policy.keepAliveTtl = 300_ms;
        config.simThreads = threads;

        net::FabricConfig fabric;
        fabric.modelTransfers = true;
        fabric.remoteFork = true;
        platform::PlatformConfig pconf;
        pconf.strategy = platform::BootStrategy::CatalyzerAuto;
        pconf.reuseIdleInstances = true;
        platform::Cluster cluster(
            2, platform::PlacementPolicy::NetworkAware, pconf, {},
            sim::CostModel{}, 42, fabric);
        EXPECT_FALSE(cluster.shareNothing());
        const FleetReport report =
            FleetDriver(cluster, pop).run(traffic, config);
        std::ostringstream rep, trace;
        report.writeJson(rep);
        cluster.exportFleetTrace(trace);
        return rep.str() + trace.str();
    };
    EXPECT_EQ(run(1), run(8));
}

TEST(FleetDriverTest, SimThreadsZeroReadsEnvironmentKnob)
{
    // The default (0) resolves through CATALYZER_SIM_THREADS and must
    // match an explicit thread count bit for bit.
    ::setenv("CATALYZER_SIM_THREADS", "3", 1);
    const FleetRun env_run = runShareNothingFleet(0);
    ::unsetenv("CATALYZER_SIM_THREADS");
    const FleetRun explicit_run = runShareNothingFleet(3);
    EXPECT_EQ(env_run.reportJson, explicit_run.reportJson);
    EXPECT_EQ(env_run.fleetTrace, explicit_run.fleetTrace);
}

} // namespace
} // namespace catalyzer::load
