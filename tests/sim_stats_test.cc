/**
 * @file
 * Unit tests for counters, latency series and table rendering.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/stats.h"
#include "sim/table.h"

namespace catalyzer::sim {
namespace {

using namespace time_literals;

TEST(StatRegistryTest, IncrementAndRead)
{
    StatRegistry stats;
    EXPECT_EQ(stats.value("x"), 0);
    stats.incr("x");
    stats.incr("x", 4);
    EXPECT_EQ(stats.value("x"), 5);
    stats.incr("y", -2);
    EXPECT_EQ(stats.value("y"), -2);
    EXPECT_EQ(stats.all().size(), 2u);
    stats.clear();
    EXPECT_EQ(stats.value("x"), 0);
}

TEST(LatencySeriesTest, BasicStatistics)
{
    LatencySeries s;
    for (double v : {4.0, 1.0, 3.0, 2.0})
        s.addMs(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(LatencySeriesTest, AddSimTime)
{
    LatencySeries s;
    s.add(2_ms);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(LatencySeriesTest, Percentiles)
{
    LatencySeries s;
    for (int i = 1; i <= 100; ++i)
        s.addMs(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(LatencySeriesTest, PercentileEdgeCases)
{
    LatencySeries s;
    EXPECT_TRUE(std::isnan(s.percentile(50))); // empty
    s.addMs(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 7.0); // single sample
    EXPECT_DEATH(s.percentile(101), "out of range");
}

TEST(LatencySeriesTest, EmptySeriesStatisticsAreNaN)
{
    LatencySeries s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(std::isnan(s.mean()));
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    EXPECT_TRUE(std::isnan(s.percentile(0)));
    EXPECT_TRUE(std::isnan(s.percentile(100)));
    // Out-of-range percentiles still panic, even on an empty series.
    EXPECT_DEATH(s.percentile(-1), "out of range");
    // The CDF follows the same convention as the point statistics:
    // an empty sample has no distribution to evaluate, so NaN, not 0.
    EXPECT_TRUE(std::isnan(s.cdfAt(1.0)));
    EXPECT_TRUE(std::isnan(s.cdfAt(0.0)));
}

TEST(LatencySeriesTest, SortedCacheInvalidatedByMutation)
{
    // Regression test for the percentile sorted-cache: queries after
    // further adds (or a clear) must see the new samples, not a stale
    // sorted snapshot.
    LatencySeries s;
    s.addMs(10.0);
    s.addMs(20.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 20.0); // populates the cache
    EXPECT_DOUBLE_EQ(s.cdfAt(5.0), 0.0);
    s.addMs(1.0); // mutation must invalidate the cache
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
    EXPECT_DOUBLE_EQ(s.cdfAt(5.0), 1.0 / 3.0);
    ASSERT_EQ(s.sorted().size(), 3u);
    EXPECT_DOUBLE_EQ(s.sorted().front(), 1.0);
    s.clear();
    EXPECT_TRUE(std::isnan(s.percentile(50)));
    s.add(2_ms); // add(SimTime) must invalidate too
    EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
    // Repeated queries on an unchanged series stay consistent.
    for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(s.percentile(100), 2.0);
}

TEST(StatRegistryTest, HistogramsObserveAndSnapshot)
{
    StatRegistry stats;
    EXPECT_EQ(stats.findHistogram("boot"), nullptr);
    stats.observe("boot", 2_ms);
    stats.observeMs("boot", 4.0);
    const LatencySeries *h = stats.findHistogram("boot");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_DOUBLE_EQ(h->mean(), 3.0);
    stats.clear();
    EXPECT_EQ(stats.findHistogram("boot"), nullptr);
}

TEST(StatRegistryTest, WriteJsonShape)
{
    StatRegistry stats;
    stats.incr("boots", 3);
    stats.observeMs("lat", 1.0);
    stats.observeMs("lat", 3.0);
    std::ostringstream os;
    stats.writeJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"counters\""), std::string::npos);
    EXPECT_NE(out.find("\"boots\": 3"), std::string::npos);
    EXPECT_NE(out.find("\"histograms\""), std::string::npos);
    EXPECT_NE(out.find("\"lat\""), std::string::npos);
    EXPECT_NE(out.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"p50\""), std::string::npos);
    EXPECT_NE(out.find("\"p99\""), std::string::npos);
    // NaN must never leak into the JSON output.
    EXPECT_EQ(out.find("nan"), std::string::npos);
}

TEST(StatRegistryTest, WriteJsonEscapesNames)
{
    // Regression: metric names flow from function names and fault-site
    // labels; a quote or backslash in one must not corrupt the JSON.
    StatRegistry stats;
    stats.incr("boots\"evil", 1);
    stats.observeMs("lat\\slash\nline", 2.0);
    std::ostringstream os;
    stats.writeJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"boots\\\"evil\": 1"), std::string::npos);
    EXPECT_NE(out.find("\"lat\\\\slash\\nline\""), std::string::npos);
    // No raw quote survives inside a name.
    EXPECT_EQ(out.find("boots\"evil"), std::string::npos);
}

TEST(WindowedHistogramTest, BucketsByVirtualTime)
{
    WindowedHistogram h(SimTime::milliseconds(100.0));
    h.record(SimTime::milliseconds(10.0), 1.0);  // window 0
    h.record(SimTime::milliseconds(99.0), 3.0);  // window 0
    h.record(SimTime::milliseconds(100.0), 5.0); // window 1
    h.record(SimTime::milliseconds(350.0), 7.0); // window 3 (gap at 2)
    EXPECT_EQ(h.totalCount(), 4u);
    const auto &ws = h.windows();
    ASSERT_EQ(ws.size(), 3u); // sparse: empty window 2 absent
    EXPECT_EQ(ws[0].index, 0);
    EXPECT_EQ(ws[0].series.count(), 2u);
    EXPECT_DOUBLE_EQ(ws[0].sum, 4.0);
    EXPECT_EQ(ws[1].index, 1);
    EXPECT_EQ(ws[2].index, 3);
    EXPECT_EQ(h.windowStart(3), SimTime::milliseconds(300.0));
}

TEST(WindowedHistogramTest, OutOfOrderRecordsLandInTheirWindow)
{
    WindowedHistogram h(SimTime::milliseconds(100.0));
    h.record(SimTime::milliseconds(250.0), 9.0); // window 2 first
    h.record(SimTime::milliseconds(50.0), 1.0);  // then window 0
    const auto &ws = h.windows();
    ASSERT_EQ(ws.size(), 2u);
    EXPECT_EQ(ws[0].index, 0); // windows() is sorted by index
    EXPECT_EQ(ws[1].index, 2);
    EXPECT_DOUBLE_EQ(ws[0].series.max(), 1.0);
}

TEST(WindowedHistogramTest, MergeFoldsPerWindow)
{
    WindowedHistogram a(SimTime::milliseconds(100.0));
    WindowedHistogram b(SimTime::milliseconds(100.0));
    a.record(SimTime::milliseconds(10.0), 1.0);
    b.record(SimTime::milliseconds(20.0), 3.0);  // same window 0
    b.record(SimTime::milliseconds(150.0), 5.0); // window 1
    a.merge(b);
    EXPECT_EQ(a.totalCount(), 3u);
    const auto &ws = a.windows();
    ASSERT_EQ(ws.size(), 2u);
    EXPECT_EQ(ws[0].series.count(), 2u);
    EXPECT_DOUBLE_EQ(ws[0].sum, 4.0);
    EXPECT_EQ(ws[1].series.count(), 1u);

    // An empty histogram adopts the source's window length on merge.
    WindowedHistogram fresh(SimTime::milliseconds(250.0));
    fresh.merge(a);
    EXPECT_EQ(fresh.windowLength(), SimTime::milliseconds(100.0));
    EXPECT_EQ(fresh.totalCount(), 3u);

    // A populated one with a different length refuses.
    WindowedHistogram clash(SimTime::milliseconds(250.0));
    clash.record(SimTime::milliseconds(1.0), 1.0);
    EXPECT_DEATH(clash.merge(a), "window length");
}

TEST(WindowedHistogramTest, OriginMakesWindowsRunRelative)
{
    // Two machines whose clocks diverged during priming: with origins
    // declared at each machine's run start, the same run-relative
    // instant lands in the same window index on both.
    WindowedHistogram m0(SimTime::milliseconds(100.0));
    WindowedHistogram m1(SimTime::milliseconds(100.0));
    m0.setOrigin(SimTime::milliseconds(730.0));
    m1.setOrigin(SimTime::milliseconds(112.0));
    EXPECT_TRUE(m0.originAligned());
    m0.record(SimTime::milliseconds(730.0 + 150.0), 1.0);
    m1.record(SimTime::milliseconds(112.0 + 150.0), 2.0);
    m0.merge(m1);
    const auto &ws = m0.windows();
    ASSERT_EQ(ws.size(), 1u);
    EXPECT_EQ(ws[0].index, 1);
    EXPECT_EQ(ws[0].series.count(), 2u);
}

TEST(WindowedHistogramDeathTest, OriginMisuse)
{
    // Mixing an aligned series with an unaligned one would silently
    // misalign every window: refuse.
    WindowedHistogram aligned(SimTime::milliseconds(100.0));
    aligned.setOrigin(SimTime::milliseconds(500.0));
    aligned.record(SimTime::milliseconds(510.0), 1.0);
    WindowedHistogram unaligned(SimTime::milliseconds(100.0));
    unaligned.record(SimTime::milliseconds(10.0), 1.0);
    EXPECT_DEATH(aligned.merge(unaligned), "unaligned");
    EXPECT_DEATH(unaligned.merge(aligned), "unaligned");

    // Declaring an origin under recorded samples would reinterpret
    // their indices.
    WindowedHistogram late(SimTime::milliseconds(100.0));
    late.record(SimTime::milliseconds(10.0), 1.0);
    EXPECT_DEATH(late.setOrigin(SimTime::milliseconds(5.0)),
                 "already recorded");

    // Samples from before the declared origin have no window.
    WindowedHistogram fresh(SimTime::milliseconds(100.0));
    fresh.setOrigin(SimTime::milliseconds(500.0));
    EXPECT_DEATH(fresh.record(SimTime::milliseconds(499.0), 1.0),
                 "predates");
}

TEST(WindowedHistogramTest, EmptyDestinationAdoptsAlignment)
{
    WindowedHistogram aligned(SimTime::milliseconds(100.0));
    aligned.setOrigin(SimTime::milliseconds(500.0));
    aligned.record(SimTime::milliseconds(510.0), 1.0);
    // A fleet-aggregation destination starts fresh and unaligned; the
    // first aligned source switches it over wholesale.
    WindowedHistogram fleet;
    fleet.merge(aligned);
    EXPECT_TRUE(fleet.originAligned());
    EXPECT_EQ(fleet.totalCount(), 1u);
    // An explicitly aligned (still empty) destination does NOT adopt
    // unaligned semantics from its source.
    WindowedHistogram pinned(SimTime::milliseconds(100.0));
    pinned.setOrigin(SimTime::zero());
    WindowedHistogram unaligned(SimTime::milliseconds(100.0));
    unaligned.record(SimTime::milliseconds(10.0), 1.0);
    EXPECT_DEATH(pinned.merge(unaligned), "unaligned");
}

TEST(StatRegistryTest, WindowOriginAppliesToNewSeriesAndDropsOld)
{
    StatRegistry stats;
    stats.setWindowLength(SimTime::milliseconds(100.0));
    // Priming samples land before the measurement frame opens...
    stats.observeWindowed("w", SimTime::milliseconds(50.0), 1.0);
    EXPECT_FALSE(stats.windowOriginAligned());
    // ...and are dropped when the origin is declared: the origin marks
    // the start of the measurement frame.
    stats.setWindowOrigin(SimTime::milliseconds(300.0));
    EXPECT_TRUE(stats.windowOriginAligned());
    EXPECT_EQ(stats.findWindowed("w"), nullptr);
    stats.observeWindowed("w", SimTime::milliseconds(450.0), 2.0);
    const WindowedHistogram *w = stats.findWindowed("w");
    ASSERT_NE(w, nullptr);
    EXPECT_TRUE(w->originAligned());
    ASSERT_EQ(w->windows().size(), 1u);
    EXPECT_EQ(w->windows()[0].index, 1); // (450 - 300) / 100
}

TEST(StatRegistryTest, WindowedSeriesAndTimeSeriesJson)
{
    StatRegistry stats;
    stats.setWindowLength(SimTime::milliseconds(50.0));
    EXPECT_EQ(stats.findWindowed("w"), nullptr);
    stats.observeWindowed("w", SimTime::milliseconds(10.0), 2.0);
    stats.observeWindowed("w", SimTime::milliseconds(60.0), 4.0);
    stats.observeWindowed("quote\"w", SimTime::zero(), 1.0);
    const WindowedHistogram *w = stats.findWindowed("w");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->windowLength(), SimTime::milliseconds(50.0));
    EXPECT_EQ(w->totalCount(), 2u);

    // writeJson stays windowed-free: the legacy metrics JSON is
    // byte-identical whether or not windowed series exist.
    std::ostringstream legacy;
    stats.writeJson(legacy);
    EXPECT_EQ(legacy.str().find("\"w\""), std::string::npos);

    std::ostringstream os;
    stats.writeTimeSeriesJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"default_window_ms\": 50"), std::string::npos);
    EXPECT_NE(out.find("\"series\""), std::string::npos);
    EXPECT_NE(out.find("\"window_ms\""), std::string::npos);
    EXPECT_NE(out.find("\"start_ms\": 50"), std::string::npos);
    EXPECT_NE(out.find("\"p99\""), std::string::npos);
    EXPECT_NE(out.find("\"quote\\\"w\""), std::string::npos);
    EXPECT_EQ(out.find("nan"), std::string::npos);

    stats.clear();
    EXPECT_EQ(stats.findWindowed("w"), nullptr);
}

TEST(LatencySeriesTest, Cdf)
{
    LatencySeries s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.addMs(v);
    EXPECT_DOUBLE_EQ(s.cdfAt(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.cdfAt(2.0), 0.5);
    EXPECT_DOUBLE_EQ(s.cdfAt(10.0), 1.0);
}

TEST(TableFormatTest, FmtHelpers)
{
    EXPECT_EQ(fmtMs(123.456), "123.5");
    EXPECT_EQ(fmtMs(12.345), "12.35");
    EXPECT_EQ(fmtMs(0.97), "0.970");
    EXPECT_EQ(fmtBytes(512), "512B");
    EXPECT_EQ(fmtBytes(2048), "2.0KB");
    EXPECT_EQ(fmtBytes(3.5 * 1024 * 1024), "3.5MB");
    EXPECT_EQ(fmtSpeedup(35.21), "35.2x");
}

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable table("Demo");
    table.setHeader({"name", "ms"});
    table.addRow({"alpha", "1.0"});
    table.addSeparator();
    table.addRow({"b", "20.5"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("20.5"), std::string::npos);
}

TEST(TextTableTest, ArityMismatchPanics)
{
    TextTable table;
    table.setHeader({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "cells");
}

TEST(CdfPrintTest, EmitsMonotoneFractions)
{
    std::ostringstream os;
    printCdf(os, "test", {1.0, 2.0, 4.0});
    const std::string out = os.str();
    EXPECT_NE(out.find("n=3"), std::string::npos);
    EXPECT_NE(out.find("1.0000"), std::string::npos);
}

} // namespace
} // namespace catalyzer::sim
