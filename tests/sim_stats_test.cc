/**
 * @file
 * Unit tests for counters, latency series and table rendering.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/stats.h"
#include "sim/table.h"

namespace catalyzer::sim {
namespace {

using namespace time_literals;

TEST(StatRegistryTest, IncrementAndRead)
{
    StatRegistry stats;
    EXPECT_EQ(stats.value("x"), 0);
    stats.incr("x");
    stats.incr("x", 4);
    EXPECT_EQ(stats.value("x"), 5);
    stats.incr("y", -2);
    EXPECT_EQ(stats.value("y"), -2);
    EXPECT_EQ(stats.all().size(), 2u);
    stats.clear();
    EXPECT_EQ(stats.value("x"), 0);
}

TEST(LatencySeriesTest, BasicStatistics)
{
    LatencySeries s;
    for (double v : {4.0, 1.0, 3.0, 2.0})
        s.addMs(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(LatencySeriesTest, AddSimTime)
{
    LatencySeries s;
    s.add(2_ms);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(LatencySeriesTest, Percentiles)
{
    LatencySeries s;
    for (int i = 1; i <= 100; ++i)
        s.addMs(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(LatencySeriesTest, PercentileEdgeCases)
{
    LatencySeries s;
    EXPECT_TRUE(std::isnan(s.percentile(50))); // empty
    s.addMs(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 7.0); // single sample
    EXPECT_DEATH(s.percentile(101), "out of range");
}

TEST(LatencySeriesTest, EmptySeriesStatisticsAreNaN)
{
    LatencySeries s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(std::isnan(s.mean()));
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    EXPECT_TRUE(std::isnan(s.percentile(0)));
    EXPECT_TRUE(std::isnan(s.percentile(100)));
    // Out-of-range percentiles still panic, even on an empty series.
    EXPECT_DEATH(s.percentile(-1), "out of range");
    // The CDF follows the same convention as the point statistics:
    // an empty sample has no distribution to evaluate, so NaN, not 0.
    EXPECT_TRUE(std::isnan(s.cdfAt(1.0)));
    EXPECT_TRUE(std::isnan(s.cdfAt(0.0)));
}

TEST(LatencySeriesTest, SortedCacheInvalidatedByMutation)
{
    // Regression test for the percentile sorted-cache: queries after
    // further adds (or a clear) must see the new samples, not a stale
    // sorted snapshot.
    LatencySeries s;
    s.addMs(10.0);
    s.addMs(20.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 20.0); // populates the cache
    EXPECT_DOUBLE_EQ(s.cdfAt(5.0), 0.0);
    s.addMs(1.0); // mutation must invalidate the cache
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
    EXPECT_DOUBLE_EQ(s.cdfAt(5.0), 1.0 / 3.0);
    ASSERT_EQ(s.sorted().size(), 3u);
    EXPECT_DOUBLE_EQ(s.sorted().front(), 1.0);
    s.clear();
    EXPECT_TRUE(std::isnan(s.percentile(50)));
    s.add(2_ms); // add(SimTime) must invalidate too
    EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
    // Repeated queries on an unchanged series stay consistent.
    for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(s.percentile(100), 2.0);
}

TEST(StatRegistryTest, HistogramsObserveAndSnapshot)
{
    StatRegistry stats;
    EXPECT_EQ(stats.findHistogram("boot"), nullptr);
    stats.observe("boot", 2_ms);
    stats.observeMs("boot", 4.0);
    const LatencySeries *h = stats.findHistogram("boot");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_DOUBLE_EQ(h->mean(), 3.0);
    stats.clear();
    EXPECT_EQ(stats.findHistogram("boot"), nullptr);
}

TEST(StatRegistryTest, WriteJsonShape)
{
    StatRegistry stats;
    stats.incr("boots", 3);
    stats.observeMs("lat", 1.0);
    stats.observeMs("lat", 3.0);
    std::ostringstream os;
    stats.writeJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"counters\""), std::string::npos);
    EXPECT_NE(out.find("\"boots\": 3"), std::string::npos);
    EXPECT_NE(out.find("\"histograms\""), std::string::npos);
    EXPECT_NE(out.find("\"lat\""), std::string::npos);
    EXPECT_NE(out.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"p50\""), std::string::npos);
    EXPECT_NE(out.find("\"p99\""), std::string::npos);
    // NaN must never leak into the JSON output.
    EXPECT_EQ(out.find("nan"), std::string::npos);
}

TEST(LatencySeriesTest, Cdf)
{
    LatencySeries s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.addMs(v);
    EXPECT_DOUBLE_EQ(s.cdfAt(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.cdfAt(2.0), 0.5);
    EXPECT_DOUBLE_EQ(s.cdfAt(10.0), 1.0);
}

TEST(TableFormatTest, FmtHelpers)
{
    EXPECT_EQ(fmtMs(123.456), "123.5");
    EXPECT_EQ(fmtMs(12.345), "12.35");
    EXPECT_EQ(fmtMs(0.97), "0.970");
    EXPECT_EQ(fmtBytes(512), "512B");
    EXPECT_EQ(fmtBytes(2048), "2.0KB");
    EXPECT_EQ(fmtBytes(3.5 * 1024 * 1024), "3.5MB");
    EXPECT_EQ(fmtSpeedup(35.21), "35.2x");
}

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable table("Demo");
    table.setHeader({"name", "ms"});
    table.addRow({"alpha", "1.0"});
    table.addSeparator();
    table.addRow({"b", "20.5"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("20.5"), std::string::npos);
}

TEST(TextTableTest, ArityMismatchPanics)
{
    TextTable table;
    table.setHeader({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "cells");
}

TEST(CdfPrintTest, EmitsMonotoneFractions)
{
    std::ostringstream os;
    printCdf(os, "test", {1.0, 2.0, 4.0});
    const std::string out = os.str();
    EXPECT_NE(out.find("n=3"), std::string::npos);
    EXPECT_NE(out.find("1.0000"), std::string::npos);
}

} // namespace
} // namespace catalyzer::sim
