/**
 * @file
 * Tests for the distributed layer: the cluster-wide template registry
 * and the remote-sfork boot path end to end.
 */

#include <gtest/gtest.h>

#include "platform/cluster.h"
#include "remote/template_registry.h"

namespace catalyzer::remote {
namespace {

using platform::BootStrategy;
using platform::Cluster;
using platform::PlacementPolicy;
using platform::PlatformConfig;

net::FabricConfig
remoteForkFabric()
{
    net::FabricConfig config;
    config.modelTransfers = true;
    config.remoteFork = true;
    return config;
}

TEST(TemplateRegistryTest, NearestHolderPrefersSameRack)
{
    net::FabricConfig config;
    config.machinesPerRack = 4;
    net::Fabric fabric(config);
    TemplateRegistry registry(&fabric);

    registry.setTemplate(6, "f", true); // other rack
    EXPECT_EQ(registry.nearestTemplateHolder("f", 1), 6u);

    registry.setTemplate(2, "f", true); // same rack as 1
    EXPECT_EQ(registry.nearestTemplateHolder("f", 1), 2u);

    // A holder never lends to itself.
    EXPECT_EQ(registry.nearestTemplateHolder("f", 2), 6u);

    // Same-rack candidates break ties on the lowest id.
    registry.setTemplate(3, "f", true);
    EXPECT_EQ(registry.nearestTemplateHolder("f", 1), 2u);

    registry.setTemplate(2, "f", false);
    registry.setTemplate(3, "f", false);
    registry.setTemplate(6, "f", false);
    EXPECT_FALSE(registry.nearestTemplateHolder("f", 1).has_value());
}

TEST(TemplateRegistryTest, ReplicaDirectory)
{
    TemplateRegistry registry;
    EXPECT_FALSE(registry.nearestReplica("img", 0).has_value());
    registry.addReplica("img", 3);
    registry.addReplica("img", 7);
    EXPECT_EQ(registry.replicaCount("img"), 2u);
    EXPECT_EQ(registry.nearestReplica("img", 0), 3u);
    EXPECT_EQ(registry.nearestReplica("img", 3), 7u);
    registry.dropReplica("img", 3);
    EXPECT_EQ(registry.nearestReplica("img", 0), 7u);
}

TEST(RemoteForkTest, BorrowerForksFromPeerTemplate)
{
    Cluster cluster(2, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto}, {},
                    sim::CostModel{}, 42, remoteForkFabric());
    const apps::AppProfile &app = apps::appByName("python-django");
    cluster.deploy(app);
    // Only machine 0 prepares a template; prepare() publishes it into
    // the registry.
    cluster.platform(0).prepare(app);
    EXPECT_TRUE(cluster.registry().hasTemplate(0, "python-django"));
    EXPECT_FALSE(cluster.registry().hasTemplate(1, "python-django"));

    // Machine 1 has no template, no base, no image — but a peer does:
    // CatalyzerAuto takes the remote-sfork tier.
    auto record = cluster.platform(1).invoke("python-django");
    EXPECT_EQ(record.tierServed, "remote-sfork");
    EXPECT_EQ(record.tierFallbacks, 0);

    auto &stats = cluster.machine(1).ctx().stats();
    EXPECT_EQ(stats.value("remote.fork_hits"), 1);
    EXPECT_EQ(stats.value("catalyzer.remote_fork_boots"), 1);
    // The handshake and metadata stream crossed the fabric.
    EXPECT_GT(stats.value("net.transfers"), 0);
    EXPECT_GT(stats.value("net.bytes"), 0);
    // The lender machine was never charged.
    EXPECT_EQ(cluster.machine(0).ctx().stats().value("net.transfers"),
              0);
}

TEST(RemoteForkTest, DemandPullsCrossTheFabric)
{
    Cluster cluster(2, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto}, {},
                    sim::CostModel{}, 42, remoteForkFabric());
    const apps::AppProfile &app = apps::appByName("python-django");
    cluster.deploy(app);
    cluster.platform(0).prepare(app);
    cluster.platform(1).invoke("python-django");

    auto &stats = cluster.machine(1).ctx().stats();
    // The first request touched pages beyond the prefetched metadata:
    // they were pulled remotely, in batches.
    EXPECT_GT(stats.value("remote.page_pulls"), 0);
    EXPECT_GT(stats.value("remote.pull_batches"), 0);
    // Batching means far fewer requests than pages.
    EXPECT_LT(stats.value("remote.pull_batches"),
              stats.value("remote.page_pulls"));

    // The retained instance keeps pulling on later requests (lifetime
    // pager, not a first-response window).
    const auto pulls = stats.value("remote.page_pulls");
    cluster.platform(1).invoke("python-django");
    EXPECT_GE(stats.value("remote.page_pulls"), pulls);
}

TEST(RemoteForkTest, RemoteSforkBeatsColdRestoreWithFetch)
{
    // The MITOSIS argument: forking from a peer and pulling pages on
    // demand beats shipping the whole image from origin and restoring.
    const apps::AppProfile &app = apps::appByName("python-django");

    Cluster remote(2, PlacementPolicy::RoundRobin,
                   PlatformConfig{BootStrategy::CatalyzerAuto}, {},
                   sim::CostModel{}, 42, remoteForkFabric());
    remote.deploy(app);
    remote.platform(0).prepare(app);
    auto &rctx = remote.machine(1).ctx();
    const sim::SimTime r0 = rctx.now();
    remote.platform(1).invoke(app.name);
    const sim::SimTime remote_cost = rctx.now() - r0;

    core::CatalyzerOptions fetch_options;
    fetch_options.remoteImages = true;
    net::FabricConfig modeled;
    modeled.modelTransfers = true;
    Cluster cold(2, PlacementPolicy::RoundRobin,
                 PlatformConfig{BootStrategy::CatalyzerCold},
                 fetch_options, sim::CostModel{}, 42, modeled);
    cold.deploy(app);
    auto &cctx = cold.machine(1).ctx();
    const sim::SimTime c0 = cctx.now();
    cold.platform(1).invoke(app.name);
    const sim::SimTime cold_cost = cctx.now() - c0;

    EXPECT_LT(remote_cost, cold_cost);
}

TEST(RemoteForkTest, PeerDeathAtHandshakeDegradesGracefully)
{
    Cluster cluster(2, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto}, {},
                    sim::CostModel{}, 42, remoteForkFabric());
    const apps::AppProfile &app = apps::appByName("python-hello");
    cluster.deploy(app);
    cluster.platform(0).prepare(app);

    cluster.platform(1).catalyzer().faults().failNext(
        faults::FaultSite::RemotePeerDeath);
    auto record = cluster.platform(1).invoke("python-hello");
    // Degraded past the remote tier; the request still succeeded.
    EXPECT_NE(record.tierServed, "remote-sfork");
    EXPECT_GE(record.tierFallbacks, 1);
    auto &stats = cluster.machine(1).ctx().stats();
    EXPECT_EQ(stats.value("boot.fallback.remote-sfork_warm"), 1);
    EXPECT_EQ(stats.value("remote.fork_hits"), 0);
}

TEST(RemoteForkTest, SecondBorrowReusesTheMirror)
{
    PlatformConfig config{BootStrategy::CatalyzerAuto};
    config.retainInstances = false; // force a fresh boot per request
    Cluster cluster(2, PlacementPolicy::RoundRobin, config, {},
                    sim::CostModel{}, 42, remoteForkFabric());
    const apps::AppProfile &app = apps::appByName("python-hello");
    cluster.deploy(app);
    cluster.platform(0).prepare(app);

    cluster.platform(1).invoke("python-hello");
    auto &stats = cluster.machine(1).ctx().stats();
    const auto pulls_after_first = stats.value("remote.page_pulls");
    ASSERT_EQ(stats.value("remote.fork_hits"), 1);

    // The second borrowed instance shares the mirror Base-EPT: pages
    // already pulled stay local, so the second boot pulls fewer.
    cluster.platform(1).invoke("python-hello");
    EXPECT_EQ(stats.value("remote.fork_hits"), 2);
    EXPECT_LT(stats.value("remote.page_pulls") - pulls_after_first,
              pulls_after_first);
}

TEST(RemoteForkTest, SingleMachineChainIsUnchanged)
{
    // Without a remote env the tier_served histogram and the fallback
    // counter names are exactly the legacy four-tier chain.
    Cluster cluster(1, PlacementPolicy::RoundRobin,
                    PlatformConfig{BootStrategy::CatalyzerAuto});
    const apps::AppProfile &app = apps::appByName("c-hello");
    cluster.deploy(app);
    cluster.invoke("c-hello");
    auto &stats = cluster.machine(0).ctx().stats();
    const auto *tiers = stats.findHistogram("boot.tier_served");
    ASSERT_NE(tiers, nullptr);
    // CatalyzerAuto with no template and no base boots cold: legacy
    // encoded value 2.
    EXPECT_EQ(tiers->raw().back(), 2.0);
    EXPECT_EQ(stats.value("remote.fork_hits"), 0);
    EXPECT_EQ(stats.value("net.transfers"), 0);
}

} // namespace
} // namespace catalyzer::remote
