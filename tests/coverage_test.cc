/**
 * @file
 * Focused tests for smaller behaviours: guest fd-table mirroring,
 * overlay log writes during execution, cost-model profiles, logging
 * levels and miscellaneous name tables.
 */

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "sandbox/pipelines.h"
#include "sim/logging.h"

namespace catalyzer {
namespace {

using sandbox::FunctionRegistry;
using sandbox::Machine;
using sandbox::SandboxSystem;

TEST(FdMirrorTest, RestoredInstanceHasPendingFds)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    auto &fn = registry.artifactsFor(apps::appByName("c-nginx"));

    auto cold = runtime.bootCold(fn);
    const auto &guest = cold.instance->guest();
    // One fd per checkpointed connection...
    EXPECT_EQ(guest.fds().inUse(), guest.io().count());
    // ...all pending: on-demand reconnection passed valid fd numbers
    // whose backing connections are not re-opened yet.
    EXPECT_EQ(cold.instance->guest().pendingFds(), guest.io().count());
    EXPECT_GT(guest.io().count(), 0u);
}

TEST(FdMirrorTest, EagerRestoreHasNoPendingFds)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    auto &fn = registry.artifactsFor(apps::appByName("c-nginx"));
    auto boot = sandbox::bootSandbox(SandboxSystem::GVisorRestore, fn);
    EXPECT_EQ(boot.instance->guest().pendingFds(), 0u);
    EXPECT_EQ(boot.instance->guest().fds().inUse(),
              boot.instance->guest().io().count());
}

TEST(FdMirrorTest, FreshBootFdsAllConnected)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    auto &fn = registry.artifactsFor(apps::appByName("python-hello"));
    auto boot = sandbox::bootSandbox(SandboxSystem::GVisor, fn);
    EXPECT_EQ(boot.instance->guest().pendingFds(), 0u);
}

TEST(OverlayLogTest, RequestsWriteLogsIntoTheOverlay)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    auto &fn = registry.artifactsFor(apps::appByName("ds-text"));

    auto boot = runtime.bootFork(fn);
    ASSERT_NE(boot.instance->rootfs(), nullptr);
    const std::size_t before = boot.instance->rootfs()->upperBytes();
    boot.instance->invoke();
    boot.instance->invoke();
    EXPECT_GT(boot.instance->rootfs()->upperBytes(), before);
    // The logs are private to the sandbox: the lower rootfs is clean.
    EXPECT_FALSE(fn.fsServer().rootfs().exists(
        "/app/" + fn.app().name + ".request.log"));
}

TEST(CostProfileTest, ServerProfileDiffersSensibly)
{
    const sim::CostModel desktop;
    const sim::CostModel server = sim::CostModel::serverProfile();
    EXPECT_GT(server.restoreWorkers, desktop.restoreWorkers);
    // Slower per-core, faster storage, bigger cache.
    EXPECT_GT(server.deserializeObject.toNs(),
              desktop.deserializeObject.toNs());
    EXPECT_LT(server.demandFaultFileCold.toUs(),
              desktop.demandFaultFileCold.toUs());
    EXPECT_LT(server.pageCacheMissColdBoot,
              desktop.pageCacheMissColdBoot);
}

TEST(LoggingTest, LevelRoundTrips)
{
    const auto saved = sim::logLevel();
    sim::setLogLevel(sim::LogLevel::Debug);
    EXPECT_EQ(sim::logLevel(), sim::LogLevel::Debug);
    sim::setLogLevel(sim::LogLevel::Silent);
    EXPECT_EQ(sim::logLevel(), sim::LogLevel::Silent);
    // warn/inform/debug are no-ops below their level (must not crash).
    sim::warn("suppressed %d", 1);
    sim::inform("suppressed");
    sim::debugLog("suppressed");
    sim::setLogLevel(saved);
}

TEST(NameTableTest, AllEnumsHaveNames)
{
    using sandbox::BootKind;
    EXPECT_STREQ(sandbox::bootKindName(BootKind::ColdFresh),
                 "cold-fresh");
    EXPECT_STREQ(sandbox::bootKindName(BootKind::Native), "native");
    EXPECT_STREQ(sandbox::sandboxSystemName(SandboxSystem::Native),
                 "Native");
    EXPECT_STREQ(apps::languageName(apps::Language::Ruby), "Ruby");
}

TEST(BaseRootfsTest, ContainsTheUsualSuspects)
{
    const auto tree = Machine::baseRootfs();
    EXPECT_TRUE(tree.exists("/lib/libc.so.6"));
    EXPECT_TRUE(tree.exists("/bin/sh"));
    EXPECT_TRUE(tree.exists("/etc/passwd"));
    EXPECT_GT(tree.fileCount(), 5u);
}

TEST(ArtifactsTest, RootfsCoversConnectionTargets)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    auto &fn = registry.artifactsFor(apps::appByName("c-nginx"));
    const auto &app = apps::appByName("c-nginx");
    for (std::size_t i = 0; i < app.ioConnections; ++i) {
        EXPECT_TRUE(fn.fsServer().rootfs().exists(
            "/app/data/conn" + std::to_string(i)))
            << i;
    }
    EXPECT_TRUE(fn.fsServer().rootfs().exists(fn.appFilePath(0)));
}

TEST(ZygoteReplenishTest, PoolRefillsToTarget)
{
    Machine machine(42);
    core::ZygotePool pool(machine);
    pool.prewarm(2);
    pool.acquire();
    pool.acquire();
    EXPECT_EQ(pool.cached(), 0u);
    pool.replenish();
    EXPECT_EQ(pool.cached(), 2u);
    EXPECT_EQ(pool.target(), 2u);
}

TEST(InvokeJitterTest, FirstInvocationIsSlowerOnRestoredInstances)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    auto &fn = registry.artifactsFor(apps::appByName("python-django"));
    auto boot = runtime.bootCold(fn);
    const double first = boot.instance->invoke().toMs();
    const double second = boot.instance->invoke().toMs();
    const double third = boot.instance->invoke().toMs();
    EXPECT_GT(first, second); // lazy reconnects + COW on first touch
    EXPECT_NEAR(second, third, second * 0.2);
}

} // namespace
} // namespace catalyzer
