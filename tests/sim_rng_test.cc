/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace catalyzer::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next64() == b.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(5.0, 9.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 9.0);
    }
}

TEST(RngTest, UniformIntBounds)
{
    Rng rng(11);
    EXPECT_EQ(rng.uniformInt(0), 0u);
    bool hit_low = false, hit_high = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        hit_low |= v == 0;
        hit_high |= v == 9;
    }
    EXPECT_TRUE(hit_low);
    EXPECT_TRUE(hit_high);
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, HeavyTailStaysInBounds)
{
    Rng rng(19);
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.heavyTail(1.0, 30.0);
        EXPECT_GE(v, 0.99);
        EXPECT_LE(v, 30.01);
    }
}

TEST(RngTest, HeavyTailIsSkewedTowardLow)
{
    Rng rng(23);
    int low = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        low += rng.heavyTail(1.0, 30.0) < 3.0 ? 1 : 0;
    // A bounded Pareto with alpha=1.5 concentrates mass near the floor.
    EXPECT_GT(low, n / 2);
}

TEST(RngTest, SplitProducesIndependentStream)
{
    Rng a(29);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next64() == b.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace catalyzer::sim
