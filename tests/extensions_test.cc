/**
 * @file
 * Tests for the extension features: the gVisor-ptrace platform variant,
 * trace-driven workloads, user-guided pre-initialization (Sec. 6.7) and
 * template refresh (Sec. 6.8).
 */

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "platform/workload.h"
#include "sandbox/pipelines.h"

namespace catalyzer {
namespace {

using platform::BootStrategy;
using platform::PlatformConfig;
using platform::ServerlessPlatform;
using sandbox::FunctionRegistry;
using sandbox::Machine;
using sandbox::SandboxSystem;

TEST(GVisorPtraceTest, NoKvmButSlowerAppInit)
{
    Machine m1(42);
    FunctionRegistry r1(m1);
    const auto kvm = sandbox::bootSandbox(
        SandboxSystem::GVisor,
        r1.artifactsFor(apps::appByName("java-hello")));

    Machine m2(42);
    FunctionRegistry r2(m2);
    const auto ptrace = sandbox::bootSandbox(
        SandboxSystem::GVisorPtrace,
        r2.artifactsFor(apps::appByName("java-hello")));

    // No KVM ioctls on the ptrace platform.
    EXPECT_EQ(m2.ctx().stats().value("kvm.create_vm"), 0);
    EXPECT_GT(m1.ctx().stats().value("kvm.create_vm"), 0);
    // Sandbox construction is cheaper without virtualization setup...
    EXPECT_LT(ptrace.report.sandboxInit().toMs(),
              kvm.report.sandboxInit().toMs());
    // ...but interception makes application init slower overall.
    EXPECT_GT(ptrace.report.appInit().toMs(),
              kvm.report.appInit().toMs());
    EXPECT_STREQ(sandbox::sandboxSystemName(SandboxSystem::GVisorPtrace),
                 "gVisor-ptrace");
}

TEST(TraceWorkloadTest, ReplaysExactSchedule)
{
    Machine machine(42);
    ServerlessPlatform plat(machine,
                            PlatformConfig{BootStrategy::CatalyzerFork});
    plat.prepare(apps::appByName("ds-text"));
    plat.prepare(apps::appByName("ds-media"));

    platform::WorkloadSpec spec;
    spec.trace = {
        {0.10, "ds-text"},
        {0.20, "ds-media"},
        {0.25, "ds-text"},
        {1.50, "ds-text"},
    };
    const auto report = platform::WorkloadDriver(plat).run(spec);
    EXPECT_EQ(report.requests, 4u);
    EXPECT_EQ(report.perFunction.at("ds-text").count(), 3u);
    EXPECT_EQ(report.perFunction.at("ds-media").count(), 1u);
    // The clock followed the trace to at least the last arrival.
    EXPECT_GT(machine.ctx().now().toSec(), 1.5);
}

TEST(TraceWorkloadTest, UnsortedTraceIsSorted)
{
    Machine machine(42);
    ServerlessPlatform plat(machine,
                            PlatformConfig{BootStrategy::CatalyzerFork});
    plat.prepare(apps::appByName("ds-text"));
    platform::WorkloadSpec spec;
    spec.trace = {{0.5, "ds-text"}, {0.1, "ds-text"}, {0.3, "ds-text"}};
    const auto report = platform::WorkloadDriver(plat).run(spec);
    EXPECT_EQ(report.requests, 3u);
}

class WarmImageTest : public ::testing::Test
{
  protected:
    WarmImageTest() : machine(42), registry(machine), runtime(machine) {}
    Machine machine;
    FunctionRegistry registry;
    core::CatalyzerRuntime runtime;
};

TEST_F(WarmImageTest, WarmedImageCutsExecLatency)
{
    auto &fn = registry.artifactsFor(apps::appByName("pillow-filters"));

    auto before = runtime.bootCold(fn);
    const double exec_default = before.instance->invoke().toMs();

    runtime.warmFuncImage(fn, /*training_requests=*/3,
                          /*prep_fraction=*/0.6);
    EXPECT_EQ(machine.ctx().stats().value("catalyzer.images_warmed"), 1);

    auto after = runtime.bootCold(fn);
    EXPECT_DOUBLE_EQ(after.instance->prepFraction(), 0.6);
    const double exec_warmed = after.instance->invoke().toMs();
    EXPECT_LT(exec_warmed, exec_default * 0.6);
}

TEST_F(WarmImageTest, WarmedImagePropagatesToForkBoots)
{
    auto &fn = registry.artifactsFor(apps::appByName("ds-compose"));
    runtime.warmFuncImage(fn, 2, 0.5);
    auto fork = runtime.bootFork(fn);
    EXPECT_DOUBLE_EQ(fork.instance->prepFraction(), 0.5);
}

TEST_F(WarmImageTest, WarmingInvalidatesTheSharedBase)
{
    auto &fn = registry.artifactsFor(apps::appByName("c-nginx"));
    runtime.bootWarm(fn);
    const auto old_base = fn.sharedBase;
    ASSERT_NE(old_base, nullptr);
    runtime.warmFuncImage(fn, 1, 0.4);
    EXPECT_EQ(fn.sharedBase, nullptr); // dropped; next boot remaps
    runtime.bootWarm(fn);
    EXPECT_NE(fn.sharedBase, old_base);
}

TEST(TemplateRefreshTest, RefreshRotatesTheLayout)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    runtime.prepareTemplate(fn);
    const auto salt_before =
        runtime.templateFor("c-hello")->proc().aslrSalt();

    runtime.refreshTemplate(fn);
    auto *fresh = runtime.templateFor("c-hello");
    ASSERT_NE(fresh, nullptr);
    // A new sandbox process: new layout salt for all future children.
    EXPECT_NE(fresh->proc().aslrSalt(), salt_before);
    EXPECT_EQ(machine.ctx().stats().value(
                  "catalyzer.template_refreshes"), 1);

    // The refreshed template still fork-boots correctly.
    auto fork = runtime.bootFork(fn);
    EXPECT_LT(fork.report.total().toMs(), 1.5);
}

} // namespace
} // namespace catalyzer
