/**
 * @file
 * Tests for the boot tracing layer: span buffering and nesting,
 * out-of-order finishes, the Chrome trace_event and text exporters
 * (including attribute escaping and JSON well-formedness), BootReport
 * span emission, log-level parsing, and the end-to-end span tree of a
 * Catalyzer cold boot.
 */

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "sandbox/boot_report.h"
#include "sandbox/pipelines.h"
#include "sim/logging.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace catalyzer::trace {
namespace {

using sandbox::FunctionArtifacts;
using sandbox::FunctionRegistry;
using sandbox::Machine;
using sim::SimTime;
using namespace sim::time_literals;

//
// A deliberately small recursive-descent JSON reader, just enough to
// prove the exporter's output is parseable and to walk its structure.
//
class MiniJson
{
  public:
    struct Value
    {
        enum class Kind { Null, Bool, Number, String, Array, Object };
        Kind kind = Kind::Null;
        double number = 0;
        bool boolean = false;
        std::string string;
        std::vector<Value> array;
        std::vector<std::pair<std::string, Value>> object;

        const Value *
        find(const std::string &key) const
        {
            for (const auto &[k, v] : object) {
                if (k == key)
                    return &v;
            }
            return nullptr;
        }
    };

    static bool
    parse(const std::string &text, Value *out)
    {
        MiniJson p(text);
        if (!p.value(out))
            return false;
        p.ws();
        return p.pos_ == text.size();
    }

  private:
    explicit MiniJson(const std::string &text) : text_(text) {}

    void
    ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    value(Value *out)
    {
        ws();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out->kind = Value::Kind::String;
            return string(&out->string);
          case 't':
            out->kind = Value::Kind::Bool;
            out->boolean = true;
            return literal("true");
          case 'f':
            out->kind = Value::Kind::Bool;
            out->boolean = false;
            return literal("false");
          case 'n':
            out->kind = Value::Kind::Null;
            return literal("null");
          default: return number(out);
        }
    }

    bool
    number(Value *out)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return false;
        out->kind = Value::Kind::Number;
        out->number = std::stod(text_.substr(start, pos_ - start));
        return true;
    }

    bool
    string(std::string *out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return false;
                const char esc = text_[pos_ + 1];
                switch (esc) {
                  case '"': out->push_back('"'); break;
                  case '\\': out->push_back('\\'); break;
                  case '/': out->push_back('/'); break;
                  case 'b': out->push_back('\b'); break;
                  case 'f': out->push_back('\f'); break;
                  case 'n': out->push_back('\n'); break;
                  case 'r': out->push_back('\r'); break;
                  case 't': out->push_back('\t'); break;
                  case 'u': {
                    if (pos_ + 5 >= text_.size())
                        return false;
                    const std::string hex = text_.substr(pos_ + 2, 4);
                    out->push_back(static_cast<char>(
                        std::stoi(hex, nullptr, 16) & 0xff));
                    pos_ += 4;
                    break;
                  }
                  default: return false;
                }
                pos_ += 2;
            } else {
                out->push_back(c);
                ++pos_;
            }
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    array(Value *out)
    {
        out->kind = Value::Kind::Array;
        ++pos_; // '['
        ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            Value v;
            if (!value(&v))
                return false;
            out->array.push_back(std::move(v));
            ws();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    object(Value *out)
    {
        out->kind = Value::Kind::Object;
        ++pos_; // '{'
        ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            ws();
            std::string key;
            if (pos_ >= text_.size() || !string(&key))
                return false;
            ws();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            Value v;
            if (!value(&v))
                return false;
            out->object.emplace_back(std::move(key), std::move(v));
            ws();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

const Span *
findSpan(const std::vector<Span> &spans, const std::string &name)
{
    for (const Span &s : spans) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

TEST(TracerTest, NestedScopedSpans)
{
    Tracer tracer;
    sim::VirtualClock clock;
    TraceContext root(tracer, clock);

    {
        ScopedSpan outer(root, "outer");
        clock.advance(2_ms);
        {
            ScopedSpan inner(outer.context(), "inner");
            clock.advance(3_ms);
        }
        clock.advance(1_ms);
    }

    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    const Span *outer = findSpan(spans, "outer");
    const Span *inner = findSpan(spans, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->parent, 0u);
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_TRUE(outer->finished);
    EXPECT_TRUE(inner->finished);
    EXPECT_EQ(outer->duration(), 6_ms);
    EXPECT_EQ(inner->duration(), 3_ms);
    EXPECT_EQ(inner->start, 2_ms);
}

TEST(TracerTest, OutOfOrderFinishAndDoubleEnd)
{
    Tracer tracer;
    sim::VirtualClock clock;
    const SpanId parent = tracer.begin("parent", clock.now());
    const SpanId child = tracer.begin("child", clock.now(), parent);

    clock.advance(1_ms);
    tracer.end(parent, clock.now()); // parent finishes before child
    clock.advance(1_ms);
    tracer.end(child, clock.now());
    tracer.end(child, clock.now() + 5_ms); // double-end: first wins
    tracer.end(999, clock.now());          // unknown id: no-op

    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(findSpan(spans, "parent")->duration(), 1_ms);
    EXPECT_EQ(findSpan(spans, "child")->duration(), 2_ms);
}

TEST(TracerTest, EndBeforeStartClampsToZeroDuration)
{
    Tracer tracer;
    sim::VirtualClock clock;
    clock.advance(5_ms);
    const SpanId id = tracer.begin("s", clock.now());
    tracer.end(id, 1_ms); // before the span started
    EXPECT_EQ(tracer.snapshot()[0].duration(), SimTime::zero());
}

TEST(TracerTest, DisabledContextIsNoOp)
{
    TraceContext disabled;
    EXPECT_FALSE(disabled.enabled());
    ScopedSpan span(disabled, "nothing");
    span.attr("k", "v");
    span.attr("n", std::int64_t{7});
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(disabled.completedSpan("x", 1_ms), 0u);
    EXPECT_FALSE(span.context().enabled());
}

TEST(TracerTest, CompletedSpanIsRetroactive)
{
    Tracer tracer;
    sim::VirtualClock clock;
    clock.advance(10_ms);
    TraceContext ctx(tracer, clock);
    ctx.completedSpan("stage", 4_ms);
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].start, 6_ms);
    EXPECT_EQ(spans[0].end, 10_ms);
}

TEST(ChromeExportTest, EscapesAttributesAndRoundTrips)
{
    Tracer tracer;
    sim::VirtualClock clock;
    TraceContext root(tracer, clock);
    {
        ScopedSpan span(root, "na\"me\\with\nnasties");
        span.attr("quote\"key", std::string("va\\lue\twith\x01"
                                            "ctrl"));
        clock.advance(1_ms);
    }
    tracer.begin("unfinished", clock.now()); // stays open

    std::ostringstream os;
    exportChromeTrace(tracer, os);
    const std::string json = os.str();

    // The raw escapes must appear in the byte stream.
    EXPECT_NE(json.find("na\\\"me\\\\with\\nnasties"), std::string::npos);
    EXPECT_NE(json.find("quote\\\"key"), std::string::npos);
    EXPECT_NE(json.find("\\u0001"), std::string::npos);

    // And the whole document must parse back.
    MiniJson::Value doc;
    ASSERT_TRUE(MiniJson::parse(json, &doc));
    const MiniJson::Value *all = doc.find("traceEvents");
    ASSERT_NE(all, nullptr);

    // One process_name metadata event for the (single) machine lane,
    // then the real "X" events.
    std::vector<const MiniJson::Value *> meta, xs;
    for (const MiniJson::Value &e : all->array) {
        (e.find("ph")->string == "M" ? meta : xs).push_back(&e);
    }
    ASSERT_EQ(meta.size(), 1u);
    EXPECT_EQ(meta[0]->find("name")->string, "process_name");
    EXPECT_DOUBLE_EQ(meta[0]->find("pid")->number, 0.0);
    ASSERT_EQ(xs.size(), 2u);

    const MiniJson::Value &ev = *xs[0];
    EXPECT_EQ(ev.find("name")->string, "na\"me\\with\nnasties");
    EXPECT_EQ(ev.find("ph")->string, "X");
    EXPECT_DOUBLE_EQ(ev.find("dur")->number, 1000.0); // µs
    const MiniJson::Value *args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("quote\"key")->string,
              "va\\lue\twith\x01"
              "ctrl");

    const MiniJson::Value &open = *xs[1];
    EXPECT_EQ(open.find("name")->string, "unfinished");
    EXPECT_EQ(open.find("args")->find("unfinished")->string, "true");
}

TEST(ChromeExportTest, PidIsMachineAndTidIsTraceId)
{
    Tracer a, b;
    a.setMachine(3);
    b.setMachine(7);
    sim::VirtualClock clock;
    const TraceId tid = nextTraceId();
    a.begin("borrow", clock.now(), 0, tid);
    b.begin("lend", clock.now(), 0, tid);

    std::vector<Span> spans = a.snapshot();
    const std::vector<Span> lent = b.snapshot();
    spans.insert(spans.end(), lent.begin(), lent.end());

    std::ostringstream os;
    exportChromeTrace(spans, os);
    MiniJson::Value doc;
    ASSERT_TRUE(MiniJson::parse(os.str(), &doc));
    const MiniJson::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::size_t meta = 0, xs = 0;
    for (const MiniJson::Value &e : events->array) {
        if (e.find("ph")->string == "M") {
            ++meta;
            continue;
        }
        ++xs;
        // Same trace id lane in two distinct machine lanes.
        EXPECT_DOUBLE_EQ(e.find("tid")->number,
                         static_cast<double>(tid));
        const double pid = e.find("pid")->number;
        EXPECT_TRUE(pid == 3.0 || pid == 7.0);
        EXPECT_EQ(e.find("args")->find("trace_id")->string,
                  std::to_string(tid));
    }
    EXPECT_EQ(meta, 2u); // one process_name per machine
    EXPECT_EQ(xs, 2u);
}

TEST(TracerTest, CapacityRingEvictsOldestFirst)
{
    Tracer tracer;
    sim::VirtualClock clock;
    tracer.setCapacity(3);
    for (int i = 0; i < 5; ++i) {
        tracer.begin("s" + std::to_string(i), clock.now());
        clock.advance(1_ms);
    }
    EXPECT_EQ(tracer.spanCount(), 3u);
    EXPECT_EQ(tracer.droppedCount(), 2u);
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "s2");
    EXPECT_EQ(spans[1].name, "s3");
    EXPECT_EQ(spans[2].name, "s4");
    // Ending an evicted span is a harmless no-op.
    tracer.end(1, clock.now());

    // Shrinking an over-full buffer evicts immediately.
    tracer.setCapacity(1);
    EXPECT_EQ(tracer.spanCount(), 1u);
    EXPECT_EQ(tracer.droppedCount(), 4u);
    EXPECT_EQ(tracer.snapshot()[0].name, "s4");
}

TEST(TracerTest, SpanCountAndRecentUnderWraparound)
{
    Tracer tracer;
    sim::VirtualClock clock;
    tracer.setCapacity(4);
    for (int i = 0; i < 10; ++i)
        tracer.begin("s" + std::to_string(i), clock.now());
    EXPECT_EQ(tracer.spanCount(), 4u);
    const auto tail = tracer.recent(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].name, "s8");
    EXPECT_EQ(tail[1].name, "s9");
    // Asking for more than buffered returns everything.
    EXPECT_EQ(tracer.recent(100).size(), 4u);
}

TEST(TracerTest, IdsStayMonotonicAcrossClearAndEviction)
{
    Tracer tracer;
    sim::VirtualClock clock;
    tracer.setCapacity(2);
    SpanId last = 0;
    for (int i = 0; i < 6; ++i) {
        const SpanId id = tracer.begin("s", clock.now());
        EXPECT_GT(id, last);
        last = id;
    }
    tracer.clear();
    EXPECT_EQ(tracer.spanCount(), 0u);
    const SpanId after = tracer.begin("post-clear", clock.now());
    EXPECT_GT(after, last); // ids never restart
}

TEST(TraceIdTest, RootSpanAllocatesAndChildrenInherit)
{
    Tracer tracer;
    sim::VirtualClock clock;
    TraceContext root(tracer, clock);
    EXPECT_EQ(root.traceId(), 0u);
    {
        ScopedSpan outer(root, "outer");
        const TraceId id = outer.context().traceId();
        EXPECT_NE(id, 0u);
        ScopedSpan inner(outer.context(), "inner");
        EXPECT_EQ(inner.context().traceId(), id);
    }
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_NE(spans[0].traceId, 0u);
    EXPECT_EQ(spans[0].traceId, spans[1].traceId);

    // A second root span starts a distinct trace.
    ScopedSpan other(root, "other-request");
    EXPECT_NE(other.context().traceId(), spans[0].traceId);
}

TEST(TraceIdTest, WithTracerRehomesTraceAcrossMachines)
{
    Tracer borrower, lender;
    borrower.setMachine(1);
    lender.setMachine(2);
    sim::VirtualClock bclock, lclock;
    TraceContext root(borrower, bclock);

    ScopedSpan boot(root, "boot/remote-sfork");
    const TraceContext peer =
        boot.context().withTracer(lender, lclock);
    EXPECT_EQ(peer.tracer(), &lender);
    EXPECT_EQ(peer.parent(), 0u); // span ids don't cross machines
    EXPECT_EQ(peer.traceId(), boot.context().traceId());
    ScopedSpan lend(peer, "lend-template");
    boot.finish();
    lend.finish();

    const auto bs = borrower.snapshot();
    const auto ls = lender.snapshot();
    ASSERT_EQ(bs.size(), 1u);
    ASSERT_EQ(ls.size(), 1u);
    EXPECT_EQ(bs[0].traceId, ls[0].traceId);
    EXPECT_EQ(bs[0].machine, 1u);
    EXPECT_EQ(ls[0].machine, 2u);
}

TEST(TextExportTest, RendersHierarchy)
{
    Tracer tracer;
    sim::VirtualClock clock;
    TraceContext root(tracer, clock);
    {
        ScopedSpan outer(root, "boot");
        clock.advance(1_ms);
        ScopedSpan inner(outer.context(), "stage");
        inner.attr("pages", std::int64_t{4});
        clock.advance(1_ms);
    }
    std::ostringstream os;
    exportText(tracer, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("2 spans"), std::string::npos);
    EXPECT_NE(text.find("boot"), std::string::npos);
    // The child is indented under its parent.
    EXPECT_NE(text.find("  stage"), std::string::npos);
    EXPECT_NE(text.find("pages=4"), std::string::npos);
}

TEST(BootReportTest, EmitsStageSpansWhenBound)
{
    Tracer tracer;
    sim::VirtualClock clock;
    clock.advance(20_ms);

    sandbox::BootReport report;
    report.bindTrace(TraceContext(tracer, clock));
    report.addSandboxStage("construct", 2_ms);
    report.addAppStage("restore", 3_ms);
    report.addAppStage("silent", 1_ms, /*emit_span=*/false);

    EXPECT_EQ(report.total(), 6_ms);
    const auto spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    const Span *construct = findSpan(spans, "construct");
    ASSERT_NE(construct, nullptr);
    ASSERT_FALSE(construct->attributes.empty());
    EXPECT_EQ(construct->attributes[0].second, "sandbox-init");
    const Span *restore = findSpan(spans, "restore");
    ASSERT_NE(restore, nullptr);
    EXPECT_EQ(restore->attributes[0].second, "app-init");
    EXPECT_EQ(findSpan(spans, "silent"), nullptr);
}

TEST(LogLevelTest, ParseLogLevel)
{
    using sim::LogLevel;
    using sim::parseLogLevel;
    EXPECT_EQ(parseLogLevel("silent", LogLevel::Warn), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("WARN", LogLevel::Silent), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("Inform", LogLevel::Warn), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("debug", LogLevel::Warn), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("3", LogLevel::Warn), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("0", LogLevel::Warn), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("bogus", LogLevel::Inform), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel(nullptr, LogLevel::Debug), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("", LogLevel::Warn), LogLevel::Warn);
}

TEST(TraceIntegrationTest, CatalyzerColdBootSpanTree)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));

    Tracer tracer;
    TraceContext root(tracer, machine.ctx().clock());
    runtime.bootCold(fn, root);

    const auto spans = tracer.snapshot();
    const Span *boot = findSpan(spans, "boot/Catalyzer-cold");
    ASSERT_NE(boot, nullptr);
    EXPECT_TRUE(boot->finished);

    // The acceptance stages are distinct children of the boot span.
    for (const char *stage :
         {"overlay-map", "separated-state-fixup", "io-reconnect",
          "sandbox-acquire", "specialize"}) {
        const Span *s = findSpan(spans, stage);
        ASSERT_NE(s, nullptr) << "missing span " << stage;
        EXPECT_EQ(s->parent, boot->id) << stage;
        EXPECT_TRUE(s->finished) << stage;
    }
    // The separated-state fix-up has its own structure below it.
    const Span *fixup = findSpan(spans, "separated-state-fixup");
    const Span *relation = findSpan(spans, "relation-fixup");
    ASSERT_NE(relation, nullptr);
    EXPECT_EQ(relation->parent, fixup->id);
    const Span *arena = findSpan(spans, "arena-map");
    ASSERT_NE(arena, nullptr);
    EXPECT_EQ(arena->parent, fixup->id);

    // Every span is finished, and all within the boot interval.
    for (const Span &s : spans) {
        EXPECT_TRUE(s.finished) << s.name;
        EXPECT_GE(s.start, boot->start) << s.name;
        EXPECT_LE(s.end, boot->end) << s.name;
    }

    // The boot latency landed in the per-system histogram.
    const sim::LatencySeries *h =
        machine.ctx().stats().findHistogram("boot.latency.Catalyzer-cold");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);

    // The whole trace exports to parseable Chrome JSON.
    std::ostringstream os;
    exportChromeTrace(tracer, os);
    MiniJson::Value doc;
    EXPECT_TRUE(MiniJson::parse(os.str(), &doc));
}

TEST(TraceIntegrationTest, FreshBootPipelineSpanTree)
{
    Machine machine(7);
    FunctionRegistry registry(machine);
    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));

    Tracer tracer;
    TraceContext root(tracer, machine.ctx().clock());
    sandbox::bootSandbox(sandbox::SandboxSystem::GVisor, fn, root);

    const auto spans = tracer.snapshot();
    const Span *boot = findSpan(spans, "boot/gVisor");
    ASSERT_NE(boot, nullptr);
    const Span *create = findSpan(spans, "create-kernel-platform");
    ASSERT_NE(create, nullptr);
    EXPECT_EQ(create->parent, boot->id);
    const Span *kvm = findSpan(spans, "kvm-setup");
    ASSERT_NE(kvm, nullptr);
    EXPECT_EQ(kvm->parent, create->id);
    ASSERT_NE(findSpan(spans, "application-init"), nullptr);

    const sim::LatencySeries *h =
        machine.ctx().stats().findHistogram("boot.latency.gVisor");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);
}

TEST(TraceIntegrationTest, UntracedBootStillObservesHistograms)
{
    Machine machine(9);
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    FunctionArtifacts &fn =
        registry.artifactsFor(apps::appByName("python-hello"));
    runtime.bootWarm(fn); // no trace argument anywhere
    const sim::LatencySeries *h =
        machine.ctx().stats().findHistogram("boot.latency.Catalyzer-warm");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);
}

} // namespace
} // namespace catalyzer::trace
