/**
 * @file
 * Cross-module integration tests: determinism, machine-wide memory
 * conservation, scalability flatness, and end-to-end shape checks that
 * mirror the paper's headline claims.
 */

#include <gtest/gtest.h>

#include "catalyzer/runtime.h"
#include "platform/platform.h"
#include "platform/workload.h"
#include "sandbox/pipelines.h"

namespace catalyzer {
namespace {

using platform::BootStrategy;
using platform::PlatformConfig;
using platform::ServerlessPlatform;
using sandbox::FunctionRegistry;
using sandbox::Machine;
using sandbox::SandboxSystem;

TEST(DeterminismTest, SameSeedSameRun)
{
    auto run = [](std::uint64_t seed) {
        Machine machine(seed);
        FunctionRegistry registry(machine);
        core::CatalyzerRuntime runtime(machine);
        auto &fn = registry.artifactsFor(apps::appByName("c-nginx"));
        sandbox::bootSandbox(SandboxSystem::GVisor, fn);
        runtime.bootCold(fn);
        auto fork = runtime.bootFork(fn);
        fork.instance->invoke();
        return std::make_pair(machine.ctx().now().toNs(),
                              machine.ctx().stats().all());
    };
    const auto a = run(1234);
    const auto b = run(1234);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);

    const auto c = run(99);
    EXPECT_NE(a.first, c.first);
}

TEST(MemoryConservationTest, BootDestroyCyclesDoNotLeak)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    // No zygote prewarm: otherwise warm boots drain the cached pool and
    // the machine-wide frame count drifts down by design.
    core::CatalyzerOptions options;
    options.zygotePrewarm = 0;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("python-hello"));

    // Warm everything up to steady state: images, template, base
    // mapping and page cache, including the base pages the very first
    // invocations fault in (those persist in the shared Base-EPT by
    // design).
    for (int round = 0; round < 2; ++round) {
        auto fork = runtime.bootFork(fn);
        auto warm = runtime.bootWarm(fn);
        fork.instance->invoke();
        warm.instance->invoke();
    }
    const std::size_t baseline = machine.frames().liveFrames();

    for (int round = 0; round < 5; ++round) {
        auto fork = runtime.bootFork(fn);
        auto warm = runtime.bootWarm(fn);
        fork.instance->invoke();
        warm.instance->invoke();
    }
    // Everything allocated by the instances was released; only the
    // page cache, zygote pool, base mapping and template persist.
    EXPECT_EQ(machine.frames().liveFrames(), baseline);
}

TEST(ScalabilityTest, ForkBootLatencyFlatUnderLoad)
{
    Machine machine(42);
    ServerlessPlatform plat(machine,
                            PlatformConfig{BootStrategy::CatalyzerFork});
    plat.prepare(apps::appByName("ds-text"));

    double first = 0.0, last = 0.0;
    for (int i = 0; i < 200; ++i) {
        const auto rec = plat.invoke("ds-text");
        if (i == 0)
            first = rec.bootLatency.toMs();
        last = rec.bootLatency.toMs();
    }
    EXPECT_EQ(plat.runningCount("ds-text"), 200u);
    // Fig. 15: flat boot latency regardless of running instances.
    EXPECT_NEAR(last, first, first * 0.25);
    EXPECT_LT(last, 10.0);
}

TEST(EndToEndShapeTest, StartupDominatesUnderGVisor)
{
    // Fig. 1's claim: for most functions the execution part of the
    // end-to-end latency under gVisor stays below 30%.
    std::size_t below_30 = 0;
    const auto apps_list = apps::endToEndApps();
    for (const apps::AppProfile *app : apps_list) {
        Machine machine(42);
        ServerlessPlatform plat(machine,
                                PlatformConfig{BootStrategy::GVisor});
        plat.deploy(*app);
        const auto rec = plat.invoke(app->name);
        const double ratio =
            rec.execLatency.toMs() / rec.endToEnd().toMs();
        EXPECT_LT(ratio, 0.66) << app->name; // paper max: 65.54%
        below_30 += ratio < 0.30;
    }
    EXPECT_GE(below_30, 12u);
}

TEST(ZygoteMissTest, WarmBootWorksWithoutPrewarm)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.zygotePrewarm = 0;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    auto miss = runtime.bootWarm(fn); // pool empty: built on the path
    EXPECT_EQ(runtime.zygotes().misses(), 1u);

    runtime.zygotes().prewarm(1);
    auto hit = runtime.bootWarm(fn);
    EXPECT_LT(hit.report.total().toMs(), miss.report.total().toMs());
}

TEST(ServerProfileTest, OrderingHoldsOnTheServerMachine)
{
    Machine machine(42, sim::CostModel::serverProfile());
    FunctionRegistry registry(machine);
    core::CatalyzerRuntime runtime(machine);
    auto &fn = registry.artifactsFor(apps::appByName("ec-report"));

    auto gvr = sandbox::bootSandbox(SandboxSystem::GVisorRestore, fn);
    auto fork = runtime.bootFork(fn);
    EXPECT_LT(fork.report.total().toMs(), 2.5);
    EXPECT_GT(gvr.report.total().toMs() / fork.report.total().toMs(),
              50.0);
}

TEST(AslrOptionTest, SforkChildrenGetDistinctLayouts)
{
    Machine machine(42);
    FunctionRegistry registry(machine);
    core::CatalyzerOptions options;
    options.aslrRerandomizeOnSfork = true;
    core::CatalyzerRuntime runtime(machine, options);
    auto &fn = registry.artifactsFor(apps::appByName("c-hello"));

    auto a = runtime.bootFork(fn);
    auto b = runtime.bootFork(fn);
    EXPECT_NE(a.instance->proc().aslrSalt(),
              b.instance->proc().aslrSalt());
    // The mitigation costs time but stays sub-ms territory overall.
    EXPECT_LT(a.report.total().toMs(), 2.5);
}

TEST(RestartConsistencyTest, WarmAfterTeardownStillShares)
{
    Machine machine(42);
    ServerlessPlatform plat(machine,
                            PlatformConfig{BootStrategy::CatalyzerWarm});
    plat.prepare(apps::appByName("ds-media"));
    plat.invoke("ds-media");
    plat.invoke("ds-media");
    const auto base =
        plat.registry().artifactsFor(apps::appByName("ds-media"))
            .sharedBase;
    ASSERT_NE(base, nullptr);
    const std::size_t resident_before = base->residentPages();

    plat.teardown("ds-media");
    // The Base-EPT outlives the instances; the next boot reuses it.
    plat.invoke("ds-media");
    EXPECT_GE(base->residentPages(), resident_before);
}

} // namespace
} // namespace catalyzer
