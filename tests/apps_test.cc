/**
 * @file
 * Unit tests for the application profile catalog.
 */

#include <set>

#include <gtest/gtest.h>

#include "apps/app_profile.h"

namespace catalyzer::apps {
namespace {

TEST(AppCatalogTest, CatalogCoversAllSuites)
{
    EXPECT_EQ(figure11Apps().size(), 10u);
    EXPECT_EQ(appsInSuite(Suite::DeathStar).size(), 5u);
    EXPECT_EQ(appsInSuite(Suite::Pillow).size(), 5u);
    EXPECT_EQ(appsInSuite(Suite::Ecommerce).size(), 4u);
    // Fig. 1's CDF covers the 14 end-to-end functions.
    EXPECT_EQ(endToEndApps().size(), 14u);
}

TEST(AppCatalogTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &app : allApps())
        EXPECT_TRUE(names.insert(app.name).second) << app.name;
}

TEST(AppCatalogTest, LookupByName)
{
    const AppProfile &app = appByName("java-specjbb");
    EXPECT_EQ(app.displayName, "Java-SPECjbb");
    EXPECT_EQ(app.language, Language::Java);
    // The paper's measured object count (Sec. 2.2).
    EXPECT_EQ(app.kernelObjects, 37838u);
}

TEST(AppCatalogTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(appByName("no-such-app"), ::testing::ExitedWithCode(1),
                "unknown application");
}

TEST(AppCatalogTest, ProfilesAreInternallyConsistent)
{
    for (const auto &app : allApps()) {
        EXPECT_GT(app.heapPages(), 0u) << app.name;
        EXPECT_GT(app.binaryPages, 0u) << app.name;
        EXPECT_GT(app.kernelObjects, 0u) << app.name;
        EXPECT_GT(app.ioConnections, 0u) << app.name;
        EXPECT_GT(app.initComputeCost().toNs(), 0) << app.name;
        EXPECT_GT(app.execComputeCost.toNs(), 0) << app.name;
        EXPECT_GE(app.execTouchFraction, 0.0);
        EXPECT_LE(app.execTouchFraction, 1.0);
        EXPECT_GE(app.ioStartupFraction, 0.0);
        EXPECT_LE(app.ioStartupFraction, 1.0);
        // Insight II: execution touches a small fraction of init state.
        EXPECT_LE(app.execTouchFraction, 0.5) << app.name;
    }
}

TEST(AppCatalogTest, HelloIsLighterThanRealApp)
{
    const char *pairs[][2] = {
        {"c-hello", "c-nginx"},
        {"java-hello", "java-specjbb"},
        {"python-hello", "python-django"},
        {"ruby-hello", "ruby-sinatra"},
        {"nodejs-hello", "nodejs-web"},
    };
    for (const auto &pair : pairs) {
        const AppProfile &hello = appByName(pair[0]);
        const AppProfile &real = appByName(pair[1]);
        EXPECT_LT(hello.initComputeCost().toMs(),
                  real.initComputeCost().toMs())
            << pair[1];
        EXPECT_LT(hello.kernelObjects, real.kernelObjects) << pair[1];
        EXPECT_LE(hello.heapPages(), real.heapPages()) << pair[1];
    }
}

TEST(AppCatalogTest, HighLevelLanguagesCostMoreThanC)
{
    const double c_init = appByName("c-hello").initComputeCost().toMs();
    for (const char *name :
         {"java-hello", "python-hello", "ruby-hello", "nodejs-hello"}) {
        EXPECT_GT(appByName(name).initComputeCost().toMs(), c_init)
            << name;
    }
}

TEST(AppCatalogTest, GraphSpecScalesToProfile)
{
    const AppProfile &app = appByName("python-django");
    const auto spec = app.graphSpec();
    const double ratio = static_cast<double>(spec.totalObjects()) /
                         static_cast<double>(app.kernelObjects);
    EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(AppCatalogTest, LanguageNames)
{
    EXPECT_STREQ(languageName(Language::NodeJs), "Node.js");
    EXPECT_STREQ(languageName(Language::Cpp), "C++");
}

} // namespace
} // namespace catalyzer::apps
