/**
 * @file
 * Function-chaining DAG workflows over shared state regions.
 *
 * A WorkflowSpec names a DAG of stages — each an invocation of a
 * deployed function — with fan-out/fan-in edges and declared region
 * reads/writes. The WorkflowEngine drives the stages through the
 * existing platform boot-tier chain on a Cluster, threading one
 * distributed trace id across machines, and prices the chain the way
 * the fabric prices everything else: a same-machine hop is a warm
 * in-memory queue hand-off (CostModel::chainLocalHop), a cross-machine
 * hop pays marshal/dispatch plus the fabric round trip, and region
 * reads on a machine with no current replica stream the region over
 * (StateRegionStore::attach). Placement is where the pricing bites:
 * with localityAware on, stages route through Cluster::routeStage so
 * NetworkAware placement sees region residency and co-schedules
 * chained stages; with it off, stages route like ordinary requests and
 * the chain pays every hop.
 *
 * Stage execution follows the virtual-clock discipline of the fleet
 * driver: a stage becomes ready when its last dependency finishes
 * (run-relative), the routed machine's clock idles forward to the
 * ready time if it leads, and fan-out stages placed on different
 * machines overlap in virtual time. The workflow's end-to-end latency
 * is the critical path, recorded into the chain.e2e_ms histogram and
 * the win.chain.e2e_ms windowed series of the final stage's machine.
 */

#ifndef CATALYZER_WORKFLOW_WORKFLOW_H
#define CATALYZER_WORKFLOW_WORKFLOW_H

#include <cstdint>
#include <string>
#include <vector>

#include "platform/cluster.h"
#include "trace/trace.h"

namespace catalyzer::workflow {

/** A state region a workflow materializes (pages sized up front). */
struct RegionDecl
{
    std::string name;
    std::size_t npages = 0;
};

/** One stage: a function invocation with edges and region accesses. */
struct StageSpec
{
    std::string name;
    /** Deployed function (apps catalog or population name). */
    std::string function;
    /** Fan-in dependencies: names of stages that must finish first. */
    std::vector<std::string> after;
    /** Regions read before the invocation (attached read-shared). */
    std::vector<std::string> reads;
    /** Regions written (COW) and published after the write pass. */
    std::vector<std::string> writes;
    /** Pages touched per read region; 0 = the whole region. */
    std::size_t readPages = 0;
    /** Pages written per write region; 0 = the whole region. */
    std::size_t writePages = 0;
};

/** A named DAG of stages. */
struct WorkflowSpec
{
    std::string name;
    std::vector<RegionDecl> regions;
    std::vector<StageSpec> stages;

    /**
     * Structural validation: unique non-empty stage names, known
     * dependency names, no self-edges, no cycles, referenced regions
     * declared. Fatal on violation.
     */
    void validate() const;

    /**
     * Topological stage order (indices into stages), stable: among
     * ready stages the lowest spec index runs first. Validates.
     */
    std::vector<std::size_t> topoOrder() const;

    /** Declared pages of @p region; 0 when undeclared. */
    std::size_t regionPages(const std::string &region) const;
};

/** Where and how one stage ran. */
struct StageOutcome
{
    std::string stage;
    std::size_t machine = 0;
    platform::InvocationRecord record;
    /** Chain hand-off cost charged before the stage (all dep edges). */
    sim::SimTime hopLatency;
    /** Region attach/fault/publish work before + around the invoke. */
    sim::SimTime stateLatency;
    /**
     * The placement-sensitive slice of stateLatency: region ensure +
     * attach cost, including any replica streamed over the fabric.
     * Fault work on the attached pages is excluded — both a local and
     * a remote placement pay it identically.
     */
    sim::SimTime attachLatency;
    /** Region bytes streamed to this stage's machine for its attaches. */
    std::size_t transferBytes = 0;
    std::size_t depsLocal = 0;
    std::size_t depsRemote = 0;
    /** Run-relative ready and finish instants (critical-path math). */
    sim::SimTime readyAt;
    sim::SimTime finishAt;
};

/** One workflow run. */
struct WorkflowResult
{
    std::string workflow;
    trace::TraceId traceId = 0;
    std::vector<StageOutcome> stages;
    /** Critical-path end-to-end latency (max stage finish). */
    sim::SimTime e2e;
    std::size_t hopsLocal = 0;
    std::size_t hopsRemote = 0;
    std::size_t transferBytes = 0;
    std::size_t cowFaults = 0;
    std::size_t readFaults = 0;
};

/** Engine knobs. */
struct WorkflowOptions
{
    /**
     * Route stages through Cluster::routeStage with region-residency
     * affinity (NetworkAware co-schedules the chain). Off routes every
     * stage like an ordinary request — the locality-blind baseline.
     */
    bool localityAware = true;
};

/** Drives WorkflowSpecs against a Cluster. */
class WorkflowEngine
{
  public:
    explicit WorkflowEngine(platform::Cluster &cluster,
                            WorkflowOptions options = {})
        : cluster_(cluster), options_(options)
    {}

    /**
     * Run @p spec once. With a disabled @p trace the run self-traces
     * into the machines' ring tracers under a fresh distributed trace
     * id; pass a pinned context for replay-deterministic exports.
     */
    WorkflowResult run(const WorkflowSpec &spec,
                       trace::TraceContext trace = {});

    platform::Cluster &cluster() { return cluster_; }
    const WorkflowOptions &options() const { return options_; }

  private:
    platform::Cluster &cluster_;
    WorkflowOptions options_;
};

} // namespace catalyzer::workflow

#endif // CATALYZER_WORKFLOW_WORKFLOW_H
