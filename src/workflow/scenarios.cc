#include "workflow/scenarios.h"

#include <algorithm>

namespace catalyzer::workflow {

WorkflowSpec
pipelineAnalytics(std::size_t fanout, std::size_t region_pages)
{
    fanout = std::max<std::size_t>(1, fanout);
    region_pages = std::max<std::size_t>(fanout, region_pages);
    const std::size_t shard_pages =
        std::max<std::size_t>(1, region_pages / fanout);

    WorkflowSpec spec;
    spec.name = "pipeline-analytics";
    spec.regions.push_back({"pipeline/input", region_pages});

    StageSpec ingest;
    ingest.name = "ingest";
    ingest.function = "wf-ingest";
    ingest.writes = {"pipeline/input"};
    spec.stages.push_back(ingest);

    StageSpec aggregate;
    aggregate.name = "aggregate";
    aggregate.function = "wf-aggregate";

    for (std::size_t k = 0; k < fanout; ++k) {
        const std::string part =
            "pipeline/part-" + std::to_string(k);
        spec.regions.push_back({part, shard_pages});
        StageSpec map;
        map.name = "transform-" + std::to_string(k);
        map.function = "wf-transform";
        map.after = {"ingest"};
        map.reads = {"pipeline/input"};
        map.readPages = shard_pages;
        map.writes = {part};
        spec.stages.push_back(map);
        aggregate.after.push_back(map.name);
        aggregate.reads.push_back(part);
    }

    spec.regions.push_back(
        {"pipeline/result",
         std::max<std::size_t>(1, region_pages / 4)});
    aggregate.writes = {"pipeline/result"};
    spec.stages.push_back(aggregate);
    return spec;
}

WorkflowSpec
shoppingCartSession(std::size_t updates, std::size_t region_pages,
                    const std::string &session)
{
    region_pages = std::max<std::size_t>(8, region_pages);
    const std::string cart = "cart/" + session;
    const std::size_t touched =
        std::max<std::size_t>(1, region_pages / 8);

    WorkflowSpec spec;
    spec.name = "shopping-cart";
    spec.regions.push_back({cart, region_pages});
    spec.regions.push_back({cart + "/receipt", touched});

    StageSpec get;
    get.name = "get";
    get.function = "wf-cart-get";
    get.reads = {cart};
    spec.stages.push_back(get);

    std::string prev = "get";
    for (std::size_t k = 0; k < updates; ++k) {
        StageSpec update;
        update.name = "update-" + std::to_string(k);
        update.function = "wf-cart-update";
        update.after = {prev};
        update.reads = {cart};
        update.writes = {cart};
        update.writePages = touched;
        prev = update.name;
        spec.stages.push_back(update);
    }

    StageSpec checkout;
    checkout.name = "checkout";
    checkout.function = "wf-checkout";
    checkout.after = {prev};
    checkout.reads = {cart};
    checkout.writes = {cart + "/receipt"};
    spec.stages.push_back(checkout);
    return spec;
}

std::vector<std::string>
scenarioFunctions()
{
    return {"wf-ingest",   "wf-transform",   "wf-aggregate",
            "wf-cart-get", "wf-cart-update", "wf-checkout"};
}

} // namespace catalyzer::workflow
