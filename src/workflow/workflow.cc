#include "workflow/workflow.h"

#include <algorithm>
#include <map>
#include <memory>

#include "mem/types.h"
#include "sandbox/machine.h"
#include "sim/logging.h"
#include "state/state_region.h"

namespace catalyzer::workflow {

namespace {

/** Stage index by name; fatal duplicates handled in validate(). */
std::map<std::string, std::size_t>
stageIndex(const WorkflowSpec &spec)
{
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < spec.stages.size(); ++i)
        index.emplace(spec.stages[i].name, i);
    return index;
}

/**
 * One attached region view of a running stage: the fault accounting,
 * the consumer address space layered over the region's shared base,
 * and the attachment handle. Declaration order matters — the space
 * must be destroyed before the observer it reports into.
 */
struct RegionView
{
    RegionView(sim::SimContext &ctx, mem::FrameStore &frames,
               std::string label)
        : faults(ctx.stats()), space(ctx, frames, std::move(label))
    {
        space.setFaultObserver(&faults);
    }

    state::RegionFaultStats faults;
    mem::AddressSpace space;
    state::RegionAttachment handle;
    mem::PageIndex va = 0;
    std::string region;
    bool write = false;
};

} // namespace

void
WorkflowSpec::validate() const
{
    if (stages.empty())
        sim::fatal("workflow %s: no stages", name.c_str());
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const StageSpec &stage = stages[i];
        if (stage.name.empty())
            sim::fatal("workflow %s: stage %zu unnamed", name.c_str(), i);
        if (stage.function.empty())
            sim::fatal("workflow %s: stage %s has no function",
                       name.c_str(), stage.name.c_str());
        if (!index.emplace(stage.name, i).second)
            sim::fatal("workflow %s: duplicate stage %s", name.c_str(),
                       stage.name.c_str());
    }
    for (const StageSpec &stage : stages) {
        for (const std::string &dep : stage.after) {
            if (dep == stage.name)
                sim::fatal("workflow %s: stage %s depends on itself",
                           name.c_str(), stage.name.c_str());
            if (index.count(dep) == 0)
                sim::fatal("workflow %s: stage %s depends on unknown "
                           "stage %s",
                           name.c_str(), stage.name.c_str(), dep.c_str());
        }
        for (const std::vector<std::string> *regs :
             {&stage.reads, &stage.writes}) {
            for (const std::string &region : *regs) {
                if (regionPages(region) == 0)
                    sim::fatal("workflow %s: stage %s references "
                               "undeclared region %s",
                               name.c_str(), stage.name.c_str(),
                               region.c_str());
            }
        }
    }
    topoOrder(); // cycle check
}

std::vector<std::size_t>
WorkflowSpec::topoOrder() const
{
    const std::map<std::string, std::size_t> index = stageIndex(*this);
    std::vector<std::size_t> indegree(stages.size(), 0);
    for (const StageSpec &stage : stages) {
        for (const std::string &dep : stage.after) {
            auto it = index.find(dep);
            if (it == index.end() || stages[it->second].name == stage.name)
                continue; // validate() reports these precisely
            ++indegree[index.at(stage.name)];
        }
    }
    std::vector<std::size_t> order;
    std::vector<bool> done(stages.size(), false);
    order.reserve(stages.size());
    // O(n^2) stable Kahn: n is tiny and the lowest ready index first
    // keeps replay order deterministic and independent of map layout.
    for (std::size_t step = 0; step < stages.size(); ++step) {
        std::size_t pick = stages.size();
        for (std::size_t i = 0; i < stages.size(); ++i) {
            if (!done[i] && indegree[i] == 0) {
                pick = i;
                break;
            }
        }
        if (pick == stages.size())
            sim::fatal("workflow %s: dependency cycle", name.c_str());
        done[pick] = true;
        order.push_back(pick);
        for (std::size_t i = 0; i < stages.size(); ++i) {
            if (done[i])
                continue;
            for (const std::string &dep : stages[i].after) {
                if (dep == stages[pick].name)
                    --indegree[i];
            }
        }
    }
    return order;
}

std::size_t
WorkflowSpec::regionPages(const std::string &region) const
{
    for (const RegionDecl &decl : regions) {
        if (decl.name == region)
            return decl.npages;
    }
    return 0;
}

WorkflowResult
WorkflowEngine::run(const WorkflowSpec &spec, trace::TraceContext trace)
{
    spec.validate();
    state::StateRegionStore &store = cluster_.stateRegions();
    const std::size_t machines = cluster_.machineCount();
    const std::map<std::string, std::size_t> index = stageIndex(spec);

    // One distributed trace id threads every hop; with no caller trace
    // the stages self-trace into the machines' always-on rings.
    trace::TraceId tid = trace.traceId();
    if (tid == 0)
        tid = trace::nextTraceId();

    // Replay is run-relative: machine m's image of workflow time t is
    // start[m] + t, the fleet-driver convention, so machines whose
    // clocks diverged before this run still line up.
    std::vector<sim::SimTime> start(machines);
    for (std::size_t m = 0; m < machines; ++m)
        start[m] = cluster_.machine(m).ctx().clock().now();

    WorkflowResult result;
    result.workflow = spec.name;
    result.traceId = tid;
    result.stages.resize(spec.stages.size());

    std::vector<sim::SimTime> finish(spec.stages.size());
    std::vector<std::size_t> placed(spec.stages.size(), 0);

    for (std::size_t i : spec.topoOrder()) {
        const StageSpec &stage = spec.stages[i];
        StageOutcome &out = result.stages[i];
        out.stage = stage.name;

        sim::SimTime ready;
        for (const std::string &dep : stage.after)
            ready = std::max(ready, finish[index.at(dep)]);
        out.readyAt = ready;

        std::size_t target;
        if (options_.localityAware) {
            // Region residency is the affinity signal: a machine
            // already holding the stage's regions saves their
            // transfer; a dependency's machine saves the hop.
            std::vector<std::size_t> affinity(machines, 0);
            for (const std::vector<std::string> *regs :
                 {&stage.reads, &stage.writes}) {
                for (const std::string &region : *regs) {
                    if (!store.exists(region))
                        continue;
                    const std::size_t bytes =
                        mem::bytesForPages(store.regionPages(region));
                    for (net::NodeId holder : store.holders(region)) {
                        if (holder < machines)
                            affinity[holder] += bytes;
                    }
                }
            }
            for (const std::string &dep : stage.after)
                affinity[placed[index.at(dep)]] += mem::kPageSize;
            target = cluster_.routeStage(stage.function, affinity);
        } else {
            target = cluster_.route(stage.function);
        }
        placed[i] = target;
        out.machine = target;

        sandbox::Machine &m = cluster_.machine(target);
        sim::SimContext &ctx = m.ctx();
        {
            const sim::SimTime at = start[target] + ready;
            if (ctx.clock().now() < at)
                ctx.clock().advance(at - ctx.clock().now());
        }

        trace::TraceContext stage_trace(m.tracer(), ctx.clock(), 0, tid);
        trace::ScopedSpan span(stage_trace, "chain-stage");
        span.attr("workflow", spec.name);
        span.attr("stage", stage.name);
        span.attr("machine", static_cast<std::int64_t>(target));

        // Chain hand-off: every dependency edge is one hop into this
        // stage. Same machine = warm in-memory queue; cross machine =
        // marshal/dispatch plus the fabric round trip.
        const sim::SimTime hops_begin = ctx.now();
        for (const std::string &dep : stage.after) {
            const std::size_t from = placed[index.at(dep)];
            if (from == target) {
                ctx.chargeCounted("chain.hops_local",
                                  ctx.costs().chainLocalHop);
                ++out.depsLocal;
                ++result.hopsLocal;
            } else {
                ctx.chargeCounted("chain.hops_remote",
                                  ctx.costs().chainRemoteDispatch);
                ctx.charge(cluster_.fabric().rtt(
                    static_cast<net::NodeId>(from),
                    static_cast<net::NodeId>(target), ctx.costs()));
                ++out.depsRemote;
                ++result.hopsRemote;
            }
        }
        out.hopLatency = ctx.now() - hops_begin;

        // Region plumbing. Reads attach (streaming the region over if
        // this machine holds no current replica) and fault the shared
        // layer before the invoke; writes COW after it — the function
        // computes, then its output pages publish as a new version.
        const std::int64_t transfers_before =
            ctx.stats().value("state.transfer_bytes");
        sim::SimTime state_latency;
        sim::SimTime attach_latency;
        std::vector<std::unique_ptr<RegionView>> views;
        auto viewFor = [&](const std::string &region,
                           bool will_write) -> RegionView & {
            for (auto &view : views) {
                if (view->region == region) {
                    view->write = view->write || will_write;
                    return *view;
                }
            }
            const sim::SimTime attach_begin = ctx.now();
            if (!store.exists(region))
                store.ensure(region, spec.regionPages(region),
                             static_cast<net::NodeId>(target));
            auto view = std::make_unique<RegionView>(
                ctx, m.frames(),
                "wf/" + spec.name + "/" + stage.name + "/" + region);
            view->region = region;
            view->write = will_write;
            view->handle =
                store.attach(region, static_cast<net::NodeId>(target),
                             span.context());
            attach_latency += ctx.now() - attach_begin;
            view->va = view->space.attachBase(view->handle.base());
            views.push_back(std::move(view));
            return *views.back();
        };

        {
            const sim::SimTime t0 = ctx.now();
            for (const std::string &region : stage.reads) {
                RegionView &view = viewFor(
                    region,
                    std::find(stage.writes.begin(), stage.writes.end(),
                              region) != stage.writes.end());
                const std::size_t npages = view.handle.npages();
                const std::size_t n =
                    stage.readPages > 0 ? std::min(stage.readPages, npages)
                                        : npages;
                view.space.touchRange(view.va, n, /*write=*/false);
            }
            state_latency += ctx.now() - t0;
        }

        out.record =
            cluster_.invokeOn(target, stage.function, span.context())
                .record;

        {
            const sim::SimTime t0 = ctx.now();
            for (const std::string &region : stage.writes) {
                RegionView &view = viewFor(region, true);
                const std::size_t npages = view.handle.npages();
                const std::size_t n =
                    stage.writePages > 0
                        ? std::min(stage.writePages, npages)
                        : npages;
                view.space.touchRange(view.va, n, /*write=*/true);
                store.publish(region, static_cast<net::NodeId>(target),
                              view.space.privatePages(), span.context());
            }
            state_latency += ctx.now() - t0;
        }

        for (auto &view : views) {
            result.cowFaults += view->faults.cowFaults();
            result.readFaults += view->faults.readFaults();
            store.detach(view->handle);
        }
        views.clear();

        out.stateLatency = state_latency;
        out.attachLatency = attach_latency;
        out.transferBytes = static_cast<std::size_t>(
            ctx.stats().value("state.transfer_bytes") - transfers_before);
        result.transferBytes += out.transferBytes;

        finish[i] = ctx.clock().now() - start[target];
        out.finishAt = finish[i];
        span.attr("tier", out.record.tierServed);
    }

    // Critical path: the latest stage finish, run-relative. Book the
    // end-to-end sample on the machine that completed the workflow.
    std::size_t last = 0;
    for (std::size_t i = 0; i < finish.size(); ++i) {
        if (finish[i] > finish[last])
            last = i;
    }
    result.e2e = finish[last];
    sim::SimContext &fctx = cluster_.machine(placed[last]).ctx();
    fctx.stats().incr("chain.workflows");
    fctx.stats().observeMs("chain.e2e_ms", result.e2e.toMs());
    fctx.stats().observeWindowed("win.chain.e2e_ms", fctx.now(),
                                 result.e2e.toMs());
    return result;
}

} // namespace catalyzer::workflow
