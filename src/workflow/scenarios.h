/**
 * @file
 * Canned workflow scenarios over the apps catalog's Workflow suite.
 *
 * Two shapes bracket the stateful-serverless design space: a pipeline
 * analytics DAG (one ingest fans out to parallel transforms that fan
 * back into an aggregate — wide, bulk regions, write-once) and a
 * shopping-cart session (a linear chain of small read-modify-write
 * updates against one session region — deep, small regions, version
 * churn). fig_chain sweeps both against DAG width/depth, placement
 * policy and region size.
 */

#ifndef CATALYZER_WORKFLOW_SCENARIOS_H
#define CATALYZER_WORKFLOW_SCENARIOS_H

#include "workflow/workflow.h"

namespace catalyzer::workflow {

/**
 * ingest -> fanout x transform -> aggregate. The ingest stage writes
 * the @p region_pages input region; each transform reads its shard and
 * writes a part region; the aggregate fans in over every part.
 */
WorkflowSpec pipelineAnalytics(std::size_t fanout = 4,
                               std::size_t region_pages = 256);

/**
 * get -> updates x update -> checkout against one session-state
 * region of @p region_pages pages ("cart/<session>"). Each update is
 * a read-modify-write publish; checkout reads the final version and
 * writes a receipt region.
 */
WorkflowSpec shoppingCartSession(std::size_t updates = 3,
                                 std::size_t region_pages = 64,
                                 const std::string &session = "s0");

/** Functions the two scenarios invoke (deploy before running). */
std::vector<std::string> scenarioFunctions();

} // namespace catalyzer::workflow

#endif // CATALYZER_WORKFLOW_SCENARIOS_H
