/**
 * @file
 * Application and language-runtime profiles.
 *
 * A profile captures the structure of one serverless function's
 * initialization and execution: how long its runtime (JVM, CPython, ...)
 * takes to boot, how many classes/modules it loads, how much memory it
 * touches, how many guest-kernel objects and I/O connections exist at the
 * func-entry point, and what one request costs. Startup latencies in the
 * benchmarks are *composed* from these structures plus the mechanisms —
 * they are not looked up.
 *
 * The catalog covers the paper's workloads: hello + one real application
 * for C, Java, Python, Ruby and Node.js (Fig. 11), the five DeathStar
 * microservices, the five Pillow image tasks, and the four E-commerce
 * functions (Fig. 13).
 */

#ifndef CATALYZER_APPS_APP_PROFILE_H
#define CATALYZER_APPS_APP_PROFILE_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "objgraph/object_graph.h"
#include "sim/time.h"

namespace catalyzer::apps {

/** Implementation language of the wrapped program. */
enum class Language { C, Cpp, Java, Python, Ruby, NodeJs };

const char *languageName(Language lang);

/** Workload families for grouping in the end-to-end benches. */
enum class Suite
{
    Micro,      ///< hello / real app pairs (Fig. 11)
    DeathStar,  ///< social-network microservices (Fig. 13a)
    Pillow,     ///< image processing (Fig. 13b)
    Ecommerce,  ///< Java business functions (Fig. 13c)
    Workflow,   ///< stateful DAG stage handlers (fig_chain)
};

/** Full description of one serverless function. */
struct AppProfile
{
    std::string name;        ///< stable id, e.g. "java-specjbb"
    std::string displayName; ///< paper label, e.g. "Java-SPECjbb"
    Language language = Language::C;
    Suite suite = Suite::Micro;

    //
    // Application initialization structure (dominates startup, Insight I).
    //
    /** Runtime core boot (JVM, CPython, V8, loader). */
    sim::SimTime runtimeBootCost;
    /** Classes / modules / shared objects loaded during init. */
    std::size_t modulesLoaded = 0;
    /** Per-module load+verify cost. */
    sim::SimTime perModuleCost;
    /** Application-specific setup after the runtime is up. */
    sim::SimTime appSetupCost;

    //
    // Memory shape at the func-entry point.
    //
    std::size_t binaryPages = 0;      ///< file-backed code + libraries
    std::size_t runtimeHeapPages = 0; ///< runtime-owned anonymous heap
    std::size_t appHeapPages = 0;     ///< application data

    //
    // Guest system state at the func-entry point.
    //
    std::size_t kernelObjects = 0;  ///< metadata graph size (Sec. 2.2)
    /**
     * Fraction of kernel objects carrying pointers. Smaller runtimes
     * have pointer-denser state (fewer bulk buffers), which is what
     * spreads Table 3's per-function metadata costs.
     */
    double kernelPointerDensity = 0.13;
    std::size_t ioConnections = 0;  ///< open files/sockets
    /** Fraction of connections deterministically used right after boot. */
    double ioStartupFraction = 0.25;
    /** Fraction of connections a typical request touches. */
    double ioRequestFraction = 0.10;
    int blockingThreads = 2;        ///< Go-runtime blocking threads

    //
    // Execution model (one request at the handler).
    //
    /** Pure compute time of the handler. */
    sim::SimTime execComputeCost;
    /** Fraction of total heap the handler touches (Insight II). */
    double execTouchFraction = 0.08;
    /** Fraction of touched pages that are written. */
    double execWriteFraction = 0.30;

    //
    // Rootfs shape (app layer on top of the base rootfs).
    //
    std::size_t rootfsFiles = 50;
    std::size_t rootfsBytes = 8u << 20;

    /** Total heap pages (runtime + app). */
    std::size_t
    heapPages() const
    {
        return runtimeHeapPages + appHeapPages;
    }

    /** Total application-initialization latency, excluding memory faults. */
    sim::SimTime
    initComputeCost() const
    {
        return runtimeBootCost +
               perModuleCost * static_cast<std::int64_t>(modulesLoaded) +
               appSetupCost;
    }

    /** Kernel-state shape for this app. */
    objgraph::GraphSpec
    graphSpec() const
    {
        objgraph::GraphSpec spec =
            objgraph::GraphSpec::scaledTo(kernelObjects);
        spec.pointerBearingFraction = kernelPointerDensity;
        return spec;
    }
};

/** Every profile in the catalog. */
const std::vector<AppProfile> &allApps();

/** Lookup by stable id; fatal on unknown names. */
const AppProfile &appByName(std::string_view name);

/** The ten Fig. 11 workloads, in the figure's order. */
std::vector<const AppProfile *> figure11Apps();

/** Suite accessors (Fig. 13). */
std::vector<const AppProfile *> appsInSuite(Suite suite);

/** The 14 end-to-end functions behind Fig. 1's CDF. */
std::vector<const AppProfile *> endToEndApps();

} // namespace catalyzer::apps

#endif // CATALYZER_APPS_APP_PROFILE_H
