#include "apps/app_profile.h"

#include <map>

#include "mem/types.h"
#include "sim/logging.h"

namespace catalyzer::apps {

using sim::SimTime;
using namespace sim::time_literals;
using mem::pagesForMiB;

const char *
languageName(Language lang)
{
    switch (lang) {
      case Language::C: return "C";
      case Language::Cpp: return "C++";
      case Language::Java: return "Java";
      case Language::Python: return "Python";
      case Language::Ruby: return "Ruby";
      case Language::NodeJs: return "Node.js";
    }
    return "?";
}

namespace {

/** Catalog builder: keeps each profile definition compact. */
AppProfile
make(std::string name, std::string display, Language lang, Suite suite,
     SimTime runtime_boot, std::size_t modules, SimTime per_module,
     SimTime setup, std::size_t binary_mib, std::size_t heap_mib,
     std::size_t kernel_objects, std::size_t io_conns, int blocking,
     SimTime exec_compute, double exec_touch)
{
    AppProfile p;
    p.name = std::move(name);
    p.displayName = std::move(display);
    p.language = lang;
    p.suite = suite;
    p.runtimeBootCost = runtime_boot;
    p.modulesLoaded = modules;
    p.perModuleCost = per_module;
    p.appSetupCost = setup;
    p.binaryPages = pagesForMiB(binary_mib);
    // Roughly a third of the heap belongs to the runtime itself.
    p.runtimeHeapPages = pagesForMiB(heap_mib) / 3;
    p.appHeapPages = pagesForMiB(heap_mib) - p.runtimeHeapPages;
    p.kernelObjects = kernel_objects;
    p.ioConnections = io_conns;
    p.blockingThreads = blocking;
    p.execComputeCost = exec_compute;
    p.execTouchFraction = exec_touch;
    p.rootfsFiles = 40 + modules / 4;
    p.rootfsBytes = (binary_mib + 2) << 20;
    return p;
}

/** Table 3 calibration: pointer density per application. */
void
setPointerDensity(std::vector<AppProfile> &apps)
{
    const std::pair<const char *, double> densities[] = {
        {"c-hello", 0.40},        {"c-nginx", 0.39},
        {"java-hello", 0.20},     {"java-specjbb", 0.13},
        {"python-hello", 0.30},   {"python-django", 0.18},
        {"ruby-hello", 0.32},     {"ruby-sinatra", 0.24},
        {"nodejs-hello", 0.26},   {"nodejs-web", 0.24},
    };
    for (auto &app : apps) {
        for (const auto &[name, density] : densities) {
            if (app.name == name)
                app.kernelPointerDensity = density;
        }
    }
}

std::vector<AppProfile>
buildCatalog()
{
    std::vector<AppProfile> apps;

    //
    // Fig. 11 micro pairs: hello + real application per language.
    //
    // Initialization costs are NATIVE process costs; each sandbox system
    // multiplies them by its app-init factor (CostModel).
    apps.push_back(make("c-hello", "C-hello", Language::C, Suite::Micro,
                        2_ms, 30, 0.05_ms, 0.3_ms, 2, 4, 1200, 8, 1,
                        0.5_ms, 0.10));
    apps.push_back(make("c-nginx", "C-Nginx", Language::C, Suite::Micro,
                        2.5_ms, 140, 0.05_ms, 1.5_ms, 6, 12, 3200, 40, 2,
                        1.2_ms, 0.12));
    apps.push_back(make("java-hello", "Java-hello", Language::Java,
                        Suite::Micro, 55_ms, 800, 0.042_ms, 2_ms, 20, 60,
                        9000, 30, 3, 1_ms, 0.06));
    apps.push_back(make("java-specjbb", "Java-SPECjbb", Language::Java,
                        Suite::Micro, 55_ms, 8200, 0.0432_ms, 12_ms, 28,
                        200, 37838, 120, 6, 30_ms, 0.05));
    apps.push_back(make("python-hello", "Python-hello", Language::Python,
                        Suite::Micro, 10_ms, 60, 0.11_ms, 0.5_ms, 12, 20,
                        2500, 20, 2, 0.8_ms, 0.08));
    apps.push_back(make("python-django", "Python-Django",
                        Language::Python, Suite::Micro, 10.5_ms, 1050,
                        0.125_ms, 9_ms, 16, 80, 12000, 80, 3, 4_ms, 0.07));
    apps.push_back(make("ruby-hello", "Ruby-hello", Language::Ruby,
                        Suite::Micro, 12.5_ms, 80, 0.14_ms, 0.7_ms, 10, 25,
                        2800, 25, 2, 0.9_ms, 0.08));
    apps.push_back(make("ruby-sinatra", "Ruby-Sinatra", Language::Ruby,
                        Suite::Micro, 13_ms, 690, 0.16_ms, 5.7_ms, 14, 90,
                        11000, 70, 3, 3.5_ms, 0.07));
    apps.push_back(make("nodejs-hello", "Node.js-hello", Language::NodeJs,
                        Suite::Micro, 20_ms, 120, 0.1_ms, 0.7_ms, 24, 40,
                        5000, 35, 2, 0.8_ms, 0.07));
    apps.push_back(make("nodejs-web", "Node.js-Web", Language::NodeJs,
                        Suite::Micro, 21_ms, 430, 0.115_ms, 4_ms, 26, 110,
                        9500, 60, 3, 2.5_ms, 0.06));

    //
    // DeathStar social-network microservices (C++, Fig. 13a).
    //
    struct Ds { const char *id; const char *label; SimTime exec; };
    const Ds deathstar[] = {
        {"ds-text", "Text", 1.3_ms},
        {"ds-uniqueid", "UniqueID", 0.6_ms},
        {"ds-media", "Media", 1.8_ms},
        {"ds-compose", "ComposePost", 2.2_ms},
        {"ds-timeline", "Timeline", 1.6_ms},
    };
    for (const auto &ds : deathstar) {
        apps.push_back(make(ds.id, ds.label, Language::Cpp,
                            Suite::DeathStar, 2_ms, 60, 0.06_ms, 0.9_ms, 4,
                            10, 2600, 18, 2, ds.exec, 0.15));
    }

    //
    // Pillow image-processing functions (Python, Fig. 13b).
    //
    struct Pw { const char *id; const char *label; SimTime exec; };
    const Pw pillow[] = {
        {"pillow-enhance", "Enhancement", 120_ms},
        {"pillow-filters", "Filters", 160_ms},
        {"pillow-rolling", "Rolling", 100_ms},
        {"pillow-splitmerge", "SplitMerge", 180_ms},
        {"pillow-transpose", "Transpose", 140_ms},
    };
    for (const auto &pw : pillow) {
        AppProfile p = make(pw.id, pw.label, Language::Python,
                            Suite::Pillow, 10_ms, 650, 0.135_ms, 9_ms, 18,
                            70, 8000, 45, 3, pw.exec, 0.35);
        p.execWriteFraction = 0.5; // image buffers are written
        apps.push_back(std::move(p));
    }

    //
    // E-commerce functions (Java, Fig. 13c).
    //
    struct Ec
    {
        const char *id;
        const char *label;
        std::size_t classes;
        SimTime setup;
        SimTime exec;
    };
    const Ec ecommerce[] = {
        {"ec-purchase", "Purchase", 5200, 14_ms, 2200_ms},
        {"ec-advertisement", "Advertisement", 4200, 9_ms, 520_ms},
        {"ec-report", "Report", 5800, 11_ms, 210_ms},
        {"ec-discount", "Discount", 4600, 10_ms, 420_ms},
    };
    for (const auto &ec : ecommerce) {
        apps.push_back(make(ec.id, ec.label, Language::Java,
                            Suite::Ecommerce, 55_ms, ec.classes, 0.0432_ms,
                            ec.setup, 24, 150, 25000, 90, 4, ec.exec,
                            0.12));
    }

    //
    // Stateful-workflow stage handlers (fig_chain). Execution is
    // deliberately light: the interesting cost of a chained stage is
    // the hop into it and the state-region plumbing around it, not the
    // handler body.
    //
    apps.push_back(make("wf-ingest", "WF-Ingest", Language::Python,
                        Suite::Workflow, 10_ms, 80, 0.1_ms, 0.6_ms, 12,
                        24, 6, 2, 1, 0.4_ms, 0.2));
    apps.push_back(make("wf-transform", "WF-Transform", Language::Cpp,
                        Suite::Workflow, 2_ms, 40, 0.05_ms, 0.4_ms, 6,
                        16, 4, 1, 1, 0.8_ms, 0.25));
    apps.push_back(make("wf-aggregate", "WF-Aggregate", Language::Python,
                        Suite::Workflow, 10_ms, 110, 0.1_ms, 0.9_ms, 14,
                        30, 6, 2, 1, 0.6_ms, 0.2));
    apps.push_back(make("wf-cart-get", "WF-Cart-Get", Language::NodeJs,
                        Suite::Workflow, 20_ms, 130, 0.1_ms, 0.5_ms, 22,
                        36, 5, 2, 1, 0.2_ms, 0.15));
    apps.push_back(make("wf-cart-update", "WF-Cart-Update",
                        Language::NodeJs, Suite::Workflow, 20_ms, 140,
                        0.1_ms, 0.6_ms, 22, 38, 5, 2, 1, 0.3_ms, 0.15));
    apps.push_back(make("wf-checkout", "WF-Checkout", Language::Java,
                        Suite::Workflow, 55_ms, 700, 0.042_ms, 3_ms, 20,
                        55, 8, 3, 2, 0.9_ms, 0.2));

    setPointerDensity(apps);
    return apps;
}

} // namespace

const std::vector<AppProfile> &
allApps()
{
    static const std::vector<AppProfile> catalog = buildCatalog();
    return catalog;
}

const AppProfile &
appByName(std::string_view name)
{
    for (const auto &app : allApps()) {
        if (app.name == name)
            return app;
    }
    sim::fatal("unknown application profile '%.*s'",
               static_cast<int>(name.size()), name.data());
}

std::vector<const AppProfile *>
figure11Apps()
{
    static const char *order[] = {
        "c-hello", "c-nginx", "java-hello", "java-specjbb",
        "python-hello", "python-django", "ruby-hello", "ruby-sinatra",
        "nodejs-hello", "nodejs-web",
    };
    std::vector<const AppProfile *> out;
    for (const char *name : order)
        out.push_back(&appByName(name));
    return out;
}

std::vector<const AppProfile *>
appsInSuite(Suite suite)
{
    std::vector<const AppProfile *> out;
    for (const auto &app : allApps()) {
        if (app.suite == suite)
            out.push_back(&app);
    }
    return out;
}

std::vector<const AppProfile *>
endToEndApps()
{
    std::vector<const AppProfile *> out;
    for (Suite suite : {Suite::DeathStar, Suite::Pillow, Suite::Ecommerce}) {
        for (const auto *app : appsInSuite(suite))
            out.push_back(app);
    }
    return out;
}

} // namespace catalyzer::apps
