#include "trace/trace.h"

#include <algorithm>
#include <atomic>

namespace catalyzer::trace {

TraceId
nextTraceId()
{
    // Process-wide so trace ids are unique across every machine in a
    // simulated cluster; single-threaded workloads see a deterministic
    // 1, 2, 3, ... sequence.
    static std::atomic<TraceId> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

SpanId
Tracer::begin(std::string name, sim::SimTime start, SpanId parent,
              TraceId trace_id)
{
    std::lock_guard<std::mutex> lock(mu_);
    Span span;
    span.id = next_id_++;
    span.parent = parent;
    span.traceId = trace_id;
    span.machine = machine_;
    span.name = std::move(name);
    span.start = start;
    spans_.push_back(std::move(span));
    const SpanId id = spans_.back().id;
    enforceCapacityLocked();
    return id;
}

void
Tracer::end(SpanId id, sim::SimTime end)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
        if (it->id != id)
            continue;
        if (!it->finished) {
            it->end = end < it->start ? it->start : end;
            it->finished = true;
        }
        return;
    }
}

void
Tracer::attribute(SpanId id, std::string key, std::string value)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
        if (it->id != id)
            continue;
        it->attributes.emplace_back(std::move(key), std::move(value));
        return;
    }
}

std::vector<Span>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {spans_.begin(), spans_.end()};
}

std::vector<Span>
Tracer::recent(std::size_t n) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t take = std::min(n, spans_.size());
    return {spans_.end() - static_cast<std::ptrdiff_t>(take),
            spans_.end()};
}

std::size_t
Tracer::spanCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
}

void
Tracer::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    enforceCapacityLocked();
}

std::size_t
Tracer::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

std::uint64_t
Tracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

void
Tracer::setMachine(std::uint32_t machine)
{
    std::lock_guard<std::mutex> lock(mu_);
    machine_ = machine;
}

std::uint32_t
Tracer::machine() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return machine_;
}

void
Tracer::enforceCapacityLocked()
{
    if (capacity_ == 0)
        return;
    while (spans_.size() > capacity_) {
        spans_.pop_front();
        ++dropped_;
    }
}

SpanId
TraceContext::completedSpan(const std::string &name,
                            sim::SimTime duration) const
{
    if (!enabled())
        return 0;
    const sim::SimTime stop = now();
    const SpanId id =
        tracer_->begin(name, stop - duration, parent_, trace_id_);
    tracer_->end(id, stop);
    return id;
}

ScopedSpan::ScopedSpan(TraceContext ctx, std::string name) : ctx_(ctx)
{
    if (!ctx_.enabled())
        return;
    // A root span of a not-yet-stitched context starts a new
    // distributed trace; children inherit the id through context().
    if (ctx_.traceId() == 0)
        ctx_ = ctx_.withTrace(nextTraceId());
    id_ = ctx_.tracer()->begin(std::move(name), ctx_.now(), ctx_.parent(),
                               ctx_.traceId());
}

ScopedSpan::~ScopedSpan()
{
    finish();
}

void
ScopedSpan::attr(const std::string &key, std::string value)
{
    if (id_ != 0)
        ctx_.tracer()->attribute(id_, key, std::move(value));
}

void
ScopedSpan::attr(const std::string &key, std::int64_t value)
{
    attr(key, std::to_string(value));
}

void
ScopedSpan::finish()
{
    if (id_ == 0 || finished_)
        return;
    finished_ = true;
    ctx_.tracer()->end(id_, ctx_.now());
}

} // namespace catalyzer::trace
