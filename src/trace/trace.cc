#include "trace/trace.h"

namespace catalyzer::trace {

SpanId
Tracer::begin(std::string name, sim::SimTime start, SpanId parent)
{
    std::lock_guard<std::mutex> lock(mu_);
    Span span;
    span.id = next_id_++;
    span.parent = parent;
    span.name = std::move(name);
    span.start = start;
    spans_.push_back(std::move(span));
    return spans_.back().id;
}

void
Tracer::end(SpanId id, sim::SimTime end)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
        if (it->id != id)
            continue;
        if (!it->finished) {
            it->end = end < it->start ? it->start : end;
            it->finished = true;
        }
        return;
    }
}

void
Tracer::attribute(SpanId id, std::string key, std::string value)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
        if (it->id != id)
            continue;
        it->attributes.emplace_back(std::move(key), std::move(value));
        return;
    }
}

std::vector<Span>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::size_t
Tracer::spanCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
}

SpanId
TraceContext::completedSpan(const std::string &name,
                            sim::SimTime duration) const
{
    if (!enabled())
        return 0;
    const sim::SimTime stop = now();
    const SpanId id = tracer_->begin(name, stop - duration, parent_);
    tracer_->end(id, stop);
    return id;
}

ScopedSpan::ScopedSpan(TraceContext ctx, std::string name) : ctx_(ctx)
{
    if (ctx_.enabled())
        id_ = ctx_.tracer()->begin(std::move(name), ctx_.now(),
                                   ctx_.parent());
}

ScopedSpan::~ScopedSpan()
{
    finish();
}

void
ScopedSpan::attr(const std::string &key, std::string value)
{
    if (id_ != 0)
        ctx_.tracer()->attribute(id_, key, std::move(value));
}

void
ScopedSpan::attr(const std::string &key, std::int64_t value)
{
    attr(key, std::to_string(value));
}

void
ScopedSpan::finish()
{
    if (id_ == 0 || finished_)
        return;
    finished_ = true;
    ctx_.tracer()->end(id_, ctx_.now());
}

} // namespace catalyzer::trace
