/**
 * @file
 * Span-based tracing on simulated time.
 *
 * A Span is a named interval of virtual time with an optional parent and
 * key/value attributes; a Tracer buffers finished and in-flight spans
 * thread-safely. TraceContext is the small value handle the boot
 * pipelines thread from request arrival down to function entry: it names
 * the tracer, the virtual clock supplying timestamps, and the span that
 * should adopt whatever the callee records. A default-constructed
 * TraceContext is disabled and turns every operation into a no-op, so
 * instrumented code paths cost nothing when nobody is tracing.
 *
 * Exporters (Chrome trace_event JSON and a hierarchical text dump) live
 * in trace/export.h.
 */

#ifndef CATALYZER_TRACE_TRACE_H
#define CATALYZER_TRACE_TRACE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/clock.h"
#include "sim/time.h"

namespace catalyzer::trace {

/** Identifier of one span; 0 means "no span" (the forest root). */
using SpanId = std::uint64_t;

/** One named interval of virtual time. */
struct Span
{
    SpanId id = 0;
    /** Enclosing span, or 0 for a root. */
    SpanId parent = 0;
    std::string name;
    sim::SimTime start;
    /** Meaningful only when finished is true. */
    sim::SimTime end;
    bool finished = false;
    std::vector<std::pair<std::string, std::string>> attributes;

    sim::SimTime
    duration() const
    {
        return finished ? end - start : sim::SimTime::zero();
    }
};

/**
 * Buffer of spans for one trace. All members are safe to call from
 * multiple threads; span ids are handed out monotonically from 1.
 *
 * Finish order is unconstrained: a parent may finish before its
 * children (the child keeps recording into the buffer), and finishing
 * an already-finished span keeps the first end time.
 */
class Tracer
{
  public:
    /** Open a span starting at @p start under @p parent (0 = root). */
    SpanId begin(std::string name, sim::SimTime start, SpanId parent = 0);

    /** Close a span at @p end. Unknown ids and double-ends are no-ops. */
    void end(SpanId id, sim::SimTime end);

    /** Attach (append) a key/value attribute to an open or closed span. */
    void attribute(SpanId id, std::string key, std::string value);

    /** Copy of the buffered spans, in creation (= start-time) order. */
    std::vector<Span> snapshot() const;

    std::size_t spanCount() const;

    /** Drop all buffered spans; ids keep increasing. */
    void clear();

  private:
    mutable std::mutex mu_;
    std::vector<Span> spans_;
    SpanId next_id_ = 1;
};

/**
 * The handle threaded through instrumented code: tracer + clock +
 * current parent span. Copyable and cheap; pass by value.
 */
class TraceContext
{
  public:
    /** Disabled context: every operation is a no-op. */
    TraceContext() = default;

    TraceContext(Tracer &tracer, const sim::VirtualClock &clock,
                 SpanId parent = 0)
        : tracer_(&tracer), clock_(&clock), parent_(parent)
    {}

    bool enabled() const { return tracer_ != nullptr; }

    Tracer *tracer() const { return tracer_; }
    SpanId parent() const { return parent_; }

    /** Current virtual time (zero when disabled). */
    sim::SimTime
    now() const
    {
        return clock_ ? clock_->now() : sim::SimTime::zero();
    }

    /** The same tracer/clock with a different parent span. */
    TraceContext
    withParent(SpanId parent) const
    {
        TraceContext child = *this;
        child.parent_ = parent;
        return child;
    }

    /**
     * Record an already-elapsed interval [now - duration, now] as a
     * completed child span (retroactive stage measurement; this is what
     * BootReport uses).
     */
    SpanId completedSpan(const std::string &name,
                         sim::SimTime duration) const;

  private:
    Tracer *tracer_ = nullptr;
    const sim::VirtualClock *clock_ = nullptr;
    SpanId parent_ = 0;
};

/**
 * RAII span: opens on construction under the context's parent, closes
 * at destruction (or an earlier finish()) at the clock's then-current
 * time. context() yields the TraceContext to hand to callees so their
 * spans nest under this one.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceContext ctx, std::string name);

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan();

    /** Attach an attribute to this span. */
    void attr(const std::string &key, std::string value);
    void attr(const std::string &key, std::int64_t value);

    /** Close the span now; later finishes (and the destructor) no-op. */
    void finish();

    /** Context for callees: same tracer/clock, parent = this span. */
    TraceContext
    context() const
    {
        return ctx_.withParent(id_);
    }

    SpanId id() const { return id_; }

  private:
    TraceContext ctx_;
    SpanId id_ = 0;
    bool finished_ = false;
};

} // namespace catalyzer::trace

#endif // CATALYZER_TRACE_TRACE_H
