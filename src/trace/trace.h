/**
 * @file
 * Span-based tracing on simulated time.
 *
 * A Span is a named interval of virtual time with an optional parent and
 * key/value attributes; a Tracer buffers finished and in-flight spans
 * thread-safely. TraceContext is the small value handle the boot
 * pipelines thread from request arrival down to function entry: it names
 * the tracer, the virtual clock supplying timestamps, and the span that
 * should adopt whatever the callee records. A default-constructed
 * TraceContext is disabled and turns every operation into a no-op, so
 * instrumented code paths cost nothing when nobody is tracing.
 *
 * Exporters (Chrome trace_event JSON and a hierarchical text dump) live
 * in trace/export.h.
 */

#ifndef CATALYZER_TRACE_TRACE_H
#define CATALYZER_TRACE_TRACE_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/clock.h"
#include "sim/time.h"

namespace catalyzer::trace {

/** Identifier of one span; 0 means "no span" (the forest root). */
using SpanId = std::uint64_t;

/**
 * Identifier of one distributed request: every span a request creates —
 * on whichever machine it runs — carries the same trace id, so a
 * remote-sfork boot's lender and borrower spans stitch back into one
 * timeline. 0 means "not part of a stitched trace" (bare Tracer::begin
 * callers and pre-fleet code paths).
 */
using TraceId = std::uint64_t;

/** Allocate a fresh process-unique trace id (monotonic from 1). */
TraceId nextTraceId();

/** One named interval of virtual time. */
struct Span
{
    SpanId id = 0;
    /** Enclosing span, or 0 for a root. */
    SpanId parent = 0;
    /** Distributed request this span belongs to; 0 = unstitched. */
    TraceId traceId = 0;
    /** Machine (cluster node id) that recorded the span. */
    std::uint32_t machine = 0;
    std::string name;
    sim::SimTime start;
    /** Meaningful only when finished is true. */
    sim::SimTime end;
    bool finished = false;
    std::vector<std::pair<std::string, std::string>> attributes;

    sim::SimTime
    duration() const
    {
        return finished ? end - start : sim::SimTime::zero();
    }
};

/**
 * Buffer of spans for one trace. All members are safe to call from
 * multiple threads; span ids are handed out monotonically from 1.
 *
 * Finish order is unconstrained: a parent may finish before its
 * children (the child keeps recording into the buffer), and finishing
 * an already-finished span keeps the first end time.
 *
 * By default the buffer grows without bound (benches snapshot and clear
 * between workloads); setCapacity() turns it into a ring of the most
 * recent spans — the always-on per-machine mode, where the flight
 * recorder wants "what just happened", not full history. Eviction is
 * oldest-first and droppedCount() says how many fell off.
 */
class Tracer
{
  public:
    /** Open a span starting at @p start under @p parent (0 = root),
     *  tagged with @p trace_id and this tracer's machine id. */
    SpanId begin(std::string name, sim::SimTime start, SpanId parent = 0,
                 TraceId trace_id = 0);

    /** Close a span at @p end. Unknown ids and double-ends are no-ops. */
    void end(SpanId id, sim::SimTime end);

    /** Attach (append) a key/value attribute to an open or closed span. */
    void attribute(SpanId id, std::string key, std::string value);

    /** Copy of the buffered spans, in creation (= start-time) order. */
    std::vector<Span> snapshot() const;

    /** Copy of the most recent @p n buffered spans (creation order). */
    std::vector<Span> recent(std::size_t n) const;

    std::size_t spanCount() const;

    /** Drop all buffered spans; ids keep increasing. */
    void clear();

    /**
     * Bound the buffer to the @p capacity most recent spans (0 =
     * unbounded). An over-full buffer evicts oldest-first immediately.
     */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const;

    /** Spans evicted by the capacity ring so far. */
    std::uint64_t droppedCount() const;

    /** Machine (cluster node) id stamped on every span recorded here. */
    void setMachine(std::uint32_t machine);
    std::uint32_t machine() const;

  private:
    /** Evict oldest spans until the buffer fits capacity_ (mu_ held). */
    void enforceCapacityLocked();

    mutable std::mutex mu_;
    std::deque<Span> spans_;
    SpanId next_id_ = 1;
    std::size_t capacity_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint32_t machine_ = 0;
};

/**
 * The handle threaded through instrumented code: tracer + clock +
 * current parent span + the distributed trace id the request belongs
 * to. Copyable and cheap; pass by value.
 *
 * A context created without a trace id gets one lazily: the first
 * ScopedSpan opened on it allocates a fresh cluster-unique id, and
 * every child context (context()/withParent()) inherits it — including
 * contexts rebuilt against a *different* machine's tracer via
 * withTracer(), which is how one request's spans stitch across the
 * remote-sfork handshake, RemotePager pulls and P2P image fetches.
 */
class TraceContext
{
  public:
    /** Disabled context: every operation is a no-op. */
    TraceContext() = default;

    TraceContext(Tracer &tracer, const sim::VirtualClock &clock,
                 SpanId parent = 0, TraceId trace_id = 0)
        : tracer_(&tracer), clock_(&clock), parent_(parent),
          trace_id_(trace_id)
    {}

    bool enabled() const { return tracer_ != nullptr; }

    Tracer *tracer() const { return tracer_; }
    SpanId parent() const { return parent_; }
    TraceId traceId() const { return trace_id_; }

    /** Current virtual time (zero when disabled). */
    sim::SimTime
    now() const
    {
        return clock_ ? clock_->now() : sim::SimTime::zero();
    }

    /** The same tracer/clock with a different parent span. */
    TraceContext
    withParent(SpanId parent) const
    {
        TraceContext child = *this;
        child.parent_ = parent;
        return child;
    }

    /** The same tracer/clock/parent carrying @p trace_id. */
    TraceContext
    withTrace(TraceId trace_id) const
    {
        TraceContext child = *this;
        child.trace_id_ = trace_id;
        return child;
    }

    /**
     * The same trace id re-homed on another machine's tracer and clock,
     * parent reset to root there (the caller's span ids are meaningless
     * in the peer's buffer). This is the cross-machine hop.
     */
    TraceContext
    withTracer(Tracer &tracer, const sim::VirtualClock &clock) const
    {
        return TraceContext(tracer, clock, 0, trace_id_);
    }

    /**
     * Record an already-elapsed interval [now - duration, now] as a
     * completed child span (retroactive stage measurement; this is what
     * BootReport uses).
     */
    SpanId completedSpan(const std::string &name,
                         sim::SimTime duration) const;

  private:
    Tracer *tracer_ = nullptr;
    const sim::VirtualClock *clock_ = nullptr;
    SpanId parent_ = 0;
    TraceId trace_id_ = 0;
};

/**
 * RAII span: opens on construction under the context's parent, closes
 * at destruction (or an earlier finish()) at the clock's then-current
 * time. context() yields the TraceContext to hand to callees so their
 * spans nest under this one.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceContext ctx, std::string name);

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan();

    /** Attach an attribute to this span. */
    void attr(const std::string &key, std::string value);
    void attr(const std::string &key, std::int64_t value);

    /** Close the span now; later finishes (and the destructor) no-op. */
    void finish();

    /** Context for callees: same tracer/clock, parent = this span. */
    TraceContext
    context() const
    {
        return ctx_.withParent(id_);
    }

    SpanId id() const { return id_; }

  private:
    TraceContext ctx_;
    SpanId id_ = 0;
    bool finished_ = false;
};

} // namespace catalyzer::trace

#endif // CATALYZER_TRACE_TRACE_H
