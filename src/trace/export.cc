#include "trace/export.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

#include "sim/json.h"

namespace catalyzer::trace {

std::string
jsonEscape(const std::string &s)
{
    return sim::jsonEscape(s);
}

void
exportChromeTrace(const std::vector<Span> &spans, std::ostream &os)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    // One labelled process lane per machine that recorded spans, so the
    // viewer shows "machine N" rows instead of anonymous pids.
    std::set<std::uint32_t> machines;
    for (const Span &span : spans)
        machines.insert(span.machine);
    for (std::uint32_t machine : machines) {
        os << (first ? "\n" : ",\n")
           << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << machine
           << ",\"tid\":0,\"args\":{\"name\":\"machine " << machine
           << "\"}}";
        first = false;
    }
    for (const Span &span : spans) {
        if (!first)
            os << ",";
        first = false;
        const double ts = span.start.toUs();
        const double dur = span.finished ? span.duration().toUs() : 0.0;
        os << "\n{\"name\":\"" << jsonEscape(span.name)
           << "\",\"cat\":\"boot\",\"ph\":\"X\",\"pid\":" << span.machine
           << ",\"tid\":" << span.traceId << ",\"ts\":" << ts
           << ",\"dur\":" << dur << ",\"args\":{";
        os << "\"span_id\":\"" << span.id << "\",\"parent_id\":\""
           << span.parent << "\",\"trace_id\":\"" << span.traceId
           << "\"";
        if (!span.finished)
            os << ",\"unfinished\":\"true\"";
        for (const auto &[key, value] : span.attributes)
            os << ",\"" << jsonEscape(key) << "\":\"" << jsonEscape(value)
               << "\"";
        os << "}}";
    }
    os << "\n]}\n";
}

void
exportChromeTrace(const Tracer &tracer, std::ostream &os)
{
    exportChromeTrace(tracer.snapshot(), os);
}

namespace {

void
printTree(std::ostream &os, const std::vector<Span> &spans,
          const std::map<SpanId, std::vector<std::size_t>> &children,
          std::size_t index, int depth)
{
    const Span &span = spans[index];
    for (int i = 0; i < depth; ++i)
        os << "  ";
    os << span.name << "  [" << span.start.toString() << " +"
       << span.duration().toString() << "]";
    if (!span.finished)
        os << " (unfinished)";
    for (const auto &[key, value] : span.attributes)
        os << " " << key << "=" << value;
    os << "\n";
    auto it = children.find(span.id);
    if (it == children.end())
        return;
    for (std::size_t child : it->second)
        printTree(os, spans, children, child, depth + 1);
}

} // namespace

void
exportText(const Tracer &tracer, std::ostream &os)
{
    const std::vector<Span> spans = tracer.snapshot();

    // Index children (and orphans whose parent left the buffer) per
    // parent, ordered by start time.
    std::map<SpanId, std::vector<std::size_t>> children;
    std::map<SpanId, std::size_t> by_id;
    for (std::size_t i = 0; i < spans.size(); ++i)
        by_id[spans[i].id] = i;
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (spans[i].parent != 0 && by_id.count(spans[i].parent))
            children[spans[i].parent].push_back(i);
        else
            roots.push_back(i);
    }
    auto by_start = [&spans](std::size_t a, std::size_t b) {
        if (spans[a].start != spans[b].start)
            return spans[a].start < spans[b].start;
        return spans[a].id < spans[b].id;
    };
    std::sort(roots.begin(), roots.end(), by_start);
    for (auto &[id, list] : children)
        std::sort(list.begin(), list.end(), by_start);

    os << "trace: " << spans.size() << " spans, " << roots.size()
       << " roots\n";
    for (std::size_t root : roots)
        printTree(os, spans, children, root, 1);
}

} // namespace catalyzer::trace
