/**
 * @file
 * Trace exporters: Chrome trace_event JSON (open in chrome://tracing or
 * https://ui.perfetto.dev) and a hierarchical plain-text dump.
 */

#ifndef CATALYZER_TRACE_EXPORT_H
#define CATALYZER_TRACE_EXPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace catalyzer::trace {

/** JSON-escape @p s for use inside a double-quoted string literal.
 *  (Alias of sim::jsonEscape, kept for existing callers.) */
std::string jsonEscape(const std::string &s);

/**
 * Write the tracer's spans as a Chrome trace_event JSON object
 * ({"traceEvents": [...]}): one "ph":"X" complete event per finished
 * span with ts/dur in virtual microseconds and attributes under "args".
 * Each event's pid is the span's machine id and its tid is the span's
 * distributed trace id (one request = one lane), so cross-machine spans
 * line up instead of collapsing onto a hardcoded pid 1 / tid 1; a
 * "process_name" metadata event labels each machine lane. Unfinished
 * spans are exported with zero duration and an "unfinished":"true" arg
 * so they remain visible.
 */
void exportChromeTrace(const Tracer &tracer, std::ostream &os);

/**
 * Same format for an already-merged span list (the fleet exporter in
 * src/obs/ concatenates per-machine snapshots and calls this).
 */
void exportChromeTrace(const std::vector<Span> &spans, std::ostream &os);

/**
 * Write the span forest as an indented text tree (children ordered by
 * start time), one line per span: name, start, duration, attributes.
 */
void exportText(const Tracer &tracer, std::ostream &os);

} // namespace catalyzer::trace

#endif // CATALYZER_TRACE_EXPORT_H
