/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic element of the simulation (tail-latency bursts, working
 * set sampling, request arrival jitter) draws from a seeded Rng so that runs
 * are reproducible. No component may use std::random_device or wall time.
 */

#ifndef CATALYZER_SIM_RNG_H
#define CATALYZER_SIM_RNG_H

#include <cstdint>

namespace catalyzer::sim {

/**
 * xoshiro256** generator with SplitMix64 seeding.
 *
 * Small, fast and high quality; good enough for latency-model sampling.
 */
class Rng
{
  public:
    /** Seed deterministically; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) with rejection to avoid modulo bias. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Sample an exponential distribution with the given mean.
     * Used for request inter-arrival times.
     */
    double exponential(double mean);

    /**
     * Sample a bounded Pareto-ish heavy tail in [lo, hi].
     * Used for syscall tail-latency bursts (e.g. dup fdtable expansion).
     */
    double heavyTail(double lo, double hi, double alpha = 1.5);

    /** Fork an independent stream (for per-sandbox determinism). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_RNG_H
