/**
 * @file
 * Counters, latency series and the unified metrics registry for
 * experiment reporting.
 */

#ifndef CATALYZER_SIM_STATS_H
#define CATALYZER_SIM_STATS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace catalyzer::sim {

/**
 * A series of latency samples with percentile and CDF queries.
 * Samples are stored in milliseconds.
 *
 * On an empty series every statistic (mean/min/max/percentile/cdfAt)
 * returns quiet NaN — there is no meaningful value to report, and NaN
 * propagates visibly instead of faking a 0 ms latency or an empty CDF.
 * JSON snapshots render non-finite values as null.
 */
class LatencySeries
{
  public:
    /** Record one sample. */
    void
    add(SimTime t)
    {
        samples_.push_back(t.toMs());
        sorted_valid_ = false;
    }

    void
    addMs(double ms)
    {
        samples_.push_back(ms);
        sorted_valid_ = false;
    }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; NaN if the series is empty. */
    double mean() const;
    /** Smallest sample; NaN if the series is empty. */
    double min() const;
    /** Largest sample; NaN if the series is empty. */
    double max() const;

    /**
     * p in [0, 100] (out-of-range panics); linear interpolation between
     * order statistics. NaN if the series is empty.
     */
    double percentile(double p) const;

    /** Fraction of samples <= x (empirical CDF); NaN if empty. */
    double cdfAt(double x) const;

    /** Sorted copy of the samples. */
    std::vector<double> sorted() const;

    const std::vector<double> &raw() const { return samples_; }

    void
    clear()
    {
        samples_.clear();
        sorted_cache_.clear();
        sorted_valid_ = false;
    }

  private:
    /** Sorted view of samples_, rebuilt lazily after mutations. */
    const std::vector<double> &sortedCache() const;

    std::vector<double> samples_;
    /**
     * Cache for percentile/cdfAt/sorted: reporting code asks for p50,
     * p90 and p99 back to back, and re-sorting the series for each
     * query is quadratic-ish in practice. Invalidated by any add.
     */
    mutable std::vector<double> sorted_cache_;
    mutable bool sorted_valid_ = false;
};

/**
 * Fixed-window time series over virtual time: samples land in the
 * window containing their timestamp (window i covers
 * [i*length, (i+1)*length)), each window backed by a LatencySeries so
 * per-window percentiles (the p99-over-time an SLO burn-rate needs) are
 * one call away. Windows are kept sparse and in first-touch order —
 * virtual clocks only move forward, so first-touch order is time order
 * for any single machine, and merge() re-sorts when fleets interleave.
 */
class WindowedHistogram
{
  public:
    explicit WindowedHistogram(SimTime window_length =
                                   SimTime::milliseconds(250.0))
        : window_length_(window_length)
    {}

    /** One window's samples. */
    struct Window
    {
        /** Window index: start time = index * windowLength(). */
        std::int64_t index = 0;
        LatencySeries series;
        double sum = 0.0;
    };

    /** Record @p value (unit chosen by the caller) at virtual @p now. */
    void record(SimTime now, double value);

    SimTime windowLength() const { return window_length_; }

    /**
     * Declare @p origin as window 0's start: samples are bucketed by
     * origin-relative time, so per-machine series whose virtual clocks
     * started at different absolute instants (priming, deployment)
     * still line up window-for-window when merged. Must be called
     * before any sample lands. An aligned series only merges with
     * other aligned series (and vice versa) — see merge().
     */
    void setOrigin(SimTime origin);

    /** True once setOrigin() declared a measurement origin. */
    bool originAligned() const { return origin_set_; }

    /** The declared origin (zero when unaligned). */
    SimTime origin() const { return origin_; }

    /**
     * Start of window @p index, relative to the origin (equals the
     * virtual-clock start for unaligned series).
     */
    SimTime
    windowStart(std::int64_t index) const
    {
        return SimTime::nanoseconds(index * window_length_.toNs());
    }

    /** Windows that received at least one sample, in time order. */
    const std::vector<Window> &windows() const;

    std::size_t totalCount() const { return total_count_; }
    bool empty() const { return windows_.empty(); }

    /**
     * Fold @p other into this series (fleet aggregation). Window
     * lengths must match and both sides must agree on origin
     * alignment (panic otherwise — a silent merge would misalign the
     * win.* series across machines); an empty destination adopts the
     * source's length and alignment. Two aligned series merge by
     * origin-relative index even when their absolute origins differ —
     * that is the point of alignment.
     */
    void merge(const WindowedHistogram &other);

    void clear();

  private:
    std::int64_t indexFor(SimTime now) const;

    SimTime window_length_;
    /** Window 0 start when origin_set_; see setOrigin(). */
    SimTime origin_;
    bool origin_set_ = false;
    /** Sparse, kept sorted by index lazily (see windows()). */
    mutable std::vector<Window> windows_;
    mutable bool sorted_valid_ = true;
    std::size_t total_count_ = 0;
};

/**
 * Unified metrics registry: named monotonically increasing counters
 * (page faults, syscalls redone, objects deserialized, ...) plus named
 * histogram metrics backed by LatencySeries (boot latency per system,
 * end-to-end invocation latency, ...). Cheap enough to leave enabled
 * everywhere.
 *
 * Each SimContext owns one registry (its machine's metrics);
 * StatRegistry::global() is the process-wide registry for aggregating
 * across machines or from code with no SimContext at hand.
 */
class StatRegistry
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if needed. */
    void incr(const std::string &name, std::int64_t delta = 1);

    /** Current value, or zero if never touched. */
    std::int64_t value(const std::string &name) const;

    /** Record one sample into histogram @p name, creating it if needed. */
    void observe(const std::string &name, SimTime t);
    void observeMs(const std::string &name, double ms);

    /** Get-or-create histogram @p name. */
    LatencySeries &histogram(const std::string &name);

    /** Look up a histogram; nullptr if never observed. */
    const LatencySeries *findHistogram(const std::string &name) const;

    /**
     * Record one sample into the fixed-window time series @p name at
     * virtual @p now (creating the series with the registry's current
     * default window length). Windowed series are a separate namespace
     * from the lifetime histograms: writeJson() never includes them, so
     * turning time-series collection on cannot change an existing
     * metrics snapshot byte for byte.
     */
    void observeWindowed(const std::string &name, SimTime now,
                         double value);

    /** Get-or-create windowed series @p name. */
    WindowedHistogram &windowed(const std::string &name);

    /** Look up a windowed series; nullptr if never observed. */
    const WindowedHistogram *findWindowed(const std::string &name) const;

    /** All windowed series, sorted by name. */
    const std::map<std::string, WindowedHistogram> &windowedSeries() const
    {
        return windowed_;
    }

    /** Window length used for windowed series created after this call. */
    void setWindowLength(SimTime length) { window_length_ = length; }
    SimTime windowLength() const { return window_length_; }

    /**
     * Align all windowed series created after this call to @p origin
     * (see WindowedHistogram::setOrigin). Existing windowed series are
     * dropped: the origin marks the start of the measurement frame,
     * and pre-origin samples (priming, deployment) belong to no
     * window of it.
     */
    void setWindowOrigin(SimTime origin);

    /** True once setWindowOrigin() declared a measurement origin. */
    bool windowOriginAligned() const { return window_origin_set_; }

    /** Reset every counter and histogram. */
    void clear();

    /** Snapshot of all counters, sorted by name. */
    const std::map<std::string, std::int64_t> &all() const
    {
        return counters_;
    }

    /** All histograms, sorted by name. */
    const std::map<std::string, LatencySeries> &histograms() const
    {
        return series_;
    }

    /**
     * JSON snapshot: {"counters": {name: value, ...}, "histograms":
     * {name: {count, mean, min, max, p50, p90, p99}, ...}} with
     * histogram samples in milliseconds. Non-finite statistics (empty
     * histograms) are emitted as null to keep the document valid JSON.
     */
    void writeJson(std::ostream &os) const;

    /**
     * JSON export of the windowed time series: {"default_window_ms": W,
     * "series": {name: {"window_ms": W, "windows": [{"index", "start_ms",
     * "count", "sum", "mean", "p50", "p99", "p999", "max"}, ...]}, ...}}.
     * Windows are in time order; empty windows are omitted (sparse).
     */
    void writeTimeSeriesJson(std::ostream &os) const;

    /** The process-wide registry. */
    static StatRegistry &global();

    /**
     * Thread-safe increment on the process-wide registry. Machine
     * registries are single-writer (their machine's worker thread) and
     * need no locking, but global() is shared by every machine — bench
     * bookkeeping that fires on the boot path must go through here
     * once machines run on parallel executor threads.
     */
    static void incrGlobal(const std::string &name, std::int64_t delta = 1);

  private:
    std::map<std::string, std::int64_t> counters_;
    std::map<std::string, LatencySeries> series_;
    std::map<std::string, WindowedHistogram> windowed_;
    SimTime window_length_ = SimTime::milliseconds(250.0);
    SimTime window_origin_;
    bool window_origin_set_ = false;
};

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_STATS_H
