/**
 * @file
 * Counters and latency series for experiment reporting.
 */

#ifndef CATALYZER_SIM_STATS_H
#define CATALYZER_SIM_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace catalyzer::sim {

/**
 * Named monotonically increasing counters (page faults, syscalls redone,
 * objects deserialized, ...). Cheap enough to leave enabled everywhere.
 */
class StatRegistry
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if needed. */
    void incr(const std::string &name, std::int64_t delta = 1);

    /** Current value, or zero if never touched. */
    std::int64_t value(const std::string &name) const;

    /** Reset every counter to zero. */
    void clear();

    /** Snapshot of all counters, sorted by name. */
    const std::map<std::string, std::int64_t> &all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::int64_t> counters_;
};

/**
 * A series of latency samples with percentile and CDF queries.
 * Samples are stored in milliseconds.
 */
class LatencySeries
{
  public:
    /** Record one sample. */
    void add(SimTime t) { samples_.push_back(t.toMs()); }
    void addMs(double ms) { samples_.push_back(ms); }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    double min() const;
    double max() const;

    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

    /** Fraction of samples <= x (empirical CDF). */
    double cdfAt(double x) const;

    /** Sorted copy of the samples. */
    std::vector<double> sorted() const;

    const std::vector<double> &raw() const { return samples_; }

    void clear() { samples_.clear(); }

  private:
    std::vector<double> samples_;
};

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_STATS_H
