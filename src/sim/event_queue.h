/**
 * @file
 * Per-machine discrete-event queues and the conservative-lookahead
 * scheduler that lets share-nothing machines run on parallel threads
 * without breaking virtual-time causality.
 */

#ifndef CATALYZER_SIM_EVENT_QUEUE_H
#define CATALYZER_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/clock.h"
#include "sim/time.h"

namespace catalyzer::sim {

/**
 * A single machine's pending-event queue, ordered by virtual release
 * time with FIFO tie-break (events posted earlier run earlier at equal
 * timestamps, so replay order is deterministic regardless of heap
 * internals).
 *
 * The queue itself is single-threaded: exactly one executor thread
 * drains a machine's queue at a time. Parallelism comes from running
 * *different* machines' queues concurrently under the conservative
 * horizon computed by ConservativeScheduler.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Schedule @p fn to run when the machine's clock reaches @p at. */
    void post(SimTime at, Handler fn);

    /** Earliest pending release time; SimTime::zero() when empty. */
    SimTime nextAt() const;

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    /**
     * Run every event with release time < @p horizon, in (time, post
     * order). Before each handler fires, @p clock (when non-null) is
     * advanced to the event's release time if it lags behind — the
     * event-queue analogue of a machine idling until the next arrival.
     * Returns the number of events run.
     */
    std::size_t runUntil(SimTime horizon, VirtualClock *clock);

    /** Drain the queue completely (horizon = infinity). */
    std::size_t runAll(VirtualClock *clock);

  private:
    struct Event
    {
        SimTime at;
        std::uint64_t seq;
        Handler fn;
    };

    /** Heap order: earliest time first, then lowest sequence number. */
    static bool later(const Event &a, const Event &b);

    std::vector<Event> events_; // binary min-heap via std::*_heap
    std::uint64_t next_seq_ = 0;
};

/**
 * Conservative-lookahead synchronization across a set of machine
 * queues: in each round, every queue may safely run events strictly
 * below
 *
 *   horizon = min over queues of nextAt()  +  lookahead
 *
 * (clamped to the caller's barrier) because no machine can cause an
 * effect on another machine sooner than the cross-machine latency
 * floor @p lookahead (the Fabric RTT — remote-sfork lend, RemotePager
 * pull, P2P image stream all ride on it). Queues whose horizons have
 * been computed this way may be drained concurrently.
 *
 * The scheduler only computes horizons; the caller owns threading (see
 * ParallelExecutor) and must not post cross-queue events closer than
 * @p lookahead ahead of the posting machine's clock.
 */
class ConservativeScheduler
{
  public:
    ConservativeScheduler(std::vector<EventQueue> &queues,
                          SimTime lookahead)
        : queues_(queues), lookahead_(lookahead)
    {}

    SimTime lookahead() const { return lookahead_; }

    /**
     * Lookahead for fleets with no cross-machine interactions at all:
     * every horizon clamps straight to the barrier, so each epoch
     * drains in a single round.
     */
    static constexpr SimTime
    unboundedLookahead()
    {
        return SimTime::nanoseconds(
            std::numeric_limits<std::int64_t>::max());
    }

    /** True once every queue is empty. */
    bool done() const;

    /**
     * Horizon for the next round, clamped to @p barrier: every queue
     * may run events with release time < the returned value. Returns
     * @p barrier when all queues are empty.
     */
    SimTime nextHorizon(SimTime barrier) const;

    /**
     * Run rounds until every queue is drained up to @p barrier,
     * invoking @p round(horizon) once per round. The callback drains
     * all queues below the horizon (serially or in parallel) and must
     * make progress; a round that runs no events and leaves the
     * horizon stuck panics instead of spinning forever.
     */
    void runRounds(SimTime barrier,
                   const std::function<std::size_t(SimTime)> &round);

  private:
    std::vector<EventQueue> &queues_;
    SimTime lookahead_;
};

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_EVENT_QUEUE_H
