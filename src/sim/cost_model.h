/**
 * @file
 * Calibrated cost model for the simulated host.
 *
 * Every latency constant in the library lives here, in one place, so the
 * calibration against the paper's measurements (DESIGN.md section 5) can
 * be audited and re-tuned. Mechanism code never hard-codes a latency; it
 * charges a named cost scaled by the operation counts its real data
 * structures produce.
 *
 * Anchors (Catalyzer paper, ASPLOS'20): Fig. 2 boot breakdown, Fig. 16
 * host micro-costs, Sec. 3.2 object counts, Sec. 6.2 startup latencies.
 */

#ifndef CATALYZER_SIM_COST_MODEL_H
#define CATALYZER_SIM_COST_MODEL_H

#include "sim/time.h"

namespace catalyzer::sim {

using namespace time_literals;

/**
 * All tunable latency constants. Defaults reproduce the paper's
 * experimental machine (8-core i7-7700, SSD); serverProfile() reproduces
 * the 96-core Ant Financial server used for the end-to-end runs.
 */
struct CostModel
{
    //
    // Host kernel syscalls (Fig. 16d and Sec. 6.7).
    //
    /** Base user->kernel crossing plus trivial syscall work. */
    SimTime syscallBase = 800_ns;
    /** dup/dup2 on a table with free slots. */
    SimTime dupFast = 1.2_us;
    /** fdtable expansion: reallocation plus RCU sync. Tail reaches 30ms. */
    SimTime dupExpandTypical = 0.9_ms;
    SimTime dupExpandWorst = 30_ms;
    /** Probability that an expansion hits the slow reclaim path. */
    double dupExpandBurstProb = 0.25;
    /** open() on a local file through the host VFS. */
    SimTime openFile = 14_us;
    /** connect()/accept() for a local socket. */
    SimTime openSocket = 210_us;
    /** stat() */
    SimTime statFile = 4_us;
    /** One mount() call. */
    SimTime mountFs = 450_us;
    /** Gofer RPC round trip (9P-style) for one I/O request. */
    SimTime goferRpc = 55_us;

    //
    // KVM / virtualization (Fig. 16b, 16c).
    //
    SimTime kvmCreateVm = 850_us;
    SimTime kvmCreateVcpu = 320_us;
    /** kvcalloc for VM bookkeeping, uncached vs with the dedicated cache. */
    SimTime kvmKvcalloc = 260_us;
    SimTime kvmKvcallocCached = 8_us;
    /** Number of kvcalloc calls per VM setup (Fig. 16b sweeps 1..6). */
    int kvmKvcallocCalls = 6;
    /** set_user_memory_region: fixed part. */
    SimTime kvmSetRegionBase = 45_us;
    /** Incremental cost per already-registered region, PML enabled. */
    SimTime kvmSetRegionPerRegionPml = 60_us;
    /** Same with PML disabled (about 10x cheaper, Fig. 16c). */
    SimTime kvmSetRegionPerRegionNoPml = 6_us;
    /** PML buffer (re)allocation when a region is added with PML on. */
    SimTime kvmPmlFlushPerVcpu = 60_us;
    /** Number of memory regions a gVisor-style sandbox registers. */
    int kvmMemoryRegions = 11;

    //
    // Page-level memory (mem/).
    //
    /** Establish one VMA (mmap bookkeeping, no population). */
    SimTime mmapRegion = 2.8_us;
    /** Populate page-table entries, charged per 512-entry batch. */
    SimTime ptePopulatePerBatch = 1.7_us;
    /** Copy-on-write fault: allocate a frame and copy 4 KiB. */
    SimTime cowFault = 2.4_us;
    /** Demand fault backed by an uncompressed file (page cache hit). */
    SimTime demandFaultFile = 3.1_us;
    /** Demand fault from page cache miss (SSD read, 4 KiB). */
    SimTime demandFaultFileCold = 86_us;
    /** Demand fault on anonymous zero page. */
    SimTime demandFaultAnon = 1.0_us;
    /** memcpy of one 4 KiB page. */
    SimTime memcpyPerPage = 420_ns;
    /** Probability a cold-boot file-backed fault misses the page cache. */
    double pageCacheMissColdBoot = 0.02;

    //
    // Checkpoint image handling (snapshot/).
    //
    /** gzip-style decompression of one 4 KiB page (restore path). */
    SimTime decompressPerPage = 1.55_us;
    /** Compression (checkpoint path, off the critical path). */
    SimTime compressPerPage = 6.4_us;
    /** Deserialize one guest-kernel metadata object (protobuf-style). */
    SimTime deserializeObject = 1.38_us;
    /** Serialize one object at checkpoint time. */
    SimTime serializeObject = 1.1_us;
    /** Re-do creation of one non-I/O kernel object on restore. */
    SimTime redoObject = 0.68_us;
    /** Patch one pointer through the relation table (separated format). */
    SimTime relationFixupPerPointer = 30_ns;
    /**
     * Non-parallelizable part of establishing one non-I/O kernel object
     * during separated state recovery (allocation/registration barriers).
     */
    SimTime redoObjectSequentialPart = 200_ns;
    /** Average pointers per metadata object in the relation table. */
    double pointersPerObject = 3.4;
    /** Image manifest parse + section header validation. */
    SimTime imageManifestParse = 120_us;
    /** CRC over one image page during integrity verification. */
    SimTime checksumPerPage = 120_ns;
    /** Remote func-image fetch over the datacenter network, per MiB. */
    SimTime networkFetchPerMiB = 850_us;

    //
    // Datacenter fabric (net/). The modeled fabric splits a transfer
    // into one round trip (handshake/ACK) plus a streaming part riding
    // the NIC's bandwidth; the flat-compat mode keeps charging
    // networkFetchPerMiB so existing remote-fetch paths stay
    // bit-identical. netStreamPerMiB matches networkFetchPerMiB on
    // purpose: the calibrated per-MiB cost *is* the streaming rate, the
    // modeled mode merely adds latency structure around it.
    //
    /** Round trip between two machines in the same rack (ToR switch). */
    SimTime netRttIntraRack = 20_us;
    /** Round trip across racks (spine hop). */
    SimTime netRttCrossRack = 90_us;
    /** Peer-to-peer streaming of one MiB at NIC line rate. */
    SimTime netStreamPerMiB = 850_us;
    /**
     * Streaming one MiB from the origin image repository: a shared blob
     * store serves many clients, so its per-client bandwidth is about
     * half a dedicated peer NIC.
     */
    SimTime netOriginStreamPerMiB = 1700_us;
    /** Issue one batched remote page-pull request (remote sfork). */
    SimTime netPagePullBatchSetup = 15_us;

    //
    // Content-addressed image store (snapshot/chunk_store.h). Images are
    // cut into content-defined chunks by a rolling hash over per-page
    // fingerprints; a chunk missing from every local tier is fetched
    // from a peer (netStreamPerMiB) or origin (netOriginStreamPerMiB).
    // The local tiers below RAM model a dedicated NVMe cache partition:
    // faster than the per-fault cold path (demandFaultFileCold) because
    // chunk reads are large and sequential, slower than memory.
    //
    /** Smallest allowed chunk, pages (cut points below this are ignored). */
    std::size_t chunkMinPages = 8;
    /** Target average chunk length, pages (power of two: the rolling
     *  hash cuts when its low log2(avg) bits match). */
    std::size_t chunkAvgPages = 32;
    /** Forced cut at this length, pages (bounds worst-case transfer). */
    std::size_t chunkMaxPages = 128;
    /** Fingerprint + rolling-hash work per image page when chunking. */
    SimTime chunkHashPerPage = 150_ns;
    /** One cluster chunk-directory consultation (batched per fetch). */
    SimTime chunkDirectoryLookup = 8_us;
    /** Copy one MiB of RAM-tier cached chunks into an image mapping. */
    SimTime ramCacheStreamPerMiB = 110_us;
    /** Per-read setup of the local NVMe chunk-cache partition. */
    SimTime ssdCacheReadSetup = 25_us;
    /** Sequential NVMe streaming of one MiB from the chunk cache. */
    SimTime ssdCacheStreamPerMiB = 400_us;

    //
    // Working-set prefetch (prefetch/), REAP-style batched restore
    // reads. A batch is one readahead submission covering up to
    // prefetchBatchPages image pages, so the SSD serves a large
    // sequential read instead of per-fault 4 KiB random reads
    // (demandFaultFileCold): setup is paid once per batch and the
    // per-page transfer rides the device's sequential bandwidth.
    //
    /** Submit one batched readahead (request setup + queueing). */
    SimTime prefetchBatchSetup = 40_us;
    /** Sequential SSD transfer of one 4 KiB page within a batch. */
    SimTime prefetchSsdPerPage = 9_us;
    /** Serialize or parse one working-set manifest. */
    SimTime workingSetManifestIo = 35_us;

    //
    // Guest kernel / Go runtime (guest/).
    //
    /** Sentry internal data-structure init beyond KVM resources. */
    SimTime sentryInitFixed = 1.5_ms;
    /** Guest mounts performed while setting up the root namespace. */
    int guestMounts = 9;
    /** Sentry's own anonymous working memory, pages. */
    int sentrySelfPages = 1536;
    /**
     * The rest of the runsc machinery on a stock cold boot (OCI hooks,
     * gofer attach, console and signal plumbing). Stock gVisor and
     * gVisor-restore pay it; Catalyzer's Zygote pre-creates all of it.
     */
    SimTime gvisorRuncMisc = 95_ms;
    /** Start the Go runtime inside the sandbox process. */
    SimTime goRuntimeStart = 2.6_ms;
    /** Create one OS-backed thread. */
    SimTime threadCreate = 80_us;
    /** Park/merge one thread entering the transient single-thread state. */
    SimTime threadMerge = 110_us;
    /** Re-expand one thread after sfork. */
    SimTime threadExpand = 58_us;
    /** Blocking-thread timeout poll granularity (template generation). */
    SimTime blockingThreadTimeout = 2_ms;

    //
    // I/O reconnection (catalyzer/ and snapshot/).
    //
    /** Fixed bookkeeping to re-establish one I/O connection record. */
    SimTime ioReconnectBase = 350_us;
    /** Extra cost when reconnection needs a Gofer round trip. */
    SimTime ioReconnectGofer = 190_us;
    /**
     * Critical-path cost of *deferring* one reconnection: tagging the fd
     * as not-reopened and queueing the async re-establishment.
     */
    SimTime ioLazyMarkPerConn = 25_us;

    //
    // sfork (hostos/).
    //
    SimTime sforkSyscallBase = 160_us;
    /** Copy one VMA descriptor and mark COW. */
    SimTime sforkPerVma = 1.6_us;
    /** Copy page-table pages, charged per 512 PTEs. */
    SimTime sforkPtePerBatch = 1.9_us;
    /** Set up PID/USER namespaces for the child. */
    SimTime namespaceSetup = 140_us;
    /** Clone the in-memory overlay rootFS (COW, constant time). */
    SimTime overlayFsClone = 22_us;
    /** ASLR re-randomization of the child layout (optional, Sec. 6.8). */
    SimTime aslrRerandomize = 260_us;

    //
    // Sandbox lifecycle (sandbox/).
    //
    /** Gateway -> runtime "invoke" RPC delivery. */
    SimTime rpcDelivery = 1.369_ms;
    /** OCI configuration parse. */
    SimTime parseConfig = 319_us;
    /** Spawn the sandbox process (fork+exec of the runtime binary). */
    SimTime bootSandboxProcess = 757_us;
    /** Spawn the I/O (Gofer) process. */
    SimTime bootIoProcess = 680_us;
    /** Zygote specialization: append function-specific config. */
    SimTime zygoteAppendConfig = 150_us;
    /** Zygote specialization: import function binaries, per MiB. */
    SimTime zygoteImportPerMiB = 260_us;

    //
    // Competing sandbox systems (sandbox/), end-to-end fixed parts.
    //
    SimTime dockerSetupFixed = 96_ms;
    SimTime hyperSetupFixed = 510_ms;
    SimTime firecrackerVmmInit = 21_ms;
    SimTime firecrackerKernelBoot = 97_ms;

    //
    // Application-initialization slowdown inside each sandbox relative
    // to a native process. Interpreter/JVM startup is syscall-heavy, so
    // interception-based sandboxes pay a large factor (this is why
    // native Java boots in 89 ms where gVisor needs 659 ms, Table 2).
    //
    double gvisorAppInitFactor = 4.4;
    /** gVisor on the ptrace platform (no KVM): heavier interception. */
    double gvisorPtraceAppInitFactor = 6.5;
    double dockerAppInitFactor = 1.05;
    double firecrackerAppInitFactor = 1.15;
    double hyperAppInitFactor = 1.6;

    //
    // Shared COW state regions and workflow chaining (state/,
    // workflow/). A same-machine chain hop is a warm in-memory queue
    // hand-off; a cross-machine hop pays a marshal/dispatch on top of
    // the fabric RTT, plus whatever region transfers the consumer's
    // attaches trigger. Publish folds the writer's private COW pages
    // into a fresh arena generation.
    //
    /** Create a named region (directory entry + arena reservation). */
    SimTime stateCreateFixed = 9_us;
    /** Map a sealed region replica into a consumer (share-map op). */
    SimTime stateAttachFixed = 6_us;
    /** Version bump + directory update on publish. */
    SimTime statePublishFixed = 20_us;
    /** Fold one dirty page into the new version's arena. */
    SimTime statePublishPerPage = 500_ns;
    /** Hand a chain hop to a co-resident stage (in-memory queue). */
    SimTime chainLocalHop = 3_us;
    /** Marshal + dispatch a stage invoke to another machine (plus the
     *  fabric round trip, charged separately). */
    SimTime chainRemoteDispatch = 12_us;

    /** CPUs available for parallel restore work. */
    int restoreWorkers = 8;

    /** The 96-core server profile used for the industrial runs (Sec. 6.1). */
    static CostModel serverProfile();
};

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_COST_MODEL_H
