#include "sim/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "sim/logging.h"

namespace catalyzer::sim {

std::string
fmtMs(double ms)
{
    char buf[64];
    if (ms >= 100.0)
        std::snprintf(buf, sizeof(buf), "%.1f", ms);
    else if (ms >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f", ms);
    else
        std::snprintf(buf, sizeof(buf), "%.3f", ms);
    return buf;
}

std::string
fmtBytes(double bytes)
{
    char buf[64];
    if (bytes >= 1024.0 * 1024.0)
        std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / (1024.0 * 1024.0));
    else if (bytes >= 1024.0)
        std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
    else
        std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
    return buf;
}

std::string
fmtSpeedup(double x)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", x);
    return buf;
}

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size())
        panic("TextTable::addRow: %zu cells, header has %zu",
              cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto account = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header_);
    for (const auto &row : rows_)
        account(row);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto pad = widths[i] - cells[i].size();
            if (i == 0) {
                os << cells[i] << std::string(pad, ' ');
            } else {
                os << "  " << std::string(pad, ' ') << cells[i];
            }
        }
        os << '\n';
    };

    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        total += widths[i] + (i ? 2 : 0);

    if (!title_.empty())
        os << title_ << '\n' << std::string(total, '=') << '\n';
    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.empty())
            os << std::string(total, '-') << '\n';
        else
            emit(row);
    }
}

void
TextTable::print() const
{
    print(std::cout);
}

void
printCdf(std::ostream &os, const std::string &label,
         const std::vector<double> &sorted_samples)
{
    os << "CDF " << label << " (n=" << sorted_samples.size() << ")\n";
    const auto n = static_cast<double>(sorted_samples.size());
    for (std::size_t i = 0; i < sorted_samples.size(); ++i) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  %10.3f  %6.4f\n",
                      sorted_samples[i],
                      static_cast<double>(i + 1) / n);
        os << buf;
    }
}

} // namespace catalyzer::sim
