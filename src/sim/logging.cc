#include "sim/logging.h"

#include <cctype>
#include <cstdio>

namespace catalyzer::sim {

namespace {

/** Startup verbosity: the environment override, else Warn. */
LogLevel
initialLogLevel()
{
    return parseLogLevel(std::getenv("CATALYZER_LOG_LEVEL"),
                         LogLevel::Warn);
}

LogLevel global_level = initialLogLevel();

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

LogLevel
parseLogLevel(const char *text, LogLevel fallback)
{
    if (text == nullptr)
        return fallback;
    std::string lower;
    for (const char *p = text; *p != '\0'; ++p)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    if (lower == "silent" || lower == "0")
        return LogLevel::Silent;
    if (lower == "warn" || lower == "1")
        return LogLevel::Warn;
    if (lower == "inform" || lower == "2")
        return LogLevel::Inform;
    if (lower == "debug" || lower == "3")
        return LogLevel::Debug;
    return fallback;
}

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (global_level < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (global_level < LogLevel::Inform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (global_level < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

} // namespace catalyzer::sim
