#include "sim/logging.h"

#include <cstdio>

namespace catalyzer::sim {

namespace {

LogLevel global_level = LogLevel::Warn;

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (global_level < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (global_level < LogLevel::Inform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (global_level < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

} // namespace catalyzer::sim
