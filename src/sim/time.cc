#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace catalyzer::sim {

std::string
SimTime::toString() const
{
    char buf[64];
    const double abs_ns = std::abs(static_cast<double>(ns_));
    if (abs_ns >= 1e9) {
        std::snprintf(buf, sizeof(buf), "%.3f s", toSec());
    } else if (abs_ns >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.3f ms", toMs());
    } else if (abs_ns >= 1e3) {
        std::snprintf(buf, sizeof(buf), "%.3f us", toUs());
    } else {
        std::snprintf(buf, sizeof(buf), "%lld ns",
                      static_cast<long long>(ns_));
    }
    return buf;
}

} // namespace catalyzer::sim
