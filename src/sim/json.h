/**
 * @file
 * Tiny shared JSON-writing helpers.
 *
 * Every exporter in the tree (metrics snapshots, Chrome traces, the
 * time-series and SLO reports) hand-writes its JSON; these helpers keep
 * the escaping and number formatting rules in one place so a metric
 * name with a quote in it cannot corrupt one document format while the
 * others survive it.
 */

#ifndef CATALYZER_SIM_JSON_H
#define CATALYZER_SIM_JSON_H

#include <iosfwd>
#include <string>

namespace catalyzer::sim {

/** Escape @p s for use inside a double-quoted JSON string. */
std::string jsonEscape(const std::string &s);

/** One JSON number; NaN/inf become null (JSON has no non-finite). */
void writeJsonNumber(std::ostream &os, double v);

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_JSON_H
