#include "sim/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "sim/logging.h"

namespace catalyzer::sim {

void
ParallelExecutor::forEach(std::size_t n,
                          const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;
    const std::size_t nworkers =
        serial() ? 1
                 : std::min(static_cast<std::size_t>(workers_), n);
    if (nworkers == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    auto drain = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                fn(i);
            } catch (...) {
                // Simulation handlers report failure via panic();
                // an exception escaping one would deadlock siblings.
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(nworkers - 1);
    for (std::size_t w = 1; w < nworkers; ++w)
        threads.emplace_back(drain);
    drain();
    for (auto &t : threads)
        t.join();
    if (failed.load(std::memory_order_relaxed))
        panic("ParallelExecutor::forEach: a worker threw");
}

int
ParallelExecutor::threadsFromEnv(int fallback)
{
    const char *raw = std::getenv("CATALYZER_SIM_THREADS");
    int threads = fallback;
    if (raw != nullptr && *raw != '\0') {
        try {
            threads = std::stoi(raw);
        } catch (const std::exception &) {
            warn("CATALYZER_SIM_THREADS=\"%s\" is not a number; "
                 "using %d",
                 raw, fallback);
            threads = fallback;
        }
    }
    if (threads < 1)
        threads = 1;
    if (threads > 256)
        threads = 256;
    return threads;
}

} // namespace catalyzer::sim
