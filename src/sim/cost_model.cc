#include "sim/cost_model.h"

namespace catalyzer::sim {

CostModel
CostModel::serverProfile()
{
    CostModel c;
    // The Ant Financial server machine: slower per-core clock (2.5 GHz vs
    // the i7's 4.2 GHz boost) but many more cores for parallel recovery
    // and a larger page cache.
    c.restoreWorkers = 48;
    c.cowFault = c.cowFault * 1.25;
    c.memcpyPerPage = c.memcpyPerPage * 1.25;
    c.deserializeObject = c.deserializeObject * 1.3;
    c.redoObject = c.redoObject * 1.3;
    c.pageCacheMissColdBoot = 0.004;
    c.demandFaultFileCold = 52_us; // NVMe array
    return c;
}

} // namespace catalyzer::sim
