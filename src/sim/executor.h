/**
 * @file
 * The multi-threaded executor that drains per-machine event queues
 * concurrently. Determinism does not depend on thread count: workers
 * only run share-nothing per-machine work, and every cross-machine
 * reduction happens on the calling thread in a fixed order.
 */

#ifndef CATALYZER_SIM_EXECUTOR_H
#define CATALYZER_SIM_EXECUTOR_H

#include <cstddef>
#include <functional>

namespace catalyzer::sim {

/**
 * Fan-out helper for per-machine simulation work.
 *
 * forEach(n, fn) invokes fn(i) exactly once for every i in [0, n),
 * spread over min(workers, n) threads pulling indices from a shared
 * atomic counter. With workers <= 1 it degenerates to a plain serial
 * loop on the calling thread — the mode every byte-compare regression
 * baseline runs in.
 *
 * fn must not touch state shared across indices without its own
 * synchronization; the executor provides none beyond the implicit
 * barrier when forEach returns (all work finished, all writes made by
 * workers visible to the caller).
 */
class ParallelExecutor
{
  public:
    /** @p workers <= 1 means serial execution on the caller. */
    explicit ParallelExecutor(int workers) : workers_(workers) {}

    int workers() const { return workers_; }
    bool serial() const { return workers_ <= 1; }

    /** Run fn(0) .. fn(n-1), returning once all have finished. */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn) const;

    /**
     * Worker count from the CATALYZER_SIM_THREADS environment knob;
     * @p fallback when unset/empty/unparsable. Values are clamped to
     * [1, 256].
     */
    static int threadsFromEnv(int fallback = 1);

  private:
    int workers_;
};

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_EXECUTOR_H
