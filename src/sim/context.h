/**
 * @file
 * SimContext: the bundle of clock, cost model, RNG and stats that every
 * simulated component operates against.
 */

#ifndef CATALYZER_SIM_CONTEXT_H
#define CATALYZER_SIM_CONTEXT_H

#include <cstdint>

#include "sim/clock.h"
#include "sim/cost_model.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace catalyzer::sim {

/**
 * Shared simulation environment.
 *
 * One SimContext models one physical machine: a virtual clock, the host's
 * calibrated cost model, a deterministic RNG, and a counter registry.
 * Components hold a reference and charge costs as their data structures
 * do work.
 */
class SimContext
{
  public:
    explicit SimContext(std::uint64_t seed = 42,
                        CostModel costs = CostModel{})
        : costs_(costs), rng_(seed)
    {}

    VirtualClock &clock() { return clock_; }
    const VirtualClock &clock() const { return clock_; }

    const CostModel &costs() const { return costs_; }
    CostModel &mutableCosts() { return costs_; }

    Rng &rng() { return rng_; }
    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

    /** Current virtual time. */
    SimTime now() const { return clock_.now(); }

    /** Charge a latency to the virtual clock. */
    void charge(SimTime t) { clock_.advance(t); }

    /** Charge per-item work executed across the restore worker pool. */
    void
    chargeParallel(SimTime per_item, std::int64_t count)
    {
        clock_.advanceParallel(per_item, count, costs_.restoreWorkers);
    }

    /** Charge and count in one step. */
    void
    chargeCounted(const std::string &counter, SimTime t,
                  std::int64_t n = 1)
    {
        stats_.incr(counter, n);
        clock_.advance(t);
    }

  private:
    VirtualClock clock_;
    CostModel costs_;
    Rng rng_;
    StatRegistry stats_;
};

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_CONTEXT_H
