#include "sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/logging.h"

namespace catalyzer::sim {

namespace {

constexpr SimTime kInfinity =
    SimTime::nanoseconds(std::numeric_limits<std::int64_t>::max());

} // namespace

bool
EventQueue::later(const Event &a, const Event &b)
{
    // std::push_heap builds a max-heap; invert so the earliest
    // (time, seq) pair surfaces at the front.
    if (a.at != b.at)
        return a.at > b.at;
    return a.seq > b.seq;
}

void
EventQueue::post(SimTime at, Handler fn)
{
    events_.push_back(Event{at, next_seq_++, std::move(fn)});
    std::push_heap(events_.begin(), events_.end(), later);
}

SimTime
EventQueue::nextAt() const
{
    if (events_.empty())
        return SimTime::zero();
    return events_.front().at;
}

std::size_t
EventQueue::runUntil(SimTime horizon, VirtualClock *clock)
{
    std::size_t ran = 0;
    while (!events_.empty() && events_.front().at < horizon) {
        std::pop_heap(events_.begin(), events_.end(), later);
        Event ev = std::move(events_.back());
        events_.pop_back();
        if (clock != nullptr && clock->now() < ev.at)
            clock->advance(ev.at - clock->now());
        ev.fn();
        ++ran;
    }
    return ran;
}

std::size_t
EventQueue::runAll(VirtualClock *clock)
{
    return runUntil(kInfinity, clock);
}

bool
ConservativeScheduler::done() const
{
    for (const auto &q : queues_) {
        if (!q.empty())
            return false;
    }
    return true;
}

SimTime
ConservativeScheduler::nextHorizon(SimTime barrier) const
{
    SimTime earliest = kInfinity;
    for (const auto &q : queues_) {
        if (!q.empty() && q.nextAt() < earliest)
            earliest = q.nextAt();
    }
    if (earliest >= barrier)
        return barrier;
    // Clamp before adding: an unbounded lookahead (share-nothing
    // fleets) plus a real timestamp would wrap the int64 timeline.
    const SimTime span = barrier - earliest;
    return lookahead_ < span ? earliest + lookahead_ : barrier;
}

void
ConservativeScheduler::runRounds(
    SimTime barrier, const std::function<std::size_t(SimTime)> &round)
{
    while (!done()) {
        const SimTime horizon = nextHorizon(barrier);
        const std::size_t ran = round(horizon);
        if (ran == 0) {
            // Every remaining event sits at or beyond the barrier:
            // the caller's next epoch owns them. A zero-progress round
            // below the barrier would spin forever — that is a
            // lookahead bug, not a scheduling state.
            if (horizon < barrier)
                panic("ConservativeScheduler: no progress at horizon "
                      "%s below barrier %s (non-positive lookahead?)",
                      horizon.toString().c_str(),
                      barrier.toString().c_str());
            return;
        }
    }
}

} // namespace catalyzer::sim
