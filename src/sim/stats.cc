#include "sim/stats.h"

#include <algorithm>
#include <numeric>

#include "sim/logging.h"

namespace catalyzer::sim {

void
StatRegistry::incr(const std::string &name, std::int64_t delta)
{
    counters_[name] += delta;
}

std::int64_t
StatRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatRegistry::clear()
{
    counters_.clear();
}

double
LatencySeries::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double
LatencySeries::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
LatencySeries::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
LatencySeries::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("LatencySeries::percentile: p=%f out of range", p);
    auto s = sorted();
    if (s.size() == 1)
        return s.front();
    const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= s.size())
        return s.back();
    return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double
LatencySeries::cdfAt(double x) const
{
    if (samples_.empty())
        return 0.0;
    const auto n = static_cast<double>(samples_.size());
    const auto below = std::count_if(samples_.begin(), samples_.end(),
                                     [x](double v) { return v <= x; });
    return static_cast<double>(below) / n;
}

std::vector<double>
LatencySeries::sorted() const
{
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    return s;
}

} // namespace catalyzer::sim
