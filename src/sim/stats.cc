#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>

#include "sim/logging.h"

namespace catalyzer::sim {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

} // namespace

void
StatRegistry::incr(const std::string &name, std::int64_t delta)
{
    counters_[name] += delta;
}

std::int64_t
StatRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatRegistry::observe(const std::string &name, SimTime t)
{
    series_[name].add(t);
}

void
StatRegistry::observeMs(const std::string &name, double ms)
{
    series_[name].addMs(ms);
}

LatencySeries &
StatRegistry::histogram(const std::string &name)
{
    return series_[name];
}

const LatencySeries *
StatRegistry::findHistogram(const std::string &name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

void
StatRegistry::clear()
{
    counters_.clear();
    series_.clear();
}

namespace {

/** One JSON number; NaN/inf become null (JSON has no non-finite). */
void
writeJsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // namespace

void
StatRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": " << value;
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, series] : series_) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": {\"unit\": \"ms\", \"count\": " << series.count();
        const struct
        {
            const char *key;
            double value;
        } stats[] = {
            {"mean", series.mean()},   {"min", series.min()},
            {"max", series.max()},     {"p50", series.percentile(50)},
            {"p90", series.percentile(90)},
            {"p99", series.percentile(99)},
        };
        for (const auto &s : stats) {
            os << ", \"" << s.key << "\": ";
            writeJsonNumber(os, s.value);
        }
        os << "}";
        first = false;
    }
    os << "\n  }\n}\n";
}

StatRegistry &
StatRegistry::global()
{
    static StatRegistry registry;
    return registry;
}

double
LatencySeries::mean() const
{
    if (samples_.empty())
        return kNaN;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double
LatencySeries::min() const
{
    if (samples_.empty())
        return kNaN;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
LatencySeries::max() const
{
    if (samples_.empty())
        return kNaN;
    return *std::max_element(samples_.begin(), samples_.end());
}

const std::vector<double> &
LatencySeries::sortedCache() const
{
    if (!sorted_valid_) {
        sorted_cache_ = samples_;
        std::sort(sorted_cache_.begin(), sorted_cache_.end());
        sorted_valid_ = true;
    }
    return sorted_cache_;
}

double
LatencySeries::percentile(double p) const
{
    if (p < 0.0 || p > 100.0)
        panic("LatencySeries::percentile: p=%f out of range", p);
    if (samples_.empty())
        return kNaN;
    const auto &s = sortedCache();
    if (s.size() == 1)
        return s.front();
    const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= s.size())
        return s.back();
    return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double
LatencySeries::cdfAt(double x) const
{
    if (samples_.empty())
        return kNaN;
    const auto &s = sortedCache();
    const auto below =
        std::upper_bound(s.begin(), s.end(), x) - s.begin();
    return static_cast<double>(below) / static_cast<double>(s.size());
}

std::vector<double>
LatencySeries::sorted() const
{
    return sortedCache();
}

} // namespace catalyzer::sim
