#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <numeric>
#include <ostream>

#include "sim/json.h"
#include "sim/logging.h"

namespace catalyzer::sim {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

} // namespace

void
StatRegistry::incr(const std::string &name, std::int64_t delta)
{
    counters_[name] += delta;
}

std::int64_t
StatRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatRegistry::observe(const std::string &name, SimTime t)
{
    series_[name].add(t);
}

void
StatRegistry::observeMs(const std::string &name, double ms)
{
    series_[name].addMs(ms);
}

LatencySeries &
StatRegistry::histogram(const std::string &name)
{
    return series_[name];
}

const LatencySeries *
StatRegistry::findHistogram(const std::string &name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

void
StatRegistry::observeWindowed(const std::string &name, SimTime now,
                              double value)
{
    windowed(name).record(now, value);
}

WindowedHistogram &
StatRegistry::windowed(const std::string &name)
{
    auto it = windowed_.find(name);
    if (it == windowed_.end()) {
        it = windowed_.emplace(name, WindowedHistogram(window_length_))
                 .first;
        if (window_origin_set_)
            it->second.setOrigin(window_origin_);
    }
    return it->second;
}

void
StatRegistry::setWindowOrigin(SimTime origin)
{
    windowed_.clear();
    window_origin_ = origin;
    window_origin_set_ = true;
}

const WindowedHistogram *
StatRegistry::findWindowed(const std::string &name) const
{
    auto it = windowed_.find(name);
    return it == windowed_.end() ? nullptr : &it->second;
}

void
StatRegistry::clear()
{
    counters_.clear();
    series_.clear();
    windowed_.clear();
}

void
StatRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, series] : series_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"unit\": \"ms\", \"count\": " << series.count();
        const struct
        {
            const char *key;
            double value;
        } stats[] = {
            {"mean", series.mean()},   {"min", series.min()},
            {"max", series.max()},     {"p50", series.percentile(50)},
            {"p90", series.percentile(90)},
            {"p99", series.percentile(99)},
        };
        for (const auto &s : stats) {
            os << ", \"" << s.key << "\": ";
            writeJsonNumber(os, s.value);
        }
        os << "}";
        first = false;
    }
    os << "\n  }\n}\n";
}

void
StatRegistry::writeTimeSeriesJson(std::ostream &os) const
{
    os << "{\n  \"default_window_ms\": ";
    writeJsonNumber(os, window_length_.toMs());
    os << ",\n  \"series\": {";
    bool first = true;
    for (const auto &[name, hist] : windowed_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"window_ms\": ";
        writeJsonNumber(os, hist.windowLength().toMs());
        os << ", \"windows\": [";
        bool wfirst = true;
        for (const auto &w : hist.windows()) {
            os << (wfirst ? "\n" : ",\n") << "      {\"index\": "
               << w.index << ", \"start_ms\": ";
            writeJsonNumber(os, hist.windowStart(w.index).toMs());
            os << ", \"count\": " << w.series.count() << ", \"sum\": ";
            writeJsonNumber(os, w.sum);
            const struct
            {
                const char *key;
                double value;
            } stats[] = {
                {"mean", w.series.mean()},
                {"p50", w.series.percentile(50)},
                {"p99", w.series.percentile(99)},
                {"p999", w.series.percentile(99.9)},
                {"max", w.series.max()},
            };
            for (const auto &s : stats) {
                os << ", \"" << s.key << "\": ";
                writeJsonNumber(os, s.value);
            }
            os << "}";
            wfirst = false;
        }
        os << "\n    ]}";
        first = false;
    }
    os << "\n  }\n}\n";
}

void
WindowedHistogram::record(SimTime now, double value)
{
    const std::int64_t index = indexFor(now);
    // The common case appends to the latest window (single-machine
    // virtual time never goes backwards).
    if (windows_.empty() || windows_.back().index < index) {
        windows_.push_back(Window{index, {}, 0.0});
    } else if (windows_.back().index != index) {
        // Out-of-order timestamp (merged fleets replaying): find or
        // insert the window, keeping lazy sorting honest.
        Window *hit = nullptr;
        for (auto &w : windows_) {
            if (w.index == index) {
                hit = &w;
                break;
            }
        }
        if (hit == nullptr) {
            windows_.push_back(Window{index, {}, 0.0});
            sorted_valid_ = false;
        } else {
            hit->series.addMs(value);
            hit->sum += value;
            ++total_count_;
            return;
        }
    }
    windows_.back().series.addMs(value);
    windows_.back().sum += value;
    ++total_count_;
}

const std::vector<WindowedHistogram::Window> &
WindowedHistogram::windows() const
{
    if (!sorted_valid_) {
        std::sort(windows_.begin(), windows_.end(),
                  [](const Window &a, const Window &b) {
                      return a.index < b.index;
                  });
        sorted_valid_ = true;
    }
    return windows_;
}

void
WindowedHistogram::setOrigin(SimTime origin)
{
    if (total_count_ != 0)
        panic("WindowedHistogram::setOrigin: %zu samples already "
              "recorded against the old origin",
              total_count_);
    origin_ = origin;
    origin_set_ = true;
}

void
WindowedHistogram::merge(const WindowedHistogram &other)
{
    if (empty() && total_count_ == 0) {
        window_length_ = other.window_length_;
        if (!origin_set_) {
            origin_ = other.origin_;
            origin_set_ = other.origin_set_;
        }
    }
    if (window_length_ != other.window_length_)
        panic("WindowedHistogram::merge: window lengths differ "
              "(%.3f ms vs %.3f ms)",
              window_length_.toMs(), other.window_length_.toMs());
    if (origin_set_ != other.origin_set_)
        panic("WindowedHistogram::merge: origin-aligned series merged "
              "with unaligned series (windows would misalign)");
    for (const auto &w : other.windows()) {
        Window *hit = nullptr;
        for (auto &mine : windows_) {
            if (mine.index == w.index) {
                hit = &mine;
                break;
            }
        }
        if (hit == nullptr) {
            windows_.push_back(Window{w.index, {}, 0.0});
            hit = &windows_.back();
            sorted_valid_ = false;
        }
        for (double v : w.series.raw()) {
            hit->series.addMs(v);
            hit->sum += v;
            ++total_count_;
        }
    }
    // Re-establish order for deterministic exports.
    (void)windows();
}

void
WindowedHistogram::clear()
{
    windows_.clear();
    sorted_valid_ = true;
    total_count_ = 0;
}

std::int64_t
WindowedHistogram::indexFor(SimTime now) const
{
    if (window_length_.toNs() <= 0)
        panic("WindowedHistogram: non-positive window length");
    if (origin_set_ && now < origin_)
        panic("WindowedHistogram: sample at %lld ns predates the "
              "declared origin %lld ns",
              static_cast<long long>(now.toNs()),
              static_cast<long long>(origin_.toNs()));
    return (now.toNs() - origin_.toNs()) / window_length_.toNs();
}

StatRegistry &
StatRegistry::global()
{
    static StatRegistry registry;
    return registry;
}

void
StatRegistry::incrGlobal(const std::string &name, std::int64_t delta)
{
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    global().incr(name, delta);
}

double
LatencySeries::mean() const
{
    if (samples_.empty())
        return kNaN;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double
LatencySeries::min() const
{
    if (samples_.empty())
        return kNaN;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
LatencySeries::max() const
{
    if (samples_.empty())
        return kNaN;
    return *std::max_element(samples_.begin(), samples_.end());
}

const std::vector<double> &
LatencySeries::sortedCache() const
{
    if (!sorted_valid_) {
        sorted_cache_ = samples_;
        std::sort(sorted_cache_.begin(), sorted_cache_.end());
        sorted_valid_ = true;
    }
    return sorted_cache_;
}

double
LatencySeries::percentile(double p) const
{
    if (p < 0.0 || p > 100.0)
        panic("LatencySeries::percentile: p=%f out of range", p);
    if (samples_.empty())
        return kNaN;
    const auto &s = sortedCache();
    if (s.size() == 1)
        return s.front();
    const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= s.size())
        return s.back();
    return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double
LatencySeries::cdfAt(double x) const
{
    if (samples_.empty())
        return kNaN;
    const auto &s = sortedCache();
    const auto below =
        std::upper_bound(s.begin(), s.end(), x) - s.begin();
    return static_cast<double>(below) / static_cast<double>(s.size());
}

std::vector<double>
LatencySeries::sorted() const
{
    return sortedCache();
}

} // namespace catalyzer::sim
