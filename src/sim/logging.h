/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() flags an internal library bug and aborts; fatal() flags a user
 * error (bad configuration, invalid arguments) and exits; warn()/inform()
 * report conditions without stopping the run.
 */

#ifndef CATALYZER_SIM_LOGGING_H
#define CATALYZER_SIM_LOGGING_H

#include <cstdarg>
#include <cstdlib>
#include <string>

namespace catalyzer::sim {

/** Verbosity levels for runtime messages. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/**
 * Parse a verbosity name: "silent"/"warn"/"inform"/"debug"
 * (case-insensitive) or the numeric levels "0".."3". Returns
 * @p fallback for null or unrecognized input.
 */
LogLevel parseLogLevel(const char *text, LogLevel fallback);

/**
 * Set the global verbosity; defaults to Warn (tests stay quiet). The
 * CATALYZER_LOG_LEVEL environment variable overrides the default at
 * startup; an explicit setLogLevel() call wins over the environment.
 */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Report an internal invariant violation and abort. Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose tracing, off by default. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_LOGGING_H
