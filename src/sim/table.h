/**
 * @file
 * Plain-text table and CDF rendering for the benchmark harnesses.
 *
 * Every bench binary prints the rows/series of one paper table or figure;
 * this keeps the rendering consistent and diffable.
 */

#ifndef CATALYZER_SIM_TABLE_H
#define CATALYZER_SIM_TABLE_H

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace catalyzer::sim {

/** Format a millisecond quantity with sensible precision. */
std::string fmtMs(double ms);

/** Format a byte quantity with adaptive units (B/KB/MB). */
std::string fmtBytes(double bytes);

/** Format a ratio like "35.2x". */
std::string fmtSpeedup(double x);

/**
 * Fixed-column text table. Column widths auto-size to content; the first
 * column is left-aligned, the rest right-aligned (numeric convention).
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = {});

    /** Set header cells; resets any existing rows' width accounting. */
    void setHeader(std::vector<std::string> cells);

    /** Append one row; must match the header arity if one was set. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == separator
};

/**
 * Print an empirical CDF as (x, fraction) pairs, matching the paper's
 * CDF figures (e.g. Fig. 1).
 */
void printCdf(std::ostream &os, const std::string &label,
              const std::vector<double> &sorted_samples);

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_TABLE_H
