/**
 * @file
 * Virtual time for the simulated host.
 *
 * All latencies in the library are expressed as SimTime values carried on
 * a virtual clock; nothing in the simulation reads the wall clock, which
 * keeps every run bit-for-bit reproducible.
 */

#ifndef CATALYZER_SIM_TIME_H
#define CATALYZER_SIM_TIME_H

#include <compare>
#include <cstdint>
#include <string>
#include <type_traits>

#include "sim/logging.h"

namespace catalyzer::sim {

/**
 * A point or span of virtual time with nanosecond resolution.
 *
 * SimTime is a strong type (rather than a bare integer) so that latency
 * arithmetic cannot be accidentally mixed with counts or byte sizes.
 */
class SimTime
{
  public:
    constexpr SimTime() : ns_(0) {}

    /** Construct from nanoseconds. */
    static constexpr SimTime
    nanoseconds(std::int64_t ns)
    {
        return SimTime(ns);
    }

    /** Construct from microseconds. */
    static constexpr SimTime
    microseconds(double us)
    {
        return SimTime(static_cast<std::int64_t>(us * 1e3));
    }

    /** Construct from milliseconds. */
    static constexpr SimTime
    milliseconds(double ms)
    {
        return SimTime(static_cast<std::int64_t>(ms * 1e6));
    }

    /** Construct from seconds. */
    static constexpr SimTime
    seconds(double s)
    {
        return SimTime(static_cast<std::int64_t>(s * 1e9));
    }

    /** Zero span. */
    static constexpr SimTime zero() { return SimTime(0); }

    constexpr std::int64_t toNs() const { return ns_; }
    constexpr double toUs() const { return static_cast<double>(ns_) / 1e3; }
    constexpr double toMs() const { return static_cast<double>(ns_) / 1e6; }
    constexpr double toSec() const { return static_cast<double>(ns_) / 1e9; }

    constexpr SimTime
    operator+(SimTime other) const
    {
        return SimTime(ns_ + other.ns_);
    }

    constexpr SimTime
    operator-(SimTime other) const
    {
        return SimTime(ns_ - other.ns_);
    }

    constexpr SimTime &
    operator+=(SimTime other)
    {
        ns_ += other.ns_;
        return *this;
    }

    constexpr SimTime &
    operator-=(SimTime other)
    {
        ns_ -= other.ns_;
        return *this;
    }

    /**
     * Scale a span by a factor (e.g. per-object cost times object
     * count). Counts are exact up to 2^53. Panics when the product
     * cannot be represented as a SimTime (overflow would otherwise
     * silently wrap the virtual clock — a fleet-scale page-batch count
     * is enough to hit it).
     */
    constexpr SimTime
    operator*(double f) const
    {
        const double product = static_cast<double>(ns_) * f;
        if (!(product >= kMinProductNs && product <= kMaxProductNs))
            panic("SimTime::operator*: %lld ns * %f overflows",
                  static_cast<long long>(ns_), f);
        return SimTime(static_cast<std::int64_t>(product));
    }

    /**
     * Exact checked multiply for integral counts: unlike the double
     * path there is no precision loss below 2^63, and overflow panics
     * instead of wrapping.
     */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    constexpr SimTime
    operator*(T n) const
    {
        std::int64_t product = 0;
        if (__builtin_mul_overflow(ns_, static_cast<std::int64_t>(n),
                                   &product))
            panic("SimTime::operator*: %lld ns * %lld overflows",
                  static_cast<long long>(ns_),
                  static_cast<long long>(n));
        return SimTime(product);
    }

    /** Divide a span, e.g. to spread work across parallel workers. */
    constexpr SimTime
    operator/(std::int64_t n) const
    {
        return SimTime(ns_ / n);
    }

    constexpr auto operator<=>(const SimTime &) const = default;

    /** Render with an adaptive unit, e.g. "1.369 ms" or "970 us". */
    std::string toString() const;

  private:
    explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}

    /**
     * Conservative int64 range for the double-multiply overflow check:
     * the nearest doubles strictly inside int64's range, so the cast
     * back to int64 is always defined.
     */
    static constexpr double kMaxProductNs = 9.2e18;
    static constexpr double kMinProductNs = -9.2e18;

    std::int64_t ns_;
};

constexpr SimTime
operator*(double n, SimTime t)
{
    return t * n;
}

namespace time_literals {

constexpr SimTime operator""_ns(unsigned long long v)
{
    return SimTime::nanoseconds(static_cast<std::int64_t>(v));
}

constexpr SimTime operator""_us(unsigned long long v)
{
    return SimTime::microseconds(static_cast<double>(v));
}

constexpr SimTime operator""_us(long double v)
{
    return SimTime::microseconds(static_cast<double>(v));
}

constexpr SimTime operator""_ms(unsigned long long v)
{
    return SimTime::milliseconds(static_cast<double>(v));
}

constexpr SimTime operator""_ms(long double v)
{
    return SimTime::milliseconds(static_cast<double>(v));
}

constexpr SimTime operator""_s(unsigned long long v)
{
    return SimTime::seconds(static_cast<double>(v));
}

} // namespace time_literals

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_TIME_H
