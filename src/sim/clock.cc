#include "sim/clock.h"

#include "sim/logging.h"

namespace catalyzer::sim {

void
VirtualClock::advance(SimTime span)
{
    if (span < SimTime::zero())
        panic("VirtualClock::advance: negative span %lld ns",
              static_cast<long long>(span.toNs()));
    now_ += span;
}

void
VirtualClock::advanceParallel(SimTime per_item, std::int64_t count,
                              int workers)
{
    if (count <= 0)
        return;
    if (workers < 1)
        workers = 1;
    const std::int64_t slices = (count + workers - 1) / workers;
    advance(per_item * slices);
}

} // namespace catalyzer::sim
