#include "sim/rng.h"

#include <cmath>

namespace catalyzer::sim {

namespace {

/** SplitMix64 step, used only to expand the seed. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::heavyTail(double lo, double hi, double alpha)
{
    // Bounded Pareto via inverse transform.
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    const double x = std::pow(
        -(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
    return x;
}

Rng
Rng::split()
{
    return Rng(next64());
}

} // namespace catalyzer::sim
