/**
 * @file
 * The virtual clock that carries all simulated latency.
 */

#ifndef CATALYZER_SIM_CLOCK_H
#define CATALYZER_SIM_CLOCK_H

#include <cstdint>

#include "sim/logging.h"
#include "sim/time.h"

namespace catalyzer::sim {

/**
 * Monotonic virtual clock.
 *
 * Mechanisms charge their modelled cost with advance(); measurement code
 * brackets an operation with now() before and after. The clock never moves
 * backwards.
 */
class VirtualClock
{
  public:
    VirtualClock() = default;

    /** Current virtual time since simulation start. */
    SimTime now() const { return now_; }

    /** Move the clock forward by a span; negative spans are a bug. */
    void advance(SimTime span);

    /**
     * Charge work that is spread across @p workers parallel CPUs:
     * the clock advances by the per-item cost times ceil(count/workers).
     */
    void advanceParallel(SimTime per_item, std::int64_t count, int workers);

    /** Reset to t=0 (used between independent experiment repetitions). */
    void reset() { now_ = SimTime::zero(); }

  private:
    SimTime now_;
};

/**
 * RAII span measurement: records the virtual time elapsed between
 * construction and elapsed() calls.
 *
 * A Stopwatch must not outlive its clock's timeline: if the clock is
 * reset() while a Stopwatch is armed, elapsed() would silently
 * underflow into a huge bogus span; it panics instead.
 */
class Stopwatch
{
  public:
    explicit Stopwatch(const VirtualClock &clock)
        : clock_(clock), start_(clock.now())
    {}

    /** Virtual time elapsed since construction. */
    SimTime
    elapsed() const
    {
        const SimTime now = clock_.now();
        if (now < start_)
            panic("Stopwatch::elapsed: clock moved behind start "
                  "(%lld ns < %lld ns) — VirtualClock::reset() with an "
                  "armed stopwatch?",
                  static_cast<long long>(now.toNs()),
                  static_cast<long long>(start_.toNs()));
        return now - start_;
    }

    /** Re-arm the stopwatch at the current instant. */
    void restart() { start_ = clock_.now(); }

  private:
    const VirtualClock &clock_;
    SimTime start_;
};

} // namespace catalyzer::sim

#endif // CATALYZER_SIM_CLOCK_H
