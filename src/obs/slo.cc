#include "obs/slo.h"

#include <algorithm>
#include <ostream>

#include "sim/json.h"

namespace catalyzer::obs {

SloReport
evaluateSlo(const sim::WindowedHistogram &series, const SloTarget &target)
{
    SloReport report;
    report.target = target;
    const double budget = std::max(1.0 - target.objective, 1e-12);
    for (const auto &w : series.windows()) {
        SloWindow out;
        out.index = w.index;
        out.start = series.windowStart(w.index);
        out.count = w.series.count();
        out.percentileValue = w.series.percentile(target.percentile);
        // Exact count of bad events, not an interpolated estimate: a
        // window with 3 samples and one violation must read 1/3, and
        // tails matter precisely when counts are small.
        for (double v : w.series.raw()) {
            if (v > target.thresholdMs)
                ++out.badEvents;
        }
        out.badFraction =
            out.count == 0 ? 0.0
                           : static_cast<double>(out.badEvents) /
                                 static_cast<double>(out.count);
        out.burnRate = out.badFraction / budget;
        out.met = out.badFraction <= (1.0 - target.objective) + 1e-12;
        report.totalEvents += out.count;
        report.badEvents += out.badEvents;
        report.worstBurnRate =
            std::max(report.worstBurnRate, out.burnRate);
        if (out.met)
            ++report.windowsMet;
        report.windows.push_back(std::move(out));
    }
    return report;
}

std::vector<TenantSlo>
evaluatePerTenant(
    const std::map<std::string, sim::WindowedHistogram> &series,
    const SloTarget &target)
{
    std::vector<TenantSlo> out;
    out.reserve(series.size());
    for (const auto &[tenant, hist] : series) {
        TenantSlo t;
        t.tenant = tenant;
        t.events = hist.totalCount();
        t.report = evaluateSlo(hist, target);
        out.push_back(std::move(t));
    }
    return out;
}

void
writeSloJson(std::ostream &os, const std::vector<SloReport> &reports)
{
    os << "{\n  \"slos\": [";
    bool first = true;
    for (const SloReport &report : reports) {
        os << (first ? "\n" : ",\n") << "    {\"metric\": \""
           << sim::jsonEscape(report.target.metric)
           << "\", \"threshold_ms\": ";
        sim::writeJsonNumber(os, report.target.thresholdMs);
        os << ", \"objective\": ";
        sim::writeJsonNumber(os, report.target.objective);
        os << ", \"percentile\": ";
        sim::writeJsonNumber(os, report.target.percentile);
        os << ", \"total_events\": " << report.totalEvents
           << ", \"bad_events\": " << report.badEvents
           << ", \"attainment\": ";
        sim::writeJsonNumber(os, report.attainment());
        os << ", \"objective_met\": "
           << (report.objectiveMet() ? "true" : "false")
           << ", \"worst_burn_rate\": ";
        sim::writeJsonNumber(os, report.worstBurnRate);
        os << ", \"windows_met\": " << report.windowsMet
           << ",\n     \"windows\": [";
        bool wfirst = true;
        for (const SloWindow &w : report.windows) {
            os << (wfirst ? "\n" : ",\n")
               << "       {\"index\": " << w.index << ", \"start_ms\": ";
            sim::writeJsonNumber(os, w.start.toMs());
            os << ", \"count\": " << w.count << ", \"p\": ";
            sim::writeJsonNumber(os, w.percentileValue);
            os << ", \"bad_events\": " << w.badEvents
               << ", \"bad_fraction\": ";
            sim::writeJsonNumber(os, w.badFraction);
            os << ", \"burn_rate\": ";
            sim::writeJsonNumber(os, w.burnRate);
            os << ", \"met\": " << (w.met ? "true" : "false") << "}";
            wfirst = false;
        }
        os << "\n     ]}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

} // namespace catalyzer::obs
