/**
 * @file
 * Windowed SLO evaluation with burn-rate accounting.
 *
 * An SLO here is "fraction of events under thresholdMs must be at
 * least objective" (e.g. 99.9% of boots under 5 ms). Evaluated against
 * a WindowedHistogram it yields, per window, the achieved percentile,
 * the bad-event fraction and the burn rate — badFraction divided by
 * the error budget (1 - objective), the standard SRE measure: burn
 * rate 1 consumes the budget exactly at the sustainable pace, burn
 * rate 10 exhausts a 30-day budget in 3 days. Tail latency over time
 * is exactly what lifetime aggregates hide (a 10-second outage
 * disappears into a day's p99); the per-window view is what the fleet
 * traffic engine scores against.
 */

#ifndef CATALYZER_OBS_SLO_H
#define CATALYZER_OBS_SLO_H

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace catalyzer::obs {

/** One service-level objective over a windowed latency series. */
struct SloTarget
{
    /** Windowed-series name this target scores (for reports). */
    std::string metric;
    /** Latency threshold defining a "good" event, in the series' unit
     *  (milliseconds for the boot/e2e series). */
    double thresholdMs = 1.0;
    /** Required good-event fraction, e.g. 0.999. */
    double objective = 0.999;
    /** Percentile reported per window alongside the verdict. */
    double percentile = 99.0;
};

/** Per-window evaluation outcome. */
struct SloWindow
{
    std::int64_t index = 0;
    sim::SimTime start;
    std::size_t count = 0;
    /** The target percentile's value in this window. */
    double percentileValue = 0.0;
    std::size_t badEvents = 0;
    double badFraction = 0.0;
    /** badFraction / (1 - objective); 1.0 = sustainable pace. */
    double burnRate = 0.0;
    /** Window met the objective (badFraction <= 1 - objective). */
    bool met = true;
};

/** Whole-series evaluation of one target. */
struct SloReport
{
    SloTarget target;
    std::vector<SloWindow> windows;
    std::size_t totalEvents = 0;
    std::size_t badEvents = 0;
    double worstBurnRate = 0.0;
    std::size_t windowsMet = 0;

    /** Overall good-event fraction (1.0 on an empty series). */
    double
    attainment() const
    {
        if (totalEvents == 0)
            return 1.0;
        return 1.0 - static_cast<double>(badEvents) /
                         static_cast<double>(totalEvents);
    }

    bool
    objectiveMet() const
    {
        return attainment() >= target.objective;
    }
};

/** Evaluate @p target over @p series (exact bad-event counts, not
 *  interpolated percentiles). */
SloReport evaluateSlo(const sim::WindowedHistogram &series,
                      const SloTarget &target);

/** One tenant's evaluation in a multi-tenant fleet run. */
struct TenantSlo
{
    std::string tenant;
    std::size_t events = 0;
    SloReport report;
};

/**
 * Evaluate @p target over every tenant's windowed series (map key =
 * tenant name), in key order. The fleet bench scores per-tenant SLO
 * attainment with this: a fleet-level attainment number can hide one
 * tenant absorbing all the bad events.
 */
std::vector<TenantSlo>
evaluatePerTenant(const std::map<std::string, sim::WindowedHistogram> &series,
                  const SloTarget &target);

/**
 * JSON report for a batch of evaluations:
 * {"slos": [{"metric", "threshold_ms", "objective", "attainment",
 * "objective_met", "worst_burn_rate", "windows": [...]}, ...]}.
 */
void writeSloJson(std::ostream &os,
                  const std::vector<SloReport> &reports);

} // namespace catalyzer::obs

#endif // CATALYZER_OBS_SLO_H
