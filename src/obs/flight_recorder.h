/**
 * @file
 * Black-box flight recorder: always-on postmortem capture.
 *
 * Production incidents are diagnosed from what was already being
 * recorded when things went wrong, not from a re-run. The machine's
 * always-on tracer ring (sandbox::Machine) keeps the recent spans; the
 * FlightRecorder turns a triggering event — an injected fault firing at
 * a boot-path site, or the platform degrading a boot one tier — into a
 * bounded Incident holding the trigger (site, detail, distributed trace
 * id), the counter deltas since the previous incident, and the tail of
 * the span ring. Incidents are queryable in memory and, when a dump
 * directory is configured (or $CATALYZER_FLIGHT_DIR is set), each one
 * is also written out as a standalone JSON postmortem artifact.
 */

#ifndef CATALYZER_OBS_FLIGHT_RECORDER_H
#define CATALYZER_OBS_FLIGHT_RECORDER_H

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/clock.h"
#include "sim/stats.h"
#include "trace/trace.h"

namespace catalyzer::obs {

/** One captured incident. */
struct Incident
{
    /** Monotonic per-recorder sequence number (from 1). */
    std::uint64_t seq = 0;
    /** Trigger class: "fault-injected" or "tier-fallback". */
    std::string kind;
    /** Fault site name ("remote_peer_death", ...). */
    std::string site;
    /** Free-form trigger detail (e.g. "sfork -> warm", error text). */
    std::string detail;
    /** Distributed trace id of the request that hit it; 0 if none. */
    trace::TraceId traceId = 0;
    /** Machine's virtual time at capture. */
    sim::SimTime at;
    /** Counters that changed since the previous incident (name, delta). */
    std::vector<std::pair<std::string, std::int64_t>> counterDeltas;
    /** Tail of the machine's span ring at capture time. */
    std::vector<trace::Span> recentSpans;
};

/**
 * The per-machine recorder. References (not owns) the machine's tracer,
 * clock and stat registry; capture is cheap enough to stay always-on
 * because it only runs when an incident actually fires.
 */
class FlightRecorder
{
  public:
    /** Most recent incidents kept in memory. */
    static constexpr std::size_t kMaxIncidents = 64;
    /** Span-ring tail copied into each incident. */
    static constexpr std::size_t kSpanTail = 128;

    FlightRecorder(std::uint32_t machine, const trace::Tracer &tracer,
                   const sim::VirtualClock &clock,
                   const sim::StatRegistry &stats);

    /**
     * Capture one incident now. Returns its sequence number. If a dump
     * directory is configured the incident is also written to
     * <dir>/flightrec-m<machine>-<seq>.json (directory created on
     * first use; a write failure is counted, never thrown).
     */
    std::uint64_t record(const std::string &kind, const std::string &site,
                         const std::string &detail,
                         trace::TraceId trace_id);

    /** Auto-dump directory; empty disables dumping. */
    void setDumpDirectory(std::string dir);
    const std::string &dumpDirectory() const { return dump_dir_; }

    /** In-memory incidents, oldest first (bounded by kMaxIncidents). */
    const std::deque<Incident> &incidents() const { return incidents_; }

    /** Incidents captured over the recorder's lifetime. */
    std::uint64_t incidentCount() const { return seq_; }

    /** Incidents that aged out of the in-memory ring. */
    std::uint64_t droppedCount() const { return dropped_; }

    /** Postmortem files successfully written. */
    std::uint64_t dumpsWritten() const { return dumps_written_; }

    /** Write one incident as a JSON object. */
    static void writeIncidentJson(std::ostream &os,
                                  const Incident &incident,
                                  std::uint32_t machine);

    /** Write all buffered incidents: {"machine": M, "incidents": [...]}. */
    void writeJson(std::ostream &os) const;

  private:
    std::uint32_t machine_;
    const trace::Tracer &tracer_;
    const sim::VirtualClock &clock_;
    const sim::StatRegistry &stats_;
    std::string dump_dir_;
    std::deque<Incident> incidents_;
    /** Counter values at the previous incident (delta baseline). */
    std::map<std::string, std::int64_t> last_counters_;
    std::uint64_t seq_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t dumps_written_ = 0;
};

} // namespace catalyzer::obs

#endif // CATALYZER_OBS_FLIGHT_RECORDER_H
