#include "obs/fleet_trace.h"

#include <algorithm>
#include <ostream>

#include "trace/export.h"

namespace catalyzer::obs {

std::vector<trace::Span>
mergeFleetSpans(const std::vector<const trace::Tracer *> &tracers)
{
    std::vector<trace::Span> merged;
    for (const trace::Tracer *tracer : tracers) {
        if (tracer == nullptr)
            continue;
        std::vector<trace::Span> spans = tracer->snapshot();
        merged.insert(merged.end(),
                      std::make_move_iterator(spans.begin()),
                      std::make_move_iterator(spans.end()));
    }
    // Deterministic order: machine lane, then start time, then creation
    // order within the machine (span ids are per-tracer monotonic).
    std::stable_sort(merged.begin(), merged.end(),
                     [](const trace::Span &a, const trace::Span &b) {
                         if (a.machine != b.machine)
                             return a.machine < b.machine;
                         if (a.start != b.start)
                             return a.start < b.start;
                         return a.id < b.id;
                     });
    return merged;
}

void
exportFleetChromeTrace(const std::vector<const trace::Tracer *> &tracers,
                       std::ostream &os)
{
    trace::exportChromeTrace(mergeFleetSpans(tracers), os);
}

} // namespace catalyzer::obs
