/**
 * @file
 * Fleet trace export: merge per-machine tracers into one Chrome trace.
 *
 * Every machine records spans into its own Tracer on its own virtual
 * clock; a cross-machine boot (remote-sfork, P2P image fetch) leaves
 * pieces of one request in several buffers, all carrying the same
 * distributed trace id. The fleet exporter concatenates the buffers
 * into a single trace_event document where pid = machine and tid =
 * trace id, so chrome://tracing / Perfetto renders the lender's
 * "lend-template" span and the borrower's "boot/Catalyzer-remote-sfork"
 * tree as one aligned timeline instead of two disconnected forests.
 */

#ifndef CATALYZER_OBS_FLEET_TRACE_H
#define CATALYZER_OBS_FLEET_TRACE_H

#include <iosfwd>
#include <vector>

#include "trace/trace.h"

namespace catalyzer::obs {

/**
 * Merge the snapshots of @p tracers (machine order, then span creation
 * order) and write one Chrome trace_event JSON document. Null entries
 * are skipped.
 */
void exportFleetChromeTrace(
    const std::vector<const trace::Tracer *> &tracers, std::ostream &os);

/** The merged, ordered span list the exporter writes (for tests). */
std::vector<trace::Span>
mergeFleetSpans(const std::vector<const trace::Tracer *> &tracers);

} // namespace catalyzer::obs

#endif // CATALYZER_OBS_FLEET_TRACE_H
