#include "obs/flight_recorder.h"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "sim/json.h"

namespace catalyzer::obs {

FlightRecorder::FlightRecorder(std::uint32_t machine,
                               const trace::Tracer &tracer,
                               const sim::VirtualClock &clock,
                               const sim::StatRegistry &stats)
    : machine_(machine), tracer_(tracer), clock_(clock), stats_(stats)
{
}

void
FlightRecorder::setDumpDirectory(std::string dir)
{
    dump_dir_ = std::move(dir);
}

std::uint64_t
FlightRecorder::record(const std::string &kind, const std::string &site,
                       const std::string &detail, trace::TraceId trace_id)
{
    Incident incident;
    incident.seq = ++seq_;
    incident.kind = kind;
    incident.site = site;
    incident.detail = detail;
    incident.traceId = trace_id;
    incident.at = clock_.now();

    // Counter deltas against the previous incident (the first incident
    // baselines against recorder creation, i.e. full counter values).
    for (const auto &[name, value] : stats_.all()) {
        auto it = last_counters_.find(name);
        const std::int64_t prev =
            it == last_counters_.end() ? 0 : it->second;
        if (value != prev)
            incident.counterDeltas.emplace_back(name, value - prev);
    }
    last_counters_ = stats_.all();

    incident.recentSpans = tracer_.recent(kSpanTail);

    if (!dump_dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dump_dir_, ec);
        const std::string path = dump_dir_ + "/flightrec-m" +
                                 std::to_string(machine_) + "-" +
                                 std::to_string(incident.seq) + ".json";
        std::ofstream out(path);
        if (out) {
            writeIncidentJson(out, incident, machine_);
            ++dumps_written_;
        }
    }

    incidents_.push_back(std::move(incident));
    while (incidents_.size() > kMaxIncidents) {
        incidents_.pop_front();
        ++dropped_;
    }
    return seq_;
}

void
FlightRecorder::writeIncidentJson(std::ostream &os,
                                  const Incident &incident,
                                  std::uint32_t machine)
{
    os << "{\n  \"machine\": " << machine
       << ",\n  \"seq\": " << incident.seq << ",\n  \"kind\": \""
       << sim::jsonEscape(incident.kind) << "\",\n  \"site\": \""
       << sim::jsonEscape(incident.site) << "\",\n  \"detail\": \""
       << sim::jsonEscape(incident.detail) << "\",\n  \"trace_id\": \""
       << incident.traceId << "\",\n  \"at_ms\": ";
    sim::writeJsonNumber(os, incident.at.toMs());
    os << ",\n  \"counter_deltas\": {";
    bool first = true;
    for (const auto &[name, delta] : incident.counterDeltas) {
        os << (first ? "\n" : ",\n") << "    \"" << sim::jsonEscape(name)
           << "\": " << delta;
        first = false;
    }
    os << "\n  },\n  \"recent_spans\": [";
    first = true;
    for (const trace::Span &span : incident.recentSpans) {
        os << (first ? "\n" : ",\n") << "    {\"id\": " << span.id
           << ", \"parent\": " << span.parent << ", \"trace_id\": \""
           << span.traceId << "\", \"name\": \""
           << sim::jsonEscape(span.name) << "\", \"start_ms\": ";
        sim::writeJsonNumber(os, span.start.toMs());
        os << ", \"duration_ms\": ";
        sim::writeJsonNumber(os, span.duration().toMs());
        os << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

void
FlightRecorder::writeJson(std::ostream &os) const
{
    os << "{\"machine\": " << machine_ << ", \"captured\": " << seq_
       << ", \"dropped\": " << dropped_ << ", \"incidents\": [";
    bool first = true;
    for (const Incident &incident : incidents_) {
        os << (first ? "\n" : ",\n");
        writeIncidentJson(os, incident, machine_);
        first = false;
    }
    os << "]}\n";
}

} // namespace catalyzer::obs
