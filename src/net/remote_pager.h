/**
 * @file
 * Network-backed demand paging for remote-sfork (MITOSIS-style).
 *
 * A borrower machine that remote-sforked from a peer's template owns a
 * local mirror of the lender's func-image with no data in it yet. The
 * RemotePager hooks the borrower's page faults (mem::FaultObserver):
 * every Base-EPT fill inside the mirrored window also pulls the page
 * from the lender over the fabric. Pulls are batched — a new pull
 * request (one RTT + request setup) is issued every batchPages pages,
 * and each page rides the streaming bandwidth — so the cost structure
 * matches RDMA-read page fetching rather than per-page round trips.
 *
 * Fault handling degrades instead of throwing (a pull happens inside
 * invoke(), where a FaultError must never escape): when the lender dies
 * mid-pull the pager fails the batch once and reroutes every later pull
 * to origin storage; an injected link failure costs one attempt timeout
 * and the retry succeeds.
 */

#ifndef CATALYZER_NET_REMOTE_PAGER_H
#define CATALYZER_NET_REMOTE_PAGER_H

#include <memory>

#include "faults/fault_injector.h"
#include "mem/address_space.h"
#include "net/fabric.h"
#include "sim/context.h"
#include "trace/trace.h"

namespace catalyzer::net {

/** Pulls remotely-backed pages on demand for one borrowed instance. */
class RemotePager : public mem::FaultObserver
{
  public:
    /**
     * @param ctx          Borrower machine's context (charged).
     * @param fabric       The cluster fabric.
     * @param self         Borrower node.
     * @param peer         Lender node holding the template's memory.
     * @param window_start First VA page of the mirrored image window.
     * @param window_pages Window extent.
     * @param injector     Fault source; nullptr disables injection.
     * @param batch_pages  Pages per pull request.
     * @param borrow_trace Borrower-side trace context (captured at boot
     *                     time, so lifetime pulls stay tagged with the
     *                     boot's distributed trace id); disabled = no
     *                     spans.
     * @param lend_trace   Lender-side context carrying the same trace
     *                     id; each batch served while the lender is
     *                     alive drops a marker span into its tracer.
     */
    RemotePager(sim::SimContext &ctx, Fabric &fabric, NodeId self,
                NodeId peer, mem::PageIndex window_start,
                std::size_t window_pages,
                faults::FaultInjector *injector,
                std::size_t batch_pages,
                trace::TraceContext borrow_trace = {},
                trace::TraceContext lend_trace = {});

    void onFault(mem::PageIndex page, bool write,
                 mem::FaultResult result) override;
    void onFaultRange(mem::PageIndex start, std::size_t npages,
                      bool write, mem::FaultResult result) override;

    /** Current pull source (the lender, or origin after its death). */
    NodeId source() const { return source_; }

    std::uint64_t pagesPulled() const { return pages_pulled_; }
    std::uint64_t batchesIssued() const { return batches_; }

  private:
    bool inWindow(mem::PageIndex page) const
    {
        return page >= window_start_ &&
               page < window_start_ + window_pages_;
    }

    /** Account @p npages pulled pages, opening batches as needed. */
    void pull(std::size_t npages);

    /** Start a new pull request: faults, RTT, request setup. */
    void openBatch();

    sim::SimContext &ctx_;
    Fabric &fabric_;
    NodeId self_;
    /** The original lender (source_ reroutes to origin on its death). */
    NodeId peer_;
    NodeId source_;
    trace::TraceContext borrow_trace_;
    trace::TraceContext lend_trace_;
    mem::PageIndex window_start_;
    std::size_t window_pages_;
    faults::FaultInjector *injector_;
    std::size_t batch_pages_;
    /** Pages still covered by the currently open pull request. */
    std::size_t batch_left_ = 0;
    std::uint64_t pages_pulled_ = 0;
    std::uint64_t batches_ = 0;
    /** Lender-NIC registration driving the contention model. */
    StreamLease lease_;
};

} // namespace catalyzer::net

#endif // CATALYZER_NET_REMOTE_PAGER_H
