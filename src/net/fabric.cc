#include "net/fabric.h"

#include <algorithm>

#include "sim/logging.h"

namespace catalyzer::net {

StreamLease::StreamLease(Fabric &fabric, NodeId node)
    : fabric_(fabric), node_(node)
{
    fabric_.openStream(node_);
}

StreamLease::~StreamLease()
{
    fabric_.closeStream(node_);
}

std::size_t
Fabric::rackOf(NodeId node) const
{
    if (node == kOriginStorage)
        return static_cast<std::size_t>(-1);
    const std::size_t per_rack = std::max<std::size_t>(
        config_.machinesPerRack, 1);
    return node / per_rack;
}

sim::SimTime
Fabric::rtt(NodeId a, NodeId b, const sim::CostModel &costs) const
{
    return sameRack(a, b) ? costs.netRttIntraRack : costs.netRttCrossRack;
}

sim::SimTime
Fabric::streamCost(NodeId src, std::size_t bytes,
                   const sim::CostModel &costs) const
{
    const sim::SimTime per_mib = src == kOriginStorage
        ? costs.netOriginStreamPerMiB
        : costs.netStreamPerMiB;
    return per_mib *
           (static_cast<double>(bytes) / (1024.0 * 1024.0));
}

std::size_t
Fabric::openStreams(NodeId node) const
{
    auto it = streams_.find(node);
    return it == streams_.end() ? 0 : it->second;
}

double
Fabric::contentionFactor(NodeId src, NodeId dst,
                         std::size_t discount_streams) const
{
    const std::size_t open = openStreams(src) + openStreams(dst);
    const std::size_t others =
        open > discount_streams ? open - discount_streams : 0;
    return 1.0 + config_.contentionPenalty *
                     static_cast<double>(others);
}

Transfer
Fabric::transfer(sim::SimContext &ctx, NodeId src, NodeId dst,
                 std::size_t bytes, const char *what,
                 trace::TraceContext trace,
                 std::size_t discount_streams)
{
    const auto &costs = ctx.costs();
    Transfer t;
    t.src = src;
    t.dst = dst;
    t.bytes = bytes;
    t.crossRack = !sameRack(src, dst);

    if (!config_.modelTransfers) {
        // Flat-compat: the legacy per-MiB charge, bit for bit. No
        // counters and no spans either, so pre-fabric runs stay
        // byte-identical (pay-for-use, like a disabled FaultInjector).
        const auto mib = static_cast<std::int64_t>(bytes >> 20);
        t.streaming = costs.networkFetchPerMiB *
                      std::max<std::int64_t>(mib, 1);
        t.total = t.streaming;
        ctx.charge(t.total);
        return t;
    }

    t.rtt = rtt(src, dst, costs);
    t.contention = contentionFactor(src, dst, discount_streams);
    t.streaming = streamCost(src, bytes, costs) * t.contention;
    t.total = t.rtt + t.streaming;

    trace::ScopedSpan span(trace, "net-transfer");
    span.attr("what", what);
    span.attr("bytes", static_cast<std::int64_t>(bytes));
    span.attr("src", src == kOriginStorage
                         ? std::string("origin")
                         : std::to_string(src));
    span.attr("dst", std::to_string(dst));
    span.attr("cross_rack", t.crossRack ? "true" : "false");

    ctx.charge(t.total);
    ctx.stats().incr("net.transfers");
    ctx.stats().incr("net.bytes", static_cast<std::int64_t>(bytes));
    ctx.stats().observeWindowed("win.net.bytes", ctx.now(),
                                static_cast<double>(bytes));
    if (t.crossRack)
        ctx.stats().incr("net.cross_rack_transfers");
    return t;
}

void
Fabric::openStream(NodeId node)
{
    ++streams_[node];
}

void
Fabric::closeStream(NodeId node)
{
    auto it = streams_.find(node);
    if (it == streams_.end() || it->second == 0)
        sim::panic("Fabric: closing a stream that was never opened");
    if (--it->second == 0)
        streams_.erase(it);
}

} // namespace catalyzer::net
