/**
 * @file
 * Deterministic datacenter fabric on the virtual clock.
 *
 * The fabric models the network between the machines of a Cluster the
 * same way mem/ models memory: mechanism code asks for a Transfer and
 * the fabric charges calibrated costs (the CostModel netRtt / netStream
 * family) to the requesting machine's SimContext, split into a round trip and
 * a bandwidth-bound streaming part. Topology is a fixed two-level tree:
 * machines are grouped into racks of machinesPerRack nodes, a transfer
 * inside a rack pays the ToR round trip, anything else a spine hop.
 * Per-NIC contention is modeled through StreamLease: long-lived pull
 * channels (remote-sfork pagers) register an open stream on a node, and
 * every transfer touching that node streams slower in proportion.
 *
 * Compatibility: with modelTransfers off (the default) a transfer
 * charges exactly the legacy flat networkFetchPerMiB formula — no RTT,
 * no counters, no spans — so the existing remoteImages path is
 * bit-identical to the pre-fabric code. Like fault injection, the
 * modeled fabric is strictly pay-for-use.
 */

#ifndef CATALYZER_NET_FABRIC_H
#define CATALYZER_NET_FABRIC_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sim/context.h"
#include "trace/trace.h"

namespace catalyzer::net {

/** Index of a machine on the fabric. */
using NodeId = std::uint32_t;

/**
 * The origin image repository: not a cluster machine, always a
 * cross-rack hop away, and streaming from it rides the shared blob
 * store's per-client bandwidth (netOriginStreamPerMiB).
 */
inline constexpr NodeId kOriginStorage = 0xffffffffu;

/** Fabric topology and feature switches. */
struct FabricConfig
{
    /**
     * Model transfers (RTT + streaming + contention). Off reproduces
     * the legacy flat per-MiB charge bit-identically.
     */
    bool modelTransfers = false;
    /** Machines per rack (two-level tree topology). */
    std::size_t machinesPerRack = 8;
    /** Pages per chunk for chunked image fetches. */
    std::size_t chunkPages = 1024;
    /** Streaming slowdown per concurrent open stream on an endpoint. */
    double contentionPenalty = 0.5;
    /** Fetch func-images from the nearest replica, not always origin. */
    bool p2pImages = false;
    /** Allow remote-sfork from a peer machine's template. */
    bool remoteFork = false;
};

/** Cost breakdown of one completed transfer. */
struct Transfer
{
    NodeId src = 0;
    NodeId dst = 0;
    std::size_t bytes = 0;
    sim::SimTime rtt;       ///< handshake round trip (zero in compat)
    sim::SimTime streaming; ///< bandwidth-bound part
    sim::SimTime total;     ///< what was charged to the clock
    bool crossRack = false;
    double contention = 1.0; ///< streaming slowdown factor applied
};

/**
 * Who holds a cached copy of a named blob (func-image generations,
 * manifests). Implemented by remote::TemplateRegistry; declared here so
 * snapshot::ImageStore can consult it without depending on remote/.
 */
class ReplicaDirectory
{
  public:
    virtual ~ReplicaDirectory() = default;

    /**
     * Closest node (same rack first, then lowest id) holding @p key,
     * excluding @p from itself; nullopt when only origin has it.
     */
    virtual std::optional<NodeId>
    nearestReplica(const std::string &key, NodeId from) const = 0;

    /** Node @p node now caches @p key. */
    virtual void addReplica(const std::string &key, NodeId node) = 0;

    /** Node @p node no longer serves @p key (eviction, death). */
    virtual void dropReplica(const std::string &key, NodeId node) = 0;

    /**
     * Publish-side bookkeeping: @p node published @p generation of
     * @p key. Returns the key's version stamp, which is bumped only
     * when the same node republishes the key with a *different*
     * generation — a rebuild replacing the stored image — so copies
     * cached elsewhere under an older stamp become detectably stale.
     * First-time publishes (every machine announcing its own build of
     * the same function) never bump.
     */
    virtual std::uint64_t recordPublish(const std::string &key,
                                        NodeId node,
                                        std::uint64_t generation) = 0;

    /** Current version stamp of @p key (0 = never published). */
    virtual std::uint64_t keyVersion(const std::string &key) const = 0;
};

/** Content-addressed chunk id: a hash of the chunk's page contents. */
using ChunkId = std::uint64_t;

/**
 * Cluster-wide directory of which machines hold which image chunks.
 * Content addressing makes invalidation unnecessary — a rebuilt image
 * produces different ids for the pages that changed — so the directory
 * only ever tracks presence. Implemented by remote::TemplateRegistry;
 * declared here so snapshot::ImageStore can consult it without
 * depending on remote/.
 */
class ChunkDirectory
{
  public:
    virtual ~ChunkDirectory() = default;

    /**
     * Closest node (same rack first, then lowest id) holding @p chunk,
     * excluding @p from itself; nullopt when only origin has it.
     */
    virtual std::optional<NodeId>
    nearestChunkHolder(ChunkId chunk, NodeId from) const = 0;

    /** Node @p node now caches @p chunk. */
    virtual void addChunkHolder(ChunkId chunk, NodeId node) = 0;

    /** Node @p node dropped @p chunk from every local tier. */
    virtual void dropChunkHolder(ChunkId chunk, NodeId node) = 0;
};

class Fabric;

/**
 * RAII registration of one long-lived stream on a node's NIC. While
 * alive, every transfer touching that node pays the contention penalty
 * for it (remote-sfork pagers hold one on their lender for the life of
 * the borrowing instance).
 */
class StreamLease
{
  public:
    StreamLease(Fabric &fabric, NodeId node);
    ~StreamLease();

    StreamLease(const StreamLease &) = delete;
    StreamLease &operator=(const StreamLease &) = delete;

    NodeId node() const { return node_; }

  private:
    Fabric &fabric_;
    NodeId node_;
};

/**
 * One cluster's network. Stateless apart from the open-stream counts,
 * so a single Fabric is shared by every machine of a Cluster; costs are
 * always charged to the SimContext passed into transfer() (the machine
 * doing the waiting).
 */
class Fabric
{
  public:
    explicit Fabric(FabricConfig config = {}) : config_(config) {}

    const FabricConfig &config() const { return config_; }

    /** Rack of @p node; origin storage is its own virtual rack. */
    std::size_t rackOf(NodeId node) const;

    bool sameRack(NodeId a, NodeId b) const
    {
        return rackOf(a) == rackOf(b);
    }

    /** Round trip between @p a and @p b under @p costs. */
    sim::SimTime rtt(NodeId a, NodeId b,
                     const sim::CostModel &costs) const;

    /** Streaming cost of @p bytes from @p src (origin is slower). */
    sim::SimTime streamCost(NodeId src, std::size_t bytes,
                            const sim::CostModel &costs) const;

    /**
     * Move @p bytes from @p src to @p dst, charging @p ctx. In compat
     * mode this is exactly the legacy flat charge; modeled transfers
     * pay rtt + contended streaming, count net.bytes/net.transfers and
     * emit a "net-transfer" span under @p trace. @p discount_streams
     * open streams are ignored when computing contention (a pager
     * discounts its own lease).
     */
    Transfer transfer(sim::SimContext &ctx, NodeId src, NodeId dst,
                      std::size_t bytes, const char *what,
                      trace::TraceContext trace = {},
                      std::size_t discount_streams = 0);

    /** Open streams currently registered on @p node. */
    std::size_t openStreams(NodeId node) const;

    /** Streaming slowdown for a transfer between @p src and @p dst. */
    double contentionFactor(NodeId src, NodeId dst,
                            std::size_t discount_streams = 0) const;

  private:
    friend class StreamLease;
    void openStream(NodeId node);
    void closeStream(NodeId node);

    FabricConfig config_;
    std::map<NodeId, std::size_t> streams_;
};

} // namespace catalyzer::net

#endif // CATALYZER_NET_FABRIC_H
