#include "net/remote_pager.h"

#include <algorithm>

#include "sim/clock.h"

namespace catalyzer::net {

RemotePager::RemotePager(sim::SimContext &ctx, Fabric &fabric,
                         NodeId self, NodeId peer,
                         mem::PageIndex window_start,
                         std::size_t window_pages,
                         faults::FaultInjector *injector,
                         std::size_t batch_pages,
                         trace::TraceContext borrow_trace,
                         trace::TraceContext lend_trace)
    : ctx_(ctx), fabric_(fabric), self_(self), peer_(peer),
      source_(peer), borrow_trace_(borrow_trace),
      lend_trace_(lend_trace), window_start_(window_start),
      window_pages_(window_pages), injector_(injector),
      batch_pages_(std::max<std::size_t>(batch_pages, 1)),
      lease_(fabric, peer)
{
}

void
RemotePager::onFault(mem::PageIndex page, bool write,
                     mem::FaultResult result)
{
    (void)write;
    if (result != mem::FaultResult::BaseFill || !inWindow(page))
        return;
    pull(1);
}

void
RemotePager::onFaultRange(mem::PageIndex start, std::size_t npages,
                          bool write, mem::FaultResult result)
{
    (void)write;
    if (result != mem::FaultResult::BaseFill)
        return;
    const mem::PageIndex lo = std::max(start, window_start_);
    const mem::PageIndex hi = std::min(
        start + npages, window_start_ + window_pages_);
    if (hi > lo)
        pull(hi - lo);
}

void
RemotePager::openBatch()
{
    const auto &costs = ctx_.costs();
    sim::Stopwatch watch(ctx_.clock());
    if (injector_ != nullptr) {
        if (source_ != kOriginStorage &&
            injector_->shouldFail(faults::FaultSite::RemotePeerDeath,
                                  ctx_.stats())) {
            // The lender died mid-pull: this request times out, and
            // every later pull streams from origin storage instead of
            // failing the running instance.
            ctx_.charge(injector_->retry().attemptTimeout);
            ctx_.stats().incr("remote.peer_lost");
            source_ = kOriginStorage;
        }
        if (injector_->shouldFail(faults::FaultSite::NetLink,
                                  ctx_.stats())) {
            // One dropped request; the retry goes through.
            ctx_.charge(injector_->retry().attemptTimeout);
            ctx_.stats().incr("net.link_retries");
        }
    }
    ctx_.charge(fabric_.rtt(self_, source_, costs) +
                costs.netPagePullBatchSetup);
    ctx_.stats().incr("remote.pull_batches");
    ++batches_;
    batch_left_ = batch_pages_;
    // Stitch the pull into the boot's distributed trace: a borrower
    // span covering the request setup, plus a marker in the lender's
    // tracer while it is still the one serving. Both carry the trace id
    // captured when the instance was borrowed.
    if (borrow_trace_.enabled()) {
        const trace::SpanId id = borrow_trace_.completedSpan(
            "remote-pull-batch", watch.elapsed());
        borrow_trace_.tracer()->attribute(
            id, "source",
            source_ == kOriginStorage ? "origin"
                                      : std::to_string(source_));
    }
    if (source_ == peer_ && lend_trace_.enabled()) {
        const trace::SpanId id = lend_trace_.completedSpan(
            "serve-pull-batch", sim::SimTime::zero());
        lend_trace_.tracer()->attribute(id, "borrower",
                                        std::to_string(self_));
    }
}

void
RemotePager::pull(std::size_t npages)
{
    const auto &costs = ctx_.costs();
    std::size_t left = npages;
    while (left > 0) {
        if (batch_left_ == 0)
            openBatch();
        const std::size_t take = std::min(left, batch_left_);
        // The pages ride the streaming bandwidth of the current source,
        // contended by the other pull channels open on it (this pager's
        // own lease is discounted).
        ctx_.charge(fabric_.streamCost(
                        source_, mem::bytesForPages(take), costs) *
                    fabric_.contentionFactor(self_, source_,
                                             /*discount_streams=*/1));
        batch_left_ -= take;
        left -= take;
    }
    pages_pulled_ += npages;
    ctx_.stats().incr("remote.page_pulls",
                      static_cast<std::int64_t>(npages));
}

} // namespace catalyzer::net
