/**
 * @file
 * Multi-machine serverless cluster.
 *
 * Catalyzer's warm boots, Base-EPT sharing, templates and page-cache
 * effects are all *per machine*; where the scheduler places a request
 * decides whether they help. The Cluster models a fleet of identical
 * machines with a pluggable placement policy, and (combined with
 * CatalyzerOptions::remoteImages) the per-machine func-image fetch that
 * the paper's init-less booting flow describes.
 */

#ifndef CATALYZER_PLATFORM_CLUSTER_H
#define CATALYZER_PLATFORM_CLUSTER_H

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "platform/platform.h"
#include "remote/template_registry.h"
#include "state/state_region.h"

namespace catalyzer::platform {

/** How the cluster scheduler picks a machine for a request. */
enum class PlacementPolicy
{
    RoundRobin,       ///< spread blindly
    LeastLoaded,      ///< fewest live instances
    FunctionAffinity, ///< hash the function to a home machine
    /**
     * Boot-cost-aware: prefer a machine holding the function's template
     * (local sfork), spilling to a same-rack neighbor (remote-sfork at
     * ToR latency) once holders are clearly more loaded than the fleet,
     * and to the least-loaded machine overall as the last resort.
     */
    NetworkAware,
};

const char *placementPolicyName(PlacementPolicy policy);

/** A cluster invocation outcome: the record plus where it ran. */
struct ClusterInvocation
{
    InvocationRecord record;
    std::size_t machineIndex = 0;
};

/**
 * A fleet of machines, each with its own ServerlessPlatform (and
 * therefore its own Zygote pool, templates, base mappings and page
 * cache).
 */
class Cluster
{
  public:
    /**
     * @param machines      Fleet size.
     * @param policy        Placement policy.
     * @param config        Platform configuration used on every machine.
     * @param options       Catalyzer options used on every machine.
     * @param costs         Host cost model (same hardware fleet).
     * @param seed          Base seed; machine i uses seed + i.
     * @param fabric_config Network fabric between the machines. The
     *        default (flat-compat) keeps every latency bit-identical to
     *        the pre-fabric cluster; enabling modelTransfers /
     *        p2pImages / remoteFork turns on the distributed layer.
     */
    Cluster(std::size_t machines, PlacementPolicy policy,
            PlatformConfig config = {},
            core::CatalyzerOptions options = {},
            sim::CostModel costs = sim::CostModel{},
            std::uint64_t seed = 42,
            net::FabricConfig fabric_config = {});

    /** Register a function on every machine. */
    void deploy(const apps::AppProfile &app);

    /** Offline preparation on every machine (images/templates). */
    void prepareEverywhere(const apps::AppProfile &app);

    /**
     * Route one request through the scheduler: a "cluster-invoke" span
     * annotated with the chosen machine, wrapping the platform's
     * "invoke/<function>" span. With a disabled @p trace the request
     * self-traces into the chosen machine's always-on ring tracer
     * under a fresh distributed trace id, so fleet exports carry every
     * request without any caller opt-in.
     */
    ClusterInvocation invoke(const std::string &function_name,
                             trace::TraceContext trace = {});

    /**
     * Run the scheduler only: the machine invoke() would pick for this
     * request *now*, advancing stateful policies (the round-robin
     * cursor). Call once per request, then invokeOn() the result —
     * fleet drivers use the split to align the chosen machine's clock
     * with the arrival before serving it.
     */
    std::size_t route(const std::string &function_name);

    /**
     * route() against caller-projected per-machine instance counts
     * instead of live platform state. The parallel fleet driver routes
     * a whole epoch up front (epoch-start loads plus its own
     * routed-this-epoch increments) so placement cannot depend on
     * which worker thread ran first; stateful policies (the
     * round-robin cursor) still advance, so interleaving
     * routeProjected() with route() keeps one deterministic cursor
     * stream.
     */
    std::size_t routeProjected(const std::string &function_name,
                               const std::vector<std::size_t> &loads);

    /**
     * Route one workflow stage: like route(), but NetworkAware also
     * weighs @p region_affinity_bytes — per-machine bytes of state
     * regions the stage would otherwise have to stream over (plus the
     * dependency-machine nudge the workflow engine folds in). Among
     * machines within the load slack of the least-loaded, the largest
     * affinity wins; with no affinity anywhere the behavior is exactly
     * route()'s. Other policies ignore the affinity (locality-blind).
     */
    std::size_t
    routeStage(const std::string &function_name,
               const std::vector<std::size_t> &region_affinity_bytes);

    /** Live totalInstances() of each machine, indexed by machine. */
    std::vector<std::size_t> instanceLoads() const;

    /**
     * True when machines cannot interact mid-request: no remote-sfork
     * lending and no P2P image streaming, so each machine's timeline
     * depends only on its own request queue and the fleet may be
     * served by parallel worker threads. Coupled fleets (remoteFork /
     * p2pImages) must replay machine-by-machine in index order.
     */
    bool shareNothing() const;

    /**
     * Declare each machine's *current* virtual time the origin of its
     * windowed series (dropping any pre-origin samples): fleet drivers
     * call this at measurement start so that win.* windows line up
     * run-relative across machines whose clocks diverged during
     * priming. See WindowedHistogram::setOrigin.
     */
    void alignWindowOrigins();

    /** The invoke() tail on an already-routed machine. */
    ClusterInvocation invokeOn(std::size_t machine_index,
                               const std::string &function_name,
                               trace::TraceContext trace = {});

    std::size_t machineCount() const { return nodes_.size(); }
    ServerlessPlatform &platform(std::size_t i);
    sandbox::Machine &machine(std::size_t i);

    /** Total live instances across the fleet. */
    std::size_t totalInstances() const;

    /** Instances of one function on each machine. */
    std::vector<std::size_t>
    placementOf(const std::string &function_name) const;

    /** The fleet's network. */
    net::Fabric &fabric() { return fabric_; }

    /** The fleet's template / replica directory. */
    remote::TemplateRegistry &registry() { return registry_; }

    /**
     * The fleet's shared state-region store, created on first use with
     * every machine registered (strictly pay-for-use: a cluster that
     * never calls this carries no store and emits no state counters).
     */
    state::StateRegionStore &stateRegions();

    /**
     * Bytes of state-region replicas resident on machine @p i; zero
     * when the store was never created. The autoscaler folds this into
     * its memory-pressure budget.
     */
    std::size_t stateResidentBytes(std::size_t i) const;

    /**
     * Fleet-wide metrics snapshot as JSON: every machine's counters
     * summed and histogram samples concatenated, plus the machine
     * count: {"machines": N, "fleet": {counters..., histograms...}}.
     */
    void statsSnapshot(std::ostream &os) const;

    /**
     * Fold every machine's registry into @p out: counters summed,
     * histogram samples concatenated, windowed series merged per
     * window (machine order, so the result is deterministic).
     * Serialized against concurrent aggregation calls; callers must
     * still quiesce worker threads first (aggregating mid-epoch would
     * read half-written machine registries).
     */
    void mergeStats(sim::StatRegistry &out) const;

    /**
     * One merged Chrome trace for the whole fleet: every machine's
     * ring tracer, pid = machine lane, tid = distributed trace id. A
     * remote-sfork boot renders as one timeline — the borrower's boot
     * tree in its machine lane and the lender's lend-template /
     * serve-pull-batch spans in its own, joined by the trace id.
     */
    void exportFleetTrace(std::ostream &os) const;

    /** Fleet-merged windowed time-series JSON (see
     *  StatRegistry::writeTimeSeriesJson). */
    void writeTimeSeriesJson(std::ostream &os) const;

  private:
    std::size_t pick(const std::string &function_name);
    std::size_t pickFromLoads(const std::string &function_name,
                              const std::vector<std::size_t> &loads);
    std::size_t
    pickFromLoads(const std::string &function_name,
                  const std::vector<std::size_t> &loads,
                  const std::vector<std::size_t> &affinity_bytes);

    struct Node
    {
        std::unique_ptr<sandbox::Machine> machine;
        std::unique_ptr<ServerlessPlatform> platform;
    };

    PlacementPolicy policy_;
    /** Declared before nodes_: platforms hold pointers into both. */
    net::Fabric fabric_;
    remote::TemplateRegistry registry_;
    /** Content-addressed image fetch is on (couples the fleet). */
    bool chunked_images_ = false;
    std::vector<Node> nodes_;
    /**
     * Lazily created by stateRegions(); null on stateless clusters.
     * Declared after nodes_: replica backing files reference the
     * machines' frame stores, so the store must be destroyed first.
     */
    std::unique_ptr<state::StateRegionStore> state_;
    std::size_t next_rr_ = 0;
    /** Serializes mergeStats/exportFleetTrace against each other. */
    mutable std::mutex aggregation_mu_;
};

} // namespace catalyzer::platform

#endif // CATALYZER_PLATFORM_CLUSTER_H
