#include "platform/workload.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"
#include "sim/rng.h"

namespace catalyzer::platform {

WorkloadSpec
WorkloadSpec::zipf(const std::vector<std::string> &functions,
                   double total_rps, double skew)
{
    WorkloadSpec spec;
    double norm = 0.0;
    for (std::size_t i = 0; i < functions.size(); ++i)
        norm += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    for (std::size_t i = 0; i < functions.size(); ++i) {
        const double share =
            (1.0 / std::pow(static_cast<double>(i + 1), skew)) / norm;
        spec.mix.push_back(
            WorkloadEntry{functions[i], total_rps * share});
    }
    return spec;
}

WorkloadReport
WorkloadDriver::run(const WorkloadSpec &spec)
{
    if (spec.mix.empty() && spec.trace.empty())
        sim::fatal("WorkloadDriver: empty mix");

    // Build the merged arrival schedule: the explicit trace if given,
    // else Poisson streams per mix entry.
    struct Arrival
    {
        double atSec;
        std::string function;
    };
    std::vector<Arrival> arrivals;
    if (!spec.trace.empty()) {
        for (const TraceEvent &event : spec.trace)
            arrivals.push_back(Arrival{event.atSec, event.function});
    } else {
        sim::Rng rng(spec.seed);
        for (const auto &entry : spec.mix) {
            if (entry.requestsPerSecond <= 0.0)
                continue;
            double t = 0.0;
            for (;;) {
                t += rng.exponential(1.0 / entry.requestsPerSecond);
                if (t >= spec.durationSec)
                    break;
                arrivals.push_back(Arrival{t, entry.function});
            }
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  return a.atSec < b.atSec;
              });

    auto &clock = platform_.machine().ctx().clock();
    const sim::SimTime start = clock.now();

    WorkloadReport report;
    for (const Arrival &arrival : arrivals) {
        const sim::SimTime due =
            start + sim::SimTime::seconds(arrival.atSec);
        if (clock.now() < due) {
            // The machine idles until the request arrives.
            clock.advance(due - clock.now());
        }
        if (spec.keepAliveTtl > sim::SimTime::zero())
            report.expired += platform_.expireIdle(spec.keepAliveTtl);

        const std::string &fn = arrival.function;
        const InvocationRecord rec = platform_.invoke(fn);
        report.endToEnd.add(rec.endToEnd());
        report.boot.add(rec.bootLatency);
        report.perFunction[fn].add(rec.endToEnd());
        ++report.requests;
        if (rec.reusedInstance)
            ++report.reuses;
        else
            ++report.boots;
    }
    report.residentInstances = platform_.totalInstances();
    return report;
}

} // namespace catalyzer::platform
