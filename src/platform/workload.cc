#include "platform/workload.h"

#include <algorithm>
#include <cmath>

#include "load/arrival.h"
#include "sim/logging.h"
#include "sim/rng.h"

namespace catalyzer::platform {

WorkloadSpec
WorkloadSpec::zipf(const std::vector<std::string> &functions,
                   double total_rps, double skew,
                   std::uint64_t shuffle_seed)
{
    // rank[i] is function i's popularity rank (0 = hottest): identity
    // by default, a seeded permutation when the caller wants popularity
    // decoupled from catalog order.
    std::vector<std::size_t> rank(functions.size());
    for (std::size_t i = 0; i < rank.size(); ++i)
        rank[i] = i;
    if (shuffle_seed != 0) {
        sim::Rng rng(shuffle_seed);
        for (std::size_t i = rank.size(); i > 1; --i)
            std::swap(rank[i - 1],
                      rank[static_cast<std::size_t>(
                          rng.uniformInt(static_cast<std::uint64_t>(i)))]);
    }

    WorkloadSpec spec;
    double norm = 0.0;
    for (std::size_t i = 0; i < functions.size(); ++i)
        norm += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    for (std::size_t i = 0; i < functions.size(); ++i) {
        const double share =
            (1.0 / std::pow(static_cast<double>(rank[i] + 1), skew)) /
            norm;
        spec.mix.push_back(
            WorkloadEntry{functions[i], total_rps * share});
    }
    return spec;
}

WorkloadReport
WorkloadDriver::run(const WorkloadSpec &spec)
{
    if (spec.mix.empty() && spec.trace.empty())
        sim::fatal("WorkloadDriver: empty mix");

    // Build the merged arrival schedule: the explicit trace if given,
    // else Poisson streams per mix entry. One Rng threads through the
    // mix in order — the generator draws exactly the sequence this
    // driver always drew, so extracting it changed no schedule.
    std::vector<load::Arrival> arrivals;
    if (!spec.trace.empty()) {
        for (const TraceEvent &event : spec.trace)
            arrivals.push_back(load::Arrival{event.atSec, event.function});
    } else {
        sim::Rng rng(spec.seed);
        for (const auto &entry : spec.mix)
            load::appendPoissonArrivals(rng, entry.requestsPerSecond,
                                        spec.durationSec, entry.function,
                                        arrivals);
    }
    load::sortByTime(arrivals);

    auto &clock = platform_.machine().ctx().clock();
    const sim::SimTime start = clock.now();

    WorkloadReport report;
    for (const load::Arrival &arrival : arrivals) {
        const sim::SimTime due =
            start + sim::SimTime::seconds(arrival.atSec);
        if (clock.now() < due) {
            // The machine idles until the request arrives.
            clock.advance(due - clock.now());
        }
        if (spec.keepAliveTtl > sim::SimTime::zero())
            report.expired += platform_.expireIdle(spec.keepAliveTtl);

        const std::string &fn = arrival.function;
        const InvocationRecord rec = platform_.invoke(fn);
        report.endToEnd.add(rec.endToEnd());
        report.boot.add(rec.bootLatency);
        report.perFunction[fn].add(rec.endToEnd());
        ++report.requests;
        if (rec.reusedInstance)
            ++report.reuses;
        else
            ++report.boots;
    }
    report.residentInstances = platform_.totalInstances();
    return report;
}

} // namespace catalyzer::platform
