#include "platform/cluster.h"

#include <functional>

#include "sim/logging.h"

namespace catalyzer::platform {

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::RoundRobin: return "round-robin";
      case PlacementPolicy::LeastLoaded: return "least-loaded";
      case PlacementPolicy::FunctionAffinity: return "function-affinity";
    }
    return "?";
}

Cluster::Cluster(std::size_t machines, PlacementPolicy policy,
                 PlatformConfig config, core::CatalyzerOptions options,
                 sim::CostModel costs, std::uint64_t seed)
    : policy_(policy)
{
    if (machines == 0)
        sim::fatal("Cluster: need at least one machine");
    nodes_.reserve(machines);
    for (std::size_t i = 0; i < machines; ++i) {
        Node node;
        node.machine =
            std::make_unique<sandbox::Machine>(seed + i, costs);
        node.platform = std::make_unique<ServerlessPlatform>(
            *node.machine, config, options);
        nodes_.push_back(std::move(node));
    }
}

void
Cluster::deploy(const apps::AppProfile &app)
{
    for (auto &node : nodes_)
        node.platform->deploy(app);
}

void
Cluster::prepareEverywhere(const apps::AppProfile &app)
{
    for (auto &node : nodes_)
        node.platform->prepare(app);
}

std::size_t
Cluster::pick(const std::string &function_name)
{
    switch (policy_) {
      case PlacementPolicy::RoundRobin:
        return next_rr_++ % nodes_.size();
      case PlacementPolicy::LeastLoaded: {
        std::size_t best = 0;
        std::size_t best_load = nodes_[0].platform->totalInstances();
        for (std::size_t i = 1; i < nodes_.size(); ++i) {
            const std::size_t load = nodes_[i].platform->totalInstances();
            if (load < best_load) {
                best = i;
                best_load = load;
            }
        }
        return best;
      }
      case PlacementPolicy::FunctionAffinity:
        return std::hash<std::string>{}(function_name) % nodes_.size();
    }
    sim::panic("unreachable placement policy");
}

ClusterInvocation
Cluster::invoke(const std::string &function_name,
                trace::TraceContext trace)
{
    const std::size_t target = pick(function_name);
    trace::ScopedSpan span(trace, "cluster-invoke");
    span.attr("function", function_name);
    span.attr("machine", static_cast<std::int64_t>(target));
    span.attr("policy", placementPolicyName(policy_));
    ClusterInvocation out;
    out.machineIndex = target;
    out.record =
        nodes_[target].platform->invoke(function_name, span.context());
    span.attr("tier", out.record.tierServed);
    return out;
}

ServerlessPlatform &
Cluster::platform(std::size_t i)
{
    if (i >= nodes_.size())
        sim::panic("Cluster::platform: index %zu out of range", i);
    return *nodes_[i].platform;
}

sandbox::Machine &
Cluster::machine(std::size_t i)
{
    if (i >= nodes_.size())
        sim::panic("Cluster::machine: index %zu out of range", i);
    return *nodes_[i].machine;
}

std::size_t
Cluster::totalInstances() const
{
    std::size_t n = 0;
    for (const auto &node : nodes_)
        n += node.platform->totalInstances();
    return n;
}

std::vector<std::size_t>
Cluster::placementOf(const std::string &function_name) const
{
    std::vector<std::size_t> out;
    out.reserve(nodes_.size());
    for (const auto &node : nodes_)
        out.push_back(node.platform->runningCount(function_name));
    return out;
}

} // namespace catalyzer::platform
