#include "platform/cluster.h"

#include <functional>
#include <mutex>
#include <ostream>

#include "obs/fleet_trace.h"
#include "sim/logging.h"

namespace catalyzer::platform {

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::RoundRobin: return "round-robin";
      case PlacementPolicy::LeastLoaded: return "least-loaded";
      case PlacementPolicy::FunctionAffinity: return "function-affinity";
      case PlacementPolicy::NetworkAware: return "network-aware";
    }
    return "?";
}

Cluster::Cluster(std::size_t machines, PlacementPolicy policy,
                 PlatformConfig config, core::CatalyzerOptions options,
                 sim::CostModel costs, std::uint64_t seed,
                 net::FabricConfig fabric_config)
    : policy_(policy), fabric_(fabric_config), registry_(&fabric_),
      chunked_images_(options.chunkedImages.enabled)
{
    if (machines == 0)
        sim::fatal("Cluster: need at least one machine");
    nodes_.reserve(machines);
    for (std::size_t i = 0; i < machines; ++i) {
        Node node;
        node.machine =
            std::make_unique<sandbox::Machine>(seed + i, costs);
        // Node id before the platform: its flight recorder and span
        // lane tags capture the id at construction.
        node.machine->setNodeId(static_cast<std::uint32_t>(i));
        node.platform = std::make_unique<ServerlessPlatform>(
            *node.machine, config, options);
        // Image fetches ride the shared fabric (in flat-compat mode by
        // default, which charges exactly the legacy formula); replicas
        // are tracked only when P2P fetch may use them, and the chunk
        // directory only when content-addressed fetch is on.
        node.platform->catalyzer().images().attachFabric(
            &fabric_, static_cast<net::NodeId>(i),
            fabric_config.p2pImages || options.chunkedImages.enabled
                ? &registry_
                : nullptr,
            options.chunkedImages.enabled
                ? static_cast<net::ChunkDirectory *>(&registry_)
                : nullptr);
        if (fabric_config.remoteFork) {
            remote::RemoteBootEnv env;
            env.fabric = &fabric_;
            env.registry = &registry_;
            env.self = static_cast<net::NodeId>(i);
            env.forkSource = [this](const std::string &name,
                                    net::NodeId peer)
                -> std::optional<core::RemoteForkSource> {
                if (peer >= nodes_.size())
                    return std::nullopt;
                ServerlessPlatform &lender = *nodes_[peer].platform;
                sandbox::FunctionArtifacts *fn =
                    lender.registry().find(name);
                sandbox::SandboxInstance *tmpl =
                    lender.catalyzer().templateFor(name);
                if (!fn || !tmpl || !fn->separatedImage)
                    return std::nullopt;
                core::RemoteForkSource src;
                src.templateInstance = tmpl;
                src.image = fn->separatedImage;
                src.manifest = fn->workingSet;
                src.fabric = &fabric_;
                src.peer = peer;
                // Lender-side observability endpoints: the borrower's
                // boot re-homes its trace id onto this tracer so both
                // halves of the handshake share one distributed trace.
                src.peerTracer = &nodes_[peer].machine->tracer();
                src.peerClock = &nodes_[peer].machine->ctx().clock();
                return src;
            };
            node.platform->setRemoteEnv(std::move(env));
        }
        nodes_.push_back(std::move(node));
    }
}

void
Cluster::deploy(const apps::AppProfile &app)
{
    for (auto &node : nodes_)
        node.platform->deploy(app);
}

void
Cluster::prepareEverywhere(const apps::AppProfile &app)
{
    for (auto &node : nodes_)
        node.platform->prepare(app);
}

std::size_t
Cluster::pick(const std::string &function_name)
{
    return pickFromLoads(function_name, instanceLoads());
}

std::size_t
Cluster::pickFromLoads(const std::string &function_name,
                       const std::vector<std::size_t> &loads)
{
    return pickFromLoads(function_name, loads, {});
}

std::size_t
Cluster::pickFromLoads(const std::string &function_name,
                       const std::vector<std::size_t> &loads,
                       const std::vector<std::size_t> &affinity_bytes)
{
    if (loads.size() != nodes_.size())
        sim::panic("Cluster: %zu projected loads for %zu machines",
                   loads.size(), nodes_.size());
    switch (policy_) {
      case PlacementPolicy::RoundRobin:
        return next_rr_++ % nodes_.size();
      case PlacementPolicy::LeastLoaded: {
        std::size_t best = 0;
        std::size_t best_load = loads[0];
        for (std::size_t i = 1; i < nodes_.size(); ++i) {
            if (loads[i] < best_load) {
                best = i;
                best_load = loads[i];
            }
        }
        return best;
      }
      case PlacementPolicy::FunctionAffinity:
        return std::hash<std::string>{}(function_name) % nodes_.size();
      case PlacementPolicy::NetworkAware: {
        // Least-loaded overall is the baseline (lowest index on ties).
        std::size_t best = 0;
        std::size_t best_load = loads[0];
        for (std::size_t i = 1; i < nodes_.size(); ++i) {
            if (loads[i] < best_load) {
                best = i;
                best_load = loads[i];
            }
        }
        // State gravity beats template gravity: streaming a resident
        // region across the fabric dwarfs a remote sfork, so a machine
        // already holding the stage's regions wins as long as it is
        // within the load slack of the least-loaded machine.
        constexpr std::size_t kLoadSlack = 4;
        bool have_affine = false;
        std::size_t abest = 0, abytes = 0;
        for (std::size_t i = 0;
             i < affinity_bytes.size() && i < nodes_.size(); ++i) {
            if (affinity_bytes[i] == 0 ||
                loads[i] > best_load + kLoadSlack)
                continue;
            if (!have_affine || affinity_bytes[i] > abytes) {
                have_affine = true;
                abest = i;
                abytes = affinity_bytes[i];
            }
        }
        if (have_affine)
            return abest;
        const std::vector<net::NodeId> holders =
            registry_.templateHolders(function_name);
        if (holders.empty())
            return best;
        // A template holder boots with a local sfork; stick with the
        // least-loaded one until it is clearly busier than the fleet.
        bool have_holder = false;
        std::size_t hbest = 0, hload = 0;
        for (net::NodeId id : holders) {
            if (id >= nodes_.size())
                continue;
            const std::size_t load = loads[id];
            if (!have_holder || load < hload) {
                have_holder = true;
                hbest = id;
                hload = load;
            }
        }
        if (have_holder && hload <= best_load + kLoadSlack)
            return hbest;
        // Holders are saturated: a same-rack neighbor remote-sforks at
        // ToR latency, still far cheaper than a cold boot elsewhere.
        bool have_rack = false;
        std::size_t rbest = 0, rload = 0;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            bool near_holder = false;
            for (net::NodeId id : holders) {
                if (id < nodes_.size() && id != i &&
                    fabric_.sameRack(static_cast<net::NodeId>(i), id)) {
                    near_holder = true;
                    break;
                }
            }
            if (!near_holder)
                continue;
            const std::size_t load = loads[i];
            if (!have_rack || load < rload) {
                have_rack = true;
                rbest = i;
                rload = load;
            }
        }
        if (have_rack && rload <= best_load + kLoadSlack)
            return rbest;
        return best;
      }
    }
    sim::panic("unreachable placement policy");
}

std::size_t
Cluster::route(const std::string &function_name)
{
    return pick(function_name);
}

std::size_t
Cluster::routeProjected(const std::string &function_name,
                        const std::vector<std::size_t> &loads)
{
    return pickFromLoads(function_name, loads);
}

std::size_t
Cluster::routeStage(const std::string &function_name,
                    const std::vector<std::size_t> &region_affinity_bytes)
{
    return pickFromLoads(function_name, instanceLoads(),
                         region_affinity_bytes);
}

state::StateRegionStore &
Cluster::stateRegions()
{
    if (!state_) {
        state_ = std::make_unique<state::StateRegionStore>(&fabric_);
        for (std::size_t i = 0; i < nodes_.size(); ++i)
            state_->addNode(static_cast<net::NodeId>(i),
                            nodes_[i].machine->frames(),
                            nodes_[i].machine->ctx());
    }
    return *state_;
}

std::size_t
Cluster::stateResidentBytes(std::size_t i) const
{
    if (!state_)
        return 0;
    return state_->residentBytesOn(static_cast<net::NodeId>(i));
}

std::vector<std::size_t>
Cluster::instanceLoads() const
{
    std::vector<std::size_t> loads;
    loads.reserve(nodes_.size());
    for (const auto &node : nodes_)
        loads.push_back(node.platform->totalInstances());
    return loads;
}

bool
Cluster::shareNothing() const
{
    // Chunked image fetches consult the shared chunk directory
    // mid-request, so such fleets are coupled like P2P ones.
    return !fabric_.config().remoteFork && !fabric_.config().p2pImages &&
           !chunked_images_;
}

void
Cluster::alignWindowOrigins()
{
    for (auto &node : nodes_)
        node.machine->ctx().stats().setWindowOrigin(
            node.machine->ctx().clock().now());
}

ClusterInvocation
Cluster::invoke(const std::string &function_name,
                trace::TraceContext trace)
{
    return invokeOn(pick(function_name), function_name, trace);
}

ClusterInvocation
Cluster::invokeOn(std::size_t target, const std::string &function_name,
                  trace::TraceContext trace)
{
    if (target >= nodes_.size())
        sim::panic("Cluster::invokeOn: machine %zu out of range", target);
    if (!trace.enabled()) {
        // Self-trace into the chosen machine's always-on ring so fleet
        // exports and flight-recorder dumps see the whole request.
        sandbox::Machine &m = *nodes_[target].machine;
        trace = trace::TraceContext(m.tracer(), m.ctx().clock());
    }
    trace::ScopedSpan span(trace, "cluster-invoke");
    span.attr("function", function_name);
    span.attr("machine", static_cast<std::int64_t>(target));
    span.attr("policy", placementPolicyName(policy_));
    ClusterInvocation out;
    out.machineIndex = target;
    out.record =
        nodes_[target].platform->invoke(function_name, span.context());
    span.attr("tier", out.record.tierServed);
    return out;
}

ServerlessPlatform &
Cluster::platform(std::size_t i)
{
    if (i >= nodes_.size())
        sim::panic("Cluster::platform: index %zu out of range", i);
    return *nodes_[i].platform;
}

sandbox::Machine &
Cluster::machine(std::size_t i)
{
    if (i >= nodes_.size())
        sim::panic("Cluster::machine: index %zu out of range", i);
    return *nodes_[i].machine;
}

std::size_t
Cluster::totalInstances() const
{
    std::size_t n = 0;
    for (const auto &node : nodes_)
        n += node.platform->totalInstances();
    return n;
}

std::vector<std::size_t>
Cluster::placementOf(const std::string &function_name) const
{
    std::vector<std::size_t> out;
    out.reserve(nodes_.size());
    for (const auto &node : nodes_)
        out.push_back(node.platform->runningCount(function_name));
    return out;
}

void
Cluster::mergeStats(sim::StatRegistry &out) const
{
    std::lock_guard<std::mutex> lock(aggregation_mu_);
    // Counters sum, histogram samples concatenate, windowed series
    // merge per window (machine order, then sample order, so the
    // output is deterministic).
    for (const auto &node : nodes_) {
        const sim::StatRegistry &stats = node.machine->ctx().stats();
        for (const auto &[name, value] : stats.all())
            out.incr(name, value);
        for (const auto &[name, series] : stats.histograms()) {
            for (double ms : series.raw())
                out.observeMs(name, ms);
        }
        for (const auto &[name, series] : stats.windowedSeries())
            out.windowed(name).merge(series);
    }
}

void
Cluster::statsSnapshot(std::ostream &os) const
{
    sim::StatRegistry fleet;
    mergeStats(fleet);
    os << "{\"machines\": " << nodes_.size();
    // Stateless clusters keep the legacy snapshot byte-identical; the
    // state block appears only once someone created a region.
    if (state_ && state_->regionCount() > 0) {
        os << ", \"state\": {\"regions\": " << state_->regionCount()
           << ", \"resident_bytes\": [";
        std::size_t total = 0;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            const std::size_t bytes = stateResidentBytes(i);
            total += bytes;
            os << (i == 0 ? "" : ", ") << bytes;
        }
        os << "], \"resident_bytes_total\": " << total << "}";
    }
    os << ", \"fleet\": ";
    fleet.writeJson(os);
    os << "}\n";
}

void
Cluster::exportFleetTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(aggregation_mu_);
    std::vector<const trace::Tracer *> tracers;
    tracers.reserve(nodes_.size());
    for (const auto &node : nodes_)
        tracers.push_back(&node.machine->tracer());
    obs::exportFleetChromeTrace(tracers, os);
}

void
Cluster::writeTimeSeriesJson(std::ostream &os) const
{
    sim::StatRegistry fleet;
    mergeStats(fleet);
    fleet.writeTimeSeriesJson(os);
}

} // namespace catalyzer::platform
