/**
 * @file
 * The serverless platform: gateway, boot-strategy dispatch and instance
 * pools (paper Sec. 2.1's gateway + sandbox flow).
 */

#ifndef CATALYZER_PLATFORM_PLATFORM_H
#define CATALYZER_PLATFORM_PLATFORM_H

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalyzer/runtime.h"
#include "obs/flight_recorder.h"
#include "remote/template_registry.h"
#include "sandbox/pipelines.h"

namespace catalyzer::platform {

/** How the platform boots a missing instance. */
enum class BootStrategy
{
    Docker,
    HyperContainer,
    FireCracker,
    GVisor,
    GVisorRestore,
    CatalyzerCold,
    CatalyzerWarm,
    CatalyzerFork,
    /** fork if a template exists, warm if a base exists, else cold. */
    CatalyzerAuto,
};

const char *bootStrategyName(BootStrategy strategy);

/** Platform behaviour knobs. */
struct PlatformConfig
{
    BootStrategy strategy = BootStrategy::CatalyzerAuto;
    /** Keep-alive: reuse an idle instance instead of booting. */
    bool reuseIdleInstances = false;
    /** Keep instances running after a request (auto-scaling study). */
    bool retainInstances = true;
};

/** Outcome of one request through the gateway. */
struct InvocationRecord
{
    std::string function;
    sandbox::BootKind bootKind = sandbox::BootKind::ColdFresh;
    bool reusedInstance = false;
    /**
     * Boot tier that actually served the request after any fault-driven
     * degradation: "sfork", "warm", "cold" or "fresh" for the Catalyzer
     * strategies, the strategy name for the fresh-boot baselines, and
     * "reused" for keep-alive hits.
     */
    std::string tierServed;
    /** Fault-driven tier degradations this boot went through. */
    int tierFallbacks = 0;
    sim::SimTime gatewayLatency;
    sim::SimTime bootLatency;
    sim::SimTime execLatency;

    sim::SimTime
    endToEnd() const
    {
        return gatewayLatency + bootLatency + execLatency;
    }
};

/**
 * One serverless platform on one machine. Owns the function registry,
 * the Catalyzer runtime, and the per-function instance pools.
 */
class ServerlessPlatform
{
  public:
    explicit ServerlessPlatform(sandbox::Machine &machine,
                                PlatformConfig config = {},
                                core::CatalyzerOptions options = {});

    /** Register a function (idempotent). */
    sandbox::FunctionArtifacts &deploy(const apps::AppProfile &app);

    /**
     * Offline preparation appropriate for the configured strategy:
     * build func-images and/or the template sandbox.
     */
    void prepare(const apps::AppProfile &app);

    /**
     * Handle one request end to end: an "invoke/<function>" span with
     * "gateway", the boot span tree and "execute" as children, and the
     * end-to-end latency observed into the "invoke.latency" histogram.
     * With a disabled @p trace the request self-traces into the
     * machine's always-on ring tracer under a fresh distributed trace
     * id (that is what the flight recorder replays after an incident);
     * an enabled @p trace is used as-is, inheriting or allocating its
     * trace id. Boot and end-to-end latencies are also recorded into
     * the windowed time series (win.boot_ms.*, win.e2e_ms).
     */
    InvocationRecord invoke(const std::string &function_name,
                            trace::TraceContext trace = {});

    /** Live instances of one function (running + idle). */
    std::vector<sandbox::SandboxInstance *>
    instancesOf(const std::string &function_name);

    std::size_t runningCount(const std::string &function_name) const;
    std::size_t totalInstances() const;

    /** Destroy all instances of a function. */
    void teardown(const std::string &function_name);

    /**
     * Keep-alive expiry: destroy idle instances parked for longer than
     * @p ttl. Returns the number of instances reclaimed.
     */
    std::size_t expireIdle(sim::SimTime ttl);

    /** Idle (keep-alive) instances across all functions. */
    std::size_t idleCount() const;

    /**
     * Resident memory attributable to serving: every live instance
     * (running and idle keep-alive) plus all template sandboxes. The
     * figure memory-pressure autoscaling budgets against.
     */
    std::size_t residentBytes() const;

    /**
     * Release a cold function's restore memory: its shared Base-EPT and
     * func-image page cache. Refused (returns 0) while the function has
     * live or idle instances attached. Returns the resident bytes
     * released. The working-set manifest survives, so the next cold
     * boot prefetches the set back in batched reads.
     */
    std::size_t reclaimFunctionMemory(const std::string &function_name);

    core::CatalyzerRuntime &catalyzer() { return runtime_; }
    sandbox::FunctionRegistry &registry() { return registry_; }
    sandbox::Machine &machine() { return machine_; }
    const PlatformConfig &config() const { return config_; }

    /**
     * This machine's black-box flight recorder. Always armed: every
     * injected fault and every tier fallback captures an incident
     * (trigger site, trace id, counter deltas, recent span-ring tail).
     * Dumping to disk needs a directory — setDumpDirectory() or the
     * CATALYZER_FLIGHT_DIR environment variable.
     */
    obs::FlightRecorder &flightRecorder() { return recorder_; }
    const obs::FlightRecorder &flightRecorder() const
    {
        return recorder_;
    }

    /**
     * Join a cluster's remote-fork control plane: the fabric, the
     * cluster-wide template registry and this machine's node id. With
     * an env set, CatalyzerAuto inserts the remote-sfork tier between
     * sfork and warm whenever a peer holds the function's template, and
     * every boot publishes this machine's template state back into the
     * registry. Without one the chain is exactly the local four tiers.
     */
    void setRemoteEnv(remote::RemoteBootEnv env);

    const remote::RemoteBootEnv *remoteEnv() const
    {
        return remote_env_ ? &*remote_env_ : nullptr;
    }

  private:
    sandbox::BootResult bootNew(sandbox::FunctionArtifacts &fn,
                                InvocationRecord &record,
                                trace::TraceContext trace = {});
    /**
     * Boot through the Catalyzer fallback chain starting at @p tier
     * (sfork → remote-sfork → warm → cold → fresh): a tier that throws
     * faults::FaultError degrades one tier instead of failing the
     * request, counting boot.fallback.<from>_<to> and observing the
     * serving tier into the boot.tier_served histogram. The
     * remote-sfork tier is skipped (and absent from fallback counter
     * names) unless a remote env with a template-holding peer exists.
     */
    sandbox::BootResult bootChain(sandbox::FunctionArtifacts &fn,
                                  int tier, InvocationRecord &record,
                                  trace::TraceContext trace);
    /** A peer holds this function's template and can lend it. */
    bool remoteForkAvailable(sandbox::FunctionArtifacts &fn) const;
    /** Publish this machine's template state for @p name cluster-wide. */
    void syncRemoteRegistry(const std::string &name);

    /** A parked keep-alive instance. */
    struct IdleEntry
    {
        std::unique_ptr<sandbox::SandboxInstance> instance;
        sim::SimTime parkedAt;
    };

    sandbox::Machine &machine_;
    PlatformConfig config_;
    sandbox::FunctionRegistry registry_;
    core::CatalyzerRuntime runtime_;
    obs::FlightRecorder recorder_;
    /** Trace id of the request currently in invoke() (0 outside). */
    trace::TraceId current_trace_ = 0;
    std::map<std::string, std::deque<IdleEntry>> idle_;
    std::map<std::string,
             std::vector<std::unique_ptr<sandbox::SandboxInstance>>>
        running_;
    std::optional<remote::RemoteBootEnv> remote_env_;
};

} // namespace catalyzer::platform

#endif // CATALYZER_PLATFORM_PLATFORM_H
