/**
 * @file
 * Priority-based boot-policy management (paper Sec. 6.9).
 *
 * Fork boot is the fastest path but each template sandbox holds real
 * memory (a SPECjbb template costs >200 MB), so a platform must choose
 * *which* functions deserve one. The paper's guidance: private
 * platforms assign priorities; public ones use hints plus observed
 * traffic. BootPolicyManager implements that: it scores functions by
 * priority and recent invocation rate and keeps templates for the top
 * scorers within a memory budget, falling back to warm/cold restore for
 * everything else (the platform's CatalyzerAuto strategy escalates
 * automatically once a template exists).
 */

#ifndef CATALYZER_PLATFORM_POLICY_H
#define CATALYZER_PLATFORM_POLICY_H

#include <map>
#include <string>
#include <vector>

#include "platform/platform.h"

namespace catalyzer::platform {

/** Operator-assigned importance of a function. */
enum class FunctionPriority { High, Normal, Low };

const char *functionPriorityName(FunctionPriority priority);

/** Policy knobs. */
struct PolicyConfig
{
    /** Total memory the template pool may hold. */
    std::size_t templateMemoryBudgetBytes = 512u << 20;
    /** Invocations (since last rebalance) for a Normal function to be
     *  considered hot. */
    std::size_t hotThreshold = 4;
    /** Multiplicative decay applied to counters at each rebalance. */
    double decay = 0.5;
    /** Counters decayed below this snap to zero (the function is cold;
     *  pure multiplicative decay would otherwise never reach it). */
    double coldFloor = 0.05;
    /**
     * When a function goes fully cold (no traffic, no live instances),
     * also release its shared Base-EPT and func-image page cache at
     * rebalance. The working-set prefetcher makes this affordable: the
     * next cold boot re-loads the recorded working set in a few batched
     * reads instead of a storm of random demand faults.
     */
    bool reclaimColdBases = false;
};

/**
 * Tracks traffic, scores functions and maintains the template pool.
 * Use it as the invoke() front door so observations stay accurate.
 */
class BootPolicyManager
{
  public:
    BootPolicyManager(ServerlessPlatform &platform, PolicyConfig config);

    /** Set a function's priority (defaults to Normal). */
    void setPriority(const std::string &function_name,
                     FunctionPriority priority);
    FunctionPriority priority(const std::string &function_name) const;

    /** Invoke through the policy (observes traffic). */
    InvocationRecord invoke(const std::string &function_name);

    /** Record an invocation made directly on the platform. */
    void observe(const std::string &function_name);

    /**
     * Adopt a template built outside rebalance() (a fleet autoscaler's
     * pre-warm): the pool accounts for it and rebalance manages its
     * lifetime from now on.
     */
    void noteExternalTemplate(const std::string &function_name);

    /**
     * Raise a function's traffic counter to at least @p weight so the
     * next rebalances treat it as hot. Used by predictive pre-warm: the
     * build lands *before* the burst, and without the credit the very
     * next rebalance would drop the template it just paid for. Decay
     * ages the credit out normally if the predicted traffic never comes.
     */
    void grantPrewarmCredit(const std::string &function_name,
                            double weight);

    /** Replace the template-pool memory budget (autoscaling). */
    void setTemplateMemoryBudget(std::size_t bytes);

    /**
     * Re-evaluate the template pool: build templates for the hottest /
     * highest-priority functions while under the memory budget; drop
     * templates whose functions went cold. Returns the number of
     * template builds plus drops performed.
     */
    std::size_t rebalance();

    /** Current template-pool memory. */
    std::size_t templateMemoryBytes() const;

    /** Functions currently holding a template. */
    std::vector<std::string> templatedFunctions() const;

    const PolicyConfig &config() const { return config_; }

  private:
    struct FunctionState
    {
        FunctionPriority priority = FunctionPriority::Normal;
        double recentInvocations = 0.0;
        bool hasTemplate = false;
    };

    double score(const FunctionState &state) const;

    ServerlessPlatform &platform_;
    PolicyConfig config_;
    std::map<std::string, FunctionState> functions_;
};

} // namespace catalyzer::platform

#endif // CATALYZER_PLATFORM_POLICY_H
