/**
 * @file
 * Open-loop workload driver: Poisson request arrivals over a function
 * mix, with keep-alive expiry, producing per-function and aggregate
 * latency distributions.
 *
 * Used by the ablation benches to study what the paper argues in
 * Sec. 2.2 and Sec. 6.9: keep-alive caches help the median but cannot
 * fix the cold-boot tail, while fork boot is a *sustainable* hot boot.
 */

#ifndef CATALYZER_PLATFORM_WORKLOAD_H
#define CATALYZER_PLATFORM_WORKLOAD_H

#include <map>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "sim/stats.h"

namespace catalyzer::platform {

/** One function's share of the traffic. */
struct WorkloadEntry
{
    std::string function;
    /** Mean requests per (virtual) second, Poisson arrivals. */
    double requestsPerSecond = 1.0;
};

/** One explicit request in a trace-driven workload. */
struct TraceEvent
{
    double atSec = 0.0;
    std::string function;
};

/** A complete workload description. */
struct WorkloadSpec
{
    std::vector<WorkloadEntry> mix;
    /**
     * Explicit trace; when non-empty it overrides the Poisson mix and
     * is replayed verbatim (production trace replay).
     */
    std::vector<TraceEvent> trace;
    /** Virtual duration of the run. */
    double durationSec = 10.0;
    /** Keep-alive TTL for idle instances; zero disables expiry. */
    sim::SimTime keepAliveTtl = sim::SimTime::zero();
    /** Arrival-stream seed (independent of the machine seed). */
    std::uint64_t seed = 1;

    /**
     * Build a Zipf-skewed mix over @p functions with the given total
     * request rate. With @p shuffle_seed == 0 the popularity rank
     * follows the order of @p functions (rank 0 — the hottest — is
     * functions[0]); any other value assigns ranks by a seeded
     * Fisher-Yates permutation, decoupling popularity from catalog
     * order so "hot" is not always the same function.
     */
    static WorkloadSpec zipf(const std::vector<std::string> &functions,
                             double total_rps, double skew = 1.0,
                             std::uint64_t shuffle_seed = 0);
};

/** Aggregated results of one workload run. */
struct WorkloadReport
{
    sim::LatencySeries endToEnd;
    sim::LatencySeries boot;
    std::map<std::string, sim::LatencySeries> perFunction;
    std::size_t requests = 0;
    std::size_t boots = 0;
    std::size_t reuses = 0;
    std::size_t expired = 0;
    /** Live instances at the end of the run. */
    std::size_t residentInstances = 0;
};

/**
 * Drives a platform with a workload. Arrivals are replayed in order on
 * the platform's virtual clock: if the clock lags the next arrival the
 * driver idles forward; if it leads (backlog), requests run
 * back-to-back.
 */
class WorkloadDriver
{
  public:
    explicit WorkloadDriver(ServerlessPlatform &platform)
        : platform_(platform)
    {}

    /** Run the workload to completion and report. */
    WorkloadReport run(const WorkloadSpec &spec);

  private:
    ServerlessPlatform &platform_;
};

} // namespace catalyzer::platform

#endif // CATALYZER_PLATFORM_WORKLOAD_H
