#include "platform/platform.h"

#include <algorithm>
#include <cstdlib>

#include "faults/fault_injector.h"
#include "sim/clock.h"
#include "sim/logging.h"

namespace catalyzer::platform {

using sandbox::BootResult;
using sandbox::FunctionArtifacts;
using sandbox::SandboxInstance;

namespace {

/** Catalyzer fallback-chain tiers, fastest first. */
enum BootTier
{
    kTierSfork = 0,
    kTierRemoteFork, ///< sfork from a peer machine's template
    kTierWarm,
    kTierCold,
    kTierFresh,
};

const char *
bootTierName(int tier)
{
    switch (tier) {
      case kTierSfork: return "sfork";
      case kTierRemoteFork: return "remote-sfork";
      case kTierWarm: return "warm";
      case kTierCold: return "cold";
      case kTierFresh: return "fresh";
    }
    sim::panic("bootTierName: bad tier %d", tier);
}

/**
 * Value observed into the boot.tier_served histogram. The local tiers
 * keep their pre-remote-fork encoding (sfork 0, warm 1, cold 2,
 * fresh 3) so single-machine runs stay bit-identical; the inserted
 * remote-sfork tier takes the next free slot.
 */
double
tierServedValue(int tier)
{
    switch (tier) {
      case kTierSfork: return 0.0;
      case kTierRemoteFork: return 4.0;
      case kTierWarm: return 1.0;
      case kTierCold: return 2.0;
    }
    return 3.0;
}

} // namespace

const char *
bootStrategyName(BootStrategy strategy)
{
    switch (strategy) {
      case BootStrategy::Docker: return "Docker";
      case BootStrategy::HyperContainer: return "HyperContainer";
      case BootStrategy::FireCracker: return "FireCracker";
      case BootStrategy::GVisor: return "gVisor";
      case BootStrategy::GVisorRestore: return "gVisor-restore";
      case BootStrategy::CatalyzerCold: return "Catalyzer-restore";
      case BootStrategy::CatalyzerWarm: return "Catalyzer-Zygote";
      case BootStrategy::CatalyzerFork: return "Catalyzer-sfork";
      case BootStrategy::CatalyzerAuto: return "Catalyzer-auto";
    }
    return "?";
}

ServerlessPlatform::ServerlessPlatform(sandbox::Machine &machine,
                                       PlatformConfig config,
                                       core::CatalyzerOptions options)
    : machine_(machine), config_(config), registry_(machine),
      runtime_(machine, options),
      recorder_(machine.nodeId(), machine.tracer(),
                machine.ctx().clock(), machine.ctx().stats())
{
    // Black-box capture at the moment a fault fires — recoveries
    // included, which a tier-fallback hook alone would miss. Strictly
    // pay-for-use: a disabled injector never calls the sink.
    runtime_.faults().setOnInject([this](faults::FaultSite site) {
        recorder_.record("fault-injected", faults::faultSiteName(site),
                         "", current_trace_);
    });
    if (const char *dir = std::getenv("CATALYZER_FLIGHT_DIR"))
        recorder_.setDumpDirectory(dir);
}

FunctionArtifacts &
ServerlessPlatform::deploy(const apps::AppProfile &app)
{
    return registry_.artifactsFor(app);
}

void
ServerlessPlatform::prepare(const apps::AppProfile &app)
{
    FunctionArtifacts &fn = deploy(app);
    switch (config_.strategy) {
      case BootStrategy::GVisorRestore:
        sandbox::ensureProtoImage(fn);
        break;
      case BootStrategy::CatalyzerCold:
      case BootStrategy::CatalyzerWarm:
        sandbox::ensureSeparatedImage(fn);
        break;
      case BootStrategy::CatalyzerFork:
      case BootStrategy::CatalyzerAuto:
        try {
            runtime_.prepareTemplate(fn);
        } catch (const faults::FaultError &err) {
            // Offline preparation hit a persistent fault; serve
            // degraded (warm/cold) until a later fork boot rebuilds
            // the template.
            machine_.ctx().stats().incr("platform.prepare_failures");
            sim::warn("prepare(%s) failed: %s", app.name.c_str(),
                      err.what());
        }
        break;
      default:
        break; // fresh-boot systems need no preparation
    }
    syncRemoteRegistry(app.name);
}

bool
ServerlessPlatform::remoteForkAvailable(FunctionArtifacts &fn) const
{
    return remote_env_ && remote_env_->registry &&
           remote_env_->registry
               ->nearestTemplateHolder(fn.app().name, remote_env_->self)
               .has_value();
}

void
ServerlessPlatform::syncRemoteRegistry(const std::string &name)
{
    if (!remote_env_ || !remote_env_->registry)
        return;
    remote_env_->registry->setTemplate(
        remote_env_->self, name, runtime_.templateFor(name) != nullptr);
}

void
ServerlessPlatform::setRemoteEnv(remote::RemoteBootEnv env)
{
    remote_env_ = std::move(env);
}

BootResult
ServerlessPlatform::bootChain(FunctionArtifacts &fn, int tier,
                              InvocationRecord &record,
                              trace::TraceContext trace)
{
    auto &stats = machine_.ctx().stats();
    for (;;) {
        // The remote tier only exists when a peer can actually lend the
        // template; otherwise the chain (and its fallback counter
        // names) is exactly the local sfork → warm → cold → fresh.
        while (tier == kTierRemoteFork && !remoteForkAvailable(fn))
            ++tier;
        try {
            BootResult result;
            switch (tier) {
              case kTierSfork:
                result = runtime_.bootFork(fn, trace);
                break;
              case kTierRemoteFork: {
                const remote::RemoteBootEnv &env = *remote_env_;
                const std::string &name = fn.app().name;
                auto peer = env.registry->nearestTemplateHolder(
                    name, env.self);
                if (!peer)
                    throw faults::FaultError(
                        faults::FaultSite::RemotePeerDeath,
                        name + " has no remote template holder");
                auto src = env.forkSource(name, *peer);
                if (!src)
                    throw faults::FaultError(
                        faults::FaultSite::RemotePeerDeath,
                        name + " fork source on node " +
                            std::to_string(*peer) + " is gone");
                src->self = env.self;
                result = runtime_.bootRemoteFork(fn, *src, trace);
                break;
              }
              case kTierWarm:
                result = runtime_.bootWarm(fn, trace);
                break;
              case kTierCold:
                result = runtime_.bootCold(fn, trace);
                break;
              default:
                // Last resort: boot the sandbox from scratch. No fault
                // site can fail it, so the chain always terminates.
                result = sandbox::bootSandbox(
                    sandbox::SandboxSystem::GVisor, fn, trace);
                break;
            }
            record.tierServed = bootTierName(std::min(
                tier, static_cast<int>(kTierFresh)));
            stats.observeMs("boot.tier_served", tierServedValue(tier));
            stats.observeWindowed("win.tier_served",
                                  machine_.ctx().now(),
                                  tierServedValue(tier));
            return result;
        } catch (const faults::FaultError &err) {
            // Degrade one tier instead of failing the request.
            int next = tier + 1;
            while (next == kTierRemoteFork && !remoteForkAvailable(fn))
                ++next;
            const std::string from = bootTierName(tier);
            const std::string to = bootTierName(next);
            stats.incr("boot.fallback." + from + "_" + to);
            recorder_.record("tier-fallback",
                             faults::faultSiteName(err.site()),
                             from + " -> " + to + ": " + err.what(),
                             trace.traceId());
            ++record.tierFallbacks;
            sim::debugLog("boot tier %s failed for %s (%s): "
                          "falling back to %s",
                          from.c_str(), fn.app().name.c_str(),
                          err.what(), to.c_str());
            tier = next;
        }
    }
}

BootResult
ServerlessPlatform::bootNew(FunctionArtifacts &fn,
                            InvocationRecord &record,
                            trace::TraceContext trace)
{
    using sandbox::SandboxSystem;
    record.tierServed = bootStrategyName(config_.strategy);
    switch (config_.strategy) {
      case BootStrategy::Docker:
        return sandbox::bootSandbox(SandboxSystem::Docker, fn, trace);
      case BootStrategy::HyperContainer:
        return sandbox::bootSandbox(SandboxSystem::HyperContainer, fn,
                                    trace);
      case BootStrategy::FireCracker:
        return sandbox::bootSandbox(SandboxSystem::FireCracker, fn,
                                    trace);
      case BootStrategy::GVisor:
        return sandbox::bootSandbox(SandboxSystem::GVisor, fn, trace);
      case BootStrategy::GVisorRestore:
        return sandbox::bootSandbox(SandboxSystem::GVisorRestore, fn,
                                    trace);
      case BootStrategy::CatalyzerCold:
        return bootChain(fn, kTierCold, record, trace);
      case BootStrategy::CatalyzerWarm:
        return bootChain(fn, kTierWarm, record, trace);
      case BootStrategy::CatalyzerFork:
        return bootChain(fn, kTierSfork, record, trace);
      case BootStrategy::CatalyzerAuto:
        if (runtime_.templateFor(fn.app().name))
            return bootChain(fn, kTierSfork, record, trace);
        if (remoteForkAvailable(fn))
            return bootChain(fn, kTierRemoteFork, record, trace);
        if (fn.sharedBase)
            return bootChain(fn, kTierWarm, record, trace);
        return bootChain(fn, kTierCold, record, trace);
    }
    sim::panic("unreachable boot strategy");
}

InvocationRecord
ServerlessPlatform::invoke(const std::string &function_name,
                           trace::TraceContext trace)
{
    auto &ctx = machine_.ctx();
    // Deployed functions resolve through the registry, which also
    // serves synthetic fleet functions that have no catalog entry; the
    // catalog lookup remains for legacy callers invoking an app that
    // was never deploy()ed.
    FunctionArtifacts *found = registry_.find(function_name);
    FunctionArtifacts &fn =
        found ? *found
              : registry_.artifactsFor(apps::appByName(function_name));

    // Always-on: an untraced request self-traces into the machine's
    // bounded ring tracer, so a later incident has the spans that led
    // up to it. Full-history callers pass their own tracer as before.
    if (!trace.enabled())
        trace = trace::TraceContext(machine_.tracer(), ctx.clock());

    trace::ScopedSpan invoke_span(trace, "invoke/" + function_name);
    invoke_span.attr("strategy", bootStrategyName(config_.strategy));
    const trace::TraceContext tctx = invoke_span.context();
    current_trace_ = tctx.traceId();

    InvocationRecord record;
    record.function = function_name;

    // Gateway delivery.
    sim::Stopwatch watch(ctx.clock());
    ctx.charge(ctx.costs().rpcDelivery);
    record.gatewayLatency = watch.elapsed();
    tctx.completedSpan("gateway", record.gatewayLatency);
    watch.restart();

    // Find or boot an instance.
    std::unique_ptr<SandboxInstance> inst;
    auto &idle = idle_[function_name];
    if (config_.reuseIdleInstances && !idle.empty()) {
        // Most-recently-used instance: the warmest caches, and older
        // ones age toward the keep-alive TTL.
        inst = std::move(idle.back().instance);
        idle.pop_back();
        record.reusedInstance = true;
        record.bootKind = inst->bootKind();
        record.tierServed = "reused";
        invoke_span.attr("reused", "true");
        ctx.stats().incr("platform.instance_reuses");
    } else {
        BootResult boot = bootNew(fn, record, tctx);
        inst = std::move(boot.instance);
        record.bootKind = inst->bootKind();
        record.bootLatency = inst->bootLatency();
        ctx.stats().incr("platform.boots");
        // The boot may have built (or dropped) the local template;
        // publish its state so peers can remote-sfork from it. A no-op
        // outside a cluster with remote fork enabled.
        syncRemoteRegistry(function_name);
    }
    invoke_span.attr("tier", record.tierServed);

    // Execute the handler.
    {
        trace::ScopedSpan exec_span(tctx, "execute");
        record.execLatency = inst->invoke();
    }

    // Park the instance.
    if (config_.reuseIdleInstances)
        idle_[function_name].push_back(
            IdleEntry{std::move(inst), ctx.now()});
    else if (config_.retainInstances)
        running_[function_name].push_back(std::move(inst));
    // else: destroyed here, releasing its memory.

    ctx.stats().incr("platform.invocations");
    ctx.stats().observe("invoke.latency", record.endToEnd());
    // Windowed time series: what the SLO engine evaluates. Boot latency
    // per serving tier and per function, plus end-to-end latency, keyed
    // to the window containing this request's completion time.
    {
        const sim::SimTime now = ctx.now();
        auto &stats = ctx.stats();
        stats.observeWindowed("win.boot_ms.tier." + record.tierServed,
                              now, record.bootLatency.toMs());
        stats.observeWindowed("win.boot_ms.fn." + function_name, now,
                              record.bootLatency.toMs());
        stats.observeWindowed("win.e2e_ms", now,
                              record.endToEnd().toMs());
    }
    current_trace_ = 0;
    // Background maintenance after the request is served: the offline
    // zygote builder keeps the pool at its target size.
    runtime_.zygotes().replenish();
    return record;
}

std::vector<SandboxInstance *>
ServerlessPlatform::instancesOf(const std::string &function_name)
{
    std::vector<SandboxInstance *> out;
    auto rit = running_.find(function_name);
    if (rit != running_.end()) {
        for (auto &inst : rit->second)
            out.push_back(inst.get());
    }
    auto iit = idle_.find(function_name);
    if (iit != idle_.end()) {
        for (auto &entry : iit->second)
            out.push_back(entry.instance.get());
    }
    return out;
}

std::size_t
ServerlessPlatform::runningCount(const std::string &function_name) const
{
    std::size_t n = 0;
    auto rit = running_.find(function_name);
    if (rit != running_.end())
        n += rit->second.size();
    auto iit = idle_.find(function_name);
    if (iit != idle_.end())
        n += iit->second.size();
    return n;
}

std::size_t
ServerlessPlatform::totalInstances() const
{
    std::size_t n = 0;
    for (const auto &[name, list] : running_)
        n += list.size();
    for (const auto &[name, list] : idle_)
        n += list.size();
    return n;
}

std::size_t
ServerlessPlatform::expireIdle(sim::SimTime ttl)
{
    const sim::SimTime now = machine_.ctx().now();
    std::size_t reclaimed = 0;
    for (auto &[name, entries] : idle_) {
        while (!entries.empty() &&
               now - entries.front().parkedAt > ttl) {
            entries.pop_front();
            ++reclaimed;
        }
    }
    if (reclaimed > 0)
        machine_.ctx().stats().incr("platform.idle_expired",
                                    static_cast<std::int64_t>(reclaimed));
    return reclaimed;
}

std::size_t
ServerlessPlatform::idleCount() const
{
    std::size_t n = 0;
    for (const auto &[name, entries] : idle_)
        n += entries.size();
    return n;
}

std::size_t
ServerlessPlatform::residentBytes() const
{
    std::size_t bytes = 0;
    for (const auto &[name, list] : running_) {
        for (const auto &inst : list)
            bytes += inst->rssBytes();
    }
    for (const auto &[name, entries] : idle_) {
        for (const auto &entry : entries)
            bytes += entry.instance->rssBytes();
    }
    bytes += runtime_.templateMemoryBytes();
    // Cached func-images (chunk tiers + locally cached image files)
    // compete with templates for machine memory; zero unless the
    // remote-image store is in use.
    bytes += runtime_.images().residentBytes();
    return bytes;
}

void
ServerlessPlatform::teardown(const std::string &function_name)
{
    running_.erase(function_name);
    idle_.erase(function_name);
}

std::size_t
ServerlessPlatform::reclaimFunctionMemory(const std::string &function_name)
{
    sandbox::FunctionArtifacts *fn = registry_.find(function_name);
    if (!fn)
        return 0;
    // Live instances still read through the Base-EPT; don't pull it out
    // from under them.
    if (runningCount(function_name) > 0)
        return 0;
    std::size_t bytes = 0;
    if (fn->sharedBase) {
        bytes += fn->sharedBase->residentBytes();
        fn->sharedBase.reset();
    }
    // Drop the image store's local copies first: on the publishing
    // machine they alias fn->separatedImage's file, so reclaiming here
    // keeps the byte accounting below from double-counting.
    bytes += runtime_.images().reclaimFunction(function_name);
    if (fn->separatedImage) {
        bytes += mem::bytesForPages(
            fn->separatedImage->file().residentPages());
        fn->separatedImage->file().evict();
        // The page cache is gone: the next restore's demand fills pay
        // storage reads again (unless the prefetcher batches them).
        fn->firstRestoreDone = false;
    }
    if (bytes > 0)
        machine_.ctx().stats().incr("platform.base_reclaims");
    return bytes;
}

} // namespace catalyzer::platform
