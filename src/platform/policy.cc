#include "platform/policy.h"

#include <algorithm>

#include "sim/logging.h"

namespace catalyzer::platform {

const char *
functionPriorityName(FunctionPriority priority)
{
    switch (priority) {
      case FunctionPriority::High: return "high";
      case FunctionPriority::Normal: return "normal";
      case FunctionPriority::Low: return "low";
    }
    return "?";
}

BootPolicyManager::BootPolicyManager(ServerlessPlatform &platform,
                                     PolicyConfig config)
    : platform_(platform), config_(config)
{
}

void
BootPolicyManager::setPriority(const std::string &function_name,
                               FunctionPriority priority)
{
    functions_[function_name].priority = priority;
}

FunctionPriority
BootPolicyManager::priority(const std::string &function_name) const
{
    auto it = functions_.find(function_name);
    return it == functions_.end() ? FunctionPriority::Normal
                                  : it->second.priority;
}

InvocationRecord
BootPolicyManager::invoke(const std::string &function_name)
{
    observe(function_name);
    return platform_.invoke(function_name);
}

void
BootPolicyManager::observe(const std::string &function_name)
{
    functions_[function_name].recentInvocations += 1.0;
}

void
BootPolicyManager::noteExternalTemplate(const std::string &function_name)
{
    functions_[function_name].hasTemplate = true;
}

void
BootPolicyManager::grantPrewarmCredit(const std::string &function_name,
                                      double weight)
{
    FunctionState &state = functions_[function_name];
    state.recentInvocations = std::max(state.recentInvocations, weight);
}

void
BootPolicyManager::setTemplateMemoryBudget(std::size_t bytes)
{
    config_.templateMemoryBudgetBytes = bytes;
}

double
BootPolicyManager::score(const FunctionState &state) const
{
    // Priority is a multiplier on observed traffic; High functions
    // qualify even when quiet, Low ones never hold a template.
    switch (state.priority) {
      case FunctionPriority::High:
        return 1000.0 + state.recentInvocations;
      case FunctionPriority::Normal:
        return state.recentInvocations;
      case FunctionPriority::Low:
        return -1.0;
    }
    return 0.0;
}

std::size_t
BootPolicyManager::rebalance()
{
    auto &runtime = platform_.catalyzer();
    std::size_t builds = 0;
    std::size_t drops = 0;

    // Rank candidates by score.
    std::vector<std::pair<double, std::string>> ranked;
    for (const auto &[name, state] : functions_)
        ranked.emplace_back(score(state), name);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });

    // Greedily keep templates for the top scorers within the budget.
    std::size_t used = 0;
    for (const auto &[s, name] : ranked) {
        FunctionState &state = functions_[name];
        const bool hot =
            state.priority == FunctionPriority::High ||
            (state.priority == FunctionPriority::Normal &&
             state.recentInvocations >=
                 static_cast<double>(config_.hotThreshold));
        if (hot) {
            if (!state.hasTemplate) {
                // Deployed functions (fleet populations included) come
                // from the registry; the app catalog is the fallback for
                // names observed before deploy().
                sandbox::FunctionArtifacts *fn =
                    platform_.registry().find(name);
                platform_.catalyzer().prepareTemplate(
                    fn ? *fn
                       : platform_.registry().artifactsFor(
                             apps::appByName(name)));
                state.hasTemplate = true;
                ++builds;
            }
            const auto *tmpl = runtime.templateFor(name);
            const std::size_t cost = tmpl ? tmpl->rssBytes() : 0;
            if (used + cost > config_.templateMemoryBudgetBytes) {
                // Over budget: this one (and everything colder) goes.
                runtime.dropTemplate(name);
                state.hasTemplate = false;
                ++drops;
            } else {
                used += cost;
                continue;
            }
        }
        if (!hot && state.hasTemplate) {
            runtime.dropTemplate(name);
            state.hasTemplate = false;
            ++drops;
        }
    }
    std::size_t actions = builds + drops;

    // Reclaim the restore artifacts of fully cold functions; prefetch
    // rebuilds their working set cheaply on the next boot.
    if (config_.reclaimColdBases) {
        for (const auto &[name, state] : functions_) {
            if (state.recentInvocations > 0.0 || state.hasTemplate)
                continue;
            if (platform_.reclaimFunctionMemory(name) > 0)
                ++actions;
        }
    }

    // Decay the traffic counters.
    for (auto &[name, state] : functions_) {
        state.recentInvocations *= config_.decay;
        if (state.recentInvocations < config_.coldFloor)
            state.recentInvocations = 0.0;
    }

    // Windowed policy series: hot-set size and churn per rebalance.
    // Like every win.* series these never appear in writeJson(), so
    // plain metrics snapshots are unchanged byte for byte.
    std::size_t hot_set = 0;
    for (const auto &[name, state] : functions_) {
        if (state.hasTemplate)
            ++hot_set;
    }
    auto &stats = platform_.machine().ctx().stats();
    const sim::SimTime now = platform_.machine().ctx().clock().now();
    stats.observeWindowed("win.policy.hot_set", now,
                          static_cast<double>(hot_set));
    stats.observeWindowed("win.policy.template_builds", now,
                          static_cast<double>(builds));
    stats.observeWindowed("win.policy.template_drops", now,
                          static_cast<double>(drops));
    return actions;
}

std::size_t
BootPolicyManager::templateMemoryBytes() const
{
    std::size_t used = 0;
    auto &runtime = platform_.catalyzer();
    for (const auto &[name, state] : functions_) {
        if (state.hasTemplate) {
            if (const auto *tmpl = runtime.templateFor(name))
                used += tmpl->rssBytes();
        }
    }
    return used;
}

std::vector<std::string>
BootPolicyManager::templatedFunctions() const
{
    std::vector<std::string> out;
    for (const auto &[name, state] : functions_) {
        if (state.hasTemplate)
            out.push_back(name);
    }
    return out;
}

} // namespace catalyzer::platform
