#include "platform/policy.h"

#include <algorithm>

#include "sim/logging.h"

namespace catalyzer::platform {

const char *
functionPriorityName(FunctionPriority priority)
{
    switch (priority) {
      case FunctionPriority::High: return "high";
      case FunctionPriority::Normal: return "normal";
      case FunctionPriority::Low: return "low";
    }
    return "?";
}

BootPolicyManager::BootPolicyManager(ServerlessPlatform &platform,
                                     PolicyConfig config)
    : platform_(platform), config_(config)
{
}

void
BootPolicyManager::setPriority(const std::string &function_name,
                               FunctionPriority priority)
{
    functions_[function_name].priority = priority;
}

FunctionPriority
BootPolicyManager::priority(const std::string &function_name) const
{
    auto it = functions_.find(function_name);
    return it == functions_.end() ? FunctionPriority::Normal
                                  : it->second.priority;
}

InvocationRecord
BootPolicyManager::invoke(const std::string &function_name)
{
    observe(function_name);
    return platform_.invoke(function_name);
}

void
BootPolicyManager::observe(const std::string &function_name)
{
    functions_[function_name].recentInvocations += 1.0;
}

double
BootPolicyManager::score(const FunctionState &state) const
{
    // Priority is a multiplier on observed traffic; High functions
    // qualify even when quiet, Low ones never hold a template.
    switch (state.priority) {
      case FunctionPriority::High:
        return 1000.0 + state.recentInvocations;
      case FunctionPriority::Normal:
        return state.recentInvocations;
      case FunctionPriority::Low:
        return -1.0;
    }
    return 0.0;
}

std::size_t
BootPolicyManager::rebalance()
{
    auto &runtime = platform_.catalyzer();
    std::size_t actions = 0;

    // Rank candidates by score.
    std::vector<std::pair<double, std::string>> ranked;
    for (const auto &[name, state] : functions_)
        ranked.emplace_back(score(state), name);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });

    // Greedily keep templates for the top scorers within the budget.
    std::size_t used = 0;
    for (const auto &[s, name] : ranked) {
        FunctionState &state = functions_[name];
        const bool hot =
            state.priority == FunctionPriority::High ||
            (state.priority == FunctionPriority::Normal &&
             state.recentInvocations >=
                 static_cast<double>(config_.hotThreshold));
        if (hot) {
            if (!state.hasTemplate) {
                platform_.catalyzer().prepareTemplate(
                    platform_.registry().artifactsFor(
                        apps::appByName(name)));
                state.hasTemplate = true;
                ++actions;
            }
            const auto *tmpl = runtime.templateFor(name);
            const std::size_t cost = tmpl ? tmpl->rssBytes() : 0;
            if (used + cost > config_.templateMemoryBudgetBytes) {
                // Over budget: this one (and everything colder) goes.
                runtime.dropTemplate(name);
                state.hasTemplate = false;
                ++actions;
            } else {
                used += cost;
                continue;
            }
        }
        if (!hot && state.hasTemplate) {
            runtime.dropTemplate(name);
            state.hasTemplate = false;
            ++actions;
        }
    }

    // Reclaim the restore artifacts of fully cold functions; prefetch
    // rebuilds their working set cheaply on the next boot.
    if (config_.reclaimColdBases) {
        for (const auto &[name, state] : functions_) {
            if (state.recentInvocations > 0.0 || state.hasTemplate)
                continue;
            if (platform_.reclaimFunctionMemory(name) > 0)
                ++actions;
        }
    }

    // Decay the traffic counters.
    for (auto &[name, state] : functions_) {
        state.recentInvocations *= config_.decay;
        if (state.recentInvocations < config_.coldFloor)
            state.recentInvocations = 0.0;
    }
    return actions;
}

std::size_t
BootPolicyManager::templateMemoryBytes() const
{
    std::size_t used = 0;
    auto &runtime = platform_.catalyzer();
    for (const auto &[name, state] : functions_) {
        if (state.hasTemplate) {
            if (const auto *tmpl = runtime.templateFor(name))
                used += tmpl->rssBytes();
        }
    }
    return used;
}

std::vector<std::string>
BootPolicyManager::templatedFunctions() const
{
    std::vector<std::string> out;
    for (const auto &[name, state] : functions_) {
        if (state.hasTemplate)
            out.push_back(name);
    }
    return out;
}

} // namespace catalyzer::platform
