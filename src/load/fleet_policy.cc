#include "load/fleet_policy.h"

#include <algorithm>

#include "faults/fault_injector.h"
#include "sim/logging.h"

namespace catalyzer::load {

FleetAutoscaler::FleetAutoscaler(platform::Cluster &cluster,
                                 const Population &population,
                                 FleetPolicyConfig config)
    : cluster_(cluster), population_(population),
      config_(std::move(config))
{
    const std::size_t machines = cluster_.machineCount();
    managers_.reserve(machines);
    for (std::size_t m = 0; m < machines; ++m) {
        managers_.push_back(std::make_unique<platform::BootPolicyManager>(
            cluster_.platform(m), config_.perMachine));
        template_budget_.push_back(
            config_.perMachine.templateMemoryBudgetBytes);
    }
    fns_.resize(population_.size());
    for (FnState &state : fns_)
        state.perMachine.assign(machines, 0);
}

void
FleetAutoscaler::observeArrival(std::size_t fn_index, std::size_t machine)
{
    FnState &state = fns_[fn_index];
    ++state.sinceTick;
    ++state.perMachine[machine];
    managers_[machine]->observe(population_.fn(fn_index).name);
}

void
FleetAutoscaler::afterInvoke(std::size_t fn_index, std::size_t /*machine*/,
                             const platform::InvocationRecord &record)
{
    FnState &state = fns_[fn_index];
    if (state.prewarmed &&
        (record.tierServed == "sfork" ||
         record.tierServed == "remote-sfork")) {
        ++state.sforksAfterPrewarm;
        ++counters_.prewarmServedSforks;
    }
}

bool
FleetAutoscaler::templateAnywhere(const FleetFunction &fn) const
{
    for (std::size_t m = 0; m < managers_.size(); ++m) {
        if (cluster_.platform(m).catalyzer().templateFor(fn.name) !=
            nullptr)
            return true;
    }
    return false;
}

void
FleetAutoscaler::buildTemplateOn(const FleetFunction &fn,
                                 std::size_t machine)
{
    platform::ServerlessPlatform &plat = cluster_.platform(machine);
    population_.deployTo(plat, fn);
    try {
        plat.catalyzer().prepareTemplate(
            *plat.registry().find(fn.name));
    } catch (const faults::FaultError &err) {
        sim::warn("prewarm(%s) on machine %zu failed: %s",
                  fn.name.c_str(), machine, err.what());
        return;
    }
    managers_[machine]->noteExternalTemplate(fn.name);
    managers_[machine]->grantPrewarmCredit(fn.name,
                                           config_.prewarmCredit);
    // Publish the holder right away: the boot path only syncs the
    // cluster directory when it serves a request, and the whole point
    // of a pre-warm is that placement routes to the holder *before*
    // the first post-build request lands there.
    cluster_.registry().setTemplate(static_cast<net::NodeId>(machine),
                                    fn.name, true);
}

void
FleetAutoscaler::prewarmPass()
{
    for (std::size_t i = 0; i < fns_.size(); ++i) {
        FnState &state = fns_[i];
        const FleetFunction &fn = population_.fn(i);
        // A prewarmed template that was dropped without ever serving a
        // fork boot was a wasted build: the predictor fired for traffic
        // that never came (or came too thin to stay hot).
        if (state.prewarmed && !templateAnywhere(fn)) {
            if (state.sforksAfterPrewarm == 0)
                ++counters_.prewarmFalsePositives;
            state.prewarmed = false;
            state.sforksAfterPrewarm = 0;
        }
        if (state.ewmaRps < config_.prewarmRateRps || state.prewarmed)
            continue;
        if (templateAnywhere(fn))
            continue; // reactive policy (or an earlier prewarm) got it
        ++counters_.prewarmTriggers;
        // Build where the traffic is landing; fall back to a stable
        // home machine when the burst has not hit anywhere yet.
        std::size_t best = fn.index % managers_.size();
        std::uint32_t best_count = 0;
        for (std::size_t m = 0; m < managers_.size(); ++m) {
            if (state.perMachine[m] > best_count) {
                best = m;
                best_count = state.perMachine[m];
            }
        }
        buildTemplateOn(fn, best);
        ++counters_.prewarmBuilds;
        state.prewarmed = true;
        state.sforksAfterPrewarm = 0;
    }
}

void
FleetAutoscaler::pressurePass()
{
    const std::size_t budget = config_.machineResidentBudgetBytes;
    const auto high_water = static_cast<std::size_t>(
        config_.memoryHighWater * static_cast<double>(budget));
    for (std::size_t m = 0; m < managers_.size(); ++m) {
        const std::size_t resident = residentBytes(m);
        if (resident > high_water) {
            // Shed in cost order: idle keep-alive instances first (the
            // cheapest to rebuild), then the image store's RAM tier
            // (chunks demote to SSD, so refetches stay local), then
            // halve the template budget so the next rebalance drops
            // the coldest templates.
            counters_.pressureEvictions +=
                cluster_.platform(m).expireIdle(
                    sim::SimTime::milliseconds(1.0));
            counters_.pressureImageDemotedBytes +=
                cluster_.platform(m)
                    .catalyzer()
                    .images()
                    .relieveMemoryPressure();
            const std::size_t floor =
                config_.perMachine.templateMemoryBudgetBytes / 4;
            if (config_.reactiveRebalance &&
                template_budget_[m] / 2 >= floor) {
                template_budget_[m] /= 2;
                managers_[m]->setTemplateMemoryBudget(
                    template_budget_[m]);
                counters_.rebalanceActions += managers_[m]->rebalance();
                ++counters_.pressureBudgetShrinks;
            }
        } else if (resident < high_water / 2 &&
                   template_budget_[m] <
                       config_.perMachine.templateMemoryBudgetBytes) {
            // Headroom again: let the template pool grow back.
            template_budget_[m] = std::min(
                template_budget_[m] * 2,
                config_.perMachine.templateMemoryBudgetBytes);
            managers_[m]->setTemplateMemoryBudget(template_budget_[m]);
        }
    }
}

void
FleetAutoscaler::crossRackPass()
{
    // Hottest functions by EWMA.
    std::vector<std::size_t> order(fns_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const std::size_t k = std::min(config_.hottestTracked, order.size());
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [this](std::size_t a, std::size_t b) {
                          return fns_[a].ewmaRps > fns_[b].ewmaRps;
                      });

    const std::size_t machines = managers_.size();
    for (std::size_t oi = 0; oi < k; ++oi) {
        const std::size_t i = order[oi];
        FnState &state = fns_[i];
        if (state.sinceTick == 0)
            continue;
        const FleetFunction &fn = population_.fn(i);
        // Per-rack arrival counts and holder presence this tick.
        std::map<std::size_t, std::uint32_t> rack_arrivals;
        std::map<std::size_t, bool> rack_holds;
        bool holds_anywhere = false;
        for (std::size_t m = 0; m < machines; ++m) {
            const std::size_t rack =
                cluster_.fabric().rackOf(static_cast<net::NodeId>(m));
            rack_arrivals[rack] += state.perMachine[m];
            const bool holds =
                cluster_.platform(m).catalyzer().templateFor(fn.name) !=
                nullptr;
            if (holds) {
                rack_holds[rack] = true;
                holds_anywhere = true;
            }
        }
        if (!holds_anywhere)
            continue; // nothing to spread; prewarm/reactive first
        for (const auto &[rack, arrivals] : rack_arrivals) {
            if (rack_holds[rack])
                continue;
            const double share = static_cast<double>(arrivals) /
                                 static_cast<double>(state.sinceTick);
            if (share < config_.crossRackShare)
                continue;
            // Least-loaded machine in the starved rack gets a holder.
            bool have = false;
            std::size_t best = 0, best_load = 0;
            for (std::size_t m = 0; m < machines; ++m) {
                if (cluster_.fabric().rackOf(
                        static_cast<net::NodeId>(m)) != rack)
                    continue;
                const std::size_t loadv =
                    cluster_.platform(m).totalInstances();
                if (!have || loadv < best_load) {
                    have = true;
                    best = m;
                    best_load = loadv;
                }
            }
            if (have) {
                buildTemplateOn(fn, best);
                ++counters_.crossRackBuilds;
            }
        }
    }
}

void
FleetAutoscaler::tick(sim::SimTime now)
{
    ++counters_.ticks;
    const double dt = (now - last_tick_).toSec();
    last_tick_ = now;
    if (dt > 0.0) {
        for (FnState &state : fns_) {
            const double rate = static_cast<double>(state.sinceTick) / dt;
            state.ewmaRps = config_.ewmaAlpha * rate +
                            (1.0 - config_.ewmaAlpha) * state.ewmaRps;
        }
    }

    if (config_.predictivePrewarm)
        prewarmPass();

    // Reactive per-machine template policy.
    if (config_.reactiveRebalance) {
        for (auto &manager : managers_)
            counters_.rebalanceActions += manager->rebalance();
    }

    // Keep-alive windows.
    if (config_.keepAliveTtl > sim::SimTime::zero()) {
        for (std::size_t m = 0; m < managers_.size(); ++m)
            counters_.keepAliveExpired +=
                cluster_.platform(m).expireIdle(config_.keepAliveTtl);
    }

    pressurePass();

    if (config_.crossRackRebalance && cluster_.machineCount() > 1)
        crossRackPass();

    for (FnState &state : fns_) {
        state.sinceTick = 0;
        std::fill(state.perMachine.begin(), state.perMachine.end(), 0u);
    }
}

void
FleetAutoscaler::finalize()
{
    for (FnState &state : fns_) {
        if (state.prewarmed && state.sforksAfterPrewarm == 0)
            ++counters_.prewarmFalsePositives;
    }
}

double
FleetAutoscaler::ewmaRps(std::size_t fn_index) const
{
    return fns_[fn_index].ewmaRps;
}

std::size_t
FleetAutoscaler::residentBytes(std::size_t machine) const
{
    // Resident state regions compete with instances for machine RAM,
    // so they join the same memory-pressure budget (zero on stateless
    // fleets — the store is pay-for-use).
    return cluster_.platform(machine).residentBytes() +
           cluster_.stateResidentBytes(machine);
}

std::size_t
FleetAutoscaler::fleetResidentBytes() const
{
    std::size_t total = 0;
    for (std::size_t m = 0; m < managers_.size(); ++m)
        total += residentBytes(m);
    return total;
}

} // namespace catalyzer::load
