#include "load/traffic.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace catalyzer::load {

namespace {

/** Independent per-function generator: a splitmix-style mix of the
 *  scenario seed and the function index, so adding a function never
 *  perturbs any other function's sub-stream. */
sim::Rng
fnRng(std::uint64_t seed, std::size_t fn_index)
{
    const std::uint64_t mixed =
        seed ^ (0x9e3779b97f4a7c15ULL * (fn_index + 1));
    return sim::Rng(mixed);
}

/** Steady sub-stream: Poisson head, MMPP-bursty tail, same mean. */
void
appendSteady(sim::Rng &rng, const FleetFunction &fn,
             const TrafficSpec &spec, std::vector<double> &out)
{
    if (fn.baseRps <= 0.0)
        return;
    if (fn.rank >= spec.burstyRankFloor) {
        appendMmppTimes(rng,
                        MmppParams::withMeanRate(fn.baseRps,
                                                 spec.burstMeanOnSec,
                                                 spec.burstMeanOffSec),
                        spec.durationSec, out);
    } else {
        appendPoissonTimes(rng, fn.baseRps, spec.durationSec, out);
    }
}

/** Flash-crowd spike rate for one crowd function at time t. */
double
flashRateAt(const TrafficSpec &spec, double t)
{
    const double ramp_end = spec.flashAtSec + spec.flashRampSec;
    const double hold_end = ramp_end + spec.flashHoldSec;
    if (t < spec.flashAtSec || t >= hold_end)
        return 0.0;
    if (t < ramp_end)
        return spec.flashRpsPerFunction *
               (t - spec.flashAtSec) / spec.flashRampSec;
    return spec.flashRpsPerFunction;
}

/** Thinned nonhomogeneous stream for the flash spike. */
void
appendFlashTimes(sim::Rng &rng, const TrafficSpec &spec,
                 std::vector<double> &out)
{
    const double peak = spec.flashRpsPerFunction;
    if (peak <= 0.0)
        return;
    const double hold_end =
        spec.flashAtSec + spec.flashRampSec + spec.flashHoldSec;
    double t = spec.flashAtSec;
    for (;;) {
        t += rng.exponential(1.0 / peak);
        if (t >= std::min(hold_end, spec.durationSec))
            break;
        if (rng.uniform() * peak < flashRateAt(spec, t))
            out.push_back(t);
    }
}

/** Tenant-churn sub-stream: piecewise-homogeneous over epochs. */
void
appendChurn(sim::Rng &rng, const FleetFunction &fn,
            const TrafficSpec &spec, std::size_t tenants,
            std::vector<double> &out)
{
    if (fn.baseRps <= 0.0 || spec.churnEpochSec <= 0.0)
        return;
    const double active_frac =
        std::clamp(spec.churnActiveFraction, 0.01, 1.0);
    const std::size_t active_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(active_frac * static_cast<double>(tenants))));
    double t = 0.0;
    std::size_t epoch = 0;
    while (t < spec.durationSec) {
        const double epoch_end =
            std::min(t + spec.churnEpochSec, spec.durationSec);
        // Tenant t is active in epoch e iff (tenant + e) mod tenants
        // falls in the active window — the window slides one tenant per
        // epoch, so the hot set churns completely over a full rotation.
        const bool active =
            (fn.tenant + epoch) % std::max<std::size_t>(tenants, 1) <
            active_count;
        // Conserve fleet-wide rate: active tenants concentrate the
        // traffic their idle peers give up.
        const double rate =
            active ? fn.baseRps / active_frac
                   : fn.baseRps * spec.churnTrickleFraction;
        if (rate > 0.0) {
            double a = t;
            for (;;) {
                a += rng.exponential(1.0 / rate);
                if (a >= epoch_end)
                    break;
                out.push_back(a);
            }
        }
        t = epoch_end;
        ++epoch;
    }
}

} // namespace

const char *
scenarioName(Scenario scenario)
{
    switch (scenario) {
      case Scenario::Steady: return "steady";
      case Scenario::Diurnal: return "diurnal";
      case Scenario::FlashCrowd: return "flash-crowd";
      case Scenario::TenantChurn: return "tenant-churn";
    }
    return "?";
}

std::vector<FleetArrival>
generateFleetStream(const Population &population, const TrafficSpec &spec)
{
    if (spec.durationSec <= 0.0)
        sim::fatal("generateFleetStream: non-positive duration");

    std::vector<FleetArrival> merged;
    // Rough capacity guess: total rate * duration, plus flash volume.
    merged.reserve(static_cast<std::size_t>(
        population.spec().totalRps * spec.durationSec * 1.25));

    std::vector<double> times;
    for (const FleetFunction &fn : population.functions()) {
        times.clear();
        sim::Rng rng = fnRng(spec.seed, fn.index);
        switch (spec.scenario) {
          case Scenario::Steady:
            appendSteady(rng, fn, spec, times);
            break;
          case Scenario::Diurnal: {
            DiurnalCurve curve;
            curve.baseRate = fn.baseRps;
            curve.amplitude = spec.diurnalAmplitude;
            curve.periodSec = spec.diurnalPeriodSec;
            // Tenants peak at different times of "day".
            curve.phase = 6.283185307179586 *
                          static_cast<double>(fn.tenant) /
                          static_cast<double>(std::max<std::size_t>(
                              population.tenantCount(), 1));
            appendDiurnalTimes(rng, curve, spec.durationSec, times);
            break;
          }
          case Scenario::FlashCrowd: {
            appendSteady(rng, fn, spec, times);
            // The crowd hits the *coldest* functions: highest ranks,
            // which the policy layer has no reason to keep warm.
            const std::size_t n = population.size();
            if (spec.flashFunctions > 0 &&
                fn.rank + spec.flashFunctions >= n)
                appendFlashTimes(rng, spec, times);
            break;
          }
          case Scenario::TenantChurn:
            appendChurn(rng, fn, spec, population.tenantCount(), times);
            break;
        }
        for (double t : times)
            merged.push_back(
                FleetArrival{t, static_cast<std::uint32_t>(fn.index)});
    }

    if (spec.workflowRps > 0.0) {
        // The workflow side stream draws from its own generator (an
        // index no function can use), so turning it on never perturbs
        // any function sub-stream.
        times.clear();
        sim::Rng rng =
            fnRng(spec.seed ^ 0xdab0ull, population.size() + (1ull << 32));
        appendPoissonTimes(rng, spec.workflowRps, spec.durationSec,
                           times);
        for (double t : times)
            merged.push_back(FleetArrival{t, 0xffffffffu, 0});
    }

    std::sort(merged.begin(), merged.end(),
              [](const FleetArrival &a, const FleetArrival &b) {
                  if (a.atSec != b.atSec)
                      return a.atSec < b.atSec;
                  return a.fn < b.fn;
              });
    // Round-robin the workflow kinds in time order, after the merge,
    // so the k-th workflow arrival runs spec k mod kinds regardless of
    // how the side stream interleaves with function traffic.
    const std::size_t kinds = std::max<std::size_t>(1, spec.workflowKinds);
    std::size_t next_kind = 0;
    for (FleetArrival &arrival : merged) {
        if (arrival.fn == 0xffffffffu)
            arrival.workflow =
                static_cast<std::int32_t>(next_kind++ % kinds);
    }
    return merged;
}

} // namespace catalyzer::load
