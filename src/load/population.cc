#include "load/population.h"

#include <cmath>
#include <cstdio>

#include "sim/logging.h"
#include "sim/rng.h"

namespace catalyzer::load {

using namespace sim::time_literals;

namespace {

/** Lightweight language archetypes the synthetic profiles derive from.
 *  Sizes are deliberately small next to the paper catalog: a fleet run
 *  boots thousands of these, and the *distribution* of boot costs — not
 *  any single function's absolute latency — is what the experiments
 *  score. */
struct Archetype
{
    const char *tag;
    apps::Language language;
    sim::SimTime runtimeBoot;
    std::size_t modules;
    sim::SimTime perModule;
    sim::SimTime appSetup;
    std::size_t binaryPages;
    std::size_t runtimeHeapPages;
    std::size_t appHeapPages;
    std::size_t kernelObjects;
    std::size_t ioConnections;
    sim::SimTime execCompute;
};

const Archetype kArchetypes[] = {
    // clang-format off
    {"c-fn",    apps::Language::C,      1_ms,   8, 0.02_ms,  0.5_ms,
     48,  64, 96, 700, 2, 0.6_ms},
    {"py-api",  apps::Language::Python, 8_ms, 140, 0.05_ms,  2_ms,
     96, 384, 192, 1600, 4, 1.2_ms},
    {"node-api",apps::Language::NodeJs, 5_ms, 220, 0.03_ms,  1.5_ms,
     128, 512, 256, 2000, 4, 0.9_ms},
    {"java-svc",apps::Language::Java,  40_ms, 900, 0.04_ms,  6_ms,
     160, 768, 384, 2800, 6, 2.4_ms},
    // clang-format on
};

/** Jitter @p base by +/- @p spread (relative), never below 1. */
std::size_t
jitterSize(sim::Rng &rng, std::size_t base, double spread)
{
    const double factor = 1.0 + rng.uniform(-spread, spread);
    const double v = std::max(1.0, static_cast<double>(base) * factor);
    return static_cast<std::size_t>(v);
}

} // namespace

Population::Population(PopulationSpec spec) : spec_(std::move(spec))
{
    if (spec_.functions == 0)
        sim::fatal("Population: need at least one function");
    if (spec_.tenants == 0)
        spec_.tenants = 1;

    // Seeded rank permutation (Fisher-Yates): rank[i] is the popularity
    // rank of function i, decoupled from creation order.
    std::vector<std::size_t> rank(spec_.functions);
    for (std::size_t i = 0; i < rank.size(); ++i)
        rank[i] = i;
    sim::Rng shuffle_rng(spec_.seed ^ 0x5eedb100dULL);
    for (std::size_t i = rank.size(); i > 1; --i) {
        const std::size_t j = shuffle_rng.uniformInt(i);
        std::swap(rank[i - 1], rank[j]);
    }

    // Zipf normalization over ranks 1..N.
    double norm = 0.0;
    for (std::size_t r = 0; r < spec_.functions; ++r)
        norm += 1.0 / std::pow(static_cast<double>(r + 1), spec_.zipfSkew);

    sim::Rng jitter_rng(spec_.seed ^ 0xa5a5a5a5ULL);
    functions_.reserve(spec_.functions);
    for (std::size_t i = 0; i < spec_.functions; ++i) {
        const Archetype &arch =
            kArchetypes[i % (sizeof kArchetypes / sizeof kArchetypes[0])];
        const std::size_t tenant = i % spec_.tenants;

        char buf[64];
        std::snprintf(buf, sizeof buf, "%s/fn-%04zu-%s",
                      tenantName(tenant).c_str(), i, arch.tag);

        apps::AppProfile profile;
        profile.name = buf;
        profile.displayName = profile.name;
        profile.language = arch.language;
        profile.suite = apps::Suite::Micro;
        profile.runtimeBootCost = arch.runtimeBoot;
        profile.modulesLoaded = jitterSize(jitter_rng, arch.modules, 0.25);
        profile.perModuleCost = arch.perModule;
        profile.appSetupCost = arch.appSetup;
        profile.binaryPages = jitterSize(jitter_rng, arch.binaryPages, 0.2);
        profile.runtimeHeapPages =
            jitterSize(jitter_rng, arch.runtimeHeapPages, 0.25);
        profile.appHeapPages =
            jitterSize(jitter_rng, arch.appHeapPages, 0.4);
        profile.kernelObjects =
            jitterSize(jitter_rng, arch.kernelObjects, 0.2);
        profile.ioConnections = arch.ioConnections;
        profile.execComputeCost = arch.execCompute;
        // Small rootfs: a fleet deploys thousands of these per machine.
        profile.rootfsFiles = 6;
        profile.rootfsBytes = 1u << 20;
        profiles_.push_back(std::move(profile));

        FleetFunction fn;
        fn.name = profiles_.back().name;
        fn.index = i;
        fn.tenant = tenant;
        fn.rank = rank[i];
        fn.baseRps =
            spec_.totalRps *
            (1.0 / std::pow(static_cast<double>(rank[i] + 1),
                            spec_.zipfSkew)) /
            norm;
        fn.profile = &profiles_.back();
        functions_.push_back(std::move(fn));
    }
}

std::string
Population::tenantName(std::size_t tenant)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "t%03zu", tenant);
    return buf;
}

void
Population::deployTo(platform::Cluster &cluster) const
{
    for (const FleetFunction &fn : functions_)
        cluster.deploy(*fn.profile);
}

void
Population::deployTo(platform::ServerlessPlatform &platform,
                     const FleetFunction &fn) const
{
    if (platform.registry().find(fn.name) == nullptr)
        platform.deploy(*fn.profile);
}

} // namespace catalyzer::load
