#include "load/arrival.h"

#include <algorithm>
#include <cmath>

namespace catalyzer::load {

void
appendPoissonTimes(sim::Rng &rng, double rate, double duration_sec,
                   std::vector<double> &out)
{
    if (rate <= 0.0)
        return;
    double t = 0.0;
    for (;;) {
        t += rng.exponential(1.0 / rate);
        if (t >= duration_sec)
            break;
        out.push_back(t);
    }
}

void
appendPoissonArrivals(sim::Rng &rng, double rate, double duration_sec,
                      const std::string &function,
                      std::vector<Arrival> &out)
{
    if (rate <= 0.0)
        return;
    double t = 0.0;
    for (;;) {
        t += rng.exponential(1.0 / rate);
        if (t >= duration_sec)
            break;
        out.push_back(Arrival{t, function});
    }
}

double
MmppParams::meanRate() const
{
    const double cycle = meanOnSec + meanOffSec;
    if (cycle <= 0.0)
        return 0.0;
    return (onRate * meanOnSec + offRate * meanOffSec) / cycle;
}

MmppParams
MmppParams::withMeanRate(double mean_rate, double mean_on_sec,
                         double mean_off_sec, double off_fraction)
{
    MmppParams p;
    p.meanOnSec = mean_on_sec;
    p.meanOffSec = mean_off_sec;
    const double cycle = mean_on_sec + mean_off_sec;
    // Split the expected arrivals per cycle between the states: the OFF
    // state serves off_fraction of them as a trickle, the ON state
    // concentrates the rest into the burst.
    p.offRate = mean_off_sec > 0.0
                    ? mean_rate * cycle * off_fraction / mean_off_sec
                    : 0.0;
    p.onRate = mean_on_sec > 0.0
                   ? mean_rate * cycle * (1.0 - off_fraction) / mean_on_sec
                   : 0.0;
    return p;
}

void
appendMmppTimes(sim::Rng &rng, const MmppParams &params,
                double duration_sec, std::vector<double> &out)
{
    // Piecewise-homogeneous generation: draw the state dwell, then the
    // arrivals inside it from scratch. Restarting the exponential at
    // each segment boundary is exact (memorylessness).
    if (params.meanOnSec <= 0.0 && params.meanOffSec <= 0.0)
        return; // zero-length dwells in both states would never advance
    double t = 0.0;
    bool on = params.startOn;
    while (t < duration_sec) {
        const double mean_dwell = on ? params.meanOnSec
                                     : params.meanOffSec;
        const double dwell =
            mean_dwell > 0.0 ? rng.exponential(mean_dwell) : 0.0;
        const double seg_end = std::min(t + dwell, duration_sec);
        const double rate = on ? params.onRate : params.offRate;
        if (rate > 0.0) {
            double a = t;
            for (;;) {
                a += rng.exponential(1.0 / rate);
                if (a >= seg_end)
                    break;
                out.push_back(a);
            }
        }
        t += dwell;
        on = !on;
    }
}

double
DiurnalCurve::rateAt(double t_sec) const
{
    constexpr double kTau = 6.283185307179586;
    return baseRate *
           (1.0 + amplitude * std::sin(kTau * t_sec / periodSec + phase));
}

void
appendDiurnalTimes(sim::Rng &rng, const DiurnalCurve &curve,
                   double duration_sec, std::vector<double> &out)
{
    const double peak = curve.baseRate * (1.0 + std::abs(curve.amplitude));
    if (peak <= 0.0)
        return;
    double t = 0.0;
    for (;;) {
        t += rng.exponential(1.0 / peak);
        if (t >= duration_sec)
            break;
        // Thinning: accept with probability rate(t) / peak.
        if (rng.uniform() * peak < curve.rateAt(t))
            out.push_back(t);
    }
}

void
sortByTime(std::vector<Arrival> &arrivals)
{
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  return a.atSec < b.atSec;
              });
}

} // namespace catalyzer::load
