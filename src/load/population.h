/**
 * @file
 * Synthetic multi-tenant function populations.
 *
 * A fleet experiment needs thousands of functions, but the paper
 * catalog has ~24. The Population builds a deterministic synthetic
 * catalog: every function gets an AppProfile derived from a lightweight
 * language archetype (sizes jittered per function so images differ), a
 * tenant, and a Zipf share of the fleet's request rate. Popularity rank
 * is a *seeded permutation* of the catalog order — the hot head of the
 * distribution lands on arbitrary tenants and archetypes, the way real
 * platform popularity does, instead of on whichever function happened
 * to be created first.
 *
 * Profiles live in stable storage for the Population's lifetime:
 * FunctionArtifacts keeps a reference to the deployed AppProfile, so a
 * Population must outlive any Cluster it was deployed to.
 */

#ifndef CATALYZER_LOAD_POPULATION_H
#define CATALYZER_LOAD_POPULATION_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "apps/app_profile.h"
#include "platform/cluster.h"

namespace catalyzer::load {

/** Knobs for building a synthetic population. */
struct PopulationSpec
{
    std::size_t functions = 1000;
    std::size_t tenants = 40;
    /** Fleet-wide mean request rate, split by Zipf share. */
    double totalRps = 1000.0;
    /** Zipf skew: share(rank) ~ 1 / rank^skew. */
    double zipfSkew = 1.0;
    /** Drives the rank permutation and per-function size jitter. */
    std::uint64_t seed = 1;
};

/** One synthetic function in the fleet. */
struct FleetFunction
{
    std::string name; ///< "t007/fn-0421": tenant-scoped, fleet-unique
    std::size_t index = 0;  ///< position in Population::functions()
    std::size_t tenant = 0;
    std::size_t rank = 0;   ///< popularity rank, 0 = hottest
    double baseRps = 0.0;   ///< Zipf share of PopulationSpec::totalRps
    const apps::AppProfile *profile = nullptr;
};

/** A deterministic synthetic function catalog. */
class Population
{
  public:
    explicit Population(PopulationSpec spec);

    const PopulationSpec &spec() const { return spec_; }
    const std::vector<FleetFunction> &functions() const
    {
        return functions_;
    }
    const FleetFunction &fn(std::size_t i) const { return functions_[i]; }
    std::size_t size() const { return functions_.size(); }
    std::size_t tenantCount() const { return spec_.tenants; }

    /** Stable tenant id string, e.g. "t007". */
    static std::string tenantName(std::size_t tenant);

    /** Register every function on every machine of @p cluster. */
    void deployTo(platform::Cluster &cluster) const;

    /** Register @p fn on one machine (idempotent; lazy-deploy path). */
    void deployTo(platform::ServerlessPlatform &platform,
                  const FleetFunction &fn) const;

  private:
    PopulationSpec spec_;
    /** Stable addresses: FunctionArtifacts holds profile references. */
    std::deque<apps::AppProfile> profiles_;
    std::vector<FleetFunction> functions_;
};

} // namespace catalyzer::load

#endif // CATALYZER_LOAD_POPULATION_H
