/**
 * @file
 * The fleet traffic engine: scenario definitions and the deterministic
 * merged arrival stream.
 *
 * A scenario turns a Population's per-function Zipf rates into concrete
 * arrival processes: steady Poisson for the hot head with MMPP bursts
 * in the long tail, tenant-phase-shifted diurnal curves, a flash crowd
 * that ramps the coldest functions from silence to a hard plateau, or
 * tenant churn that rotates which tenants are active every epoch. The
 * merged stream is a pure function of (population, spec): per-function
 * sub-streams draw from independent seeded generators and merge into
 * one time-ordered sequence, so the same spec replays the same fleet
 * history on every run — the property all regression gates lean on.
 */

#ifndef CATALYZER_LOAD_TRAFFIC_H
#define CATALYZER_LOAD_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "load/arrival.h"
#include "load/population.h"

namespace catalyzer::load {

/** Fleet traffic scenarios (the bench's scenario table). */
enum class Scenario
{
    Steady,     ///< Poisson head + MMPP-bursty tail at base rates
    Diurnal,    ///< tenant-phase-shifted sinusoidal rate curves
    FlashCrowd, ///< steady background + cold-tail functions spike
    TenantChurn,///< active-tenant set rotates every epoch
};

const char *scenarioName(Scenario scenario);

/** Scenario knobs; defaults give each scenario its typical shape. */
struct TrafficSpec
{
    Scenario scenario = Scenario::Steady;
    double durationSec = 30.0;
    std::uint64_t seed = 7;

    /**
     * Functions with rank >= burstyRankFloor use MMPP on-off arrivals
     * instead of plain Poisson (the idle-then-spiky long tail). The
     * fleet-wide expected request count is unchanged: MMPP parameters
     * are derived from each function's mean rate.
     */
    std::size_t burstyRankFloor = 64;
    double burstMeanOnSec = 0.5;
    double burstMeanOffSec = 4.5;

    // Diurnal scenario.
    double diurnalAmplitude = 0.8;
    double diurnalPeriodSec = 20.0;

    // FlashCrowd scenario: the flashFunctions coldest functions ramp
    // from zero to flashRpsPerFunction over flashRampSec, hold for
    // flashHoldSec, then stop.
    double flashAtSec = 15.0;
    double flashRampSec = 3.0;
    double flashHoldSec = 5.0;
    double flashRpsPerFunction = 40.0;
    std::size_t flashFunctions = 32;

    // TenantChurn scenario: every epoch a rotating churnActiveFraction
    // of tenants carries the traffic; inactive tenants keep a trickle.
    double churnEpochSec = 8.0;
    double churnActiveFraction = 0.25;
    double churnTrickleFraction = 0.02;

    /**
     * Stateful-workflow side stream: a Poisson process at workflowRps
     * whose arrivals execute DAG workflows (FleetRunConfig::workflows)
     * instead of single functions, cycling round-robin over
     * workflowKinds specs in time order. Zero (the default) keeps the
     * tape byte-identical to the function-only engine.
     */
    double workflowRps = 0.0;
    std::size_t workflowKinds = 1;
};

/** One request in the merged fleet stream. */
struct FleetArrival
{
    double atSec = 0.0;
    std::uint32_t fn = 0; ///< index into Population::functions()
    /** >= 0: run FleetRunConfig::workflows[workflow] instead of fn. */
    std::int32_t workflow = -1;
};

/**
 * Generate the merged, time-ordered arrival stream for @p population
 * under @p spec. Deterministic: per-function sub-streams use
 * independent generators derived from spec.seed and the function index,
 * and ties in the merge break by function index.
 */
std::vector<FleetArrival> generateFleetStream(const Population &population,
                                              const TrafficSpec &spec);

} // namespace catalyzer::load

#endif // CATALYZER_LOAD_TRAFFIC_H
