/**
 * @file
 * Fleet replay driver: runs a merged arrival stream against a Cluster
 * on the virtual clock, with the autoscaler in the loop, and scores
 * the run (latency series, per-tenant windows, policy counters, cost).
 *
 * Replay semantics extend WorkloadDriver's to a fleet: the scheduler
 * routes each arrival first, then the *chosen machine's* clock idles
 * forward to the arrival time if it leads the request (back-to-back
 * service when it lags), and every machine advances through policy-tick
 * barriers so windowed series and autoscaling decisions line up across
 * the fleet.
 */

#ifndef CATALYZER_LOAD_DRIVER_H
#define CATALYZER_LOAD_DRIVER_H

#include <iosfwd>
#include <map>
#include <string>

#include "load/fleet_policy.h"
#include "load/traffic.h"
#include "sim/stats.h"
#include "workflow/workflow.h"

namespace catalyzer::load {

/** One fleet run's configuration. */
struct FleetRunConfig
{
    FleetPolicyConfig policy;
    /**
     * Expire the routed machine's idle instances on every arrival (the
     * WorkloadDriver convention) in addition to the policy tick, so
     * keep-alive economics do not depend on the tick cadence.
     */
    bool perArrivalExpiry = true;
    /**
     * Before the measured window, run one throwaway invocation of every
     * function on every machine and then drop all instances. First
     * contact with a function otherwise pays one-time initialization on
     * the request path — checkpointing the separated image, priming the
     * shared base — which a long-running fleet did days ago; unprimed,
     * that tax (~100 ms x functions x machines) swamps every scenario
     * with synthetic overload. Instances are expired afterwards so both
     * policy arms still start from zero warm capacity.
     */
    bool primeImages = true;
    /** Window length for the driver's per-tenant series. */
    sim::SimTime tenantWindow = sim::SimTime::milliseconds(250.0);
    /**
     * Worker threads draining per-machine event queues between policy
     * ticks; 0 reads the CATALYZER_SIM_THREADS environment knob
     * (default 1). Thread count never changes the report: routing and
     * accounting stay in stream order, and only share-nothing fleets
     * (Cluster::shareNothing) actually fan out — fleets coupled by
     * remote-sfork or P2P images replay sequentially regardless.
     */
    int simThreads = 0;
    /**
     * DAG workflows the tape's workflow arrivals cycle through (see
     * TrafficSpec::workflowRps); empty fleets never consult this.
     * Workflow stage functions must be deployed on the cluster by the
     * caller (they are not part of the Population). A tape with
     * workflow arrivals replays sequentially even on a share-nothing
     * fleet: stages hop machines and move state regions mid-request.
     */
    std::vector<workflow::WorkflowSpec> workflows;
    /** Placement hint for workflow stages (WorkflowOptions). */
    bool workflowLocalityAware = true;
};

/** Aggregated results of one fleet run. */
struct FleetReport
{
    std::size_t requests = 0;
    std::size_t boots = 0;
    std::size_t reuses = 0;
    std::size_t expired = 0; ///< keep-alive reclaims (arrival + tick)
    /**
     * Arrival-to-completion latency: queue wait (the routed machine's
     * clock leading the arrival — it was still serving earlier work)
     * plus service (gateway + boot + exec). This is the latency a
     * caller sees, and the series the SLO engine scores; a flash crowd
     * hurts mostly through the queueing term.
     */
    sim::LatencySeries endToEnd;
    /** The queueing component of endToEnd, separately. */
    sim::LatencySeries queueWait;
    sim::LatencySeries boot;
    /** Fleet-wide windowed latency (ms) on run-relative virtual time —
     *  what the SLO engine evaluates. Boot windows exclude reuse hits. */
    sim::WindowedHistogram e2eMsWindows;
    sim::WindowedHistogram bootMsWindows;
    /** Requests per serving tier ("sfork", "warm", "reused", ...). */
    std::map<std::string, std::size_t> tierCounts;
    /** Per-tenant windowed end-to-end latency (ms), fleet-merged. */
    std::map<std::string, sim::WindowedHistogram> tenantE2eMs;
    /** Per-tenant request counts. */
    std::map<std::string, std::size_t> tenantRequests;

    FleetPolicyCounters policy;

    //
    // Stateful-workflow side stream (zero / empty without workflow
    // arrivals; the JSON dump omits the block entirely then, keeping
    // function-only dumps byte-identical to the pre-workflow engine).
    //
    std::size_t workflowRuns = 0;
    std::size_t chainHopsLocal = 0;
    std::size_t chainHopsRemote = 0;
    std::size_t chainTransferBytes = 0;
    /** Workflow end-to-end (critical path) latency. */
    sim::LatencySeries chainE2e;

    //
    // Cost. Machine-seconds count each machine's virtual clock advance
    // over the run; busy-seconds are the part spent serving (boot +
    // exec + gateway). Resident memory is sampled at every policy tick.
    //
    double machineSeconds = 0.0;
    double busySeconds = 0.0;
    double avgResidentMiB = 0.0;
    double peakResidentMiB = 0.0;
    /** Time integral of resident memory (MiB * s): the rent paid. */
    double residentMiBSeconds = 0.0;

    /**
     * Full-fidelity JSON dump: every counter, every raw sample
     * (round-trip precision), every window, every tenant. Two runs of
     * the same tape must produce byte-identical dumps regardless of
     * simThreads — the determinism tests compare exactly this.
     */
    void writeJson(std::ostream &os) const;
};

/** Replays fleet streams against a Cluster. */
class FleetDriver
{
  public:
    FleetDriver(platform::Cluster &cluster, const Population &population)
        : cluster_(cluster), population_(population)
    {}

    /** Run @p traffic under @p config and report. */
    FleetReport run(const TrafficSpec &traffic,
                    const FleetRunConfig &config);

  private:
    platform::Cluster &cluster_;
    const Population &population_;
};

} // namespace catalyzer::load

#endif // CATALYZER_LOAD_DRIVER_H
