/**
 * @file
 * Policy-driven fleet autoscaling over a Cluster.
 *
 * Three cooperating mechanisms, evaluated on a fixed policy tick:
 *
 *  - **Keep-alive windows**: idle instances persist for a TTL and are
 *    reclaimed on the tick (and on the arrival path), trading resident
 *    memory for reuse hits — the economics *How Low Can You Go?*
 *    scores.
 *  - **Predictive pre-warm**: a per-function EWMA of the arrival rate
 *    triggers template builds *ahead* of a burst, on the machine that
 *    saw the traffic, with a prewarm credit so the reactive
 *    per-machine BootPolicyManager does not immediately drop a
 *    template the predictor just paid for. False positives (prewarms
 *    that never serve an sfork) are accounted explicitly.
 *  - **Template-budget + memory-pressure autoscaling**: each machine's
 *    template pool budget breathes between a floor and the configured
 *    ceiling depending on observed resident memory, and hot functions
 *    whose traffic concentrates in a rack with no template holder get
 *    a holder in that rack (placement then serves them with local
 *    sforks instead of cross-rack remote-sforks).
 */

#ifndef CATALYZER_LOAD_FLEET_POLICY_H
#define CATALYZER_LOAD_FLEET_POLICY_H

#include <memory>
#include <vector>

#include "load/population.h"
#include "platform/cluster.h"
#include "platform/policy.h"

namespace catalyzer::load {

/** Fleet policy knobs. */
struct FleetPolicyConfig
{
    /** Keep-alive TTL for idle instances; zero disables expiry. */
    sim::SimTime keepAliveTtl = sim::SimTime::seconds(2.0);
    /** Cadence of the policy evaluation (EWMA, rebalance, pressure). */
    sim::SimTime policyTick = sim::SimTime::milliseconds(500.0);
    /** Per-machine reactive template policy (budget, hot threshold). */
    platform::PolicyConfig perMachine;
    /**
     * Run the reactive per-machine rebalance each tick. Off, the fleet
     * is a *pure keep-alive* platform (no templates unless predictive
     * pre-warm builds them) — the baseline the fleet bench scores
     * pre-warm against.
     */
    bool reactiveRebalance = true;

    /** Enable the predictive pre-warm path. */
    bool predictivePrewarm = false;
    /** EWMA arrival rate (req/s) that triggers a pre-warm. */
    double prewarmRateRps = 5.0;
    /** EWMA smoothing factor (weight of the newest tick's rate). */
    double ewmaAlpha = 0.35;
    /** Observation credit granted to a prewarmed function so the
     *  reactive rebalance keeps the template through the burst onset. */
    double prewarmCredit = 8.0;

    /** Resident-memory budget per machine (instances + templates). */
    std::size_t machineResidentBudgetBytes = 1u << 30;
    /** Fraction of the budget that triggers pressure shedding. */
    double memoryHighWater = 0.9;

    /** Build a template in a rack carrying this share of a hot
     *  function's traffic when the rack holds none. */
    bool crossRackRebalance = true;
    double crossRackShare = 0.3;
    /** Hottest functions examined by the cross-rack pass per tick. */
    std::size_t hottestTracked = 16;
};

/** Everything the autoscaler did, for reports and assertions. */
struct FleetPolicyCounters
{
    std::size_t ticks = 0;
    std::size_t prewarmTriggers = 0;
    std::size_t prewarmBuilds = 0;
    std::size_t prewarmFalsePositives = 0;
    std::size_t prewarmServedSforks = 0;
    std::size_t rebalanceActions = 0;
    std::size_t keepAliveExpired = 0;
    std::size_t pressureEvictions = 0;
    std::size_t pressureBudgetShrinks = 0;
    /** Image-store RAM-tier bytes demoted to SSD under pressure. */
    std::size_t pressureImageDemotedBytes = 0;
    std::size_t crossRackBuilds = 0;
};

/**
 * Drives keep-alive, pre-warm and budget policy across a Cluster's
 * machines. The FleetDriver calls observeArrival/afterInvoke on the
 * request path and tick() whenever the virtual clock crosses a policy
 * tick boundary (with every machine advanced to that boundary).
 */
class FleetAutoscaler
{
  public:
    FleetAutoscaler(platform::Cluster &cluster,
                    const Population &population,
                    FleetPolicyConfig config);

    /** A request for function @p fn_index was routed to @p machine. */
    void observeArrival(std::size_t fn_index, std::size_t machine);

    /** The routed request completed with @p record. */
    void afterInvoke(std::size_t fn_index, std::size_t machine,
                     const platform::InvocationRecord &record);

    /** Policy evaluation at virtual time @p now. */
    void tick(sim::SimTime now);

    /** End-of-run accounting (outstanding pre-warm false positives). */
    void finalize();

    const FleetPolicyCounters &counters() const { return counters_; }
    const FleetPolicyConfig &config() const { return config_; }

    /** Current EWMA arrival rate of one function (req/s). */
    double ewmaRps(std::size_t fn_index) const;

    /** Resident bytes on one machine (instances + templates). */
    std::size_t residentBytes(std::size_t machine) const;

    /** Resident bytes across the fleet. */
    std::size_t fleetResidentBytes() const;

    /** The per-machine reactive policy manager. */
    platform::BootPolicyManager &manager(std::size_t machine)
    {
        return *managers_[machine];
    }

  private:
    struct FnState
    {
        double ewmaRps = 0.0;
        std::uint32_t sinceTick = 0;
        /** Arrivals since the last tick, per machine. */
        std::vector<std::uint32_t> perMachine;
        bool prewarmed = false;
        std::size_t sforksAfterPrewarm = 0;
    };

    bool templateAnywhere(const FleetFunction &fn) const;
    /** Build a template for @p fn on @p machine and credit it. */
    void buildTemplateOn(const FleetFunction &fn, std::size_t machine);
    void prewarmPass();
    void pressurePass();
    void crossRackPass();

    platform::Cluster &cluster_;
    const Population &population_;
    FleetPolicyConfig config_;
    std::vector<std::unique_ptr<platform::BootPolicyManager>> managers_;
    /** Current (pressure-adapted) template budget per machine. */
    std::vector<std::size_t> template_budget_;
    std::vector<FnState> fns_;
    FleetPolicyCounters counters_;
    sim::SimTime last_tick_;
};

} // namespace catalyzer::load

#endif // CATALYZER_LOAD_FLEET_POLICY_H
