#include "load/driver.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ostream>

#include "sim/event_queue.h"
#include "sim/executor.h"
#include "sim/json.h"
#include "sim/logging.h"

namespace catalyzer::load {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

/**
 * Fleet-replay trace ids are pinned, not allocated: request i of the
 * tape always traces under kFleetTraceIdBase + i, so the fleet trace
 * export is byte-identical no matter which worker thread served the
 * request first. The base keeps the pinned range disjoint from lazily
 * allocated ids (which count up from 1).
 */
constexpr trace::TraceId kFleetTraceIdBase = 1ull << 48;

/**
 * Priming invocations are pinned too (machine-major, function-minor),
 * or the process-global lazy allocator would hand a second run in the
 * same process different ids than the first and the exported traces of
 * otherwise identical runs would not compare equal.
 */
constexpr trace::TraceId kFleetPrimeTraceIdBase = 1ull << 47;

/** Round-trip double formatting for the determinism dump. */
void
writeExactNumber(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
writeSeries(std::ostream &os, const sim::LatencySeries &series)
{
    os << "[";
    bool first = true;
    for (double ms : series.raw()) {
        os << (first ? "" : ",");
        writeExactNumber(os, ms);
        first = false;
    }
    os << "]";
}

void
writeWindows(std::ostream &os, const sim::WindowedHistogram &hist)
{
    os << "{\"window_ns\": " << hist.windowLength().toNs()
       << ", \"windows\": [";
    bool first = true;
    for (const auto &w : hist.windows()) {
        os << (first ? "" : ",") << "{\"index\": " << w.index
           << ", \"samples\": ";
        writeSeries(os, w.series);
        os << "}";
        first = false;
    }
    os << "]}";
}

} // namespace

FleetReport
FleetDriver::run(const TrafficSpec &traffic, const FleetRunConfig &config)
{
    const std::vector<FleetArrival> stream =
        generateFleetStream(population_, traffic);

    FleetAutoscaler scaler(cluster_, population_, config.policy);
    FleetReport report;
    report.e2eMsWindows = sim::WindowedHistogram(config.tenantWindow);
    report.bootMsWindows = sim::WindowedHistogram(config.tenantWindow);

    // Deployment is control-plane work (image build, registry write);
    // production fleets do it long before traffic, so charge it before
    // the measured window opens: start[] is captured afterwards.
    population_.deployTo(cluster_);

    const std::size_t machines = cluster_.machineCount();

    // Workflow arrivals in the tape need their DAG specs; detect up
    // front so both the priming pass and the replay mode can react.
    bool has_workflows = false;
    for (const FleetArrival &arrival : stream) {
        if (arrival.workflow >= 0) {
            has_workflows = true;
            if (config.workflows.empty())
                sim::fatal("FleetDriver: workflow arrivals in the tape "
                           "but no workflow specs configured");
        }
    }
    // Workflow stage functions prime alongside the population's
    // (sorted + deduped, so the pinned prime-id sequence is a pure
    // function of the config — and unchanged when workflows are off).
    std::vector<std::string> wf_fns;
    if (has_workflows) {
        for (const workflow::WorkflowSpec &spec : config.workflows) {
            for (const workflow::StageSpec &stage : spec.stages)
                wf_fns.push_back(stage.function);
        }
        std::sort(wf_fns.begin(), wf_fns.end());
        wf_fns.erase(std::unique(wf_fns.begin(), wf_fns.end()),
                     wf_fns.end());
    }

    if (config.primeImages) {
        trace::TraceId prime_id = kFleetPrimeTraceIdBase;
        for (std::size_t m = 0; m < machines; ++m) {
            platform::ServerlessPlatform &plat = cluster_.platform(m);
            sandbox::Machine &mach = cluster_.machine(m);
            for (std::size_t i = 0; i < population_.size(); ++i)
                plat.invoke(population_.fn(i).name,
                            trace::TraceContext(mach.tracer(),
                                                mach.ctx().clock(), 0,
                                                prime_id++));
            for (const std::string &fn : wf_fns)
                plat.invoke(fn, trace::TraceContext(mach.tracer(),
                                                    mach.ctx().clock(), 0,
                                                    prime_id++));
            // Drop the priming instances: the run starts with built
            // images but zero warm capacity under either policy.
            plat.expireIdle(sim::SimTime::milliseconds(0.001));
        }
    }

    std::vector<sim::SimTime> start(machines);
    for (std::size_t m = 0; m < machines; ++m)
        start[m] = cluster_.machine(m).ctx().clock().now();
    // Windowed series start their measurement frame here, so win.*
    // windows line up run-relative across machines whose clocks
    // diverged during deploy/priming.
    cluster_.alignWindowOrigins();

    // Machines may enter the run with different clock readings (deploys
    // and template prep already charged); replay is relative, so machine
    // m's image of virtual time t is start[m] + t. Clocks only move
    // forward: a machine still serving a back-to-back burst simply lags
    // the stream and queues, exactly like WorkloadDriver.
    auto advanceMachineTo = [&](std::size_t m, double t) {
        sim::VirtualClock &clock = cluster_.machine(m).ctx().clock();
        const sim::SimTime target = start[m] + sim::SimTime::seconds(t);
        if (clock.now() < target)
            clock.advance(target - clock.now());
    };

    double resident_sum = 0.0;
    std::size_t resident_samples = 0;
    double last_sample_t = 0.0;

    // Policy tick barrier: every machine reaches the boundary before
    // the autoscaler looks at the fleet, so keep-alive ages, EWMA rates
    // and memory pressure are computed against one consistent instant.
    auto runTick = [&](double t_tick) {
        for (std::size_t m = 0; m < machines; ++m)
            advanceMachineTo(m, t_tick);
        scaler.tick(sim::SimTime::seconds(t_tick));
        const double mib =
            static_cast<double>(scaler.fleetResidentBytes()) / kMiB;
        report.residentMiBSeconds += mib * (t_tick - last_sample_t);
        last_sample_t = t_tick;
        resident_sum += mib;
        ++resident_samples;
        report.peakResidentMiB = std::max(report.peakResidentMiB, mib);
    };

    const double tick = config.policy.policyTick.toSec();
    if (tick <= 0.0)
        sim::fatal("FleetDriver: non-positive policy tick");
    double next_tick = tick;

    //
    // Discrete-event replay. The policy tick is the epoch barrier: the
    // autoscaler already requires every machine at the boundary before
    // it looks at the fleet, so arrivals between consecutive ticks form
    // an epoch that is (a) routed up front in stream order against
    // projected loads, (b) served by draining per-machine event queues
    // — concurrently on a share-nothing fleet — and (c) folded into the
    // report and the autoscaler in stream order. Routing and folding
    // never run on worker threads, and serving only touches the routed
    // machine, so the report is byte-identical for any thread count.
    //
    const int threads = config.simThreads > 0
                            ? config.simThreads
                            : sim::ParallelExecutor::threadsFromEnv(1);
    const sim::ParallelExecutor exec(threads);
    // A workflow stage may land on any machine and moves state regions
    // across the fabric mid-request, so a workflow tape is coupled no
    // matter what the fabric config says.
    const bool share_nothing = cluster_.shareNothing() && !has_workflows;

    workflow::WorkflowEngine engine(
        cluster_, workflow::WorkflowOptions{config.workflowLocalityAware});

    // Per-arrival outcome slots, indexed by stream position.
    struct Outcome
    {
        platform::InvocationRecord record;
        sim::SimTime queued;
        std::size_t machine = 0;
        std::size_t expired = 0;
        workflow::WorkflowResult wf;
        bool isWorkflow = false;
    };
    std::vector<Outcome> outcomes(stream.size());

    // One queue per machine; release times are *run-relative* (machine
    // m realizes virtual time t at start[m] + t), so queue horizons are
    // comparable across machines with different clock offsets.
    std::vector<sim::EventQueue> queues(machines);
    // A share-nothing fleet has no cross-machine interaction at all:
    // the conservative horizon clamps straight to the epoch barrier and
    // each epoch drains in one round. Coupled fleets (remote-sfork
    // lending, P2P image streams mutate lender state mid-boot) never
    // reach the queues — they replay inline in stream order below.
    sim::ConservativeScheduler scheduler(
        queues, sim::ConservativeScheduler::unboundedLookahead());

    // Serve tape position i on its routed machine. Runs on a worker
    // thread for share-nothing fleets: everything it touches is local
    // to the routed machine except the outcome slot, which is its own.
    auto serveOne = [&](std::size_t i) {
        const FleetArrival &arrival = stream[i];
        const FleetFunction &fn = population_.fn(arrival.fn);
        Outcome &out = outcomes[i];
        const std::size_t target = out.machine;
        platform::ServerlessPlatform &plat = cluster_.platform(target);
        // No-op after the upfront deploy; covers callers that drive a
        // partially-deployed cluster.
        population_.deployTo(plat, fn);
        advanceMachineTo(target, arrival.atSec);

        // If the machine's clock leads the arrival it was still busy
        // with earlier requests when this one landed: the lead is the
        // time the request waits in queue before service starts.
        const sim::SimTime arrive =
            start[target] + sim::SimTime::seconds(arrival.atSec);
        const sim::SimTime now_on_target =
            cluster_.machine(target).ctx().clock().now();
        out.queued = now_on_target > arrive ? now_on_target - arrive
                                            : sim::SimTime::zero();

        if (config.perArrivalExpiry &&
            config.policy.keepAliveTtl > sim::SimTime::zero())
            out.expired = plat.expireIdle(config.policy.keepAliveTtl);

        sandbox::Machine &m = cluster_.machine(target);
        const trace::TraceContext pinned(
            m.tracer(), m.ctx().clock(), 0,
            kFleetTraceIdBase + static_cast<trace::TraceId>(i));
        out.record =
            cluster_.invokeOn(target, fn.name, pinned).record;
    };

    // Serve a workflow arrival: the DAG may start on any machine, so
    // every clock aligns with the arrival first and the engine's
    // run-relative frame opens exactly there. Trace id pinned like any
    // other tape position.
    auto serveWorkflow = [&](std::size_t i) {
        const FleetArrival &arrival = stream[i];
        Outcome &out = outcomes[i];
        out.isWorkflow = true;
        for (std::size_t m = 0; m < machines; ++m)
            advanceMachineTo(m, arrival.atSec);
        const workflow::WorkflowSpec &spec = config.workflows
            [static_cast<std::size_t>(arrival.workflow) %
             config.workflows.size()];
        sandbox::Machine &m0 = cluster_.machine(0);
        out.wf = engine.run(
            spec,
            trace::TraceContext(
                m0.tracer(), m0.ctx().clock(), 0,
                kFleetTraceIdBase + static_cast<trace::TraceId>(i)));
    };

    // Stream-order fold of one served epoch: autoscaler bookkeeping
    // (commutative counters, consumed only at the next tick) and the
    // report accumulation.
    auto foldOne = [&](std::size_t i) {
        const FleetArrival &arrival = stream[i];
        const Outcome &out = outcomes[i];
        if (out.isWorkflow) {
            // Workflows score on their own series: stage invocations
            // are not caller-visible requests, and the autoscaler's
            // per-function rate model has no row for a DAG.
            ++report.workflowRuns;
            report.chainHopsLocal += out.wf.hopsLocal;
            report.chainHopsRemote += out.wf.hopsRemote;
            report.chainTransferBytes += out.wf.transferBytes;
            report.chainE2e.add(out.wf.e2e);
            return;
        }
        const FleetFunction &fn = population_.fn(arrival.fn);
        scaler.observeArrival(arrival.fn, out.machine);
        scaler.afterInvoke(arrival.fn, out.machine, out.record);
        report.expired += out.expired;

        const sim::SimTime at = sim::SimTime::seconds(arrival.atSec);
        ++report.requests;
        if (out.record.reusedInstance) {
            ++report.reuses;
        } else {
            ++report.boots;
            report.boot.add(out.record.bootLatency);
            report.bootMsWindows.record(at,
                                        out.record.bootLatency.toMs());
        }
        ++report.tierCounts[out.record.tierServed];
        const sim::SimTime sojourn = out.queued + out.record.endToEnd();
        report.endToEnd.add(sojourn);
        report.queueWait.add(out.queued);
        report.e2eMsWindows.record(at, sojourn.toMs());
        report.busySeconds += out.record.endToEnd().toSec();

        const std::string tenant = Population::tenantName(fn.tenant);
        auto [it, fresh] = report.tenantE2eMs.try_emplace(
            tenant, sim::WindowedHistogram(config.tenantWindow));
        (void)fresh;
        it->second.record(at, sojourn.toMs());
        ++report.tenantRequests[tenant];
    };

    std::size_t pos = 0;
    while (pos < stream.size()) {
        // Ticks that precede the next arrival.
        while (next_tick <= stream[pos].atSec) {
            runTick(next_tick);
            next_tick += tick;
        }
        // The epoch: arrivals strictly before the pending tick.
        std::size_t end_pos = pos;
        while (end_pos < stream.size() &&
               stream[end_pos].atSec < next_tick)
            ++end_pos;

        if (share_nothing) {
            // Route the whole epoch in stream order against projected
            // loads (epoch-start snapshot plus one instance per routed
            // request): placement cannot depend on worker-thread
            // timing. Within an epoch a share-nothing fleet's template
            // holders are fixed (only the autoscaler publishes them,
            // at the tick), so only the load projection approximates.
            std::vector<std::size_t> loads = cluster_.instanceLoads();
            for (std::size_t i = pos; i < end_pos; ++i) {
                const FleetFunction &fn = population_.fn(stream[i].fn);
                const std::size_t target =
                    cluster_.routeProjected(fn.name, loads);
                ++loads[target];
                outcomes[i].machine = target;
                queues[target].post(
                    sim::SimTime::seconds(stream[i].atSec),
                    [&serveOne, i] { serveOne(i); });
            }
            const sim::SimTime barrier = sim::SimTime::seconds(next_tick);
            scheduler.runRounds(barrier, [&](sim::SimTime horizon) {
                std::atomic<std::size_t> ran{0};
                exec.forEach(machines, [&](std::size_t m) {
                    // Handlers advance their machine's clock
                    // themselves (release times are run-relative).
                    ran.fetch_add(queues[m].runUntil(horizon, nullptr),
                                  std::memory_order_relaxed);
                });
                return ran.load(std::memory_order_relaxed);
            });
        } else {
            // Coupled fleets replay inline in stream order (always
            // sequential, so thread count cannot matter) and route
            // against live state per arrival: remote-sfork serving
            // updates template holders mid-epoch, and NetworkAware
            // placement must see them.
            for (std::size_t i = pos; i < end_pos; ++i) {
                if (stream[i].workflow >= 0) {
                    serveWorkflow(i);
                    continue;
                }
                const FleetFunction &fn = population_.fn(stream[i].fn);
                outcomes[i].machine = cluster_.route(fn.name);
                serveOne(i);
            }
        }

        for (std::size_t i = pos; i < end_pos; ++i)
            foldOne(i);
        pos = end_pos;
    }

    // Drain the remaining policy ticks, then close the run at the
    // nominal duration so cost integrals cover the full interval.
    while (next_tick < traffic.durationSec - 1e-9) {
        runTick(next_tick);
        next_tick += tick;
    }
    runTick(traffic.durationSec);
    scaler.finalize();

    report.policy = scaler.counters();
    report.expired += report.policy.keepAliveExpired;
    report.avgResidentMiB =
        resident_samples > 0
            ? resident_sum / static_cast<double>(resident_samples)
            : 0.0;
    for (std::size_t m = 0; m < machines; ++m)
        report.machineSeconds +=
            (cluster_.machine(m).ctx().clock().now() - start[m]).toSec();
    return report;
}

void
FleetReport::writeJson(std::ostream &os) const
{
    os << "{\"requests\": " << requests << ", \"boots\": " << boots
       << ", \"reuses\": " << reuses << ", \"expired\": " << expired;
    os << ",\n\"end_to_end_ms\": ";
    writeSeries(os, endToEnd);
    os << ",\n\"queue_wait_ms\": ";
    writeSeries(os, queueWait);
    os << ",\n\"boot_ms\": ";
    writeSeries(os, boot);
    os << ",\n\"e2e_windows\": ";
    writeWindows(os, e2eMsWindows);
    os << ",\n\"boot_windows\": ";
    writeWindows(os, bootMsWindows);
    os << ",\n\"tiers\": {";
    bool first = true;
    for (const auto &[tier, count] : tierCounts) {
        os << (first ? "" : ", ") << "\"" << sim::jsonEscape(tier)
           << "\": " << count;
        first = false;
    }
    os << "},\n\"tenant_e2e\": {";
    first = true;
    for (const auto &[tenant, hist] : tenantE2eMs) {
        os << (first ? "" : ", ") << "\"" << sim::jsonEscape(tenant)
           << "\": ";
        writeWindows(os, hist);
        first = false;
    }
    os << "},\n\"tenant_requests\": {";
    first = true;
    for (const auto &[tenant, count] : tenantRequests) {
        os << (first ? "" : ", ") << "\"" << sim::jsonEscape(tenant)
           << "\": " << count;
        first = false;
    }
    os << "},\n\"policy\": {\"ticks\": " << policy.ticks
       << ", \"prewarm_triggers\": " << policy.prewarmTriggers
       << ", \"prewarm_builds\": " << policy.prewarmBuilds
       << ", \"prewarm_false_positives\": "
       << policy.prewarmFalsePositives
       << ", \"prewarm_served_sforks\": " << policy.prewarmServedSforks
       << ", \"rebalance_actions\": " << policy.rebalanceActions
       << ", \"keep_alive_expired\": " << policy.keepAliveExpired
       << ", \"pressure_evictions\": " << policy.pressureEvictions
       << ", \"pressure_budget_shrinks\": "
       << policy.pressureBudgetShrinks
       << ", \"cross_rack_builds\": " << policy.crossRackBuilds << "}";
    if (workflowRuns > 0) {
        os << ",\n\"workflows\": {\"runs\": " << workflowRuns
           << ", \"hops_local\": " << chainHopsLocal
           << ", \"hops_remote\": " << chainHopsRemote
           << ", \"transfer_bytes\": " << chainTransferBytes
           << ", \"chain_e2e_ms\": ";
        writeSeries(os, chainE2e);
        os << "}";
    }
    const struct
    {
        const char *key;
        double value;
    } costs[] = {
        {"machine_seconds", machineSeconds},
        {"busy_seconds", busySeconds},
        {"avg_resident_mib", avgResidentMiB},
        {"peak_resident_mib", peakResidentMiB},
        {"resident_mib_seconds", residentMiBSeconds},
    };
    for (const auto &c : costs) {
        os << ",\n\"" << c.key << "\": ";
        writeExactNumber(os, c.value);
    }
    os << "}\n";
}

} // namespace catalyzer::load
