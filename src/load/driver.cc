#include "load/driver.h"

#include <algorithm>

#include "sim/logging.h"

namespace catalyzer::load {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

} // namespace

FleetReport
FleetDriver::run(const TrafficSpec &traffic, const FleetRunConfig &config)
{
    const std::vector<FleetArrival> stream =
        generateFleetStream(population_, traffic);

    FleetAutoscaler scaler(cluster_, population_, config.policy);
    FleetReport report;
    report.e2eMsWindows = sim::WindowedHistogram(config.tenantWindow);
    report.bootMsWindows = sim::WindowedHistogram(config.tenantWindow);

    // Deployment is control-plane work (image build, registry write);
    // production fleets do it long before traffic, so charge it before
    // the measured window opens: start[] is captured afterwards.
    population_.deployTo(cluster_);

    const std::size_t machines = cluster_.machineCount();

    if (config.primeImages) {
        for (std::size_t m = 0; m < machines; ++m) {
            platform::ServerlessPlatform &plat = cluster_.platform(m);
            for (std::size_t i = 0; i < population_.size(); ++i)
                plat.invoke(population_.fn(i).name);
            // Drop the priming instances: the run starts with built
            // images but zero warm capacity under either policy.
            plat.expireIdle(sim::SimTime::milliseconds(0.001));
        }
    }

    std::vector<sim::SimTime> start(machines);
    for (std::size_t m = 0; m < machines; ++m)
        start[m] = cluster_.machine(m).ctx().clock().now();

    // Machines may enter the run with different clock readings (deploys
    // and template prep already charged); replay is relative, so machine
    // m's image of virtual time t is start[m] + t. Clocks only move
    // forward: a machine still serving a back-to-back burst simply lags
    // the stream and queues, exactly like WorkloadDriver.
    auto advanceMachineTo = [&](std::size_t m, double t) {
        sim::VirtualClock &clock = cluster_.machine(m).ctx().clock();
        const sim::SimTime target = start[m] + sim::SimTime::seconds(t);
        if (clock.now() < target)
            clock.advance(target - clock.now());
    };

    double resident_sum = 0.0;
    std::size_t resident_samples = 0;
    double last_sample_t = 0.0;

    // Policy tick barrier: every machine reaches the boundary before
    // the autoscaler looks at the fleet, so keep-alive ages, EWMA rates
    // and memory pressure are computed against one consistent instant.
    auto runTick = [&](double t_tick) {
        for (std::size_t m = 0; m < machines; ++m)
            advanceMachineTo(m, t_tick);
        scaler.tick(sim::SimTime::seconds(t_tick));
        const double mib =
            static_cast<double>(scaler.fleetResidentBytes()) / kMiB;
        report.residentMiBSeconds += mib * (t_tick - last_sample_t);
        last_sample_t = t_tick;
        resident_sum += mib;
        ++resident_samples;
        report.peakResidentMiB = std::max(report.peakResidentMiB, mib);
    };

    const double tick = config.policy.policyTick.toSec();
    if (tick <= 0.0)
        sim::fatal("FleetDriver: non-positive policy tick");
    double next_tick = tick;

    for (const FleetArrival &arrival : stream) {
        while (next_tick <= arrival.atSec) {
            runTick(next_tick);
            next_tick += tick;
        }

        const FleetFunction &fn = population_.fn(arrival.fn);
        const std::size_t target = cluster_.route(fn.name);
        platform::ServerlessPlatform &plat = cluster_.platform(target);
        // No-op after the upfront deploy; covers callers that drive a
        // partially-deployed cluster.
        population_.deployTo(plat, fn);
        advanceMachineTo(target, arrival.atSec);

        // If the machine's clock leads the arrival it was still busy
        // with earlier requests when this one landed: the lead is the
        // time the request waits in queue before service starts.
        const sim::SimTime arrive =
            start[target] + sim::SimTime::seconds(arrival.atSec);
        const sim::SimTime now_on_target =
            cluster_.machine(target).ctx().clock().now();
        const sim::SimTime queued = now_on_target > arrive
                                        ? now_on_target - arrive
                                        : sim::SimTime::zero();

        if (config.perArrivalExpiry &&
            config.policy.keepAliveTtl > sim::SimTime::zero())
            report.expired += plat.expireIdle(config.policy.keepAliveTtl);

        scaler.observeArrival(arrival.fn, target);
        const platform::ClusterInvocation done =
            cluster_.invokeOn(target, fn.name);
        scaler.afterInvoke(arrival.fn, target, done.record);

        const sim::SimTime at = sim::SimTime::seconds(arrival.atSec);
        ++report.requests;
        if (done.record.reusedInstance) {
            ++report.reuses;
        } else {
            ++report.boots;
            report.boot.add(done.record.bootLatency);
            report.bootMsWindows.record(at,
                                        done.record.bootLatency.toMs());
        }
        ++report.tierCounts[done.record.tierServed];
        const sim::SimTime sojourn = queued + done.record.endToEnd();
        report.endToEnd.add(sojourn);
        report.queueWait.add(queued);
        report.e2eMsWindows.record(at, sojourn.toMs());
        report.busySeconds += done.record.endToEnd().toSec();

        const std::string tenant = Population::tenantName(fn.tenant);
        auto [it, fresh] = report.tenantE2eMs.try_emplace(
            tenant, sim::WindowedHistogram(config.tenantWindow));
        (void)fresh;
        it->second.record(at, sojourn.toMs());
        ++report.tenantRequests[tenant];
    }

    // Drain the remaining policy ticks, then close the run at the
    // nominal duration so cost integrals cover the full interval.
    while (next_tick < traffic.durationSec - 1e-9) {
        runTick(next_tick);
        next_tick += tick;
    }
    runTick(traffic.durationSec);
    scaler.finalize();

    report.policy = scaler.counters();
    report.expired += report.policy.keepAliveExpired;
    report.avgResidentMiB =
        resident_samples > 0
            ? resident_sum / static_cast<double>(resident_samples)
            : 0.0;
    for (std::size_t m = 0; m < machines; ++m)
        report.machineSeconds +=
            (cluster_.machine(m).ctx().clock().now() - start[m]).toSec();
    return report;
}

} // namespace catalyzer::load
