#include "guest/go_runtime.h"

#include "sim/logging.h"

namespace catalyzer::guest {

GoRuntimeModel::GoRuntimeModel(sim::SimContext &ctx) : ctx_(ctx) {}

void
GoRuntimeModel::start(int runtime_threads, int scheduling_threads)
{
    if (started_)
        sim::panic("GoRuntimeModel::start: already started");
    if (runtime_threads < 0 || scheduling_threads < 1)
        sim::panic("GoRuntimeModel::start: bad census (%d, %d)",
                   runtime_threads, scheduling_threads);
    started_ = true;
    census_.runtime = runtime_threads;
    census_.scheduling = scheduling_threads;
    census_.blocking = 0;
    const auto &costs = ctx_.costs();
    ctx_.chargeCounted("guest.go_runtime_starts", costs.goRuntimeStart);
    ctx_.charge(costs.threadCreate *
                static_cast<std::int64_t>(census_.total()));
}

void
GoRuntimeModel::addBlockingThread()
{
    if (transient_)
        sim::panic("GoRuntimeModel: blocking syscall while transient");
    ++census_.blocking;
    ctx_.chargeCounted("guest.blocking_threads", ctx_.costs().threadCreate);
}

void
GoRuntimeModel::removeBlockingThread()
{
    if (census_.blocking <= 0)
        sim::panic("GoRuntimeModel: no blocking thread to remove");
    --census_.blocking;
}

void
GoRuntimeModel::enterTransientSingleThread()
{
    if (!started_)
        sim::panic("GoRuntimeModel: transient before start");
    if (transient_)
        sim::panic("GoRuntimeModel: already transient");
    const auto &costs = ctx_.costs();
    saved_ = census_;

    // Runtime threads save their contexts and terminate; scheduling
    // threads merge into m0; these merges are sequentialized by the
    // runtime's STW-style handshake.
    const int merging = (census_.runtime) +
                        (census_.scheduling - 1); // m0 stays
    ctx_.charge(costs.threadMerge * static_cast<std::int64_t>(merging));

    // Blocking threads poll an added time-out and exit at the next
    // expiry; they drain concurrently, so one time-out period covers all.
    if (census_.blocking > 0) {
        ctx_.charge(costs.blockingThreadTimeout);
        ctx_.charge(costs.threadMerge *
                    static_cast<std::int64_t>(census_.blocking));
    }
    ctx_.stats().incr("guest.transient_entries");

    census_ = ThreadCensus{0, 1, 0}; // only m0
    transient_ = true;
}

void
GoRuntimeModel::expandFromTransient()
{
    if (!transient_)
        sim::panic("GoRuntimeModel: expand without transient state");
    const auto &costs = ctx_.costs();
    const int recreate = saved_.total() - 1; // m0 already exists
    ctx_.charge(costs.threadExpand * static_cast<std::int64_t>(recreate));
    ctx_.stats().incr("guest.transient_expands");
    census_ = saved_;
    transient_ = false;
}

void
GoRuntimeModel::adoptTransientState(const GoRuntimeModel &tmpl)
{
    if (!tmpl.transient_)
        sim::panic("GoRuntimeModel::adoptTransientState: template not "
                   "transient");
    started_ = true;
    transient_ = true;
    saved_ = tmpl.saved_;
    census_ = ThreadCensus{0, 1, 0};
}

int
GoRuntimeModel::totalThreads() const
{
    return started_ ? census_.total() : 0;
}

} // namespace catalyzer::guest
