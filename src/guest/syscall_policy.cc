#include "guest/syscall_policy.h"

#include <unordered_map>

namespace catalyzer::guest {

const char *
syscallCategoryName(SyscallCategory c)
{
    switch (c) {
      case SyscallCategory::Proc: return "Proc";
      case SyscallCategory::Vfs: return "VFS (FS/Net)";
      case SyscallCategory::File: return "File (Storage)";
      case SyscallCategory::Network: return "Network";
      case SyscallCategory::Mem: return "Mem";
      case SyscallCategory::Misc: return "Misc";
    }
    return "?";
}

const char *
sforkHandlerName(SforkHandler h)
{
    switch (h) {
      case SforkHandler::None: return "-";
      case SforkHandler::TransientSingleThread:
        return "Transient single-thread";
      case SforkHandler::Namespace: return "Namespace";
      case SforkHandler::ReadOnlyFd: return "Read-only FD";
      case SforkHandler::StatelessOverlayFs: return "Stateless overlayFS";
      case SforkHandler::Reconnect: return "Reconnect";
      case SforkHandler::SforkMemory: return "Handled by sfork";
    }
    return "?";
}

const std::vector<SyscallRule> &
syscallTable()
{
    using C = SyscallCategory;
    using K = SyscallClass;
    using H = SforkHandler;
    static const std::vector<SyscallRule> table = {
        // Proc: transient single-thread + namespaces.
        {"capget", C::Proc, K::Allowed, H::None},
        {"clone", C::Proc, K::Handled, H::TransientSingleThread},
        {"getpid", C::Proc, K::Handled, H::Namespace},
        {"gettid", C::Proc, K::Handled, H::Namespace},
        {"arch_prctl", C::Proc, K::Allowed, H::None},
        {"prctl", C::Proc, K::Allowed, H::None},
        {"rt_sigaction", C::Proc, K::Allowed, H::None},
        {"rt_sigprocmask", C::Proc, K::Allowed, H::None},
        {"rt_sigreturn", C::Proc, K::Allowed, H::None},
        {"seccomp", C::Proc, K::Allowed, H::None},
        {"sigaltstack", C::Proc, K::Allowed, H::None},
        {"sched_getaffinity", C::Proc, K::Allowed, H::None},
        // VFS (FS/Net): read-only FD discipline.
        {"poll", C::Vfs, K::Allowed, H::None},
        {"ioctl", C::Vfs, K::Allowed, H::None},
        {"memfd_create", C::Vfs, K::Allowed, H::None},
        {"ftruncate", C::Vfs, K::Allowed, H::None},
        {"mount", C::Vfs, K::Handled, H::ReadOnlyFd},
        {"pivot_root", C::Vfs, K::Handled, H::ReadOnlyFd},
        {"umount", C::Vfs, K::Handled, H::ReadOnlyFd},
        {"epoll_create1", C::Vfs, K::Allowed, H::None},
        {"epoll_ctl", C::Vfs, K::Allowed, H::None},
        {"epoll_pwait", C::Vfs, K::Allowed, H::None},
        {"eventfd2", C::Vfs, K::Allowed, H::None},
        {"fcntl", C::Vfs, K::Allowed, H::None},
        {"chdir", C::Vfs, K::Allowed, H::None},
        {"close", C::Vfs, K::Handled, H::ReadOnlyFd},
        {"dup", C::Vfs, K::Handled, H::ReadOnlyFd},
        {"dup2", C::Vfs, K::Handled, H::ReadOnlyFd},
        {"lseek", C::Vfs, K::Allowed, H::None},
        {"openat", C::Vfs, K::Handled, H::ReadOnlyFd},
        // File (Storage): stateless overlayFS.
        {"newfstat", C::File, K::Handled, H::StatelessOverlayFs},
        {"newfstatat", C::File, K::Handled, H::StatelessOverlayFs},
        {"mkdirat", C::File, K::Handled, H::StatelessOverlayFs},
        {"write", C::File, K::Handled, H::StatelessOverlayFs},
        {"read", C::File, K::Handled, H::StatelessOverlayFs},
        {"readlinkat", C::File, K::Handled, H::StatelessOverlayFs},
        {"pread64", C::File, K::Handled, H::StatelessOverlayFs},
        // Network: reconnect.
        {"sendmsg", C::Network, K::Handled, H::Reconnect},
        {"shutdown", C::Network, K::Handled, H::Reconnect},
        {"recvmsg", C::Network, K::Handled, H::Reconnect},
        {"getsockopt", C::Network, K::Handled, H::Reconnect},
        {"listen", C::Network, K::Handled, H::Reconnect},
        {"accept", C::Network, K::Handled, H::Reconnect},
        // Mem: handled by sfork itself.
        {"mmap", C::Mem, K::Handled, H::SforkMemory},
        {"munmap", C::Mem, K::Handled, H::SforkMemory},
        // Misc: namespaces keep ids consistent; the rest run as-is.
        {"setgid", C::Misc, K::Handled, H::Namespace},
        {"setuid", C::Misc, K::Handled, H::Namespace},
        {"getgid", C::Misc, K::Handled, H::Namespace},
        {"getegid", C::Misc, K::Handled, H::Namespace},
        {"getuid", C::Misc, K::Handled, H::Namespace},
        {"geteuid", C::Misc, K::Handled, H::Namespace},
        {"getrandom", C::Misc, K::Allowed, H::None},
        {"nanosleep", C::Misc, K::Allowed, H::None},
        {"futex", C::Misc, K::Allowed, H::None},
        {"getgroups", C::Misc, K::Allowed, H::None},
        {"clock_gettime", C::Misc, K::Allowed, H::None},
        {"getrlimit", C::Misc, K::Allowed, H::None},
        {"setsid", C::Misc, K::Handled, H::Namespace},
    };
    return table;
}

namespace {

const std::unordered_map<std::string, const SyscallRule *> &
ruleIndex()
{
    static const auto *index = [] {
        auto *m = new std::unordered_map<std::string, const SyscallRule *>;
        for (const auto &rule : syscallTable())
            m->emplace(rule.name, &rule);
        return m;
    }();
    return *index;
}

} // namespace

SyscallClass
classifySyscall(const std::string &name)
{
    const auto &index = ruleIndex();
    auto it = index.find(name);
    return it == index.end() ? SyscallClass::Denied : it->second->cls;
}

const SyscallRule *
findSyscallRule(const std::string &name)
{
    const auto &index = ruleIndex();
    auto it = index.find(name);
    return it == index.end() ? nullptr : it->second;
}

std::vector<std::string>
syscallsWithClass(SyscallClass cls)
{
    std::vector<std::string> out;
    for (const auto &rule : syscallTable()) {
        if (rule.cls == cls)
            out.push_back(rule.name);
    }
    return out;
}

std::size_t
countSyscallsWithClass(SyscallClass cls)
{
    std::size_t n = 0;
    for (const auto &rule : syscallTable()) {
        if (rule.cls == cls)
            ++n;
    }
    return n;
}

} // namespace catalyzer::guest
