/**
 * @file
 * Go-runtime thread model with transient single-thread support
 * (paper Sec. 4.1).
 *
 * gVisor's Sentry is a Go program: runtime threads (GC, preemption),
 * scheduling threads (Ms running goroutines) and blocking threads
 * (goroutines parked in blocking host syscalls). Linux can only fork a
 * single-threaded process, so Catalyzer modifies the runtime to merge all
 * threads into one (saving their contexts in memory), sforks, and then
 * re-expands in the child.
 */

#ifndef CATALYZER_GUEST_GO_RUNTIME_H
#define CATALYZER_GUEST_GO_RUNTIME_H

#include "sim/context.h"

namespace catalyzer::guest {

/** Thread census of the Go runtime. */
struct ThreadCensus
{
    int runtime = 0;    ///< GC / background threads
    int scheduling = 0; ///< M threads (m0 included)
    int blocking = 0;   ///< threads parked in blocking syscalls

    int total() const { return runtime + scheduling + blocking; }
};

/**
 * The modified Go runtime. All transitions charge their modelled cost;
 * the invariant "exactly one OS thread while transient" is what
 * HostKernel::sfork checks.
 */
class GoRuntimeModel
{
  public:
    explicit GoRuntimeModel(sim::SimContext &ctx);

    /** Boot the runtime with its initial thread census. */
    void start(int runtime_threads, int scheduling_threads);

    /** A goroutine entered a blocking syscall: one more OS thread. */
    void addBlockingThread();

    /** A blocking call returned. */
    void removeBlockingThread();

    /**
     * Enter the transient single-thread state: notify runtime threads to
     * save their contexts and exit, collapse scheduling threads to m0,
     * and wait for blocking threads to hit their added time-out. Only
     * m0 survives. Used during template-sandbox generation (offline).
     */
    void enterTransientSingleThread();

    /**
     * Re-expand to the saved census after sfork (in the child) or after
     * template generation is rolled back (in the parent).
     */
    void expandFromTransient();

    /**
     * Child-side sfork bookkeeping: adopt the template's transient state
     * (saved thread contexts live in the COWed memory) so the child can
     * expandFromTransient() on its own.
     */
    void adoptTransientState(const GoRuntimeModel &tmpl);

    bool transient() const { return transient_; }
    int totalThreads() const;
    const ThreadCensus &census() const { return census_; }
    const ThreadCensus &savedCensus() const { return saved_; }
    bool started() const { return started_; }

  private:
    sim::SimContext &ctx_;
    ThreadCensus census_;
    ThreadCensus saved_;
    bool started_ = false;
    bool transient_ = false;
};

} // namespace catalyzer::guest

#endif // CATALYZER_GUEST_GO_RUNTIME_H
