/**
 * @file
 * The guest kernel (gVisor's Sentry, modelled).
 *
 * Holds the in-guest system state that checkpoint must capture and
 * restore must rebuild: the metadata object graph, the I/O connection
 * table, the mount table, and the Go runtime's thread census.
 */

#ifndef CATALYZER_GUEST_GUEST_KERNEL_H
#define CATALYZER_GUEST_GUEST_KERNEL_H

#include <string>

#include "guest/go_runtime.h"
#include "guest/syscall_policy.h"
#include "objgraph/object_graph.h"
#include "sim/context.h"
#include "vfs/fd_table.h"
#include "vfs/io_connection.h"

namespace catalyzer::guest {

/**
 * One sandbox's guest kernel instance.
 *
 * Construction is cheap; initializeFresh() pays the Sentry's internal
 * init cost (the non-KVM part of "create and initialize kernel/platform"
 * in the paper's Fig. 2) and startGoRuntime() boots the thread model.
 */
class GuestKernel
{
  public:
    GuestKernel(sim::SimContext &ctx, std::string name);

    /** Sentry-internal structure initialization (fresh boot only). */
    void initializeFresh();

    /** Boot the Go runtime with the standard census (GC + scheds). */
    void startGoRuntime(int runtime_threads = 3, int scheduling_threads = 2);

    /** Mount @p count filesystems into the guest namespace. */
    void mountRootfs(int count);

    /**
     * Dispatch a guest syscall by name under the sfork policy.
     * Denied syscalls return false (the sandbox rejects them); allowed
     * and handled syscalls charge the base cost and succeed.
     */
    bool syscall(const std::string &name);

    /**
     * The Gen-Func-Image syscall: the wrapper program traps here at the
     * func-entry point and blocks until checkpoint (Sec. 5).
     */
    void reachFuncEntryPoint();
    bool atFuncEntryPoint() const { return at_entry_point_; }
    void leaveFuncEntryPoint() { at_entry_point_ = false; }

    /** Kernel metadata object graph (captured/restored by snapshot/). */
    const objgraph::ObjectGraph &state() const { return state_; }
    void setState(objgraph::ObjectGraph state) { state_ = std::move(state); }

    vfs::IoConnectionTable &io() { return io_; }
    const vfs::IoConnectionTable &io() const { return io_; }

    vfs::FdTable &fds() { return fds_; }
    const vfs::FdTable &fds() const { return fds_; }

    /**
     * Rebuild the guest fd table from the connection table: one
     * descriptor per connection, with its `connected` flag mirroring
     * the connection's establishment state. Restore paths use this so
     * the application sees valid fd numbers immediately while the
     * backing connections come up on demand (Sec. 3.3: "a file
     * descriptor will be passed to functions but tagged as not
     * re-opened yet in the guest kernel").
     */
    void syncFdTable();

    /** Descriptors whose backing connection is still down. */
    std::size_t pendingFds() const;

    GoRuntimeModel &threads() { return threads_; }
    const GoRuntimeModel &threads() const { return threads_; }

    int mounts() const { return mounts_; }
    bool initialized() const { return initialized_; }
    const std::string &name() const { return name_; }

    sim::SimContext &context() { return ctx_; }

  private:
    sim::SimContext &ctx_;
    std::string name_;
    objgraph::ObjectGraph state_;
    vfs::IoConnectionTable io_;
    vfs::FdTable fds_;
    GoRuntimeModel threads_;
    int mounts_ = 0;
    bool initialized_ = false;
    bool at_entry_point_ = false;
};

} // namespace catalyzer::guest

#endif // CATALYZER_GUEST_GUEST_KERNEL_H
