/**
 * @file
 * Syscall classification used for sfork (paper Table 1).
 *
 * Syscalls fall into three groups: *allowed* run as normal syscalls;
 * *handled* require user-space logic to fix related system state after
 * sfork (e.g. clone's thread contexts via transient single-thread,
 * openat's descriptors via the read-only-FD discipline); everything not
 * listed is *denied* — removed from the sandbox because it could leave
 * non-deterministic system state behind the template.
 */

#ifndef CATALYZER_GUEST_SYSCALL_POLICY_H
#define CATALYZER_GUEST_SYSCALL_POLICY_H

#include <string>
#include <vector>

namespace catalyzer::guest {

/** Disposition of one syscall under sfork. */
enum class SyscallClass { Allowed, Handled, Denied };

/** Table 1's category rows. */
enum class SyscallCategory { Proc, Vfs, File, Network, Mem, Misc };

/** The user-space handler responsible for a handled syscall. */
enum class SforkHandler
{
    None,
    TransientSingleThread,
    Namespace,
    ReadOnlyFd,
    StatelessOverlayFs,
    Reconnect,
    SforkMemory,
};

/** One table entry. */
struct SyscallRule
{
    const char *name;
    SyscallCategory category;
    SyscallClass cls;
    SforkHandler handler;
};

const char *syscallCategoryName(SyscallCategory c);
const char *sforkHandlerName(SforkHandler h);

/**
 * The full classification table (Table 1). Entries are ordered by
 * category as in the paper.
 */
const std::vector<SyscallRule> &syscallTable();

/** Classify a syscall by name; unknown names are Denied. */
SyscallClass classifySyscall(const std::string &name);

/** Rule lookup; nullptr for unlisted (denied) syscalls. */
const SyscallRule *findSyscallRule(const std::string &name);

/** All syscall names with the given class (test/bench support). */
std::vector<std::string> syscallsWithClass(SyscallClass cls);

/** Number of syscalls with the given class (no name materialization). */
std::size_t countSyscallsWithClass(SyscallClass cls);

} // namespace catalyzer::guest

#endif // CATALYZER_GUEST_SYSCALL_POLICY_H
