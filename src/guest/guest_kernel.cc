#include "guest/guest_kernel.h"

#include "sim/logging.h"

namespace catalyzer::guest {

GuestKernel::GuestKernel(sim::SimContext &ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)), threads_(ctx)
{
}

void
GuestKernel::initializeFresh()
{
    if (initialized_)
        sim::panic("GuestKernel %s: double init", name_.c_str());
    initialized_ = true;
    ctx_.chargeCounted("guest.sentry_inits", ctx_.costs().sentryInitFixed);
}

void
GuestKernel::startGoRuntime(int runtime_threads, int scheduling_threads)
{
    threads_.start(runtime_threads, scheduling_threads);
}

void
GuestKernel::mountRootfs(int count)
{
    mounts_ += count;
    ctx_.chargeCounted("guest.mounts",
                       ctx_.costs().mountFs *
                           static_cast<std::int64_t>(count),
                       count);
}

bool
GuestKernel::syscall(const std::string &name)
{
    switch (classifySyscall(name)) {
      case SyscallClass::Denied:
        ctx_.stats().incr("guest.denied_syscalls");
        return false;
      case SyscallClass::Handled:
        ctx_.stats().incr("guest.handled_syscalls");
        break;
      case SyscallClass::Allowed:
        ctx_.stats().incr("guest.allowed_syscalls");
        break;
    }
    ctx_.charge(ctx_.costs().syscallBase);
    return true;
}

void
GuestKernel::syncFdTable()
{
    fds_ = vfs::FdTable{};
    for (const auto &conn : io_.all()) {
        vfs::FdKind kind = vfs::FdKind::File;
        if (conn.kind == vfs::ConnKind::Socket)
            kind = vfs::FdKind::Socket;
        else if (conn.kind == vfs::ConnKind::LogFile)
            kind = vfs::FdKind::LogFile;
        fds_.allocate(vfs::FdEntry{kind, conn.path,
                                   conn.kind != vfs::ConnKind::LogFile,
                                   conn.established, conn.id});
    }
}

std::size_t
GuestKernel::pendingFds() const
{
    std::size_t pending = 0;
    for (const auto &[fd, entry] : fds_.liveEntries()) {
        if (!entry.connected)
            ++pending;
    }
    return pending;
}

void
GuestKernel::reachFuncEntryPoint()
{
    at_entry_point_ = true;
    // The Gen-Func-Image trap itself is one guest syscall.
    ctx_.charge(ctx_.costs().syscallBase);
    ctx_.stats().incr("guest.func_entry_traps");
}

} // namespace catalyzer::guest
