/**
 * @file
 * Boot latency reporting shared by all boot pipelines.
 *
 * A BootReport is a flat view over the boot's span tree: when a
 * TraceContext is bound, every recorded stage is also emitted as a
 * completed child span (covering the just-elapsed interval), so one
 * traced invocation yields both the per-stage totals the benches
 * consume and a Chrome-loadable trace.
 */

#ifndef CATALYZER_SANDBOX_BOOT_REPORT_H
#define CATALYZER_SANDBOX_BOOT_REPORT_H

#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "trace/trace.h"

namespace catalyzer::sandbox {

/**
 * Per-stage latencies of one boot, in order. Stages tagged as sandbox
 * stages make up "sandbox initialization"; the rest is "application
 * initialization" (the split of the paper's Fig. 4).
 */
class BootReport
{
  public:
    /**
     * Emit every subsequently recorded stage as a span under the
     * context's parent. Pass a disabled context to unbind (e.g. when a
     * callee emits richer spans for the stages it fills in).
     */
    void bindTrace(trace::TraceContext trace) { trace_ = trace; }

    const trace::TraceContext &trace() const { return trace_; }

    /**
     * Record a sandbox-side stage. Pass emit_span = false when the
     * caller already wrapped the stage in a richer explicit span (the
     * flat total is still recorded either way).
     */
    void
    addSandboxStage(std::string name, sim::SimTime t,
                    bool emit_span = true)
    {
        if (emit_span)
            emitSpan(name, t, /*sandbox=*/true);
        stages_.emplace_back(std::move(name), t);
        sandbox_ += t;
    }

    /** Record an application-side stage. */
    void
    addAppStage(std::string name, sim::SimTime t, bool emit_span = true)
    {
        if (emit_span)
            emitSpan(name, t, /*sandbox=*/false);
        stages_.emplace_back(std::move(name), t);
        app_ += t;
    }

    sim::SimTime sandboxInit() const { return sandbox_; }
    sim::SimTime appInit() const { return app_; }
    sim::SimTime total() const { return sandbox_ + app_; }

    const std::vector<std::pair<std::string, sim::SimTime>> &
    stages() const
    {
        return stages_;
    }

  private:
    void
    emitSpan(const std::string &name, sim::SimTime t, bool sandbox)
    {
        if (!trace_.enabled())
            return;
        const trace::SpanId id = trace_.completedSpan(name, t);
        trace_.tracer()->attribute(id, "phase",
                                   sandbox ? "sandbox-init" : "app-init");
    }

    std::vector<std::pair<std::string, sim::SimTime>> stages_;
    sim::SimTime sandbox_;
    sim::SimTime app_;
    trace::TraceContext trace_;
};

} // namespace catalyzer::sandbox

#endif // CATALYZER_SANDBOX_BOOT_REPORT_H
