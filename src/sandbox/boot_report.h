/**
 * @file
 * Boot latency reporting shared by all boot pipelines.
 */

#ifndef CATALYZER_SANDBOX_BOOT_REPORT_H
#define CATALYZER_SANDBOX_BOOT_REPORT_H

#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace catalyzer::sandbox {

/**
 * Per-stage latencies of one boot, in order. Stages tagged as sandbox
 * stages make up "sandbox initialization"; the rest is "application
 * initialization" (the split of the paper's Fig. 4).
 */
class BootReport
{
  public:
    /** Record a sandbox-side stage. */
    void
    addSandboxStage(std::string name, sim::SimTime t)
    {
        stages_.emplace_back(std::move(name), t);
        sandbox_ += t;
    }

    /** Record an application-side stage. */
    void
    addAppStage(std::string name, sim::SimTime t)
    {
        stages_.emplace_back(std::move(name), t);
        app_ += t;
    }

    sim::SimTime sandboxInit() const { return sandbox_; }
    sim::SimTime appInit() const { return app_; }
    sim::SimTime total() const { return sandbox_ + app_; }

    const std::vector<std::pair<std::string, sim::SimTime>> &
    stages() const
    {
        return stages_;
    }

  private:
    std::vector<std::pair<std::string, sim::SimTime>> stages_;
    sim::SimTime sandbox_;
    sim::SimTime app_;
};

} // namespace catalyzer::sandbox

#endif // CATALYZER_SANDBOX_BOOT_REPORT_H
