/**
 * @file
 * Per-function shared artifacts: binary, rootfs, FS server, func-images,
 * warm-boot base mapping and the I/O cache.
 *
 * These are shared by every instance of a function on a machine — the
 * page cache behind the binary and func-image is what makes second boots
 * warm, and the BaseMapping is Catalyzer's shared Base-EPT.
 */

#ifndef CATALYZER_SANDBOX_FUNCTION_ARTIFACTS_H
#define CATALYZER_SANDBOX_FUNCTION_ARTIFACTS_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/app_profile.h"
#include "mem/backing_file.h"
#include "mem/base_mapping.h"
#include "prefetch/working_set_manifest.h"
#include "sandbox/machine.h"
#include "snapshot/func_image.h"
#include "vfs/fs_server.h"
#include "vfs/io_connection.h"

namespace catalyzer::sandbox {

/** Shared, per-function state on one machine. */
class FunctionArtifacts
{
  public:
    FunctionArtifacts(Machine &machine, const apps::AppProfile &app);

    const apps::AppProfile &app() const { return app_; }
    mem::BackingFile &binary() { return *binary_; }
    vfs::FsServer &fsServer() { return *fs_server_; }

    /** Path of the i-th app-layer file (I/O connection targets). */
    std::string appFilePath(std::size_t i) const;

    /** Stock compressed checkpoint (gVisor-restore), built on demand. */
    std::shared_ptr<snapshot::FuncImage> protoImage;
    /** Catalyzer well-formed func-image, built on demand. */
    std::shared_ptr<snapshot::FuncImage> separatedImage;

    /** Shared Base-EPT over the separated image's memory section. */
    std::shared_ptr<mem::BaseMapping> sharedBase;

    /**
     * Remote-sfork state (MITOSIS-style, src/remote/): a local mirror
     * of the *lender machine's* func-image, filled lazily by on-demand
     * network page pulls, and the Base-EPT over it shared by every
     * borrowed instance on this machine. Bound to the lender image's
     * generation; a generation change invalidates both.
     */
    std::unique_ptr<mem::BackingFile> remoteMirror;
    std::shared_ptr<mem::BaseMapping> remoteBase;
    std::uint64_t remoteGeneration = 0;

    /**
     * Catalyzer's I/O cache: connection descriptors observed to be used
     * right after boot (recorded by the first cold boot, Sec. 3.3).
     */
    std::vector<vfs::IoConnection> ioCache;

    /**
     * Working-set manifest for REAP-style prefetch: the merged restore
     * fault traces of this function, bound to the func-image generation
     * they were recorded against (null until the first restore records
     * one or it is fetched from the ImageStore).
     */
    std::shared_ptr<prefetch::WorkingSetManifest> workingSet;

    /** Page-cache warmth: false until something booted this function. */
    bool firstBootDone = false;
    /** False until the func-image was restored once on this machine. */
    bool firstRestoreDone = false;

    Machine &machine() { return machine_; }

  private:
    Machine &machine_;
    const apps::AppProfile &app_;
    std::unique_ptr<mem::BackingFile> binary_;
    std::unique_ptr<vfs::FsServer> fs_server_;
};

/** Registry of per-function artifacts on one machine. */
class FunctionRegistry
{
  public:
    explicit FunctionRegistry(Machine &machine) : machine_(machine) {}

    /** Get (building on first use) the artifacts for @p app. */
    FunctionArtifacts &artifactsFor(const apps::AppProfile &app);

    /** Look up deployed artifacts by name; nullptr if unknown. */
    FunctionArtifacts *find(const std::string &function_name);

    std::size_t size() const { return functions_.size(); }

  private:
    Machine &machine_;
    std::map<std::string, std::unique_ptr<FunctionArtifacts>> functions_;
};

} // namespace catalyzer::sandbox

#endif // CATALYZER_SANDBOX_FUNCTION_ARTIFACTS_H
