/**
 * @file
 * Func-image compilation (paper Sec. 5, "Func-image Compilation").
 *
 * The offline pipeline that turns a deployed function into a checkpoint
 * image: (1) the user's func-entry point is inserted into the wrapper
 * as an annotation, (2) the annotation is translated into the
 * Gen-Func-Image syscall, (3) the wrapped program runs until it traps
 * at the entry point, (4) the program state — memory, system metadata,
 * I/O information — is saved into the image.
 *
 * The entry point is configurable (Sec. 6.7): it can be moved past a
 * fraction of the handler's preparation work, optionally warmed with
 * user-provided training requests (user-guided pre-initialization).
 */

#ifndef CATALYZER_SANDBOX_COMPILER_H
#define CATALYZER_SANDBOX_COMPILER_H

#include <memory>

#include "sandbox/function_artifacts.h"
#include "snapshot/func_image.h"

namespace catalyzer::sandbox {

/** Where the checkpoint is taken relative to the handler. */
struct FuncEntryConfig
{
    /**
     * Fraction of per-request preparation work moved before the entry
     * point (0 = the default location, right before the wrapper invokes
     * the handler).
     */
    double prepFraction = 0.0;
    /** Training requests replayed before checkpointing. */
    int trainingRequests = 0;
};

/**
 * Compiles func-images offline. One compiler per machine; each compile
 * boots a throwaway instance to the (configured) entry point and
 * checkpoints it in the requested format.
 */
class FuncImageCompiler
{
  public:
    explicit FuncImageCompiler(Machine &machine) : machine_(machine) {}

    /**
     * Run the four-step pipeline for @p fn. The resulting image is also
     * stored into the artifacts (protoImage / separatedImage) so boot
     * paths pick it up.
     */
    std::shared_ptr<snapshot::FuncImage>
    compile(FunctionArtifacts &fn, snapshot::ImageFormat format,
            FuncEntryConfig entry = {});

  private:
    Machine &machine_;
};

} // namespace catalyzer::sandbox

#endif // CATALYZER_SANDBOX_COMPILER_H
