#include "sandbox/pipelines.h"

#include <algorithm>
#include <cmath>

#include "sandbox/compiler.h"

#include "sim/clock.h"
#include "sim/logging.h"
#include "snapshot/restore_baseline.h"

namespace catalyzer::sandbox {

const char *
sandboxSystemName(SandboxSystem system)
{
    switch (system) {
      case SandboxSystem::Native: return "Native";
      case SandboxSystem::Docker: return "Docker";
      case SandboxSystem::HyperContainer: return "HyperContainer";
      case SandboxSystem::FireCracker: return "FireCracker";
      case SandboxSystem::GVisor: return "gVisor";
      case SandboxSystem::GVisorPtrace: return "gVisor-ptrace";
      case SandboxSystem::GVisorRestore: return "gVisor-restore";
    }
    return "?";
}

std::unique_ptr<SandboxInstance>
makeBareInstance(FunctionArtifacts &fn, BootKind kind, const char *tag)
{
    Machine &m = fn.machine();
    auto &proc = m.host().spawnProcess(fn.app().name + "-" + tag);
    auto inst = std::make_unique<SandboxInstance>(
        m, fn, fn.app().name + "-" + tag, proc, kind);
    inst->setGuest(std::make_unique<guest::GuestKernel>(
        m.ctx(), inst->name() + "-kernel"));
    return inst;
}

void
constructGVisorSandbox(SandboxInstance &inst,
                       const hostos::KvmConfig &kvm_config,
                       trace::TraceContext trace)
{
    Machine &m = inst.machine();
    auto &ctx = m.ctx();
    const auto &costs = ctx.costs();

    {
        trace::ScopedSpan kvm_span(trace, "kvm-setup");
        kvm_span.attr("pml", kvm_config.pmlEnabled ? "on" : "off");
        hostos::KvmVm vm(ctx, kvm_config);
        vm.createVm();
        for (int i = 0; i < 4; ++i)
            vm.createVcpu();
        vm.setUserMemoryRegions(costs.kvmMemoryRegions);
    }

    trace::ScopedSpan sentry_span(trace, "sentry-init");
    inst.guest().initializeFresh();
    inst.guest().mountRootfs(costs.guestMounts);
    inst.guest().startGoRuntime();

    // The Sentry's own working memory.
    const auto self_pages = static_cast<std::size_t>(costs.sentrySelfPages);
    const mem::PageIndex va =
        inst.space().mapAnon(self_pages, true, "sentry-self");
    inst.space().touchRange(va, self_pages, /*write=*/true);
}

void
runApplicationInit(SandboxInstance &inst, BootReport &report,
                   double slowdown)
{
    Machine &m = inst.machine();
    auto &ctx = m.ctx();
    FunctionArtifacts &fn = inst.artifacts();
    const apps::AppProfile &app = fn.app();
    const bool cold = !fn.firstBootDone;
    sim::Stopwatch watch(ctx.clock());

    // Map and fault in the program text and libraries.
    const mem::PageIndex binary_va = inst.space().mapFile(
        fn.binary(), 0, app.binaryPages, mem::MapKind::FilePrivate,
        false, "binary");
    inst.space().touchRange(binary_va, app.binaryPages, /*write=*/false,
                            cold);
    report.addAppStage("load-binary", watch.elapsed());
    watch.restart();

    // Language runtime boot (JVM / CPython / V8 / loader).
    ctx.charge(app.runtimeBootCost * slowdown);
    report.addAppStage("runtime-boot", watch.elapsed());
    watch.restart();

    // Class / module loading.
    ctx.charge(app.perModuleCost *
               static_cast<std::int64_t>(app.modulesLoaded) * slowdown);
    report.addAppStage("load-modules", watch.elapsed());
    watch.restart();

    // Build the runtime + application heap.
    const std::size_t heap_pages = app.heapPages();
    const mem::PageIndex heap_va =
        inst.space().mapAnon(heap_pages, true, "heap");
    inst.space().touchRange(heap_va, heap_pages, /*write=*/true);
    report.addAppStage("build-heap", watch.elapsed());
    watch.restart();

    // Application-specific setup.
    ctx.charge(app.appSetupCost * slowdown);

    // Open the function's I/O connections.
    for (std::size_t i = 0; i < app.ioConnections; ++i) {
        vfs::ConnKind kind;
        std::string path;
        if (i % 20 == 19) {
            kind = vfs::ConnKind::LogFile;
            path = "/var/log/" + app.name + std::to_string(i) + ".log";
            fn.fsServer().grantLogFile(path);
            inst.guest().syscall("openat");
        } else if (i % 4 == 1) {
            kind = vfs::ConnKind::Socket;
            path = "tcp://backend:" + std::to_string(7000 + i);
            ctx.charge(ctx.costs().openSocket);
            inst.guest().syscall("getsockopt");
        } else {
            kind = vfs::ConnKind::File;
            path = "/app/data/conn" + std::to_string(i);
            vfs::FdEntry entry;
            if (!fn.fsServer().openReadOnly(path, &entry))
                sim::panic("app init: missing %s", path.c_str());
            inst.guest().syscall("openat");
        }
        const bool at_startup = i < static_cast<std::size_t>(std::ceil(
            static_cast<double>(app.ioConnections) *
            app.ioStartupFraction));
        inst.guest().io().add(kind, std::move(path), at_startup,
                              /*used_by_requests=*/i % 2 == 0);
    }

    inst.guest().syncFdTable();

    // Kernel metadata created on the way (threads, timers, mounts...).
    inst.guest().setState(objgraph::ObjectGraph::synthesize(
        ctx.rng(), app.graphSpec()));
    if (inst.guest().threads().started()) {
        for (int i = 0; i < app.blockingThreads; ++i)
            inst.guest().threads().addBlockingThread();
    }
    inst.proc().setThreadCount(inst.guest().threads().totalThreads());

    // The wrapper reaches the func-entry point.
    inst.guest().reachFuncEntryPoint();
    report.addAppStage("app-setup", watch.elapsed());

    inst.setMemoryLayout(binary_va, heap_va, heap_pages,
                         /*heap_on_base=*/false);
    fn.firstBootDone = true;
}

namespace {

/** Boot pipelines for the fresh-boot systems. */
BootResult
bootFresh(SandboxSystem system, FunctionArtifacts &fn,
          trace::TraceContext trace)
{
    Machine &m = fn.machine();
    auto &ctx = m.ctx();
    const auto &costs = ctx.costs();
    BootResult result;
    trace::ScopedSpan boot_span(
        trace, std::string("boot/") + sandboxSystemName(system));
    boot_span.attr("function", fn.app().name);
    const trace::TraceContext tctx = boot_span.context();
    result.report.bindTrace(tctx);
    sim::Stopwatch watch(ctx.clock());

    double app_factor = 1.0;
    switch (system) {
      case SandboxSystem::Native: {
        auto inst = makeBareInstance(fn, BootKind::Native, "native");
        result.report.addSandboxStage("spawn-process", watch.elapsed());
        result.instance = std::move(inst);
        app_factor = 1.0;
        break;
      }
      case SandboxSystem::Docker: {
        ctx.charge(costs.parseConfig);
        auto inst = makeBareInstance(fn, BootKind::ColdFresh, "docker");
        ctx.charge(costs.dockerSetupFixed);
        result.report.addSandboxStage("container-setup", watch.elapsed());
        result.instance = std::move(inst);
        app_factor = costs.dockerAppInitFactor;
        break;
      }
      case SandboxSystem::HyperContainer: {
        ctx.charge(costs.parseConfig);
        auto inst = makeBareInstance(fn, BootKind::ColdFresh, "hyper");
        ctx.charge(costs.hyperSetupFixed);
        hostos::KvmVm vm(ctx, hostos::KvmConfig{});
        vm.createVm();
        vm.createVcpu();
        vm.setUserMemoryRegions(8);
        result.report.addSandboxStage("hypervm-setup", watch.elapsed());
        result.instance = std::move(inst);
        app_factor = costs.hyperAppInitFactor;
        break;
      }
      case SandboxSystem::FireCracker: {
        ctx.charge(costs.parseConfig);
        auto inst = makeBareInstance(fn, BootKind::ColdFresh, "fc");
        ctx.charge(costs.firecrackerVmmInit);
        hostos::KvmVm vm(ctx, hostos::KvmConfig{});
        vm.createVm();
        vm.createVcpu();
        vm.setUserMemoryRegions(6);
        result.report.addSandboxStage("vmm-init", watch.elapsed());
        watch.restart();
        ctx.charge(costs.firecrackerKernelBoot);
        result.report.addSandboxStage("guest-kernel-boot",
                                      watch.elapsed());
        result.instance = std::move(inst);
        app_factor = costs.firecrackerAppInitFactor;
        break;
      }
      case SandboxSystem::GVisor: {
        ctx.charge(costs.parseConfig);
        result.report.addSandboxStage("parse-config", watch.elapsed());
        watch.restart();
        auto inst = makeBareInstance(fn, BootKind::ColdFresh, "gvisor");
        result.report.addSandboxStage("boot-sandbox-process",
                                      watch.elapsed());
        watch.restart();
        {
            trace::ScopedSpan create_span(tctx, "create-kernel-platform");
            constructGVisorSandbox(*inst, hostos::KvmConfig{},
                                   create_span.context());
        }
        result.report.addSandboxStage("create-kernel-platform",
                                      watch.elapsed(),
                                      /*emit_span=*/false);
        watch.restart();
        ctx.charge(costs.gvisorRuncMisc);
        result.report.addSandboxStage("runc-misc", watch.elapsed());
        result.instance = std::move(inst);
        app_factor = costs.gvisorAppInitFactor;
        break;
      }
      case SandboxSystem::GVisorPtrace: {
        // The ptrace platform skips all KVM setup but pays heavier
        // syscall interception during application init.
        ctx.charge(costs.parseConfig);
        result.report.addSandboxStage("parse-config", watch.elapsed());
        watch.restart();
        auto inst = makeBareInstance(fn, BootKind::ColdFresh, "gvpt");
        result.report.addSandboxStage("boot-sandbox-process",
                                      watch.elapsed());
        watch.restart();
        inst->guest().initializeFresh();
        inst->guest().mountRootfs(costs.guestMounts);
        inst->guest().startGoRuntime();
        const auto self_pages =
            static_cast<std::size_t>(costs.sentrySelfPages);
        const mem::PageIndex va =
            inst->space().mapAnon(self_pages, true, "sentry-self");
        inst->space().touchRange(va, self_pages, /*write=*/true);
        result.report.addSandboxStage("create-kernel", watch.elapsed());
        watch.restart();
        ctx.charge(costs.gvisorRuncMisc);
        result.report.addSandboxStage("runc-misc", watch.elapsed());
        result.instance = std::move(inst);
        app_factor = costs.gvisorPtraceAppInitFactor;
        break;
      }
      case SandboxSystem::GVisorRestore:
        sim::panic("bootFresh called for GVisorRestore");
    }

    {
        trace::ScopedSpan app_span(tctx, "application-init");
        BootReport &report = result.report;
        const trace::TraceContext outer = report.trace();
        report.bindTrace(app_span.context());
        runApplicationInit(*result.instance, report, app_factor);
        report.bindTrace(outer);
    }
    result.instance->setBootLatency(result.report.total());
    return result;
}

BootResult
bootGVisorRestoreImpl(FunctionArtifacts &fn, trace::TraceContext trace)
{
    Machine &m = fn.machine();
    auto &ctx = m.ctx();
    const auto &costs = ctx.costs();

    // Offline: make sure the compressed checkpoint exists.
    auto image = ensureProtoImage(fn);

    BootResult result;
    trace::ScopedSpan boot_span(trace, "boot/gVisor-restore");
    boot_span.attr("function", fn.app().name);
    const trace::TraceContext tctx = boot_span.context();
    result.report.bindTrace(tctx);
    sim::Stopwatch watch(ctx.clock());

    ctx.charge(costs.parseConfig);
    result.report.addSandboxStage("parse-config", watch.elapsed());
    watch.restart();
    auto inst = makeBareInstance(fn, BootKind::ColdRestore, "gvr");
    result.report.addSandboxStage("boot-sandbox-process", watch.elapsed());
    watch.restart();
    {
        trace::ScopedSpan create_span(tctx, "create-kernel-platform");
        constructGVisorSandbox(*inst, hostos::KvmConfig{},
                               create_span.context());
    }
    result.report.addSandboxStage("create-kernel-platform",
                                  watch.elapsed(), /*emit_span=*/false);
    watch.restart();
    ctx.charge(costs.gvisorRuncMisc);
    result.report.addSandboxStage("runc-misc", watch.elapsed());

    // The restore engine emits its own (richer) spans for these stages.
    snapshot::EagerRestoreEngine engine(ctx);
    snapshot::RestoreBreakdown breakdown = engine.restore(
        *image, inst->guest(), inst->space(), &fn.fsServer(), tctx);
    result.report.addAppStage("restore-app-memory", breakdown.appMemory,
                              /*emit_span=*/false);
    result.report.addAppStage("restore-kernel", breakdown.kernelMeta,
                              /*emit_span=*/false);
    result.report.addAppStage("restore-reconnect-io",
                              breakdown.ioReconnect,
                              /*emit_span=*/false);

    inst->setMemoryLayout(0, breakdown.heapVa,
                          image->state().memoryPages,
                          /*heap_on_base=*/false);
    inst->proc().setThreadCount(inst->guest().threads().totalThreads());
    inst->setBootLatency(result.report.total());
    result.instance = std::move(inst);
    return result;
}

} // namespace

BootResult
bootSandbox(SandboxSystem system, FunctionArtifacts &fn,
            trace::TraceContext trace)
{
    BootResult result = system == SandboxSystem::GVisorRestore
                            ? bootGVisorRestoreImpl(fn, trace)
                            : bootFresh(system, fn, trace);
    sim::StatRegistry::incrGlobal("bench.boots");
    fn.machine().ctx().stats().observe(
        std::string("boot.latency.") + sandboxSystemName(system),
        result.report.total());
    sim::debugLog("boot %s/%s: %.3f ms", sandboxSystemName(system),
                  fn.app().name.c_str(), result.report.total().toMs());
    return result;
}

std::shared_ptr<snapshot::FuncImage>
ensureProtoImage(FunctionArtifacts &fn)
{
    if (fn.protoImage)
        return fn.protoImage;
    // Offline: run the Sec. 5 compilation pipeline with the stock
    // compressed codec.
    FuncImageCompiler compiler(fn.machine());
    return compiler.compile(fn, snapshot::ImageFormat::CompressedProto);
}

std::shared_ptr<snapshot::FuncImage>
ensureSeparatedImage(FunctionArtifacts &fn)
{
    if (fn.separatedImage)
        return fn.separatedImage;
    FuncImageCompiler compiler(fn.machine());
    return compiler.compile(fn,
                            snapshot::ImageFormat::SeparatedWellFormed);
}

} // namespace catalyzer::sandbox
