#include "sandbox/function_artifacts.h"

#include <cstdio>

namespace catalyzer::sandbox {

FunctionArtifacts::FunctionArtifacts(Machine &machine,
                                     const apps::AppProfile &app)
    : machine_(machine), app_(app)
{
    binary_ = std::make_unique<mem::BackingFile>(
        machine.frames(), "/func/" + app.name + "/bin", app.binaryPages);

    // Merged rootfs: distribution base plus the app layer, including the
    // files the function's I/O connections will open.
    vfs::InodeTree rootfs = Machine::baseRootfs();
    vfs::InodeTree app_layer;
    app_layer.addDir("/app");
    const std::size_t per_file =
        app.rootfsBytes / std::max<std::size_t>(app.rootfsFiles, 1);
    for (std::size_t i = 0; i < app.rootfsFiles; ++i)
        app_layer.addFile(appFilePath(i), per_file);
    for (std::size_t i = 0; i < app.ioConnections; ++i)
        app_layer.addFile("/app/data/conn" + std::to_string(i), 8 << 10);
    rootfs.unionWith(app_layer);

    fs_server_ = std::make_unique<vfs::FsServer>(
        machine.ctx(), std::move(rootfs), app.name + "-gofer");
}

std::string
FunctionArtifacts::appFilePath(std::size_t i) const
{
    return "/app/files/f" + std::to_string(i);
}

FunctionArtifacts &
FunctionRegistry::artifactsFor(const apps::AppProfile &app)
{
    auto it = functions_.find(app.name);
    if (it == functions_.end()) {
        it = functions_.emplace(
            app.name,
            std::make_unique<FunctionArtifacts>(machine_, app)).first;
    }
    return *it->second;
}

FunctionArtifacts *
FunctionRegistry::find(const std::string &function_name)
{
    auto it = functions_.find(function_name);
    return it == functions_.end() ? nullptr : it->second.get();
}

} // namespace catalyzer::sandbox
