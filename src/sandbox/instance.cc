#include "sandbox/instance.h"

#include <algorithm>

#include "sim/clock.h"
#include "sim/logging.h"
#include "snapshot/io_reconnect.h"

namespace catalyzer::sandbox {

const char *
bootKindName(BootKind kind)
{
    switch (kind) {
      case BootKind::ColdFresh: return "cold-fresh";
      case BootKind::ColdRestore: return "cold-restore";
      case BootKind::WarmRestore: return "warm-restore";
      case BootKind::ForkBoot: return "fork-boot";
      case BootKind::Native: return "native";
    }
    return "?";
}

SandboxInstance::SandboxInstance(Machine &machine, FunctionArtifacts &fn,
                                 std::string name,
                                 hostos::HostProcess &proc, BootKind kind)
    : machine_(machine), fn_(fn), name_(std::move(name)), proc_(&proc),
      boot_kind_(kind)
{
}

SandboxInstance::~SandboxInstance()
{
    if (!released_ && proc_) {
        // Detach the fault observer before the space goes away.
        if (ws_recorder_ || lifetime_pager_)
            proc_->space().setFaultObserver(nullptr);
        // Drop the rootfs view and guest first, then reap the process
        // (which releases the address space's frames).
        rootfs_.reset();
        guest_.reset();
        machine_.host().exitProcess(proc_->pid());
        released_ = true;
    }
}

void
SandboxInstance::setGuest(std::unique_ptr<guest::GuestKernel> guest)
{
    guest_ = std::move(guest);
}

void
SandboxInstance::setRootfs(std::unique_ptr<vfs::OverlayRootfs> rootfs)
{
    rootfs_ = std::move(rootfs);
}

sim::SimTime
SandboxInstance::invoke()
{
    auto &ctx = machine_.ctx();
    const apps::AppProfile &app = fn_.app();
    sim::Stopwatch watch(ctx.clock());
    ++invocations_;

    //
    // Touch the handler's working set: a small fraction of the heap
    // (Insight II). Pages are strided across the whole heap so restored
    // instances fault against the Base-EPT and sforked ones COW.
    //
    if (heap_pages_ > 0) {
        auto touched = static_cast<std::size_t>(
            static_cast<double>(heap_pages_) * app.execTouchFraction);
        touched = std::clamp<std::size_t>(touched, 1, heap_pages_);
        const std::size_t stride = std::max<std::size_t>(
            heap_pages_ / touched, 1);
        const auto writes = static_cast<std::size_t>(
            static_cast<double>(touched) * app.execWriteFraction);
        for (std::size_t k = 0; k < touched; ++k) {
            const mem::PageIndex page =
                heap_va_ + (k * stride) % heap_pages_;
            proc_->space().touch(page, /*write=*/k < writes);
        }
    }

    //
    // Use the request-path I/O connections. On a restored instance the
    // not-yet-established ones reconnect on demand, right here — this is
    // the cost on-demand I/O reconnection moves off the boot path.
    //
    auto &conns = guest_->io().all();
    const auto want = static_cast<std::size_t>(
        static_cast<double>(conns.size()) * app.ioRequestFraction);
    std::size_t used = 0;
    for (auto &conn : conns) {
        if (!conn.usedByRequests || used >= std::max<std::size_t>(want, 1))
            continue;
        ++used;
        if (!conn.established) {
            snapshot::reconnectConnection(ctx, conn, &fn_.fsServer());
            ctx.stats().incr("exec.lazy_reconnects");
        }
        // The handler's actual I/O goes through the guest syscall
        // policy (Table 1): reads for files, recvmsg for sockets.
        guest_->syscall(conn.kind == vfs::ConnKind::Socket ? "recvmsg"
                                                           : "read");
    }

    // On the very first request, the connections the function touches
    // right after boot come due (lazily, if restore left them down).
    if (invocations_ == 1) {
        for (auto &conn : conns) {
            if (conn.usedAtStartup && !conn.established) {
                snapshot::reconnectConnection(ctx, conn, &fn_.fsServer());
                ctx.stats().incr("exec.startup_reconnects");
            }
        }
    }

    // Request logging goes through the stateless overlay rootFS (all
    // writes land in sandbox memory; persistent logs would use the FS
    // server's read/write grants).
    if (rootfs_) {
        rootfs_->write("/var/log/" + app.name + ".request.log",
                       256 + 64 * (invocations_ % 4));
    }

    // The handler's own compute (minus any work the fine-grained entry
    // point moved into the checkpoint).
    ctx.charge(app.execComputeCost * (1.0 - prep_fraction_));
    ctx.stats().incr("exec.invocations");

    // First response: the restore-to-first-response recording window
    // (working-set prefetch) closes here.
    if (invocations_ == 1)
        finishWorkingSetWindow();
    return watch.elapsed();
}

void
SandboxInstance::armWorkingSetRecorder(
    std::unique_ptr<prefetch::FaultRecorder> recorder)
{
    if (ws_recorder_)
        finishWorkingSetWindow();
    ws_recorder_ = std::move(recorder);
    if (ws_recorder_)
        proc_->space().setFaultObserver(ws_recorder_.get());
}

void
SandboxInstance::finishWorkingSetWindow()
{
    if (!ws_recorder_)
        return;
    ws_recorder_->finish(machine_.ctx().stats());
    // Hand the observer slot back to the lifetime pager, if one is
    // installed (remote-sfork instances keep pulling pages after the
    // first response).
    if (proc_)
        proc_->space().setFaultObserver(lifetime_pager_.get());
}

void
SandboxInstance::setLifetimePager(
    std::unique_ptr<mem::FaultObserver> pager)
{
    if (ws_recorder_)
        finishWorkingSetWindow();
    lifetime_pager_ = std::move(pager);
    if (proc_)
        proc_->space().setFaultObserver(lifetime_pager_.get());
}

void
SandboxInstance::pretouchWorkingSet()
{
    const apps::AppProfile &app = fn_.app();
    if (heap_pages_ == 0 || prep_fraction_ <= 0.0)
        return;
    auto touched = static_cast<std::size_t>(
        static_cast<double>(heap_pages_) * app.execTouchFraction);
    touched = std::clamp<std::size_t>(touched, 1, heap_pages_);
    const std::size_t stride =
        std::max<std::size_t>(heap_pages_ / touched, 1);
    const auto prep = static_cast<std::size_t>(
        static_cast<double>(touched) * prep_fraction_);
    const auto writes = static_cast<std::size_t>(
        static_cast<double>(touched) * app.execWriteFraction);
    for (std::size_t k = 0; k < prep; ++k) {
        const mem::PageIndex page = heap_va_ + (k * stride) % heap_pages_;
        proc_->space().touch(page, /*write=*/k < writes);
    }
}

snapshot::GuestState
SandboxInstance::captureState() const
{
    snapshot::GuestState state;
    state.app = &fn_.app();
    state.kernelGraph = guest_->state();
    state.ioConns = guest_->io().all();
    state.memoryPages = heap_pages_;
    return state;
}

} // namespace catalyzer::sandbox
