/**
 * @file
 * A booted function instance (sandbox process + guest kernel + rootfs
 * view), with the request-execution model.
 */

#ifndef CATALYZER_SANDBOX_INSTANCE_H
#define CATALYZER_SANDBOX_INSTANCE_H

#include <memory>
#include <string>

#include "guest/guest_kernel.h"
#include "hostos/process.h"
#include "prefetch/fault_recorder.h"
#include "sandbox/function_artifacts.h"
#include "snapshot/func_image.h"
#include "vfs/overlay_rootfs.h"

namespace catalyzer::sandbox {

/** How an instance came to exist (paper Fig. 7). */
enum class BootKind
{
    ColdFresh,       ///< booted from scratch (stock path)
    ColdRestore,     ///< restored from a func-image (no running peers)
    WarmRestore,     ///< restored sharing a live Base-EPT
    ForkBoot,        ///< sforked from a template sandbox
    Native,          ///< no sandbox at all (Table 2's "Native" column)
};

const char *bootKindName(BootKind kind);

/**
 * One live instance. Owns the guest kernel and rootfs view; the host
 * process is owned by the host kernel and released on destruction.
 */
class SandboxInstance
{
  public:
    SandboxInstance(Machine &machine, FunctionArtifacts &fn,
                    std::string name, hostos::HostProcess &proc,
                    BootKind kind);
    ~SandboxInstance();

    SandboxInstance(const SandboxInstance &) = delete;
    SandboxInstance &operator=(const SandboxInstance &) = delete;

    /**
     * Handle one request: touch the handler's working set (faulting
     * against the Private/Base EPT as needed), use its I/O connections
     * (re-establishing lazily on a restored instance), and run the
     * handler's compute. Returns the request latency.
     */
    sim::SimTime invoke();

    /** Capture this instance's state for checkpointing. */
    snapshot::GuestState captureState() const;

    const apps::AppProfile &app() const { return fn_.app(); }
    FunctionArtifacts &artifacts() { return fn_; }
    Machine &machine() { return machine_; }

    hostos::HostProcess &proc() { return *proc_; }
    mem::AddressSpace &space() { return proc_->space(); }

    guest::GuestKernel &guest() { return *guest_; }
    const guest::GuestKernel &guest() const { return *guest_; }
    void setGuest(std::unique_ptr<guest::GuestKernel> guest);

    vfs::OverlayRootfs *rootfs() { return rootfs_.get(); }
    void setRootfs(std::unique_ptr<vfs::OverlayRootfs> rootfs);

    /** Memory layout, set by the boot pipeline. */
    void
    setMemoryLayout(mem::PageIndex binary_va, mem::PageIndex heap_va,
                    std::size_t heap_pages, bool heap_on_base)
    {
        binary_va_ = binary_va;
        heap_va_ = heap_va;
        heap_pages_ = heap_pages;
        heap_on_base_ = heap_on_base;
    }

    mem::PageIndex heapVa() const { return heap_va_; }
    std::size_t heapPages() const { return heap_pages_; }
    bool heapOnBase() const { return heap_on_base_; }

    BootKind bootKind() const { return boot_kind_; }
    void setBootLatency(sim::SimTime t) { boot_latency_ = t; }
    sim::SimTime bootLatency() const { return boot_latency_; }

    std::size_t invocations() const { return invocations_; }
    const std::string &name() const { return name_; }

    /**
     * Fine-grained func-entry point (Sec. 6.7): the checkpoint was taken
     * *after* this fraction of the handler's preparation work, so that
     * work is absent from every invocation.
     */
    void setPrepFraction(double f) { prep_fraction_ = f; }
    double prepFraction() const { return prep_fraction_; }

    /**
     * Fault in the working-set pages covered by the moved entry point
     * (checkpoint-side cost, off the invocation path).
     */
    void pretouchWorkingSet();

    /** RSS / PSS of the sandbox process (Fig. 14). */
    std::size_t rssBytes() const { return proc_->space().rssBytes(); }
    double pssBytes() const { return proc_->space().pssBytes(); }

    /**
     * Attach a working-set recorder observing this instance's faults
     * from now (restore time) until the end of the first invocation,
     * when the window closes and the trace/audit is committed.
     */
    void
    armWorkingSetRecorder(std::unique_ptr<prefetch::FaultRecorder> recorder);

    /**
     * Close the restore-to-first-response window now (normally called
     * by the first invoke(); exposed for boot paths that never serve a
     * request, e.g. checkpoint warming). Idempotent.
     */
    void finishWorkingSetWindow();

    const prefetch::FaultRecorder *workingSetRecorder() const
    {
        return ws_recorder_.get();
    }

    /**
     * Install a fault observer for this instance's whole lifetime (the
     * remote-sfork page puller). Unlike the working-set recorder it
     * never detaches at the first response; it is cleared only when the
     * instance dies. Mutually exclusive with the recorder (the address
     * space supports one observer).
     */
    void setLifetimePager(std::unique_ptr<mem::FaultObserver> pager);

    const mem::FaultObserver *lifetimePager() const
    {
        return lifetime_pager_.get();
    }

  private:
    Machine &machine_;
    FunctionArtifacts &fn_;
    std::string name_;
    hostos::HostProcess *proc_;
    std::unique_ptr<guest::GuestKernel> guest_;
    std::unique_ptr<vfs::OverlayRootfs> rootfs_;
    mem::PageIndex binary_va_ = 0;
    mem::PageIndex heap_va_ = 0;
    std::size_t heap_pages_ = 0;
    bool heap_on_base_ = false;
    BootKind boot_kind_;
    sim::SimTime boot_latency_;
    std::size_t invocations_ = 0;
    double prep_fraction_ = 0.0;
    std::unique_ptr<prefetch::FaultRecorder> ws_recorder_;
    std::unique_ptr<mem::FaultObserver> lifetime_pager_;
    bool released_ = false;
};

} // namespace catalyzer::sandbox

#endif // CATALYZER_SANDBOX_INSTANCE_H
