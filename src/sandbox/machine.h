/**
 * @file
 * One simulated physical machine: context plus host kernel.
 */

#ifndef CATALYZER_SANDBOX_MACHINE_H
#define CATALYZER_SANDBOX_MACHINE_H

#include <cstdint>

#include "hostos/host_kernel.h"
#include "sim/context.h"
#include "vfs/inode_tree.h"

namespace catalyzer::sandbox {

/**
 * Bundles the simulation context and the host kernel; every experiment
 * creates one Machine (or two, to compare profiles).
 */
class Machine
{
  public:
    explicit Machine(std::uint64_t seed = 42,
                     sim::CostModel costs = sim::CostModel{})
        : ctx_(seed, costs), host_(ctx_)
    {}

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    sim::SimContext &ctx() { return ctx_; }
    const sim::SimContext &ctx() const { return ctx_; }
    hostos::HostKernel &host() { return host_; }
    mem::FrameStore &frames() { return host_.frames(); }

    /** The distribution base rootfs shared by every function. */
    static vfs::InodeTree baseRootfs();

  private:
    sim::SimContext ctx_;
    hostos::HostKernel host_;
};

} // namespace catalyzer::sandbox

#endif // CATALYZER_SANDBOX_MACHINE_H
