/**
 * @file
 * One simulated physical machine: context plus host kernel.
 */

#ifndef CATALYZER_SANDBOX_MACHINE_H
#define CATALYZER_SANDBOX_MACHINE_H

#include <cstdint>

#include "hostos/host_kernel.h"
#include "sim/context.h"
#include "trace/trace.h"
#include "vfs/inode_tree.h"

namespace catalyzer::sandbox {

/**
 * Bundles the simulation context and the host kernel; every experiment
 * creates one Machine (or two, to compare profiles).
 *
 * Each machine also owns its always-on tracer: a bounded ring of the
 * most recent spans (the flight recorder's raw material), stamped with
 * the machine's cluster node id so fleet exports land in per-machine
 * lanes. Benches that want full history for a one-shot report use
 * their own unbounded Tracer instead.
 */
class Machine
{
  public:
    /** Ring capacity of the always-on per-machine tracer. */
    static constexpr std::size_t kTracerCapacity = 16384;

    explicit Machine(std::uint64_t seed = 42,
                     sim::CostModel costs = sim::CostModel{})
        : ctx_(seed, costs), host_(ctx_)
    {
        tracer_.setCapacity(kTracerCapacity);
    }

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    sim::SimContext &ctx() { return ctx_; }
    const sim::SimContext &ctx() const { return ctx_; }
    hostos::HostKernel &host() { return host_; }
    mem::FrameStore &frames() { return host_.frames(); }

    trace::Tracer &tracer() { return tracer_; }
    const trace::Tracer &tracer() const { return tracer_; }

    /** Cluster node id (0 for standalone machines). */
    std::uint32_t nodeId() const { return node_id_; }

    /** Set by the Cluster before platforms attach; stamps the tracer. */
    void
    setNodeId(std::uint32_t id)
    {
        node_id_ = id;
        tracer_.setMachine(id);
    }

    /** The distribution base rootfs shared by every function. */
    static vfs::InodeTree baseRootfs();

  private:
    sim::SimContext ctx_;
    hostos::HostKernel host_;
    trace::Tracer tracer_;
    std::uint32_t node_id_ = 0;
};

} // namespace catalyzer::sandbox

#endif // CATALYZER_SANDBOX_MACHINE_H
