/**
 * @file
 * Boot pipelines for the compared sandbox systems (paper Sec. 2 / 6.2):
 * Docker, HyperContainer, FireCracker, stock gVisor, gVisor-restore
 * (the C/R baseline), and a native process (Table 2's baseline).
 *
 * Catalyzer's own boot paths (cold/warm on-demand restore, fork boot)
 * live in src/catalyzer/.
 */

#ifndef CATALYZER_SANDBOX_PIPELINES_H
#define CATALYZER_SANDBOX_PIPELINES_H

#include <memory>

#include "hostos/kvm.h"
#include "sandbox/boot_report.h"
#include "sandbox/function_artifacts.h"
#include "sandbox/instance.h"
#include "trace/trace.h"

namespace catalyzer::sandbox {

/** The systems compared against Catalyzer. */
enum class SandboxSystem
{
    Native,
    Docker,
    HyperContainer,
    FireCracker,
    GVisor,
    /** gVisor on the ptrace platform (no hardware virtualization). */
    GVisorPtrace,
    GVisorRestore,
};

const char *sandboxSystemName(SandboxSystem system);

/** Result of one boot. */
struct BootResult
{
    std::unique_ptr<SandboxInstance> instance;
    BootReport report;
};

/**
 * Boot one instance of @p fn under @p system. For GVisorRestore the
 * func-image is built offline on first use (including one throwaway
 * fresh boot to capture the state); that preparation is not part of the
 * report.
 *
 * With an enabled @p trace the boot emits a "boot/<system>" span with
 * one child span per report stage, and the boot latency is observed
 * into the machine's "boot.latency.<system>" histogram either way.
 */
BootResult bootSandbox(SandboxSystem system, FunctionArtifacts &fn,
                       trace::TraceContext trace = {});

/**
 * Shared application-initialization phase: map and fault the binary,
 * boot the language runtime, load classes/modules, build the heap, open
 * the function's I/O connections and synthesize its kernel state.
 *
 * @param slowdown  per-system app-init factor (CostModel).
 */
void runApplicationInit(SandboxInstance &inst, BootReport &report,
                        double slowdown);

/**
 * Build (once) the stock compressed func-image for @p fn by booting a
 * throwaway instance to its entry point and checkpointing it.
 */
std::shared_ptr<snapshot::FuncImage>
ensureProtoImage(FunctionArtifacts &fn);

/**
 * Build (once) the Catalyzer well-formed func-image for @p fn.
 */
std::shared_ptr<snapshot::FuncImage>
ensureSeparatedImage(FunctionArtifacts &fn);

/**
 * Create a bare instance (spawned sandbox process + empty guest kernel).
 * Exposed for the Catalyzer boot paths.
 */
std::unique_ptr<SandboxInstance>
makeBareInstance(FunctionArtifacts &fn, BootKind kind, const char *tag);

/**
 * gVisor's "create and initialize kernel/platform" step: KVM VM + VCPUs
 * + memory regions, Sentry structures, guest mounts and the Go runtime.
 * Exposed so Catalyzer's Zygote construction can reuse it with its own
 * KVM configuration (PML off, kvcalloc cache on). Emits "kvm-setup" and
 * "sentry-init" child spans under @p trace.
 */
void constructGVisorSandbox(SandboxInstance &inst,
                            const hostos::KvmConfig &kvm_config,
                            trace::TraceContext trace = {});

} // namespace catalyzer::sandbox

#endif // CATALYZER_SANDBOX_PIPELINES_H
