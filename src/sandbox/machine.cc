#include "sandbox/machine.h"

namespace catalyzer::sandbox {

vfs::InodeTree
Machine::baseRootfs()
{
    vfs::InodeTree tree;
    tree.addDir("/bin");
    tree.addDir("/lib");
    tree.addDir("/etc");
    tree.addDir("/tmp");
    tree.addDir("/var/log");
    tree.addFile("/bin/sh", 120 << 10);
    tree.addFile("/lib/libc.so.6", 2 << 20);
    tree.addFile("/lib/libpthread.so.0", 160 << 10);
    tree.addFile("/lib/ld-linux-x86-64.so.2", 190 << 10);
    tree.addFile("/etc/passwd", 2 << 10);
    tree.addFile("/etc/hosts", 1 << 10);
    tree.addFile("/etc/resolv.conf", 512);
    return tree;
}

} // namespace catalyzer::sandbox
