#include "sandbox/compiler.h"

#include "sandbox/pipelines.h"
#include "sim/logging.h"

namespace catalyzer::sandbox {

std::shared_ptr<snapshot::FuncImage>
FuncImageCompiler::compile(FunctionArtifacts &fn,
                           snapshot::ImageFormat format,
                           FuncEntryConfig entry)
{
    if (entry.prepFraction < 0.0 || entry.prepFraction >= 1.0)
        sim::fatal("FuncImageCompiler: prepFraction %f out of [0,1)",
                   entry.prepFraction);

    // Steps 1-3: the wrapper (with the annotation translated into the
    // Gen-Func-Image syscall) runs inside a sandbox until it traps at
    // the func-entry point. runApplicationInit ends exactly there.
    BootResult boot = bootSandbox(SandboxSystem::GVisor, fn);
    SandboxInstance &inst = *boot.instance;
    if (!inst.guest().atFuncEntryPoint())
        sim::panic("FuncImageCompiler: wrapper did not reach the "
                   "func-entry point");

    // A moved entry point executes part of the handler's preparation
    // (optionally trained with user requests) before the trap.
    if (entry.prepFraction > 0.0) {
        inst.setPrepFraction(entry.prepFraction);
        for (int i = 0; i < entry.trainingRequests; ++i)
            inst.invoke();
        inst.pretouchWorkingSet();
    }

    // Step 4: save memory, system metadata and I/O information.
    snapshot::GuestState state = inst.captureState();
    state.warmedPrepFraction = entry.prepFraction;
    snapshot::CheckpointEngine engine(machine_.ctx());
    auto image = engine.capture(machine_.frames(), fn.app().name, format,
                                std::move(state));
    if (format == snapshot::ImageFormat::CompressedProto)
        fn.protoImage = image;
    else
        fn.separatedImage = image;
    machine_.ctx().stats().incr("snapshot.images_compiled");
    return image;
}

} // namespace catalyzer::sandbox
