#include "objgraph/separated_image.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <unordered_map>

#include "mem/types.h"
#include "sim/logging.h"

namespace catalyzer::objgraph {

namespace {

constexpr std::uint64_t
align8(std::uint64_t v)
{
    return (v + 7) & ~std::uint64_t{7};
}

/** Arena bytes occupied by one object. */
std::uint64_t
slotBytesFor(std::uint32_t payload, std::size_t slots)
{
    return SeparatedImage::kObjectHeaderBytes + align8(payload) +
           slots * SeparatedImage::kPointerSlotBytes;
}

/** Byte offset of pointer slot @p slot within an object at @p base. */
std::uint64_t
slotOffsetFor(std::uint64_t base, std::uint32_t payload, std::size_t slot)
{
    return base + SeparatedImage::kObjectHeaderBytes + align8(payload) +
           slot * SeparatedImage::kPointerSlotBytes;
}

void
writeU64(std::vector<std::uint8_t> &buf, std::uint64_t off,
         std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[off + static_cast<std::uint64_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
readU64(const std::vector<std::uint8_t> &buf, std::uint64_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[off +
                                            static_cast<std::uint64_t>(i)])
             << (8 * i);
    return v;
}

void
writeU32(std::vector<std::uint8_t> &buf, std::uint64_t off,
         std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf[off + static_cast<std::uint64_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
readU32(const std::vector<std::uint8_t> &buf, std::uint64_t off)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf[off +
                                            static_cast<std::uint64_t>(i)])
             << (8 * i);
    return v;
}

/** Deterministic payload fill so decode can verify integrity. */
std::uint8_t
payloadByte(std::uint64_t id, std::uint32_t i)
{
    return static_cast<std::uint8_t>((id * 31 + i) & 0xff);
}

} // namespace

SeparatedImage
SeparatedImage::build(const ObjectGraph &graph)
{
    SeparatedImage image;
    const auto &objects = graph.objects();

    // Cluster pointer-bearing objects at the front of the arena so that
    // stage-2 patching dirties a compact page range.
    std::vector<std::uint64_t> order;
    order.reserve(objects.size());
    for (const auto &obj : objects) {
        const bool has_ptr = std::any_of(
            obj.refs.begin(), obj.refs.end(),
            [](std::uint64_t r) { return r != 0; });
        if (has_ptr)
            order.push_back(obj.id);
    }
    for (const auto &obj : objects) {
        const bool has_ptr = std::any_of(
            obj.refs.begin(), obj.refs.end(),
            [](std::uint64_t r) { return r != 0; });
        if (!has_ptr)
            order.push_back(obj.id);
    }

    // Assign arena offsets in clustered order. Offsets are handed out
    // by an ascending cursor, so offset_to_id_ comes out sorted.
    std::unordered_map<std::uint64_t, std::uint64_t> id_to_offset;
    std::uint64_t cursor = 0;
    for (std::uint64_t id : order) {
        const MetaObject &obj = graph.object(id);
        id_to_offset[id] = cursor;
        image.offset_to_id_.emplace_back(cursor, id);
        cursor += slotBytesFor(obj.payloadBytes, obj.refs.size());
    }
    image.arena_bytes_ = cursor;

    //
    // Materialize the arena: packed 16-byte headers (id u64, kind u8,
    // slots u16, payload u32), a deterministic payload fill, and zeroed
    // pointer slots. The relation table records where every non-null
    // pointer lives and what arena offset it must resolve to.
    //
    std::vector<std::uint8_t> &arena = *image.arena_;
    arena.assign(image.arena_bytes_, 0);
    image.stored_.reserve(objects.size());
    for (const auto &obj : objects) {
        const std::uint64_t base = id_to_offset.at(obj.id);
        writeU64(arena, base, obj.id);
        arena[base + 8] = static_cast<std::uint8_t>(obj.kind);
        arena[base + 9] =
            static_cast<std::uint8_t>(obj.refs.size() & 0xff);
        arena[base + 10] =
            static_cast<std::uint8_t>((obj.refs.size() >> 8) & 0xff);
        writeU32(arena, base + 12, obj.payloadBytes);
        for (std::uint32_t i = 0; i < obj.payloadBytes; ++i)
            arena[base + kObjectHeaderBytes + i] = payloadByte(obj.id, i);

        image.stored_.push_back(StoredObject{
            obj.id, obj.kind, obj.payloadBytes, base,
            static_cast<std::uint16_t>(obj.refs.size())});
        for (std::size_t slot = 0; slot < obj.refs.size(); ++slot) {
            const std::uint64_t target = obj.refs[slot];
            if (target == 0)
                continue; // null stays null; no relocation needed
            image.relocs_.push_back(Reloc{
                slotOffsetFor(base, obj.payloadBytes, slot),
                id_to_offset.at(target)});
        }
    }

    // The stage-2 patch overlay: the same relocations, ordered by slot
    // offset so a decode can binary-search the patched value of any
    // slot instead of writing into a private arena copy.
    image.overlay_ = image.relocs_;
    std::sort(image.overlay_.begin(), image.overlay_.end(),
              [](const Reloc &a, const Reloc &b) {
                  return a.slotOffset < b.slotOffset;
              });
    for (const Reloc &reloc : image.relocs_) {
        const std::uint64_t page = reloc.slotOffset / mem::kPageSize;
        image.pointer_pages_.push_back(page);
    }
    std::sort(image.pointer_pages_.begin(), image.pointer_pages_.end());
    image.pointer_pages_.erase(std::unique(image.pointer_pages_.begin(),
                                           image.pointer_pages_.end()),
                               image.pointer_pages_.end());
    return image;
}

ObjectGraph
SeparatedImage::reconstruct(trace::TraceContext trace) const
{
    const std::vector<std::uint8_t> &arena = *arena_;

    //
    // Stage-1: the arena is mapped as-is. It is immutable and shared by
    // every instance; nothing is copied here.
    //
    {
        trace::ScopedSpan span(trace, "arena-map");
        span.attr("arena_bytes",
                  static_cast<std::int64_t>(arena_bytes_));
    }

    //
    // Stage-2: apply the relation table — each entry resolves a pointer
    // slot to its target's arena offset. Entries are independent; the
    // real system patches them from parallel workers, COWing only the
    // pages that hold slots. Here the patches stay in the overlay_
    // table (sorted by slot offset) and the decode below reads slot
    // values through it, so no per-instance arena copy exists at all.
    //
    // Targets resolve to offset+1 so that a pointer to the object at
    // arena offset 0 stays distinguishable from a null slot.
    {
        trace::ScopedSpan span(trace, "relation-fixup");
        span.attr("relocs", static_cast<std::int64_t>(relocs_.size()));
        span.attr("pointer_pages",
                  static_cast<std::int64_t>(pointerPages()));
        for (const Reloc &reloc : relocs_) {
            if (reloc.slotOffset + kPointerSlotBytes > arena.size())
                sim::panic("SeparatedImage: slot offset beyond arena");
        }
    }

    trace::ScopedSpan decode_span(trace, "arena-decode");
    decode_span.attr("objects", static_cast<std::int64_t>(stored_.size()));

    // The decode is a pure function of the immutable arena, so its
    // result is computed and verified once; every later boot receives a
    // copy-on-write alias of the same graph.
    if (decoded_valid_)
        return decoded_;

    // Patched value of the slot at @p off: overlay entry if one covers
    // it, the pristine (zeroed) arena byte otherwise.
    auto slotValue = [&](std::uint64_t off) {
        auto it = std::lower_bound(
            overlay_.begin(), overlay_.end(), off,
            [](const Reloc &r, std::uint64_t o) { return r.slotOffset < o; });
        if (it != overlay_.end() && it->slotOffset == off)
            return it->targetOffset + 1;
        return readU64(arena, off);
    };

    //
    // Decode pass 1: scan the packed objects, collecting headers and
    // patched slot values from the bytes themselves.
    //
    struct Decoded
    {
        std::uint64_t id;
        ObjectKind kind;
        std::uint32_t payload;
        std::vector<std::uint64_t> raw_slots;
    };
    std::vector<Decoded> decoded;
    decoded.reserve(stored_.size());
    std::uint64_t cursor = 0;
    while (cursor < arena.size()) {
        Decoded d;
        d.id = readU64(arena, cursor);
        d.kind = static_cast<ObjectKind>(arena[cursor + 8]);
        const std::uint16_t slots = static_cast<std::uint16_t>(
            arena[cursor + 9] |
            (static_cast<std::uint16_t>(arena[cursor + 10]) << 8));
        d.payload = readU32(arena, cursor + 12);

        // Integrity: the payload fill must match the checkpoint.
        for (std::uint32_t i = 0; i < d.payload; ++i) {
            if (arena[cursor + kObjectHeaderBytes + i] !=
                payloadByte(d.id, i)) {
                sim::panic("SeparatedImage: payload corruption at "
                           "object %llu byte %u",
                           static_cast<unsigned long long>(d.id), i);
            }
        }

        const std::uint64_t slot_base =
            cursor + kObjectHeaderBytes + align8(d.payload);
        d.raw_slots.reserve(slots);
        for (std::uint16_t s = 0; s < slots; ++s)
            d.raw_slots.push_back(
                slotValue(slot_base + s * kPointerSlotBytes));

        cursor = slot_base + slots * kPointerSlotBytes;
        decoded.push_back(std::move(d));
    }
    if (cursor != arena.size())
        sim::panic("SeparatedImage: arena scan overran (%llu != %zu)",
                   static_cast<unsigned long long>(cursor), arena.size());

    //
    // Decode pass 2: resolve patched offsets to object ids and rebuild
    // the graph in id order. A zero slot is a null pointer — except for
    // the object at arena offset 0, which never appears as a target
    // because an object cannot reference itself or a later object
    // (construction order), and offset 0 belongs to the first clustered
    // object whose own refs resolve elsewhere.
    //
    std::sort(decoded.begin(), decoded.end(),
              [](const Decoded &a, const Decoded &b) {
                  return a.id < b.id;
              });
    ObjectGraph graph;
    for (const Decoded &d : decoded) {
        std::vector<std::uint64_t> refs;
        refs.reserve(d.raw_slots.size());
        for (std::uint64_t raw : d.raw_slots) {
            if (raw == 0) {
                refs.push_back(0);
                continue;
            }
            const std::uint64_t target = raw - 1;
            auto it = std::lower_bound(
                offset_to_id_.begin(), offset_to_id_.end(), target,
                [](const std::pair<std::uint64_t, std::uint64_t> &p,
                   std::uint64_t off) { return p.first < off; });
            if (it == offset_to_id_.end() || it->first != target)
                sim::panic("SeparatedImage: dangling target offset");
            refs.push_back(it->second);
        }
        graph.addObject(d.kind, d.payload, std::move(refs));
    }
    decoded_ = graph;
    decoded_valid_ = true;
    return graph;
}

std::size_t
SeparatedImage::arenaPages() const
{
    return mem::pagesForBytes(arena_bytes_);
}

std::vector<std::uint64_t>
SeparatedImage::pointerPageList() const
{
    return pointer_pages_;
}

} // namespace catalyzer::objgraph
