/**
 * @file
 * Separated state recovery image (paper Sec. 3.2).
 *
 * At checkpoint time the discrete in-memory objects are re-organized into
 * a contiguous, page-aligned arena; pointers are zeroed and recorded in a
 * relation table mapping pointer-slot offsets to pointee offsets. Restore
 * is then stage-1 (map the arena — overlay memory) plus stage-2 (patch
 * the pointer slots through the relation table, in parallel), instead of
 * per-object deserialization.
 */

#ifndef CATALYZER_OBJGRAPH_SEPARATED_IMAGE_H
#define CATALYZER_OBJGRAPH_SEPARATED_IMAGE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "objgraph/object_graph.h"
#include "trace/trace.h"

namespace catalyzer::objgraph {

/** One relation-table entry: where a pointer lives -> what it points at. */
struct Reloc
{
    /** Byte offset of the pointer slot in the arena. */
    std::uint64_t slotOffset;
    /** Byte offset of the target object in the arena. */
    std::uint64_t targetOffset;
};

/**
 * The partially-deserialized metadata section of a func-image.
 *
 * The layout clusters pointer-bearing objects at the front of the arena
 * so that stage-2 pointer patching dirties (and therefore COWs) as few
 * pages as possible — this is what keeps the paper's per-instance
 * metadata cost in the hundreds-of-KB range (Table 3).
 */
class SeparatedImage
{
  public:
    static constexpr std::size_t kObjectHeaderBytes = 16;
    static constexpr std::size_t kPointerSlotBytes = 8;
    static constexpr std::size_t kRelocEntryBytes = 16;

    /** Re-organize a graph into the separated format (offline). */
    static SeparatedImage build(const ObjectGraph &graph);

    /**
     * Stage-1 + stage-2: rebuild the full object graph by applying the
     * relation table to the arena. The result is bit-identical to the
     * checkpointed graph.
     *
     * The arena itself is immutable and shared — stage-2 never copies
     * it. Patched pointer slots are read through the relation table as
     * an overlay (the per-instance COW pages of the real system), and
     * because the decode is a pure function of the arena, its result is
     * computed once and handed out as a shared copy-on-write graph on
     * every later boot.
     *
     * With an enabled @p trace, emits "arena-map", "relation-fixup" and
     * "arena-decode" child spans annotated with object/reloc counts
     * (the latencies of these passes are charged by the caller, so the
     * spans mainly carry structure and attribution).
     */
    ObjectGraph reconstruct(trace::TraceContext trace = {}) const;

    std::size_t objectCount() const { return stored_.size(); }
    std::size_t relocCount() const { return relocs_.size(); }

    /** Arena extent. */
    std::size_t arenaBytes() const { return arena_bytes_; }
    std::size_t arenaPages() const;

    /** Distinct arena pages containing at least one patched slot. */
    std::size_t pointerPages() const { return pointer_pages_.size(); }

    /**
     * Sorted arena-relative page indices dirtied by stage-2 patching.
     * These are exactly the pages a warm boot COWs into its Private-EPT
     * (the per-instance metadata cost of Table 3).
     */
    std::vector<std::uint64_t> pointerPageList() const;

    /** Relation table size on disk / in memory. */
    std::size_t
    relocTableBytes() const
    {
        return relocs_.size() * kRelocEntryBytes;
    }

    const std::vector<Reloc> &relocs() const { return relocs_; }

    /** Raw arena bytes (the image's metadata section contents). */
    const std::vector<std::uint8_t> &arena() const { return *arena_; }

    /**
     * Test support: flip one arena byte (simulated storage rot).
     * Detaches from any sharers and drops the cached decode so the
     * corruption is actually re-read.
     */
    void
    corruptByteForTesting(std::uint64_t offset)
    {
        if (arena_.use_count() > 1)
            arena_ = std::make_shared<std::vector<std::uint8_t>>(*arena_);
        arena_->at(offset) ^= 0xff;
        decoded_valid_ = false;
    }

  private:
    struct StoredObject
    {
        std::uint64_t id; // original id (order preserved for identity)
        ObjectKind kind;
        std::uint32_t payloadBytes;
        std::uint64_t arenaOffset;
        /** Slot count; contents zeroed, patched via the relation table. */
        std::uint16_t slots;
    };

    std::vector<StoredObject> stored_;            // id order
    std::vector<Reloc> relocs_;
    /** relocs_ re-sorted by slot offset: the stage-2 patch overlay. */
    std::vector<Reloc> overlay_;
    /** (arena offset, object id), sorted by offset. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> offset_to_id_;
    /** Sorted distinct arena pages containing patched slots. */
    std::vector<std::uint64_t> pointer_pages_;
    std::size_t arena_bytes_ = 0;
    /**
     * The real arena: packed headers, payload fill, zeroed slots.
     * Shared immutably across image copies and never written after
     * build() (outside the corruption test hook).
     */
    std::shared_ptr<std::vector<std::uint8_t>> arena_ =
        std::make_shared<std::vector<std::uint8_t>>();

    /** One-shot decode cache: reconstruct() is pure in the arena. */
    mutable ObjectGraph decoded_;
    mutable bool decoded_valid_ = false;
};

} // namespace catalyzer::objgraph

#endif // CATALYZER_OBJGRAPH_SEPARATED_IMAGE_H
