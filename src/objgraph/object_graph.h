/**
 * @file
 * Guest-kernel metadata object graph.
 *
 * A running gVisor-style sandbox holds tens of thousands of interlinked
 * kernel objects (tasks, mounts, timers, session lists, ...). Checkpoint
 * serializes this graph; restore must rebuild it. The paper measures
 * 37,838 objects for the SPECjbb sandbox (Sec. 2.2) and makes their
 * one-by-one deserialization the dominant restore cost that separated
 * state recovery removes.
 */

#ifndef CATALYZER_OBJGRAPH_OBJECT_GRAPH_H
#define CATALYZER_OBJGRAPH_OBJECT_GRAPH_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace catalyzer::objgraph {

/** Guest-kernel object categories (the paper's examples, Sec. 2.2). */
enum class ObjectKind : std::uint8_t
{
    Task,
    ThreadContext,
    Mount,
    Timer,
    SessionList,
    FdTableEntry,
    MemoryRegion,
    Misc,
};

const char *objectKindName(ObjectKind kind);

/** One metadata object. id is 1-based; 0 means "null pointer". */
struct MetaObject
{
    std::uint64_t id = 0;
    ObjectKind kind = ObjectKind::Misc;
    /** Serialized payload size excluding pointer slots. */
    std::uint32_t payloadBytes = 0;
    /** Outgoing references (object ids; 0 entries are null slots). */
    std::vector<std::uint64_t> refs;
};

/** Shape parameters for synthesizing a sandbox's kernel state. */
struct GraphSpec
{
    std::size_t tasks = 8;
    std::size_t threadContexts = 16;
    std::size_t mounts = 24;
    std::size_t timers = 32;
    std::size_t sessionLists = 8;
    std::size_t fdTableEntries = 64;
    std::size_t memoryRegions = 48;
    std::size_t miscObjects = 800;

    /** Mean payload size per object, bytes. */
    double meanPayloadBytes = 96.0;
    /** Fraction of objects that carry outgoing pointers. */
    double pointerBearingFraction = 0.13;
    /** Mean refs per pointer-bearing object. */
    double meanRefsPerObject = 3.0;

    std::size_t
    totalObjects() const
    {
        return tasks + threadContexts + mounts + timers + sessionLists +
               fdTableEntries + memoryRegions + miscObjects;
    }

    /** Scale every category so the total is roughly @p objects. */
    static GraphSpec scaledTo(std::size_t objects);
};

/**
 * The object graph itself. Objects are stored in id order; references
 * always point at already-created objects (the graph is a DAG plus
 * explicit back-links are not needed for the reproduction).
 *
 * Graphs share their object storage copy-on-write: copying a graph
 * (e.g. handing the template's kernel state to every sfork'd instance)
 * aliases one immutable vector, and the first mutation through
 * addObject()/mutableObject() detaches a private copy. This mirrors the
 * paper's separated state design, where instances reuse immutable
 * kernel metadata instead of deserializing their own copy.
 */
class ObjectGraph
{
  public:
    /** Add an object; returns its id. Refs must name existing ids or 0. */
    std::uint64_t addObject(ObjectKind kind, std::uint32_t payload_bytes,
                            std::vector<std::uint64_t> refs);

    const MetaObject &object(std::uint64_t id) const;
    MetaObject &mutableObject(std::uint64_t id);

    std::size_t objectCount() const
    {
        return objects_ ? objects_->size() : 0;
    }

    /** Total non-null outgoing references. */
    std::size_t pointerCount() const;

    /** Sum of payload bytes. */
    std::size_t payloadBytes() const;

    /** All objects in id order. */
    const std::vector<MetaObject> &objects() const;

    /** Verify every reference resolves; returns false on dangling ids. */
    bool checkIntegrity() const;

    /** Structural equality (used to validate restore round trips). */
    bool operator==(const ObjectGraph &other) const;

    /** Synthesize a graph with the given shape, deterministically. */
    static ObjectGraph synthesize(sim::Rng &rng, const GraphSpec &spec);

  private:
    /** Clone the shared storage if any other graph aliases it. */
    void detach();

    /** Shared-immutable object storage; null means empty. */
    std::shared_ptr<std::vector<MetaObject>> objects_;
};

} // namespace catalyzer::objgraph

#endif // CATALYZER_OBJGRAPH_OBJECT_GRAPH_H
