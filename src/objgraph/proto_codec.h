/**
 * @file
 * Baseline checkpoint codec (gVisor-restore style).
 *
 * Objects are serialized one-by-one into a protobuf-style stream and the
 * stream is compressed. Restore must decompress the stream and decode
 * every object individually — the cost Catalyzer's separated state
 * recovery eliminates.
 */

#ifndef CATALYZER_OBJGRAPH_PROTO_CODEC_H
#define CATALYZER_OBJGRAPH_PROTO_CODEC_H

#include <cstdint>
#include <vector>

#include "objgraph/object_graph.h"

namespace catalyzer::objgraph {

/**
 * A serialized-and-compressed object stream.
 *
 * The encoding is modelled faithfully enough to reproduce sizes: each
 * record carries a header, the payload, and one varint-ish slot per
 * reference; the compressor is a constant-ratio model of gzip on this
 * kind of data.
 */
class ProtoImage
{
  public:
    /** Typical gzip ratio on serialized kernel metadata. */
    static constexpr double kCompressionRatio = 0.42;
    /** Per-record framing overhead, bytes. */
    static constexpr std::size_t kRecordHeaderBytes = 12;
    /** Bytes per encoded reference slot. */
    static constexpr std::size_t kRefSlotBytes = 10;

    /** Encode a graph (checkpoint side). */
    static ProtoImage build(const ObjectGraph &graph);

    /** Decode back into an object graph (restore side). */
    ObjectGraph reconstruct() const;

    std::size_t objectCount() const { return record_count_; }
    std::size_t uncompressedBytes() const { return uncompressed_bytes_; }
    std::size_t compressedBytes() const { return compressed_bytes_; }

    /** The actual encoded structural stream (metadata records). */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::size_t record_count_ = 0;
    std::size_t uncompressed_bytes_ = 0;
    std::size_t compressed_bytes_ = 0;
};

} // namespace catalyzer::objgraph

#endif // CATALYZER_OBJGRAPH_PROTO_CODEC_H
