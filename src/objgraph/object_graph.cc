#include "objgraph/object_graph.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace catalyzer::objgraph {

const char *
objectKindName(ObjectKind kind)
{
    switch (kind) {
      case ObjectKind::Task: return "task";
      case ObjectKind::ThreadContext: return "thread_context";
      case ObjectKind::Mount: return "mount";
      case ObjectKind::Timer: return "timer";
      case ObjectKind::SessionList: return "session_list";
      case ObjectKind::FdTableEntry: return "fdtable_entry";
      case ObjectKind::MemoryRegion: return "memory_region";
      case ObjectKind::Misc: return "misc";
    }
    return "unknown";
}

GraphSpec
GraphSpec::scaledTo(std::size_t objects)
{
    GraphSpec base;
    const double factor = static_cast<double>(objects) /
                          static_cast<double>(base.totalObjects());
    auto scale = [factor](std::size_t v) {
        return static_cast<std::size_t>(std::llround(
            std::max(1.0, static_cast<double>(v) * factor)));
    };
    GraphSpec out;
    out.tasks = scale(base.tasks);
    out.threadContexts = scale(base.threadContexts);
    out.mounts = scale(base.mounts);
    out.timers = scale(base.timers);
    out.sessionLists = scale(base.sessionLists);
    out.fdTableEntries = scale(base.fdTableEntries);
    out.memoryRegions = scale(base.memoryRegions);
    // Put the remainder in misc so totals land close to the request.
    const std::size_t partial = out.tasks + out.threadContexts +
                                out.mounts + out.timers + out.sessionLists +
                                out.fdTableEntries + out.memoryRegions;
    out.miscObjects = objects > partial ? objects - partial : 1;
    return out;
}

std::uint64_t
ObjectGraph::addObject(ObjectKind kind, std::uint32_t payload_bytes,
                       std::vector<std::uint64_t> refs)
{
    const std::uint64_t id = objects_.size() + 1;
    for (std::uint64_t ref : refs) {
        if (ref >= id)
            sim::panic("ObjectGraph::addObject: forward/self ref %llu",
                       static_cast<unsigned long long>(ref));
    }
    objects_.push_back(MetaObject{id, kind, payload_bytes, std::move(refs)});
    return id;
}

const MetaObject &
ObjectGraph::object(std::uint64_t id) const
{
    if (id == 0 || id > objects_.size())
        sim::panic("ObjectGraph::object: bad id %llu",
                   static_cast<unsigned long long>(id));
    return objects_[id - 1];
}

MetaObject &
ObjectGraph::mutableObject(std::uint64_t id)
{
    if (id == 0 || id > objects_.size())
        sim::panic("ObjectGraph::mutableObject: bad id %llu",
                   static_cast<unsigned long long>(id));
    return objects_[id - 1];
}

std::size_t
ObjectGraph::pointerCount() const
{
    std::size_t n = 0;
    for (const auto &obj : objects_) {
        n += static_cast<std::size_t>(
            std::count_if(obj.refs.begin(), obj.refs.end(),
                          [](std::uint64_t r) { return r != 0; }));
    }
    return n;
}

std::size_t
ObjectGraph::payloadBytes() const
{
    std::size_t n = 0;
    for (const auto &obj : objects_)
        n += obj.payloadBytes;
    return n;
}

bool
ObjectGraph::checkIntegrity() const
{
    for (const auto &obj : objects_) {
        for (std::uint64_t ref : obj.refs) {
            if (ref > objects_.size())
                return false;
        }
    }
    return true;
}

bool
ObjectGraph::operator==(const ObjectGraph &other) const
{
    if (objects_.size() != other.objects_.size())
        return false;
    for (std::size_t i = 0; i < objects_.size(); ++i) {
        const auto &a = objects_[i];
        const auto &b = other.objects_[i];
        if (a.id != b.id || a.kind != b.kind ||
            a.payloadBytes != b.payloadBytes || a.refs != b.refs) {
            return false;
        }
    }
    return true;
}

ObjectGraph
ObjectGraph::synthesize(sim::Rng &rng, const GraphSpec &spec)
{
    ObjectGraph graph;
    struct Batch
    {
        ObjectKind kind;
        std::size_t count;
    };
    const Batch batches[] = {
        {ObjectKind::Task, spec.tasks},
        {ObjectKind::ThreadContext, spec.threadContexts},
        {ObjectKind::Mount, spec.mounts},
        {ObjectKind::Timer, spec.timers},
        {ObjectKind::SessionList, spec.sessionLists},
        {ObjectKind::FdTableEntry, spec.fdTableEntries},
        {ObjectKind::MemoryRegion, spec.memoryRegions},
        {ObjectKind::Misc, spec.miscObjects},
    };
    for (const auto &batch : batches) {
        for (std::size_t i = 0; i < batch.count; ++i) {
            const auto payload = static_cast<std::uint32_t>(
                std::max(16.0, rng.exponential(spec.meanPayloadBytes)));
            std::vector<std::uint64_t> refs;
            const std::uint64_t next_id = graph.objectCount() + 1;
            if (next_id > 1 && rng.chance(spec.pointerBearingFraction)) {
                const auto nrefs = static_cast<std::size_t>(
                    1 + rng.uniformInt(static_cast<std::uint64_t>(
                            std::max(1.0, spec.meanRefsPerObject * 2 - 1))));
                for (std::size_t r = 0; r < nrefs; ++r)
                    refs.push_back(1 + rng.uniformInt(next_id - 1));
            }
            graph.addObject(batch.kind, payload, std::move(refs));
        }
    }
    return graph;
}

} // namespace catalyzer::objgraph
