#include "objgraph/object_graph.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace catalyzer::objgraph {

const char *
objectKindName(ObjectKind kind)
{
    switch (kind) {
      case ObjectKind::Task: return "task";
      case ObjectKind::ThreadContext: return "thread_context";
      case ObjectKind::Mount: return "mount";
      case ObjectKind::Timer: return "timer";
      case ObjectKind::SessionList: return "session_list";
      case ObjectKind::FdTableEntry: return "fdtable_entry";
      case ObjectKind::MemoryRegion: return "memory_region";
      case ObjectKind::Misc: return "misc";
    }
    return "unknown";
}

GraphSpec
GraphSpec::scaledTo(std::size_t objects)
{
    GraphSpec base;
    const double factor = static_cast<double>(objects) /
                          static_cast<double>(base.totalObjects());
    auto scale = [factor](std::size_t v) {
        return static_cast<std::size_t>(std::llround(
            std::max(1.0, static_cast<double>(v) * factor)));
    };
    GraphSpec out;
    out.tasks = scale(base.tasks);
    out.threadContexts = scale(base.threadContexts);
    out.mounts = scale(base.mounts);
    out.timers = scale(base.timers);
    out.sessionLists = scale(base.sessionLists);
    out.fdTableEntries = scale(base.fdTableEntries);
    out.memoryRegions = scale(base.memoryRegions);
    // Put the remainder in misc so totals land close to the request.
    const std::size_t partial = out.tasks + out.threadContexts +
                                out.mounts + out.timers + out.sessionLists +
                                out.fdTableEntries + out.memoryRegions;
    out.miscObjects = objects > partial ? objects - partial : 1;
    return out;
}

void
ObjectGraph::detach()
{
    if (!objects_)
        objects_ = std::make_shared<std::vector<MetaObject>>();
    else if (objects_.use_count() > 1)
        objects_ = std::make_shared<std::vector<MetaObject>>(*objects_);
}

const std::vector<MetaObject> &
ObjectGraph::objects() const
{
    static const std::vector<MetaObject> kEmpty;
    return objects_ ? *objects_ : kEmpty;
}

std::uint64_t
ObjectGraph::addObject(ObjectKind kind, std::uint32_t payload_bytes,
                       std::vector<std::uint64_t> refs)
{
    const std::uint64_t id = objectCount() + 1;
    for (std::uint64_t ref : refs) {
        if (ref >= id)
            sim::panic("ObjectGraph::addObject: forward/self ref %llu",
                       static_cast<unsigned long long>(ref));
    }
    detach();
    objects_->push_back(
        MetaObject{id, kind, payload_bytes, std::move(refs)});
    return id;
}

const MetaObject &
ObjectGraph::object(std::uint64_t id) const
{
    if (id == 0 || id > objectCount())
        sim::panic("ObjectGraph::object: bad id %llu",
                   static_cast<unsigned long long>(id));
    return (*objects_)[id - 1];
}

MetaObject &
ObjectGraph::mutableObject(std::uint64_t id)
{
    if (id == 0 || id > objectCount())
        sim::panic("ObjectGraph::mutableObject: bad id %llu",
                   static_cast<unsigned long long>(id));
    detach();
    return (*objects_)[id - 1];
}

std::size_t
ObjectGraph::pointerCount() const
{
    std::size_t n = 0;
    for (const auto &obj : objects()) {
        n += static_cast<std::size_t>(
            std::count_if(obj.refs.begin(), obj.refs.end(),
                          [](std::uint64_t r) { return r != 0; }));
    }
    return n;
}

std::size_t
ObjectGraph::payloadBytes() const
{
    std::size_t n = 0;
    for (const auto &obj : objects())
        n += obj.payloadBytes;
    return n;
}

bool
ObjectGraph::checkIntegrity() const
{
    for (const auto &obj : objects()) {
        for (std::uint64_t ref : obj.refs) {
            if (ref > objectCount())
                return false;
        }
    }
    return true;
}

bool
ObjectGraph::operator==(const ObjectGraph &other) const
{
    if (objects_ == other.objects_)
        return true; // shared storage, structurally equal by definition
    if (objectCount() != other.objectCount())
        return false;
    const auto &mine = objects();
    const auto &theirs = other.objects();
    for (std::size_t i = 0; i < mine.size(); ++i) {
        const auto &a = mine[i];
        const auto &b = theirs[i];
        if (a.id != b.id || a.kind != b.kind ||
            a.payloadBytes != b.payloadBytes || a.refs != b.refs) {
            return false;
        }
    }
    return true;
}

ObjectGraph
ObjectGraph::synthesize(sim::Rng &rng, const GraphSpec &spec)
{
    ObjectGraph graph;
    struct Batch
    {
        ObjectKind kind;
        std::size_t count;
    };
    const Batch batches[] = {
        {ObjectKind::Task, spec.tasks},
        {ObjectKind::ThreadContext, spec.threadContexts},
        {ObjectKind::Mount, spec.mounts},
        {ObjectKind::Timer, spec.timers},
        {ObjectKind::SessionList, spec.sessionLists},
        {ObjectKind::FdTableEntry, spec.fdTableEntries},
        {ObjectKind::MemoryRegion, spec.memoryRegions},
        {ObjectKind::Misc, spec.miscObjects},
    };
    for (const auto &batch : batches) {
        for (std::size_t i = 0; i < batch.count; ++i) {
            const auto payload = static_cast<std::uint32_t>(
                std::max(16.0, rng.exponential(spec.meanPayloadBytes)));
            std::vector<std::uint64_t> refs;
            const std::uint64_t next_id = graph.objectCount() + 1;
            if (next_id > 1 && rng.chance(spec.pointerBearingFraction)) {
                const auto nrefs = static_cast<std::size_t>(
                    1 + rng.uniformInt(static_cast<std::uint64_t>(
                            std::max(1.0, spec.meanRefsPerObject * 2 - 1))));
                for (std::size_t r = 0; r < nrefs; ++r)
                    refs.push_back(1 + rng.uniformInt(next_id - 1));
            }
            graph.addObject(batch.kind, payload, std::move(refs));
        }
    }
    return graph;
}

} // namespace catalyzer::objgraph
