#include "objgraph/proto_codec.h"

#include "sim/logging.h"

namespace catalyzer::objgraph {

namespace {

/** LEB128-style varint append. */
void
putVarint(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf.push_back(static_cast<std::uint8_t>(v));
}

/** Varint decode; advances @p pos. */
std::uint64_t
getVarint(const std::vector<std::uint8_t> &buf, std::size_t &pos)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        if (pos >= buf.size())
            sim::panic("ProtoImage: truncated varint");
        const std::uint8_t byte = buf[pos++];
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            sim::panic("ProtoImage: varint overflow");
    }
}

} // namespace

ProtoImage
ProtoImage::build(const ObjectGraph &graph)
{
    ProtoImage image;
    image.record_count_ = graph.objectCount();

    // One record per object: kind, payload length, ref count, refs —
    // the structural stream the restore path must walk one by one.
    for (const auto &obj : graph.objects()) {
        putVarint(image.bytes_, static_cast<std::uint64_t>(obj.kind));
        putVarint(image.bytes_, obj.payloadBytes);
        putVarint(image.bytes_, obj.refs.size());
        for (std::uint64_t ref : obj.refs)
            putVarint(image.bytes_, ref);
        image.uncompressed_bytes_ += kRecordHeaderBytes + obj.payloadBytes +
                                     obj.refs.size() * kRefSlotBytes;
    }
    image.compressed_bytes_ = static_cast<std::size_t>(
        static_cast<double>(image.uncompressed_bytes_) * kCompressionRatio);
    return image;
}

ObjectGraph
ProtoImage::reconstruct() const
{
    ObjectGraph graph;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < record_count_; ++i) {
        const auto kind = static_cast<ObjectKind>(getVarint(bytes_, pos));
        const auto payload =
            static_cast<std::uint32_t>(getVarint(bytes_, pos));
        const auto nrefs = getVarint(bytes_, pos);
        std::vector<std::uint64_t> refs;
        refs.reserve(nrefs);
        for (std::uint64_t r = 0; r < nrefs; ++r)
            refs.push_back(getVarint(bytes_, pos));
        graph.addObject(kind, payload, std::move(refs));
    }
    if (pos != bytes_.size())
        sim::panic("ProtoImage: trailing bytes after decode (%zu of %zu)",
                   pos, bytes_.size());
    return graph;
}

} // namespace catalyzer::objgraph
