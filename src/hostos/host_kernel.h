/**
 * @file
 * The simulated host kernel: process table, fork, and the sfork
 * primitive (paper Sec. 4).
 */

#ifndef CATALYZER_HOSTOS_HOST_KERNEL_H
#define CATALYZER_HOSTOS_HOST_KERNEL_H

#include <map>
#include <memory>
#include <string>

#include "hostos/process.h"
#include "mem/frame_store.h"
#include "sim/context.h"

namespace catalyzer::hostos {

/** Options controlling one sfork invocation. */
struct SforkOptions
{
    /** Give the child fresh PID/USER namespaces (Sec. 4, Challenge-3). */
    bool newPidNamespace = true;
    bool newUserNamespace = true;
    /** Re-randomize the child's layout (ASLR mitigation, Sec. 6.8). */
    bool rerandomizeAslr = false;
    std::string childName = "sforked";
};

/**
 * Host kernel for one machine. Owns the frame store (physical memory)
 * and the process table; implements fork and sfork with their memory,
 * fd-table and namespace semantics.
 */
class HostKernel
{
  public:
    explicit HostKernel(sim::SimContext &ctx);

    HostKernel(const HostKernel &) = delete;
    HostKernel &operator=(const HostKernel &) = delete;

    /** Create a fresh process (fork+exec of a runtime binary). */
    HostProcess &spawnProcess(const std::string &name);

    /**
     * Traditional fork: single-threaded parent only; COW memory; shared
     * mappings stay shared; same namespaces. Returns the child.
     */
    HostProcess &fork(HostProcess &parent, const std::string &child_name);

    /**
     * The sfork primitive: like fork, but (a) MAP_SHARED regions carrying
     * the CoW flag are downgraded to copy-on-write so sandboxes stay
     * isolated, (b) the child gets fresh PID/USER namespaces so ids seen
     * before the fork stay consistent, and (c) the caller must have
     * collapsed to a single thread (transient single-thread) first —
     * violating that is a guest bug and panics.
     */
    HostProcess &sfork(HostProcess &parent, const SforkOptions &opts);

    /**
     * dup() on @p proc's fd table with the Fig. 16d latency model.
     * Returns the new fd.
     */
    int dup(HostProcess &proc, int oldfd, bool lazy = false);

    /** Terminate and reap a process, releasing its memory. */
    void exitProcess(Pid pid);

    HostProcess *findProcess(Pid pid);
    std::size_t processCount() const { return procs_.size(); }

    mem::FrameStore &frames() { return frames_; }
    sim::SimContext &context() { return ctx_; }

    /** Machine-wide resident pages (all live frames). */
    std::size_t machineRssPages() const { return frames_.liveFrames(); }

  private:
    NamespaceId freshNamespace() { return next_ns_++; }

    sim::SimContext &ctx_;
    mem::FrameStore frames_;
    std::map<Pid, std::unique_ptr<HostProcess>> procs_;
    Pid next_pid_ = 100;
    NamespaceId next_ns_ = 1;
};

} // namespace catalyzer::hostos

#endif // CATALYZER_HOSTOS_HOST_KERNEL_H
