#include "hostos/host_kernel.h"

#include "sim/logging.h"
#include "vfs/dup_model.h"

namespace catalyzer::hostos {

HostKernel::HostKernel(sim::SimContext &ctx) : ctx_(ctx) {}

HostProcess &
HostKernel::spawnProcess(const std::string &name)
{
    const Pid pid = next_pid_++;
    auto space = std::make_unique<mem::AddressSpace>(ctx_, frames_, name);
    auto proc = std::make_unique<HostProcess>(
        pid, name, std::move(space), freshNamespace(), freshNamespace());
    proc->setAslrSalt(ctx_.rng().next64());
    auto &ref = *proc;
    procs_.emplace(pid, std::move(proc));
    ctx_.chargeCounted("host.spawns", ctx_.costs().bootSandboxProcess);
    return ref;
}

HostProcess &
HostKernel::fork(HostProcess &parent, const std::string &child_name)
{
    if (parent.threadCount() != 1)
        sim::panic("HostKernel::fork: %s has %d threads; Linux fork "
                   "clones only the caller", parent.name().c_str(),
                   parent.threadCount());
    const Pid pid = next_pid_++;
    auto space = parent.space().forkCow(child_name,
                                        /*honor_cow_flag=*/false);
    auto child = std::make_unique<HostProcess>(
        pid, child_name, std::move(space), parent.pidNamespace(),
        parent.userNamespace());
    child->fds_ = parent.fds().clone();
    child->setAslrSalt(parent.aslrSalt()); // fork preserves the layout
    auto &ref = *child;
    procs_.emplace(pid, std::move(child));
    ctx_.chargeCounted("host.forks", ctx_.costs().sforkSyscallBase);
    return ref;
}

HostProcess &
HostKernel::sfork(HostProcess &parent, const SforkOptions &opts)
{
    if (parent.threadCount() != 1)
        sim::panic("HostKernel::sfork: %s has %d threads; the sandbox "
                   "must enter the transient single-thread state first",
                   parent.name().c_str(), parent.threadCount());
    const auto &costs = ctx_.costs();
    ctx_.chargeCounted("host.sforks", costs.sforkSyscallBase);

    const Pid pid = next_pid_++;
    auto space = parent.space().forkCow(opts.childName,
                                        /*honor_cow_flag=*/true);
    const NamespaceId pid_ns = opts.newPidNamespace
                                   ? freshNamespace()
                                   : parent.pidNamespace();
    const NamespaceId user_ns = opts.newUserNamespace
                                    ? freshNamespace()
                                    : parent.userNamespace();
    if (opts.newPidNamespace || opts.newUserNamespace)
        ctx_.chargeCounted("host.namespace_setups", costs.namespaceSetup);

    auto child = std::make_unique<HostProcess>(
        pid, opts.childName, std::move(space), pid_ns, user_ns);
    child->fds_ = parent.fds().clone();
    if (opts.rerandomizeAslr) {
        child->setAslrSalt(ctx_.rng().next64());
        ctx_.chargeCounted("host.aslr_rerandomize", costs.aslrRerandomize);
    } else {
        child->setAslrSalt(parent.aslrSalt());
    }
    auto &ref = *child;
    procs_.emplace(pid, std::move(child));
    return ref;
}

int
HostKernel::dup(HostProcess &proc, int oldfd, bool lazy)
{
    const vfs::FdEntry *entry = proc.fds().get(oldfd);
    if (!entry)
        sim::panic("HostKernel::dup: fd %d not open in %s", oldfd,
                   proc.name().c_str());
    bool expanded = false;
    const int newfd = proc.fds().allocate(*entry, &expanded);
    vfs::chargeDup(ctx_, expanded, lazy);
    return newfd;
}

void
HostKernel::exitProcess(Pid pid)
{
    auto it = procs_.find(pid);
    if (it == procs_.end())
        sim::panic("HostKernel::exitProcess: no pid %llu",
                   static_cast<unsigned long long>(pid));
    it->second->markDead();
    procs_.erase(it); // address space destructor releases frames
}

HostProcess *
HostKernel::findProcess(Pid pid)
{
    auto it = procs_.find(pid);
    return it == procs_.end() ? nullptr : it->second.get();
}

} // namespace catalyzer::hostos
