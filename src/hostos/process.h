/**
 * @file
 * Host process representation.
 */

#ifndef CATALYZER_HOSTOS_PROCESS_H
#define CATALYZER_HOSTOS_PROCESS_H

#include <cstdint>
#include <memory>
#include <string>

#include "mem/address_space.h"
#include "vfs/fd_table.h"

namespace catalyzer::hostos {

using Pid = std::uint64_t;
using NamespaceId = std::uint64_t;

/**
 * One process on the simulated host. The sandbox (Sentry) and the Gofer
 * are host processes; sfork operates on the sandbox process.
 */
class HostProcess
{
  public:
    HostProcess(Pid pid, std::string name,
                std::unique_ptr<mem::AddressSpace> space,
                NamespaceId pid_ns, NamespaceId user_ns)
        : pid_(pid), name_(std::move(name)), space_(std::move(space)),
          pid_ns_(pid_ns), user_ns_(user_ns)
    {}

    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }

    mem::AddressSpace &space() { return *space_; }
    const mem::AddressSpace &space() const { return *space_; }

    vfs::FdTable &fds() { return fds_; }
    const vfs::FdTable &fds() const { return fds_; }

    /** Number of live OS threads; fork/sfork require exactly one. */
    int threadCount() const { return thread_count_; }
    void setThreadCount(int n) { thread_count_ = n; }

    NamespaceId pidNamespace() const { return pid_ns_; }
    NamespaceId userNamespace() const { return user_ns_; }

    bool alive() const { return alive_; }
    void markDead() { alive_ = false; }

    /** Address-space layout salt; changes on ASLR re-randomization. */
    std::uint64_t aslrSalt() const { return aslr_salt_; }
    void setAslrSalt(std::uint64_t salt) { aslr_salt_ = salt; }

  private:
    friend class HostKernel;

    Pid pid_;
    std::string name_;
    std::unique_ptr<mem::AddressSpace> space_;
    vfs::FdTable fds_;
    int thread_count_ = 1;
    NamespaceId pid_ns_;
    NamespaceId user_ns_;
    bool alive_ = true;
    std::uint64_t aslr_salt_ = 0;
};

} // namespace catalyzer::hostos

#endif // CATALYZER_HOSTOS_PROCESS_H
