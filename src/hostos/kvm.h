/**
 * @file
 * KVM host-virtualization model (paper Fig. 16b/16c and Sec. 6.7).
 *
 * Captures the three host-side costs Catalyzer tunes: kvcalloc of VM
 * bookkeeping (mitigated with a dedicated cache), set_user_memory_region
 * latency (dominated by Page-Modification-Logging buffer work when PML is
 * enabled), and VCPU creation.
 */

#ifndef CATALYZER_HOSTOS_KVM_H
#define CATALYZER_HOSTOS_KVM_H

#include <cstdint>

#include "sim/context.h"

namespace catalyzer::hostos {

/** Host-wide KVM configuration knobs. */
struct KvmConfig
{
    /** Page Modification Logging; KVM default is on, Catalyzer disables. */
    bool pmlEnabled = true;
    /** Dedicated allocation cache added by Catalyzer (Fig. 16b). */
    bool kvcallocCacheEnabled = false;
};

/**
 * One VM's KVM-side state. Every ioctl charges its modelled latency to
 * the SimContext and bumps a counter, so both the boot pipelines and the
 * Fig. 16 micro-benches share one implementation.
 */
class KvmVm
{
  public:
    KvmVm(sim::SimContext &ctx, KvmConfig config);

    /** KVM_CREATE_VM plus the kvcalloc storm for VM bookkeeping. */
    void createVm();

    /** KVM_CREATE_VCPU. */
    void createVcpu();

    /**
     * KVM_SET_USER_MEMORY_REGION. Cost grows with the number of regions
     * already registered; PML adds per-VCPU dirty-log buffer work.
     * Returns the latency of this single ioctl (for Fig. 16c).
     */
    sim::SimTime setUserMemoryRegion();

    /** Register @p n regions (a sandbox registers ~11). */
    void setUserMemoryRegions(int n);

    int vcpus() const { return vcpus_; }
    int regions() const { return regions_; }
    bool created() const { return created_; }
    const KvmConfig &config() const { return config_; }

  private:
    sim::SimContext &ctx_;
    KvmConfig config_;
    bool created_ = false;
    int vcpus_ = 0;
    int regions_ = 0;
};

} // namespace catalyzer::hostos

#endif // CATALYZER_HOSTOS_KVM_H
