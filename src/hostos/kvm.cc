#include "hostos/kvm.h"

#include "sim/logging.h"

namespace catalyzer::hostos {

KvmVm::KvmVm(sim::SimContext &ctx, KvmConfig config)
    : ctx_(ctx), config_(config)
{
}

void
KvmVm::createVm()
{
    if (created_)
        sim::panic("KvmVm::createVm: already created");
    created_ = true;
    const auto &costs = ctx_.costs();
    ctx_.chargeCounted("kvm.create_vm", costs.kvmCreateVm);
    const sim::SimTime alloc = config_.kvcallocCacheEnabled
                                   ? costs.kvmKvcallocCached
                                   : costs.kvmKvcalloc;
    for (int i = 0; i < costs.kvmKvcallocCalls; ++i)
        ctx_.chargeCounted("kvm.kvcalloc", alloc);
}

void
KvmVm::createVcpu()
{
    if (!created_)
        sim::panic("KvmVm::createVcpu before createVm");
    ++vcpus_;
    ctx_.chargeCounted("kvm.create_vcpu", ctx_.costs().kvmCreateVcpu);
}

sim::SimTime
KvmVm::setUserMemoryRegion()
{
    if (!created_)
        sim::panic("KvmVm::setUserMemoryRegion before createVm");
    const auto &costs = ctx_.costs();
    sim::SimTime t = costs.kvmSetRegionBase;
    const sim::SimTime per_region = config_.pmlEnabled
                                        ? costs.kvmSetRegionPerRegionPml
                                        : costs.kvmSetRegionPerRegionNoPml;
    t += per_region * static_cast<std::int64_t>(regions_);
    if (config_.pmlEnabled) {
        t += costs.kvmPmlFlushPerVcpu *
             static_cast<std::int64_t>(std::max(vcpus_, 1));
    }
    ++regions_;
    ctx_.chargeCounted("kvm.set_memory_region", t);
    return t;
}

void
KvmVm::setUserMemoryRegions(int n)
{
    for (int i = 0; i < n; ++i)
        setUserMemoryRegion();
}

} // namespace catalyzer::hostos
