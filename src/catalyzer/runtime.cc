#include "catalyzer/runtime.h"

#include <algorithm>
#include <cmath>

#include "guest/syscall_policy.h"
#include "net/remote_pager.h"
#include "prefetch/fault_recorder.h"
#include "prefetch/prefetcher.h"
#include "sim/clock.h"
#include "sim/logging.h"
#include "snapshot/io_reconnect.h"

namespace catalyzer::core {

using sandbox::BootKind;
using sandbox::BootReport;
using sandbox::BootResult;
using sandbox::FunctionArtifacts;
using sandbox::SandboxInstance;

CatalyzerRuntime::CatalyzerRuntime(sandbox::Machine &machine,
                                   CatalyzerOptions options)
    : machine_(machine), options_(options),
      injector_(options.faults, &machine.ctx().clock()),
      zygotes_(machine), images_(machine.ctx()),
      lang_registry_(machine)
{
    zygotes_.setFaultInjector(&injector_);
    images_.setFaultInjector(&injector_);
    images_.configureChunks(options_.chunkedImages);
    if (options_.useZygote && options_.zygotePrewarm > 0)
        zygotes_.prewarm(options_.zygotePrewarm);
}

BootResult
CatalyzerRuntime::bootCold(FunctionArtifacts &fn,
                           trace::TraceContext trace)
{
    BootResult result = bootRestore(fn, /*warm=*/false, trace);
    machine_.ctx().stats().observe("boot.latency.Catalyzer-cold",
                                   result.report.total());
    return result;
}

BootResult
CatalyzerRuntime::bootWarm(FunctionArtifacts &fn,
                           trace::TraceContext trace)
{
    // Warm boot presumes earlier instances: establish the shared base
    // (and the I/O cache) with one offline cold boot if missing.
    if (!fn.sharedBase) {
        // The primer instance is dropped immediately; the Base-EPT and
        // the I/O cache survive in the artifacts. It is offline work,
        // so it stays out of the trace and the latency histograms.
        bootRestore(fn, /*warm=*/false);
    }
    BootResult result = bootRestore(fn, /*warm=*/true, trace);
    machine_.ctx().stats().observe("boot.latency.Catalyzer-warm",
                                   result.report.total());
    return result;
}

std::shared_ptr<snapshot::FuncImage>
CatalyzerRuntime::fetchRemoteImage(FunctionArtifacts &fn,
                                   trace::TraceContext trace)
{
    auto &ctx = machine_.ctx();
    const auto format = snapshot::ImageFormat::SeparatedWellFormed;
    const faults::RetryPolicy &retry = injector_.retry();
    const int max_attempts = std::max(1, retry.maxAttempts);
    for (int attempt = 1;; ++attempt) {
        auto image = images_.fetch(fn.app().name, format, trace);
        if (image)
            return image;
        if (!images_.publishedRemotely(fn.app().name, format))
            sim::panic("fetchRemoteImage: %s was never published",
                       fn.app().name.c_str());
        // Injected transfer failure (the store already charged the
        // attempt timeout); back off and retry until the budget runs
        // out, then fail the restore tier.
        if (attempt >= max_attempts)
            throw faults::FaultError(
                faults::FaultSite::ImageFetch,
                "remote fetch of " + fn.app().name + " failed after " +
                    std::to_string(max_attempts) + " attempts");
        ctx.stats().incr("catalyzer.image_fetch_retries");
        ctx.charge(retry.backoff(attempt, injector_.rng()));
    }
}

std::shared_ptr<snapshot::FuncImage>
CatalyzerRuntime::acquireImage(FunctionArtifacts &fn,
                               trace::TraceContext trace)
{
    auto &ctx = machine_.ctx();
    trace::ScopedSpan span(trace, "image-acquire");
    span.attr("remote", options_.remoteImages ? "true" : "false");
    const bool was_built = static_cast<bool>(fn.separatedImage);
    auto image = sandbox::ensureSeparatedImage(fn);

    if (options_.remoteImages) {
        // A freshly built image stands for one produced elsewhere: it
        // goes to remote storage and this machine must fetch it.
        if (!was_built) {
            images_.publish(image);
            images_.evictLocal(fn.app().name,
                               snapshot::ImageFormat::SeparatedWellFormed);
        }
        image = fetchRemoteImage(fn, span.context());
    }

    if (options_.verifyImages) {
        const int max_rebuilds =
            std::max(1, injector_.retry().maxAttempts);
        for (int rebuild = 0;; ++rebuild) {
            // Injected storage rot hits the image just before the
            // integrity check would catch it.
            if (injector_.shouldFail(faults::FaultSite::ImageCorruption,
                                     ctx.stats()))
                image->markCorrupted();
            if (snapshot::verifyImage(ctx, *image))
                break;
            if (rebuild >= max_rebuilds)
                throw faults::FaultError(
                    faults::FaultSite::ImageCorruption,
                    fn.app().name + " image still corrupted after " +
                        std::to_string(max_rebuilds) + " rebuilds");
            // Corrupted image: rebuild from a fresh checkpoint
            // (offline) and republish, then continue with the clean
            // copy.
            ctx.stats().incr("catalyzer.image_rebuilds");
            fn.separatedImage.reset();
            // Any Base-EPT over the bad image must not serve new boots;
            // live instances keep their shared_ptr until they exit.
            fn.sharedBase.reset();
            fn.firstRestoreDone = false;
            image = sandbox::ensureSeparatedImage(fn);
            if (options_.remoteImages) {
                // Symmetric with the initial-publish path: the rebuilt
                // image goes to remote storage and this machine pays
                // the re-fetch, it does not keep the locally built
                // copy for free.
                images_.publish(image);
                images_.evictLocal(
                    fn.app().name,
                    snapshot::ImageFormat::SeparatedWellFormed);
                image = fetchRemoteImage(fn, span.context());
                ctx.stats().incr(
                    "catalyzer.image_refetch_after_rebuild");
            }
        }
    }
    return image;
}

std::shared_ptr<prefetch::WorkingSetManifest>
CatalyzerRuntime::ensureWorkingSet(FunctionArtifacts &fn,
                                   const snapshot::FuncImage &image)
{
    if (!options_.recordWorkingSet && !options_.prefetchWorkingSet)
        return nullptr;
    auto &ctx = machine_.ctx();

    if (!fn.workingSet)
        fn.workingSet = images_.fetchManifest(fn.app().name);

    if (fn.workingSet && !fn.workingSet->matches(image.generation())) {
        // The image was rebuilt (warming, corruption repair): the
        // recorded pages describe the old layout. Drop the manifest and
        // fall back to demand paging while a fresh one is recorded.
        ctx.stats().incr("prefetch.manifest_stale");
        fn.workingSet.reset();
        images_.dropManifest(fn.app().name);
    }

    if (!fn.workingSet && options_.recordWorkingSet) {
        fn.workingSet = std::make_shared<prefetch::WorkingSetManifest>(
            fn.app().name, image.generation(), options_.workingSetTraces,
            options_.workingSetMinFraction);
    }

    if (fn.workingSet && fn.workingSet->dirty()) {
        // A trace was merged since the last boot: publish the manifest
        // next to the func-image (asynchronous background work).
        images_.publishManifest(*fn.workingSet);
        fn.workingSet->markPublished();
    }
    return fn.workingSet;
}

BootResult
CatalyzerRuntime::bootRestore(FunctionArtifacts &fn, bool warm,
                              trace::TraceContext trace)
{
    auto &ctx = machine_.ctx();
    const auto &costs = ctx.costs();
    const apps::AppProfile &app = fn.app();

    sim::StatRegistry::incrGlobal("bench.boots");
    trace::ScopedSpan boot_span(
        trace, std::string("boot/Catalyzer-") + (warm ? "warm" : "cold"));
    boot_span.attr("function", app.name);
    const trace::TraceContext tctx = boot_span.context();

    // Offline build / remote fetch / integrity check as configured.
    auto image = acquireImage(fn, tctx);

    BootResult result;
    result.report.bindTrace(tctx);
    sim::Stopwatch watch(ctx.clock());
    const std::string tag =
        (warm ? "warm" : "cold") + std::to_string(boot_seq_++);

    //
    // Sandbox acquisition. Warm boots specialize a Zygote; cold boots
    // construct the sandbox on the path (with the tuned host: PML off,
    // kvcalloc cache on), matching the paper's Catalyzer-restore.
    //
    std::unique_ptr<SandboxInstance> inst;
    if (warm && options_.useZygote) {
        {
            trace::ScopedSpan span(tctx, "sandbox-acquire");
            span.attr("mechanism", "zygote");
            Zygote z = zygotes_.acquire(span.context());
            inst = std::make_unique<SandboxInstance>(
                machine_, fn, app.name + "-" + tag, *z.proc,
                BootKind::WarmRestore);
            inst->setGuest(std::move(z.guest));
        }
        result.report.addSandboxStage("zygote-acquire", watch.elapsed(),
                                      /*emit_span=*/false);
    } else {
        {
            trace::ScopedSpan span(tctx, "sandbox-acquire");
            span.attr("mechanism", "construct");
            ctx.charge(costs.parseConfig);
            inst = sandbox::makeBareInstance(
                fn, warm ? BootKind::WarmRestore : BootKind::ColdRestore,
                tag.c_str());
            sandbox::constructGVisorSandbox(*inst, ZygotePool::kvmConfig(),
                                            span.context());
        }
        result.report.addSandboxStage("construct-sandbox",
                                      watch.elapsed(),
                                      /*emit_span=*/false);
    }
    watch.restart();

    //
    // Specialize: append the function config, import its binaries and
    // mount the function rootfs over the base.
    //
    ctx.charge(costs.zygoteAppendConfig);
    const std::size_t binary_mib =
        mem::bytesForPages(app.binaryPages) >> 20;
    ctx.charge(costs.zygoteImportPerMiB *
               static_cast<std::int64_t>(std::max<std::size_t>(
                   binary_mib, 1)));
    const mem::PageIndex binary_va = inst->space().mapFile(
        fn.binary(), 0, app.binaryPages, mem::MapKind::FilePrivate,
        false, "binary");
    inst->guest().mountRootfs(1);
    inst->setRootfs(std::make_unique<vfs::OverlayRootfs>(
        ctx, fn.fsServer()));
    result.report.addSandboxStage("specialize", watch.elapsed());
    watch.restart();

    //
    // Overlay memory: map the func-image (cold) or share the live
    // Base-EPT (warm).
    //
    const bool cold_cache = !warm && !fn.firstRestoreDone;
    mem::PageIndex base_va = 0;
    {
        trace::ScopedSpan span(tctx, "overlay-map");
        span.attr("mechanism", warm ? "share-base-ept" : "map-image");
        span.attr("image_pages",
                  static_cast<std::int64_t>(image->totalPages()));
        if (!fn.sharedBase) {
            ctx.charge(costs.imageManifestParse);
            fn.sharedBase = std::make_shared<mem::BaseMapping>(
                machine_.frames(), image->file(), 0, image->totalPages(),
                app.name + "-base");
        } else if (!warm) {
            ctx.charge(costs.imageManifestParse);
        }
        base_va = inst->space().attachBase(fn.sharedBase);
    }
    const mem::PageIndex heap_va = base_va + image->memorySectionStart();
    const std::size_t heap_pages = image->state().memoryPages;
    if (!options_.overlayMemory) {
        // Ablation: eagerly fault and copy the whole memory section.
        inst->space().touchRange(heap_va, heap_pages, /*write=*/true,
                                 cold_cache);
    }
    result.report.addAppStage(warm ? "share-mapping" : "map-image",
                              watch.elapsed(), /*emit_span=*/false);
    watch.restart();

    //
    // Working-set prefetch (REAP-style): load the recorded stable set
    // into the just-established Base-EPT in large batched reads, so the
    // first request demand-pages only what the manifest missed. The
    // recording window for refining the manifest is armed further down,
    // once the instance is assembled.
    //
    std::shared_ptr<prefetch::WorkingSetManifest> manifest =
        ensureWorkingSet(fn, *image);
    std::vector<mem::PageIndex> prefetched_set;
    if (options_.prefetchWorkingSet) {
        trace::ScopedSpan span(tctx, "prefetch");
        if (manifest && manifest->usable()) {
            ctx.stats().incr("prefetch.manifest_hits");
            std::vector<mem::PageIndex> stable = manifest->stableSet();
            span.attr("stable_pages",
                      static_cast<std::int64_t>(stable.size()));
            span.attr("traces",
                      static_cast<std::int64_t>(manifest->traceCount()));
            prefetch::prefetchIntoBase(ctx, *fn.sharedBase, stable,
                                       options_.prefetchBatchPages,
                                       span.context());
            prefetched_set = std::move(stable);
        } else {
            // Missing or still-empty manifest: plain demand paging.
            ctx.stats().incr("prefetch.manifest_misses");
            span.attr("skipped", manifest ? "manifest-empty"
                                          : "manifest-missing");
        }
        result.report.addAppStage("prefetch", watch.elapsed(),
                                  /*emit_span=*/false);
        watch.restart();
    }

    //
    // Arm the restore-to-first-response recording window: refine the
    // manifest while it is not frozen, and audit a prefetched set
    // against the pages the window actually touches (hit rate, wasted
    // pages). The window closes at the end of the first invocation.
    //
    const bool record_trace =
        manifest && options_.recordWorkingSet && !manifest->frozen();
    if (record_trace || !prefetched_set.empty()) {
        auto recorder = std::make_unique<prefetch::FaultRecorder>(
            base_va, image->totalPages());
        if (record_trace)
            recorder->enableRecording(manifest);
        if (!prefetched_set.empty())
            recorder->enableAudit(std::move(prefetched_set));
        inst->armWorkingSetRecorder(std::move(recorder));
    }

    //
    // Separated state recovery: stage-1 map + stage-2 parallel fix-up,
    // then establish non-I/O kernel state.
    //
    {
        trace::ScopedSpan span(tctx, "separated-state-fixup");
        span.attr("separated",
                  options_.separatedState ? "true" : "false");
        span.attr("objects", static_cast<std::int64_t>(
                                 image->separated().objectCount()));
        span.attr("relocs", static_cast<std::int64_t>(
                                image->separated().relocCount()));
        const trace::TraceContext fctx = span.context();
        objgraph::ObjectGraph graph = options_.separatedState
            ? image->separated().reconstruct(fctx)
            : [&] {
                  // Ablation: one-by-one deserialization on the path.
                  const auto n = static_cast<std::int64_t>(
                      image->separated().objectCount());
                  ctx.chargeCounted("restore.deserialized_objects",
                                    costs.deserializeObject * n, n);
                  return image->separated().reconstruct(fctx);
              }();
        const auto nobjects =
            static_cast<std::int64_t>(graph.objectCount());
        if (options_.separatedState) {
            const auto nrelocs = static_cast<std::int64_t>(
                image->separated().relocCount());
            ctx.chargeParallel(costs.relationFixupPerPointer, nrelocs);
            ctx.stats().incr("catalyzer.pointer_fixups", nrelocs);
            // Stage-2 dirties the pointer-bearing arena pages: real COW
            // faults against the shared image mapping (Table 3's cost).
            const mem::PageIndex arena_va =
                base_va + image->metadataSectionStart();
            for (std::uint64_t rel :
                 image->separated().pointerPageList())
                inst->space().touch(arena_va + rel, /*write=*/true,
                                    cold_cache);
            ctx.chargeParallel(costs.redoObject, nobjects);
            ctx.charge(costs.redoObjectSequentialPart * nobjects);
        } else {
            ctx.charge((costs.redoObject +
                        costs.redoObjectSequentialPart) *
                       nobjects);
        }
        inst->guest().setState(std::move(graph));
        for (int i = 0; i < app.blockingThreads; ++i)
            inst->guest().threads().addBlockingThread();
    }
    result.report.addAppStage("recover-kernel", watch.elapsed(),
                              /*emit_span=*/false);
    watch.restart();

    //
    // I/O: copy the checkpointed connection table; reconnect lazily
    // (guided by the I/O cache on warm boots) or eagerly (ablation).
    //
    {
        trace::ScopedSpan span(tctx, "io-reconnect");
        span.attr("lazy",
                  options_.lazyIoReconnection ? "true" : "false");
        span.attr("connections",
                  static_cast<std::int64_t>(image->ioTable().size()));
        const trace::TraceContext ictx = span.context();
        inst->guest().io().cloneFrom(image->ioTable());
        inst->guest().io().dropAll();
        if (!options_.lazyIoReconnection) {
            // Eager ablation: a connection whose retries all fail stays
            // down and re-establishes lazily at the first request.
            for (auto &conn : inst->guest().io().all())
                snapshot::reconnectWithRetry(ctx, conn, &fn.fsServer(),
                                             &injector_, ictx);
        } else {
            // Deferring is not free: each fd is tagged not-reopened and
            // the async re-establishment is queued.
            ctx.charge(costs.ioLazyMarkPerConn *
                       static_cast<std::int64_t>(
                           inst->guest().io().count()));
            if (warm && !fn.ioCache.empty()) {
                // The cache tells us which connections the function
                // uses right after boot; re-establish exactly those on
                // the path.
                for (auto &conn : inst->guest().io().all()) {
                    if (!conn.usedAtStartup)
                        continue;
                    if (!snapshot::reconnectWithRetry(
                            ctx, conn, &fn.fsServer(), &injector_,
                            ictx)) {
                        // Repeatedly failing entry: invalidate it so
                        // later boots stop reconnecting it eagerly;
                        // this boot degrades it to a lazy reconnect at
                        // the first request.
                        std::erase_if(
                            fn.ioCache,
                            [&](const vfs::IoConnection &cached) {
                                return cached.path == conn.path;
                            });
                        ctx.stats().incr(
                            "catalyzer.io_cache_invalidated");
                        ctx.stats().incr(
                            "boot.fallback.io_eager_lazy");
                    }
                }
                span.attr("cache_hit", "true");
                ctx.stats().incr("catalyzer.io_cache_hits");
            }
        }
        if (!warm && options_.lazyIoReconnection && fn.ioCache.empty()) {
            // First cold boot records the deterministic startup set.
            for (const auto &conn : inst->guest().io().all()) {
                if (conn.usedAtStartup)
                    fn.ioCache.push_back(conn);
            }
        }
        inst->guest().syncFdTable();
    }
    result.report.addAppStage("reconnect-io", watch.elapsed(),
                              /*emit_span=*/false);

    inst->setMemoryLayout(binary_va, heap_va, heap_pages,
                          /*heap_on_base=*/true);
    // A warmed image (user-guided pre-initialization) carries the
    // handler's preparation work; restored instances skip it.
    inst->setPrepFraction(image->state().warmedPrepFraction);
    inst->proc().setThreadCount(inst->guest().threads().totalThreads());
    inst->setBootLatency(result.report.total());
    fn.firstRestoreDone = true;
    ctx.stats().incr(warm ? "catalyzer.warm_boots"
                          : "catalyzer.cold_boots");
    sim::debugLog("boot Catalyzer-%s/%s: %.3f ms",
                  warm ? "warm" : "cold", app.name.c_str(),
                  result.report.total().toMs());
    result.instance = std::move(inst);
    return result;
}

std::unique_ptr<SandboxInstance>
CatalyzerRuntime::sforkFrom(SandboxInstance &tmpl, FunctionArtifacts &fn,
                            BootReport &report, const char *tag,
                            trace::TraceContext trace)
{
    auto &ctx = machine_.ctx();
    const auto &costs = ctx.costs();
    sim::Stopwatch watch(ctx.clock());

    // Injected sfork failures fail before the child exists; retries are
    // cheap, and exhaustion fails the fork tier (degrades to warm).
    injector_.checkWithRetry(ctx, faults::FaultSite::Sfork);

    hostos::SforkOptions opts;
    opts.childName = fn.app().name + "-" + tag;
    opts.rerandomizeAslr = options_.aslrRerandomizeOnSfork;
    std::unique_ptr<SandboxInstance> inst;
    {
        trace::ScopedSpan span(trace, "sfork");
        span.attr("template", tmpl.name());
        span.attr("rerandomize_aslr",
                  opts.rerandomizeAslr ? "true" : "false");
        hostos::HostProcess &child =
            machine_.host().sfork(tmpl.proc(), opts);
        inst = std::make_unique<SandboxInstance>(
            machine_, fn, opts.childName, child, BootKind::ForkBoot);
    }
    report.addSandboxStage("sfork", watch.elapsed(),
                           /*emit_span=*/false);
    watch.restart();

    trace::ScopedSpan expand_span(trace, "expand");

    // Guest state: the object graph and fd tables live in COWed memory;
    // the child re-expands its threads from the saved contexts and fixes
    // the handled-syscall state (Table 1).
    auto guest = std::make_unique<guest::GuestKernel>(
        ctx, opts.childName + "-kernel");
    guest->setState(tmpl.guest().state());
    guest->threads().adoptTransientState(tmpl.guest().threads());
    guest->threads().expandFromTransient();
    guest->io().cloneFrom(tmpl.guest().io().all());
    // Read-only file descriptors stay valid across sfork; sockets
    // must reconnect (lazily, via the Reconnect handler).
    for (auto &conn : guest->io().all()) {
        conn.established =
            conn.established && conn.kind != vfs::ConnKind::Socket;
    }
    guest->syncFdTable();
    const auto handled = static_cast<std::int64_t>(
        guest::countSyscallsWithClass(guest::SyscallClass::Handled));
    ctx.charge(costs.syscallBase * handled);

    inst->setGuest(std::move(guest));
    if (tmpl.rootfs())
        inst->setRootfs(tmpl.rootfs()->clone());
    inst->setMemoryLayout(0, tmpl.heapVa(), tmpl.heapPages(),
                          tmpl.heapOnBase());
    inst->setPrepFraction(tmpl.prepFraction());
    inst->proc().setThreadCount(inst->guest().threads().totalThreads());
    report.addSandboxStage("expand", watch.elapsed(),
                           /*emit_span=*/false);
    ctx.stats().incr("catalyzer.fork_boots");
    return inst;
}

BootResult
CatalyzerRuntime::bootFork(FunctionArtifacts &fn,
                           trace::TraceContext trace)
{
    SandboxInstance &tmpl = ensureTemplate(fn); // offline
    if (injector_.shouldFail(faults::FaultSite::TemplateDeath,
                             machine_.ctx().stats())) {
        // The template sandbox died (crash, OOM-kill). No retry makes
        // sense — drop it so a later fork boot rebuilds it offline, and
        // fail the fork tier now (degrades to warm).
        dropTemplate(fn.app().name);
        machine_.ctx().stats().incr("catalyzer.template_deaths");
        throw faults::FaultError(faults::FaultSite::TemplateDeath,
                                 fn.app().name + " template died");
    }
    sim::StatRegistry::incrGlobal("bench.boots");
    trace::ScopedSpan boot_span(trace, "boot/Catalyzer-sfork");
    boot_span.attr("function", fn.app().name);
    BootResult result;
    result.report.bindTrace(boot_span.context());
    result.instance = sforkFrom(
        tmpl, fn, result.report,
        ("fork" + std::to_string(boot_seq_++)).c_str(),
        boot_span.context());
    result.instance->setBootLatency(result.report.total());
    machine_.ctx().stats().observe("boot.latency.Catalyzer-sfork",
                                   result.report.total());
    return result;
}

BootResult
CatalyzerRuntime::bootRemoteFork(FunctionArtifacts &fn,
                                 const RemoteForkSource &src,
                                 trace::TraceContext trace)
{
    auto &ctx = machine_.ctx();
    const auto &costs = ctx.costs();
    const apps::AppProfile &app = fn.app();
    std::shared_ptr<snapshot::FuncImage> image = src.image;

    // The lender may be gone by the time the fork request arrives; like
    // template death, no retry makes sense — fail the tier now so the
    // platform degrades to the local chain.
    if (injector_.shouldFail(faults::FaultSite::RemotePeerDeath,
                             ctx.stats())) {
        ctx.stats().incr("remote.peer_lost");
        throw faults::FaultError(faults::FaultSite::RemotePeerDeath,
                                 app.name + " fork peer " +
                                     std::to_string(src.peer) +
                                     " unreachable");
    }

    sim::StatRegistry::incrGlobal("bench.boots");
    trace::ScopedSpan boot_span(trace, "boot/Catalyzer-remote-sfork");
    boot_span.attr("function", app.name);
    boot_span.attr("peer", static_cast<std::int64_t>(src.peer));
    const trace::TraceContext tctx = boot_span.context();

    BootResult result;
    result.report.bindTrace(tctx);
    sim::Stopwatch watch(ctx.clock());
    const std::string tag = "rfork" + std::to_string(boot_seq_++);

    //
    // Lender-side half of the stitched trace: a "lend-template" span in
    // the *lender's* tracer carrying the borrower's distributed trace
    // id, open from the handshake through the working-set pull. The
    // fleet exporter lines both halves up by that shared id.
    //
    trace::TraceContext peer_ctx;
    if (src.peerTracer != nullptr && src.peerClock != nullptr &&
        tctx.enabled())
        peer_ctx = tctx.withTracer(*src.peerTracer, *src.peerClock);
    trace::ScopedSpan lend_span(peer_ctx, "lend-template");
    if (lend_span.id() != 0) {
        lend_span.attr("function", app.name);
        lend_span.attr("borrower", static_cast<std::int64_t>(src.self));
    }

    //
    // Handshake: one round trip fetches the fork descriptor (the
    // template's layout, thread contexts and relation-table index) from
    // the lender. The memory itself stays remote.
    //
    {
        trace::ScopedSpan span(tctx, "remote-handshake");
        span.attr("peer", static_cast<std::int64_t>(src.peer));
        src.fabric->transfer(ctx, src.peer, src.self, 4096,
                             "fork-descriptor", span.context());
    }
    result.report.addSandboxStage("remote-handshake", watch.elapsed(),
                                  /*emit_span=*/false);
    watch.restart();

    //
    // Sandbox acquisition: the borrowed state lands in a local sandbox —
    // a specialized Zygote when available, else one built on the path.
    //
    std::unique_ptr<SandboxInstance> inst;
    if (options_.useZygote) {
        {
            trace::ScopedSpan span(tctx, "sandbox-acquire");
            span.attr("mechanism", "zygote");
            Zygote z = zygotes_.acquire(span.context());
            inst = std::make_unique<SandboxInstance>(
                machine_, fn, app.name + "-" + tag, *z.proc,
                BootKind::ForkBoot);
            inst->setGuest(std::move(z.guest));
        }
        result.report.addSandboxStage("zygote-acquire", watch.elapsed(),
                                      /*emit_span=*/false);
    } else {
        {
            trace::ScopedSpan span(tctx, "sandbox-acquire");
            span.attr("mechanism", "construct");
            ctx.charge(costs.parseConfig);
            inst = sandbox::makeBareInstance(fn, BootKind::ForkBoot,
                                             tag.c_str());
            sandbox::constructGVisorSandbox(*inst, ZygotePool::kvmConfig(),
                                            span.context());
        }
        result.report.addSandboxStage("construct-sandbox",
                                      watch.elapsed(),
                                      /*emit_span=*/false);
    }
    watch.restart();

    //
    // Specialize, exactly as a local restore would.
    //
    ctx.charge(costs.zygoteAppendConfig);
    const std::size_t binary_mib =
        mem::bytesForPages(app.binaryPages) >> 20;
    ctx.charge(costs.zygoteImportPerMiB *
               static_cast<std::int64_t>(std::max<std::size_t>(
                   binary_mib, 1)));
    const mem::PageIndex binary_va = inst->space().mapFile(
        fn.binary(), 0, app.binaryPages, mem::MapKind::FilePrivate,
        false, "binary");
    inst->guest().mountRootfs(1);
    inst->setRootfs(std::make_unique<vfs::OverlayRootfs>(
        ctx, fn.fsServer()));
    result.report.addSandboxStage("specialize", watch.elapsed());
    watch.restart();

    //
    // Remote overlay: a Base-EPT over a *local mirror* of the lender's
    // image, starting empty. Creating it (first borrow, or a lender
    // image rebuild) streams the metadata section — the arena and
    // relation table the fixup below walks — in one batched transfer;
    // everything else arrives later, pulled on demand.
    //
    if (fn.remoteBase && fn.remoteGeneration != image->generation()) {
        fn.remoteBase.reset();
        fn.remoteMirror.reset();
        ctx.stats().incr("remote.mirror_invalidated");
    }
    mem::PageIndex base_va = 0;
    {
        trace::ScopedSpan span(tctx, "remote-overlay");
        span.attr("image_pages",
                  static_cast<std::int64_t>(image->totalPages()));
        if (!fn.remoteBase) {
            ctx.charge(costs.imageManifestParse);
            fn.remoteMirror = std::make_unique<mem::BackingFile>(
                machine_.frames(), app.name + "-remote-mirror",
                image->totalPages());
            fn.remoteBase = std::make_shared<mem::BaseMapping>(
                machine_.frames(), *fn.remoteMirror, 0,
                image->totalPages(), app.name + "-remote-base");
            fn.remoteGeneration = image->generation();
            const std::size_t meta_pages = image->metadataSectionPages();
            src.fabric->transfer(ctx, src.peer, src.self,
                                 mem::bytesForPages(meta_pages),
                                 "image-metadata", span.context());
            for (std::size_t i = 0; i < meta_pages; ++i)
                fn.remoteBase->populatePrefetched(
                    ctx, image->metadataSectionStart() + i);
            span.attr("metadata_pages",
                      static_cast<std::int64_t>(meta_pages));
        }
        base_va = inst->space().attachBase(fn.remoteBase);
    }
    const mem::PageIndex heap_va = base_va + image->memorySectionStart();
    const std::size_t heap_pages = image->state().memoryPages;
    result.report.addAppStage("map-remote-image", watch.elapsed(),
                              /*emit_span=*/false);
    watch.restart();

    //
    // Working-set pull: the lender's manifest tells us which pages the
    // first request will need; stream the stable set in one batched
    // transfer instead of faulting it page by page over the fabric.
    //
    if (src.manifest && src.manifest->usable() &&
        src.manifest->matches(image->generation())) {
        trace::ScopedSpan span(tctx, "remote-prefetch");
        std::vector<mem::PageIndex> stable = src.manifest->stableSet();
        std::size_t pulled = 0;
        for (mem::PageIndex page : stable) {
            if (page >= image->totalPages() ||
                fn.remoteBase->lookup(page))
                continue;
            ++pulled;
        }
        span.attr("stable_pages",
                  static_cast<std::int64_t>(stable.size()));
        span.attr("pulled_pages", static_cast<std::int64_t>(pulled));
        if (pulled > 0) {
            src.fabric->transfer(ctx, src.peer, src.self,
                                 mem::bytesForPages(pulled),
                                 "working-set", span.context());
            for (mem::PageIndex page : stable) {
                if (page >= image->totalPages() ||
                    fn.remoteBase->lookup(page))
                    continue;
                fn.remoteBase->populatePrefetched(ctx, page);
            }
            ctx.stats().incr("remote.prefetch_pages",
                             static_cast<std::int64_t>(pulled));
        }
        result.report.addAppStage("remote-prefetch", watch.elapsed(),
                                  /*emit_span=*/false);
        watch.restart();
    }

    //
    // Separated state recovery against the mirrored metadata (already
    // local, so the fixup runs at memory speed like a local restore).
    //
    {
        trace::ScopedSpan span(tctx, "separated-state-fixup");
        span.attr("separated",
                  options_.separatedState ? "true" : "false");
        span.attr("objects", static_cast<std::int64_t>(
                                 image->separated().objectCount()));
        const trace::TraceContext fctx = span.context();
        objgraph::ObjectGraph graph = image->separated().reconstruct(fctx);
        const auto nobjects =
            static_cast<std::int64_t>(graph.objectCount());
        const auto nrelocs = static_cast<std::int64_t>(
            image->separated().relocCount());
        ctx.chargeParallel(costs.relationFixupPerPointer, nrelocs);
        ctx.stats().incr("catalyzer.pointer_fixups", nrelocs);
        const mem::PageIndex arena_va =
            base_va + image->metadataSectionStart();
        for (std::uint64_t rel : image->separated().pointerPageList())
            inst->space().touch(arena_va + rel, /*write=*/true);
        ctx.chargeParallel(costs.redoObject, nobjects);
        ctx.charge(costs.redoObjectSequentialPart * nobjects);
        inst->guest().setState(std::move(graph));
        for (int i = 0; i < app.blockingThreads; ++i)
            inst->guest().threads().addBlockingThread();
    }
    result.report.addAppStage("recover-kernel", watch.elapsed(),
                              /*emit_span=*/false);
    watch.restart();

    //
    // I/O: connections never survive a machine boundary — everything
    // reconnects on this machine (lazily unless ablated).
    //
    {
        trace::ScopedSpan span(tctx, "io-reconnect");
        span.attr("lazy",
                  options_.lazyIoReconnection ? "true" : "false");
        span.attr("connections",
                  static_cast<std::int64_t>(image->ioTable().size()));
        inst->guest().io().cloneFrom(image->ioTable());
        inst->guest().io().dropAll();
        if (!options_.lazyIoReconnection) {
            for (auto &conn : inst->guest().io().all())
                snapshot::reconnectWithRetry(ctx, conn, &fn.fsServer(),
                                             &injector_, span.context());
        } else {
            ctx.charge(costs.ioLazyMarkPerConn *
                       static_cast<std::int64_t>(
                           inst->guest().io().count()));
        }
        inst->guest().syncFdTable();
    }
    result.report.addAppStage("reconnect-io", watch.elapsed(),
                              /*emit_span=*/false);

    //
    // Everything the boot did not pull stays remote: install the pager
    // as the instance's lifetime fault observer, so later Base-EPT
    // fills inside the mirrored window also cross the fabric (batched,
    // MITOSIS-style). Working-set recording is skipped for borrowed
    // instances — the lender owns the manifest.
    //
    lend_span.finish();
    inst->setLifetimePager(std::make_unique<net::RemotePager>(
        ctx, *src.fabric, src.self, src.peer, base_va,
        image->totalPages(), &injector_, options_.remotePullBatchPages,
        tctx, peer_ctx));

    inst->setMemoryLayout(binary_va, heap_va, heap_pages,
                          /*heap_on_base=*/true);
    inst->setPrepFraction(image->state().warmedPrepFraction);
    inst->proc().setThreadCount(inst->guest().threads().totalThreads());
    inst->setBootLatency(result.report.total());
    ctx.stats().incr("catalyzer.remote_fork_boots");
    ctx.stats().incr("remote.fork_hits");
    ctx.stats().observe("boot.latency.Catalyzer-remote-sfork",
                        result.report.total());
    sim::debugLog("boot Catalyzer-remote-sfork/%s from node %u: %.3f ms",
                  app.name.c_str(), src.peer,
                  result.report.total().toMs());
    result.instance = std::move(inst);
    return result;
}

BootResult
CatalyzerRuntime::bootFromLanguageTemplate(FunctionArtifacts &fn,
                                           trace::TraceContext trace)
{
    auto &ctx = machine_.ctx();
    const auto &costs = ctx.costs();
    const apps::AppProfile &app = fn.app();
    SandboxInstance &tmpl = ensureLanguageTemplate(app.language);

    sim::StatRegistry::incrGlobal("bench.boots");
    trace::ScopedSpan boot_span(trace, "boot/Catalyzer-lang-template");
    boot_span.attr("function", app.name);
    boot_span.attr("language", apps::languageName(app.language));
    BootResult result;
    result.report.bindTrace(boot_span.context());
    result.instance = sforkFrom(
        tmpl, fn, result.report,
        ("lang" + std::to_string(boot_seq_++)).c_str(),
        boot_span.context());
    SandboxInstance &inst = *result.instance;
    sim::Stopwatch watch(ctx.clock());

    //
    // Load the function on demand: its own classes/modules beyond the
    // runtime core the template preloaded, its binary, and any heap it
    // needs beyond the template's.
    //
    const apps::AppProfile &base =
        tmpl.artifacts().app(); // the language's hello app
    const auto core = static_cast<std::size_t>(
        options_.languageTemplateCoreFraction *
        static_cast<double>(base.modulesLoaded));
    const std::size_t extra_modules =
        app.modulesLoaded > core ? app.modulesLoaded - core : 0;
    ctx.charge(app.perModuleCost *
               static_cast<std::int64_t>(extra_modules) *
               costs.gvisorAppInitFactor);

    const mem::PageIndex binary_va = inst.space().mapFile(
        fn.binary(), 0, app.binaryPages, mem::MapKind::FilePrivate,
        false, "fn-binary");
    inst.space().touchRange(binary_va, app.binaryPages / 4,
                            /*write=*/false, !fn.firstBootDone);

    if (app.heapPages() > tmpl.heapPages()) {
        const std::size_t extra = app.heapPages() - tmpl.heapPages();
        const mem::PageIndex extra_va =
            inst.space().mapAnon(extra, true, "fn-heap");
        inst.space().touchRange(extra_va, extra, /*write=*/true);
    }

    // The function's own I/O connections are opened as it initializes,
    // beyond the ones inherited from the language template.
    const std::size_t inherited = inst.guest().io().count();
    for (std::size_t i = inherited; i < app.ioConnections; ++i) {
        const bool socket = i % 4 == 1;
        if (socket) {
            ctx.charge(costs.openSocket);
            inst.guest().io().add(vfs::ConnKind::Socket,
                                  "tcp://backend:" + std::to_string(i),
                                  i < app.ioConnections / 4, i % 2 == 0);
        } else {
            vfs::FdEntry entry;
            const std::string path =
                "/app/data/conn" + std::to_string(i);
            fn.fsServer().openReadOnly(path, &entry);
            inst.guest().io().add(vfs::ConnKind::File, path,
                                  i < app.ioConnections / 4, i % 2 == 0);
        }
    }
    inst.guest().setState(objgraph::ObjectGraph::synthesize(
        ctx.rng(), app.graphSpec()));
    result.report.addAppStage("load-function", watch.elapsed());

    inst.setBootLatency(result.report.total());
    ctx.stats().observe("boot.latency.Catalyzer-lang-template",
                        result.report.total());
    ctx.stats().incr("catalyzer.lang_template_boots");
    return result;
}

SandboxInstance &
CatalyzerRuntime::ensureTemplate(FunctionArtifacts &fn)
{
    auto it = templates_.find(fn.app().name);
    if (it != templates_.end())
        return *it->second;

    // Offline template initialization: restore an instance to the
    // func-entry point. The template is a *running* sandbox, so its I/O
    // connections come up (offline) before it collapses into the
    // transient single-thread state for sforking.
    BootResult boot = bootRestore(fn, /*warm=*/false);
    std::unique_ptr<SandboxInstance> tmpl = std::move(boot.instance);
    // Offline bring-up tolerates reconnect faults: a connection whose
    // retries fail stays down and children reconnect it lazily.
    for (auto &conn : tmpl->guest().io().all())
        snapshot::reconnectWithRetry(machine_.ctx(), conn,
                                     &fn.fsServer(), &injector_);
    tmpl->guest().threads().enterTransientSingleThread();
    tmpl->proc().setThreadCount(1);
    machine_.ctx().stats().incr("catalyzer.templates_built");
    auto &ref = *tmpl;
    templates_.emplace(fn.app().name, std::move(tmpl));
    return ref;
}

SandboxInstance &
CatalyzerRuntime::ensureLanguageTemplate(apps::Language lang)
{
    auto it = lang_templates_.find(lang);
    if (it != lang_templates_.end())
        return *it->second;

    static const std::map<apps::Language, const char *> kBaseApp = {
        {apps::Language::C, "c-hello"},
        {apps::Language::Cpp, "ds-uniqueid"},
        {apps::Language::Java, "java-hello"},
        {apps::Language::Python, "python-hello"},
        {apps::Language::Ruby, "ruby-hello"},
        {apps::Language::NodeJs, "nodejs-hello"},
    };
    const apps::AppProfile &base = apps::appByName(kBaseApp.at(lang));
    FunctionArtifacts &base_fn = lang_registry_.artifactsFor(base);

    BootResult boot = bootRestore(base_fn, /*warm=*/false);
    std::unique_ptr<SandboxInstance> tmpl = std::move(boot.instance);
    for (auto &conn : tmpl->guest().io().all())
        snapshot::reconnectWithRetry(machine_.ctx(), conn,
                                     &base_fn.fsServer(), &injector_);
    tmpl->guest().threads().enterTransientSingleThread();
    tmpl->proc().setThreadCount(1);
    machine_.ctx().stats().incr("catalyzer.lang_templates_built");
    auto &ref = *tmpl;
    lang_templates_.emplace(lang, std::move(tmpl));
    return ref;
}

void
CatalyzerRuntime::prepareTemplate(FunctionArtifacts &fn)
{
    ensureTemplate(fn);
}

void
CatalyzerRuntime::warmFuncImage(FunctionArtifacts &fn,
                                int training_requests,
                                double prep_fraction)
{
    auto &ctx = machine_.ctx();
    // Boot an instance and warm it with the user-provided training
    // requests (all offline).
    BootResult boot = bootRestore(fn, /*warm=*/false);
    SandboxInstance &inst = *boot.instance;
    inst.setPrepFraction(prep_fraction);
    for (int i = 0; i < training_requests; ++i)
        inst.invoke();
    inst.pretouchWorkingSet();

    // Re-checkpoint at the moved func-entry point.
    snapshot::GuestState state = inst.captureState();
    state.warmedPrepFraction = prep_fraction;
    snapshot::CheckpointEngine engine(ctx);
    fn.separatedImage = engine.capture(
        machine_.frames(), fn.app().name,
        snapshot::ImageFormat::SeparatedWellFormed, std::move(state));
    // The old Base-EPT serves the stale image; future boots remap.
    fn.sharedBase.reset();
    fn.firstRestoreDone = false;
    if (options_.remoteImages)
        images_.publish(fn.separatedImage);
    ctx.stats().incr("catalyzer.images_warmed");
}

void
CatalyzerRuntime::refreshTemplate(FunctionArtifacts &fn)
{
    // Sec. 6.8: periodically regenerating the template re-randomizes
    // the layout shared by sforked children.
    dropTemplate(fn.app().name);
    ensureTemplate(fn);
    machine_.ctx().stats().incr("catalyzer.template_refreshes");
}

void
CatalyzerRuntime::prepareLanguageTemplate(apps::Language lang)
{
    ensureLanguageTemplate(lang);
}

void
CatalyzerRuntime::dropTemplate(const std::string &function_name)
{
    templates_.erase(function_name);
}

SandboxInstance *
CatalyzerRuntime::templateFor(const std::string &function_name)
{
    auto it = templates_.find(function_name);
    return it == templates_.end() ? nullptr : it->second.get();
}

std::size_t
CatalyzerRuntime::templateMemoryBytes() const
{
    std::size_t bytes = 0;
    for (const auto &[name, tmpl] : templates_)
        bytes += tmpl->rssBytes();
    for (const auto &[lang, tmpl] : lang_templates_)
        bytes += tmpl->rssBytes();
    return bytes;
}

} // namespace catalyzer::core
