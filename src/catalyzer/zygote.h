/**
 * @file
 * Virtualization sandbox Zygote (paper Sec. 3.4).
 *
 * A Zygote is a generalized, function-independent sandbox: base config
 * parsed, sandbox process spawned, KVM resources allocated (with
 * Catalyzer's host tuning: PML off, kvcalloc cache on), Sentry
 * initialized, base rootfs mounted, Go runtime running. Specializing it
 * for a function only appends the function config and imports its
 * binaries, taking the whole sandbox construction off the critical path.
 */

#ifndef CATALYZER_CATALYZER_ZYGOTE_H
#define CATALYZER_CATALYZER_ZYGOTE_H

#include <memory>
#include <vector>

#include "faults/fault_injector.h"
#include "guest/guest_kernel.h"
#include "hostos/kvm.h"
#include "hostos/process.h"
#include "sandbox/machine.h"
#include "trace/trace.h"

namespace catalyzer::core {

/** One pre-built generalized sandbox. */
struct Zygote
{
    hostos::HostProcess *proc = nullptr;
    std::unique_ptr<guest::GuestKernel> guest;
};

/**
 * Cache of pre-built Zygotes for one machine. prewarm() runs offline;
 * acquire() hands a sandbox to a boot with nothing left to construct.
 * On a cache miss the Zygote is built on the critical path (still fast,
 * thanks to the Catalyzer KVM configuration).
 */
class ZygotePool
{
  public:
    explicit ZygotePool(sandbox::Machine &machine);

    /** Catalyzer's host configuration: PML off, kvcalloc cache on. */
    static hostos::KvmConfig kvmConfig();

    /** Build @p n Zygotes into the cache (offline) and raise the
     *  replenish target to at least @p n. */
    void prewarm(std::size_t n);

    /**
     * Take a Zygote (cached if available, else built now). A cache miss
     * puts the build on the critical path; with an enabled @p trace the
     * miss shows up as a "zygote-build" child span. Under fault
     * injection a miss-path build retries per the injector's policy and
     * throws faults::FaultError once the budget is exhausted (the warm
     * tier then degrades to cold).
     */
    Zygote acquire(trace::TraceContext trace = {});

    /**
     * Background maintenance: rebuild the cache up to the target size.
     * The platform calls this after a request completes, modelling the
     * offline zygote builder that keeps the pool full.
     */
    void replenish();

    void setTarget(std::size_t n) { target_ = n; }
    std::size_t target() const { return target_; }

    /** Make builds consult @p injector; nullptr disables injection. */
    void setFaultInjector(faults::FaultInjector *injector)
    {
        injector_ = injector;
    }

    std::size_t cached() const { return pool_.size(); }
    std::size_t built() const { return built_; }

    /** Cache misses. The StatRegistry counter catalyzer.zygote_misses is
     *  the single source of truth, so this resets with the registry. */
    std::size_t misses() const
    {
        return static_cast<std::size_t>(
            machine_.ctx().stats().value("catalyzer.zygote_misses"));
    }

  private:
    Zygote build(trace::TraceContext trace = {});

    sandbox::Machine &machine_;
    faults::FaultInjector *injector_ = nullptr;
    std::vector<Zygote> pool_;
    std::size_t target_ = 0;
    std::size_t built_ = 0;
};

} // namespace catalyzer::core

#endif // CATALYZER_CATALYZER_ZYGOTE_H
