#include "catalyzer/zygote.h"

#include <algorithm>

#include "sim/logging.h"

namespace catalyzer::core {

ZygotePool::ZygotePool(sandbox::Machine &machine) : machine_(machine) {}

hostos::KvmConfig
ZygotePool::kvmConfig()
{
    hostos::KvmConfig config;
    config.pmlEnabled = false;          // Fig. 16c
    config.kvcallocCacheEnabled = true; // Fig. 16b
    return config;
}

Zygote
ZygotePool::build(trace::TraceContext trace)
{
    auto &ctx = machine_.ctx();
    const auto &costs = ctx.costs();

    trace::ScopedSpan span(trace, "zygote-build");

    // Injected build failures: each failed attempt burns its timeout and
    // backs off; exhausting the budget aborts this build entirely.
    if (injector_ != nullptr)
        injector_->checkWithRetry(ctx, faults::FaultSite::ZygoteBuild);

    // Parse the *base* configuration and spawn the sandbox process.
    ctx.charge(costs.parseConfig);
    Zygote z;
    z.proc = &machine_.host().spawnProcess("zygote");
    z.guest = std::make_unique<guest::GuestKernel>(ctx, "zygote-kernel");

    // Allocate virtualization resources with the tuned host.
    hostos::KvmVm vm(ctx, kvmConfig());
    vm.createVm();
    for (int i = 0; i < 4; ++i)
        vm.createVcpu();
    vm.setUserMemoryRegions(costs.kvmMemoryRegions);

    z.guest->initializeFresh();
    z.guest->mountRootfs(costs.guestMounts); // base rootfs
    z.guest->startGoRuntime();

    // The Sentry's own working memory.
    const auto self_pages = static_cast<std::size_t>(costs.sentrySelfPages);
    const mem::PageIndex va =
        z.proc->space().mapAnon(self_pages, true, "sentry-self");
    z.proc->space().touchRange(va, self_pages, /*write=*/true);

    z.proc->setThreadCount(z.guest->threads().totalThreads());
    ++built_;
    ctx.stats().incr("catalyzer.zygotes_built");
    return z;
}

void
ZygotePool::prewarm(std::size_t n)
{
    target_ = std::max(target_, n);
    for (std::size_t i = 0; i < n; ++i) {
        try {
            pool_.push_back(build());
        } catch (const faults::FaultError &) {
            // The offline builder hit a persistent fault; stop this
            // round — replenish() after later requests tops the pool
            // back up once the fault clears.
            machine_.ctx().stats().incr("catalyzer.zygote_build_aborts");
            break;
        }
    }
}

void
ZygotePool::replenish()
{
    while (pool_.size() < target_) {
        try {
            pool_.push_back(build());
        } catch (const faults::FaultError &) {
            machine_.ctx().stats().incr("catalyzer.zygote_build_aborts");
            break;
        }
    }
}

Zygote
ZygotePool::acquire(trace::TraceContext trace)
{
    if (!pool_.empty()) {
        Zygote z = std::move(pool_.back());
        pool_.pop_back();
        machine_.ctx().stats().incr("catalyzer.zygote_hits");
        return z;
    }
    machine_.ctx().stats().incr("catalyzer.zygote_misses");
    return build(trace);
}

} // namespace catalyzer::core
