/**
 * @file
 * The Catalyzer runtime: init-less booting for one machine.
 *
 * Implements the paper's three boot paths (Fig. 7):
 *  - cold boot: on-demand restore from a well-formed func-image
 *    (overlay memory + separated state recovery + on-demand I/O
 *    reconnection), constructing the sandbox with the tuned host;
 *  - warm boot: the same restore sharing a Zygote from the pool and the
 *    live Base-EPT of earlier instances;
 *  - fork boot: sfork from a per-function template sandbox.
 * Plus language runtime templates (Sec. 4.3) for fast cold boots of
 * lightweight functions.
 */

#ifndef CATALYZER_CATALYZER_RUNTIME_H
#define CATALYZER_CATALYZER_RUNTIME_H

#include <map>
#include <memory>

#include "apps/app_profile.h"
#include "catalyzer/zygote.h"
#include "faults/fault_injector.h"
#include "net/fabric.h"
#include "sandbox/function_artifacts.h"
#include "sandbox/pipelines.h"
#include "snapshot/image_store.h"

namespace catalyzer::core {

/**
 * What a remote-sfork boot borrows from a peer machine (resolved by the
 * cluster's control plane): the lender's live template, the func-image
 * it was restored from (metadata only — page *data* crosses the fabric,
 * never the lender's frame store), its working-set manifest for batched
 * pulls, and the fabric endpoints.
 */
struct RemoteForkSource
{
    sandbox::SandboxInstance *templateInstance = nullptr;
    std::shared_ptr<snapshot::FuncImage> image;
    std::shared_ptr<prefetch::WorkingSetManifest> manifest;
    net::Fabric *fabric = nullptr;
    net::NodeId self = 0;
    net::NodeId peer = 0;
    /**
     * Lender-side observability endpoints (optional): with both set, a
     * traced remote-sfork emits "lend-template" / "serve-pull-batch"
     * spans into the *lender's* tracer carrying the borrower's
     * distributed trace id, which is what lets the fleet exporter
     * stitch both machines' halves of the boot into one timeline.
     */
    trace::Tracer *peerTracer = nullptr;
    const sim::VirtualClock *peerClock = nullptr;
};

/** Feature switches; the defaults are full Catalyzer. Turning individual
 *  techniques off reproduces the ablation rows of Fig. 12. */
struct CatalyzerOptions
{
    bool useZygote = true;          ///< Zygote pool for warm boots
    bool overlayMemory = true;      ///< direct-map + COW vs eager load
    bool separatedState = true;     ///< relation table vs per-object decode
    bool lazyIoReconnection = true; ///< on-demand vs eager reconnect
    bool aslrRerandomizeOnSfork = false; ///< Sec. 6.8 mitigation
    /**
     * Images live in remote storage: the first cold boot of a function
     * on this machine pays the network fetch (Sec. 2.2, init-less
     * booting: "a serverless platform needs to fetch a func-image
     * first").
     */
    bool remoteImages = false;
    /** Verify image checksums before restoring; corrupted images are
     *  rebuilt from a fresh checkpoint. */
    bool verifyImages = false;
    /**
     * Content-addressed image store (snapshot/chunk_store.h): cut
     * published images into content-defined chunks and fetch through
     * the RAM -> SSD -> peer -> origin tier ladder. Disabled by
     * default, which keeps remote fetches bit-identical to the flat
     * whole-image model.
     */
    snapshot::ChunkStoreConfig chunkedImages;
    /**
     * Working-set prefetch (REAP-style extension, src/prefetch/).
     * recordWorkingSet captures the page-fault trace of each restore's
     * restore-to-first-response window into a per-function manifest
     * (observation only: no boot-path latency). prefetchWorkingSet
     * eagerly populates the manifest's stable set into the Base-EPT in
     * batched reads of prefetchBatchPages pages before the first
     * request, falling back to demand paging when the manifest is
     * missing or stale. workingSetTraces (K) and workingSetMinFraction
     * control how traces merge into the stable set.
     */
    bool recordWorkingSet = true;
    bool prefetchWorkingSet = false;
    std::size_t prefetchBatchPages = 64;
    std::size_t workingSetTraces = 3;
    double workingSetMinFraction = 0.5;
    /** Pages per remote pull request on the remote-sfork demand path. */
    std::size_t remotePullBatchPages = 32;
    /** Fraction of each hello-app's modules preloaded by the language
     *  runtime template. */
    double languageTemplateCoreFraction = 0.8;
    std::size_t zygotePrewarm = 4;
    /**
     * Fault injection (src/faults/): per-site failure probabilities or
     * scripted virtual-clock windows, plus the retry/backoff policy the
     * boot paths use to survive them. All-zero by default, and strictly
     * pay-for-use: with no faults configured the injector never draws
     * randomness, charges latency, or creates counters.
     */
    faults::FaultConfig faults;
};

/** One Catalyzer deployment on a machine. */
class CatalyzerRuntime
{
  public:
    explicit CatalyzerRuntime(sandbox::Machine &machine,
                              CatalyzerOptions options = {});

    /**
     * Cold boot: full on-demand restore, sandbox built on the path.
     *
     * All boot paths accept a TraceContext; when enabled, the boot
     * emits a "boot/Catalyzer-*" span tree covering every stage down
     * to function entry (overlay-map, separated-state-fixup,
     * io-reconnect, ...), and the boot latency is observed into the
     * machine's "boot.latency.Catalyzer-*" histogram either way.
     */
    sandbox::BootResult bootCold(sandbox::FunctionArtifacts &fn,
                                 trace::TraceContext trace = {});

    /** Warm boot: Zygote + shared Base-EPT + I/O cache. */
    sandbox::BootResult bootWarm(sandbox::FunctionArtifacts &fn,
                                 trace::TraceContext trace = {});

    /** Fork boot: sfork from the function's template sandbox. */
    sandbox::BootResult bootFork(sandbox::FunctionArtifacts &fn,
                                 trace::TraceContext trace = {});

    /**
     * Remote-sfork (MITOSIS-style): fork from a *peer machine's*
     * template over the fabric. One round trip fetches the fork
     * descriptor, the image's metadata section and the working-set
     * stable set stream into a local mirror in batched pulls, and the
     * remaining pages arrive on demand through a network-backed fault
     * observer for the instance's lifetime. Throws faults::FaultError
     * when the peer is (injected) dead at handshake time, so the
     * platform degrades to the local tiers.
     */
    sandbox::BootResult bootRemoteFork(sandbox::FunctionArtifacts &fn,
                                       const RemoteForkSource &src,
                                       trace::TraceContext trace = {});

    /**
     * Cold boot via the per-language runtime template (Table 2): sfork
     * the language template, then load the function's own modules.
     */
    sandbox::BootResult
    bootFromLanguageTemplate(sandbox::FunctionArtifacts &fn,
                             trace::TraceContext trace = {});

    /** Build the function's template sandbox now (offline). */
    void prepareTemplate(sandbox::FunctionArtifacts &fn);

    /**
     * User-guided pre-initialization (Sec. 6.7): re-checkpoint the
     * function after warming it with @p training_requests user-provided
     * requests, baking @p prep_fraction of the handler's per-request
     * preparation into the func-image. Later cold/warm boots start with
     * that work done (and fork boots, once the template is rebuilt).
     */
    void warmFuncImage(sandbox::FunctionArtifacts &fn,
                       int training_requests, double prep_fraction);

    /**
     * Rebuild a function's template sandbox (Sec. 6.8: periodically
     * refreshing templates re-randomizes the shared layout).
     */
    void refreshTemplate(sandbox::FunctionArtifacts &fn);

    /** Build the language template for @p lang now (offline). */
    void prepareLanguageTemplate(apps::Language lang);

    /** Drop a function's template (frees its memory). */
    void dropTemplate(const std::string &function_name);

    ZygotePool &zygotes() { return zygotes_; }
    snapshot::ImageStore &images() { return images_; }
    const snapshot::ImageStore &images() const { return images_; }
    const CatalyzerOptions &options() const { return options_; }
    sandbox::Machine &machine() { return machine_; }

    /** The machine's fault source (script failures via failNext()). */
    faults::FaultInjector &faults() { return injector_; }

    /** The function's template instance, if prepared. */
    sandbox::SandboxInstance *
    templateFor(const std::string &function_name);

    /** Resident memory of all templates (function + language). */
    std::size_t templateMemoryBytes() const;

  private:
    sandbox::BootResult bootRestore(sandbox::FunctionArtifacts &fn,
                                    bool warm,
                                    trace::TraceContext trace = {});
    /**
     * Resolve the function's working-set manifest for this boot: fetch
     * it from the image store if the function has none yet, drop it if
     * it is stale for @p image, create a fresh one when recording, and
     * publish it when a new trace was merged since the last boot.
     */
    std::shared_ptr<prefetch::WorkingSetManifest>
    ensureWorkingSet(sandbox::FunctionArtifacts &fn,
                     const snapshot::FuncImage &image);
    std::shared_ptr<snapshot::FuncImage>
    acquireImage(sandbox::FunctionArtifacts &fn,
                 trace::TraceContext trace = {});
    /**
     * Fetch the function's published image from remote storage,
     * retrying injected transfer failures with backoff; throws
     * faults::FaultError once the retry budget is exhausted (the
     * restore tier then degrades to a fresh boot).
     */
    std::shared_ptr<snapshot::FuncImage>
    fetchRemoteImage(sandbox::FunctionArtifacts &fn,
                     trace::TraceContext trace = {});
    std::unique_ptr<sandbox::SandboxInstance>
    sforkFrom(sandbox::SandboxInstance &tmpl,
              sandbox::FunctionArtifacts &fn, sandbox::BootReport &report,
              const char *tag, trace::TraceContext trace = {});
    sandbox::SandboxInstance &ensureTemplate(sandbox::FunctionArtifacts &fn);
    sandbox::SandboxInstance &
    ensureLanguageTemplate(apps::Language lang);

    sandbox::Machine &machine_;
    CatalyzerOptions options_;
    faults::FaultInjector injector_;
    ZygotePool zygotes_;
    snapshot::ImageStore images_;
    std::map<std::string, std::unique_ptr<sandbox::SandboxInstance>>
        templates_;
    std::map<apps::Language, std::unique_ptr<sandbox::SandboxInstance>>
        lang_templates_;
    /** Artifacts for the language-base (hello) apps. */
    sandbox::FunctionRegistry lang_registry_;
    std::uint64_t boot_seq_ = 0;
};

} // namespace catalyzer::core

#endif // CATALYZER_CATALYZER_RUNTIME_H
