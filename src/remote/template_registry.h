/**
 * @file
 * Cluster-wide view of where live templates and cached func-images are.
 *
 * Catalyzer's templates and image caches are per machine; the
 * TemplateRegistry is the control-plane directory that makes them a
 * fleet resource: which machines hold a live template for a function
 * (remote-sfork candidates, MITOSIS-style) and which machines cache a
 * func-image generation (P2P fetch replicas). Selection is
 * deterministic — prefer a same-rack holder, break ties on the lowest
 * node id — so cluster runs stay bit-reproducible.
 *
 * The registry is bookkeeping only: it never touches a clock. Paying
 * for the lookups' network traffic is the caller's job (the remote-fork
 * handshake and the chunked fetch both ride the fabric).
 */

#ifndef CATALYZER_REMOTE_TEMPLATE_REGISTRY_H
#define CATALYZER_REMOTE_TEMPLATE_REGISTRY_H

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalyzer/runtime.h"
#include "net/fabric.h"

namespace catalyzer::remote {

/** Where templates, image replicas and image chunks live across the
 *  fleet. */
class TemplateRegistry : public net::ReplicaDirectory,
                         public net::ChunkDirectory
{
  public:
    /** @p fabric supplies rack topology for nearest-first selection;
     *  without one, selection is lowest-id only. */
    explicit TemplateRegistry(const net::Fabric *fabric = nullptr)
        : fabric_(fabric)
    {}

    /** Record that @p node does (or no longer does) hold a live
     *  template for @p function_name. */
    void setTemplate(net::NodeId node, const std::string &function_name,
                     bool present);

    bool hasTemplate(net::NodeId node,
                     const std::string &function_name) const;

    /** All holders of @p function_name, ascending node id. */
    std::vector<net::NodeId>
    templateHolders(const std::string &function_name) const;

    /**
     * Closest template holder for @p from (same rack first, lowest id
     * tie-break), excluding @p from itself; nullopt when no other
     * machine holds one.
     */
    std::optional<net::NodeId>
    nearestTemplateHolder(const std::string &function_name,
                          net::NodeId from) const;

    // net::ReplicaDirectory — func-image replica tracking.
    std::optional<net::NodeId>
    nearestReplica(const std::string &key,
                   net::NodeId from) const override;
    void addReplica(const std::string &key, net::NodeId node) override;
    void dropReplica(const std::string &key, net::NodeId node) override;
    std::uint64_t recordPublish(const std::string &key, net::NodeId node,
                                std::uint64_t generation) override;
    std::uint64_t keyVersion(const std::string &key) const override;

    std::size_t replicaCount(const std::string &key) const;

    // net::ChunkDirectory — content-addressed chunk tracking.
    std::optional<net::NodeId>
    nearestChunkHolder(net::ChunkId chunk,
                       net::NodeId from) const override;
    void addChunkHolder(net::ChunkId chunk, net::NodeId node) override;
    void dropChunkHolder(net::ChunkId chunk, net::NodeId node) override;

    std::size_t chunkHolderCount(net::ChunkId chunk) const;
    std::size_t trackedChunkCount() const { return chunks_.size(); }

  private:
    /** Publish history of one blob key (see recordPublish). */
    struct KeyPublishState
    {
        std::map<net::NodeId, std::uint64_t> generations;
        std::uint64_t version = 1;
    };

    /** Nearest member of @p nodes to @p from, excluding @p from. */
    std::optional<net::NodeId>
    nearest(const std::set<net::NodeId> &nodes, net::NodeId from) const;

    const net::Fabric *fabric_;
    std::map<std::string, std::set<net::NodeId>> templates_;
    std::map<std::string, std::set<net::NodeId>> replicas_;
    std::map<std::string, KeyPublishState> publishes_;
    std::map<net::ChunkId, std::set<net::NodeId>> chunks_;
};

/**
 * Everything a ServerlessPlatform needs to offer the remote-sfork tier:
 * the fabric, the fleet directory, this machine's node id, and a
 * resolver that materializes a fork source (template instance + image +
 * manifest) from a peer. The Cluster wires one per machine; standalone
 * platforms have none and behave exactly as before.
 */
struct RemoteBootEnv
{
    net::Fabric *fabric = nullptr;
    TemplateRegistry *registry = nullptr;
    net::NodeId self = 0;
    std::function<std::optional<core::RemoteForkSource>(
        const std::string &function_name, net::NodeId peer)>
        forkSource;
};

} // namespace catalyzer::remote

#endif // CATALYZER_REMOTE_TEMPLATE_REGISTRY_H
