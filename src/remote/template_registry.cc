#include "remote/template_registry.h"

namespace catalyzer::remote {

void
TemplateRegistry::setTemplate(net::NodeId node,
                              const std::string &function_name,
                              bool present)
{
    if (present)
        templates_[function_name].insert(node);
    else {
        auto it = templates_.find(function_name);
        if (it != templates_.end()) {
            it->second.erase(node);
            if (it->second.empty())
                templates_.erase(it);
        }
    }
}

bool
TemplateRegistry::hasTemplate(net::NodeId node,
                              const std::string &function_name) const
{
    auto it = templates_.find(function_name);
    return it != templates_.end() && it->second.contains(node);
}

std::vector<net::NodeId>
TemplateRegistry::templateHolders(
    const std::string &function_name) const
{
    auto it = templates_.find(function_name);
    if (it == templates_.end())
        return {};
    return {it->second.begin(), it->second.end()};
}

std::optional<net::NodeId>
TemplateRegistry::nearest(const std::set<net::NodeId> &nodes,
                          net::NodeId from) const
{
    // std::set iterates ascending, so the first hit in each preference
    // class is the lowest node id — the deterministic tie-break.
    std::optional<net::NodeId> fallback;
    for (net::NodeId node : nodes) {
        if (node == from)
            continue;
        if (fabric_ != nullptr && fabric_->sameRack(node, from))
            return node;
        if (!fallback)
            fallback = node;
    }
    return fallback;
}

std::optional<net::NodeId>
TemplateRegistry::nearestTemplateHolder(
    const std::string &function_name, net::NodeId from) const
{
    auto it = templates_.find(function_name);
    if (it == templates_.end())
        return std::nullopt;
    return nearest(it->second, from);
}

std::optional<net::NodeId>
TemplateRegistry::nearestReplica(const std::string &key,
                                 net::NodeId from) const
{
    auto it = replicas_.find(key);
    if (it == replicas_.end())
        return std::nullopt;
    return nearest(it->second, from);
}

void
TemplateRegistry::addReplica(const std::string &key, net::NodeId node)
{
    replicas_[key].insert(node);
}

void
TemplateRegistry::dropReplica(const std::string &key, net::NodeId node)
{
    auto it = replicas_.find(key);
    if (it != replicas_.end()) {
        it->second.erase(node);
        if (it->second.empty())
            replicas_.erase(it);
    }
}

std::size_t
TemplateRegistry::replicaCount(const std::string &key) const
{
    auto it = replicas_.find(key);
    return it == replicas_.end() ? 0 : it->second.size();
}

std::uint64_t
TemplateRegistry::recordPublish(const std::string &key, net::NodeId node,
                                std::uint64_t generation)
{
    KeyPublishState &state = publishes_[key];
    auto it = state.generations.find(node);
    // Only a *republish* from the same node with a new generation bumps
    // the version: that is a rebuild replacing the stored bytes, and
    // copies cached under the old stamp are now stale. Every machine
    // announcing its own first build of a function does not.
    if (it != state.generations.end() && it->second != generation)
        ++state.version;
    state.generations[node] = generation;
    return state.version;
}

std::uint64_t
TemplateRegistry::keyVersion(const std::string &key) const
{
    auto it = publishes_.find(key);
    return it == publishes_.end() ? 0 : it->second.version;
}

std::optional<net::NodeId>
TemplateRegistry::nearestChunkHolder(net::ChunkId chunk,
                                     net::NodeId from) const
{
    auto it = chunks_.find(chunk);
    if (it == chunks_.end())
        return std::nullopt;
    return nearest(it->second, from);
}

void
TemplateRegistry::addChunkHolder(net::ChunkId chunk, net::NodeId node)
{
    chunks_[chunk].insert(node);
}

void
TemplateRegistry::dropChunkHolder(net::ChunkId chunk, net::NodeId node)
{
    auto it = chunks_.find(chunk);
    if (it != chunks_.end()) {
        it->second.erase(node);
        if (it->second.empty())
            chunks_.erase(it);
    }
}

std::size_t
TemplateRegistry::chunkHolderCount(net::ChunkId chunk) const
{
    auto it = chunks_.find(chunk);
    return it == chunks_.end() ? 0 : it->second.size();
}

} // namespace catalyzer::remote
