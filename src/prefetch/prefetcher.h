/**
 * @file
 * Prefetcher: eagerly populates a recorded working set into the shared
 * Base-EPT with large batched reads before the first request.
 *
 * Demand paging loads restore pages one 4 KiB random read at a time
 * (CostModel::demandFaultFileCold); the prefetcher instead submits the
 * manifest's stable set as readahead batches of prefetchBatchPages
 * pages, paying one setup per batch plus the sequential per-page
 * transfer (CostModel::prefetchBatchSetup / prefetchSsdPerPage). The
 * transfers are charged across the restore worker pool, modelling reads
 * that overlap the Base-EPT share-mapping and the rest of the restore.
 * Anything outside the set still demand-pages as before.
 */

#ifndef CATALYZER_PREFETCH_PREFETCHER_H
#define CATALYZER_PREFETCH_PREFETCHER_H

#include <vector>

#include "mem/base_mapping.h"
#include "sim/context.h"
#include "trace/trace.h"

namespace catalyzer::prefetch {

/** Accounting of one prefetch pass. */
struct PrefetchReport
{
    /** Pages requested (the manifest's stable set, clamped to range). */
    std::size_t requestedPages = 0;
    /** Pages newly installed into the Base-EPT. */
    std::size_t prefetchedPages = 0;
    /** Pages that were already resident (no work). */
    std::size_t alreadyResident = 0;
    /** Of the prefetched pages, how many needed a storage read. */
    std::size_t storageReads = 0;
    /** Readahead batches submitted. */
    std::size_t batches = 0;
};

/**
 * Populate @p pages (image-relative, in recorded access order) into
 * @p base in batches of @p batch_pages. Emits one "prefetch-io" span
 * per pass under @p trace and bumps the prefetch.* counters.
 */
PrefetchReport prefetchIntoBase(sim::SimContext &ctx,
                                mem::BaseMapping &base,
                                const std::vector<mem::PageIndex> &pages,
                                std::size_t batch_pages,
                                trace::TraceContext trace = {});

} // namespace catalyzer::prefetch

#endif // CATALYZER_PREFETCH_PREFETCHER_H
