/**
 * @file
 * FaultRecorder: captures the ordered set of func-image pages an
 * instance faults between restore and its first response.
 *
 * The recorder implements mem::FaultObserver and is attached to the
 * instance's AddressSpace by the Catalyzer restore path. It watches the
 * virtual-address window the Base-EPT (func-image) occupies and records
 * each distinct image page in first-access order. The window closes at
 * the end of the instance's first invocation ("restore to first
 * response"), when finish() either merges the trace into the function's
 * WorkingSetManifest (recording mode), grades a prefetched set against
 * what the window actually touched (audit mode), or both — a boot that
 * prefetches an unfrozen manifest keeps refining it.
 */

#ifndef CATALYZER_PREFETCH_FAULT_RECORDER_H
#define CATALYZER_PREFETCH_FAULT_RECORDER_H

#include <memory>
#include <set>
#include <vector>

#include "mem/address_space.h"
#include "prefetch/working_set_manifest.h"
#include "sim/stats.h"

namespace catalyzer::prefetch {

/** Observer of one instance's restore-to-first-response window. */
class FaultRecorder : public mem::FaultObserver
{
  public:
    /**
     * @param window_start First virtual page of the Base-EPT window.
     * @param window_pages Extent of the window (func-image pages).
     */
    FaultRecorder(mem::PageIndex window_start, std::size_t window_pages);

    /** Merge the trace into @p manifest at finish(). */
    void enableRecording(std::shared_ptr<WorkingSetManifest> manifest);

    /**
     * Grade @p prefetched_pages (image-relative) against the pages the
     * window actually accesses: demand faults avoided, wasted pages and
     * the manifest hit rate, reported into the registry at finish().
     */
    void enableAudit(std::vector<mem::PageIndex> prefetched_pages);

    /** Still observing (finish() not yet called)? */
    bool active() const { return active_; }

    /**
     * Close the window: commit the trace / audit into @p stats.
     * Idempotent; the recorder ignores faults afterwards.
     *
     * Counters written (audit mode): prefetch.demand_faults_avoided,
     * prefetch.wasted_pages, and the prefetch.manifest_hit_rate
     * histogram (ratio of accessed image pages that were prefetched).
     */
    void finish(sim::StatRegistry &stats);

    /** Distinct image pages accessed so far, in first-access order. */
    const std::vector<mem::PageIndex> &accessedInOrder() const
    {
        return order_;
    }

    // mem::FaultObserver
    void onFault(mem::PageIndex page, bool write,
                 mem::FaultResult result) override;

  private:
    mem::PageIndex window_start_;
    std::size_t window_pages_;
    bool active_ = true;
    std::shared_ptr<WorkingSetManifest> manifest_;
    bool audit_ = false;
    std::vector<mem::PageIndex> prefetched_;
    std::set<mem::PageIndex> seen_;
    std::vector<mem::PageIndex> order_;
};

} // namespace catalyzer::prefetch

#endif // CATALYZER_PREFETCH_FAULT_RECORDER_H
