#include "prefetch/working_set_manifest.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "sim/logging.h"

namespace catalyzer::prefetch {

namespace {
constexpr const char *kMagic = "catalyzer-ws";
} // namespace

WorkingSetManifest::WorkingSetManifest(std::string function_name,
                                       std::uint64_t image_generation,
                                       std::size_t max_traces,
                                       double min_fraction)
    : function_name_(std::move(function_name)),
      image_generation_(image_generation), max_traces_(max_traces),
      min_fraction_(min_fraction)
{
    if (max_traces_ == 0)
        sim::panic("WorkingSetManifest %s: max_traces must be positive",
                   function_name_.c_str());
    min_fraction_ = std::clamp(min_fraction_, 0.0, 1.0);
}

void
WorkingSetManifest::addTrace(const std::vector<mem::PageIndex> &ordered_pages)
{
    if (frozen())
        return;
    std::set<mem::PageIndex> in_this_trace;
    for (mem::PageIndex page : ordered_pages) {
        if (!in_this_trace.insert(page).second)
            continue; // duplicate within the trace
        auto [it, inserted] = pages_.try_emplace(page);
        if (inserted)
            it->second.firstSeen = next_seen_++;
        ++it->second.hits;
    }
    ++traces_;
    dirty_ = true;
}

std::vector<mem::PageIndex>
WorkingSetManifest::stableSet() const
{
    if (traces_ == 0)
        return {};
    const auto threshold = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(min_fraction_ * static_cast<double>(traces_))));
    std::vector<const std::pair<const mem::PageIndex, PageStat> *> kept;
    kept.reserve(pages_.size());
    for (const auto &entry : pages_) {
        if (entry.second.hits >= threshold)
            kept.push_back(&entry);
    }
    // Batched reads follow the recorded access order, not address order.
    std::sort(kept.begin(), kept.end(),
              [](const auto *a, const auto *b) {
                  return a->second.firstSeen < b->second.firstSeen;
              });
    std::vector<mem::PageIndex> result;
    result.reserve(kept.size());
    for (const auto *entry : kept)
        result.push_back(entry->first);
    return result;
}

std::string
WorkingSetManifest::serialize() const
{
    std::ostringstream os;
    os << kMagic << " v" << kFormatVersion << "\n";
    os << "function " << function_name_ << "\n";
    os << "generation " << image_generation_ << "\n";
    os << "traces " << traces_ << " max " << max_traces_ << " fraction "
       << min_fraction_ << "\n";
    os << "pages " << pages_.size() << "\n";
    for (const auto &[page, stat] : pages_)
        os << page << " " << stat.hits << " " << stat.firstSeen << "\n";
    return os.str();
}

std::shared_ptr<WorkingSetManifest>
WorkingSetManifest::deserialize(const std::string &blob)
{
    std::istringstream is(blob);
    std::string magic, version;
    if (!(is >> magic >> version) || magic != kMagic ||
        version != "v" + std::to_string(kFormatVersion))
        return nullptr;

    std::string key, function_name;
    std::uint64_t generation = 0;
    std::size_t traces = 0, max_traces = 0, npages = 0;
    double fraction = 0.0;
    if (!(is >> key >> function_name) || key != "function")
        return nullptr;
    if (!(is >> key >> generation) || key != "generation")
        return nullptr;
    if (!(is >> key >> traces) || key != "traces")
        return nullptr;
    if (!(is >> key >> max_traces) || key != "max")
        return nullptr;
    if (!(is >> key >> fraction) || key != "fraction")
        return nullptr;
    if (!(is >> key >> npages) || key != "pages")
        return nullptr;
    if (max_traces == 0)
        return nullptr;

    auto manifest = std::make_shared<WorkingSetManifest>(
        function_name, generation, max_traces, fraction);
    manifest->traces_ = traces;
    for (std::size_t i = 0; i < npages; ++i) {
        mem::PageIndex page = 0;
        PageStat stat;
        if (!(is >> page >> stat.hits >> stat.firstSeen))
            return nullptr;
        manifest->pages_.emplace(page, stat);
        manifest->next_seen_ =
            std::max(manifest->next_seen_, stat.firstSeen + 1);
    }
    return manifest;
}

} // namespace catalyzer::prefetch
