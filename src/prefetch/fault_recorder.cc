#include "prefetch/fault_recorder.h"

#include <algorithm>

namespace catalyzer::prefetch {

FaultRecorder::FaultRecorder(mem::PageIndex window_start,
                             std::size_t window_pages)
    : window_start_(window_start), window_pages_(window_pages)
{
}

void
FaultRecorder::enableRecording(std::shared_ptr<WorkingSetManifest> manifest)
{
    manifest_ = std::move(manifest);
}

void
FaultRecorder::enableAudit(std::vector<mem::PageIndex> prefetched_pages)
{
    audit_ = true;
    prefetched_ = std::move(prefetched_pages);
    std::sort(prefetched_.begin(), prefetched_.end());
}

void
FaultRecorder::onFault(mem::PageIndex page, bool /*write*/,
                       mem::FaultResult /*result*/)
{
    if (!active_)
        return;
    if (page < window_start_ || page >= window_start_ + window_pages_)
        return;
    const mem::PageIndex rel = page - window_start_;
    if (seen_.insert(rel).second)
        order_.push_back(rel);
}

void
FaultRecorder::finish(sim::StatRegistry &stats)
{
    if (!active_)
        return;
    active_ = false;

    if (manifest_ && !manifest_->frozen()) {
        manifest_->addTrace(order_);
        stats.incr("prefetch.traces_recorded");
    }

    if (audit_) {
        std::size_t avoided = 0;
        for (mem::PageIndex page : order_) {
            if (std::binary_search(prefetched_.begin(), prefetched_.end(),
                                   page))
                ++avoided;
        }
        const std::size_t wasted = prefetched_.size() - avoided;
        stats.incr("prefetch.demand_faults_avoided",
                   static_cast<std::int64_t>(avoided));
        stats.incr("prefetch.wasted_pages",
                   static_cast<std::int64_t>(wasted));
        const double hit_rate =
            order_.empty() ? 1.0
                           : static_cast<double>(avoided) /
                                 static_cast<double>(order_.size());
        stats.observeMs("prefetch.manifest_hit_rate", hit_rate);
    }
}

} // namespace catalyzer::prefetch
