/**
 * @file
 * Versioned working-set manifest for on-demand restore (REAP-style).
 *
 * On-demand restore (overlay memory) defers page loading to first
 * access, which moves cost from boot to the handler's first request.
 * The REAP line of work shows that the page-fault trace of a restore is
 * small and highly deterministic: recording it once and eagerly
 * prefetching that working set on later boots recovers most of the
 * deferred cost. A WorkingSetManifest accumulates the fault traces of
 * the first K restores of a function and merges them into a stable
 * working set — the image pages present in at least a configurable
 * fraction of the traces — that the Prefetcher loads in large batched
 * reads before the first request.
 *
 * The manifest is bound to the generation of the func-image it was
 * recorded against; when the image is rebuilt (user-guided warming, a
 * corruption repair) the manifest is stale and restore falls back to
 * plain demand paging while a fresh one is recorded. Manifests are
 * serialized alongside the func-image in snapshot::ImageStore so other
 * machines can fetch them with the image.
 */

#ifndef CATALYZER_PREFETCH_WORKING_SET_MANIFEST_H
#define CATALYZER_PREFETCH_WORKING_SET_MANIFEST_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/types.h"

namespace catalyzer::prefetch {

/** Merged page-fault traces of a function's restore window. */
class WorkingSetManifest
{
  public:
    /** Serialization format version (bumped on layout changes). */
    static constexpr std::uint32_t kFormatVersion = 1;

    /**
     * @param function_name    Function the traces belong to.
     * @param image_generation Generation of the func-image the traces
     *                         were recorded against (FuncImage::generation).
     * @param max_traces       Merge window K: recording stops (the
     *                         manifest freezes) after this many traces.
     * @param min_fraction     A page enters the stable set when it is
     *                         present in at least this fraction of the
     *                         merged traces.
     */
    WorkingSetManifest(std::string function_name,
                       std::uint64_t image_generation,
                       std::size_t max_traces, double min_fraction);

    const std::string &functionName() const { return function_name_; }
    std::uint64_t imageGeneration() const { return image_generation_; }
    std::size_t maxTraces() const { return max_traces_; }
    double minFraction() const { return min_fraction_; }

    /** Traces merged so far. */
    std::size_t traceCount() const { return traces_; }

    /** Distinct image pages seen across all traces. */
    std::size_t pageUniverse() const { return pages_.size(); }

    /** True once K traces are merged; further addTrace() calls no-op. */
    bool frozen() const { return traces_ >= max_traces_; }

    /** True once at least one trace is merged (stableSet() is usable). */
    bool usable() const { return traces_ > 0; }

    /** Does this manifest describe @p image_generation? */
    bool matches(std::uint64_t image_generation) const
    {
        return image_generation_ == image_generation;
    }

    /**
     * Merge one restore-to-first-response fault trace (image-relative
     * page indices in first-access order; duplicates are tolerated).
     * Ignored once frozen.
     */
    void addTrace(const std::vector<mem::PageIndex> &ordered_pages);

    /**
     * The stable working set: pages present in at least
     * ceil(minFraction * traceCount) traces, in first-ever-seen order
     * (so batched reads follow the access order of the recording).
     */
    std::vector<mem::PageIndex> stableSet() const;

    /** True when a trace was merged since the last markPublished(). */
    bool dirty() const { return dirty_; }
    void markPublished() { dirty_ = false; }

    /**
     * Serialize to the versioned on-storage form (stored next to the
     * func-image in ImageStore).
     */
    std::string serialize() const;

    /**
     * Parse a serialized manifest; nullptr on a bad magic, an
     * unsupported version, or a malformed body.
     */
    static std::shared_ptr<WorkingSetManifest>
    deserialize(const std::string &blob);

  private:
    struct PageStat
    {
        std::size_t hits = 0;       ///< traces containing the page
        std::size_t firstSeen = 0;  ///< global first-seen sequence number
    };

    std::string function_name_;
    std::uint64_t image_generation_;
    std::size_t max_traces_;
    double min_fraction_;
    std::size_t traces_ = 0;
    std::size_t next_seen_ = 0;
    bool dirty_ = false;
    std::map<mem::PageIndex, PageStat> pages_;
};

} // namespace catalyzer::prefetch

#endif // CATALYZER_PREFETCH_WORKING_SET_MANIFEST_H
