#include "prefetch/prefetcher.h"

#include <algorithm>

namespace catalyzer::prefetch {

PrefetchReport
prefetchIntoBase(sim::SimContext &ctx, mem::BaseMapping &base,
                 const std::vector<mem::PageIndex> &pages,
                 std::size_t batch_pages, trace::TraceContext trace)
{
    const auto &costs = ctx.costs();
    PrefetchReport report;
    batch_pages = std::max<std::size_t>(batch_pages, 1);

    trace::ScopedSpan span(trace, "prefetch-io");

    std::size_t installed_total = 0;
    for (std::size_t begin = 0; begin < pages.size();
         begin += batch_pages) {
        const std::size_t end =
            std::min(pages.size(), begin + batch_pages);
        std::size_t installed = 0;
        std::size_t storage = 0;
        for (std::size_t i = begin; i < end; ++i) {
            const mem::PageIndex page = pages[i];
            if (page >= base.npages())
                continue; // stale entry beyond the image extent
            ++report.requestedPages;
            switch (base.populatePrefetched(ctx, page)) {
              case mem::BaseMapping::PrefetchFill::AlreadyResident:
                ++report.alreadyResident;
                break;
              case mem::BaseMapping::PrefetchFill::FromPageCache:
                ++installed;
                break;
              case mem::BaseMapping::PrefetchFill::FromStorage:
                ++installed;
                ++storage;
                break;
            }
        }
        if (installed == 0)
            continue; // everything resident: no readahead submitted
        ++report.batches;
        // One readahead submission; the sequential transfer overlaps
        // the rest of the restore across the worker pool.
        ctx.charge(costs.prefetchBatchSetup);
        ctx.chargeParallel(costs.prefetchSsdPerPage,
                           static_cast<std::int64_t>(storage));
        report.prefetchedPages += installed;
        report.storageReads += storage;
        installed_total += installed;
    }

    // PTE installation for the newly mapped pages, per 512-entry batch.
    if (installed_total > 0) {
        ctx.charge(costs.ptePopulatePerBatch *
                   static_cast<std::int64_t>(
                       (installed_total + mem::kPtesPerTable - 1) /
                       mem::kPtesPerTable));
    }

    ctx.stats().incr("prefetch.pages_prefetched",
                     static_cast<std::int64_t>(report.prefetchedPages));
    ctx.stats().incr("prefetch.pages_already_resident",
                     static_cast<std::int64_t>(report.alreadyResident));
    ctx.stats().incr("prefetch.storage_reads",
                     static_cast<std::int64_t>(report.storageReads));
    ctx.stats().incr("prefetch.batches",
                     static_cast<std::int64_t>(report.batches));

    span.attr("pages", static_cast<std::int64_t>(report.prefetchedPages));
    span.attr("already_resident",
              static_cast<std::int64_t>(report.alreadyResident));
    span.attr("batches", static_cast<std::int64_t>(report.batches));
    span.attr("storage_reads",
              static_cast<std::int64_t>(report.storageReads));
    return report;
}

} // namespace catalyzer::prefetch
