#include "vfs/dup_model.h"

namespace catalyzer::vfs {

sim::SimTime
chargeDup(sim::SimContext &ctx, bool expanded, bool lazy)
{
    const auto &costs = ctx.costs();
    sim::SimTime t;
    if (lazy) {
        t = costs.dupFast;
        ctx.chargeCounted("vfs.lazy_dups", t);
        return t;
    }
    if (!expanded) {
        t = costs.dupFast;
        ctx.chargeCounted("vfs.dups", t);
        return t;
    }
    ctx.stats().incr("vfs.fdtable_expansions");
    if (ctx.rng().chance(costs.dupExpandBurstProb)) {
        // Heavy-tailed reclaim stall: most bursts are a few ms, the
        // worst reach the 30 ms regime of Fig. 16d.
        t = sim::SimTime::milliseconds(ctx.rng().heavyTail(
            costs.dupExpandTypical.toMs(), costs.dupExpandWorst.toMs(),
            /*alpha=*/0.7));
        ctx.chargeCounted("vfs.dup_bursts", t);
    } else {
        t = costs.dupExpandTypical;
        ctx.chargeCounted("vfs.dups", t);
    }
    return t;
}

} // namespace catalyzer::vfs
