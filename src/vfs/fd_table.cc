#include "vfs/fd_table.h"

#include "sim/logging.h"

namespace catalyzer::vfs {

FdTable::FdTable()
{
    slots_.resize(kInitialCapacity);
}

void
FdTable::expand()
{
    slots_.resize(slots_.size() * 2);
}

int
FdTable::allocate(FdEntry entry, bool *expanded)
{
    return allocateAtLeast(0, std::move(entry), expanded);
}

int
FdTable::allocateAtLeast(int min_fd, FdEntry entry, bool *expanded)
{
    if (expanded)
        *expanded = false;
    if (min_fd < 0)
        sim::panic("FdTable::allocateAtLeast: negative min_fd");
    for (;;) {
        for (std::size_t fd = static_cast<std::size_t>(min_fd);
             fd < slots_.size(); ++fd) {
            if (!slots_[fd].has_value()) {
                slots_[fd] = std::move(entry);
                ++in_use_;
                return static_cast<int>(fd);
            }
        }
        expand();
        if (expanded)
            *expanded = true;
    }
}

void
FdTable::close(int fd)
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size() ||
        !slots_[static_cast<std::size_t>(fd)].has_value()) {
        sim::panic("FdTable::close: fd %d not open", fd);
    }
    slots_[static_cast<std::size_t>(fd)].reset();
    --in_use_;
}

FdEntry *
FdTable::get(int fd)
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size())
        return nullptr;
    auto &slot = slots_[static_cast<std::size_t>(fd)];
    return slot.has_value() ? &*slot : nullptr;
}

const FdEntry *
FdTable::get(int fd) const
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size())
        return nullptr;
    const auto &slot = slots_[static_cast<std::size_t>(fd)];
    return slot.has_value() ? &*slot : nullptr;
}

std::vector<std::pair<int, FdEntry>>
FdTable::liveEntries() const
{
    std::vector<std::pair<int, FdEntry>> out;
    for (std::size_t fd = 0; fd < slots_.size(); ++fd) {
        if (slots_[fd].has_value())
            out.emplace_back(static_cast<int>(fd), *slots_[fd]);
    }
    return out;
}

} // namespace catalyzer::vfs
