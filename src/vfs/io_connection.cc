#include "vfs/io_connection.h"

#include <algorithm>

namespace catalyzer::vfs {

const char *
connKindName(ConnKind kind)
{
    switch (kind) {
      case ConnKind::File: return "file";
      case ConnKind::Socket: return "socket";
      case ConnKind::LogFile: return "logfile";
    }
    return "?";
}

std::uint64_t
IoConnectionTable::add(ConnKind kind, std::string path,
                       bool used_at_startup, bool used_by_requests)
{
    IoConnection conn;
    conn.id = next_id_++;
    conn.kind = kind;
    conn.path = std::move(path);
    conn.established = true;
    conn.usedAtStartup = used_at_startup;
    conn.usedByRequests = used_by_requests;
    conns_.push_back(std::move(conn));
    return conns_.back().id;
}

void
IoConnectionTable::cloneFrom(const std::vector<IoConnection> &saved)
{
    conns_ = saved;
    next_id_ = 1;
    for (auto &conn : conns_)
        conn.id = next_id_++;
}

IoConnection *
IoConnectionTable::find(std::uint64_t id)
{
    auto it = std::find_if(conns_.begin(), conns_.end(),
                           [id](const IoConnection &c) {
                               return c.id == id;
                           });
    return it == conns_.end() ? nullptr : &*it;
}

const IoConnection *
IoConnectionTable::find(std::uint64_t id) const
{
    auto it = std::find_if(conns_.begin(), conns_.end(),
                           [id](const IoConnection &c) {
                               return c.id == id;
                           });
    return it == conns_.end() ? nullptr : &*it;
}

std::size_t
IoConnectionTable::establishedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(conns_.begin(), conns_.end(),
                      [](const IoConnection &c) {
                          return c.established;
                      }));
}

void
IoConnectionTable::dropAll()
{
    for (auto &c : conns_)
        c.established = false;
}

} // namespace catalyzer::vfs
