/**
 * @file
 * Stateless overlay rootFS (paper Sec. 4.2).
 *
 * Two layers: an in-memory writable upper layer private to the sandbox,
 * and the read-only lower layer served by the per-function FsServer.
 * All modifications live in memory, so sfork clones the whole filesystem
 * state by COW at constant cost; read-only descriptors from the server
 * remain valid in the child.
 */

#ifndef CATALYZER_VFS_OVERLAY_ROOTFS_H
#define CATALYZER_VFS_OVERLAY_ROOTFS_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "sim/context.h"
#include "vfs/fd_table.h"
#include "vfs/fs_server.h"

namespace catalyzer::vfs {

/** An upper-layer file held in sandbox memory. */
struct MemFile
{
    std::size_t sizeBytes = 0;
    /** Whiteout: the lower file is deleted from this sandbox's view. */
    bool whiteout = false;
};

/**
 * One sandbox's view of its root filesystem.
 *
 * open()/write()/unlink() follow overlayfs semantics: reads fall through
 * to the lower layer; the first write copies the file up into memory;
 * deletes create whiteouts. clone() (for sfork) is constant-cost.
 */
class OverlayRootfs
{
  public:
    OverlayRootfs(sim::SimContext &ctx, FsServer &lower);

    /**
     * Open for reading. Returns false on ENOENT. Lower-layer hits cost a
     * Gofer round trip; upper-layer hits are memory-only.
     */
    bool openRead(const std::string &path, FdEntry *out);

    /**
     * Open for writing, copying the file up on first write. Creates the
     * file if absent. Returns the fd entry for the writable file.
     */
    FdEntry openWrite(const std::string &path);

    /** Append @p bytes to an upper-layer file (write syscall path). */
    void write(const std::string &path, std::size_t bytes);

    /** Remove a file from this sandbox's view. */
    bool unlink(const std::string &path);

    /** True if visible in this view. */
    bool exists(const std::string &path) const;

    /** Size as seen through the overlay; 0 if absent. */
    std::size_t sizeOf(const std::string &path) const;

    /**
     * sfork support: duplicate the view. The upper layer's pages live in
     * sandbox anonymous memory, which the address-space fork already
     * COWs, so this only copies metadata at constant modelled cost.
     */
    std::unique_ptr<OverlayRootfs> clone() const;

    /** Bytes held by the upper layer (memory accounting). */
    std::size_t upperBytes() const;

    std::size_t upperFileCount() const { return upper_.size(); }
    FsServer &lower() { return lower_; }

  private:
    sim::SimContext &ctx_;
    FsServer &lower_;
    std::map<std::string, MemFile> upper_;
};

} // namespace catalyzer::vfs

#endif // CATALYZER_VFS_OVERLAY_ROOTFS_H
