/**
 * @file
 * Registry of a sandbox's I/O connections (open files, sockets, logs).
 *
 * On restore, these are the connections that must be re-established by
 * re-do operations; Catalyzer re-establishes them lazily (on-demand I/O
 * reconnection, paper Sec. 3.3) guided by a per-function I/O cache.
 */

#ifndef CATALYZER_VFS_IO_CONNECTION_H
#define CATALYZER_VFS_IO_CONNECTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace catalyzer::vfs {

/** Connection flavor; sockets are costlier to re-establish than files. */
enum class ConnKind { File, Socket, LogFile };

const char *connKindName(ConnKind kind);

/** One I/O connection held by a running function instance. */
struct IoConnection
{
    std::uint64_t id = 0;
    ConnKind kind = ConnKind::File;
    std::string path;
    /** True once the backing host object is (re-)established. */
    bool established = false;
    /**
     * Whether the running function actually uses this connection right
     * after boot (the deterministic startup set cached by the I/O cache).
     */
    bool usedAtStartup = false;
    /** Whether the function ever touches it during request handling. */
    bool usedByRequests = false;
};

/**
 * Table of connections for one instance. Ordered by creation so that
 * checkpoint and the I/O cache see a deterministic sequence.
 */
class IoConnectionTable
{
  public:
    /** Register a connection; returns its id. */
    std::uint64_t add(ConnKind kind, std::string path, bool used_at_startup,
                      bool used_by_requests);

    /**
     * Replace this table with a copy of @p saved, re-assigning ids in
     * creation order — one bulk copy instead of one add() per
     * connection. Establishment flags are copied verbatim; callers
     * apply their restore policy (drop sockets, drop all) on top.
     */
    void cloneFrom(const std::vector<IoConnection> &saved);

    IoConnection *find(std::uint64_t id);
    const IoConnection *find(std::uint64_t id) const;

    std::vector<IoConnection> &all() { return conns_; }
    const std::vector<IoConnection> &all() const { return conns_; }

    std::size_t count() const { return conns_.size(); }
    std::size_t establishedCount() const;

    /** Mark every connection dis-established (checkpoint/restore edge). */
    void dropAll();

  private:
    std::vector<IoConnection> conns_;
    std::uint64_t next_id_ = 1;
};

} // namespace catalyzer::vfs

#endif // CATALYZER_VFS_IO_CONNECTION_H
