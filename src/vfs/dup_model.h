/**
 * @file
 * Shared latency model for dup()/dup2() (paper Fig. 16d).
 *
 * A dup on a table with free slots is cheap; a dup that forces fdtable
 * expansion usually costs around a millisecond and occasionally hits a
 * multi-millisecond reclaim stall. Catalyzer's lazy-dup keeps the
 * expansion off the critical path entirely.
 */

#ifndef CATALYZER_VFS_DUP_MODEL_H
#define CATALYZER_VFS_DUP_MODEL_H

#include "sim/context.h"

namespace catalyzer::vfs {

/**
 * Charge one dup() to the context.
 *
 * @param ctx      Simulation context.
 * @param expanded Whether the allocation grew the fd table.
 * @param lazy     Lazy-dup: the visible fd was pre-available and the
 *                 real dup happens off the critical path.
 * @return the latency charged.
 */
sim::SimTime chargeDup(sim::SimContext &ctx, bool expanded, bool lazy);

} // namespace catalyzer::vfs

#endif // CATALYZER_VFS_DUP_MODEL_H
