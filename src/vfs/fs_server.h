/**
 * @file
 * Per-function FS server (the Gofer in gVisor terms).
 *
 * A sandbox never touches persistent storage directly; it holds read-only
 * descriptors granted by the server over an RPC channel, plus a small
 * number of read/write grants for log files (paper Sec. 4.2).
 */

#ifndef CATALYZER_VFS_FS_SERVER_H
#define CATALYZER_VFS_FS_SERVER_H

#include <string>

#include "sim/context.h"
#include "vfs/fd_table.h"
#include "vfs/inode_tree.h"

namespace catalyzer::vfs {

/**
 * Serves a function's real rootfs to its sandboxes.
 *
 * One server exists per function (not per instance); sforked children
 * keep using the parent's grants because they are read-only.
 */
class FsServer
{
  public:
    /**
     * @param ctx    Simulation context (costs are charged here).
     * @param rootfs The function's merged root filesystem.
     * @param name   Diagnostic label.
     */
    FsServer(sim::SimContext &ctx, InodeTree rootfs, std::string name);

    /**
     * Open @p path read-only on behalf of a sandbox: one Gofer RPC plus
     * a host open. Returns the entry to install in the sandbox fd table.
     * Missing paths are a user error (fatal in strict mode) — here we
     * return success=false so callers can surface ENOENT.
     */
    bool openReadOnly(const std::string &path, FdEntry *out);

    /**
     * Grant a read/write descriptor for a log file, creating it in the
     * rootfs if needed.
     */
    FdEntry grantLogFile(const std::string &path);

    /**
     * The lazy-dup optimization (Sec. 6.7): the server hands out an
     * already-available fd and performs the dup for its own bookkeeping
     * off the critical path. When disabled, the dup (with its fdtable
     * expansion tail) is charged synchronously.
     */
    void setLazyDup(bool on) { lazy_dup_ = on; }
    bool lazyDup() const { return lazy_dup_; }

    const InodeTree &rootfs() const { return rootfs_; }
    InodeTree &mutableRootfs() { return rootfs_; }
    const std::string &name() const { return name_; }

    /** Server-side descriptor count (grows with grants). */
    std::size_t grantedFds() const { return granted_; }

  private:
    /** Charge one dup on the server's own fd table. */
    void chargeDup();

    sim::SimContext &ctx_;
    InodeTree rootfs_;
    std::string name_;
    FdTable server_fds_;
    std::size_t granted_ = 0;
    bool lazy_dup_ = true;
};

} // namespace catalyzer::vfs

#endif // CATALYZER_VFS_FS_SERVER_H
