#include "vfs/fs_server.h"

#include "sim/logging.h"
#include "vfs/dup_model.h"

namespace catalyzer::vfs {

FsServer::FsServer(sim::SimContext &ctx, InodeTree rootfs, std::string name)
    : ctx_(ctx), rootfs_(std::move(rootfs)), name_(std::move(name))
{
}

void
FsServer::chargeDup()
{
    bool expanded = false;
    server_fds_.allocate(FdEntry{FdKind::File, "<dup>", true, true, 0},
                         &expanded);
    ++granted_;
    vfs::chargeDup(ctx_, expanded, lazy_dup_);
}

bool
FsServer::openReadOnly(const std::string &path, FdEntry *out)
{
    const auto &costs = ctx_.costs();
    ctx_.chargeCounted("vfs.gofer_rpcs", costs.goferRpc);
    const Inode *node = rootfs_.lookup(path);
    if (!node || node->isDir)
        return false;
    ctx_.chargeCounted("vfs.opens", costs.openFile);
    chargeDup();
    if (out)
        *out = FdEntry{FdKind::File, path, true, true, 0};
    return true;
}

FdEntry
FsServer::grantLogFile(const std::string &path)
{
    const auto &costs = ctx_.costs();
    ctx_.chargeCounted("vfs.gofer_rpcs", costs.goferRpc);
    if (!rootfs_.exists(path))
        rootfs_.addFile(path, 0);
    ctx_.chargeCounted("vfs.opens", costs.openFile);
    chargeDup();
    return FdEntry{FdKind::LogFile, path, false, true, 0};
}

} // namespace catalyzer::vfs
