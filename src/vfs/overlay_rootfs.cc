#include "vfs/overlay_rootfs.h"

#include "mem/types.h"
#include "sim/logging.h"

namespace catalyzer::vfs {

OverlayRootfs::OverlayRootfs(sim::SimContext &ctx, FsServer &lower)
    : ctx_(ctx), lower_(lower)
{
}

bool
OverlayRootfs::openRead(const std::string &path, FdEntry *out)
{
    auto it = upper_.find(path);
    if (it != upper_.end()) {
        if (it->second.whiteout)
            return false;
        ctx_.chargeCounted("vfs.overlay_upper_opens",
                           ctx_.costs().syscallBase);
        if (out)
            *out = FdEntry{FdKind::File, path, true, true, 0};
        return true;
    }
    return lower_.openReadOnly(path, out);
}

FdEntry
OverlayRootfs::openWrite(const std::string &path)
{
    auto it = upper_.find(path);
    if (it == upper_.end() || it->second.whiteout) {
        // Copy-up (or fresh create). Copy-up cost scales with file size.
        const Inode *node = lower_.rootfs().lookup(path);
        MemFile mf;
        if (node && !node->isDir) {
            mf.sizeBytes = node->sizeBytes;
            const auto pages = static_cast<std::int64_t>(
                mem::pagesForBytes(node->sizeBytes));
            ctx_.stats().incr("vfs.overlay_copyups");
            ctx_.charge(ctx_.costs().goferRpc);
            ctx_.charge(ctx_.costs().memcpyPerPage * pages);
        } else {
            ctx_.stats().incr("vfs.overlay_creates");
            ctx_.charge(ctx_.costs().syscallBase);
        }
        upper_[path] = mf;
    }
    return FdEntry{FdKind::File, path, false, true, 0};
}

void
OverlayRootfs::write(const std::string &path, std::size_t bytes)
{
    auto it = upper_.find(path);
    if (it == upper_.end() || it->second.whiteout)
        openWrite(path);
    auto &mf = upper_[path];
    mf.whiteout = false;
    mf.sizeBytes += bytes;
    const auto pages = static_cast<std::int64_t>(
        mem::pagesForBytes(bytes));
    ctx_.chargeCounted("vfs.overlay_writes",
                       ctx_.costs().syscallBase +
                           ctx_.costs().memcpyPerPage * std::max<
                               std::int64_t>(pages, 1));
}

bool
OverlayRootfs::unlink(const std::string &path)
{
    if (!exists(path))
        return false;
    upper_[path] = MemFile{0, true};
    ctx_.chargeCounted("vfs.overlay_unlinks", ctx_.costs().syscallBase);
    return true;
}

bool
OverlayRootfs::exists(const std::string &path) const
{
    auto it = upper_.find(path);
    if (it != upper_.end())
        return !it->second.whiteout;
    const Inode *node = lower_.rootfs().lookup(path);
    return node && !node->isDir;
}

std::size_t
OverlayRootfs::sizeOf(const std::string &path) const
{
    auto it = upper_.find(path);
    if (it != upper_.end())
        return it->second.whiteout ? 0 : it->second.sizeBytes;
    const Inode *node = lower_.rootfs().lookup(path);
    return (node && !node->isDir) ? node->sizeBytes : 0;
}

std::unique_ptr<OverlayRootfs>
OverlayRootfs::clone() const
{
    auto child = std::make_unique<OverlayRootfs>(ctx_, lower_);
    child->upper_ = upper_;
    ctx_.chargeCounted("vfs.overlay_clones", ctx_.costs().overlayFsClone);
    return child;
}

std::size_t
OverlayRootfs::upperBytes() const
{
    std::size_t total = 0;
    for (const auto &[path, mf] : upper_) {
        if (!mf.whiteout)
            total += mf.sizeBytes;
    }
    return total;
}

} // namespace catalyzer::vfs
