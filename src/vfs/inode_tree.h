/**
 * @file
 * Simulated filesystem namespace (a rootfs).
 */

#ifndef CATALYZER_VFS_INODE_TREE_H
#define CATALYZER_VFS_INODE_TREE_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace catalyzer::vfs {

/** One filesystem object. */
struct Inode
{
    bool isDir = false;
    std::size_t sizeBytes = 0;
};

/**
 * A path-indexed filesystem tree. Paths are absolute, '/'-separated,
 * normalized by the caller. Parent directories are created implicitly so
 * rootfs construction stays terse.
 */
class InodeTree
{
  public:
    InodeTree();

    /** Create (or replace) a regular file of @p size_bytes. */
    void addFile(const std::string &path, std::size_t size_bytes);

    /** Create a directory (and its ancestors). */
    void addDir(const std::string &path);

    /** Lookup; nullptr if absent. */
    const Inode *lookup(const std::string &path) const;

    bool exists(const std::string &path) const
    {
        return lookup(path) != nullptr;
    }

    /** Remove a file (directories are never removed). */
    void removeFile(const std::string &path);

    /** Paths of all regular files under @p prefix. */
    std::vector<std::string> filesUnder(const std::string &prefix) const;

    /** Total number of regular files. */
    std::size_t fileCount() const;

    /** Sum of file sizes in bytes. */
    std::size_t totalBytes() const;

    /**
     * Union this tree with @p overlay on top (overlay wins on conflict);
     * used to build function rootfs = base rootfs + app layer.
     */
    void unionWith(const InodeTree &overlay);

  private:
    void ensureParents(const std::string &path);

    std::map<std::string, Inode> nodes_;
};

} // namespace catalyzer::vfs

#endif // CATALYZER_VFS_INODE_TREE_H
