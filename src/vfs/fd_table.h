/**
 * @file
 * File-descriptor table with Linux-style capacity doubling.
 *
 * The expansion behaviour matters: the paper's Fig. 16d shows dup() tail
 * latencies of up to 30 ms precisely when the fdtable must be resized,
 * which motivates Catalyzer's lazy-dup optimization.
 */

#ifndef CATALYZER_VFS_FD_TABLE_H
#define CATALYZER_VFS_FD_TABLE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace catalyzer::vfs {

/** What an fd refers to. */
enum class FdKind { File, Socket, Pipe, LogFile };

/** One open-file description reference. */
struct FdEntry
{
    FdKind kind = FdKind::File;
    std::string path;
    bool readOnly = true;
    /**
     * For restore bookkeeping: false while the fd is a placeholder whose
     * backing connection has not been re-established yet (on-demand I/O
     * reconnection).
     */
    bool connected = true;
    /** Cross-reference into the IoConnectionTable, 0 if none. */
    std::uint64_t connId = 0;
};

/**
 * A process's fd table. Descriptors allocate lowest-free, as POSIX
 * requires; the table starts at a small capacity and doubles when full.
 */
class FdTable
{
  public:
    static constexpr std::size_t kInitialCapacity = 64;

    FdTable();

    /**
     * Allocate the lowest free descriptor.
     * @param[out] expanded set true when the allocation grew the table.
     */
    int allocate(FdEntry entry, bool *expanded = nullptr);

    /** dup-style allocation: lowest free fd at or above @p min_fd. */
    int allocateAtLeast(int min_fd, FdEntry entry, bool *expanded = nullptr);

    /** Close a descriptor; double-close is a bug. */
    void close(int fd);

    /** Entry behind @p fd, or nullptr. */
    FdEntry *get(int fd);
    const FdEntry *get(int fd) const;

    bool valid(int fd) const { return get(fd) != nullptr; }

    std::size_t capacity() const { return slots_.size(); }
    std::size_t inUse() const { return in_use_; }

    /** True if allocating one more fd would force an expansion. */
    bool nextAllocationExpands() const { return in_use_ == slots_.size(); }

    /** Copy of all live descriptors (fd, entry) pairs. */
    std::vector<std::pair<int, FdEntry>> liveEntries() const;

    /** Clone across fork/sfork: the child inherits every descriptor. */
    FdTable clone() const { return *this; }

  private:
    void expand();

    std::vector<std::optional<FdEntry>> slots_;
    std::size_t in_use_ = 0;
};

} // namespace catalyzer::vfs

#endif // CATALYZER_VFS_FD_TABLE_H
