#include "vfs/inode_tree.h"

#include "sim/logging.h"

namespace catalyzer::vfs {

InodeTree::InodeTree()
{
    nodes_["/"] = Inode{true, 0};
}

void
InodeTree::ensureParents(const std::string &path)
{
    std::size_t pos = 0;
    while ((pos = path.find('/', pos + 1)) != std::string::npos) {
        const std::string dir = path.substr(0, pos);
        auto it = nodes_.find(dir);
        if (it == nodes_.end())
            nodes_[dir] = Inode{true, 0};
        else if (!it->second.isDir)
            sim::panic("InodeTree: %s is a file, not a directory",
                       dir.c_str());
    }
}

void
InodeTree::addFile(const std::string &path, std::size_t size_bytes)
{
    if (path.empty() || path.front() != '/' || path.back() == '/')
        sim::panic("InodeTree::addFile: bad path '%s'", path.c_str());
    ensureParents(path);
    nodes_[path] = Inode{false, size_bytes};
}

void
InodeTree::addDir(const std::string &path)
{
    if (path.empty() || path.front() != '/')
        sim::panic("InodeTree::addDir: bad path '%s'", path.c_str());
    ensureParents(path + "/");
    nodes_[path] = Inode{true, 0};
}

const Inode *
InodeTree::lookup(const std::string &path) const
{
    auto it = nodes_.find(path);
    return it == nodes_.end() ? nullptr : &it->second;
}

void
InodeTree::removeFile(const std::string &path)
{
    auto it = nodes_.find(path);
    if (it == nodes_.end() || it->second.isDir)
        sim::panic("InodeTree::removeFile: no file '%s'", path.c_str());
    nodes_.erase(it);
}

std::vector<std::string>
InodeTree::filesUnder(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[path, node] : nodes_) {
        if (!node.isDir && path.starts_with(prefix))
            out.push_back(path);
    }
    return out;
}

std::size_t
InodeTree::fileCount() const
{
    std::size_t n = 0;
    for (const auto &[path, node] : nodes_) {
        if (!node.isDir)
            ++n;
    }
    return n;
}

std::size_t
InodeTree::totalBytes() const
{
    std::size_t n = 0;
    for (const auto &[path, node] : nodes_)
        n += node.sizeBytes;
    return n;
}

void
InodeTree::unionWith(const InodeTree &overlay)
{
    for (const auto &[path, node] : overlay.nodes_)
        nodes_[path] = node;
}

} // namespace catalyzer::vfs
