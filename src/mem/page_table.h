/**
 * @file
 * Sparse page table: the per-sandbox Private-EPT and the shared Base-EPT
 * are both instances of this structure.
 *
 * Entries are stored as *runs*: maximal extents of contiguous pages
 * mapped to contiguous frames with uniform permission bits. Boot paths
 * install and tear down memory in large extents (a heap fill, an sfork,
 * an unmap), so the run map stays tiny — a few entries for megabytes of
 * mappings — and every range operation (installRange, eraseRange,
 * markCowRange, in-order iteration) costs O(runs touched) instead of a
 * hash probe per page. Single-page faults split runs as needed and
 * re-coalesce with their neighbors, so scattered access degrades
 * gracefully toward the old per-page behavior without ever changing
 * what is mapped.
 */

#ifndef CATALYZER_MEM_PAGE_TABLE_H
#define CATALYZER_MEM_PAGE_TABLE_H

#include <cstddef>
#include <map>

#include "mem/types.h"

namespace catalyzer::mem {

/** One page-table entry (a value snapshot, not a stable reference). */
struct Pte
{
    FrameId frame = kInvalidFrame;
    /** Writable in hardware; false for read-only and pending-COW pages. */
    bool writable = false;
    /** Copy-on-write: a write fault must copy before making writable. */
    bool cow = false;
};

/**
 * Ordered sparse map from virtual page number to PTE, run-compressed.
 * Only present entries are stored; absent pages fault to the owning
 * mapping's policy.
 */
class PageTable
{
  public:
    /** One maximal extent of present pages. Page start+k maps frame0+k. */
    struct Run
    {
        std::size_t npages = 0;
        FrameId frame0 = kInvalidFrame;
        bool writable = false;
        bool cow = false;
    };

    /**
     * Look up @p page. Returns true and fills @p out (when non-null)
     * with a snapshot of the entry if present. The hit/miss caches
     * resolve streaming lookups inline, without a tree walk.
     */
    bool
    lookup(PageIndex page, Pte *out = nullptr) const
    {
        if (cache_run_.npages != 0 && page >= cache_start_ &&
            page - cache_start_ < cache_run_.npages) {
            if (out != nullptr)
                *out = Pte{cache_run_.frame0 + (page - cache_start_),
                           cache_run_.writable, cache_run_.cow};
            return true;
        }
        if (miss_valid_ && page >= miss_lo_ && page < miss_hi_)
            return false;
        return lookupSlow(page, out);
    }

    /** Install (or replace) the entry for @p page. */
    void install(PageIndex page, Pte pte);

    /**
     * Install @p npages entries mapping contiguous frames starting at
     * @p frame0. The range must not overlap present entries.
     */
    void installRange(PageIndex start, std::size_t npages, FrameId frame0,
                      bool writable, bool cow);

    /** Remove the entry for @p page if present. */
    void erase(PageIndex page) { eraseRange(page, 1); }

    /** Remove all present entries in [start, start+npages). */
    void eraseRange(PageIndex start, std::size_t npages);

    /**
     * Downgrade present entries in [start, start+npages) for COW
     * sharing: writable pages become read-only pending-COW, read-only
     * COW pages stay COW, plain read-only pages are untouched — the
     * per-page transform of fork.
     */
    void markCowRange(PageIndex start, std::size_t npages);

    /**
     * Set the permission bits of one present page (COW resolution).
     * Returns false when the page is not present.
     */
    bool setFlags(PageIndex page, bool writable, bool cow);

    /** Set the permission bits of all pages in a fully present range. */
    void setFlagsRange(PageIndex start, std::size_t npages, bool writable,
                       bool cow);

    /** Number of present pages. */
    std::size_t presentPages() const { return present_; }

    /** Number of stored runs (fragmentation diagnostic). */
    std::size_t runCount() const { return runs_.size(); }

    void
    clear()
    {
        runs_.clear();
        present_ = 0;
        invalidateCache();
    }

    /** In-order iteration over runs: fn(PageIndex start, const Run &). */
    template <typename Fn>
    void
    forEachRun(Fn &&fn) const
    {
        for (const auto &[start, run] : runs_)
            fn(start, run);
    }

    /** In-order iteration over entries: fn(PageIndex, Pte). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[start, run] : runs_) {
            for (std::size_t k = 0; k < run.npages; ++k)
                fn(start + k,
                   Pte{run.frame0 + k, run.writable, run.cow});
        }
    }

    /**
     * Walk [start, start+npages) in ascending order, split into
     * maximal segments that are either fully present (one clipped run)
     * or fully absent: fn(seg_start, seg_npages, const Run *clipped)
     * with clipped == nullptr for absent segments; for present
     * segments clipped->frame0 is the frame of seg_start.
     */
    template <typename Fn>
    void
    forEachSegmentIn(PageIndex start, std::size_t npages, Fn &&fn) const
    {
        const PageIndex end = start + npages;
        PageIndex p = start;
        auto it = runs_.upper_bound(start);
        if (it != runs_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second.npages > start)
                it = prev;
        }
        while (p < end) {
            if (it == runs_.end() || it->first >= end) {
                fn(p, static_cast<std::size_t>(end - p), nullptr);
                return;
            }
            if (it->first > p) {
                fn(p, static_cast<std::size_t>(it->first - p), nullptr);
                p = it->first;
            }
            const PageIndex run_end = it->first + it->second.npages;
            const PageIndex seg_end = run_end < end ? run_end : end;
            Run clipped = it->second;
            clipped.frame0 += p - it->first;
            clipped.npages = static_cast<std::size_t>(seg_end - p);
            fn(p, clipped.npages, &clipped);
            p = seg_end;
            ++it;
        }
    }

  private:
    using RunMap = std::map<PageIndex, Run>;

    /** Tree-walking tail of lookup(); refreshes the caches. */
    bool lookupSlow(PageIndex page, Pte *out) const;

    /** Iterator to the run containing @p page, or end(). */
    RunMap::iterator findRun(PageIndex page);

    /**
     * Split the run containing @p at so that a run boundary falls at
     * @p at; no-op if @p at is already a boundary or not covered.
     */
    void splitAt(PageIndex at);

    /** Merge @p it with its neighbors when contiguous and flag-equal. */
    RunMap::iterator coalesce(RunMap::iterator it);

    /** Drop the last-hit/last-miss lookup caches (any mutation). */
    void
    invalidateCache() const
    {
        cache_run_.npages = 0;
        miss_valid_ = false;
    }

    RunMap runs_;
    std::size_t present_ = 0;
    /**
     * Last-hit lookup cache: a value snapshot of the most recently hit
     * run (npages == 0 when invalid). Touch loops stream through the
     * same few runs, so most lookups resolve without a tree walk.
     */
    mutable PageIndex cache_start_ = 0;
    mutable Run cache_run_{};
    /**
     * Last-miss cache: the maximal absent gap [miss_lo_, miss_hi_)
     * around the last missed page. Demand-fault streams probe long
     * absent stretches; those misses resolve without a tree walk too.
     */
    mutable PageIndex miss_lo_ = 0;
    mutable PageIndex miss_hi_ = 0;
    mutable bool miss_valid_ = false;
};

} // namespace catalyzer::mem

#endif // CATALYZER_MEM_PAGE_TABLE_H
