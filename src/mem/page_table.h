/**
 * @file
 * Sparse page table: the per-sandbox Private-EPT and the shared Base-EPT
 * are both instances of this structure.
 */

#ifndef CATALYZER_MEM_PAGE_TABLE_H
#define CATALYZER_MEM_PAGE_TABLE_H

#include <unordered_map>

#include "mem/types.h"

namespace catalyzer::mem {

/** One page-table entry. */
struct Pte
{
    FrameId frame = kInvalidFrame;
    /** Writable in hardware; false for read-only and pending-COW pages. */
    bool writable = false;
    /** Copy-on-write: a write fault must copy before making writable. */
    bool cow = false;
};

/**
 * Sparse map from virtual page number to PTE. Only present entries are
 * stored; absent pages fault to the owning mapping's policy.
 */
class PageTable
{
  public:
    /** Entry for @p page, or nullptr when not present. */
    const Pte *
    lookup(PageIndex page) const
    {
        auto it = entries_.find(page);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Mutable entry for @p page, or nullptr when not present. */
    Pte *
    lookupMutable(PageIndex page)
    {
        auto it = entries_.find(page);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Install (or replace) the entry for @p page. */
    void
    install(PageIndex page, Pte pte)
    {
        entries_[page] = pte;
    }

    /** Remove the entry for @p page if present. */
    void erase(PageIndex page) { entries_.erase(page); }

    /** Number of present pages. */
    std::size_t presentPages() const { return entries_.size(); }

    auto begin() { return entries_.begin(); }
    auto end() { return entries_.end(); }
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

    void clear() { entries_.clear(); }

  private:
    std::unordered_map<PageIndex, Pte> entries_;
};

} // namespace catalyzer::mem

#endif // CATALYZER_MEM_PAGE_TABLE_H
