#include "mem/frame_store.h"

#include "sim/logging.h"

namespace catalyzer::mem {

void
FrameStore::panicDead(const char *op, FrameId id)
{
    sim::panic("%s: frame %llu not live", op,
               static_cast<unsigned long long>(id));
}

FrameStore::SpanMap::const_iterator
FrameStore::findSpan(FrameId id) const
{
    auto it = spans_.upper_bound(id);
    if (it == spans_.begin())
        return spans_.end();
    --it;
    if (id < it->first + it->second.npages)
        return it;
    return spans_.end();
}

FrameStore::SpanMap::iterator
FrameStore::findSpanMutable(FrameId id)
{
    auto it = spans_.upper_bound(id);
    if (it == spans_.begin())
        return spans_.end();
    --it;
    if (id < it->first + it->second.npages)
        return it;
    return spans_.end();
}

void
FrameStore::splitAt(FrameId at)
{
    auto it = findSpanMutable(at);
    if (it == spans_.end() || it->first == at)
        return;
    const std::size_t head = static_cast<std::size_t>(at - it->first);
    Span tail = it->second;
    tail.npages -= head;
    it->second.npages = head;
    spans_.emplace_hint(std::next(it), at, tail);
}

FrameId
FrameStore::allocateRange(std::size_t npages, FrameSource source)
{
    const FrameId id = next_;
    next_ += npages;
    live_ += npages;
    // Sequential allocations of the same source extend the trailing
    // span while it still holds the allocation-time refcount of 1, so
    // per-page fill loops produce one span, not one entry per page.
    if (!spans_.empty()) {
        auto last = std::prev(spans_.end());
        if (last->first + last->second.npages == id &&
            last->second.refs == 1 && last->second.source == source) {
            last->second.npages += npages;
            return id;
        }
    }
    spans_.emplace_hint(spans_.end(), id, Span{npages, 1, source});
    return id;
}

FrameStore::SpanMap::iterator
FrameStore::coalesce(SpanMap::iterator it)
{
    if (it != spans_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.npages == it->first &&
            prev->second.refs == it->second.refs &&
            prev->second.source == it->second.source) {
            prev->second.npages += it->second.npages;
            spans_.erase(it);
            it = prev;
        }
    }
    auto next = std::next(it);
    if (next != spans_.end() &&
        it->first + it->second.npages == next->first &&
        it->second.refs == next->second.refs &&
        it->second.source == next->second.source) {
        it->second.npages += next->second.npages;
        spans_.erase(next);
    }
    return it;
}

void
FrameStore::coalesceRegion(FrameId start, FrameId end)
{
    auto it = spans_.lower_bound(start);
    if (it != spans_.begin())
        --it;
    while (it != spans_.end() && it->first <= end) {
        it = coalesce(it);
        ++it;
    }
}

void
FrameStore::refRange(FrameId id, std::size_t npages)
{
    splitAt(id);
    splitAt(id + npages);
    FrameId p = id;
    const FrameId end = id + npages;
    while (p < end) {
        auto it = findSpanMutable(p);
        if (it == spans_.end() || it->first != p)
            panicDead("FrameStore::ref", p);
        ++it->second.refs;
        p = it->first + it->second.npages;
    }
    coalesceRegion(id, end);
}

void
FrameStore::unrefRange(FrameId id, std::size_t npages)
{
    splitAt(id);
    splitAt(id + npages);
    FrameId p = id;
    const FrameId end = id + npages;
    while (p < end) {
        auto it = findSpanMutable(p);
        if (it == spans_.end() || it->first != p)
            panicDead("FrameStore::unref", p);
        const FrameId span_end = it->first + it->second.npages;
        if (--it->second.refs == 0) {
            live_ -= it->second.npages;
            spans_.erase(it);
        }
        p = span_end;
    }
    coalesceRegion(id, end);
}

std::size_t
FrameStore::refCount(FrameId id) const
{
    auto it = findSpan(id);
    return it == spans_.end() ? 0 : it->second.refs;
}

FrameSource
FrameStore::source(FrameId id) const
{
    auto it = findSpan(id);
    if (it == spans_.end())
        panicDead("FrameStore::source", id);
    return it->second.source;
}

} // namespace catalyzer::mem
