#include "mem/frame_store.h"

#include "sim/logging.h"

namespace catalyzer::mem {

FrameId
FrameStore::allocate(FrameSource source)
{
    const FrameId id = next_++;
    frames_.emplace(id, Frame{1, source});
    return id;
}

void
FrameStore::ref(FrameId id)
{
    auto it = frames_.find(id);
    if (it == frames_.end())
        sim::panic("FrameStore::ref: frame %llu not live",
                   static_cast<unsigned long long>(id));
    ++it->second.refs;
}

void
FrameStore::unref(FrameId id)
{
    auto it = frames_.find(id);
    if (it == frames_.end())
        sim::panic("FrameStore::unref: frame %llu not live",
                   static_cast<unsigned long long>(id));
    if (--it->second.refs == 0)
        frames_.erase(it);
}

std::size_t
FrameStore::refCount(FrameId id) const
{
    auto it = frames_.find(id);
    return it == frames_.end() ? 0 : it->second.refs;
}

FrameSource
FrameStore::source(FrameId id) const
{
    auto it = frames_.find(id);
    if (it == frames_.end())
        sim::panic("FrameStore::source: frame %llu not live",
                   static_cast<unsigned long long>(id));
    return it->second.source;
}

} // namespace catalyzer::mem
