#include "mem/base_mapping.h"

#include <vector>

#include "sim/logging.h"

namespace catalyzer::mem {

BaseMapping::BaseMapping(FrameStore &store, BackingFile &file,
                         PageIndex file_start, std::size_t npages,
                         std::string name)
    : store_(store), file_(file), file_start_(file_start),
      npages_(npages), name_(std::move(name))
{
    if (file_start + npages > file.npages())
        sim::panic("BaseMapping %s: range beyond file end", name_.c_str());
}

BaseMapping::~BaseMapping()
{
    table_.forEachRun([this](PageIndex, const PageTable::Run &run) {
        store_.unrefRange(run.frame0, run.npages);
    });
    if (attach_count_ != 0)
        sim::warn("BaseMapping %s destroyed with %zu attachments",
                  name_.c_str(), attach_count_);
}

FrameId
BaseMapping::populate(sim::SimContext &ctx, PageIndex page, bool cold)
{
    if (page >= npages_)
        sim::panic("BaseMapping %s: page %llu out of range", name_.c_str(),
                   static_cast<unsigned long long>(page));
    Pte pte;
    if (table_.lookup(page, &pte))
        return pte.frame;

    ctx.chargeCounted("mem.base_fills", ctx.costs().demandFaultFile);
    const FrameId frame = file_.frameFor(ctx, file_start_ + page, cold);
    store_.ref(frame);
    table_.install(page, Pte{frame, false, false});
    return frame;
}

void
BaseMapping::populateRange(sim::SimContext &ctx, PageIndex start,
                           std::size_t npages, bool cold)
{
    if (start + npages > npages_)
        sim::panic("BaseMapping %s: page %llu out of range", name_.c_str(),
                   static_cast<unsigned long long>(start + npages - 1));
    // Collect the missing extents first: installing into the table
    // while walking it would invalidate the segment iteration.
    struct Gap
    {
        PageIndex start;
        std::size_t npages;
    };
    std::vector<Gap> gaps;
    table_.forEachSegmentIn(
        start, npages,
        [&gaps](PageIndex s, std::size_t m, const PageTable::Run *run) {
            if (run == nullptr)
                gaps.push_back(Gap{s, m});
        });
    std::vector<FrameId> frames;
    for (const Gap &gap : gaps) {
        ctx.chargeCounted("mem.base_fills",
                          ctx.costs().demandFaultFile *
                              static_cast<double>(gap.npages),
                          static_cast<std::int64_t>(gap.npages));
        frames.clear();
        frames.reserve(gap.npages);
        for (std::size_t k = 0; k < gap.npages; ++k)
            frames.push_back(
                file_.frameFor(ctx, file_start_ + gap.start + k, cold));
        // Install maximal frame-contiguous extents in one go.
        std::size_t i = 0;
        while (i < gap.npages) {
            std::size_t j = i + 1;
            while (j < gap.npages &&
                   frames[j] == frames[i] + (j - i))
                ++j;
            store_.refRange(frames[i], j - i);
            table_.installRange(gap.start + i, j - i, frames[i], false,
                                false);
            i = j;
        }
    }
}

BaseMapping::PrefetchFill
BaseMapping::populatePrefetched(sim::SimContext &ctx, PageIndex page)
{
    if (page >= npages_)
        sim::panic("BaseMapping %s: prefetch of page %llu out of range",
                   name_.c_str(), static_cast<unsigned long long>(page));
    if (table_.lookup(page))
        return PrefetchFill::AlreadyResident;

    ctx.stats().incr("mem.base_prefetch_fills");
    bool from_cache = false;
    const FrameId frame =
        file_.prefetchFrame(ctx, file_start_ + page, &from_cache);
    store_.ref(frame);
    table_.install(page, Pte{frame, false, false});
    return from_cache ? PrefetchFill::FromPageCache
                      : PrefetchFill::FromStorage;
}

void
BaseMapping::populateAll(sim::SimContext &ctx, bool cold)
{
    populateRange(ctx, 0, npages_, cold);
}

void
BaseMapping::detach()
{
    if (attach_count_ == 0)
        sim::panic("BaseMapping %s: detach with no attachments",
                   name_.c_str());
    --attach_count_;
}

} // namespace catalyzer::mem
