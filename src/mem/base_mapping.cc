#include "mem/base_mapping.h"

#include "sim/logging.h"

namespace catalyzer::mem {

BaseMapping::BaseMapping(FrameStore &store, BackingFile &file,
                         PageIndex file_start, std::size_t npages,
                         std::string name)
    : store_(store), file_(file), file_start_(file_start),
      npages_(npages), name_(std::move(name))
{
    if (file_start + npages > file.npages())
        sim::panic("BaseMapping %s: range beyond file end", name_.c_str());
}

BaseMapping::~BaseMapping()
{
    for (auto &[page, pte] : table_)
        store_.unref(pte.frame);
    if (attach_count_ != 0)
        sim::warn("BaseMapping %s destroyed with %zu attachments",
                  name_.c_str(), attach_count_);
}

FrameId
BaseMapping::populate(sim::SimContext &ctx, PageIndex page, bool cold)
{
    if (page >= npages_)
        sim::panic("BaseMapping %s: page %llu out of range", name_.c_str(),
                   static_cast<unsigned long long>(page));
    if (const Pte *pte = table_.lookup(page))
        return pte->frame;

    ctx.chargeCounted("mem.base_fills", ctx.costs().demandFaultFile);
    const FrameId frame = file_.frameFor(ctx, file_start_ + page, cold);
    store_.ref(frame);
    table_.install(page, Pte{frame, false, false});
    return frame;
}

BaseMapping::PrefetchFill
BaseMapping::populatePrefetched(sim::SimContext &ctx, PageIndex page)
{
    if (page >= npages_)
        sim::panic("BaseMapping %s: prefetch of page %llu out of range",
                   name_.c_str(), static_cast<unsigned long long>(page));
    if (table_.lookup(page) != nullptr)
        return PrefetchFill::AlreadyResident;

    ctx.stats().incr("mem.base_prefetch_fills");
    bool from_cache = false;
    const FrameId frame =
        file_.prefetchFrame(ctx, file_start_ + page, &from_cache);
    store_.ref(frame);
    table_.install(page, Pte{frame, false, false});
    return from_cache ? PrefetchFill::FromPageCache
                      : PrefetchFill::FromStorage;
}

void
BaseMapping::populateAll(sim::SimContext &ctx, bool cold)
{
    for (PageIndex p = 0; p < npages_; ++p)
        populate(ctx, p, cold);
}

void
BaseMapping::detach()
{
    if (attach_count_ == 0)
        sim::panic("BaseMapping %s: detach with no attachments",
                   name_.c_str());
    --attach_count_;
}

} // namespace catalyzer::mem
