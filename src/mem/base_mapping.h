/**
 * @file
 * Base-EPT: the read-only memory mapping shared by all sandboxes running
 * the same function (overlay memory, paper Sec. 3.1).
 */

#ifndef CATALYZER_MEM_BASE_MAPPING_H
#define CATALYZER_MEM_BASE_MAPPING_H

#include <string>

#include "mem/backing_file.h"
#include "mem/page_table.h"
#include "sim/context.h"

namespace catalyzer::mem {

/**
 * The shared, read-only lower layer of overlay memory.
 *
 * A BaseMapping covers a page range of a func-image file. It is populated
 * on demand: the first sandbox to touch a page pays the file fault; every
 * sandbox attached afterwards reads the same frame through the merged
 * EPT. Writes never reach the base — they COW into the sandbox's
 * Private-EPT (see AddressSpace).
 */
class BaseMapping
{
  public:
    /**
     * @param store      Machine-wide frame store.
     * @param file       Backing func-image.
     * @param file_start First file page covered.
     * @param npages     Extent in pages.
     * @param name       Diagnostic label.
     */
    BaseMapping(FrameStore &store, BackingFile &file, PageIndex file_start,
                std::size_t npages, std::string name);
    ~BaseMapping();

    BaseMapping(const BaseMapping &) = delete;
    BaseMapping &operator=(const BaseMapping &) = delete;

    /**
     * Look up region-relative @p page; returns true and fills @p out
     * (when non-null) if resident.
     */
    bool
    lookup(PageIndex page, Pte *out = nullptr) const
    {
        return table_.lookup(page, out);
    }

    /**
     * Demand-populate region-relative @p page from the backing file,
     * charging the file-fault cost. Idempotent.
     */
    FrameId populate(sim::SimContext &ctx, PageIndex page, bool cold);

    /**
     * Demand-populate every non-resident page in the region-relative
     * extent [start, start+npages): one aggregated file-fault charge
     * for the missing pages, page-cache fills in ascending page order
     * (identical costs, counters and RNG draws to per-page populate
     * calls), and run-batched PTE installs.
     */
    void populateRange(sim::SimContext &ctx, PageIndex start,
                       std::size_t npages, bool cold);

    /** Eagerly populate the full extent (used by eager-restore baselines). */
    void populateAll(sim::SimContext &ctx, bool cold);

    /**
     * Walk region-relative [start, start+npages) split into maximal
     * resident/missing segments: fn(rel_start, seg_npages, resident).
     */
    template <typename Fn>
    void
    forEachSegmentIn(PageIndex start, std::size_t npages, Fn &&fn) const
    {
        table_.forEachSegmentIn(
            start, npages,
            [&fn](PageIndex s, std::size_t m, const PageTable::Run *run) {
                fn(s, m, run != nullptr);
            });
    }

    /** Outcome of one prefetch fill. */
    enum class PrefetchFill
    {
        AlreadyResident, ///< nothing to do
        FromPageCache,   ///< installed, page was in the file's cache
        FromStorage,     ///< installed, page needed a storage read
    };

    /**
     * Populate region-relative @p page for a batched prefetch read.
     * Unlike populate(), no per-page fault latency is charged — the
     * prefetcher charges the whole batch as one sequential SSD read —
     * and the outcome tells it which pages actually hit storage.
     */
    PrefetchFill populatePrefetched(sim::SimContext &ctx, PageIndex page);

    /** A sandbox attached to / detached from this base. */
    void attach() { ++attach_count_; }
    void detach();

    std::size_t attachCount() const { return attach_count_; }
    std::size_t npages() const { return npages_; }
    std::size_t residentPages() const { return table_.presentPages(); }
    std::size_t residentBytes() const
    {
        return bytesForPages(residentPages());
    }
    const std::string &name() const { return name_; }

  private:
    FrameStore &store_;
    BackingFile &file_;
    PageIndex file_start_;
    std::size_t npages_;
    std::string name_;
    PageTable table_;
    std::size_t attach_count_ = 0;
};

} // namespace catalyzer::mem

#endif // CATALYZER_MEM_BASE_MAPPING_H
