#include "mem/address_space.h"

#include <algorithm>

#include "sim/logging.h"

namespace catalyzer::mem {

AddressSpace::AddressSpace(sim::SimContext &ctx, FrameStore &store,
                           std::string name)
    : ctx_(ctx), store_(store), name_(std::move(name))
{
}

AddressSpace::~AddressSpace()
{
    // Scattered single-page runs (COW faults) usually carry frames that
    // were allocated consecutively; merging frame extents before the
    // unref turns hundreds of span splits into a few range drops.
    std::vector<std::pair<FrameId, std::size_t>> extents;
    table_.forEachRun([&extents](PageIndex, const PageTable::Run &run) {
        extents.emplace_back(run.frame0, run.npages);
    });
    std::sort(extents.begin(), extents.end());
    std::size_t i = 0;
    while (i < extents.size()) {
        FrameId f0 = extents[i].first;
        std::size_t n = extents[i].second;
        std::size_t j = i + 1;
        while (j < extents.size() && extents[j].first == f0 + n) {
            n += extents[j].second;
            ++j;
        }
        store_.unrefRange(f0, n);
        i = j;
    }
    if (base_)
        base_->detach();
}

PageIndex
AddressSpace::mapAnon(std::size_t npages, bool writable, std::string name)
{
    const PageIndex start = next_va_;
    next_va_ += npages + 1; // one-page guard gap
    vmas_.push_back(Vma{start, npages, MapKind::Anon, writable, true,
                        nullptr, 0, std::move(name)});
    ctx_.chargeCounted("mem.mmap_calls", ctx_.costs().mmapRegion);
    return start;
}

PageIndex
AddressSpace::mapFile(BackingFile &file, PageIndex file_start,
                      std::size_t npages, MapKind kind, bool writable,
                      std::string name)
{
    if (kind == MapKind::Anon)
        sim::panic("mapFile with MapKind::Anon");
    if (file_start + npages > file.npages())
        sim::panic("mapFile %s: range beyond EOF", name.c_str());
    const PageIndex start = next_va_;
    next_va_ += npages + 1;
    vmas_.push_back(Vma{start, npages, kind, writable, true, &file,
                        file_start, std::move(name)});
    ctx_.chargeCounted("mem.mmap_calls", ctx_.costs().mmapRegion);
    return start;
}

PageIndex
AddressSpace::attachBase(std::shared_ptr<BaseMapping> base)
{
    if (base_)
        sim::panic("AddressSpace %s: base already attached", name_.c_str());
    base_ = std::move(base);
    base_->attach();
    base_va_start_ = next_va_;
    next_va_ += base_->npages() + 1;
    // Sharing the mapping is one mmap of the already-open image: the
    // whole point of the share-mapping operation is that no file loading
    // happens here.
    ctx_.chargeCounted("mem.base_attach", ctx_.costs().mmapRegion);
    return base_va_start_;
}

void
AddressSpace::unmap(PageIndex start)
{
    auto it = std::find_if(vmas_.begin(), vmas_.end(),
                           [start](const Vma &v) { return v.start == start; });
    if (it == vmas_.end())
        sim::panic("AddressSpace %s: unmap of unknown VMA", name_.c_str());
    table_.forEachSegmentIn(
        it->start, it->npages,
        [this](PageIndex, std::size_t m, const PageTable::Run *run) {
            if (run != nullptr)
                store_.unrefRange(run->frame0, m);
        });
    table_.eraseRange(it->start, it->npages);
    vmas_.erase(it);
    vma_cache_ = static_cast<std::size_t>(-1);
    ctx_.chargeCounted("mem.munmap_calls", ctx_.costs().mmapRegion);
}

const Vma *
AddressSpace::findVma(PageIndex page) const
{
    // vmas_ is sorted by start (regions are mapped at ascending VAs and
    // never split), so one binary search finds the candidate; the
    // last-hit cache short-circuits the streaks every touch loop has.
    if (vma_cache_ < vmas_.size() && vmas_[vma_cache_].contains(page))
        return &vmas_[vma_cache_];
    auto it = std::upper_bound(
        vmas_.begin(), vmas_.end(), page,
        [](PageIndex p, const Vma &v) { return p < v.start; });
    if (it == vmas_.begin())
        return nullptr;
    --it;
    if (!it->contains(page))
        return nullptr;
    vma_cache_ = static_cast<std::size_t>(it - vmas_.begin());
    return &*it;
}

void
AddressSpace::installCowCopy(PageIndex page, FrameId src_frame)
{
    const FrameId copy = store_.allocate(FrameSource::Anonymous);
    (void)src_frame; // contents are not modelled, only accounting
    table_.install(page, Pte{copy, true, false});
}

void
AddressSpace::notifyRange(PageIndex start, std::size_t npages, bool write,
                          FaultResult result)
{
    if (observer_ != nullptr && npages > 0 && result != FaultResult::None)
        observer_->onFaultRange(start, npages, write, result);
}

FaultResult
AddressSpace::resolveBaseAccess(PageIndex page, bool write, bool cold)
{
    const PageIndex rel = page - base_va_start_;
    Pte bpte;
    bool filled = false;
    if (!base_->lookup(rel, &bpte)) {
        bpte.frame = base_->populate(ctx_, rel, cold);
        filled = true;
    }
    if (!write) {
        // The hardware merges Private- and Base-EPT; a read through the
        // base needs no private entry and no further cost.
        return filled ? FaultResult::BaseFill : FaultResult::BaseHit;
    }
    // Write: copy the base page into the Private-EPT.
    ctx_.chargeCounted("mem.cow_faults", ctx_.costs().cowFault);
    installCowCopy(page, bpte.frame);
    return FaultResult::BaseCow;
}

FaultResult
AddressSpace::touch(PageIndex page, bool write, bool cold)
{
    const FaultResult result = resolveTouch(page, write, cold);
    if (observer_ != nullptr && result != FaultResult::None)
        observer_->onFault(page, write, result);
    return result;
}

FaultResult
AddressSpace::resolveTouch(PageIndex page, bool write, bool cold)
{
    Pte pte;
    if (table_.lookup(page, &pte)) {
        if (!write || pte.writable)
            return FaultResult::None;
        if (!pte.cow)
            sim::panic("AddressSpace %s: write to read-only page %llu",
                       name_.c_str(),
                       static_cast<unsigned long long>(page));
        // COW write fault.
        const std::size_t refs = store_.refCount(pte.frame);
        const bool cache_backed =
            store_.source(pte.frame) == FrameSource::PageCache;
        if (refs == 1 && !cache_backed) {
            // Sole owner: reuse in place, no copy.
            table_.setFlags(page, true, false);
            ctx_.chargeCounted("mem.cow_reuse", ctx_.costs().demandFaultAnon);
            return FaultResult::CowReuse;
        }
        ctx_.chargeCounted("mem.cow_faults", ctx_.costs().cowFault);
        installCowCopy(page, pte.frame);
        store_.unref(pte.frame);
        return FaultResult::Cow;
    }

    if (base_ && page >= base_va_start_ &&
        page < base_va_start_ + base_->npages()) {
        return resolveBaseAccess(page, write, cold);
    }

    const Vma *vma = findVma(page);
    if (!vma)
        sim::panic("AddressSpace %s: fault on unmapped page %llu",
                   name_.c_str(), static_cast<unsigned long long>(page));
    if (write && !vma->writable)
        sim::panic("AddressSpace %s: write to read-only VMA %s",
                   name_.c_str(), vma->name.c_str());

    switch (vma->kind) {
      case MapKind::Anon: {
        ctx_.chargeCounted("mem.minor_faults_anon",
                           ctx_.costs().demandFaultAnon);
        const FrameId frame = store_.allocate(FrameSource::Anonymous);
        table_.install(page, Pte{frame, vma->writable, false});
        return FaultResult::MinorAnon;
      }
      case MapKind::FilePrivate: {
        ctx_.chargeCounted("mem.minor_faults_file",
                           ctx_.costs().demandFaultFile);
        const PageIndex fpage = vma->fileStart + (page - vma->start);
        const FrameId frame = vma->file->frameFor(ctx_, fpage, cold);
        if (write) {
            // Fill and immediately COW.
            ctx_.chargeCounted("mem.cow_faults", ctx_.costs().cowFault);
            installCowCopy(page, frame);
            return FaultResult::Cow;
        }
        store_.ref(frame);
        table_.install(page, Pte{frame, false, true});
        return FaultResult::MinorFile;
      }
      case MapKind::FileShared: {
        ctx_.chargeCounted("mem.minor_faults_file",
                           ctx_.costs().demandFaultFile);
        const PageIndex fpage = vma->fileStart + (page - vma->start);
        const FrameId frame = vma->file->frameFor(ctx_, fpage, cold);
        store_.ref(frame);
        table_.install(page, Pte{frame, vma->writable, false});
        return FaultResult::MinorFile;
      }
    }
    sim::panic("unreachable");
}

std::size_t
AddressSpace::resolvePresentRange(PageIndex start, std::size_t npages,
                                  FrameId frame0, bool writable, bool cow,
                                  bool write)
{
    if (!write || writable)
        return 0; // FaultResult::None for the whole extent
    if (!cow)
        sim::panic("AddressSpace %s: write to read-only page %llu",
                   name_.c_str(), static_cast<unsigned long long>(start));
    // Split the extent by frame sharing: sole-owner anonymous frames
    // resolve by remap (CowReuse), everything else copies. Frames
    // within one run are distinct, so the per-page decision sequence
    // is exactly what a page-by-page loop would have computed.
    std::size_t faults = 0;
    PageIndex page = start;
    store_.forEachSegment(
        frame0, npages,
        [&](std::size_t m, std::size_t refs, FrameSource src) {
            const auto n = static_cast<std::int64_t>(m);
            const FrameId f0 = frame0 + (page - start);
            if (refs == 1 && src != FrameSource::PageCache) {
                table_.setFlagsRange(page, m, true, false);
                ctx_.chargeCounted("mem.cow_reuse",
                                   ctx_.costs().demandFaultAnon *
                                       static_cast<double>(n),
                                   n);
                notifyRange(page, m, true, FaultResult::CowReuse);
            } else {
                ctx_.chargeCounted("mem.cow_faults",
                                   ctx_.costs().cowFault *
                                       static_cast<double>(n),
                                   n);
                const FrameId copies =
                    store_.allocateRange(m, FrameSource::Anonymous);
                table_.eraseRange(page, m);
                table_.installRange(page, m, copies, true, false);
                store_.unrefRange(f0, m);
                notifyRange(page, m, true, FaultResult::Cow);
            }
            faults += m;
            page += m;
        });
    return faults;
}

void
AddressSpace::installFileFrames(PageIndex start,
                                const std::vector<FrameId> &frames,
                                bool writable, bool cow)
{
    std::size_t i = 0;
    while (i < frames.size()) {
        std::size_t j = i + 1;
        while (j < frames.size() && frames[j] == frames[i] + (j - i))
            ++j;
        store_.refRange(frames[i], j - i);
        table_.installRange(start + i, j - i, frames[i], writable, cow);
        i = j;
    }
}

std::size_t
AddressSpace::faultVmaGap(const Vma &vma, PageIndex start,
                          std::size_t npages, bool write, bool cold)
{
    if (write && !vma.writable)
        sim::panic("AddressSpace %s: write to read-only VMA %s",
                   name_.c_str(), vma.name.c_str());
    const auto n = static_cast<std::int64_t>(npages);
    switch (vma.kind) {
      case MapKind::Anon: {
        ctx_.chargeCounted("mem.minor_faults_anon",
                           ctx_.costs().demandFaultAnon *
                               static_cast<double>(n),
                           n);
        const FrameId f0 =
            store_.allocateRange(npages, FrameSource::Anonymous);
        table_.installRange(start, npages, f0, vma.writable, false);
        notifyRange(start, npages, write, FaultResult::MinorAnon);
        return npages;
      }
      case MapKind::FilePrivate: {
        ctx_.chargeCounted("mem.minor_faults_file",
                           ctx_.costs().demandFaultFile *
                               static_cast<double>(n),
                           n);
        const PageIndex fpage0 = vma.fileStart + (start - vma.start);
        if (write) {
            // Fill the page cache (ascending order keeps the cold-miss
            // RNG draws identical to the per-page loop), then COW.
            for (std::size_t k = 0; k < npages; ++k)
                vma.file->frameFor(ctx_, fpage0 + k, cold);
            ctx_.chargeCounted("mem.cow_faults",
                               ctx_.costs().cowFault *
                                   static_cast<double>(n),
                               n);
            const FrameId f0 =
                store_.allocateRange(npages, FrameSource::Anonymous);
            table_.installRange(start, npages, f0, true, false);
            notifyRange(start, npages, write, FaultResult::Cow);
            return npages;
        }
        std::vector<FrameId> frames;
        frames.reserve(npages);
        for (std::size_t k = 0; k < npages; ++k)
            frames.push_back(vma.file->frameFor(ctx_, fpage0 + k, cold));
        installFileFrames(start, frames, false, true);
        notifyRange(start, npages, write, FaultResult::MinorFile);
        return npages;
      }
      case MapKind::FileShared: {
        ctx_.chargeCounted("mem.minor_faults_file",
                           ctx_.costs().demandFaultFile *
                               static_cast<double>(n),
                           n);
        const PageIndex fpage0 = vma.fileStart + (start - vma.start);
        std::vector<FrameId> frames;
        frames.reserve(npages);
        for (std::size_t k = 0; k < npages; ++k)
            frames.push_back(vma.file->frameFor(ctx_, fpage0 + k, cold));
        installFileFrames(start, frames, vma.writable, false);
        notifyRange(start, npages, write, FaultResult::MinorFile);
        return npages;
      }
    }
    sim::panic("unreachable");
}

std::size_t
AddressSpace::touchVmaRange(const Vma &vma, PageIndex start,
                            std::size_t npages, bool write, bool cold)
{
    // Snapshot the present/absent segmentation first: fault handling
    // installs runs, which would invalidate a live walk. Processing an
    // earlier segment never changes a later one (segments are disjoint
    // and frames within one space are distinct per page).
    struct Seg
    {
        PageIndex start;
        std::size_t npages;
        bool present;
        PageTable::Run run; // valid when present
    };
    std::vector<Seg> segs;
    table_.forEachSegmentIn(
        start, npages,
        [&segs](PageIndex s, std::size_t m, const PageTable::Run *run) {
            segs.push_back(Seg{s, m, run != nullptr,
                               run != nullptr ? *run : PageTable::Run{}});
        });
    std::size_t faults = 0;
    for (const Seg &seg : segs) {
        if (seg.present)
            faults += resolvePresentRange(seg.start, seg.npages,
                                          seg.run.frame0, seg.run.writable,
                                          seg.run.cow, write);
        else
            faults += faultVmaGap(vma, seg.start, seg.npages, write, cold);
    }
    return faults;
}

std::size_t
AddressSpace::touchBaseRange(PageIndex start, std::size_t npages,
                             bool write, bool cold)
{
    struct Seg
    {
        PageIndex start;
        std::size_t npages;
        bool present;
        PageTable::Run run;
    };
    std::vector<Seg> segs;
    table_.forEachSegmentIn(
        start, npages,
        [&segs](PageIndex s, std::size_t m, const PageTable::Run *run) {
            segs.push_back(Seg{s, m, run != nullptr,
                               run != nullptr ? *run : PageTable::Run{}});
        });
    std::size_t faults = 0;
    for (const Seg &seg : segs) {
        if (seg.present) {
            // Privately COWed base pages resolve like any present run.
            faults += resolvePresentRange(seg.start, seg.npages,
                                          seg.run.frame0, seg.run.writable,
                                          seg.run.cow, write);
            continue;
        }
        // Absent in the Private-EPT: resolve through the base, split
        // by base residency so fills charge in one aggregated call.
        struct BSeg
        {
            PageIndex rel;
            std::size_t npages;
            bool resident;
        };
        std::vector<BSeg> bsegs;
        base_->forEachSegmentIn(
            seg.start - base_va_start_, seg.npages,
            [&bsegs](PageIndex rel, std::size_t m, bool resident) {
                bsegs.push_back(BSeg{rel, m, resident});
            });
        for (const BSeg &bseg : bsegs) {
            const PageIndex va = base_va_start_ + bseg.rel;
            if (!bseg.resident)
                base_->populateRange(ctx_, bseg.rel, bseg.npages, cold);
            if (write) {
                const auto n = static_cast<std::int64_t>(bseg.npages);
                ctx_.chargeCounted("mem.cow_faults",
                                   ctx_.costs().cowFault *
                                       static_cast<double>(n),
                                   n);
                const FrameId copies = store_.allocateRange(
                    bseg.npages, FrameSource::Anonymous);
                table_.installRange(va, bseg.npages, copies, true, false);
                notifyRange(va, bseg.npages, true, FaultResult::BaseCow);
            } else {
                notifyRange(va, bseg.npages, false,
                            bseg.resident ? FaultResult::BaseHit
                                          : FaultResult::BaseFill);
            }
            faults += bseg.npages;
        }
    }
    return faults;
}

std::size_t
AddressSpace::touchRange(PageIndex start, std::size_t npages, bool write,
                         bool cold)
{
    std::size_t faults = 0;
    const PageIndex end = start + npages;
    PageIndex p = start;
    while (p < end) {
        if (base_ && p >= base_va_start_ &&
            p < base_va_start_ + base_->npages()) {
            const PageIndex seg_end =
                std::min<PageIndex>(end, base_va_start_ + base_->npages());
            faults += touchBaseRange(p, static_cast<std::size_t>(seg_end - p),
                                     write, cold);
            p = seg_end;
            continue;
        }
        const Vma *vma = findVma(p);
        if (!vma)
            sim::panic("AddressSpace %s: fault on unmapped page %llu",
                       name_.c_str(), static_cast<unsigned long long>(p));
        const PageIndex seg_end =
            std::min<PageIndex>(end, vma->start + vma->npages);
        faults += touchVmaRange(*vma, p, static_cast<std::size_t>(seg_end - p),
                                write, cold);
        p = seg_end;
    }
    return faults;
}

std::unique_ptr<AddressSpace>
AddressSpace::forkCow(std::string child_name, bool honor_cow_flag)
{
    auto child = std::make_unique<AddressSpace>(ctx_, store_,
                                                std::move(child_name));
    child->vmas_ = vmas_;
    child->next_va_ = next_va_;

    const auto &costs = ctx_.costs();
    ctx_.charge(costs.sforkPerVma * static_cast<std::int64_t>(vmas_.size()));
    ctx_.clock().advanceParallel(
        costs.sforkPtePerBatch,
        static_cast<std::int64_t>(
            (table_.presentPages() + kPtesPerTable - 1) / kPtesPerTable),
        1);

    // Downgrade every extent that is not truly shared to pending-COW in
    // the parent, then share each frame once and copy the run map
    // wholesale — the child's table is exactly the parent's post-mark
    // table, run for run.
    for (const Vma &vma : vmas_) {
        const bool truly_shared =
            vma.kind == MapKind::FileShared &&
            (!honor_cow_flag || !vma.cowOnFork);
        if (!truly_shared)
            table_.markCowRange(vma.start, vma.npages);
    }
    if (base_) // privately COWed base pages downgrade like anon memory
        table_.markCowRange(base_va_start_, base_->npages());
    table_.forEachRun([this](PageIndex, const PageTable::Run &run) {
        store_.refRange(run.frame0, run.npages);
    });
    child->table_ = table_;
    ctx_.stats().incr("mem.fork_cow_pages",
                      static_cast<std::int64_t>(table_.presentPages()));

    if (base_) {
        child->base_ = base_;
        child->base_->attach();
        child->base_va_start_ = base_va_start_;
    }
    return child;
}

std::size_t
AddressSpace::rssPages() const
{
    std::size_t pages = table_.presentPages();
    if (base_)
        pages += base_->residentPages();
    return pages;
}

double
AddressSpace::pssBytes() const
{
    double bytes = 0.0;
    table_.forEachRun([&](PageIndex, const PageTable::Run &run) {
        store_.forEachSegment(
            run.frame0, run.npages,
            [&](std::size_t m, std::size_t refs, FrameSource src) {
                std::size_t divisor = refs;
                if (src == FrameSource::PageCache && divisor > 1)
                    --divisor; // the page cache's own ref does not count
                bytes += static_cast<double>(m) *
                         (static_cast<double>(kPageSize) /
                          static_cast<double>(
                              std::max<std::size_t>(divisor, 1)));
            });
    });
    if (base_ && base_->attachCount() > 0) {
        bytes += static_cast<double>(base_->residentBytes()) /
                 static_cast<double>(base_->attachCount());
    }
    return bytes;
}

} // namespace catalyzer::mem
