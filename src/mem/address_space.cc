#include "mem/address_space.h"

#include <algorithm>

#include "sim/logging.h"

namespace catalyzer::mem {

AddressSpace::AddressSpace(sim::SimContext &ctx, FrameStore &store,
                           std::string name)
    : ctx_(ctx), store_(store), name_(std::move(name))
{
}

AddressSpace::~AddressSpace()
{
    for (auto &[page, pte] : table_)
        store_.unref(pte.frame);
    if (base_)
        base_->detach();
}

PageIndex
AddressSpace::mapAnon(std::size_t npages, bool writable, std::string name)
{
    const PageIndex start = next_va_;
    next_va_ += npages + 1; // one-page guard gap
    vmas_.push_back(Vma{start, npages, MapKind::Anon, writable, true,
                        nullptr, 0, std::move(name)});
    ctx_.chargeCounted("mem.mmap_calls", ctx_.costs().mmapRegion);
    return start;
}

PageIndex
AddressSpace::mapFile(BackingFile &file, PageIndex file_start,
                      std::size_t npages, MapKind kind, bool writable,
                      std::string name)
{
    if (kind == MapKind::Anon)
        sim::panic("mapFile with MapKind::Anon");
    if (file_start + npages > file.npages())
        sim::panic("mapFile %s: range beyond EOF", name.c_str());
    const PageIndex start = next_va_;
    next_va_ += npages + 1;
    vmas_.push_back(Vma{start, npages, kind, writable, true, &file,
                        file_start, std::move(name)});
    ctx_.chargeCounted("mem.mmap_calls", ctx_.costs().mmapRegion);
    return start;
}

PageIndex
AddressSpace::attachBase(std::shared_ptr<BaseMapping> base)
{
    if (base_)
        sim::panic("AddressSpace %s: base already attached", name_.c_str());
    base_ = std::move(base);
    base_->attach();
    base_va_start_ = next_va_;
    next_va_ += base_->npages() + 1;
    // Sharing the mapping is one mmap of the already-open image: the
    // whole point of the share-mapping operation is that no file loading
    // happens here.
    ctx_.chargeCounted("mem.base_attach", ctx_.costs().mmapRegion);
    return base_va_start_;
}

void
AddressSpace::unmap(PageIndex start)
{
    auto it = std::find_if(vmas_.begin(), vmas_.end(),
                           [start](const Vma &v) { return v.start == start; });
    if (it == vmas_.end())
        sim::panic("AddressSpace %s: unmap of unknown VMA", name_.c_str());
    for (PageIndex p = it->start; p < it->start + it->npages; ++p) {
        if (Pte *pte = table_.lookupMutable(p)) {
            store_.unref(pte->frame);
            table_.erase(p);
        }
    }
    vmas_.erase(it);
    ctx_.chargeCounted("mem.munmap_calls", ctx_.costs().mmapRegion);
}

const Vma *
AddressSpace::findVma(PageIndex page) const
{
    for (const auto &vma : vmas_) {
        if (vma.contains(page))
            return &vma;
    }
    return nullptr;
}

void
AddressSpace::installCowCopy(PageIndex page, FrameId src_frame)
{
    const FrameId copy = store_.allocate(FrameSource::Anonymous);
    (void)src_frame; // contents are not modelled, only accounting
    table_.install(page, Pte{copy, true, false});
}

FaultResult
AddressSpace::resolveBaseAccess(PageIndex page, bool write, bool cold)
{
    const PageIndex rel = page - base_va_start_;
    const Pte *bpte = base_->lookup(rel);
    bool filled = false;
    if (!bpte) {
        base_->populate(ctx_, rel, cold);
        bpte = base_->lookup(rel);
        filled = true;
    }
    if (!write) {
        // The hardware merges Private- and Base-EPT; a read through the
        // base needs no private entry and no further cost.
        return filled ? FaultResult::BaseFill : FaultResult::BaseHit;
    }
    // Write: copy the base page into the Private-EPT.
    ctx_.chargeCounted("mem.cow_faults", ctx_.costs().cowFault);
    installCowCopy(page, bpte->frame);
    return FaultResult::BaseCow;
}

FaultResult
AddressSpace::touch(PageIndex page, bool write, bool cold)
{
    const FaultResult result = resolveTouch(page, write, cold);
    if (observer_ != nullptr && result != FaultResult::None)
        observer_->onFault(page, write, result);
    return result;
}

FaultResult
AddressSpace::resolveTouch(PageIndex page, bool write, bool cold)
{
    if (Pte *pte = table_.lookupMutable(page)) {
        if (!write || pte->writable)
            return FaultResult::None;
        if (!pte->cow)
            sim::panic("AddressSpace %s: write to read-only page %llu",
                       name_.c_str(),
                       static_cast<unsigned long long>(page));
        // COW write fault.
        const std::size_t refs = store_.refCount(pte->frame);
        const bool cache_backed =
            store_.source(pte->frame) == FrameSource::PageCache;
        if (refs == 1 && !cache_backed) {
            // Sole owner: reuse in place, no copy.
            pte->writable = true;
            pte->cow = false;
            ctx_.chargeCounted("mem.cow_reuse", ctx_.costs().demandFaultAnon);
            return FaultResult::CowReuse;
        }
        ctx_.chargeCounted("mem.cow_faults", ctx_.costs().cowFault);
        const FrameId old = pte->frame;
        installCowCopy(page, old);
        store_.unref(old);
        return FaultResult::Cow;
    }

    if (base_ && page >= base_va_start_ &&
        page < base_va_start_ + base_->npages()) {
        return resolveBaseAccess(page, write, cold);
    }

    const Vma *vma = findVma(page);
    if (!vma)
        sim::panic("AddressSpace %s: fault on unmapped page %llu",
                   name_.c_str(), static_cast<unsigned long long>(page));
    if (write && !vma->writable)
        sim::panic("AddressSpace %s: write to read-only VMA %s",
                   name_.c_str(), vma->name.c_str());

    switch (vma->kind) {
      case MapKind::Anon: {
        ctx_.chargeCounted("mem.minor_faults_anon",
                           ctx_.costs().demandFaultAnon);
        const FrameId frame = store_.allocate(FrameSource::Anonymous);
        table_.install(page, Pte{frame, vma->writable, false});
        return FaultResult::MinorAnon;
      }
      case MapKind::FilePrivate: {
        ctx_.chargeCounted("mem.minor_faults_file",
                           ctx_.costs().demandFaultFile);
        const PageIndex fpage = vma->fileStart + (page - vma->start);
        const FrameId frame = vma->file->frameFor(ctx_, fpage, cold);
        if (write) {
            // Fill and immediately COW.
            ctx_.chargeCounted("mem.cow_faults", ctx_.costs().cowFault);
            installCowCopy(page, frame);
            return FaultResult::Cow;
        }
        store_.ref(frame);
        table_.install(page, Pte{frame, false, true});
        return FaultResult::MinorFile;
      }
      case MapKind::FileShared: {
        ctx_.chargeCounted("mem.minor_faults_file",
                           ctx_.costs().demandFaultFile);
        const PageIndex fpage = vma->fileStart + (page - vma->start);
        const FrameId frame = vma->file->frameFor(ctx_, fpage, cold);
        store_.ref(frame);
        table_.install(page, Pte{frame, vma->writable, false});
        return FaultResult::MinorFile;
      }
    }
    sim::panic("unreachable");
}

std::size_t
AddressSpace::touchRange(PageIndex start, std::size_t npages, bool write,
                         bool cold)
{
    std::size_t faults = 0;
    for (PageIndex p = start; p < start + npages; ++p) {
        if (touch(p, write, cold) != FaultResult::None)
            ++faults;
    }
    return faults;
}

std::unique_ptr<AddressSpace>
AddressSpace::forkCow(std::string child_name, bool honor_cow_flag)
{
    auto child = std::make_unique<AddressSpace>(ctx_, store_,
                                                std::move(child_name));
    child->vmas_ = vmas_;
    child->next_va_ = next_va_;

    const auto &costs = ctx_.costs();
    ctx_.charge(costs.sforkPerVma * static_cast<std::int64_t>(vmas_.size()));
    ctx_.clock().advanceParallel(
        costs.sforkPtePerBatch,
        static_cast<std::int64_t>(
            (table_.presentPages() + kPtesPerTable - 1) / kPtesPerTable),
        1);

    for (auto &[page, pte] : table_) {
        const Vma *vma = findVma(page);
        const bool truly_shared =
            vma && vma->kind == MapKind::FileShared &&
            (!honor_cow_flag || !vma->cowOnFork);
        store_.ref(pte.frame);
        if (truly_shared) {
            child->table_.install(page, pte);
        } else {
            pte.cow = pte.cow || pte.writable;
            pte.writable = false;
            child->table_.install(page, pte);
        }
    }
    ctx_.stats().incr("mem.fork_cow_pages",
                      static_cast<std::int64_t>(table_.presentPages()));

    if (base_) {
        child->base_ = base_;
        child->base_->attach();
        child->base_va_start_ = base_va_start_;
    }
    return child;
}

std::size_t
AddressSpace::rssPages() const
{
    std::size_t pages = table_.presentPages();
    if (base_)
        pages += base_->residentPages();
    return pages;
}

double
AddressSpace::pssBytes() const
{
    double bytes = 0.0;
    for (const auto &[page, pte] : table_) {
        std::size_t divisor = store_.refCount(pte.frame);
        if (store_.source(pte.frame) == FrameSource::PageCache &&
            divisor > 1) {
            --divisor; // the page cache's own reference does not count
        }
        bytes += static_cast<double>(kPageSize) /
                 static_cast<double>(std::max<std::size_t>(divisor, 1));
    }
    if (base_ && base_->attachCount() > 0) {
        bytes += static_cast<double>(base_->residentBytes()) /
                 static_cast<double>(base_->attachCount());
    }
    return bytes;
}

} // namespace catalyzer::mem
