/**
 * @file
 * Reference-counted physical frame store.
 *
 * Frames are the unit of real memory accounting: RSS/PSS figures in the
 * paper's memory experiments (Fig. 14, Table 3) are computed from frame
 * reference counts, exactly as Linux smaps does.
 *
 * Live frames are tracked as *spans*: maximal extents of consecutive
 * FrameIds sharing one reference count and source. Bulk operations
 * (allocateRange for an extent fill, refRange across an sfork,
 * unrefRange on unmap) touch one span instead of one hash entry per
 * page; single-frame ref/unref splits spans and stays exact.
 */

#ifndef CATALYZER_MEM_FRAME_STORE_H
#define CATALYZER_MEM_FRAME_STORE_H

#include <cstddef>
#include <map>

#include "mem/types.h"

namespace catalyzer::mem {

/** What a frame's contents came from; informs copy and PSS decisions. */
enum class FrameSource { Anonymous, PageCache };

/**
 * Allocator and reference counter for simulated physical frames.
 *
 * A frame exists while at least one mapping (or the page cache)
 * references it. The store never reuses a FrameId, which makes dangling
 * unref bugs detectable.
 */
class FrameStore
{
  public:
    FrameStore() = default;
    FrameStore(const FrameStore &) = delete;
    FrameStore &operator=(const FrameStore &) = delete;

    /** Allocate a frame with one reference. */
    FrameId allocate(FrameSource source) { return allocateRange(1, source); }

    /**
     * Allocate @p npages consecutive frames, each with one reference;
     * returns the first id.
     */
    FrameId allocateRange(std::size_t npages, FrameSource source);

    /** Add a reference to a live frame. */
    void ref(FrameId id) { refRange(id, 1); }

    /** Add one reference to each of @p npages consecutive live frames. */
    void refRange(FrameId id, std::size_t npages);

    /** Drop a reference; the frame is freed at zero. */
    void unref(FrameId id) { unrefRange(id, 1); }

    /** Drop one reference from each of @p npages consecutive frames. */
    void unrefRange(FrameId id, std::size_t npages);

    /** Current reference count (0 if freed/never allocated). */
    std::size_t refCount(FrameId id) const;

    /** Source tag of a live frame. */
    FrameSource source(FrameId id) const;

    /**
     * Walk [id, id+npages) in ascending order, split into maximal
     * segments of uniform (refs, source): fn(seg_npages, refs, source).
     * Every frame in the range must be live.
     */
    template <typename Fn>
    void
    forEachSegment(FrameId id, std::size_t npages, Fn &&fn) const
    {
        FrameId p = id;
        const FrameId end = id + npages;
        while (p < end) {
            auto it = findSpan(p);
            if (it == spans_.end())
                panicDead("FrameStore::forEachSegment", p);
            const FrameId span_end = it->first + it->second.npages;
            const FrameId seg_end = span_end < end ? span_end : end;
            fn(static_cast<std::size_t>(seg_end - p), it->second.refs,
               it->second.source);
            p = seg_end;
        }
    }

    /** Number of live frames (machine-wide RSS, in pages). */
    std::size_t liveFrames() const { return live_; }

    /** Total allocations ever made. */
    std::size_t totalAllocated() const { return next_ - 1; }

  private:
    /** Consecutive frames [start, start+npages) with equal refs/source. */
    struct Span
    {
        std::size_t npages;
        std::size_t refs;
        FrameSource source;
    };

    using SpanMap = std::map<FrameId, Span>;

    /** Span containing @p id, or end() when the frame is not live. */
    SpanMap::const_iterator findSpan(FrameId id) const;
    SpanMap::iterator findSpanMutable(FrameId id);

    /** Split so that a span boundary falls at @p at (if covered). */
    void splitAt(FrameId at);

    /** Merge @p it with contiguous neighbors of equal refs/source. */
    SpanMap::iterator coalesce(SpanMap::iterator it);

    /** Coalesce every span overlapping [start, end] with its neighbors. */
    void coalesceRegion(FrameId start, FrameId end);

    [[noreturn]] static void panicDead(const char *op, FrameId id);

    SpanMap spans_;
    std::size_t live_ = 0;
    FrameId next_ = 1;
};

} // namespace catalyzer::mem

#endif // CATALYZER_MEM_FRAME_STORE_H
