/**
 * @file
 * Reference-counted physical frame store.
 *
 * Frames are the unit of real memory accounting: RSS/PSS figures in the
 * paper's memory experiments (Fig. 14, Table 3) are computed from frame
 * reference counts, exactly as Linux smaps does.
 */

#ifndef CATALYZER_MEM_FRAME_STORE_H
#define CATALYZER_MEM_FRAME_STORE_H

#include <cstddef>
#include <unordered_map>

#include "mem/types.h"

namespace catalyzer::mem {

/** What a frame's contents came from; informs copy and PSS decisions. */
enum class FrameSource { Anonymous, PageCache };

/**
 * Allocator and reference counter for simulated physical frames.
 *
 * A frame exists while at least one mapping (or the page cache)
 * references it. The store never reuses a FrameId, which makes dangling
 * unref bugs detectable.
 */
class FrameStore
{
  public:
    FrameStore() = default;
    FrameStore(const FrameStore &) = delete;
    FrameStore &operator=(const FrameStore &) = delete;

    /** Allocate a frame with one reference. */
    FrameId allocate(FrameSource source);

    /** Add a reference to a live frame. */
    void ref(FrameId id);

    /** Drop a reference; the frame is freed at zero. */
    void unref(FrameId id);

    /** Current reference count (0 if freed/never allocated). */
    std::size_t refCount(FrameId id) const;

    /** Source tag of a live frame. */
    FrameSource source(FrameId id) const;

    /** Number of live frames (machine-wide RSS, in pages). */
    std::size_t liveFrames() const { return frames_.size(); }

    /** Total allocations ever made. */
    std::size_t totalAllocated() const { return next_ - 1; }

  private:
    struct Frame
    {
        std::size_t refs;
        FrameSource source;
    };

    std::unordered_map<FrameId, Frame> frames_;
    FrameId next_ = 1;
};

} // namespace catalyzer::mem

#endif // CATALYZER_MEM_FRAME_STORE_H
