/**
 * @file
 * Per-sandbox address space: VMAs plus the Private-EPT, optionally layered
 * over a shared Base-EPT (overlay memory).
 */

#ifndef CATALYZER_MEM_ADDRESS_SPACE_H
#define CATALYZER_MEM_ADDRESS_SPACE_H

#include <memory>
#include <string>
#include <vector>

#include "mem/backing_file.h"
#include "mem/base_mapping.h"
#include "mem/frame_store.h"
#include "mem/page_table.h"
#include "sim/context.h"

namespace catalyzer::mem {

/** Mapping flavor of one VMA. */
enum class MapKind
{
    Anon,        ///< demand-zero anonymous memory
    FilePrivate, ///< MAP_PRIVATE file mapping (COW on write)
    FileShared,  ///< MAP_SHARED file mapping
};

/** What a touch() resolved to; used by tests and stats. */
enum class FaultResult
{
    None,      ///< already mapped with sufficient rights
    MinorAnon, ///< demand-zero fill
    MinorFile, ///< file-backed fill from page cache
    Cow,       ///< copy-on-write duplication
    CowReuse,  ///< sole-owner COW resolved by remap (no copy)
    BaseHit,   ///< satisfied read-only by the shared Base-EPT
    BaseFill,  ///< Base-EPT populated from the func-image, then read
    BaseCow,   ///< write to a base page copied into the Private-EPT
};

/**
 * Lightweight observer of resolved page faults (everything touch()
 * resolves except FaultResult::None). The working-set recorder in
 * src/prefetch/ implements this to capture the pages an instance
 * faults between restore and its first response; the hook costs one
 * pointer test when nobody is listening.
 */
class FaultObserver
{
  public:
    virtual ~FaultObserver() = default;
    virtual void onFault(PageIndex page, bool write, FaultResult result) = 0;

    /**
     * Batched notification for an extent of identically resolved
     * faults. The default fans out to onFault() page by page in
     * ascending order, so per-page observers keep working unmodified;
     * extent-aware observers can override it.
     */
    virtual void
    onFaultRange(PageIndex start, std::size_t npages, bool write,
                 FaultResult result)
    {
        for (std::size_t k = 0; k < npages; ++k)
            onFault(start + k, write, result);
    }
};

/** One virtual memory area. */
struct Vma
{
    PageIndex start = 0;
    std::size_t npages = 0;
    MapKind kind = MapKind::Anon;
    bool writable = true;
    /**
     * The paper's kernel CoW flag: when set, a MAP_SHARED region is
     * downgraded to COW across sfork instead of being shared with the
     * child (Sec. 4, "handling of shared memory").
     */
    bool cowOnFork = true;
    BackingFile *file = nullptr;
    PageIndex fileStart = 0;
    std::string name;

    bool
    contains(PageIndex page) const
    {
        return page >= start && page < start + npages;
    }
};

/**
 * A sandbox's guest-physical address space.
 *
 * Owns the Private-EPT; may be attached to a shared BaseMapping
 * (Base-EPT). All page faults — demand fill, COW, base fill — are
 * resolved here and charged to the SimContext, so startup and execution
 * latencies emerge from real fault counts.
 *
 * Range accesses resolve whole extents against one VMA per pass: bulk
 * PTE installs, one aggregated charge per fault class (N x cost in a
 * single chargeCounted, which is bit-identical to N unit charges), and
 * range observer callbacks. Per-page RNG draws (cold page-cache
 * misses) are still taken in ascending page order, so every simulated
 * latency, counter, and random decision matches the per-page loop this
 * replaced.
 */
class AddressSpace
{
  public:
    AddressSpace(sim::SimContext &ctx, FrameStore &store, std::string name);
    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /** Map anonymous memory; returns the start page. */
    PageIndex mapAnon(std::size_t npages, bool writable, std::string name);

    /** Map a file range; returns the start page. */
    PageIndex mapFile(BackingFile &file, PageIndex file_start,
                      std::size_t npages, MapKind kind, bool writable,
                      std::string name);

    /**
     * Attach a shared Base-EPT at a fresh virtual range (share-mapping
     * operation of overlay memory). Returns the VA start page.
     */
    PageIndex attachBase(std::shared_ptr<BaseMapping> base);

    /** Remove one VMA (partial unmap is not modelled). */
    void unmap(PageIndex start);

    /**
     * Access one page. Resolves any fault, charges costs, and reports
     * what happened. @p cold marks first-boot accesses whose page-cache
     * fills may hit storage.
     */
    FaultResult touch(PageIndex page, bool write, bool cold = false);

    /** Touch a contiguous range; returns the number of faults taken. */
    std::size_t touchRange(PageIndex start, std::size_t npages, bool write,
                           bool cold = false);

    /**
     * fork/sfork memory half: clone this space copy-on-write. Present
     * pages become shared-COW in both parent and child. MAP_SHARED VMAs
     * stay truly shared under plain fork (@p honor_cow_flag false); sfork
     * honors the paper's CoW flag and downgrades flagged shared regions
     * to COW for sandbox isolation. Charges per-VMA and per-PTE-batch
     * costs to the context.
     */
    std::unique_ptr<AddressSpace> forkCow(std::string child_name,
                                          bool honor_cow_flag = true);

    /** Resident set size: private pages plus shared base pages. */
    std::size_t rssPages() const;
    std::size_t rssBytes() const { return bytesForPages(rssPages()); }

    /**
     * Proportional set size in bytes: private frames divided by their
     * sharer count plus the base divided by its attach count — the same
     * accounting as Linux smaps (Fig. 14).
     */
    double pssBytes() const;

    /** Pages present in the Private-EPT only. */
    std::size_t privatePages() const { return table_.presentPages(); }

    const std::vector<Vma> &vmas() const { return vmas_; }
    const std::shared_ptr<BaseMapping> &base() const { return base_; }
    PageIndex baseVaStart() const { return base_va_start_; }
    const std::string &name() const { return name_; }

    sim::SimContext &context() { return ctx_; }

    /**
     * Install (or clear, with nullptr) the fault observer. At most one
     * observer is supported; it must outlive the space or be cleared
     * before the space is destroyed. Not inherited across forkCow().
     */
    void setFaultObserver(FaultObserver *observer) { observer_ = observer; }
    FaultObserver *faultObserver() const { return observer_; }

  private:
    const Vma *findVma(PageIndex page) const;
    FaultResult resolveTouch(PageIndex page, bool write, bool cold);
    FaultResult resolveBaseAccess(PageIndex page, bool write, bool cold);
    void installCowCopy(PageIndex page, FrameId src_frame);

    /** Emit a range observer callback for non-None results. */
    void notifyRange(PageIndex start, std::size_t npages, bool write,
                     FaultResult result);

    /** Batched resolution of [start, start+npages) inside one VMA. */
    std::size_t touchVmaRange(const Vma &vma, PageIndex start,
                              std::size_t npages, bool write, bool cold);

    /** Batched resolution of a range inside the base window. */
    std::size_t touchBaseRange(PageIndex start, std::size_t npages,
                               bool write, bool cold);

    /** COW-resolve a fully present extent (write access). */
    std::size_t resolvePresentRange(PageIndex start, std::size_t npages,
                                    FrameId frame0, bool writable, bool cow,
                                    bool write);

    /** Demand-fault a fully absent extent against @p vma. */
    std::size_t faultVmaGap(const Vma &vma, PageIndex start,
                            std::size_t npages, bool write, bool cold);

    /** Ref+install file-cache frames, batching contiguous extents. */
    void installFileFrames(PageIndex start,
                           const std::vector<FrameId> &frames,
                           bool writable, bool cow);

    sim::SimContext &ctx_;
    FrameStore &store_;
    std::string name_;
    std::vector<Vma> vmas_; // sorted by start (mapped at ascending VAs)
    PageTable table_;
    std::shared_ptr<BaseMapping> base_;
    FaultObserver *observer_ = nullptr;
    PageIndex base_va_start_ = 0;
    PageIndex next_va_ = 0x1000; // leave page 0 unmapped
    /** Last findVma hit (index into vmas_); npos when invalid. */
    mutable std::size_t vma_cache_ = static_cast<std::size_t>(-1);
};

} // namespace catalyzer::mem

#endif // CATALYZER_MEM_ADDRESS_SPACE_H
