/**
 * @file
 * Shared memory-subsystem types: page and frame identifiers, page-size
 * constants and conversion helpers.
 */

#ifndef CATALYZER_MEM_TYPES_H
#define CATALYZER_MEM_TYPES_H

#include <cstddef>
#include <cstdint>

namespace catalyzer::mem {

/** Virtual page number inside one address space. */
using PageIndex = std::uint64_t;

/** Physical frame identifier; kInvalidFrame means "not present". */
using FrameId = std::uint64_t;

constexpr FrameId kInvalidFrame = 0;

/** Fixed 4 KiB pages, as on the paper's x86-64 hosts. */
constexpr std::size_t kPageSize = 4096;

/** Number of PTEs per page-table page (x86-64: 512). */
constexpr std::size_t kPtesPerTable = 512;

/** Round a byte count up to whole pages. */
constexpr std::size_t
pagesForBytes(std::size_t bytes)
{
    return (bytes + kPageSize - 1) / kPageSize;
}

/** Convert pages to bytes. */
constexpr std::size_t
bytesForPages(std::size_t pages)
{
    return pages * kPageSize;
}

constexpr std::size_t
pagesForMiB(std::size_t mib)
{
    return mib * (1024 * 1024 / kPageSize);
}

constexpr std::size_t
pagesForKiB(std::size_t kib)
{
    return (kib * 1024 + kPageSize - 1) / kPageSize;
}

} // namespace catalyzer::mem

#endif // CATALYZER_MEM_TYPES_H
