#include "mem/backing_file.h"

#include "sim/logging.h"

namespace catalyzer::mem {

BackingFile::BackingFile(FrameStore &store, std::string name,
                         std::size_t npages)
    : store_(store), name_(std::move(name)), npages_(npages)
{
}

BackingFile::~BackingFile()
{
    evict();
}

FrameId
BackingFile::frameFor(sim::SimContext &ctx, PageIndex page,
                      bool assume_cold)
{
    if (page >= npages_)
        sim::panic("BackingFile %s: page %llu beyond EOF (%zu pages)",
                   name_.c_str(), static_cast<unsigned long long>(page),
                   npages_);
    auto it = cache_.find(page);
    if (it != cache_.end()) {
        ctx.stats().incr("mem.page_cache_hits");
        return it->second;
    }
    // Page-cache fill. On a cold boot some of these go to storage.
    const auto &costs = ctx.costs();
    if (assume_cold && ctx.rng().chance(costs.pageCacheMissColdBoot)) {
        ctx.chargeCounted("mem.page_cache_storage_reads",
                          costs.demandFaultFileCold);
    } else {
        ctx.stats().incr("mem.page_cache_fills");
    }
    const FrameId frame = store_.allocate(FrameSource::PageCache);
    cache_.emplace(page, frame);
    return frame;
}

FrameId
BackingFile::prefetchFrame(sim::SimContext &ctx, PageIndex page,
                           bool *from_cache)
{
    if (page >= npages_)
        sim::panic("BackingFile %s: prefetch of page %llu beyond EOF "
                   "(%zu pages)",
                   name_.c_str(), static_cast<unsigned long long>(page),
                   npages_);
    auto it = cache_.find(page);
    if (it != cache_.end()) {
        if (from_cache)
            *from_cache = true;
        ctx.stats().incr("mem.page_cache_hits");
        return it->second;
    }
    if (from_cache)
        *from_cache = false;
    ctx.stats().incr("mem.page_cache_prefetch_fills");
    const FrameId frame = store_.allocate(FrameSource::PageCache);
    cache_.emplace(page, frame);
    return frame;
}

bool
BackingFile::resident(PageIndex page) const
{
    return cache_.contains(page);
}

void
BackingFile::evict()
{
    for (auto &[page, frame] : cache_)
        store_.unref(frame);
    cache_.clear();
}

} // namespace catalyzer::mem
