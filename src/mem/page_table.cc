#include "mem/page_table.h"

#include "sim/logging.h"

namespace catalyzer::mem {

namespace {

bool
flagsEqual(const PageTable::Run &a, const PageTable::Run &b)
{
    return a.writable == b.writable && a.cow == b.cow;
}

/** True when @p b starts exactly where @p a ends, frames included. */
bool
extends(PageIndex a_start, const PageTable::Run &a, PageIndex b_start,
        const PageTable::Run &b)
{
    return a_start + a.npages == b_start &&
           a.frame0 + a.npages == b.frame0 && flagsEqual(a, b);
}

} // namespace

PageTable::RunMap::iterator
PageTable::findRun(PageIndex page)
{
    auto it = runs_.upper_bound(page);
    if (it == runs_.begin())
        return runs_.end();
    --it;
    if (page < it->first + it->second.npages)
        return it;
    return runs_.end();
}

bool
PageTable::lookupSlow(PageIndex page, Pte *out) const
{
    // One tree walk primes both caches with the run/gap pair around
    // @p page, so an ascending probe stream (strided touch loops)
    // alternating between present pages and holes stays inline.
    auto next = runs_.upper_bound(page);
    PageIndex gap_lo = 0;
    if (next != runs_.begin()) {
        auto prev = std::prev(next);
        const Run &run = prev->second;
        if (page < prev->first + run.npages) {
            cache_start_ = prev->first;
            cache_run_ = run;
            miss_lo_ = prev->first + run.npages;
            miss_hi_ = next != runs_.end() ? next->first : ~PageIndex{0};
            miss_valid_ = true;
            if (out != nullptr)
                *out = Pte{run.frame0 + (page - prev->first), run.writable,
                           run.cow};
            return true;
        }
        gap_lo = prev->first + run.npages;
    }
    miss_lo_ = gap_lo;
    miss_hi_ = next != runs_.end() ? next->first : ~PageIndex{0};
    miss_valid_ = true;
    if (next != runs_.end()) {
        cache_start_ = next->first;
        cache_run_ = next->second;
    }
    return false;
}

void
PageTable::splitAt(PageIndex at)
{
    auto it = findRun(at);
    if (it == runs_.end() || it->first == at)
        return;
    const std::size_t head = static_cast<std::size_t>(at - it->first);
    Run tail = it->second;
    tail.npages -= head;
    tail.frame0 += head;
    it->second.npages = head;
    runs_.emplace_hint(std::next(it), at, tail);
}

PageTable::RunMap::iterator
PageTable::coalesce(RunMap::iterator it)
{
    if (it != runs_.begin()) {
        auto prev = std::prev(it);
        if (extends(prev->first, prev->second, it->first, it->second)) {
            prev->second.npages += it->second.npages;
            runs_.erase(it);
            it = prev;
        }
    }
    auto next = std::next(it);
    if (next != runs_.end() &&
        extends(it->first, it->second, next->first, next->second)) {
        it->second.npages += next->second.npages;
        runs_.erase(next);
    }
    return it;
}

void
PageTable::install(PageIndex page, Pte pte)
{
    invalidateCache();
    const Run one{1, pte.frame, pte.writable, pte.cow};
    auto next = runs_.upper_bound(page);
    if (next != runs_.begin()) {
        auto prev = std::prev(next);
        if (page < prev->first + prev->second.npages) {
            // Present. COW resolution overwhelmingly replaces a
            // single-page run; overwrite it in place instead of
            // erase + re-insert.
            if (prev->second.npages == 1) {
                prev->second = one;
                coalesce(prev);
                return;
            }
            eraseRange(page, 1);
            auto it = runs_.emplace(page, one).first;
            present_ += 1;
            coalesce(it);
            return;
        }
    }
    auto it = runs_.emplace_hint(next, page, one);
    present_ += 1;
    coalesce(it);
}

void
PageTable::installRange(PageIndex start, std::size_t npages, FrameId frame0,
                        bool writable, bool cow)
{
    if (npages == 0)
        return;
    invalidateCache();
    auto it = runs_.upper_bound(start);
    if (it != runs_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.npages > start)
            sim::panic("PageTable::installRange: overlap at page %llu",
                       static_cast<unsigned long long>(start));
    }
    if (it != runs_.end() && it->first < start + npages)
        sim::panic("PageTable::installRange: overlap at page %llu",
                   static_cast<unsigned long long>(it->first));
    auto ins = runs_.emplace_hint(it, start,
                                  Run{npages, frame0, writable, cow});
    present_ += npages;
    coalesce(ins);
}

void
PageTable::eraseRange(PageIndex start, std::size_t npages)
{
    if (npages == 0)
        return;
    invalidateCache();
    const PageIndex end = start + npages;
    splitAt(start);
    splitAt(end);
    auto it = runs_.lower_bound(start);
    while (it != runs_.end() && it->first < end) {
        present_ -= it->second.npages;
        it = runs_.erase(it);
    }
}

void
PageTable::markCowRange(PageIndex start, std::size_t npages)
{
    if (npages == 0)
        return;
    invalidateCache();
    const PageIndex end = start + npages;
    splitAt(start);
    splitAt(end);
    auto it = runs_.lower_bound(start);
    while (it != runs_.end() && it->first < end) {
        if (it->second.writable) {
            it->second.cow = true;
            it->second.writable = false;
            it = coalesce(it);
        }
        ++it;
    }
}

bool
PageTable::setFlags(PageIndex page, bool writable, bool cow)
{
    if (findRun(page) == runs_.end())
        return false;
    setFlagsRange(page, 1, writable, cow);
    return true;
}

void
PageTable::setFlagsRange(PageIndex start, std::size_t npages, bool writable,
                         bool cow)
{
    if (npages == 0)
        return;
    invalidateCache();
    const PageIndex end = start + npages;
    splitAt(start);
    splitAt(end);
    auto it = runs_.lower_bound(start);
    PageIndex covered = start;
    while (it != runs_.end() && it->first < end) {
        if (it->first != covered)
            sim::panic("PageTable::setFlagsRange: hole at page %llu",
                       static_cast<unsigned long long>(covered));
        covered = it->first + it->second.npages;
        it->second.writable = writable;
        it->second.cow = cow;
        ++it;
    }
    if (covered < end)
        sim::panic("PageTable::setFlagsRange: hole at page %llu",
                   static_cast<unsigned long long>(covered));
    // Re-coalesce the affected region including both boundary neighbors.
    it = runs_.lower_bound(start);
    if (it != runs_.begin())
        --it;
    while (it != runs_.end() && it->first <= end) {
        it = coalesce(it);
        ++it;
    }
}

} // namespace catalyzer::mem
